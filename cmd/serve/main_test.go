package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe strings.Builder for capturing run output
// while the server goroutine writes to it.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunFlagParsing(t *testing.T) {
	ctx := context.Background()
	var out syncBuffer
	if err := run(ctx, &out, []string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(ctx, &out, []string{"-addr", "not-an-address"}); err == nil {
		t.Error("unlistenable address accepted")
	}
}

// startServer runs the server on an ephemeral port and returns its base
// URL plus a cancel to trigger graceful shutdown and a channel with run's
// result.
func startServer(t *testing.T, args ...string) (string, context.CancelFunc, <-chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, &out, append([]string{"-addr", "127.0.0.1:0"}, args...)) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := out.String(); strings.Contains(s, "listening on ") {
			addr := strings.TrimSpace(strings.TrimPrefix(s, "listening on "))
			return "http://" + addr, cancel, errCh
		}
		select {
		case err := <-errCh:
			cancel()
			t.Fatalf("server exited before listening: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("server never reported its address")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRunServesAndShutsDownGracefully(t *testing.T) {
	base, cancel, errCh := startServer(t)
	defer cancel()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %d %s", resp.StatusCode, body)
	}

	// The observability endpoints are mounted.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"rapminer_cuboids_visited",
		"http_request_duration_seconds",
		"pipeline_incidents_opened_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Interrupt → graceful exit with nil error.
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Errorf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("server did not shut down")
	}
}

func TestRunPprofFlag(t *testing.T) {
	for _, tt := range []struct {
		args       []string
		wantStatus int
	}{
		{[]string{"-pprof"}, http.StatusOK},
		{nil, http.StatusNotFound},
	} {
		t.Run(fmt.Sprint(tt.args), func(t *testing.T) {
			base, cancel, errCh := startServer(t, tt.args...)
			defer cancel()
			resp, err := http.Get(base + "/debug/pprof/cmdline")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tt.wantStatus {
				t.Errorf("pprof status = %d, want %d", resp.StatusCode, tt.wantStatus)
			}
			cancel()
			<-errCh
		})
	}
}

// TestRunFlightFlags boots the server with flight flags, captures a bundle
// over HTTP, and checks the spill directory and /readyz probe.
func TestRunFlightFlags(t *testing.T) {
	spill := t.TempDir()
	base, cancel, errCh := startServer(t,
		"-flight-rules", "p99-latency=500ms,queue-saturation=0.9",
		"-flight-cpu-profile", "20ms",
		"-flight-spill-dir", spill,
	)
	defer cancel()

	// Readiness probe: up and ready.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz = %d, want 200", resp.StatusCode)
	}

	// Manual capture via the HTTP surface the rapmctl subcommands drive.
	resp, err = http.Post(base+"/debug/flight/capture?reason=smoke", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID      string `json:"id"`
		Spilled string `json:"spilled"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.ID == "" {
		t.Fatalf("capture: HTTP %d, %+v", resp.StatusCode, info)
	}
	if _, err := os.Stat(filepath.Join(spill, info.ID+".tar.gz")); err != nil {
		t.Errorf("spilled bundle missing: %v", err)
	}

	// The archive downloads.
	resp, err = http.Get(base + "/debug/flight/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("archive fetch = %d", resp.StatusCode)
	}

	cancel()
	<-errCh
}

// TestRunBadFlightRules pins flag validation: a bogus rule string fails
// startup instead of silently arming nothing.
func TestRunBadFlightRules(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), &out, []string{"-flight-rules", "bogus=1"}); err == nil {
		t.Error("bogus flight rules accepted")
	}
}
