// Command serve exposes anomaly localization over HTTP.
//
//	serve [-addr :8080] [-pprof] [-log-level info] [-log-json]
//	      [-span-capacity 512] [-workers 0] [-rollup 0] [-batch-queue -1]
//	      [-request-timeout 0] [-read-timeout 1m] [-write-timeout 2m]
//	      [-exemplar-threshold 0] [-log-max-per-sec 50]
//	      [-flight-rules ""] [-flight-cooldown 2m] [-flight-capacity 4]
//	      [-flight-spill-dir ""] [-flight-cpu-profile 2s] [-flight-interval 5s]
//	      [-continuous] [-window 60]
//
// Endpoints:
//
//	GET  /healthz              liveness probe
//	GET  /readyz               readiness probe (503 while draining or queue-full)
//	GET  /v1/methods           available localization methods
//	POST /v1/localize          localize a snapshot
//	POST /v1/localize/batch    localize many snapshots over the worker pool
//	POST /v1/observe       stream observations into the tracked monitor
//	GET  /v1/incidents     incident lifecycle of the tracked monitor
//	POST /v1/observe/snapshot    install the continuous baseline (-continuous)
//	POST /v1/observe/delta       patch the baseline with one tick's delta (-continuous)
//	GET  /v1/observe/continuous  sliding-window tick statistics (-continuous)
//	GET  /metrics          Prometheus text-format metrics
//	GET  /debug/vars       metrics as JSON
//	GET  /debug/spans      recent trace spans (?trace=<id>, ?group=trace)
//	GET  /debug/runs       recent localization runs (explain reports)
//	GET  /debug/runs/{id}  one run's explain report by trace ID
//	GET  /debug/slo        rolling 1m/5m latency/degraded/backpressure windows
//	GET  /debug/flight     flight-recorder bundle index
//	GET  /debug/flight/{id}     one diagnostic bundle (tar.gz)
//	POST /debug/flight/capture  capture a bundle now (?reason=...)
//	GET  /debug/pprof/     Go profiler (only with -pprof)
//
// The flight recorder watches the rolling SLO windows against -flight-rules
// (e.g. "p99-latency=500ms,error-rate=0.05,queue-saturation=0.9,gc-pause=100ms")
// and captures a diagnostic bundle — pprof profiles, the SLO report, recent
// spans, exemplar-linked explain reports, a metrics snapshot — on breach,
// at most once per -flight-cooldown per rule. POST /debug/flight/capture
// (or `rapmctl flight capture`) takes one on demand.
//
// POST /v1/localize accepts the Table III snapshot layout as
// application/json (the kpi JSON document) or text/csv, with query
// parameters method (default rapminer), k (default 3) and relabel=true to
// force re-detection. Example:
//
//	curl -X POST --data-binary @snapshot.csv -H 'Content-Type: text/csv' \
//	     'localhost:8080/v1/localize?method=rapminer&k=3'
//
// Requests carrying a W3C traceparent header join that trace; the
// response's traceparent and trace_id name the run, whose span tree and
// explain report stay fetchable at /debug/spans?trace=<id> and
// /debug/runs/<id> (rendered readably by `rapmctl explain <id>`).
//
// Logs are structured (text by default, JSON with -log-json) and every
// line carries a component attribute; see the README's "Operating in
// production" section for the metric and log schema.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"time"

	"repro/internal/flight"
	"repro/internal/httpapi"
	"repro/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// run parses flags, serves until the context is canceled, then shuts down
// gracefully. It prints the bound address to w once listening, so callers
// (and tests) binding port 0 can find the server.
func run(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		addr            = fs.String("addr", ":8080", "listen address")
		pprofOn         = fs.Bool("pprof", false, "mount the Go profiler under /debug/pprof/")
		logLevel        = fs.String("log-level", "info", "log level: debug, info, warn, error")
		logJSON         = fs.Bool("log-json", false, "log JSON instead of text")
		shutdownTimeout = fs.Duration("shutdown-timeout", 5*time.Second, "graceful shutdown deadline")
		spanCapacity    = fs.Int("span-capacity", obs.DefaultSpanCapacity, "trace spans retained for /debug/spans")
		workers         = fs.Int("workers", 0, "batch localization workers (0 = GOMAXPROCS)")
		rollup          = fs.Int("rollup", 0, "roll-up base accumulator slot cap for rapminer requests (0 = auto-size from leaf count, negative = disable roll-up)")
		batchQueue      = fs.Int("batch-queue", 0, "batch items that may wait beyond the running ones (0 = 4x workers, min 16; negative = none)")
		requestTimeout  = fs.Duration("request-timeout", 0, "per-request localization deadline; expired requests answer 504 with best-so-far partial results (0 = none)")
		readTimeout     = fs.Duration("read-timeout", time.Minute, "max time to read one request including the body (0 = none)")
		writeTimeout    = fs.Duration("write-timeout", 2*time.Minute, "max time to write one response (0 = none; keep above -request-timeout and pprof profile windows)")
		exemplarMin     = fs.Duration("exemplar-threshold", 0, "retain trace exemplars only for requests at least this slow (0 = every bucket's most recent request)")
		logMaxPerSec    = fs.Float64("log-max-per-sec", 50, "per-request log lines allowed per second before sampling kicks in; excess requests are counted in rapminer_logs_suppressed_total (0 = unlimited)")
		flightRules     = fs.String("flight-rules", "", "flight-recorder triggers as kind=threshold,... (kinds: p99-latency, error-rate, degraded-rate, queue-saturation, gc-pause); empty = manual captures only")
		flightCooldown  = fs.Duration("flight-cooldown", flight.DefaultCooldown, "minimum spacing between automatic captures per rule")
		flightCapacity  = fs.Int("flight-capacity", flight.DefaultCapacity, "diagnostic bundles retained in memory for /debug/flight")
		flightSpillDir  = fs.String("flight-spill-dir", "", "also write every bundle to this directory as <id>.tar.gz")
		flightCPU       = fs.Duration("flight-cpu-profile", flight.DefaultCPUProfile, "CPU-profile window captured into each bundle")
		flightInterval  = fs.Duration("flight-interval", flight.DefaultInterval, "trigger-rule polling period")
		continuous      = fs.Bool("continuous", false, "mount the continuous-localization endpoints (/v1/observe/snapshot, /v1/observe/delta, /v1/observe/continuous)")
		window          = fs.Int("window", 0, "sliding tick-statistics window for continuous mode (0 = 60 ticks)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rules, err := flight.ParseRules(*flightRules)
	if err != nil {
		return err
	}
	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	obs.ConfigureLogging(os.Stderr, level, *logJSON)
	log := obs.Logger("serve")
	obs.ConfigureDefaultSpanRing(*spanCapacity)
	// Sample Go runtime health (goroutines, heap, GC) for /metrics.
	obs.StartRuntimeCollector(ctx, nil, 0)

	apiSrv := httpapi.New(httpapi.Options{
		BatchWorkers:      *workers,
		BatchQueue:        *batchQueue,
		RollupLimit:       *rollup,
		RequestTimeout:    *requestTimeout,
		ExemplarThreshold: exemplarMin.Seconds(),
		LogMaxPerSec:      *logMaxPerSec,
		FlightRules:       rules,
		FlightCooldown:    *flightCooldown,
		FlightCapacity:    *flightCapacity,
		FlightSpillDir:    *flightSpillDir,
		FlightCPUProfile:  *flightCPU,
		FlightInterval:    *flightInterval,
		Continuous:        *continuous,
		ContinuousWindow:  *window,
	})
	go apiSrv.Flight().Run(ctx)
	mux := http.NewServeMux()
	mux.Handle("/", apiSrv)
	if *pprofOn {
		// Mounted on the outer mux so profiler traffic skips the API
		// middleware (profiles can stream for seconds and would skew the
		// latency histogram).
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		// Slow-client protection: a request that cannot deliver its body or
		// drain its response in these windows releases its connection
		// instead of pinning a worker slot forever. The localization work
		// itself is bounded separately by -request-timeout.
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}

	fmt.Fprintf(w, "listening on %s\n", ln.Addr())
	log.Info("listening", "addr", ln.Addr().String(), "pprof", *pprofOn)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		log.Info("shutting down", "timeout", *shutdownTimeout)
		// Flip /readyz first so load balancers stop routing here while
		// in-flight requests drain.
		apiSrv.SetDraining(true)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Info("stopped")
		return nil
	}
}
