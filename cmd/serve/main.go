// Command serve exposes anomaly localization over HTTP.
//
//	serve [-addr :8080]
//
// Endpoints:
//
//	GET  /healthz       liveness probe
//	GET  /v1/methods    available localization methods
//	POST /v1/localize   localize a snapshot
//
// POST /v1/localize accepts the Table III snapshot layout as
// application/json (the kpi JSON document) or text/csv, with query
// parameters method (default rapminer), k (default 3) and relabel=true to
// force re-detection. Example:
//
//	curl -X POST --data-binary @snapshot.csv -H 'Content-Type: text/csv' \
//	     'localhost:8080/v1/localize?method=rapminer&k=3'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/httpapi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.NewHandler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
