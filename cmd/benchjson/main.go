// Command benchjson converts `go test -bench` text output into a JSON
// document, so CI can archive benchmark runs as machine-readable artifacts
// and trend them across commits.
//
//	go test -bench=Search -benchmem | benchjson > bench.json
//
// The output carries the run's environment header (goos, goarch, pkg, cpu)
// and one record per benchmark result line:
//
//	{
//	  "goos": "linux",
//	  "benchmarks": [
//	    {"name": "BenchmarkSearchParallel/workers=4-8", "runs": 500,
//	     "ns_per_op": 1234.5, "bytes_per_op": 756223, "allocs_per_op": 9453}
//	  ]
//	}
//
// Lines that are not benchmark results (test output, PASS/FAIL, timing)
// are ignored, so piping a whole `go test` transcript through is fine.
//
// With -baseline, the run is additionally diffed against a previously
// archived report:
//
//	go test -bench=. -benchmem | benchjson -baseline BENCH_pr5.json > new.json
//
// Benchmarks whose ns/op regressed past -warn-threshold (a ratio; default
// 1.25) are reported on stderr as GitHub workflow `::warning::` lines. The
// diff is advisory — shared CI runners are too noisy for a hard gate — so
// regressions never change the exit status.
//
// With -loadgen, stdin is a cmd/loadgen JSON report instead of bench text:
//
//	loadgen -duration 20s -out - | benchjson -loadgen -baseline LOADGEN_pr6.json
//
// The report is echoed to stdout unchanged (so the same invocation archives
// the artifact) and its p50/p99 and error/degraded rates are diffed against
// the baseline with the same soft `::warning::` discipline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/loadreport"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name       string  `json:"name"`
	Runs       int64   `json:"runs"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`
	MBPerSec   float64 `json:"mb_per_s,omitempty"`
}

// benchReport is the whole converted run.
type benchReport struct {
	GOOS       string        `json:"goos,omitempty"`
	GOARCH     string        `json:"goarch,omitempty"`
	Pkg        string        `json:"pkg,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	baseline := flag.String("baseline", "", "archived report to diff against (soft warnings)")
	threshold := flag.Float64("warn-threshold", 1.25, "warn when a diffed value exceeds baseline by this ratio")
	loadgen := flag.Bool("loadgen", false, "stdin is a cmd/loadgen JSON report, not `go test -bench` text")
	flag.Parse()
	if *loadgen {
		if err := runLoadgen(os.Stdin, os.Stdout, os.Stderr, *baseline, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	report, err := run(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *baseline != "" {
		compareBaseline(os.Stderr, report, *baseline, *threshold)
	}
}

// runLoadgen ingests a loadgen report, re-emits it on w (pass-through for
// artifact archiving) and diffs it against the baseline when one is given.
func runLoadgen(r io.Reader, w, diag io.Writer, baseline string, threshold float64) error {
	rep, err := loadreport.Read(r)
	if err != nil {
		return err
	}
	if err := rep.Write(w); err != nil {
		return err
	}
	if baseline != "" {
		loadreport.Compare(diag, rep, baseline, threshold)
	}
	return nil
}

func run(r io.Reader, w io.Writer) (*benchReport, error) {
	report, err := parse(r)
	if err != nil {
		return nil, err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return report, enc.Encode(report)
}

// compareBaseline diffs the run against an archived report, emitting GitHub
// `::warning::` lines for ns/op regressions past the threshold ratio.
// Everything here is advisory: a missing or unreadable baseline, benchmarks
// present on only one side, and regressions all leave the exit status
// untouched, because shared-runner timings are too noisy for a hard gate.
func compareBaseline(w io.Writer, report *benchReport, path string, threshold float64) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(w, "::warning::benchjson: baseline %s unreadable (%v); skipping comparison\n", path, err)
		return
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(w, "::warning::benchjson: baseline %s is not a benchjson report (%v); skipping comparison\n", path, err)
		return
	}
	byName := make(map[string]benchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	regressions := 0
	for _, b := range report.Benchmarks {
		old, ok := byName[b.Name]
		if !ok || old.NsPerOp <= 0 || b.NsPerOp <= 0 {
			continue
		}
		if ratio := b.NsPerOp / old.NsPerOp; ratio > threshold {
			regressions++
			fmt.Fprintf(w, "::warning::bench regression: %s %.0f ns/op vs baseline %.0f ns/op (%.2fx, threshold %.2fx)\n",
				b.Name, b.NsPerOp, old.NsPerOp, ratio, threshold)
		}
	}
	if regressions == 0 {
		fmt.Fprintf(w, "benchjson: %d benchmarks within %.2fx of baseline %s\n",
			len(report.Benchmarks), threshold, path)
	}
}

// parse scans bench output, collecting the environment header and every
// result line. Unrecognized lines are skipped.
func parse(r io.Reader) (*benchReport, error) {
	report := &benchReport{Benchmarks: []benchResult{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			report.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseResult(line); ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	return report, sc.Err()
}

// parseResult parses one result line:
//
//	BenchmarkName-8   500   2553914 ns/op   756223 B/op   9453 allocs/op
//
// The first two fields are the name and iteration count; the rest are
// value/unit pairs.
func parseResult(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchResult{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	b := benchResult{Name: fields[0], Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsOp = v
		case "MB/s":
			b.MBPerSec = v
		}
	}
	return b, true
}
