package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/loadreport"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkSearchParallel/workers=1-8         	     355	   3175092 ns/op	  721935 B/op	    9453 allocs/op
BenchmarkSearchParallel/workers=4-8         	    1024	   1100000 ns/op	  730000 B/op	    9500 allocs/op
BenchmarkThroughput-8                        	     100	  10000000 ns/op	         250.00 MB/s
--- BENCH: BenchmarkSomething
    bench_test.go:42: noise line
PASS
ok  	repro	12.345s
`

func TestParseSampleOutput(t *testing.T) {
	report, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if report.GOOS != "linux" || report.GOARCH != "amd64" || report.Pkg != "repro" {
		t.Fatalf("header = %+v", report)
	}
	if report.CPU != "Intel(R) Xeon(R)" {
		t.Errorf("cpu = %q", report.CPU)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("%d benchmarks, want 3", len(report.Benchmarks))
	}
	b0 := report.Benchmarks[0]
	if b0.Name != "BenchmarkSearchParallel/workers=1-8" || b0.Runs != 355 ||
		b0.NsPerOp != 3175092 || b0.BytesPerOp != 721935 || b0.AllocsOp != 9453 {
		t.Errorf("first result = %+v", b0)
	}
	if mb := report.Benchmarks[2].MBPerSec; mb != 250 {
		t.Errorf("MB/s = %v, want 250", mb)
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out bytes.Buffer
	if _, err := run(strings.NewReader(sampleOutput), &out); err != nil {
		t.Fatal(err)
	}
	var decoded benchReport
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(decoded.Benchmarks) != 3 {
		t.Fatalf("round-trip lost benchmarks: %+v", decoded)
	}
}

func TestParseSkipsGarbage(t *testing.T) {
	report, err := parse(strings.NewReader("BenchmarkBroken-8 notanumber 12 ns/op\nrandom text\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 0 {
		t.Fatalf("garbage parsed as results: %+v", report.Benchmarks)
	}
}

func TestParseEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if _, err := run(strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte(`"benchmarks": []`)) {
		t.Fatalf("empty input should emit an empty benchmarks array: %s", out.String())
	}
}

func TestCompareBaseline(t *testing.T) {
	baseline := `{"benchmarks": [
		{"name": "BenchmarkA-8", "runs": 100, "ns_per_op": 1000},
		{"name": "BenchmarkB-8", "runs": 100, "ns_per_op": 1000}
	]}`
	path := t.TempDir() + "/base.json"
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	report := &benchReport{Benchmarks: []benchResult{
		{Name: "BenchmarkA-8", NsPerOp: 2000}, // 2x: regression
		{Name: "BenchmarkB-8", NsPerOp: 1100}, // 1.1x: within threshold
		{Name: "BenchmarkNew-8", NsPerOp: 99}, // no baseline: skipped
	}}
	var out bytes.Buffer
	compareBaseline(&out, report, path, 1.25)
	got := out.String()
	if !strings.Contains(got, "::warning::bench regression: BenchmarkA-8") {
		t.Errorf("missing regression warning for BenchmarkA:\n%s", got)
	}
	if strings.Contains(got, "BenchmarkB-8") || strings.Contains(got, "BenchmarkNew-8") {
		t.Errorf("warned about non-regressed benchmarks:\n%s", got)
	}
}

func TestCompareBaselineClean(t *testing.T) {
	path := t.TempDir() + "/base.json"
	if err := os.WriteFile(path, []byte(`{"benchmarks": [{"name": "BenchmarkA-8", "ns_per_op": 1000}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	report := &benchReport{Benchmarks: []benchResult{{Name: "BenchmarkA-8", NsPerOp: 900}}}
	var out bytes.Buffer
	compareBaseline(&out, report, path, 1.25)
	if strings.Contains(out.String(), "::warning::") {
		t.Errorf("clean run produced a warning:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "within") {
		t.Errorf("clean run should summarize the comparison:\n%s", out.String())
	}
}

func TestCompareBaselineMissingFileIsSoft(t *testing.T) {
	var out bytes.Buffer
	compareBaseline(&out, &benchReport{}, "/nonexistent/base.json", 1.25)
	if !strings.Contains(out.String(), "skipping comparison") {
		t.Errorf("missing baseline should soft-skip:\n%s", out.String())
	}
}

func TestLoadgenPassThroughAndDiff(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, []byte(`{"mode":"open","requests":100,"latency":{"p50_ms":10,"p99_ms":40}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader(`{"mode":"open","requests":100,"latency":{"p50_ms":10,"p99_ms":200}}`)
	var out, diag bytes.Buffer
	if err := runLoadgen(in, &out, &diag, base, 1.5); err != nil {
		t.Fatalf("runLoadgen: %v", err)
	}
	rep, err := loadreport.Read(&out)
	if err != nil {
		t.Fatalf("pass-through output not a report: %v", err)
	}
	if rep.Requests != 100 {
		t.Fatalf("pass-through lost fields: %+v", rep)
	}
	if !strings.Contains(diag.String(), "::warning::") || !strings.Contains(diag.String(), "p99") {
		t.Fatalf("p99 regression not flagged: %s", diag.String())
	}
}

func TestLoadgenRejectsBenchText(t *testing.T) {
	in := strings.NewReader("goos: linux\nBenchmarkFoo-8 100 5 ns/op\n")
	if err := runLoadgen(in, &bytes.Buffer{}, &bytes.Buffer{}, "", 1.5); err == nil {
		t.Fatal("accepted bench text as a loadgen report")
	}
}
