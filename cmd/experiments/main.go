// Command experiments regenerates every table and figure of the RAPMiner
// paper's evaluation section on the in-repo corpora. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// results.
//
// Usage:
//
//	experiments [-run all|fig8a|fig8b|fig9a|fig9b|fig10a|fig10b|table4|table6|noise|robustness]
//	            [-seed N] [-squeeze-cases N] [-rapmd-cases N] [-hotspot] [-riskloc]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		which        = fs.String("run", "all", "experiment to run: all, fig8a, fig8b, fig9a, fig9b, fig10a, fig10b, table4, table6, noise, robustness, detection, overlap, derived")
		seed         = fs.Int64("seed", 2022, "corpus generation seed")
		squeezeCases = fs.Int("squeeze-cases", 10, "cases per Squeeze-B0 group")
		rapmdCases   = fs.Int("rapmd-cases", 105, "RAPMD failure cases (paper: 105)")
		hotspot      = fs.Bool("hotspot", false, "include the HotSpot extension in method comparisons")
		rl           = fs.Bool("riskloc", false, "include the RiskLoc extension in method comparisons")
		ens          = fs.Bool("ensemble", false, "include the rank-fusion ensemble in method comparisons")
		plotDir      = fs.String("plots", "", "also write the figures as SVG files into this directory")
		markdownPath = fs.String("markdown", "", "run every experiment and write a Markdown report to this file")
		externalDir  = fs.String("external", "", "evaluate all methods on an external corpus directory (published dataset layout) instead of the built-in experiments")
		repeats      = fs.Int("repeats", 1, "repeat the RAPMD evaluation over this many independently seeded corpora")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt := experiments.Options{
		Seed:            *seed,
		SqueezeCases:    *squeezeCases,
		RAPMDCases:      *rapmdCases,
		IncludeHotSpot:  *hotspot,
		IncludeRiskLoc:  *rl,
		IncludeEnsemble: *ens,
		Repeats:         *repeats,
	}

	if *externalDir != "" {
		rows, name, err := experiments.RunExternalEval(*externalDir, opt)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatExternalEval(rows, name))
		return nil
	}

	if *markdownPath != "" {
		rep, err := experiments.RunReport(opt)
		if err != nil {
			return err
		}
		f, err := os.Create(*markdownPath)
		if err != nil {
			return err
		}
		if err := rep.WriteMarkdown(f, time.Now()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *markdownPath)
		return nil
	}

	wantSqueeze := *which == "all" || *which == "fig8a" || *which == "fig9a"
	wantRAPMD := *which == "all" || *which == "fig8b" || *which == "fig9b"

	plot := func(name string, render func(io.Writer) error) error {
		if *plotDir == "" {
			return nil
		}
		if err := os.MkdirAll(*plotDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*plotDir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
		return nil
	}

	ran := false
	if wantSqueeze {
		rows, err := experiments.RunSqueezeEval(opt)
		if err != nil {
			return err
		}
		if *which == "all" || *which == "fig8a" {
			fmt.Fprintln(w, experiments.FormatFig8a(rows))
			if err := plot("fig8a.svg", func(f io.Writer) error { return experiments.PlotFig8a(f, rows) }); err != nil {
				return err
			}
		}
		if *which == "all" || *which == "fig9a" {
			fmt.Fprintln(w, experiments.FormatFig9a(rows))
			if err := plot("fig9a.svg", func(f io.Writer) error { return experiments.PlotFig9a(f, rows) }); err != nil {
				return err
			}
		}
		ran = true
	}
	if wantRAPMD {
		rows, err := experiments.RunRAPMDEval(opt)
		if err != nil {
			return err
		}
		if *which == "all" || *which == "fig8b" {
			fmt.Fprintln(w, experiments.FormatFig8b(rows))
			if err := plot("fig8b.svg", func(f io.Writer) error { return experiments.PlotFig8b(f, rows) }); err != nil {
				return err
			}
		}
		if *which == "all" || *which == "fig9b" {
			fmt.Fprintln(w, experiments.FormatFig9b(rows))
			if err := plot("fig9b.svg", func(f io.Writer) error { return experiments.PlotFig9b(f, rows) }); err != nil {
				return err
			}
		}
		ran = true
	}
	if *which == "all" || *which == "fig10a" {
		points, err := experiments.RunFig10a(opt)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatFig10(points, "t_CP"))
		if err := plot("fig10a.svg", func(f io.Writer) error { return experiments.PlotFig10(f, points, "t_CP") }); err != nil {
			return err
		}
		ran = true
	}
	if *which == "all" || *which == "fig10b" {
		points, err := experiments.RunFig10b(opt)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatFig10(points, "t_conf"))
		if err := plot("fig10b.svg", func(f io.Writer) error { return experiments.PlotFig10(f, points, "t_conf") }); err != nil {
			return err
		}
		ran = true
	}
	if *which == "all" || *which == "table4" {
		rows, emp, err := experiments.RunTable4(opt)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatTable4(rows, emp))
		ran = true
	}
	if *which == "all" || *which == "derived" {
		rows, err := experiments.RunDerivedStudy(opt)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatDerivedStudy(rows))
		ran = true
	}
	if *which == "all" || *which == "overlap" {
		rows, err := experiments.RunOverlapStudy(opt)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatOverlapStudy(rows))
		ran = true
	}
	if *which == "all" || *which == "detection" {
		points, err := experiments.RunDetectionStudy(opt)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatDetectionStudy(points))
		ran = true
	}
	if *which == "all" || *which == "noise" {
		rows, err := experiments.RunNoiseStudy(opt)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatNoiseStudy(rows))
		ran = true
	}
	if *which == "all" || *which == "robustness" {
		rows, err := experiments.RunRobustnessMatrix(opt, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatRobustnessMatrix(rows))
		ran = true
	}
	if *which == "all" || *which == "table6" {
		res, err := experiments.RunTable6(opt)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatTable6(res))
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *which)
	}
	return nil
}
