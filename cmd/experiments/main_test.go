package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gendata"
)

func tiny(extra ...string) []string {
	return append([]string{"-squeeze-cases", "1", "-rapmd-cases", "2"}, extra...)
}

func TestRunSingleExperiments(t *testing.T) {
	tests := []struct {
		which string
		want  string
	}{
		{"fig8b", "RC@k on RAPMD"},
		{"fig9b", "mean running time on RAPMD"},
		{"fig10a", "sensitivity of t_CP"},
		{"fig10b", "sensitivity of t_conf"},
		{"table4", "DecreaseRatio@k"},
		{"table6", "Efficiency improvement"},
		{"noise", "noise levels"},
		{"robustness", "PSqueeze-style degradations"},
	}
	for _, tt := range tests {
		t.Run(tt.which, func(t *testing.T) {
			var out strings.Builder
			if err := run(&out, tiny("-run", tt.which)); err != nil {
				t.Fatalf("run(%s): %v", tt.which, err)
			}
			if !strings.Contains(out.String(), tt.want) {
				t.Errorf("output missing %q:\n%s", tt.want, out.String())
			}
		})
	}
}

func TestRunSqueezeFigures(t *testing.T) {
	var out strings.Builder
	if err := run(&out, tiny("-run", "fig8a")); err != nil {
		t.Fatalf("run(fig8a): %v", err)
	}
	if !strings.Contains(out.String(), "F1-score on Squeeze-B0") {
		t.Errorf("fig8a header missing:\n%s", out.String())
	}
	if strings.Contains(out.String(), "running time") {
		t.Error("fig8a run should not print fig9a")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run(&out, tiny("-run", "bogus")); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunHotSpotFlag(t *testing.T) {
	var out strings.Builder
	if err := run(&out, tiny("-run", "fig8b", "-hotspot")); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "HotSpot") {
		t.Errorf("HotSpot row missing:\n%s", out.String())
	}
}

func TestRunInvalidOptions(t *testing.T) {
	var out strings.Builder
	if err := run(&out, []string{"-rapmd-cases", "0", "-run", "fig8b"}); err == nil {
		t.Error("zero rapmd cases accepted")
	}
}

func TestRunWritesPlots(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run(&out, tiny("-run", "fig8a", "-plots", dir)); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig8a.svg"))
	if err != nil {
		t.Fatalf("read plot: %v", err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Errorf("plot is not SVG: %.40s", data)
	}
	if err := run(&out, tiny("-run", "fig10b", "-plots", dir)); err != nil {
		t.Fatalf("run fig10b: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig10b.svg")); err != nil {
		t.Errorf("fig10b.svg missing: %v", err)
	}
}

func TestRunExternalEvaluation(t *testing.T) {
	// Export a tiny corpus in the external layout and evaluate on it.
	dir := t.TempDir()
	corpus, err := gendata.SqueezeB0(4, gendata.SqueezeGroup{Dim: 1, NumRAPs: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := gendata.WriteExternal(dir, corpus); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(&out, []string{"-external", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "RAPMiner") || !strings.Contains(out.String(), "F1") {
		t.Errorf("external evaluation output incomplete:\n%s", out.String())
	}
}

func TestRunExternalMissingDir(t *testing.T) {
	var out strings.Builder
	if err := run(&out, []string{"-external", "/nonexistent-dir"}); err == nil {
		t.Error("missing external dir accepted")
	}
}
