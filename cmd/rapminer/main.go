// Command rapminer localizes root anomaly patterns in a CSV snapshot of
// most fine-grained attribute combinations (the Table III layout: attribute
// columns, then actual,forecast[,anomalous]).
//
// Usage:
//
//	rapminer -input snapshot.csv [-k 3] [-tcp 0.01] [-tconf 0.8]
//	         [-method rapminer|adtributor|idice|fpgrowth|squeeze|hotspot|all]
//	         [-detect-threshold 0.095]
//
// When the CSV has no "anomalous" column (or -relabel is set) the leaves
// are labeled with the relative-deviation detector first.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/anomaly"
	"repro/internal/baseline/adtributor"
	"repro/internal/baseline/fpgrowth"
	"repro/internal/baseline/hotspot"
	"repro/internal/baseline/idice"
	"repro/internal/baseline/squeeze"
	"repro/internal/ensemble"
	"repro/internal/kpi"
	"repro/internal/lattice"
	"repro/internal/localize"
	"repro/internal/rapminer"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rapminer:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("rapminer", flag.ContinueOnError)
	var (
		input     = fs.String("input", "", "CSV snapshot file (required; '-' for stdin)")
		k         = fs.Int("k", 3, "number of root anomaly patterns to return")
		tcp       = fs.Float64("tcp", 0.0005, "t_CP: classification power deletion threshold (fraction; the paper quotes percentages)")
		tconf     = fs.Float64("tconf", 0.8, "t_conf: anomaly confidence threshold")
		method    = fs.String("method", "rapminer", "localizer: rapminer, adtributor, idice, fpgrowth, squeeze, hotspot, ensemble, or all")
		relabel   = fs.Bool("relabel", false, "ignore the anomalous column and re-run the detector")
		threshold = fs.Float64("detect-threshold", 0.095, "relative-deviation detection threshold")
		dotPath   = fs.String("dot", "", "write the Fig. 7-style combination DAG (Graphviz DOT) to this file")
		verbose   = fs.Bool("verbose", false, "print RAPMiner search diagnostics (attribute CPs, cuboids visited, early stop)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" {
		return fmt.Errorf("missing -input (see -h)")
	}

	var reader io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		reader = f
	}
	snap, err := kpi.ReadCSV(reader, nil)
	if err != nil {
		return err
	}

	if *relabel || snap.NumAnomalous() == 0 {
		det := anomaly.RelativeDeviation{Threshold: *threshold, Eps: 1e-9}
		n := anomaly.Label(snap, det)
		fmt.Fprintf(w, "detector %s labeled %d of %d leaves anomalous\n", det.Name(), n, snap.Len())
	}

	methods, err := selectMethods(*method, *tcp, *tconf)
	if err != nil {
		return err
	}
	var firstResult []kpi.Combination
	for _, m := range methods {
		var (
			res localize.Result
			err error
		)
		if miner, ok := m.(*rapminer.Miner); ok && *verbose {
			var diag rapminer.Diagnostics
			res, diag, err = miner.LocalizeWithDiagnostics(snap, *k)
			if err == nil {
				printDiagnostics(w, snap.Schema, diag)
			}
		} else {
			res, err = m.Localize(snap, *k)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", m.Name(), err)
		}
		if firstResult == nil {
			firstResult = res.TopK(*k)
		}
		fmt.Fprintf(w, "\n%s root anomaly patterns (top %d):\n", m.Name(), *k)
		if len(res.Patterns) == 0 {
			fmt.Fprintln(w, "  (none found)")
			continue
		}
		fmt.Fprint(w, res.Format(snap.Schema))
	}
	if *dotPath != "" {
		if err := writeDOT(*dotPath, snap, firstResult, *tconf); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote combination DAG to %s\n", *dotPath)
	}
	return nil
}

// printDiagnostics reports the two-stage search statistics.
func printDiagnostics(w io.Writer, schema *kpi.Schema, diag rapminer.Diagnostics) {
	fmt.Fprintln(w, "\nRAPMiner diagnostics:")
	for _, cp := range diag.CPs {
		fmt.Fprintf(w, "  CP(%s) = %.5f\n", schema.Attribute(cp.Attr).Name, cp.CP)
	}
	var kept []string
	for _, a := range diag.KeptAttributes {
		kept = append(kept, schema.Attribute(a).Name)
	}
	fmt.Fprintf(w, "  attributes kept: %s\n", strings.Join(kept, ", "))
	fmt.Fprintf(w, "  cuboids: %d total, %d after deletion, %d visited\n",
		diag.CuboidsTotal, diag.CuboidsSearchable, diag.CuboidsVisited)
	fmt.Fprintf(w, "  combinations scanned: %d, candidates: %d, early stop: %v\n",
		diag.CombinationsScanned, diag.Candidates, diag.EarlyStopped)
}

// writeDOT renders the combination DAG of the snapshot with the first
// method's localized patterns highlighted.
func writeDOT(path string, snap *kpi.Snapshot, highlight []kpi.Combination, tconf float64) error {
	attrs := make([]int, snap.Schema.NumAttributes())
	for i := range attrs {
		attrs[i] = i
	}
	maxLayer := len(attrs)
	if maxLayer > 3 {
		maxLayer = 3
	}
	// Restrict to the anomalous sub-DAG and shrink the depth until the
	// graph fits the renderer's node budget.
	var (
		g   *lattice.Graph
		err error
	)
	for ; maxLayer >= 1; maxLayer-- {
		g, err = lattice.BuildAnomalous(snap, attrs, maxLayer)
		if err == nil {
			break
		}
	}
	if err != nil {
		return fmt.Errorf("dot: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteDOT(f, highlight, tconf); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func selectMethods(name string, tcp, tconf float64) ([]localize.Localizer, error) {
	build := map[string]func() (localize.Localizer, error){
		"rapminer": func() (localize.Localizer, error) {
			return rapminer.New(rapminer.Config{TCP: tcp, TConf: tconf})
		},
		"adtributor": func() (localize.Localizer, error) { return adtributor.New(adtributor.DefaultConfig()) },
		"idice":      func() (localize.Localizer, error) { return idice.New(idice.DefaultConfig()) },
		"fpgrowth":   func() (localize.Localizer, error) { return fpgrowth.New(fpgrowth.DefaultConfig()) },
		"squeeze":    func() (localize.Localizer, error) { return squeeze.New(squeeze.DefaultConfig()) },
		"hotspot":    func() (localize.Localizer, error) { return hotspot.New(hotspot.DefaultConfig()) },
	}
	build["ensemble"] = func() (localize.Localizer, error) {
		rm, err := build["rapminer"]()
		if err != nil {
			return nil, err
		}
		fp, err := build["fpgrowth"]()
		if err != nil {
			return nil, err
		}
		sq, err := build["squeeze"]()
		if err != nil {
			return nil, err
		}
		return ensemble.New(rm, fp, sq)
	}
	if name == "all" {
		var out []localize.Localizer
		for _, key := range []string{"rapminer", "adtributor", "idice", "fpgrowth", "squeeze", "hotspot"} {
			m, err := build[key]()
			if err != nil {
				return nil, err
			}
			out = append(out, m)
		}
		return out, nil
	}
	b, ok := build[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("unknown method %q", name)
	}
	m, err := b()
	if err != nil {
		return nil, err
	}
	return []localize.Localizer{m}, nil
}
