package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCSV = `Location,AccessType,Website,actual,forecast
L1,Wireless,Site1,40,100
L1,Wireless,Site2,100,100
L1,Fixed,Site1,38,95
L1,Fixed,Site2,101,100
L2,Wireless,Site1,99,100
L2,Wireless,Site2,98,100
L2,Fixed,Site1,100,100
L2,Fixed,Site2,102,100
`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.csv")
	if err := os.WriteFile(path, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunLocalizesCSV(t *testing.T) {
	path := writeSample(t)
	var out strings.Builder
	if err := run(&out, []string{"-input", path, "-k", "2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "labeled 2 of 8 leaves") {
		t.Errorf("detector line missing:\n%s", got)
	}
	if !strings.Contains(got, "(L1, *, Site1)") {
		t.Errorf("RAP missing from output:\n%s", got)
	}
}

func TestRunAllMethods(t *testing.T) {
	path := writeSample(t)
	var out strings.Builder
	if err := run(&out, []string{"-input", path, "-method", "all", "-k", "1"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"RAPMiner", "Adtributor", "iDice", "FP-growth", "Squeeze", "HotSpot"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("method %s missing from output", name)
		}
	}
}

func TestRunWritesDOT(t *testing.T) {
	path := writeSample(t)
	dot := filepath.Join(t.TempDir(), "g.dot")
	var out strings.Builder
	if err := run(&out, []string{"-input", path, "-dot", dot}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatalf("read dot: %v", err)
	}
	if !strings.HasPrefix(string(data), "digraph rap {") {
		t.Errorf("dot file malformed: %.60s", data)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(&out, nil); err == nil {
		t.Error("missing -input accepted")
	}
	if err := run(&out, []string{"-input", "/nonexistent.csv"}); err == nil {
		t.Error("missing file accepted")
	}
	path := writeSample(t)
	if err := run(&out, []string{"-input", path, "-method", "bogus"}); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run(&out, []string{"-input", path, "-tcp", "2"}); err == nil {
		t.Error("invalid t_CP accepted")
	}
}

func TestSelectMethodsRoster(t *testing.T) {
	ms, err := selectMethods("all", 0.01, 0.8)
	if err != nil {
		t.Fatalf("selectMethods: %v", err)
	}
	if len(ms) != 6 {
		t.Errorf("all roster = %d methods, want 6", len(ms))
	}
	one, err := selectMethods("Squeeze", 0.01, 0.8)
	if err != nil || len(one) != 1 || one[0].Name() != "Squeeze" {
		t.Errorf("case-insensitive single method failed: %v %v", one, err)
	}
}

func TestRunVerboseDiagnostics(t *testing.T) {
	path := writeSample(t)
	var out strings.Builder
	if err := run(&out, []string{"-input", path, "-verbose"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"RAPMiner diagnostics:", "CP(Location)", "cuboids:", "early stop:"} {
		if !strings.Contains(got, want) {
			t.Errorf("verbose output missing %q:\n%s", want, got)
		}
	}
}
