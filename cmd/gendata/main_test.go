package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/kpi"
)

func TestRunSqueezeCorpus(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-corpus", "squeeze", "-dim", "2", "-raps", "1", "-cases", "2", "-out", dir})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var csvs, truths int
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".csv"):
			csvs++
		case strings.HasSuffix(e.Name(), "-truth.txt"):
			truths++
		}
	}
	if csvs != 2 || truths != 1 {
		t.Fatalf("got %d csvs and %d truth files, want 2 and 1", csvs, truths)
	}

	// The CSVs parse back into snapshots with labels.
	f, err := os.Open(filepath.Join(dir, "squeeze-B0(2,1)-case000.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := kpi.ReadCSV(f, nil)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if snap.NumAnomalous() == 0 {
		t.Error("exported case has no anomalous leaves")
	}

	// The truth file references the case files and parseable patterns.
	truth, err := os.ReadFile(filepath.Join(dir, "squeeze-B0(2,1)-truth.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(truth), "case000.csv:") {
		t.Errorf("truth file malformed:\n%s", truth)
	}
}

func TestRunRAPMDCorpus(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-corpus", "rapmd", "-cases", "1", "-out", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 { // one case + truth file
		t.Fatalf("got %d files, want 2", len(entries))
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-corpus", "bogus"}); err == nil {
		t.Error("unknown corpus accepted")
	}
	if err := run([]string{"-corpus", "squeeze", "-dim", "0"}); err == nil {
		t.Error("invalid dim accepted")
	}
	if err := run([]string{"-cases", "0"}); err == nil {
		t.Error("zero cases accepted")
	}
}

func TestRunExternalFormat(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-corpus", "squeeze", "-dim", "1", "-raps", "1", "-cases", "2", "-format", "external", "-out", dir})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "injection_info.csv")); err != nil {
		t.Errorf("index file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "000000.csv")); err != nil {
		t.Errorf("case file missing: %v", err)
	}
	if err := run([]string{"-format", "bogus", "-cases", "1"}); err == nil {
		t.Error("unknown format accepted")
	}
}
