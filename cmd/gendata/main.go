// Command gendata emits the repository's semi-synthetic corpora as CSV
// files, one snapshot per failure case plus a ground-truth index, so the
// datasets can be inspected or fed to external tooling.
//
// Usage:
//
//	gendata -corpus rapmd   [-cases 105] [-seed 2022] [-out dir]
//	gendata -corpus squeeze [-dim 2] [-raps 3] [-cases 10] [-seed 2022] [-out dir]
//	gendata -corpus stream  [-attrs region:40,isp:30,os:10,site:24] [-raps 2]
//	        [-cases 1] [-seed 2022] [-workers 0] [-batch-size 8192] [-out dir]
//
// The stream corpus is the cardinality-driven generator: attribute
// cardinalities are declared on the command line, leaves are derived from
// the seed batch by batch on a worker pool, and each case is written as a
// JSON snapshot (loadgen's and /v1/localize's wire format) without ever
// materializing the corpus in memory — so 10^6-10^7-leaf corpora are just
// bigger files, not bigger processes. Case i uses seed+i: distinct but
// reproducible failures.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/gendata"
	"repro/internal/kpi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gendata", flag.ContinueOnError)
	var (
		corpusKind = fs.String("corpus", "rapmd", "corpus to generate: rapmd, squeeze or stream")
		cases      = fs.Int("cases", 10, "number of failure cases")
		seed       = fs.Int64("seed", 2022, "generation seed")
		dim        = fs.Int("dim", 1, "squeeze corpus: RAP dimension (1-3)")
		raps       = fs.Int("raps", 1, "squeeze corpus: RAPs per case (1-3); stream corpus: RAPs per case")
		outDir     = fs.String("out", ".", "output directory")
		format     = fs.String("format", "csv", "output format: csv (Table III files + truth list) or external (the published dataset layout); stream corpora always write JSON snapshots")
		attrs      = fs.String("attrs", "region:40,isp:30,os:10,site:24", "stream corpus: comma-separated name:cardinality attribute list")
		workers    = fs.Int("workers", 0, "stream corpus: generation workers (0 = GOMAXPROCS)")
		batchSize  = fs.Int("batch-size", 0, "stream corpus: leaves per generated batch (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *corpusKind == "stream" {
		spec, err := parseStreamAttrs(*attrs)
		if err != nil {
			return err
		}
		spec.Seed = *seed
		spec.NumRAPs = *raps
		spec.Workers = *workers
		spec.BatchSize = *batchSize
		return writeStreamCorpus(spec, *cases, *outDir)
	}

	var (
		corpus *gendata.Corpus
		err    error
	)
	switch *corpusKind {
	case "rapmd":
		corpus, err = gendata.RAPMD(*seed, *cases)
	case "squeeze":
		corpus, err = gendata.SqueezeB0(*seed, gendata.SqueezeGroup{Dim: *dim, NumRAPs: *raps}, *cases)
	default:
		return fmt.Errorf("unknown corpus %q", *corpusKind)
	}
	if err != nil {
		return err
	}

	if *format == "external" {
		if err := gendata.WriteExternal(*outDir, corpus); err != nil {
			return err
		}
		fmt.Printf("wrote %d cases in the external layout to %s\n", len(corpus.Cases), *outDir)
		return nil
	}
	if *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	truthPath := filepath.Join(*outDir, corpus.Name+"-truth.txt")
	truth, err := os.Create(truthPath)
	if err != nil {
		return err
	}
	defer truth.Close()

	for i, c := range corpus.Cases {
		name := fmt.Sprintf("%s-case%03d.csv", corpus.Name, i)
		if err := writeSnapshot(filepath.Join(*outDir, name), c.Snapshot); err != nil {
			return err
		}
		fmt.Fprintf(truth, "%s:", name)
		for _, rap := range c.RAPs {
			fmt.Fprintf(truth, " %s", rap.Format(corpus.Schema))
		}
		fmt.Fprintln(truth)
	}
	fmt.Printf("wrote %d cases and %s\n", len(corpus.Cases), truthPath)
	return nil
}

// parseStreamAttrs parses "name:card,name:card,..." into a StreamSpec.
func parseStreamAttrs(s string) (gendata.StreamSpec, error) {
	var spec gendata.StreamSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, cardStr, ok := strings.Cut(part, ":")
		if !ok {
			return spec, fmt.Errorf("attribute %q: want name:cardinality", part)
		}
		card, err := strconv.Atoi(cardStr)
		if err != nil || card < 1 {
			return spec, fmt.Errorf("attribute %q: bad cardinality %q", name, cardStr)
		}
		spec.Attributes = append(spec.Attributes, gendata.StreamAttr{Name: name, Cardinality: card})
	}
	if len(spec.Attributes) == 0 {
		return spec, fmt.Errorf("-attrs %q declares no attributes", s)
	}
	return spec, nil
}

// writeStreamCorpus streams nCases JSON snapshots (case i seeded seed+i)
// plus a truth list into dir.
func writeStreamCorpus(spec gendata.StreamSpec, nCases int, dir string) error {
	if nCases < 1 {
		return fmt.Errorf("cases %d, want >= 1", nCases)
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	schema, err := spec.Schema()
	if err != nil {
		return err
	}
	truthPath := filepath.Join(dir, "stream-truth.txt")
	truth, err := os.Create(truthPath)
	if err != nil {
		return err
	}
	defer truth.Close()
	baseSeed := spec.Seed
	for i := 0; i < nCases; i++ {
		spec.Seed = baseSeed + int64(i)
		name := fmt.Sprintf("stream-case%03d.json", i)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := spec.StreamWriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("case %d: %w", i, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(truth, "%s:", name)
		for _, rap := range spec.RAPs() {
			fmt.Fprintf(truth, " %s", rap.Format(schema))
		}
		fmt.Fprintln(truth)
	}
	fmt.Printf("wrote %d stream cases (%d leaves each) and %s\n", nCases, spec.NumLeaves(), truthPath)
	return nil
}

func writeSnapshot(path string, snap *kpi.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := kpi.WriteCSV(f, snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
