// Command gendata emits the repository's semi-synthetic corpora as CSV
// files, one snapshot per failure case plus a ground-truth index, so the
// datasets can be inspected or fed to external tooling.
//
// Usage:
//
//	gendata -corpus rapmd   [-cases 105] [-seed 2022] [-out dir]
//	gendata -corpus squeeze [-dim 2] [-raps 3] [-cases 10] [-seed 2022] [-out dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/gendata"
	"repro/internal/kpi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gendata", flag.ContinueOnError)
	var (
		corpusKind = fs.String("corpus", "rapmd", "corpus to generate: rapmd or squeeze")
		cases      = fs.Int("cases", 10, "number of failure cases")
		seed       = fs.Int64("seed", 2022, "generation seed")
		dim        = fs.Int("dim", 1, "squeeze corpus: RAP dimension (1-3)")
		raps       = fs.Int("raps", 1, "squeeze corpus: RAPs per case (1-3)")
		outDir     = fs.String("out", ".", "output directory")
		format     = fs.String("format", "csv", "output format: csv (Table III files + truth list) or external (the published dataset layout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		corpus *gendata.Corpus
		err    error
	)
	switch *corpusKind {
	case "rapmd":
		corpus, err = gendata.RAPMD(*seed, *cases)
	case "squeeze":
		corpus, err = gendata.SqueezeB0(*seed, gendata.SqueezeGroup{Dim: *dim, NumRAPs: *raps}, *cases)
	default:
		return fmt.Errorf("unknown corpus %q", *corpusKind)
	}
	if err != nil {
		return err
	}

	if *format == "external" {
		if err := gendata.WriteExternal(*outDir, corpus); err != nil {
			return err
		}
		fmt.Printf("wrote %d cases in the external layout to %s\n", len(corpus.Cases), *outDir)
		return nil
	}
	if *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	truthPath := filepath.Join(*outDir, corpus.Name+"-truth.txt")
	truth, err := os.Create(truthPath)
	if err != nil {
		return err
	}
	defer truth.Close()

	for i, c := range corpus.Cases {
		name := fmt.Sprintf("%s-case%03d.csv", corpus.Name, i)
		if err := writeSnapshot(filepath.Join(*outDir, name), c.Snapshot); err != nil {
			return err
		}
		fmt.Fprintf(truth, "%s:", name)
		for _, rap := range c.RAPs {
			fmt.Fprintf(truth, " %s", rap.Format(corpus.Schema))
		}
		fmt.Fprintln(truth)
	}
	fmt.Printf("wrote %d cases and %s\n", len(corpus.Cases), truthPath)
	return nil
}

func writeSnapshot(path string, snap *kpi.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := kpi.WriteCSV(f, snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
