// Command monitor runs the Fig. 1 IT-operations loop against the simulated
// ISP CDN: it ticks through simulated minutes, raises a debounced aggregate
// alarm, localizes the root anomaly patterns while the alarm is active and
// prints the incident lifecycle. A failure from the CDN failure catalog is
// injected partway through the window.
//
// Usage:
//
//	monitor [-seed 7] [-minutes 25] [-failure-at 8] [-severity 0.6]
//	        [-kind site-outage] [-interval 0s] [-metrics-addr ""]
//	        [-pprof] [-log-level warn]
//	        [-flight-rules ""] [-flight-cooldown 2m] [-flight-spill-dir ""]
//
// With -metrics-addr set (e.g. :9090), the run exposes its live pipeline
// and miner metrics over HTTP — GET /metrics (Prometheus text format),
// GET /debug/vars (JSON), GET /debug/spans (recent trace spans),
// GET /debug/runs[/{id}] (per-run explain reports), GET /debug/slo
// (uptime/saturation; endpoint windows stay empty since the monitor serves
// no API traffic), the flight recorder under /debug/flight, and — with
// -pprof — the Go profiler under /debug/pprof/ — so a long monitoring
// session can be scraped, profiled and its localizations explained
// (`rapmctl explain -addr :9090`) like the serve binary. Every localizing
// tick runs under its own generated trace ID, grouping its spans and
// keying its explain report.
//
// The flight recorder evaluates -flight-rules (only gc-pause fires without
// API traffic) and always answers POST /debug/flight/capture, bundling
// pprof profiles, a metrics snapshot, recent spans and recent explain
// reports for a run that misbehaves mid-simulation.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"repro/internal/anomaly"
	"repro/internal/cdn"
	"repro/internal/flight"
	"repro/internal/httpapi"
	"repro/internal/kpi"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/rapminer"
	"repro/internal/rapminer/explain"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "monitor:", err)
		os.Exit(1)
	}
}

// failingSource wraps the simulator and applies the failure from a tick
// onward.
type failingSource struct {
	sim     *cdn.Simulator
	failure cdn.Failure
	from    time.Time
}

func (f *failingSource) Schema() *kpi.Schema { return f.sim.Schema() }

func (f *failingSource) SnapshotAt(ts time.Time) (*kpi.Snapshot, error) {
	snap, err := f.sim.SnapshotAt(ts)
	if err != nil {
		return nil, err
	}
	if !ts.Before(f.from) {
		if err := cdn.ApplyFailures(snap, []cdn.Failure{f.failure}); err != nil {
			return nil, err
		}
	}
	return snap, nil
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("monitor", flag.ContinueOnError)
	var (
		seed        = fs.Int64("seed", 7, "simulation seed")
		minutes     = fs.Int("minutes", 25, "simulated minutes to monitor")
		failureAt   = fs.Int("failure-at", 8, "minute at which the failure starts")
		severity    = fs.Float64("severity", 0.6, "fraction of traffic lost inside the failure scope")
		kindName    = fs.String("kind", "site-outage", "failure kind: node-outage, site-outage, regional-site-failure, access-degradation, client-bug")
		interval    = fs.Duration("interval", 0, "real time per simulated minute (0 = as fast as possible)")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/spans, /debug/slo and /debug/flight on this address (empty = off)")
		pprofOn     = fs.Bool("pprof", false, "also mount the Go profiler under /debug/pprof/ on -metrics-addr")
		logLevel    = fs.String("log-level", "warn", "log level: debug, info, warn, error")
		flightRules = fs.String("flight-rules", "", "flight-recorder triggers as kind=threshold,... (without API traffic only gc-pause fires); empty = manual captures only")
		flightCool  = fs.Duration("flight-cooldown", flight.DefaultCooldown, "minimum spacing between automatic captures per rule")
		flightSpill = fs.String("flight-spill-dir", "", "also write every diagnostic bundle to this directory as <id>.tar.gz")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rules, err := flight.ParseRules(*flightRules)
	if err != nil {
		return err
	}
	// The incident stream goes to w; structured logs (pipeline component
	// logger, spans at debug) go to stderr at the chosen level.
	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	obs.ConfigureLogging(os.Stderr, level, false)
	if *minutes < 1 || *failureAt < 0 || *failureAt >= *minutes {
		return fmt.Errorf("need 0 <= failure-at < minutes (got %d, %d)", *failureAt, *minutes)
	}
	kind, err := parseKind(*kindName)
	if err != nil {
		return err
	}

	sim, err := cdn.NewSimulator(cdn.DefaultConfig(*seed))
	if err != nil {
		return err
	}
	failure, err := sim.DrawFailure(rand.New(rand.NewSource(*seed)), kind)
	if err != nil {
		return err
	}
	failure.Severity = *severity

	start := time.Date(2026, 2, 18, 20, 0, 0, 0, time.UTC)
	src := &failingSource{
		sim:     sim,
		failure: failure,
		from:    start.Add(time.Duration(*failureAt) * time.Minute),
	}

	miner, err := rapminer.New(rapminer.DefaultConfig())
	if err != nil {
		return err
	}
	cfg := pipeline.DefaultConfig(anomaly.DefaultRelativeDeviation(), miner)
	cfg.AlarmThreshold = 0.005 // a single scope is a few percent of traffic
	monitor, err := pipeline.New(cfg)
	if err != nil {
		return err
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		// Sample Go runtime health alongside the pipeline metrics for as
		// long as the run lasts.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		obs.StartRuntimeCollector(ctx, nil, 0)
		obs.RegisterBuildInfo(nil)
		recorder := flight.New(flight.Config{
			Rules:    rules,
			Cooldown: *flightCool,
			SpillDir: *flightSpill,
			Sources:  monitorFlightSources(),
		})
		go recorder.Run(ctx)
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", obs.WithUptime(nil, obs.Default().Handler()))
		mux.Handle("GET /debug/vars", obs.WithUptime(nil, obs.Default().VarsHandler()))
		mux.Handle("GET /debug/spans", obs.SpansHandler())
		mux.Handle("GET /debug/runs", explain.Default().RunsHandler())
		mux.Handle("GET /debug/runs/{id}", explain.Default().RunHandler())
		mux.Handle("GET /debug/slo", httpapi.NewSLOHandler(nil))
		mux.Handle("GET /debug/flight", recorder.IndexHandler())
		mux.Handle("GET /debug/flight/{id}", recorder.ArchiveHandler())
		mux.Handle("POST /debug/flight/capture", recorder.CaptureHandler())
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		go func() { _ = http.Serve(ln, mux) }()
		fmt.Fprintf(w, "metrics on http://%s/metrics\n", ln.Addr())
	}

	fmt.Fprintf(w, "monitoring simulated CDN from %s (%d minutes)\n", start.Format("15:04"), *minutes)
	fmt.Fprintf(w, "scheduled failure at minute %d: %s\n\n", *failureAt, failure.Format(sim.Schema()))

	runner, err := pipeline.StartRunner(monitor, src, start, time.Minute, *interval, *minutes)
	if err != nil {
		return err
	}
	defer runner.Stop()

	for ev := range runner.Events() {
		switch ev.Kind {
		case pipeline.EventTick:
			fmt.Fprintf(w, "%s  dev %5.2f%%  ok\n", ev.Time.Format("15:04"), 100*ev.Deviation)
		case pipeline.EventArming:
			fmt.Fprintf(w, "%s  dev %5.2f%%  alarm arming\n", ev.Time.Format("15:04"), 100*ev.Deviation)
		case pipeline.EventOpened:
			fmt.Fprintf(w, "%s  dev %5.2f%%  INCIDENT #%d OPENED\n", ev.Time.Format("15:04"), 100*ev.Deviation, ev.Incident.ID)
			printScopes(w, sim.Schema(), ev)
		case pipeline.EventUpdated:
			fmt.Fprintf(w, "%s  dev %5.2f%%  incident #%d scope updated\n", ev.Time.Format("15:04"), 100*ev.Deviation, ev.Incident.ID)
			printScopes(w, sim.Schema(), ev)
		case pipeline.EventOngoing:
			fmt.Fprintf(w, "%s  dev %5.2f%%  incident #%d ongoing\n", ev.Time.Format("15:04"), 100*ev.Deviation, ev.Incident.ID)
		case pipeline.EventResolved:
			fmt.Fprintf(w, "%s  dev %5.2f%%  incident #%d resolved after %d scope updates\n",
				ev.Time.Format("15:04"), 100*ev.Deviation, ev.Incident.ID, ev.Incident.Updates)
		}
	}
	return runner.Err()
}

// monitorFlightSources are the monitor's bundle artifacts: a metrics
// snapshot, recent spans grouped by trace, and the recent explain reports
// (the monitor has no request exemplars to chase, so it bundles the runs
// directly).
func monitorFlightSources() []flight.Source {
	marshal := func(name string, v any) ([]flight.Artifact, error) {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return nil, err
		}
		return []flight.Artifact{{Name: name, Data: data}}, nil
	}
	return []flight.Source{
		{Name: "metrics.prom", Fetch: func(context.Context) ([]flight.Artifact, error) {
			var buf bytes.Buffer
			if err := obs.Default().WritePrometheus(&buf); err != nil {
				return nil, err
			}
			return []flight.Artifact{{Name: "metrics.prom", Data: buf.Bytes()}}, nil
		}},
		{Name: "spans.json", Fetch: func(context.Context) ([]flight.Artifact, error) {
			return marshal("spans.json", struct {
				Traces []obs.TraceSpans `json:"traces"`
			}{Traces: obs.GroupSpans(obs.RecentSpans())})
		}},
		{Name: "runs.json", Fetch: func(context.Context) ([]flight.Artifact, error) {
			return marshal("runs.json", explain.Default().Recent())
		}},
	}
}

func printScopes(w io.Writer, schema *kpi.Schema, ev pipeline.Event) {
	for _, p := range ev.Incident.Scopes {
		fmt.Fprintf(w, "        -> %s (score %.3f)\n", p.Combo.Format(schema), p.Score)
	}
}

func parseKind(name string) (cdn.FailureKind, error) {
	kinds := []cdn.FailureKind{
		cdn.NodeOutage, cdn.SiteOutage, cdn.RegionalSiteFailure,
		cdn.AccessDegradation, cdn.ClientBug,
	}
	for _, k := range kinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown failure kind %q", name)
}
