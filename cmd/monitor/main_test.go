package main

import (
	"strings"
	"testing"
)

func TestRunDetectsScheduledOutage(t *testing.T) {
	var out strings.Builder
	err := run(&out, []string{"-minutes", "12", "-failure-at", "4", "-seed", "7"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "INCIDENT #1 OPENED") {
		t.Errorf("no incident opened:\n%s", got)
	}
	if !strings.Contains(got, "Site") {
		t.Errorf("no localized scope printed:\n%s", got)
	}
}

func TestRunIncidentResolves(t *testing.T) {
	// The failure stops never in this harness, so resolution is tested
	// by pointing the failure window past the monitored range... instead
	// assert that a clean run produces only ok ticks.
	var out strings.Builder
	err := run(&out, []string{"-minutes", "6", "-failure-at", "5", "-severity", "0.0"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(out.String(), "INCIDENT") {
		t.Errorf("zero-severity run opened an incident:\n%s", out.String())
	}
}

func TestRunValidation(t *testing.T) {
	var out strings.Builder
	if err := run(&out, []string{"-minutes", "0"}); err == nil {
		t.Error("zero minutes accepted")
	}
	if err := run(&out, []string{"-minutes", "5", "-failure-at", "9"}); err == nil {
		t.Error("failure beyond window accepted")
	}
	if err := run(&out, []string{"-kind", "bogus"}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, name := range []string{"node-outage", "site-outage", "regional-site-failure", "access-degradation", "client-bug"} {
		k, err := parseKind(name)
		if err != nil {
			t.Fatalf("parseKind(%s): %v", name, err)
		}
		if k.String() != name {
			t.Errorf("round trip %s -> %s", name, k)
		}
	}
}
