package main

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestRunDetectsScheduledOutage(t *testing.T) {
	var out strings.Builder
	err := run(&out, []string{"-minutes", "12", "-failure-at", "4", "-seed", "7"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "INCIDENT #1 OPENED") {
		t.Errorf("no incident opened:\n%s", got)
	}
	if !strings.Contains(got, "Site") {
		t.Errorf("no localized scope printed:\n%s", got)
	}
}

func TestRunIncidentResolves(t *testing.T) {
	// The failure stops never in this harness, so resolution is tested
	// by pointing the failure window past the monitored range... instead
	// assert that a clean run produces only ok ticks.
	var out strings.Builder
	err := run(&out, []string{"-minutes", "6", "-failure-at", "5", "-severity", "0.0"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(out.String(), "INCIDENT") {
		t.Errorf("zero-severity run opened an incident:\n%s", out.String())
	}
}

func TestRunValidation(t *testing.T) {
	var out strings.Builder
	if err := run(&out, []string{"-minutes", "0"}); err == nil {
		t.Error("zero minutes accepted")
	}
	if err := run(&out, []string{"-minutes", "5", "-failure-at", "9"}); err == nil {
		t.Error("failure beyond window accepted")
	}
	if err := run(&out, []string{"-kind", "bogus"}); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run(&out, []string{"-flight-rules", "bogus=1"}); err == nil {
		t.Error("bogus flight rules accepted")
	}
}

// syncBuffer lets the test read run's output while run still writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunServesMetricsWhileMonitoring(t *testing.T) {
	// The default registry is shared across this package's tests, so wait
	// for the counter to move past its current value, not to an absolute.
	baseline := obs.Default().Counter("pipeline_incidents_opened_total", "").Value()
	var out syncBuffer
	done := make(chan error, 1)
	// Slow the ticks enough to scrape mid-run.
	go func() {
		done <- run(&out, []string{"-minutes", "120", "-failure-at", "3",
			"-interval", "25ms", "-metrics-addr", "127.0.0.1:0"})
	}()

	// Find the advertised metrics URL.
	var url string
	deadline := time.Now().Add(5 * time.Second)
	for url == "" {
		if time.Now().After(deadline) {
			t.Fatalf("metrics URL never printed:\n%s", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "metrics on "); ok {
				url = strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Scrape until the failure (minute 3 + 2-tick debounce) shows up.
	opened := func(body string) bool {
		for _, line := range strings.Split(body, "\n") {
			if v, ok := strings.CutPrefix(line, "pipeline_incidents_opened_total "); ok {
				f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				return err == nil && f > baseline
			}
		}
		return false
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if opened(string(body)) && strings.Contains(string(body), "rapminer_cuboids_visited") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("incident metrics never appeared:\n%s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The run finishes on its own a few seconds later; don't wait for it.
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, name := range []string{"node-outage", "site-outage", "regional-site-failure", "access-degradation", "client-bug"} {
		k, err := parseKind(name)
		if err != nil {
			t.Fatalf("parseKind(%s): %v", name, err)
		}
		if k.String() != name {
			t.Errorf("round trip %s -> %s", name, k)
		}
	}
}

// TestRunObservabilityParity pins the serve-parity surface of the metrics
// listener: /debug/slo, the flight recorder, and (opt-in) the Go profiler
// are all mounted next to /metrics.
func TestRunObservabilityParity(t *testing.T) {
	var out syncBuffer
	go func() {
		_ = run(&out, []string{"-minutes", "600", "-failure-at", "3",
			"-interval", "25ms", "-metrics-addr", "127.0.0.1:0", "-pprof"})
	}()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("metrics URL never printed:\n%s", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "metrics on "); ok {
				base = strings.TrimSuffix(strings.TrimSpace(rest), "/metrics")
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, body
	}

	if code, body := get("/debug/slo"); code != http.StatusOK || !strings.Contains(string(body), "uptime_seconds") {
		t.Errorf("/debug/slo = %d %s", code, body)
	}
	if code, body := get("/debug/flight"); code != http.StatusOK || !strings.Contains(string(body), `"bundles"`) {
		t.Errorf("/debug/flight = %d %s", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d with -pprof", code)
	}
	// The monitor run keeps ticking in the background; the process exits
	// with the test binary.
}
