package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/flight"
	"repro/internal/httpapi"
	"repro/internal/loadreport"
	"repro/internal/obs"
)

// testServer serves the real API handler on a loopback listener.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(httpapi.NewHandlerOpts(httpapi.Options{
		Registry: obs.NewRegistry(),
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestClosedLoopReport(t *testing.T) {
	srv := testServer(t)
	out := filepath.Join(t.TempDir(), "report.json")
	err := run(context.Background(), &bytes.Buffer{}, []string{
		"-addr", srv.URL, "-mode", "closed", "-concurrency", "2",
		"-duration", "1s", "-cases", "2", "-corpus", "squeeze",
		"-out", out, "-max-error-rate", "0",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rep, err := loadreport.ReadFile(out)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	if rep.Mode != "closed" || rep.Endpoint != "localize" {
		t.Fatalf("report shape = %s/%s", rep.Mode, rep.Endpoint)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests recorded")
	}
	if rep.Status["200"] != rep.Requests {
		t.Fatalf("status map %v does not account for all %d requests", rep.Status, rep.Requests)
	}
	if rep.ErrorRate != 0 {
		t.Fatalf("error rate %v on a healthy server", rep.ErrorRate)
	}
	if rep.Latency.P50MS <= 0 || rep.Latency.P99MS < rep.Latency.P50MS {
		t.Fatalf("implausible latency summary %+v", rep.Latency)
	}
	if rep.ThroughputRPS <= 0 {
		t.Fatalf("throughput %v", rep.ThroughputRPS)
	}
	if len(rep.Slowest) == 0 {
		t.Fatal("no slowest requests retained")
	}
	for _, s := range rep.Slowest {
		if len(s.TraceID) != 32 {
			t.Fatalf("slow request trace id %q is not 32 hex chars", s.TraceID)
		}
	}
}

func TestOpenLoopBatchWithRamp(t *testing.T) {
	srv := testServer(t)
	var buf bytes.Buffer
	err := run(context.Background(), &buf, []string{
		"-addr", strings.TrimPrefix(srv.URL, "http://"), // exercise host:port shorthand
		"-mode", "open", "-qps", "50", "-ramp", "200ms", "-concurrency", "8",
		"-duration", "1s", "-cases", "2", "-batch-items", "2",
		"-endpoint", "batch", "-corpus", "stream", "-attrs", "region:4,isp:3",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rep, err := loadreport.Read(&buf)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	if rep.Mode != "open" || rep.Endpoint != "batch" || rep.TargetQPS != 50 {
		t.Fatalf("report shape %s/%s qps=%v", rep.Mode, rep.Endpoint, rep.TargetQPS)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests recorded")
	}
	if rep.NetErrors != 0 {
		t.Fatalf("%d net errors against a live server (status %v)", rep.NetErrors, rep.Status)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "bursty"},
		{"-endpoint", "incidents"},
		{"-corpus", "netflix"},
		{"-mode", "open", "-qps", "0"},
		{"-corpus", "stream", "-attrs", "region"},
	} {
		if err := run(context.Background(), &bytes.Buffer{}, append(args, "-duration", "10ms")); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRenderSnapshotsDeterministic(t *testing.T) {
	a, err := renderSnapshots("stream", 7, 3, "region:4,isp:3")
	if err != nil {
		t.Fatal(err)
	}
	b, err := renderSnapshots("stream", 7, 3, "region:4,isp:3")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("snapshot %d differs across identical renders", i)
		}
	}
	if bytes.Equal(a[0], a[1]) {
		t.Fatal("distinct cases rendered identical snapshots")
	}
}

func TestRunHonorsContextCancel(t *testing.T) {
	srv := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, &bytes.Buffer{}, []string{
			"-addr", srv.URL, "-mode", "closed", "-concurrency", "1",
			"-duration", "1h", "-cases", "1",
		})
	}()
	time.Sleep(300 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after cancel: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop after context cancel")
	}
}

// TestCaptureOnFail pins the failed-gate capture path: when -max-error-rate
// trips, loadgen pulls a diagnostic bundle from the target's flight
// recorder and writes the archive locally before exiting non-zero.
func TestCaptureOnFail(t *testing.T) {
	rec := flight.New(flight.Config{Registry: obs.NewRegistry(), CPUProfile: time.Millisecond})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/localize", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	})
	mux.Handle("GET /debug/flight/{id}", rec.ArchiveHandler())
	mux.Handle("POST /debug/flight/capture", rec.CaptureHandler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	bundle := filepath.Join(t.TempDir(), "fail.tar.gz")
	err := run(context.Background(), &bytes.Buffer{}, []string{
		"-addr", srv.URL, "-mode", "closed", "-concurrency", "1",
		"-duration", "200ms", "-cases", "1",
		"-max-error-rate", "0", "-capture-on-fail", bundle,
	})
	if err == nil || !strings.Contains(err.Error(), "error rate") {
		t.Fatalf("gate did not trip: %v", err)
	}
	data, rerr := os.ReadFile(bundle)
	if rerr != nil {
		t.Fatalf("no bundle written: %v", rerr)
	}
	gz, gerr := gzip.NewReader(bytes.NewReader(data))
	if gerr != nil {
		t.Fatalf("bundle is not gzip: %v", gerr)
	}
	if _, cerr := io.Copy(io.Discard, gz); cerr != nil {
		t.Fatalf("bundle archive corrupt: %v", cerr)
	}
	if rec.Total() != 1 {
		t.Errorf("server captured %d bundles, want 1", rec.Total())
	}
	// The gate verdict travels as the capture reason.
	if reason := rec.Bundles()[0].Reason; !strings.Contains(reason, "loadgen") {
		t.Errorf("capture reason %q does not mention loadgen", reason)
	}
}

// TestCaptureOnFailStaysQuietOnPass checks a green run writes no bundle.
func TestCaptureOnFailStaysQuietOnPass(t *testing.T) {
	srv := testServer(t)
	bundle := filepath.Join(t.TempDir(), "unused.tar.gz")
	err := run(context.Background(), &bytes.Buffer{}, []string{
		"-addr", srv.URL, "-mode", "closed", "-concurrency", "1",
		"-duration", "200ms", "-cases", "1",
		"-max-error-rate", "0", "-capture-on-fail", bundle,
	})
	if err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
	if _, err := os.Stat(bundle); err == nil {
		t.Error("bundle written although the gate never tripped")
	}
}

// TestTicksReplayContinuous drives the -ticks discipline end to end against
// a real handler mounted with the continuous endpoints.
func TestTicksReplayContinuous(t *testing.T) {
	srv := httptest.NewServer(httpapi.NewHandlerOpts(httpapi.Options{
		Registry:   obs.NewRegistry(),
		Continuous: true,
	}))
	t.Cleanup(srv.Close)
	out := filepath.Join(t.TempDir(), "ticks.json")
	err := run(context.Background(), &bytes.Buffer{}, []string{
		"-addr", srv.URL, "-ticks", "8", "-touch", "0.1",
		"-fail-every", "4", "-fail-for", "2",
		"-attrs", "region:6,isp:4,proto:3", "-seed", "7",
		"-out", out, "-max-error-rate", "0",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rep, err := loadreport.ReadFile(out)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	if rep.Mode != "ticks" || rep.Endpoint != "observe/delta" {
		t.Fatalf("report shape = %s/%s", rep.Mode, rep.Endpoint)
	}
	if rep.Requests != 8 {
		t.Fatalf("requests %d, want 8 ticks", rep.Requests)
	}
	if rep.Status["200"] != 8 {
		t.Fatalf("status map %v", rep.Status)
	}
	if rep.ErrorRate != 0 {
		t.Fatalf("error rate %v", rep.ErrorRate)
	}
}

// TestTicksAgainstPlainServerFails: without -continuous the baseline install
// 404s and the replay reports a hard error instead of limping along.
func TestTicksAgainstPlainServerFails(t *testing.T) {
	srv := testServer(t)
	err := run(context.Background(), &bytes.Buffer{}, []string{
		"-addr", srv.URL, "-ticks", "3",
	})
	if err == nil {
		t.Fatal("replay against a non-continuous server succeeded")
	}
	if !strings.Contains(err.Error(), "-continuous") {
		t.Fatalf("error %q does not point at -continuous", err)
	}
}
