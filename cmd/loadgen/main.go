// Command loadgen replays localization traffic against a running serve
// instance and reports the client-observed latency distribution, so the
// saturation behavior the server's /debug/slo page claims can be checked
// from the outside.
//
//	loadgen [-addr localhost:8080] [-endpoint localize|batch]
//	        [-mode open|closed] [-qps 20] [-ramp 0s] [-concurrency 8]
//	        [-duration 30s] [-method rapminer] [-k 3]
//	        [-corpus squeeze|rapmd|stream] [-seed 42] [-cases 8]
//	        [-attrs region:7,isp:5,proto:3] [-batch-items 4]
//	        [-slowest 5] [-out -] [-max-error-rate -1]
//	        [-capture-on-fail bundle.tar.gz]
//	        [-ticks 0] [-touch 0.05] [-fail-every 0] [-fail-for 3]
//
// Two driving disciplines:
//
//   - open (default): an open-loop arrival process offers -qps requests per
//     second regardless of how fast the server answers, optionally ramping
//     from zero over -ramp. Requests that would exceed the -concurrency
//     in-flight cap are counted as dropped rather than queued, so a server
//     that falls behind shows up as drops and rising latency instead of
//     silent client-side queueing (coordinated omission).
//   - closed: -concurrency workers each issue the next request as soon as
//     the previous answer lands. Throughput then measures the server's
//     capacity at that concurrency.
//
// A third discipline, -ticks N, replays the continuous-localization path
// against a serve started with -continuous: one full stream-corpus snapshot
// installs the baseline (POST /v1/observe/snapshot), then N pre-rendered
// delta ticks stream sequentially to POST /v1/observe/delta, each
// re-observing -touch of the leaves; -fail-every/-fail-for open injected
// failure windows so the replay drives real incidents. The report's
// throughput is the client-observed tick rate.
//
// Request bodies are pre-rendered from an internal/gendata corpus (the
// squeeze or rapmd evaluation corpora, or the cardinality-driven stream
// generator) and cycled; every request carries a fresh W3C traceparent so
// a slow request in the report can be chased into the server's
// /debug/runs/{trace-id} explain page. Latency lands in a log-bucketed
// histogram; the final report (JSON, schema in internal/loadreport) carries
// p50/p90/p99/p999, throughput, per-status counts and the degraded /
// 503-backpressure / 504-deadline rates. cmd/benchjson diffs such reports
// against a committed baseline with `benchjson -loadgen`.
//
// With -max-error-rate >= 0 the run exits non-zero when the hard error rate
// (network failures plus 5xx other than 503/504) exceeds it — CI's
// load-smoke job runs with -max-error-rate 0. Add -capture-on-fail <path>
// to pull a diagnostic bundle (pprof profiles, SLO report, spans, explain
// reports) from the target's flight recorder the moment the gate trips,
// so a red load test ships its own post-mortem evidence.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gendata"
	"repro/internal/kpi"
	"repro/internal/loadreport"
	"repro/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// latencyBuckets resolve client-observed latency from 0.5ms to ~4min on a
// log scale — wide enough that a saturated server's tail still lands in a
// finite bucket.
var latencyBuckets = obs.ExpBuckets(0.0005, 2, 20)

// collector accumulates one run's client-side telemetry. The histogram is
// lock-free; the mutex only guards the status map and the slowest list.
type collector struct {
	hist      *obs.Histogram
	requests  atomic.Uint64
	netErrors atomic.Uint64
	hardErrs  atomic.Uint64 // net errors + 5xx other than 503/504
	degraded  atomic.Uint64
	rejected  atomic.Uint64 // 503
	retryable atomic.Uint64 // 503 with Retry-After
	timeouts  atomic.Uint64 // 504
	dropped   atomic.Uint64 // open loop: in-flight cap reached

	mu      sync.Mutex
	status  map[string]uint64
	maxSec  float64
	slowest []loadreport.SlowRequest
	keep    int
}

func newCollector(keepSlowest int) *collector {
	return &collector{
		hist:   obs.NewRegistry().Histogram("loadgen_latency_seconds", "Client-observed request latency.", latencyBuckets),
		status: make(map[string]uint64),
		keep:   keepSlowest,
	}
}

// record folds one finished request into the run. Failed sends count
// toward requests/netErrors (so the error rate covers every attempt) but
// never enter the latency histogram or the slowest list: a refused
// connection returns in microseconds and would drag the latency summary
// down exactly when the server is unhealthy.
func (c *collector) record(traceID string, elapsed time.Duration, status int, degraded, retryAfter bool, netErr error) {
	c.requests.Add(1)
	if netErr != nil {
		c.netErrors.Add(1)
		c.hardErrs.Add(1)
		c.mu.Lock()
		c.status["error"]++
		c.mu.Unlock()
		return
	}
	sec := elapsed.Seconds()
	c.hist.Observe(sec)
	key := strconv.Itoa(status)
	switch {
	case status == http.StatusServiceUnavailable:
		c.rejected.Add(1)
		if retryAfter {
			c.retryable.Add(1)
		}
	case status == http.StatusGatewayTimeout:
		c.timeouts.Add(1)
	case status >= 500:
		c.hardErrs.Add(1)
	}
	if degraded {
		c.degraded.Add(1)
	}
	c.mu.Lock()
	c.status[key]++
	if sec > c.maxSec {
		c.maxSec = sec
	}
	// Keep the top-keep slowest requests by replacing the current fastest
	// entry; at the sizes -slowest allows, a linear scan beats a heap.
	if c.keep > 0 {
		entry := loadreport.SlowRequest{TraceID: traceID, LatencyMS: sec * 1000, Status: status}
		if len(c.slowest) < c.keep {
			c.slowest = append(c.slowest, entry)
		} else {
			minIdx := 0
			for i, s := range c.slowest {
				if s.LatencyMS < c.slowest[minIdx].LatencyMS {
					minIdx = i
				}
			}
			if entry.LatencyMS > c.slowest[minIdx].LatencyMS {
				c.slowest[minIdx] = entry
			}
		}
	}
	c.mu.Unlock()
}

// report assembles the final document. elapsed is the measured wall time.
func (c *collector) report(elapsed time.Duration) *loadreport.Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.requests.Load()
	rep := &loadreport.Report{
		DurationSeconds: elapsed.Seconds(),
		Requests:        n,
		Status:          c.status,
		NetErrors:       c.netErrors.Load(),
		Degraded:        c.degraded.Load(),
		Rejected503:     c.rejected.Load(),
		Timeout504:      c.timeouts.Load(),
		Dropped:         c.dropped.Load(),
		Latency: loadreport.LatencySummary{
			P50MS:  c.hist.Quantile(0.50) * 1000,
			P90MS:  c.hist.Quantile(0.90) * 1000,
			P99MS:  c.hist.Quantile(0.99) * 1000,
			P999MS: c.hist.Quantile(0.999) * 1000,
			MaxMS:  c.maxSec * 1000,
		},
	}
	if cnt := c.hist.Count(); cnt > 0 {
		rep.Latency.MeanMS = c.hist.Sum() / float64(cnt) * 1000
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(n) / elapsed.Seconds()
	}
	if n > 0 {
		rep.ErrorRate = float64(c.hardErrs.Load()) / float64(n)
		rep.DegradedRate = float64(c.degraded.Load()) / float64(n)
		rep.RetryRate = float64(c.retryable.Load()) / float64(n)
		rep.TimeoutRate = float64(c.timeouts.Load()) / float64(n)
	}
	// Slowest first.
	for i := 0; i < len(c.slowest); i++ {
		for j := i + 1; j < len(c.slowest); j++ {
			if c.slowest[j].LatencyMS > c.slowest[i].LatencyMS {
				c.slowest[i], c.slowest[j] = c.slowest[j], c.slowest[i]
			}
		}
	}
	rep.Slowest = c.slowest
	return rep
}

func run(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "localhost:8080", "serve address (host:port or full URL)")
		endpoint    = fs.String("endpoint", "localize", "target endpoint: localize or batch")
		mode        = fs.String("mode", "open", "driving discipline: open (target -qps arrival rate) or closed (-concurrency request loops)")
		qps         = fs.Float64("qps", 20, "open loop: offered requests per second at full ramp")
		ramp        = fs.Duration("ramp", 0, "open loop: ramp the offered rate from 0 to -qps over this long")
		concurrency = fs.Int("concurrency", 8, "closed loop: worker count; open loop: max in-flight requests before sends are dropped")
		duration    = fs.Duration("duration", 30*time.Second, "how long to drive load")
		method      = fs.String("method", "rapminer", "localization method to request")
		k           = fs.Int("k", 3, "patterns to request per localization")
		corpus      = fs.String("corpus", "squeeze", "request corpus: squeeze, rapmd or stream")
		seed        = fs.Int64("seed", 42, "corpus seed")
		cases       = fs.Int("cases", 8, "distinct snapshots to pre-render and cycle through")
		attrs       = fs.String("attrs", "region:7,isp:5,proto:3", "stream corpus: comma-separated name:cardinality attribute spec")
		batchItems  = fs.Int("batch-items", 4, "batch endpoint: snapshots per request")
		slowest     = fs.Int("slowest", 5, "slowest requests to report with trace IDs")
		out         = fs.String("out", "-", "report path (- = stdout)")
		timeout     = fs.Duration("timeout", time.Minute, "per-request client timeout")
		maxErrRate  = fs.Float64("max-error-rate", -1, "exit non-zero when the hard error rate exceeds this fraction (negative = never)")
		captureFail = fs.String("capture-on-fail", "", "when the -max-error-rate gate trips, pull a diagnostic bundle from the target's flight recorder and write it to this path")
		ticks       = fs.Int("ticks", 0, "continuous replay: install one full stream-corpus snapshot, then POST this many delta ticks to /v1/observe/delta (requires serve -continuous; 0 = disabled)")
		touch       = fs.Float64("touch", 0.05, "continuous replay: fraction of leaves re-observed per tick")
		failEvery   = fs.Int("fail-every", 0, "continuous replay: open an injected failure window every N ticks (0 = none)")
		failFor     = fs.Int("fail-for", 3, "continuous replay: ticks each failure window lasts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ticks > 0 {
		// Tick replay is its own driving discipline: strictly sequential
		// (the server serializes ticks against searches anyway), measuring
		// the achievable tick rate of the delta-ingestion path.
		spec, err := parseStreamAttrs(*attrs)
		if err != nil {
			return err
		}
		spec.Seed = *seed
		spec.NumRAPs = 2
		tspec := gendata.TickSpec{TouchFraction: *touch, FailEvery: *failEvery, FailFor: *failFor}
		return runTicks(ctx, w, normalizeAddr(*addr), spec, tspec, *ticks, *timeout, *slowest, *out, *maxErrRate)
	}
	if *mode != "open" && *mode != "closed" {
		return fmt.Errorf("unknown mode %q (want open or closed)", *mode)
	}
	if *endpoint != "localize" && *endpoint != "batch" {
		return fmt.Errorf("unknown endpoint %q (want localize or batch)", *endpoint)
	}
	if *concurrency < 1 || *cases < 1 || *batchItems < 1 {
		return fmt.Errorf("concurrency, cases and batch-items must be positive")
	}
	if *mode == "open" && *qps <= 0 {
		return fmt.Errorf("open loop needs -qps > 0")
	}

	bodies, err := renderBodies(*corpus, *seed, *cases, *attrs, *endpoint, *batchItems)
	if err != nil {
		return err
	}
	var sizeTotal int
	for _, b := range bodies {
		sizeTotal += len(b)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d %s bodies (%.1f KB avg) -> %s %s for %s\n",
		len(bodies), *corpus, float64(sizeTotal)/float64(len(bodies))/1024,
		*mode, *endpoint, *duration)

	url := normalizeAddr(*addr)
	switch *endpoint {
	case "localize":
		url += "/v1/localize"
	case "batch":
		url += "/v1/localize/batch"
	}
	url += "?method=" + *method + "&k=" + strconv.Itoa(*k)

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConnsPerHost: *concurrency,
		},
	}
	col := newCollector(*slowest)
	next := new(atomic.Uint64) // cycles through bodies

	shoot := func(ctx context.Context) {
		body := bodies[next.Add(1)%uint64(len(bodies))]
		tc := obs.NewTraceContext()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			col.record(tc.TraceID, 0, 0, false, false, err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("traceparent", tc.Traceparent())
		start := time.Now()
		resp, err := client.Do(req)
		elapsed := time.Since(start)
		if err != nil {
			col.record(tc.TraceID, elapsed, 0, false, false, err)
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		degraded := resp.Header.Get("X-Rapminer-Degraded") != ""
		retryAfter := resp.Header.Get("Retry-After") != ""
		col.record(tc.TraceID, elapsed, resp.StatusCode, degraded, retryAfter, nil)
	}

	runCtx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	switch *mode {
	case "closed":
		for i := 0; i < *concurrency; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for runCtx.Err() == nil {
					shoot(ctx) // the request itself may outlive the window
				}
			}()
		}
		<-runCtx.Done()
	case "open":
		inflight := make(chan struct{}, *concurrency)
		// Pace against an absolute schedule: the n-th send fires at
		// start + Σ 1/rate(i), so timer granularity and loop overhead never
		// accumulate into a systematically lower offered rate. A late wakeup
		// fires immediately and the schedule catches up.
		next := start
		for runCtx.Err() == nil {
			// Offered rate ramps linearly from 0 to -qps over -ramp, with a
			// floor of min(1 rps, -qps) so the first request is not postponed
			// forever yet sub-1-qps targets are never exceeded.
			rate := *qps
			if *ramp > 0 {
				if frac := next.Sub(start).Seconds() / ramp.Seconds(); frac < 1 {
					rate = max(*qps*frac, min(1, *qps))
				}
			}
			next = next.Add(time.Duration(float64(time.Second) / rate))
			if wait := time.Until(next); wait > 0 {
				select {
				case <-runCtx.Done():
					continue
				case <-time.After(wait):
				}
			}
			select {
			case inflight <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-inflight }()
					shoot(ctx)
				}()
			default:
				// Open-loop discipline: never queue client-side. A full
				// in-flight window means the server is behind the offered
				// rate; count it instead of distorting the latency tail.
				col.dropped.Add(1)
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := col.report(elapsed)
	rep.Mode = *mode
	rep.Endpoint = *endpoint
	rep.Method = *method
	rep.Concurrency = *concurrency
	if *mode == "open" {
		rep.TargetQPS = *qps
	}

	dst := w
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if err := rep.Write(dst); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d requests in %.1fs (%.1f rps)  p50 %.1fms  p99 %.1fms  errors %.2f%%  degraded %.2f%%  503 %d  504 %d  dropped %d\n",
		rep.Requests, rep.DurationSeconds, rep.ThroughputRPS,
		rep.Latency.P50MS, rep.Latency.P99MS,
		100*rep.ErrorRate, 100*rep.DegradedRate, rep.Rejected503, rep.Timeout504, rep.Dropped)
	if *maxErrRate >= 0 && rep.ErrorRate > *maxErrRate {
		gateErr := fmt.Errorf("hard error rate %.2f%% exceeds limit %.2f%% (%d net errors, status %v)",
			100*rep.ErrorRate, 100**maxErrRate, rep.NetErrors, rep.Status)
		if *captureFail != "" {
			// The server is still up (it answered the load) — grab its
			// evidence while the SLO windows and exemplars still show the
			// failure, and attach the gate verdict as the capture reason.
			if err := captureBundle(normalizeAddr(*addr), gateErr.Error(), *captureFail); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: flight capture failed: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "loadgen: wrote diagnostic bundle to %s\n", *captureFail)
			}
		}
		return gateErr
	}
	return nil
}

// runTicks drives the continuous-localization path: one baseline snapshot
// install (POST /v1/observe/snapshot), then `ticks` sequential delta ticks
// (POST /v1/observe/delta). Bodies are pre-rendered so generation cost never
// pollutes the measured tick latency; the report's throughput is the
// client-observed tick rate.
func runTicks(ctx context.Context, w io.Writer, base string, spec gendata.StreamSpec, tspec gendata.TickSpec, ticks int, timeout time.Duration, slowest int, out string, maxErrRate float64) error {
	var baseline bytes.Buffer
	// The baseline is the clean background; failures arrive through the
	// ticks, driving the incident lifecycle end to end.
	if err := spec.Background().StreamWriteJSON(&baseline); err != nil {
		return err
	}
	bodies := make([][]byte, ticks)
	var sizeTotal int
	for t := 1; t <= ticks; t++ {
		var buf bytes.Buffer
		if err := spec.StreamTickJSON(&buf, tspec, t); err != nil {
			return err
		}
		bodies[t-1] = buf.Bytes()
		sizeTotal += buf.Len()
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d leaves baseline, %d tick bodies (%.1f KB avg, touch %.1f%%)\n",
		spec.NumLeaves(), ticks, float64(sizeTotal)/float64(ticks)/1024, 100*tspec.TouchFraction)

	client := &http.Client{Timeout: timeout}
	col := newCollector(slowest)
	// The baseline install is setup, not workload: it stays out of the
	// collector so the report's latency and rate describe delta ticks only.
	post := func(url string, body []byte, record bool) (int, []byte, error) {
		tc := obs.NewTraceContext()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("traceparent", tc.Traceparent())
		start := time.Now()
		resp, err := client.Do(req)
		elapsed := time.Since(start)
		if err != nil {
			if record {
				col.record(tc.TraceID, elapsed, 0, false, false, err)
			}
			return 0, nil, err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if record {
			col.record(tc.TraceID, elapsed, resp.StatusCode, false, false, nil)
		}
		return resp.StatusCode, raw, nil
	}

	status, raw, err := post(base+"/v1/observe/snapshot", baseline.Bytes(), false)
	if err != nil {
		return fmt.Errorf("baseline install: %w", err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("baseline install: HTTP %d: %s (is serve running with -continuous?)", status, bytes.TrimSpace(raw))
	}
	var patched, incidents int
	events := make(map[string]int)
	start := time.Now()
	for t := 0; t < ticks && ctx.Err() == nil; t++ {
		status, raw, err := post(base+"/v1/observe/delta", bodies[t], true)
		if err != nil {
			return fmt.Errorf("tick %d: %w", t+1, err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("tick %d: HTTP %d: %s", t+1, status, bytes.TrimSpace(raw))
		}
		var tickResp struct {
			Event   string `json:"event"`
			Patched bool   `json:"patched"`
		}
		if json.Unmarshal(raw, &tickResp) == nil {
			events[tickResp.Event]++
			if tickResp.Patched {
				patched++
			}
			if tickResp.Event == "opened" {
				incidents++
			}
		}
	}
	elapsed := time.Since(start)

	rep := col.report(elapsed)
	rep.Mode = "ticks"
	rep.Endpoint = "observe/delta"
	rep.Concurrency = 1
	dst := w
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if err := rep.Write(dst); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d ticks in %.1fs (%.1f ticks/s)  p50 %.1fms  p99 %.1fms  patched %d/%d  incidents %d  events %v\n",
		ticks, elapsed.Seconds(), float64(ticks)/elapsed.Seconds(),
		rep.Latency.P50MS, rep.Latency.P99MS, patched, ticks, incidents, events)
	if maxErrRate >= 0 && rep.ErrorRate > maxErrRate {
		return fmt.Errorf("hard error rate %.2f%% exceeds limit %.2f%%", 100*rep.ErrorRate, 100*maxErrRate)
	}
	return nil
}

// captureBundle asks the target's flight recorder for a bundle and writes
// the archive to path. Its own client: the capture blocks server-side for
// the CPU-profile window, and the run's -timeout may be shorter.
func captureBundle(base, reason, path string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	u := base + "/debug/flight/capture?reason=" + url.QueryEscape("loadgen: "+reason)
	resp, err := client.Post(u, "", nil)
	if err != nil {
		return err
	}
	var info struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK || info.ID == "" {
		if info.Error != "" {
			return fmt.Errorf("capture: %s", info.Error)
		}
		return fmt.Errorf("capture: HTTP %d", resp.StatusCode)
	}
	resp, err = client.Get(base + "/debug/flight/" + info.ID)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetch bundle %s: HTTP %d", info.ID, resp.StatusCode)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// renderBodies pre-renders the request bodies the run cycles through, so
// generation cost never pollutes the measured latency.
func renderBodies(corpus string, seed int64, cases int, attrs, endpoint string, batchItems int) ([][]byte, error) {
	snaps, err := renderSnapshots(corpus, seed, cases, attrs)
	if err != nil {
		return nil, err
	}
	if endpoint == "localize" {
		return snaps, nil
	}
	// Batch bodies: batchItems consecutive snapshots per request.
	bodies := make([][]byte, 0, cases)
	for i := 0; i < cases; i++ {
		raw := make([]json.RawMessage, batchItems)
		for j := 0; j < batchItems; j++ {
			raw[j] = snaps[(i+j)%len(snaps)]
		}
		body, err := json.Marshal(map[string]any{"snapshots": raw})
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, body)
	}
	return bodies, nil
}

// renderSnapshots produces cases JSON snapshot documents from the chosen
// corpus.
func renderSnapshots(corpus string, seed int64, cases int, attrs string) ([][]byte, error) {
	switch corpus {
	case "stream":
		spec, err := parseStreamAttrs(attrs)
		if err != nil {
			return nil, err
		}
		out := make([][]byte, cases)
		for i := range out {
			spec.Seed = seed + int64(i)
			spec.NumRAPs = 2
			var buf bytes.Buffer
			if err := spec.StreamWriteJSON(&buf); err != nil {
				return nil, err
			}
			out[i] = buf.Bytes()
		}
		return out, nil
	case "squeeze":
		c, err := gendata.SqueezeB0(seed, gendata.SqueezeGroups()[0], cases)
		if err != nil {
			return nil, err
		}
		return renderCorpus(c)
	case "rapmd":
		c, err := gendata.RAPMD(seed, cases)
		if err != nil {
			return nil, err
		}
		return renderCorpus(c)
	default:
		return nil, fmt.Errorf("unknown corpus %q (want squeeze, rapmd or stream)", corpus)
	}
}

func renderCorpus(c *gendata.Corpus) ([][]byte, error) {
	out := make([][]byte, len(c.Cases))
	for i, cs := range c.Cases {
		var buf bytes.Buffer
		if err := kpi.WriteJSON(&buf, cs.Snapshot); err != nil {
			return nil, err
		}
		out[i] = buf.Bytes()
	}
	return out, nil
}

// parseStreamAttrs parses "name:cardinality,..." into a StreamSpec.
func parseStreamAttrs(s string) (gendata.StreamSpec, error) {
	var spec gendata.StreamSpec
	for _, part := range strings.Split(s, ",") {
		name, card, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return spec, fmt.Errorf("attr %q: want name:cardinality", part)
		}
		n, err := strconv.Atoi(card)
		if err != nil || n < 1 {
			return spec, fmt.Errorf("attr %q: bad cardinality", part)
		}
		spec.Attributes = append(spec.Attributes, gendata.StreamAttr{Name: strings.TrimSpace(name), Cardinality: n})
	}
	if len(spec.Attributes) == 0 {
		return spec, fmt.Errorf("empty attribute spec")
	}
	return spec, nil
}

// normalizeAddr accepts host:port shorthand for the -addr flag.
func normalizeAddr(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimRight(addr, "/")
	}
	if strings.HasPrefix(addr, ":") {
		addr = "localhost" + addr
	}
	return "http://" + strings.TrimRight(addr, "/")
}
