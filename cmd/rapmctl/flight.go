package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"time"

	"repro/internal/flight"
)

// The flight subcommands drive a running instance's incident flight
// recorder over its /debug/flight endpoints:
//
//	rapmctl flight list    — the bundle index
//	rapmctl flight get     — download one bundle's tar.gz
//	rapmctl flight capture — trigger a capture now

func runFlight(w io.Writer, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing flight subcommand\n%s", usage)
	}
	switch args[0] {
	case "list":
		return runFlightList(w, args[1:])
	case "get":
		return runFlightGet(w, args[1:])
	case "capture":
		return runFlightCapture(w, args[1:])
	default:
		return fmt.Errorf("unknown flight subcommand %q\n%s", args[0], usage)
	}
}

// flightIndex mirrors the GET /debug/flight document.
type flightIndex struct {
	Total   int                 `json:"total"`
	Rules   []flight.Rule       `json:"rules"`
	Bundles []flight.BundleInfo `json:"bundles"`
}

func runFlightList(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("rapmctl flight list", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the serve/monitor instance")
	asJSON := fs.Bool("json", false, "print the raw /debug/flight JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var idx flightIndex
	if err := getJSON(normalizeAddr(*addr)+"/debug/flight", &idx); err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(idx)
	}
	rules := make([]string, 0, len(idx.Rules))
	for _, r := range idx.Rules {
		rules = append(rules, r.String())
	}
	fmt.Fprintf(w, "%d bundles captured, %d retained", idx.Total, len(idx.Bundles))
	if len(rules) > 0 {
		fmt.Fprintf(w, "   rules: %v", rules)
	}
	fmt.Fprintln(w)
	for _, b := range idx.Bundles {
		fmt.Fprintf(w, "%s  %s  %-16s %7.1f KiB  %d artifacts  %s\n",
			b.ID, b.Time.Format(time.RFC3339), b.Rule,
			float64(b.SizeBytes)/1024, len(b.Artifacts), b.Reason)
	}
	return nil
}

func runFlightGet(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("rapmctl flight get", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the serve/monitor instance")
	out := fs.String("o", "", "output path (default <bundle-id>.tar.gz in the current directory)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	id := fs.Arg(0)
	if id == "" {
		// No ID: fetch the newest bundle.
		var idx flightIndex
		if err := getJSON(normalizeAddr(*addr)+"/debug/flight", &idx); err != nil {
			return err
		}
		if len(idx.Bundles) == 0 {
			return fmt.Errorf("the service has captured no diagnostic bundles yet")
		}
		id = idx.Bundles[0].ID
	}
	url := normalizeAddr(*addr) + "/debug/flight/" + id
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s: %s", url, apiErr.Error)
		}
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	path := *out
	if path == "" {
		path = id + ".tar.gz"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	n, err := io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%d bytes)\n", path, n)
	return nil
}

func runFlightCapture(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("rapmctl flight capture", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the serve/monitor instance")
	reason := fs.String("reason", "", "free-text reason journaled into the bundle")
	if err := fs.Parse(args); err != nil {
		return err
	}
	u := normalizeAddr(*addr) + "/debug/flight/capture"
	if *reason != "" {
		u += "?reason=" + url.QueryEscape(*reason)
	}
	// The capture blocks for the server's CPU-profile window (seconds);
	// the shared 10s client covers the default 2s window comfortably.
	resp, err := client.Post(u, "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var info flight.BundleInfo
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s: %s", u, apiErr.Error)
		}
		return fmt.Errorf("%s: HTTP %d", u, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return err
	}
	fmt.Fprintf(w, "captured %s (%d bytes, %d artifacts)\n", info.ID, info.SizeBytes, len(info.Artifacts))
	fmt.Fprintf(w, "fetch it: rapmctl flight get -addr %s %s\n", *addr, info.ID)
	return nil
}
