// Command rapmctl is the operator's console for a running serve or
// monitor instance. It fetches per-run explain reports from the service's
// /debug/runs endpoints and renders them as human-readable text, answering
// the "why did the miner return these RAPs" question after the fact.
//
// Usage:
//
//	rapmctl runs    [-addr http://localhost:8080]
//	rapmctl explain [-addr http://localhost:8080] [-json] [trace-id]
//	rapmctl slo     [-addr http://localhost:8080] [-json]
//	rapmctl flight list    [-addr http://localhost:8080] [-json]
//	rapmctl flight get     [-addr http://localhost:8080] [-o path] [bundle-id]
//	rapmctl flight capture [-addr http://localhost:8080] [-reason text]
//
// `runs` lists the retained localization runs, newest first. `explain`
// renders one run's full report — which attributes survived the t_CP cut,
// the per-layer search and pruning counts, the early stop, and the ranked
// candidate set with Confidence, Layer and RAPScore. Without a trace-id it
// explains the most recent run. The trace ID is returned by POST
// /v1/localize (trace_id field and traceparent response header), so a
// client that keeps it can always ask the service to explain its answer.
//
// `slo` renders the service's GET /debug/slo page — rolling 1m/5m latency
// quantiles, degraded/backpressure/timeout rates per endpoint and the
// instantaneous saturation gauges — as a table, for a terminal answer to
// "is the service healthy right now".
//
// `flight` drives the service's incident flight recorder: `list` shows the
// retained diagnostic bundles, `get` downloads one as a tar.gz (newest by
// default), and `capture` asks the instance to take a bundle right now —
// pprof profiles, SLO report, spans, exemplar-linked explain reports —
// while the misbehavior is still live.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/httpapi"
	"repro/internal/rapminer/explain"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rapmctl:", err)
		os.Exit(1)
	}
}

const usage = `usage:
  rapmctl runs    [-addr http://localhost:8080]
  rapmctl explain [-addr http://localhost:8080] [-json] [trace-id]
  rapmctl slo     [-addr http://localhost:8080] [-json]
  rapmctl flight list    [-addr http://localhost:8080] [-json]
  rapmctl flight get     [-addr http://localhost:8080] [-o path] [bundle-id]
  rapmctl flight capture [-addr http://localhost:8080] [-reason text]`

func run(w io.Writer, args []string) error {
	if len(args) == 0 {
		return errors.New("missing subcommand\n" + usage)
	}
	switch args[0] {
	case "runs":
		return runList(w, args[1:])
	case "explain":
		return runExplain(w, args[1:])
	case "slo":
		return runSLO(w, args[1:])
	case "flight":
		return runFlight(w, args[1:])
	case "help", "-h", "--help":
		fmt.Fprintln(w, usage)
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q\n%s", args[0], usage)
	}
}

// client is the HTTP client used for all fetches; debug endpoints answer
// from memory, so a short timeout keeps a wrong -addr from hanging.
var client = &http.Client{Timeout: 10 * time.Second}

// getJSON fetches url and decodes the JSON body into v.
func getJSON(url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s: %s", url, apiErr.Error)
		}
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// normalizeAddr accepts host:port shorthand for the -addr flag.
func normalizeAddr(addr string) string {
	addr = strings.TrimRight(addr, "/")
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

func runList(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("rapmctl runs", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the serve/monitor instance")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var out struct {
		Total int               `json:"total"`
		Runs  []explain.Summary `json:"runs"`
	}
	if err := getJSON(normalizeAddr(*addr)+"/debug/runs", &out); err != nil {
		return err
	}
	fmt.Fprintf(w, "%d runs recorded, %d retained\n", out.Total, len(out.Runs))
	for _, r := range out.Runs {
		stop := ""
		if r.EarlyStopped {
			stop = "  early-stop"
		}
		fmt.Fprintf(w, "%s  %s  %-8s %-10s %4d/%d anomalous  %d candidates  %.2f ms%s\n",
			r.TraceID, r.Time.Format(time.RFC3339), r.Source, r.Method,
			r.AnomalousLeaves, r.Leaves, r.Candidates, r.ElapsedMS, stop)
	}
	return nil
}

func runSLO(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("rapmctl slo", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the serve/monitor instance")
	asJSON := fs.Bool("json", false, "print the raw /debug/slo JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var report httpapi.SLOReport
	if err := getJSON(normalizeAddr(*addr)+"/debug/slo", &report); err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	renderSLO(w, report)
	return nil
}

// renderSLO prints the SLO report as one table per window, endpoints in
// stable sorted order.
func renderSLO(w io.Writer, report httpapi.SLOReport) {
	fmt.Fprintf(w, "uptime %s   in-flight %d   batch queue %d/%d\n",
		(time.Duration(report.UptimeSeconds * float64(time.Second))).Round(time.Second),
		report.InflightRequests, report.BatchQueueDepth, report.BatchCapacity)
	windows := make([]string, 0, len(report.Windows))
	for name := range report.Windows {
		windows = append(windows, name)
	}
	// Shortest window first; names are "1m"/"5m" so length-then-lexical works.
	sort.Slice(windows, func(i, j int) bool {
		if len(windows[i]) != len(windows[j]) {
			return len(windows[i]) < len(windows[j])
		}
		return windows[i] < windows[j]
	})
	for _, name := range windows {
		per := report.Windows[name]
		routes := make([]string, 0, len(per))
		for r := range per {
			routes = append(routes, r)
		}
		sort.Strings(routes)
		fmt.Fprintf(w, "\nlast %s\n", name)
		fmt.Fprintf(w, "  %-28s %8s %8s %9s %9s %7s %7s %7s %7s\n",
			"endpoint", "reqs", "rps", "p50", "p99", "degr", "503", "504", "err")
		for _, r := range routes {
			v := per[r]
			fmt.Fprintf(w, "  %-28s %8.0f %8.1f %7.1fms %7.1fms %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
				r, v.Requests, v.RatePerSec, v.P50MS, v.P99MS,
				100*v.DegradedRate, 100*v.BackpressureRate, 100*v.TimeoutRate, 100*v.ErrorRate)
		}
	}
}

func runExplain(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("rapmctl explain", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the serve/monitor instance")
	asJSON := fs.Bool("json", false, "print the raw report JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := normalizeAddr(*addr)

	traceID := fs.Arg(0)
	if traceID == "" {
		// No ID: explain the most recent run.
		var list struct {
			Runs []explain.Summary `json:"runs"`
		}
		if err := getJSON(base+"/debug/runs", &list); err != nil {
			return err
		}
		if len(list.Runs) == 0 {
			return errors.New("the service has recorded no localization runs yet")
		}
		traceID = list.Runs[0].TraceID
	}

	var report explain.Report
	if err := getJSON(base+"/debug/runs/"+traceID, &report); err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	report.Render(w)
	return nil
}
