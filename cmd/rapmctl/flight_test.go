package main

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/flight"
	"repro/internal/obs"
)

// flightServer serves a real recorder (fast CPU window) over the same
// routes serve and monitor mount.
func flightServer(t *testing.T) (*httptest.Server, *flight.Recorder) {
	t.Helper()
	r := flight.New(flight.Config{
		Registry:   obs.NewRegistry(),
		CPUProfile: time.Millisecond,
		Rules:      []flight.Rule{{Kind: flight.RuleP99Latency, Threshold: 0.5}},
	})
	mux := http.NewServeMux()
	mux.Handle("GET /debug/flight", r.IndexHandler())
	mux.Handle("GET /debug/flight/{id}", r.ArchiveHandler())
	mux.Handle("POST /debug/flight/capture", r.CaptureHandler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, r
}

func TestFlightListSubcommand(t *testing.T) {
	srv, r := flightServer(t)
	info, err := r.Capture(context.Background(), "listed")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, []string{"flight", "list", "-addr", srv.URL}); err != nil {
		t.Fatalf("flight list: %v", err)
	}
	text := out.String()
	for _, want := range []string{"1 bundles captured, 1 retained", info.ID, "manual", "listed", "p99-latency=500ms"} {
		if !strings.Contains(text, want) {
			t.Fatalf("flight list output lacks %q:\n%s", want, text)
		}
	}
}

func TestFlightCaptureAndGetSubcommands(t *testing.T) {
	srv, r := flightServer(t)
	var out bytes.Buffer
	if err := run(&out, []string{"flight", "capture", "-addr", srv.URL, "-reason", "ctl test"}); err != nil {
		t.Fatalf("flight capture: %v", err)
	}
	if !strings.Contains(out.String(), "captured ") {
		t.Fatalf("capture output:\n%s", out.String())
	}
	bundles := r.Bundles()
	if len(bundles) != 1 || bundles[0].Reason != "ctl test" {
		t.Fatalf("server state after capture: %+v", bundles)
	}

	// `get` with no ID downloads the newest bundle into -o.
	dst := filepath.Join(t.TempDir(), "b.tar.gz")
	out.Reset()
	if err := run(&out, []string{"flight", "get", "-addr", srv.URL, "-o", dst}); err != nil {
		t.Fatalf("flight get: %v", err)
	}
	data, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := r.Get(bundles[0].ID)
	if !bytes.Equal(data, b.Archive) {
		t.Error("downloaded archive differs from the served one")
	}
}

func TestFlightSubcommandErrors(t *testing.T) {
	srv, _ := flightServer(t)
	if err := run(&bytes.Buffer{}, []string{"flight"}); err == nil {
		t.Error("bare flight accepted")
	}
	if err := run(&bytes.Buffer{}, []string{"flight", "bogus"}); err == nil {
		t.Error("unknown flight subcommand accepted")
	}
	// get against an empty recorder: a clear error, not a zero-byte file.
	if err := run(&bytes.Buffer{}, []string{"flight", "get", "-addr", srv.URL}); err == nil {
		t.Error("get with no bundles succeeded")
	}
	// get of an unknown ID surfaces the server's JSON error.
	err := run(&bytes.Buffer{}, []string{"flight", "get", "-addr", srv.URL, "nope"})
	if err == nil || !strings.Contains(err.Error(), "no bundle") {
		t.Errorf("get nope: %v", err)
	}
}
