package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/httpapi"
	"repro/internal/rapminer/explain"
)

// newService starts the real httpapi handler and pushes one localization
// through it so /debug/runs has a report to serve.
func newService(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	srv := httptest.NewServer(httpapi.NewHandler())
	t.Cleanup(srv.Close)

	const csv = `Location,Website,actual,forecast
L1,Site1,40,100
L1,Site2,100,100
L2,Site1,38,95
L2,Site2,101,100
`
	resp, err := http.Post(srv.URL+"/v1/localize", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed localize status = %d", resp.StatusCode)
	}
	var out struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return srv, out.TraceID
}

func TestRunsSubcommand(t *testing.T) {
	srv, traceID := newService(t)
	var b strings.Builder
	if err := run(&b, []string{"runs", "-addr", srv.URL}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, traceID) {
		t.Errorf("runs output missing trace ID %s:\n%s", traceID, out)
	}
	if !strings.Contains(out, "httpapi") {
		t.Errorf("runs output missing source:\n%s", out)
	}
}

func TestExplainSubcommand(t *testing.T) {
	srv, traceID := newService(t)

	// Explicit trace ID.
	var b strings.Builder
	if err := run(&b, []string{"explain", "-addr", srv.URL, traceID}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"run " + traceID,
		"stage 1 — attribute deletion",
		"stage 2 — AC-guided search",
		"RAPScore",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}

	// No trace ID: explains the most recent run.
	b.Reset()
	if err := run(&b, []string{"explain", "-addr", srv.URL}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "run "+traceID) {
		t.Errorf("explain without ID did not pick the latest run:\n%s", b.String())
	}
}

func TestExplainJSON(t *testing.T) {
	srv, traceID := newService(t)
	var b strings.Builder
	if err := run(&b, []string{"explain", "-addr", srv.URL, "-json", traceID}); err != nil {
		t.Fatal(err)
	}
	var report explain.Report
	if err := json.Unmarshal([]byte(b.String()), &report); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, b.String())
	}
	if report.TraceID != traceID || len(report.Candidates) == 0 {
		t.Errorf("-json report = %+v", report)
	}
}

func TestAddrShorthand(t *testing.T) {
	srv, traceID := newService(t)
	hostPort := strings.TrimPrefix(srv.URL, "http://")
	var b strings.Builder
	if err := run(&b, []string{"runs", "-addr", hostPort}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), traceID) {
		t.Errorf("host:port -addr shorthand failed:\n%s", b.String())
	}
}

func TestErrors(t *testing.T) {
	srv, _ := newService(t)

	var b strings.Builder
	if err := run(&b, nil); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("no subcommand error = %v", err)
	}
	if err := run(&b, []string{"bogus"}); err == nil || !strings.Contains(err.Error(), "unknown subcommand") {
		t.Errorf("unknown subcommand error = %v", err)
	}

	// An unknown trace ID surfaces the service's JSON error message.
	err := run(&b, []string{"explain", "-addr", srv.URL, "ffffffffffffffffffffffffffffffff"})
	if err == nil || !strings.Contains(err.Error(), "no run with trace ID") {
		t.Errorf("unknown trace error = %v", err)
	}

	// help prints usage and succeeds.
	b.Reset()
	if err := run(&b, []string{"help"}); err != nil || !strings.Contains(b.String(), "rapmctl runs") {
		t.Errorf("help = %v, output %q", err, b.String())
	}
}
