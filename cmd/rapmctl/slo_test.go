package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/httpapi"
)

func sloServer(t *testing.T) *httptest.Server {
	t.Helper()
	report := httpapi.SLOReport{
		UptimeSeconds:    125,
		InflightRequests: 1,
		BatchQueueDepth:  2,
		BatchCapacity:    48,
		Windows: map[string]map[string]httpapi.SLOEndpointWindow{
			"1m": {
				"POST /v1/localize": {Requests: 30, RatePerSec: 0.5, P50MS: 12, P99MS: 80, DegradedRate: 0.1},
			},
			"5m": {
				"POST /v1/localize": {Requests: 100, RatePerSec: 0.33, P50MS: 11, P99MS: 70},
			},
		},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/slo", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(report)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestSLOSubcommand(t *testing.T) {
	srv := sloServer(t)
	var out bytes.Buffer
	if err := run(&out, []string{"slo", "-addr", srv.URL}); err != nil {
		t.Fatalf("slo: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"uptime 2m5s", "in-flight 1", "batch queue 2/48",
		"last 1m", "last 5m", "POST /v1/localize", "10.0%",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("slo output lacks %q:\n%s", want, text)
		}
	}
	// 1m must render before 5m.
	if strings.Index(text, "last 1m") > strings.Index(text, "last 5m") {
		t.Fatalf("windows out of order:\n%s", text)
	}
}

func TestSLOSubcommandJSON(t *testing.T) {
	srv := sloServer(t)
	var out bytes.Buffer
	if err := run(&out, []string{"slo", "-addr", srv.URL, "-json"}); err != nil {
		t.Fatalf("slo -json: %v", err)
	}
	var rep httpapi.SLOReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("slo -json not JSON: %v\n%s", err, out.String())
	}
	if rep.BatchCapacity != 48 || rep.Windows["1m"]["POST /v1/localize"].Requests != 30 {
		t.Fatalf("slo -json lost fields: %+v", rep)
	}
}

func TestSLOSubcommandUnreachable(t *testing.T) {
	if err := run(&bytes.Buffer{}, []string{"slo", "-addr", "localhost:1"}); err == nil {
		t.Fatal("expected error against a closed port")
	}
}
