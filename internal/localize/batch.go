package localize

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/kpi"
)

// BatchResult pairs one snapshot's localization outcome with its error.
// Exactly one of Result/Err is meaningful.
type BatchResult struct {
	Result Result
	Err    error
}

// BatchLocalizer is a Localizer that can process many snapshots in one
// call, amortizing fan-out across its own worker pool. Results are
// positional: result i belongs to snapshot i, and a failed item carries its
// error without affecting its neighbors.
type BatchLocalizer interface {
	Localizer
	LocalizeBatch(ctx context.Context, snapshots []*kpi.Snapshot, k int) []BatchResult
}

// BatchLocalize fans the snapshots across a bounded pool of workers, each
// item localized with l. It is the generic implementation behind
// BatchLocalizer for methods whose Localize is safe for concurrent use
// (every method in this repository is). Once ctx is canceled the remaining
// unstarted items are marked with ctx.Err() instead of running.
func BatchLocalize(ctx context.Context, l Localizer, snapshots []*kpi.Snapshot, k, workers int) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchResult, len(snapshots))
	if len(snapshots) == 0 {
		return out
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(snapshots) {
		workers = len(snapshots)
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(snapshots) {
					return
				}
				if err := ctx.Err(); err != nil {
					out[i] = BatchResult{Err: err}
					continue
				}
				res, err := l.Localize(snapshots[i], k)
				out[i] = BatchResult{Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}
