package localize

import (
	"context"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/kpi"
	"repro/internal/obs"
)

// BatchResult pairs one snapshot's localization outcome with its error.
// Exactly one of Result/Err is meaningful.
type BatchResult struct {
	Result Result
	Err    error
}

// BatchLocalizer is a Localizer that can process many snapshots in one
// call, amortizing fan-out across its own worker pool. Results are
// positional: result i belongs to snapshot i, and a failed item carries its
// error without affecting its neighbors.
type BatchLocalizer interface {
	Localizer
	LocalizeBatch(ctx context.Context, snapshots []*kpi.Snapshot, k int) []BatchResult
}

// BatchLocalize fans the snapshots across a bounded pool of workers, each
// item localized with l. It is the generic implementation behind
// BatchLocalizer for methods whose Localize is safe for concurrent use
// (every method in this repository is). Once ctx is canceled the remaining
// unstarted items are marked with ctx.Err() instead of running; localizers
// implementing ContextLocalizer additionally see ctx inside each item, so
// an in-flight item stops at its next cancellation point with a degraded
// partial result. A panicking item fails only itself: the panic is
// converted to that item's error and its stack logged, so one poisoned
// snapshot cannot take down the process or its batch neighbors.
func BatchLocalize(ctx context.Context, l Localizer, snapshots []*kpi.Snapshot, k, workers int) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchResult, len(snapshots))
	if len(snapshots) == 0 {
		return out
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(snapshots) {
		workers = len(snapshots)
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(snapshots) {
					return
				}
				if err := ctx.Err(); err != nil {
					out[i] = BatchResult{Err: err}
					continue
				}
				res, err := SafeLocalize(ctx, l, snapshots[i], k)
				out[i] = BatchResult{Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}

// SafeLocalize runs one localization with panic isolation: a panic inside
// the localizer is recovered into an error (its stack logged through the
// "localize" component logger) instead of unwinding the calling goroutine.
// Localizers implementing ContextLocalizer run under ctx so cancellation
// bounds the item's work; the rest run to completion as plain Localize.
func SafeLocalize(ctx context.Context, l Localizer, snapshot *kpi.Snapshot, k int) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			obs.Logger("localize").Error("localizer panicked",
				slog.String("localizer", l.Name()),
				slog.Any("panic", r),
				slog.String("stack", string(debug.Stack())))
			res = Result{}
			err = fmt.Errorf("localize: %s panicked: %v", l.Name(), r)
		}
	}()
	if cl, ok := l.(ContextLocalizer); ok {
		return cl.LocalizeContext(ctx, snapshot, k)
	}
	return l.Localize(snapshot, k)
}
