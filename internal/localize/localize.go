// Package localize defines the interface shared by every anomaly
// localization method in this repository (RAPMiner and the four baselines),
// so that the experiment harness, benchmarks and examples can drive them
// uniformly.
package localize

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/kpi"
)

// ScoredPattern is one root-anomaly-pattern candidate with the method's
// internal ranking score (higher is better).
type ScoredPattern struct {
	Combo kpi.Combination
	Score float64
}

// Result is the ranked output of a localization run.
type Result struct {
	// Patterns is sorted by descending score.
	Patterns []ScoredPattern
}

// TopK returns the first k combinations (or all when fewer are available).
func (r Result) TopK(k int) []kpi.Combination {
	if k > len(r.Patterns) {
		k = len(r.Patterns)
	}
	out := make([]kpi.Combination, k)
	for i := 0; i < k; i++ {
		out[i] = r.Patterns[i].Combo
	}
	return out
}

// Format renders the result one pattern per line in the paper's notation.
func (r Result) Format(s *kpi.Schema) string {
	var b strings.Builder
	for i, p := range r.Patterns {
		fmt.Fprintf(&b, "%2d. %s  score=%.4f\n", i+1, p.Combo.Format(s), p.Score)
	}
	return b.String()
}

// Localizer mines root anomaly patterns from a labeled snapshot. k is the
// number of patterns the caller wants returned; methods that cannot honor k
// (e.g. Squeeze, see Section V-E2 of the paper) may return a different
// count.
type Localizer interface {
	// Localize returns up to k ranked root-anomaly-pattern candidates.
	Localize(snapshot *kpi.Snapshot, k int) (Result, error)
	// Name identifies the method in reports ("RAPMiner", "Squeeze", ...).
	Name() string
}

// SortPatterns sorts candidates by descending score, breaking ties first by
// shallower layer (coarser pattern wins) and then by combination order so
// results are deterministic.
func SortPatterns(ps []ScoredPattern) {
	sort.SliceStable(ps, func(i, j int) bool {
		if ps[i].Score != ps[j].Score {
			return ps[i].Score > ps[j].Score
		}
		li, lj := ps[i].Combo.Layer(), ps[j].Combo.Layer()
		if li != lj {
			return li < lj
		}
		return ps[i].Combo.Key() < ps[j].Combo.Key()
	})
}
