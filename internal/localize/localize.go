// Package localize defines the interface shared by every anomaly
// localization method in this repository (RAPMiner and the four baselines),
// so that the experiment harness, benchmarks and examples can drive them
// uniformly.
package localize

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/kpi"
)

// ScoredPattern is one root-anomaly-pattern candidate with the method's
// internal ranking score (higher is better).
type ScoredPattern struct {
	Combo kpi.Combination
	Score float64
}

// Result is the ranked output of a localization run.
type Result struct {
	// Patterns is sorted by descending score.
	Patterns []ScoredPattern
	// Degraded reports that the run stopped early — cancellation, an
	// expired deadline, or an exhausted per-run budget — and Patterns
	// holds only the best-so-far candidates found up to the stop point.
	Degraded bool
	// DegradedReason says why a degraded run stopped ("canceled",
	// "deadline exceeded", "max cuboids"); empty on complete runs.
	DegradedReason string
}

// TopK returns the first k combinations (or all when fewer are available).
func (r Result) TopK(k int) []kpi.Combination {
	if k > len(r.Patterns) {
		k = len(r.Patterns)
	}
	out := make([]kpi.Combination, k)
	for i := 0; i < k; i++ {
		out[i] = r.Patterns[i].Combo
	}
	return out
}

// Format renders the result one pattern per line in the paper's notation.
func (r Result) Format(s *kpi.Schema) string {
	var b strings.Builder
	for i, p := range r.Patterns {
		fmt.Fprintf(&b, "%2d. %s  score=%.4f\n", i+1, p.Combo.Format(s), p.Score)
	}
	return b.String()
}

// Localizer mines root anomaly patterns from a labeled snapshot. k is the
// number of patterns the caller wants returned; methods that cannot honor k
// (e.g. Squeeze, see Section V-E2 of the paper) may return a different
// count.
type Localizer interface {
	// Localize returns up to k ranked root-anomaly-pattern candidates.
	Localize(snapshot *kpi.Snapshot, k int) (Result, error)
	// Name identifies the method in reports ("RAPMiner", "Squeeze", ...).
	Name() string
}

// ContextLocalizer is a Localizer whose runs honor context cancellation: a
// canceled or deadline-expired ctx stops the run at its next safe point and
// returns the best-so-far candidates as a degraded partial result
// (Result.Degraded) instead of running to completion. Serving layers
// type-assert to it so per-request deadlines actually bound localization
// work rather than only gating whether it starts.
type ContextLocalizer interface {
	Localizer
	// LocalizeContext is Localize under ctx. A nil ctx behaves like
	// context.Background().
	LocalizeContext(ctx context.Context, snapshot *kpi.Snapshot, k int) (Result, error)
}

// SortPatterns sorts candidates by descending score, breaking ties first by
// shallower layer (coarser pattern wins) and then by combination order so
// results are deterministic.
func SortPatterns(ps []ScoredPattern) {
	sort.SliceStable(ps, func(i, j int) bool {
		if ps[i].Score != ps[j].Score {
			return ps[i].Score > ps[j].Score
		}
		li, lj := ps[i].Combo.Layer(), ps[j].Combo.Layer()
		if li != lj {
			return li < lj
		}
		return ps[i].Combo.Key() < ps[j].Combo.Key()
	})
}
