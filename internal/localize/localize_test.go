package localize

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/kpi"
)

func testSchema() *kpi.Schema {
	return kpi.MustSchema(
		kpi.Attribute{Name: "A", Values: []string{"a1", "a2", "a3"}},
		kpi.Attribute{Name: "B", Values: []string{"b1", "b2"}},
	)
}

func TestTopK(t *testing.T) {
	r := Result{Patterns: []ScoredPattern{
		{Combo: kpi.Combination{0, kpi.Wildcard}, Score: 0.9},
		{Combo: kpi.Combination{1, kpi.Wildcard}, Score: 0.5},
		{Combo: kpi.Combination{2, kpi.Wildcard}, Score: 0.1},
	}}
	if got := r.TopK(2); len(got) != 2 || got[0][0] != 0 || got[1][0] != 1 {
		t.Errorf("TopK(2) = %v", got)
	}
	if got := r.TopK(10); len(got) != 3 {
		t.Errorf("TopK(10) returned %d", len(got))
	}
	if got := r.TopK(0); len(got) != 0 {
		t.Errorf("TopK(0) returned %d", len(got))
	}
	var empty Result
	if got := empty.TopK(3); len(got) != 0 {
		t.Errorf("empty TopK = %v", got)
	}
}

func TestFormat(t *testing.T) {
	s := testSchema()
	r := Result{Patterns: []ScoredPattern{
		{Combo: kpi.MustParseCombination(s, "(a1, *)"), Score: 0.75},
	}}
	out := r.Format(s)
	if !strings.Contains(out, "(a1, *)") || !strings.Contains(out, "0.7500") {
		t.Errorf("Format = %q", out)
	}
	if got := (Result{}).Format(s); got != "" {
		t.Errorf("empty Format = %q", got)
	}
}

func TestSortPatternsOrdering(t *testing.T) {
	ps := []ScoredPattern{
		{Combo: kpi.Combination{0, 0}, Score: 0.5},            // layer 2
		{Combo: kpi.Combination{0, kpi.Wildcard}, Score: 0.5}, // layer 1, same score
		{Combo: kpi.Combination{1, kpi.Wildcard}, Score: 0.9}, // best score
		{Combo: kpi.Combination{2, kpi.Wildcard}, Score: 0.5}, // layer 1, tie with index 1
	}
	SortPatterns(ps)
	if ps[0].Score != 0.9 {
		t.Fatalf("best score not first: %+v", ps)
	}
	if ps[1].Combo.Layer() != 1 || ps[2].Combo.Layer() != 1 {
		t.Fatalf("layer tie-break failed: %+v", ps)
	}
	if ps[1].Combo.Key() > ps[2].Combo.Key() {
		t.Fatalf("key tie-break failed: %+v", ps)
	}
	if ps[3].Combo.Layer() != 2 {
		t.Fatalf("deeper pattern should sort last on equal score: %+v", ps)
	}
}

func TestSortPatternsStableAndDeterministicQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		build := func() []ScoredPattern {
			ps := make([]ScoredPattern, 12)
			for i := range ps {
				c := kpi.Combination{int32(r.Intn(3)), int32(r.Intn(2))}
				if r.Intn(2) == 0 {
					c[r.Intn(2)] = kpi.Wildcard
				}
				ps[i] = ScoredPattern{Combo: c, Score: float64(r.Intn(3)) / 2}
			}
			return ps
		}
		a := build()
		b := append([]ScoredPattern(nil), a...)
		// Shuffle b differently, then sort both: final order must agree
		// whenever (score, layer, key) triples are unique; with ties the
		// comparator is still a strict weak order, so sorted sequences of
		// the triple must agree.
		r.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		SortPatterns(a)
		SortPatterns(b)
		key := func(p ScoredPattern) [3]string {
			return [3]string{
				string(rune(int('0') + int(p.Score*2))),
				string(rune(int('0') + p.Combo.Layer())),
				p.Combo.Key(),
			}
		}
		for i := range a {
			if key(a[i]) != key(b[i]) {
				return false
			}
		}
		return sort.SliceIsSorted(a, func(i, j int) bool {
			if a[i].Score != a[j].Score {
				return a[i].Score > a[j].Score
			}
			return false
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
