package kpi

// RollupPlan is the run-level extension of the fused layer scan: instead of
// one pass over the leaf columns per BFS layer, the plan scans the leaves
// ONCE into the flat (total, anomalous) accumulators of a single base
// cuboid — the finest materializable cuboid of the search's surviving
// attributes — and then serves every cuboid that coarsens the base by
// memoized marginalization over that array: pure integer arithmetic, zero
// further leaf reads.
//
// The roll-up is exact, not approximate. A cuboid c ⊆ base partitions the
// base's Cartesian groups — every base group projects onto exactly one
// group of c — and the counts are plain integers, so summing base slots
// into c's slots reproduces precisely the counts a direct scan of c would
// have produced, in the same ascending group order. Integer addition
// commutes, so the result is also independent of how the base pass itself
// was partitioned across workers: the PR 3 merge-replay determinism
// contract (bit-identical results at any worker count) carries over
// unchanged.
//
// The base pass reuses the LayerScan machinery — chunk blocking, halt
// polling every scanChunk leaves, worker partitioning by contiguous leaf
// range with exact integer merge, and ScanPanic trapping — by planning a
// single-cuboid layer with the plan's own accumulator limit. Cuboids that
// constrain an attribute outside the base (the attribute was too wide to
// materialize) are not served; callers fall back to the fused per-layer
// scan for those.
//
// A RollupPlan is built and consumed by one goroutine (the search's merge
// goroutine); it is not safe for concurrent use.
type RollupPlan struct {
	snap *Snapshot
	// base is the materialized cuboid, a subsequence of the attrs given to
	// NewRollupPlan; cards are its per-position cardinalities.
	base  Cuboid
	cards []int
	scan  *LayerScan
	// tot/anm are the merged base accumulators, valid once Run succeeds.
	tot, anm []int32
	// marg memoizes the marginal accumulators computed so far, keyed by the
	// bitmask of retained base positions. The full mask aliases tot/anm;
	// coarser masks are derived on demand (see marginal) and reused across
	// every cuboid of every later layer that refines them.
	marg map[uint32]*marginal
}

// marginal is one materialized projection of the base accumulators onto a
// subset of its attributes, laid out in the projection's own mixed-radix
// group order (identical to the CuboidIndexer layout for that cuboid).
type marginal struct {
	tot, anm []int32
}

// DefaultRollupLimit bounds the base accumulator size relative to the
// observed leaf count. Serving a cuboid costs one arithmetic walk of the
// base array, so the base must stay within a small multiple of the leaf
// count for the roll-up to beat rescanning the leaves; past 2x the walk
// spends more time skipping empty slots than a fused scan spends reading
// columns. The floor keeps small snapshots from refusing a base that
// costs next to nothing either way.
func DefaultRollupLimit(leaves int) int {
	const floor = 1 << 12
	if limit := 2 * leaves; limit > floor {
		return limit
	}
	return floor
}

// NewRollupPlan picks the finest materializable base cuboid over attrs
// (given in search order) and returns a plan for it, or nil when no base
// worth materializing exists. limit caps the base's Cartesian size in
// accumulator slots; limit <= 0 means DefaultRollupLimit.
//
// The base is chosen greedily by ascending cardinality: admitting narrow
// attributes first maximizes how many attributes — and therefore how many
// of the layer schedule's cuboids — the base covers. A base must span at
// least two attributes: a single-attribute base serves only itself, so
// materializing it saves nothing over the fused layer scan.
func (s *Snapshot) NewRollupPlan(attrs []int, limit int) *RollupPlan {
	if limit <= 0 {
		limit = DefaultRollupLimit(len(s.Leaves))
	}
	if len(attrs) < 2 {
		return nil
	}
	// Order candidate attributes by ascending cardinality, ties broken by
	// search order so the choice is deterministic.
	order := make([]int, len(attrs))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := attrs[order[j-1]], attrs[order[j]]
			if s.Schema.Cardinality(a) <= s.Schema.Cardinality(b) {
				break
			}
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	in := make([]bool, len(attrs))
	size := 1
	for _, i := range order {
		card := s.Schema.Cardinality(attrs[i])
		if card <= 0 || size > limit/card {
			continue
		}
		size *= card
		in[i] = true
	}
	var base Cuboid
	for i, ok := range in {
		if ok {
			base = append(base, attrs[i])
		}
	}
	if len(base) < 2 {
		return nil
	}
	p := &RollupPlan{
		snap:  s,
		base:  base,
		cards: make([]int, len(base)),
	}
	for i, a := range base {
		p.cards[i] = s.Schema.Cardinality(a)
	}
	// The base pass is a one-cuboid fused layer under the plan's own
	// accumulator limit (the base was chosen to fit it, so it always
	// fuses into a single batch).
	p.scan = s.newLayerScanLimit([]Cuboid{base}, size)
	return p
}

// Base returns the materialized cuboid, a subsequence of the attrs the
// plan was built over.
func (p *RollupPlan) Base() Cuboid { return p.base }

// Serves reports whether cuboid c can be answered from the base by pure
// roll-up: every attribute c constrains must be in the base. c must list
// its attributes in the same relative order as the attrs the plan was
// built over (CuboidsAtLayer guarantees this).
func (p *RollupPlan) Serves(c Cuboid) bool {
	q := 0
	for _, a := range p.base {
		if q < len(c) && c[q] == a {
			q++
		}
	}
	return q == len(c)
}

// Run executes the base pass across workers goroutines, polling halt every
// scanChunk leaves. It returns false — and the plan must be discarded —
// when the halt tripped mid-pass; partial counts are never served. A panic
// on a scan worker is rethrown on the calling goroutine as a *ScanPanic.
func (p *RollupPlan) Run(workers int, halt Halt) bool {
	if !p.scan.Run(workers, halt) {
		return false
	}
	b := &p.scan.batches[0]
	p.tot, p.anm = b.tot, b.anm
	full := uint32(1)<<len(p.base) - 1
	p.marg = map[uint32]*marginal{full: {tot: p.tot, anm: p.anm}}
	return true
}

// Passes returns the completed leaf passes of the base scan (one, once Run
// succeeds).
func (p *RollupPlan) Passes() int { return p.scan.Passes() }

// Groups appends cuboid c's non-empty groups into dst (reusing its
// capacity after truncation to zero length), in ascending group index —
// byte-for-byte the output ScanCuboid would produce — by rolling the base
// accumulators up into c's domain. Valid only after Run returned true and
// when Serves(c) is true.
//
// Serving is memoized marginalization: c maps to the bitmask of base
// positions it retains, and the marginal for that mask is computed once per
// run by summing one attribute at a time out of the nearest already-cached
// finer marginal (contiguous strided loops, no leaf reads), then reused by
// every later cuboid that refines it. Because the counts are exact integers
// the marginalization order is irrelevant to the result, so the output is
// independent of both the call order and the worker count of the base pass.
func (p *RollupPlan) Groups(c Cuboid, dst []GroupCount) []GroupCount {
	dst = dst[:0]
	if p.snap.Len() == 0 {
		// An empty snapshot has no groups; skip the marginal walk entirely.
		return dst
	}
	// Map c onto the bitmask of base positions it retains. Both cuboids
	// order attributes the same way, so one synchronized walk pairs them up.
	var mask uint32
	q := 0
	for pos, a := range p.base {
		if q < len(c) && c[q] == a {
			mask |= 1 << pos
			q++
		}
	}
	m := p.marginal(mask)
	for g, v := range m.tot {
		if v == 0 {
			continue
		}
		dst = append(dst, GroupCount{Group: g, Total: int(v), Anomalous: int(m.anm[g])})
	}
	return dst
}

// marginal returns the accumulators projected onto the base positions in
// mask, computing and caching them on first use. A missing marginal is
// derived from the parent one attribute finer — the missing position with
// the smallest cardinality is summed out first, which keeps every parent in
// the chain as small as possible — so the total arithmetic for a whole
// layer schedule is a few strided passes over arrays no larger than the
// base, instead of one full base walk per cuboid.
func (p *RollupPlan) marginal(mask uint32) *marginal {
	if m, ok := p.marg[mask]; ok {
		return m
	}
	drop := -1
	for pos, card := range p.cards {
		if mask&(1<<pos) != 0 {
			continue
		}
		if drop < 0 || card < p.cards[drop] {
			drop = pos
		}
	}
	parent := p.marginal(mask | 1<<uint(drop))
	// The parent's layout splits around the dropped position as
	// (P, C, Q): P groups of C runs of Q contiguous slots, where slot
	// (i, j, q) of the parent folds into slot (i, q) of the child.
	pre, mid, post := 1, p.cards[drop], 1
	for pos, card := range p.cards {
		if mask&(1<<pos) == 0 {
			continue
		}
		if pos < drop {
			pre *= card
		} else {
			post *= card
		}
	}
	m := &marginal{
		tot: make([]int32, pre*post),
		anm: make([]int32, pre*post),
	}
	for i := 0; i < pre; i++ {
		src := i * mid * post
		dt := m.tot[i*post : (i+1)*post]
		da := m.anm[i*post : (i+1)*post]
		for j := 0; j < mid; j++ {
			st := parent.tot[src : src+post]
			sa := parent.anm[src : src+post]
			for q := range st {
				dt[q] += st[q]
				da[q] += sa[q]
			}
			src += post
		}
	}
	p.marg[mask] = m
	return m
}

// Close returns the base accumulators to their pool and drops the cached
// marginals. The plan must not be used afterwards.
func (p *RollupPlan) Close() {
	p.tot, p.anm, p.marg = nil, nil, nil
	if p.scan != nil {
		p.scan.Close()
		p.scan = nil
	}
}
