package kpi

import (
	"testing"
)

func TestFilterAndExcludePartition(t *testing.T) {
	snap := buildTestSnapshot(t)
	scope := MustParseCombination(snap.Schema, "(L1, *, *, *)")
	in, err := snap.Filter(scope)
	if err != nil {
		t.Fatalf("Filter: %v", err)
	}
	out, err := snap.Exclude(scope)
	if err != nil {
		t.Fatalf("Exclude: %v", err)
	}
	if in.Len()+out.Len() != snap.Len() {
		t.Fatalf("partition sizes %d + %d != %d", in.Len(), out.Len(), snap.Len())
	}
	for _, l := range in.Leaves {
		if !scope.Matches(l.Combo) {
			t.Fatalf("leaf %v escaped the filter", l.Combo)
		}
	}
	for _, l := range out.Leaves {
		if scope.Matches(l.Combo) {
			t.Fatalf("leaf %v escaped the exclusion", l.Combo)
		}
	}
}

func TestFilterAritValidation(t *testing.T) {
	snap := buildTestSnapshot(t)
	if _, err := snap.Filter(Combination{0}); err == nil {
		t.Error("Filter accepted wrong arity")
	}
	if _, err := snap.Exclude(Combination{0}); err == nil {
		t.Error("Exclude accepted wrong arity")
	}
}

func TestFilterDrillDownConfidence(t *testing.T) {
	// Drilling into the RAP of buildTestSnapshot gives a fully anomalous
	// sub-snapshot.
	snap := buildTestSnapshot(t)
	rap := MustParseCombination(snap.Schema, "(L1, *, *, Site1)")
	sub, err := snap.Filter(rap)
	if err != nil {
		t.Fatalf("Filter: %v", err)
	}
	if sub.Len() != 4 || sub.NumAnomalous() != 4 {
		t.Fatalf("drill-down = %d leaves, %d anomalous; want 4, 4", sub.Len(), sub.NumAnomalous())
	}
	// The residual after exclusion has no anomalies left.
	rest, err := snap.Exclude(rap)
	if err != nil {
		t.Fatalf("Exclude: %v", err)
	}
	if rest.NumAnomalous() != 0 {
		t.Fatalf("residual still has %d anomalies", rest.NumAnomalous())
	}
}

func TestLeafScope(t *testing.T) {
	snap := buildTestSnapshot(t)
	scope := MustParseCombination(snap.Schema, "(L2, *, *, *)")
	set := snap.LeafScope(scope)
	if len(set) != 8 {
		t.Fatalf("scope size = %d, want 8", len(set))
	}
	for _, l := range snap.Leaves {
		_, in := set[l.Combo.Key()]
		if in != scope.Matches(l.Combo) {
			t.Fatalf("membership mismatch for %v", l.Combo)
		}
	}
}
