package kpi_test

import (
	"fmt"

	"repro/internal/kpi"
)

// ExampleCombination_Matches shows the scope semantics: a combination
// matches every leaf that agrees on its constrained attributes.
func ExampleCombination_Matches() {
	schema := kpi.MustSchema(
		kpi.Attribute{Name: "Location", Values: []string{"L1", "L2"}},
		kpi.Attribute{Name: "Website", Values: []string{"Site1", "Site2"}},
	)
	scope := kpi.MustParseCombination(schema, "(L1, *)")
	leaf1 := kpi.MustParseCombination(schema, "(L1, Site2)")
	leaf2 := kpi.MustParseCombination(schema, "(L2, Site2)")
	fmt.Println(scope.Matches(leaf1))
	fmt.Println(scope.Matches(leaf2))
	// Output:
	// true
	// false
}

// ExampleDecreaseRatio reproduces Table IV of the paper: deleting k
// redundant attributes removes at least (2^k - 1)/2^k of the cuboids.
func ExampleDecreaseRatio() {
	for k := 1; k <= 3; k++ {
		fmt.Printf("k=%d: %.4f\n", k, kpi.DecreaseRatio(4, k))
	}
	// Output:
	// k=1: 0.5333
	// k=2: 0.8000
	// k=3: 0.9333
}

// ExampleSnapshot_GroupBy aggregates leaf statistics per cuboid in one
// pass, the primitive behind every localization method in this repository.
func ExampleSnapshot_GroupBy() {
	schema := kpi.MustSchema(
		kpi.Attribute{Name: "Location", Values: []string{"L1", "L2"}},
		kpi.Attribute{Name: "Website", Values: []string{"Site1", "Site2"}},
	)
	snapshot, err := kpi.NewSnapshot(schema, []kpi.Leaf{
		{Combo: kpi.Combination{0, 0}, Actual: 10, Forecast: 20, Anomalous: true},
		{Combo: kpi.Combination{0, 1}, Actual: 30, Forecast: 30},
		{Combo: kpi.Combination{1, 0}, Actual: 5, Forecast: 10, Anomalous: true},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, g := range snapshot.GroupBy(kpi.Cuboid{1}) {
		fmt.Printf("%s: %d leaves, confidence %.1f\n",
			g.Combo.Format(schema), g.Total, g.Confidence())
	}
	// Output:
	// (*, Site1): 2 leaves, confidence 1.0
	// (*, Site2): 1 leaves, confidence 0.0
}
