package kpi

import (
	"fmt"
	"math/rand"
	"testing"
)

// fuzzSnapshot derives a randomized snapshot from the fuzz inputs: a schema
// with 2-4 attributes of cardinality 2-5, and a random subset of the domain
// observed with random values and labels.
func fuzzSnapshot(seed int64, density, anomRate byte) *Snapshot {
	r := rand.New(rand.NewSource(seed))
	nAttr := 2 + r.Intn(3)
	attrs := make([]Attribute, nAttr)
	domain := 1
	for a := range attrs {
		card := 2 + r.Intn(4)
		vals := make([]string, card)
		for i := range vals {
			vals[i] = fmt.Sprintf("a%dv%d", a, i)
		}
		attrs[a] = Attribute{Name: fmt.Sprintf("a%d", a), Values: vals}
		domain *= card
	}
	schema := MustSchema(attrs...)

	keep := float64(density%100) / 100
	anom := float64(anomRate%100) / 100
	var leaves []Leaf
	combo := make(Combination, nAttr)
	for g := 0; g < domain; g++ {
		if r.Float64() >= keep {
			continue
		}
		rest := g
		for a := nAttr - 1; a >= 0; a-- {
			card := schema.Cardinality(a)
			combo[a] = int32(rest % card)
			rest /= card
		}
		leaves = append(leaves, Leaf{
			Combo:     combo.Clone(),
			Actual:    r.NormFloat64() * 50,
			Forecast:  r.NormFloat64() * 50,
			Anomalous: r.Float64() < anom,
		})
	}
	snap, err := NewSnapshot(schema, leaves)
	if err != nil {
		panic(err) // the generator only emits valid snapshots
	}
	return snap
}

// FuzzColumnsFusedScan is the dictionary-encoding property test: on
// randomized snapshots, EncodeColumns->decode round-trips every leaf, and
// the fused layer scan's group counts equal the existing per-cuboid
// GroupCount output for every cuboid of the lattice at several worker
// counts.
func FuzzColumnsFusedScan(f *testing.F) {
	f.Add(int64(1), byte(60), byte(30))
	f.Add(int64(2), byte(95), byte(5))
	f.Add(int64(3), byte(10), byte(90))
	f.Add(int64(42), byte(0), byte(50)) // empty snapshot
	f.Fuzz(func(t *testing.T, seed int64, density, anomRate byte) {
		snap := fuzzSnapshot(seed, density, anomRate)

		// Property 1: lossless dictionary encoding.
		cols := EncodeColumns(snap)
		for i := range snap.Leaves {
			want := snap.Leaves[i]
			got := cols.Leaf(i)
			if !got.Combo.Equal(want.Combo) || got.Actual != want.Actual ||
				got.Forecast != want.Forecast || got.Anomalous != want.Anomalous {
				t.Fatalf("leaf %d: decoded %+v, want %+v", i, got, want)
			}
		}

		// Property 2: fused counts == per-cuboid scan counts, layer by
		// layer, independent of the worker count.
		attrs := make([]int, snap.Schema.NumAttributes())
		for a := range attrs {
			attrs[a] = a
		}
		var want, got []GroupCount
		for layer := 1; layer <= len(attrs); layer++ {
			cuboids := CuboidsAtLayer(attrs, layer)
			for _, workers := range []int{1, 3, 8} {
				ls := snap.NewLayerScan(cuboids)
				if !ls.Run(workers, nil) {
					t.Fatalf("layer %d workers %d: Run aborted without a halt", layer, workers)
				}
				for ci, cuboid := range cuboids {
					want, _ = snap.ScanCuboidHalt(cuboid, want, nil)
					if !ls.Done(ci) {
						continue // sparse fallback: not part of the fusion
					}
					got = ls.Groups(ci, got)
					if len(got) != len(want) {
						t.Fatalf("layer %d cuboid %v: %d fused groups, %d scanned", layer, cuboid, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("layer %d cuboid %v group %d: fused %+v, scan %+v",
								layer, cuboid, i, got[i], want[i])
						}
					}
				}
				ls.Close()
			}
		}

		// Property 3: roll-up-served counts == per-cuboid scan counts for
		// every cuboid the base refines, at base limits straddling the
		// materialization boundary — the full domain (everything rolls
		// up), the leaf-count heuristic, and a limit tight enough that the
		// base shrinks to a strict attribute subset or to nothing (the
		// sparse-fallback boundary).
		domain := 1
		for a := range attrs {
			domain *= snap.Schema.Cardinality(a)
		}
		for _, limit := range []int{domain, domain - 1, 0, 4} {
			for _, workers := range []int{1, 3, 8} {
				plan := snap.NewRollupPlan(attrs, limit)
				if plan == nil {
					continue // nothing materializable under this limit
				}
				if plan.Run(workers, nil) != true {
					t.Fatalf("limit %d workers %d: base pass aborted without a halt", limit, workers)
				}
				for layer := 1; layer <= len(attrs); layer++ {
					for _, cuboid := range CuboidsAtLayer(attrs, layer) {
						if !plan.Serves(cuboid) {
							continue // outside the base: fused/fallback territory
						}
						want, _ = snap.ScanCuboidHalt(cuboid, want, nil)
						got = plan.Groups(cuboid, got)
						if len(got) != len(want) {
							t.Fatalf("limit %d cuboid %v: %d rolled-up groups, %d scanned",
								limit, cuboid, len(got), len(want))
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("limit %d cuboid %v group %d: rolled up %+v, scan %+v",
									limit, cuboid, i, got[i], want[i])
							}
						}
					}
				}
				plan.Close()
			}
		}
	})
}
