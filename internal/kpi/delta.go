package kpi

import (
	"fmt"
	"sort"
)

// Delta ingestion: per-minute ticks rarely replace the world. A CDN tick
// re-observes a fraction of the leaves and occasionally churns a few in or
// out; rebuilding the columnar frame, the anomaly bitset and the inverted
// postings from scratch for every tick is what caps a single instance well
// below the millions-of-leaves target. ApplyDelta patches the long-lived
// snapshot — and every cache hanging off it — in place, so the cost of a
// tick is proportional to the leaves it touches, not to the snapshot size.
//
// The contract is exactness, not approximation: after ApplyDelta the
// snapshot must be indistinguishable from NewSnapshot(schema, Leaves) built
// from scratch over the post-delta leaf slice. Every scan (ScanCuboid,
// LayerScan, RollupPlan), every cached structure (Columns, AnomalousLeafSet,
// AnomalousPostings) and everything derived from them — results and
// Diagnostics both — is bit-identical to the rebuilt snapshot's, at any
// worker count. The delta fuzz and the engine-level pins enforce this.
//
// Deltas stay within one schema. A tick that changes the schema or an
// attribute's cardinality cannot be patched — the mixed-radix strides of
// every indexer shift — so the caller falls back to a fresh snapshot (or
// FullRebuild on a hand-mutated one).

// LeafUpdate re-observes one existing leaf: the combination identifies it,
// Actual/Forecast replace its values. The anomaly label is deliberately not
// part of an update — labeling is the detector's job, done incrementally
// over the touched set with anomaly.LabelDelta after the delta applies.
type LeafUpdate struct {
	Combo    Combination
	Actual   float64
	Forecast float64
}

// Delta is one tick's worth of changes to a snapshot. Application order is
// fixed: Removes, then Updates, then Adds — so update and add indexes
// reported in ApplyResult.Touched are stable post-apply positions, and a
// key removed by the same delta may be re-added with a fresh observation.
type Delta struct {
	// Removes drops existing leaves by combination.
	Removes []Combination
	// Updates replaces the values of existing leaves.
	Updates []LeafUpdate
	// Adds appends new leaves (fully constrained, schema-valid, not
	// already present). Their Anomalous labels are honored, like
	// NewSnapshot's.
	Adds []Leaf
}

// Empty reports whether the delta carries no changes.
func (d Delta) Empty() bool {
	return len(d.Removes) == 0 && len(d.Updates) == 0 && len(d.Adds) == 0
}

// Size returns the number of change records in the delta.
func (d Delta) Size() int { return len(d.Removes) + len(d.Updates) + len(d.Adds) }

// ApplyResult reports what one ApplyDelta changed.
type ApplyResult struct {
	Removed, Updated, Added int
	// Touched holds the post-apply leaf indexes of the updated and added
	// leaves — the set an incremental detector must re-label
	// (anomaly.LabelDelta consumes it). Removed leaves need no relabel and
	// are not listed.
	Touched []int
	// PatchedFrame reports that the columnar frame existed and was patched
	// in place (false when it had not been built yet, so there was nothing
	// to patch).
	PatchedFrame bool
	// PatchedLabels reports that the label-derived caches existed and were
	// patched in place.
	PatchedLabels bool
}

// ApplyDelta applies the delta to the snapshot in place, patching the
// columnar frame, the anomaly bitset (with its cached count), the anomalous
// leaf set, the inverted postings and the leaf-position index rather than
// dropping them. The delta is validated in full before anything mutates, so
// a returned error leaves the snapshot untouched. Like every snapshot
// mutation, ApplyDelta must not race with concurrent readers: the caller
// serializes ticks against searches.
//
// Removed leaves are swap-removed (the last leaf moves into the hole), so
// leaf order after a remove differs from insertion order — the equivalence
// contract is against a from-scratch snapshot over the post-delta Leaves
// slice, which is the only order that ever matters to the scans.
func (s *Snapshot) ApplyDelta(d Delta) (ApplyResult, error) {
	var res ApplyResult
	s.mu.Lock()
	defer s.mu.Unlock()
	pos := s.leafPosLocked()

	// Validate everything against the pre-delta state plus the delta's own
	// pending removes/adds, so application below cannot fail halfway.
	removed := make(map[string]struct{}, len(d.Removes))
	for i, c := range d.Removes {
		k, err := s.deltaKey(c, "remove", i)
		if err != nil {
			return res, err
		}
		if _, ok := pos[k]; !ok {
			return res, fmt.Errorf("kpi: delta remove %d: leaf %s not in snapshot", i, c.Format(s.Schema))
		}
		if _, dup := removed[k]; dup {
			return res, fmt.Errorf("kpi: delta remove %d: duplicate leaf %s", i, c.Format(s.Schema))
		}
		removed[k] = struct{}{}
	}
	updated := make(map[string]struct{}, len(d.Updates))
	for i, u := range d.Updates {
		k, err := s.deltaKey(u.Combo, "update", i)
		if err != nil {
			return res, err
		}
		if _, ok := pos[k]; !ok {
			return res, fmt.Errorf("kpi: delta update %d: leaf %s not in snapshot", i, u.Combo.Format(s.Schema))
		}
		if _, gone := removed[k]; gone {
			return res, fmt.Errorf("kpi: delta update %d: leaf %s is removed by the same delta", i, u.Combo.Format(s.Schema))
		}
		if _, dup := updated[k]; dup {
			return res, fmt.Errorf("kpi: delta update %d: duplicate leaf %s", i, u.Combo.Format(s.Schema))
		}
		updated[k] = struct{}{}
	}
	added := make(map[string]struct{}, len(d.Adds))
	for i, l := range d.Adds {
		k, err := s.deltaKey(l.Combo, "add", i)
		if err != nil {
			return res, err
		}
		_, present := pos[k]
		if _, gone := removed[k]; gone {
			present = false
		}
		if present {
			return res, fmt.Errorf("kpi: delta add %d: leaf %s already in snapshot", i, l.Combo.Format(s.Schema))
		}
		if _, dup := added[k]; dup {
			return res, fmt.Errorf("kpi: delta add %d: duplicate leaf %s", i, l.Combo.Format(s.Schema))
		}
		added[k] = struct{}{}
	}

	res.PatchedFrame = s.frame != nil
	res.PatchedLabels = s.labeled != nil

	for _, c := range d.Removes {
		s.removeLeafLocked(pos[c.Key()])
		res.Removed++
	}
	for _, u := range d.Updates {
		i := int(pos[u.Combo.Key()])
		l := &s.Leaves[i]
		l.Actual, l.Forecast = u.Actual, u.Forecast
		if s.frame != nil {
			s.frame.actual[i] = u.Actual
			s.frame.forecast[i] = u.Forecast
		}
		res.Touched = append(res.Touched, i)
		res.Updated++
	}
	for _, l := range d.Adds {
		res.Touched = append(res.Touched, s.addLeafLocked(l))
		res.Added++
	}
	s.gen++
	return res, nil
}

// deltaKey validates a delta combination against the schema and returns its
// map key.
func (s *Snapshot) deltaKey(c Combination, op string, i int) (string, error) {
	if len(c) != s.Schema.NumAttributes() {
		return "", fmt.Errorf("kpi: delta %s %d: combination has %d attributes, schema has %d",
			op, i, len(c), s.Schema.NumAttributes())
	}
	for a, code := range c {
		if code == Wildcard {
			return "", fmt.Errorf("kpi: delta %s %d: combination is not fully constrained (attribute %s)",
				op, i, s.Schema.Attribute(a).Name)
		}
		if !s.Schema.ValidCode(a, code) {
			return "", fmt.Errorf("kpi: delta %s %d: invalid code %d for attribute %s",
				op, i, code, s.Schema.Attribute(a).Name)
		}
	}
	return c.Key(), nil
}

// leafPosLocked returns the Combination.Key → leaf index map, building it
// on first use; s.mu must be held.
func (s *Snapshot) leafPosLocked() map[string]int32 {
	if s.leafPos == nil {
		pos := make(map[string]int32, len(s.Leaves))
		for i := range s.Leaves {
			pos[s.Leaves[i].Combo.Key()] = int32(i)
		}
		s.leafPos = pos
	}
	return s.leafPos
}

// removeLeafLocked swap-removes leaf i, patching every built cache; s.mu
// must be held.
func (s *Snapshot) removeLeafLocked(i32 int32) {
	i := int(i32)
	last := len(s.Leaves) - 1
	removed := s.Leaves[i]
	moved := s.Leaves[last]

	if ld := s.labeled; ld != nil {
		if removed.Anomalous {
			ld.dropLeaf(i, removed.Combo)
		}
		if i != last && moved.Anomalous {
			// The moving leaf's index shrinks from last to i. last is the
			// maximal live index, so it sits at the tail of every sorted
			// list it appears in.
			ld.dropLeaf(last, moved.Combo)
			ld.insertLeaf(i, moved.Combo)
		}
		if ld.cols != nil {
			ld.cols.shrink(len(s.Leaves) - 1)
		}
	}

	s.Leaves[i] = moved
	s.Leaves = s.Leaves[:last]
	if f := s.frame; f != nil {
		for a := range f.elem {
			f.elem[a][i] = f.elem[a][last]
			f.elem[a] = f.elem[a][:last]
		}
		f.actual[i] = f.actual[last]
		f.actual = f.actual[:last]
		f.forecast[i] = f.forecast[last]
		f.forecast = f.forecast[:last]
	}
	delete(s.leafPos, removed.Combo.Key())
	if i != last {
		s.leafPos[moved.Combo.Key()] = i32
	}
}

// addLeafLocked appends the leaf, patching every built cache, and returns
// its index; s.mu must be held. The combination is cloned so the snapshot
// never aliases a caller's decode buffer.
func (s *Snapshot) addLeafLocked(l Leaf) int {
	n := len(s.Leaves)
	l.Combo = l.Combo.Clone()
	s.Leaves = append(s.Leaves, l)
	if f := s.frame; f != nil {
		// The element columns were carved out of one shared backing array
		// with their capacity pinned at the boundary, so the first append
		// per column copies it out; later appends amortize as usual.
		for a, code := range l.Combo {
			f.elem[a] = append(f.elem[a], uint32(code))
		}
		f.actual = append(f.actual, l.Actual)
		f.forecast = append(f.forecast, l.Forecast)
	}
	if ld := s.labeled; ld != nil {
		if ld.cols != nil {
			ld.cols.grow(n + 1)
		}
		if l.Anomalous {
			ld.insertLeaf(n, l.Combo)
		}
	}
	s.leafPos[l.Combo.Key()] = int32(n)
	return n
}

// PatchLabels patches the label-derived caches after the caller rewrote the
// Anomalous labels of exactly the leaves in changed (each listed index must
// have actually flipped). The anomalous leaf set, the inverted postings and
// the columnar bitset with its cached count are updated in place — the
// incremental counterpart of InvalidateLabels, used by anomaly.LabelDelta
// when the detector knows which leaves a tick touched. Like InvalidateLabels
// it bumps the snapshot's generation, so lazy builds racing the patch are
// discarded rather than resurrected.
func (s *Snapshot) PatchLabels(changed []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
	ld := s.labeled
	if ld == nil {
		// Nothing built yet: the fresh labels derive lazily on next use.
		return
	}
	for _, i := range changed {
		l := &s.Leaves[i]
		if l.Anomalous {
			ld.insertLeaf(i, l.Combo)
		} else {
			ld.dropLeaf(i, l.Combo)
		}
	}
}

// insertLeaf records leaf i (with the given combination) as anomalous in
// every built label cache.
func (ld *labelDerived) insertLeaf(i int, combo Combination) {
	ld.anomIdx = insertSortedInt(ld.anomIdx, i)
	if ld.postings != nil {
		for a, code := range combo {
			ld.postings[a][code] = insertSortedInt32(ld.postings[a][code], int32(i))
		}
	}
	if ld.cols != nil {
		ld.cols.setAnomalous(i, true)
	}
}

// dropLeaf removes leaf i (with the given combination) from every built
// label cache.
func (ld *labelDerived) dropLeaf(i int, combo Combination) {
	ld.anomIdx = removeSortedInt(ld.anomIdx, i)
	if ld.postings != nil {
		for a, code := range combo {
			ld.postings[a][code] = removeSortedInt32(ld.postings[a][code], int32(i))
		}
	}
	if ld.cols != nil {
		ld.cols.setAnomalous(i, false)
	}
}

// insertSortedInt inserts v into the ascending slice, keeping it sorted;
// inserting a present value is a no-op.
func insertSortedInt(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// removeSortedInt removes v from the ascending slice; removing an absent
// value is a no-op.
func removeSortedInt(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i >= len(s) || s[i] != v {
		return s
	}
	return append(s[:i], s[i+1:]...)
}

func insertSortedInt32(s []int32, v int32) []int32 {
	i := sort.Search(len(s), func(j int) bool { return s[j] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSortedInt32(s []int32, v int32) []int32 {
	i := sort.Search(len(s), func(j int) bool { return s[j] >= v })
	if i >= len(s) || s[i] != v {
		return s
	}
	return append(s[:i], s[i+1:]...)
}
