package kpi

import (
	"fmt"
)

// Filter returns the sub-snapshot of leaves inside the scope of ac — the
// drill-down operation an operator performs after localization to inspect
// one root anomaly pattern's blast radius. The returned snapshot shares
// leaf storage with the receiver; callers that mutate it should Clone
// first.
func (s *Snapshot) Filter(ac Combination) (*Snapshot, error) {
	if len(ac) != s.Schema.NumAttributes() {
		return nil, fmt.Errorf("kpi: filter scope has %d attributes, schema has %d",
			len(ac), s.Schema.NumAttributes())
	}
	var leaves []Leaf
	for _, l := range s.Leaves {
		if ac.Matches(l.Combo) {
			leaves = append(leaves, l)
		}
	}
	return &Snapshot{Schema: s.Schema, Leaves: leaves}, nil
}

// Exclude returns the sub-snapshot of leaves outside the scope of ac — the
// complement of Filter, useful for re-running localization on the residual
// anomalies after one pattern is explained.
func (s *Snapshot) Exclude(ac Combination) (*Snapshot, error) {
	if len(ac) != s.Schema.NumAttributes() {
		return nil, fmt.Errorf("kpi: exclude scope has %d attributes, schema has %d",
			len(ac), s.Schema.NumAttributes())
	}
	var leaves []Leaf
	for _, l := range s.Leaves {
		if !ac.Matches(l.Combo) {
			leaves = append(leaves, l)
		}
	}
	return &Snapshot{Schema: s.Schema, Leaves: leaves}, nil
}

// LeafScope returns the set of leaf keys under ac; two patterns can be
// compared by scope overlap via these sets (see evalmetrics.ScopeOverlap).
func (s *Snapshot) LeafScope(ac Combination) map[string]struct{} {
	out := make(map[string]struct{})
	for _, l := range s.Leaves {
		if ac.Matches(l.Combo) {
			out[l.Combo.Key()] = struct{}{}
		}
	}
	return out
}
