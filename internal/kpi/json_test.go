package kpi

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	snap := buildTestSnapshot(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, snap); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.Len() != snap.Len() {
		t.Fatalf("round trip len = %d, want %d", got.Len(), snap.Len())
	}
	for i := range snap.Leaves {
		a, b := snap.Leaves[i], got.Leaves[i]
		if a.Combo.Format(snap.Schema) != b.Combo.Format(got.Schema) ||
			a.Actual != b.Actual || a.Forecast != b.Forecast || a.Anomalous != b.Anomalous {
			t.Fatalf("leaf %d differs after round trip", i)
		}
	}
	if got.Schema.NumAttributes() != snap.Schema.NumAttributes() {
		t.Fatal("schema arity lost")
	}
}

func TestReadJSONErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"garbage", "{nope"},
		{"empty schema", `{"attributes": [], "leaves": []}`},
		{"arity mismatch", `{"attributes": [{"name":"A","values":["x","y"]}], "leaves": [{"combination":["x","y"],"actual":1,"forecast":1}]}`},
		{"unknown element", `{"attributes": [{"name":"A","values":["x"]}], "leaves": [{"combination":["z"],"actual":1,"forecast":1}]}`},
		{"duplicate leaf", `{"attributes": [{"name":"A","values":["x"]}], "leaves": [{"combination":["x"],"actual":1,"forecast":1},{"combination":["x"],"actual":2,"forecast":2}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(tt.in)); err == nil {
				t.Error("ReadJSON succeeded, want error")
			}
		})
	}
}

func TestReadJSONMinimalDocument(t *testing.T) {
	in := `{
		"attributes": [
			{"name": "Location", "values": ["L1", "L2"]},
			{"name": "Website", "values": ["S1"]}
		],
		"leaves": [
			{"combination": ["L1", "S1"], "actual": 10, "forecast": 20, "anomalous": true},
			{"combination": ["L2", "S1"], "actual": 20, "forecast": 20}
		]
	}`
	snap, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if snap.Len() != 2 || snap.NumAnomalous() != 1 {
		t.Fatalf("snapshot = %d leaves, %d anomalous", snap.Len(), snap.NumAnomalous())
	}
}
