package kpi

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseCombination checks that the combination parser never panics and
// that whatever it accepts round-trips through Format.
func FuzzParseCombination(f *testing.F) {
	schema := MustSchema(
		Attribute{Name: "A", Values: []string{"a1", "a2"}},
		Attribute{Name: "B", Values: []string{"b1", "b2"}},
	)
	for _, seed := range []string{
		"(a1, *)", "(*, b2)", "(a1, b1)", "(*, *)",
		"", "(", "(a1)", "(a1, b1, c1)", "a1,*", "(,*)", "(a9, *)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		combo, err := ParseCombination(schema, text)
		if err != nil {
			return
		}
		formatted := combo.Format(schema)
		again, err := ParseCombination(schema, formatted)
		if err != nil {
			t.Fatalf("Format output %q does not re-parse: %v", formatted, err)
		}
		if !again.Equal(combo) {
			t.Fatalf("round trip changed %v to %v", combo, again)
		}
	})
}

// FuzzReadCSV checks the CSV reader never panics and that accepted
// snapshots survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("Location,Website,actual,forecast\nL1,S1,1,2\n")
	f.Add("Location,Website,actual,forecast,anomalous\nL1,S1,1,2,true\n")
	f.Add("A,actual,forecast\nx,1,notanum\n")
	f.Add("")
	f.Add("a,b\n1")
	f.Add("A,actual,forecast\n*,1,2\n")
	f.Fuzz(func(t *testing.T, data string) {
		snap, err := ReadCSV(strings.NewReader(data), nil)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, snap); err != nil {
			t.Fatalf("WriteCSV of accepted snapshot: %v", err)
		}
		again, err := ReadCSV(&buf, snap.Schema)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if again.Len() != snap.Len() {
			t.Fatalf("round trip lost leaves: %d -> %d", snap.Len(), again.Len())
		}
	})
}

// FuzzReadJSON checks the JSON reader never panics and round-trips.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"attributes":[{"name":"A","values":["x","y"]}],"leaves":[{"combination":["x"],"actual":1,"forecast":2}]}`)
	f.Add(`{"attributes":[],"leaves":[]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, data string) {
		snap, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, snap); err != nil {
			t.Fatalf("WriteJSON of accepted snapshot: %v", err)
		}
		if _, err := ReadJSON(&buf); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
	})
}
