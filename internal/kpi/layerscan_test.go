package kpi

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestLayerScanMatchesScanCuboid pins the fused pass to the per-cuboid scan:
// for every layer of the lattice and every worker count, Groups must produce
// byte-identical output to ScanCuboid for every fused cuboid.
func TestLayerScanMatchesScanCuboid(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		snap := scanTestSnapshot(t, seed)
		attrs := []int{0, 1, 2}
		var want, got []GroupCount
		for layer := 1; layer <= len(attrs); layer++ {
			cuboids := CuboidsAtLayer(attrs, layer)
			for _, workers := range []int{1, 2, 4, 8} {
				ls := snap.NewLayerScan(cuboids)
				if !ls.Run(workers, nil) {
					t.Fatalf("seed %d layer %d workers %d: Run aborted without a halt", seed, layer, workers)
				}
				if ls.Passes() < 1 {
					t.Fatalf("seed %d layer %d: Passes() = %d after a completed run", seed, layer, ls.Passes())
				}
				for ci, cuboid := range cuboids {
					if !ls.Fused(ci) || !ls.Done(ci) {
						t.Fatalf("seed %d layer %d cuboid %v: not fused/done on a small dense domain", seed, layer, cuboid)
					}
					want = snap.ScanCuboid(cuboid, want)
					got = ls.Groups(ci, got)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d layer %d workers %d cuboid %v:\nfused %v\n scan %v",
							seed, layer, workers, cuboid, got, want)
					}
				}
				ls.Close()
			}
		}
	}
}

// TestLayerScanSinglePass checks the headline claim: a whole layer of a
// dense schema costs one pass over the leaf columns, not one per cuboid.
func TestLayerScanSinglePass(t *testing.T) {
	snap := scanTestSnapshot(t, 0)
	cuboids := CuboidsAtLayer([]int{0, 1, 2}, 2) // 3 cuboids
	ls := snap.NewLayerScan(cuboids)
	defer ls.Close()
	if !ls.Run(1, nil) {
		t.Fatal("Run aborted")
	}
	if ls.Passes() != 1 {
		t.Fatalf("Passes() = %d for a layer that fits one batch, want 1", ls.Passes())
	}
}

// TestLayerScanHaltAborts checks a tripped halt abandons the pass: Run
// reports false and no cuboid reports Done, so callers fall back to the
// per-cuboid path that owns the degraded semantics.
func TestLayerScanHaltAborts(t *testing.T) {
	snap := scanTestSnapshot(t, 0)
	cuboids := CuboidsAtLayer([]int{0, 1, 2}, 1)
	ls := snap.NewLayerScan(cuboids)
	defer ls.Close()
	if ls.Run(1, func() bool { return true }) {
		t.Fatal("Run completed under an always-tripped halt")
	}
	if ls.Passes() != 0 {
		t.Fatalf("Passes() = %d after an aborted run, want 0", ls.Passes())
	}
	for ci := range cuboids {
		if ls.Done(ci) {
			t.Fatalf("cuboid %d reports Done after an aborted run", ci)
		}
	}
}

// hugeDomainSnapshot builds a snapshot whose two-attribute cuboids exceed
// the dense accumulator budget, forcing the sparse (non-fused) path.
func hugeDomainSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	mk := func(name string, n int) Attribute {
		vals := make([]string, n)
		for i := range vals {
			vals[i] = fmt.Sprintf("%s%04d", name, i)
		}
		return Attribute{Name: name, Values: vals}
	}
	s := MustSchema(mk("x", 5000), mk("y", 5000))
	r := rand.New(rand.NewSource(11))
	seen := map[[2]int32]bool{}
	var leaves []Leaf
	for len(leaves) < 300 {
		k := [2]int32{int32(r.Intn(5000)), int32(r.Intn(5000))}
		if seen[k] {
			continue
		}
		seen[k] = true
		leaves = append(leaves, Leaf{
			Combo:     Combination{k[0], k[1]},
			Actual:    r.Float64(),
			Forecast:  r.Float64(),
			Anomalous: r.Float64() < 0.3,
		})
	}
	snap, err := NewSnapshot(s, leaves)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestLayerScanSparseFallback checks cuboids whose Cartesian domain dwarfs
// the data are excluded from the fusion (Fused false, Done false) while
// dense cuboids of the same layer still fuse.
func TestLayerScanSparseFallback(t *testing.T) {
	snap := hugeDomainSnapshot(t)
	// Layer 2 of the 5000x5000 schema has a 25M-slot domain — far past the
	// dense limit for 300 leaves; layer 1 (5000 slots each) stays dense.
	sparse := CuboidsAtLayer([]int{0, 1}, 2)
	ls := snap.NewLayerScan(sparse)
	defer ls.Close()
	if !ls.Run(4, nil) {
		t.Fatal("Run aborted")
	}
	if ls.Passes() != 0 {
		t.Fatalf("Passes() = %d for an all-sparse layer, want 0", ls.Passes())
	}
	if ls.Fused(0) || ls.Done(0) {
		t.Fatal("sparse-domain cuboid reported fused")
	}

	dense := CuboidsAtLayer([]int{0, 1}, 1)
	ld := snap.NewLayerScan(dense)
	defer ld.Close()
	if !ld.Run(4, nil) {
		t.Fatal("Run aborted")
	}
	var want, got []GroupCount
	for ci, cuboid := range dense {
		if !ld.Done(ci) {
			t.Fatalf("dense cuboid %v not fused", cuboid)
		}
		want = snap.ScanCuboid(cuboid, want)
		got = ld.Groups(ci, got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cuboid %v: fused %v, scan %v", cuboid, got, want)
		}
	}
}

// batchedSnapshot builds a schema whose layer-2 slot total exceeds one
// dense accumulator budget while each cuboid stays under it, so the layer
// splits into multiple fused batches.
func batchedSnapshot(t *testing.T) (*Snapshot, []Cuboid) {
	t.Helper()
	mk := func(name string, n int) Attribute {
		vals := make([]string, n)
		for i := range vals {
			vals[i] = fmt.Sprintf("%s%03d", name, i)
		}
		return Attribute{Name: name, Values: vals}
	}
	s := MustSchema(mk("a", 141), mk("b", 141), mk("c", 141), mk("d", 141))
	r := rand.New(rand.NewSource(7))
	seen := map[[4]int32]bool{}
	var leaves []Leaf
	for len(leaves) < 500 {
		k := [4]int32{int32(r.Intn(141)), int32(r.Intn(141)), int32(r.Intn(141)), int32(r.Intn(141))}
		if seen[k] {
			continue
		}
		seen[k] = true
		leaves = append(leaves, Leaf{
			Combo:     Combination{k[0], k[1], k[2], k[3]},
			Actual:    r.Float64(),
			Forecast:  r.Float64(),
			Anomalous: r.Float64() < 0.25,
		})
	}
	snap, err := NewSnapshot(s, leaves)
	if err != nil {
		t.Fatal(err)
	}
	// Layer 2: six 19,881-slot cuboids, ~119k slots total against a
	// 65,536-slot budget (500 leaves) — splits into two batches of three.
	return snap, CuboidsAtLayer([]int{0, 1, 2, 3}, 2)
}

// TestLayerScanBatches checks a layer whose slot total exceeds the dense
// budget splits into multiple passes and still matches ScanCuboid.
func TestLayerScanBatches(t *testing.T) {
	snap, cuboids := batchedSnapshot(t)
	ls := snap.NewLayerScan(cuboids)
	defer ls.Close()
	if !ls.Run(4, nil) {
		t.Fatal("Run aborted")
	}
	if ls.Passes() < 2 {
		t.Fatalf("Passes() = %d, want >= 2 (layer exceeds one accumulator budget)", ls.Passes())
	}
	if ls.Passes() >= len(cuboids) {
		t.Fatalf("Passes() = %d for %d cuboids: batching bought nothing", ls.Passes(), len(cuboids))
	}
	var want, got []GroupCount
	for ci, cuboid := range cuboids {
		if !ls.Done(ci) {
			t.Fatalf("cuboid %v not done", cuboid)
		}
		want = snap.ScanCuboid(cuboid, want)
		got = ls.Groups(ci, got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cuboid %v: fused and per-cuboid scans diverge", cuboid)
		}
	}
}

// TestLayerScanCloseReuse checks the pooled accumulators survive recycling:
// a second scan after Close produces the same results.
func TestLayerScanCloseReuse(t *testing.T) {
	snap := scanTestSnapshot(t, 4)
	cuboids := CuboidsAtLayer([]int{0, 1, 2}, 2)
	var first [][]GroupCount
	ls := snap.NewLayerScan(cuboids)
	if !ls.Run(2, nil) {
		t.Fatal("Run aborted")
	}
	for ci := range cuboids {
		first = append(first, ls.Groups(ci, nil))
	}
	ls.Close()

	again := snap.NewLayerScan(cuboids)
	defer again.Close()
	if !again.Run(2, nil) {
		t.Fatal("second Run aborted")
	}
	for ci := range cuboids {
		if got := again.Groups(ci, nil); !reflect.DeepEqual(got, first[ci]) {
			t.Fatalf("cuboid %d: results changed after pool recycling", ci)
		}
	}
}

// TestLayerScanWorkerPanic checks a panic on a fused-scan worker goroutine
// is rethrown on the calling goroutine as *ScanPanic instead of killing the
// process. The snapshot is poisoned via a struct literal (bypassing
// NewSnapshot validation) with an element code outside its attribute's
// cardinality, and is large enough that Run actually forks workers.
func TestLayerScanWorkerPanic(t *testing.T) {
	s := MustSchema(
		Attribute{Name: "a", Values: []string{"a1", "a2"}},
		Attribute{Name: "b", Values: []string{"b1", "b2"}},
	)
	// >= 2*scanChunk leaves so workers > 1 actually partitions the pass.
	n := 2*scanChunk + 100
	leaves := make([]Leaf, n)
	for i := range leaves {
		leaves[i] = Leaf{Combo: Combination{int32(i % 2), int32(i / 2 % 2)}}
	}
	leaves[n-1].Combo = Combination{9, 0} // out of range for cardinality 2
	snap := &Snapshot{Schema: s, Leaves: leaves}

	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers %d: poisoned scan did not panic", workers)
				}
				if workers > 1 {
					if _, ok := r.(*ScanPanic); !ok {
						t.Fatalf("workers %d: recovered %T, want *ScanPanic", workers, r)
					}
				}
			}()
			ls := snap.NewLayerScan(CuboidsAtLayer([]int{0, 1}, 1))
			defer ls.Close()
			ls.Run(workers, nil)
		}()
	}
}
