package kpi

import "sort"

// Columns is the snapshot's columnar mirror: the dictionary-encoded leaf
// data laid out struct-of-arrays so scans touch contiguous memory instead
// of chasing one heap-allocated Combination per leaf. Per attribute there
// is a dense []uint32 element-ID column (the schema's interned codes), the
// actual/forecast values live in two float64 columns, and the anomaly
// labels are packed into a bitset with a cached population count.
//
// Columns are built lazily per snapshot (Snapshot.Columns) together with
// the other label-derived caches, and are invalidated as a unit by
// InvalidateLabels: relabeling a snapshot in place and invalidating yields
// fresh columns, a fresh bitset and a fresh anomalous count on the next
// access. The element and value columns are derived from the leaves, which
// are immutable apart from their Anomalous labels, so they can be shared
// across relabelings.
type Columns struct {
	schema *Schema
	n      int
	frame  *colFrame
	// anom is the packed anomaly bitset: bit i set iff leaf i is
	// anomalous. len(anom) == (n+63)/64.
	anom []uint64
	// numAnomalous caches the bitset's population count.
	numAnomalous int
}

// colFrame holds the label-independent columns: the per-attribute element
// IDs and the v/f value columns. One frame is built per snapshot and shared
// across label invalidations.
type colFrame struct {
	elem     [][]uint32
	actual   []float64
	forecast []float64
}

// buildColFrame encodes the leaves' combinations and values column-wise.
func buildColFrame(schema *Schema, leaves []Leaf) *colFrame {
	nAttr := schema.NumAttributes()
	n := len(leaves)
	// One backing array for all element columns keeps them adjacent in
	// memory and cuts the build to two allocations. Columns are placed in
	// descending cardinality order: the fused scans read several columns
	// per chunk, and the high-cardinality columns — the ones whose strides
	// dominate the mixed-radix keys and whose values the scan cannot
	// predict — profit most from landing adjacent at the front of the
	// block. f.elem stays indexed by attribute, so the layout is invisible
	// to every reader.
	order := make([]int, nAttr)
	for a := range order {
		order[a] = a
	}
	sort.SliceStable(order, func(i, j int) bool {
		return schema.Cardinality(order[i]) > schema.Cardinality(order[j])
	})
	backing := make([]uint32, nAttr*n)
	f := &colFrame{
		elem:     make([][]uint32, nAttr),
		actual:   make([]float64, n),
		forecast: make([]float64, n),
	}
	for pos, a := range order {
		f.elem[a] = backing[pos*n : (pos+1)*n : (pos+1)*n]
	}
	for i := range leaves {
		l := &leaves[i]
		for a, code := range l.Combo {
			f.elem[a][i] = uint32(code)
		}
		f.actual[i] = l.Actual
		f.forecast[i] = l.Forecast
	}
	return f
}

// newColumns assembles a Columns view from a frame plus the anomalous leaf
// indexes (the labelDerived cache's anomIdx).
func newColumns(schema *Schema, frame *colFrame, n int, anomIdx []int) *Columns {
	c := &Columns{
		schema:       schema,
		n:            n,
		frame:        frame,
		anom:         make([]uint64, (n+63)/64),
		numAnomalous: len(anomIdx),
	}
	for _, i := range anomIdx {
		c.anom[i>>6] |= 1 << (uint(i) & 63)
	}
	return c
}

// EncodeColumns builds a fresh, uncached columnar encoding of the snapshot.
// Most callers want the cached Snapshot.Columns instead; this entry point
// exists for tests and tools that need an encoding independent of the
// snapshot's cache state.
func EncodeColumns(s *Snapshot) *Columns {
	frame := buildColFrame(s.Schema, s.Leaves)
	var anomIdx []int
	for i := range s.Leaves {
		if s.Leaves[i].Anomalous {
			anomIdx = append(anomIdx, i)
		}
	}
	return newColumns(s.Schema, frame, len(s.Leaves), anomIdx)
}

// Len returns the number of encoded leaves.
func (c *Columns) Len() int { return c.n }

// Elem returns attribute a's dense element-ID column; treat it as
// read-only.
func (c *Columns) Elem(a int) []uint32 { return c.frame.elem[a] }

// Actual returns the actual-value column; treat it as read-only.
func (c *Columns) Actual() []float64 { return c.frame.actual }

// Forecast returns the forecast-value column; treat it as read-only.
func (c *Columns) Forecast() []float64 { return c.frame.forecast }

// AnomalousBits returns the packed anomaly bitset (bit i == leaf i); treat
// it as read-only.
func (c *Columns) AnomalousBits() []uint64 { return c.anom }

// Anomalous reports whether leaf i is labeled anomalous.
func (c *Columns) Anomalous(i int) bool {
	return c.anom[i>>6]>>(uint(i)&63)&1 != 0
}

// NumAnomalous returns the cached anomalous leaf count (the bitset's
// population count).
func (c *Columns) NumAnomalous() int { return c.numAnomalous }

// setAnomalous patches leaf i's bit and the cached population count; used
// by the snapshot's delta/label patching under its mutex. Callers pass the
// leaf's new label only when it differs from the stored bit, but the update
// is idempotent either way.
func (c *Columns) setAnomalous(i int, anomalous bool) {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	set := c.anom[w]&m != 0
	switch {
	case anomalous && !set:
		c.anom[w] |= m
		c.numAnomalous++
	case !anomalous && set:
		c.anom[w] &^= m
		c.numAnomalous--
	}
}

// grow extends the store to n leaves (bits above the old count arrive
// cleared); the element and value columns live on the shared frame, which
// the snapshot patches separately.
func (c *Columns) grow(n int) {
	need := (n + 63) / 64
	for len(c.anom) < need {
		c.anom = append(c.anom, 0)
	}
	c.n = n
}

// shrink truncates the store to n leaves. The caller has already cleared
// the bits of the dropped tail, so the resliced bitset equals a fresh
// encoding's.
func (c *Columns) shrink(n int) {
	c.anom = c.anom[:(n+63)/64]
	c.n = n
}

// Leaf decodes leaf i back from the columns — the inverse of the encoding,
// allocating a fresh Combination. Used to verify the round trip; scans read
// the columns directly instead.
func (c *Columns) Leaf(i int) Leaf {
	combo := make(Combination, len(c.frame.elem))
	for a := range c.frame.elem {
		combo[a] = int32(c.frame.elem[a][i])
	}
	return Leaf{
		Combo:     combo,
		Actual:    c.frame.actual[i],
		Forecast:  c.frame.forecast[i],
		Anomalous: c.Anomalous(i),
	}
}
