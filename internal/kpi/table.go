package kpi

import (
	"fmt"
	"sort"
)

// Table holds several fundamental KPI metrics for the same set of leaves,
// e.g. the CDN simulator's out-flow, request and cache-hit counts at one
// timestamp. Derived KPIs (Section III-A of the paper) are computed from
// fundamental columns with Derive after any aggregation.
type Table struct {
	Schema  *Schema
	Combos  []Combination
	columns map[string][]float64
}

// NewTable creates an empty table over the given leaves. Every leaf must be
// fully constrained and unique.
func NewTable(schema *Schema, combos []Combination) (*Table, error) {
	seen := make(map[string]struct{}, len(combos))
	for i, c := range combos {
		if len(c) != schema.NumAttributes() || !c.IsLeaf() {
			return nil, fmt.Errorf("kpi: table row %d is not a leaf combination", i)
		}
		k := c.Key()
		if _, dup := seen[k]; dup {
			return nil, fmt.Errorf("kpi: duplicate table row %s", c.Format(schema))
		}
		seen[k] = struct{}{}
	}
	return &Table{
		Schema:  schema,
		Combos:  combos,
		columns: make(map[string][]float64),
	}, nil
}

// Len returns the number of rows (leaves).
func (t *Table) Len() int { return len(t.Combos) }

// SetColumn installs a metric column; its length must equal Len.
func (t *Table) SetColumn(name string, values []float64) error {
	if len(values) != t.Len() {
		return fmt.Errorf("kpi: column %q has %d values, table has %d rows",
			name, len(values), t.Len())
	}
	t.columns[name] = values
	return nil
}

// Column returns a metric column by name.
func (t *Table) Column(name string) ([]float64, bool) {
	c, ok := t.columns[name]
	return c, ok
}

// Columns returns the metric names in sorted order.
func (t *Table) Columns() []string {
	names := make([]string, 0, len(t.columns))
	for n := range t.columns {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Derive adds a new column computed row-wise from existing columns. fn
// receives the values of the from columns in order. Use it for derived KPIs
// such as cache-hit ratio = hits / requests.
func (t *Table) Derive(name string, from []string, fn func(vals []float64) float64) error {
	src := make([][]float64, len(from))
	for i, f := range from {
		c, ok := t.columns[f]
		if !ok {
			return fmt.Errorf("kpi: derive %q: no column %q", name, f)
		}
		src[i] = c
	}
	out := make([]float64, t.Len())
	vals := make([]float64, len(from))
	for row := range out {
		for i := range src {
			vals[i] = src[i][row]
		}
		out[row] = fn(vals)
	}
	t.columns[name] = out
	return nil
}

// SnapshotOf pairs an actual column with a forecast column into a Snapshot
// ready for anomaly detection and localization. Labels start false.
func (t *Table) SnapshotOf(actualCol, forecastCol string) (*Snapshot, error) {
	av, ok := t.columns[actualCol]
	if !ok {
		return nil, fmt.Errorf("kpi: no column %q", actualCol)
	}
	fv, ok := t.columns[forecastCol]
	if !ok {
		return nil, fmt.Errorf("kpi: no column %q", forecastCol)
	}
	leaves := make([]Leaf, t.Len())
	for i := range leaves {
		leaves[i] = Leaf{Combo: t.Combos[i], Actual: av[i], Forecast: fv[i]}
	}
	return NewSnapshot(t.Schema, leaves)
}

// AggregateBy sums every fundamental column of the table grouped by the
// cuboid's attributes (Fig. 4 of the paper). The result maps combination
// keys to per-column sums, in the same column order as cols.
func (t *Table) AggregateBy(c Cuboid, cols []string) (map[string][]float64, error) {
	src := make([][]float64, len(cols))
	for i, name := range cols {
		col, ok := t.columns[name]
		if !ok {
			return nil, fmt.Errorf("kpi: no column %q", name)
		}
		src[i] = col
	}
	out := make(map[string][]float64)
	for row, combo := range t.Combos {
		k := combo.Project(c).Key()
		sums, ok := out[k]
		if !ok {
			sums = make([]float64, len(cols))
			out[k] = sums
		}
		for i := range src {
			sums[i] += src[i][row]
		}
	}
	return out, nil
}
