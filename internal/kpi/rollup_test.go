package kpi

import (
	"reflect"
	"testing"
)

// TestRollupBaseSelection pins the greedy base choice: narrow attributes
// are admitted first (ascending cardinality, maximizing covered
// attributes), the Cartesian size never exceeds the limit, and bases that
// would span fewer than two attributes are refused.
func TestRollupBaseSelection(t *testing.T) {
	snap := scanTestSnapshot(t, 0) // cards a=3, b=4, c=2
	attrs := []int{1, 0, 2}        // deliberately non-ascending search order

	cases := []struct {
		limit int
		base  Cuboid // nil means no plan
	}{
		{limit: 24, base: Cuboid{1, 0, 2}}, // full domain fits, attrs order kept
		{limit: 23, base: Cuboid{0, 2}},    // b (card 4) no longer fits after c, a
		{limit: 6, base: Cuboid{0, 2}},     // exactly a*c
		{limit: 5, base: nil},              // only one attribute fits
		{limit: 1, base: nil},
	}
	for _, tc := range cases {
		plan := snap.NewRollupPlan(attrs, tc.limit)
		if tc.base == nil {
			if plan != nil {
				t.Fatalf("limit %d: got base %v, want no plan", tc.limit, plan.Base())
			}
			continue
		}
		if plan == nil {
			t.Fatalf("limit %d: no plan, want base %v", tc.limit, tc.base)
		}
		if !reflect.DeepEqual(plan.Base(), tc.base) {
			t.Fatalf("limit %d: base %v, want %v", tc.limit, plan.Base(), tc.base)
		}
		plan.Close()
	}

	if plan := snap.NewRollupPlan([]int{0}, 0); plan != nil {
		t.Fatalf("single-attribute schedule built a plan with base %v", plan.Base())
	}
}

// TestRollupServes pins the refinement test: a cuboid is served iff every
// attribute it constrains is in the base.
func TestRollupServes(t *testing.T) {
	snap := scanTestSnapshot(t, 0)
	plan := snap.NewRollupPlan([]int{1, 0, 2}, 6) // base {0, 2}
	if plan == nil {
		t.Fatal("no plan")
	}
	defer plan.Close()
	for _, tc := range []struct {
		c    Cuboid
		want bool
	}{
		{Cuboid{0}, true},
		{Cuboid{2}, true},
		{Cuboid{0, 2}, true},
		{Cuboid{1}, false},
		{Cuboid{1, 0}, false},
		{Cuboid{1, 0, 2}, false},
	} {
		if got := plan.Serves(tc.c); got != tc.want {
			t.Fatalf("Serves(%v) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

// TestRollupGroupsMatchScanCuboid pins the roll-up arithmetic to the
// per-cuboid scan: for every served cuboid of every layer, Groups must be
// byte-identical to ScanCuboid, at every worker count.
func TestRollupGroupsMatchScanCuboid(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		snap := scanTestSnapshot(t, seed)
		attrs := []int{0, 1, 2}
		var want, got []GroupCount
		for _, workers := range []int{1, 2, 4, 8} {
			plan := snap.NewRollupPlan(attrs, 0) // heuristic limit: full domain fits
			if plan == nil {
				t.Fatalf("seed %d: no plan under the default limit", seed)
			}
			if !plan.Run(workers, nil) {
				t.Fatalf("seed %d workers %d: base pass aborted without a halt", seed, workers)
			}
			if plan.Passes() != 1 {
				t.Fatalf("seed %d: Passes() = %d, want 1", seed, plan.Passes())
			}
			for layer := 1; layer <= len(attrs); layer++ {
				for _, cuboid := range CuboidsAtLayer(attrs, layer) {
					if !plan.Serves(cuboid) {
						t.Fatalf("seed %d: full-domain base does not serve %v", seed, cuboid)
					}
					want = snap.ScanCuboid(cuboid, want)
					got = plan.Groups(cuboid, got)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d workers %d cuboid %v:\nrollup %v\n  scan %v",
							seed, workers, cuboid, got, want)
					}
				}
			}
			plan.Close()
		}
	}
}

// TestRollupHaltAborts checks a tripped halt abandons the base pass: Run
// reports false and the plan is discarded, never serving partial counts.
func TestRollupHaltAborts(t *testing.T) {
	snap := scanTestSnapshot(t, 0)
	plan := snap.NewRollupPlan([]int{0, 1, 2}, 0)
	if plan == nil {
		t.Fatal("no plan")
	}
	defer plan.Close()
	if plan.Run(1, func() bool { return true }) {
		t.Fatal("Run completed under an always-tripped halt")
	}
	if plan.Passes() != 0 {
		t.Fatalf("Passes() = %d after an aborted base pass, want 0", plan.Passes())
	}
}

// TestRollupEmptySnapshotShortCircuit checks both Groups short-circuits on
// a leafless snapshot: the roll-up and the fused layer scan skip their
// accumulator walks and report no groups.
func TestRollupEmptySnapshotShortCircuit(t *testing.T) {
	s := MustSchema(
		Attribute{Name: "a", Values: []string{"a1", "a2", "a3"}},
		Attribute{Name: "b", Values: []string{"b1", "b2"}},
	)
	snap, err := NewSnapshot(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	attrs := []int{0, 1}

	plan := snap.NewRollupPlan(attrs, 0)
	if plan == nil {
		t.Fatal("no plan for the empty snapshot")
	}
	defer plan.Close()
	if !plan.Run(2, nil) {
		t.Fatal("base pass aborted")
	}
	if got := plan.Groups(Cuboid{0, 1}, nil); len(got) != 0 {
		t.Fatalf("rolled up %d groups from an empty snapshot", len(got))
	}

	cuboids := CuboidsAtLayer(attrs, 1)
	ls := snap.NewLayerScan(cuboids)
	defer ls.Close()
	if !ls.Run(2, nil) {
		t.Fatal("layer scan aborted")
	}
	for ci := range cuboids {
		if got := ls.Groups(ci, nil); len(got) != 0 {
			t.Fatalf("cuboid %d: fused %d groups from an empty snapshot", ci, len(got))
		}
	}
}

// TestRollupDefaultLimit pins the heuristic: proportional to the leaf
// count with a floor, so realistic dense snapshots materialize their full
// surviving-attribute cuboid.
func TestRollupDefaultLimit(t *testing.T) {
	if got := DefaultRollupLimit(0); got != 1<<12 {
		t.Fatalf("DefaultRollupLimit(0) = %d, want the floor %d", got, 1<<12)
	}
	if got := DefaultRollupLimit(10_000); got != 20_000 {
		t.Fatalf("DefaultRollupLimit(10000) = %d, want 20000", got)
	}
}
