package kpi

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTripWithSchema(t *testing.T) {
	snap := buildTestSnapshot(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, snap); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, snap.Schema)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.Len() != snap.Len() {
		t.Fatalf("round trip len = %d, want %d", got.Len(), snap.Len())
	}
	for i := range snap.Leaves {
		a, b := snap.Leaves[i], got.Leaves[i]
		if !a.Combo.Equal(b.Combo) || a.Actual != b.Actual ||
			a.Forecast != b.Forecast || a.Anomalous != b.Anomalous {
			t.Fatalf("leaf %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestCSVRoundTripInferredSchema(t *testing.T) {
	snap := buildTestSnapshot(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, snap); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, nil)
	if err != nil {
		t.Fatalf("ReadCSV(inferred): %v", err)
	}
	if got.Schema.NumAttributes() != 4 {
		t.Fatalf("inferred %d attributes, want 4", got.Schema.NumAttributes())
	}
	if got.Len() != snap.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), snap.Len())
	}
	// Element names survive even though codes may be renumbered.
	for i := range snap.Leaves {
		want := snap.Leaves[i].Combo.Format(snap.Schema)
		if gotTxt := got.Leaves[i].Combo.Format(got.Schema); gotTxt != want {
			t.Fatalf("leaf %d: %s, want %s", i, gotTxt, want)
		}
	}
}

func TestReadCSVWithoutLabelColumn(t *testing.T) {
	in := strings.Join([]string{
		"Location,Website,actual,forecast",
		"L1,Site1,10,5",
		"L1,Site2,23,20.5",
	}, "\n")
	snap, err := ReadCSV(strings.NewReader(in), nil)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if snap.Len() != 2 {
		t.Fatalf("len = %d, want 2", snap.Len())
	}
	if snap.Leaves[0].Anomalous || snap.Leaves[1].Anomalous {
		t.Error("labels should default to false")
	}
	if snap.Leaves[1].Forecast != 20.5 {
		t.Errorf("forecast = %v, want 20.5", snap.Leaves[1].Forecast)
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "a,b,c\n1,2,3"},
		{"short row", "A,actual,forecast\nx,1"},
		{"bad actual", "A,actual,forecast\nx,notanum,2"},
		{"bad forecast", "A,actual,forecast\nx,1,notanum"},
		{"bad label", "A,actual,forecast,anomalous\nx,1,2,maybe"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in), nil); err == nil {
				t.Error("ReadCSV succeeded, want error")
			}
		})
	}
}

func TestReadCSVSchemaMismatch(t *testing.T) {
	s := testSchema(t)
	in := "Location,actual,forecast\nL1,1,2"
	if _, err := ReadCSV(strings.NewReader(in), s); err == nil {
		t.Error("ReadCSV accepted a schema with different arity")
	}
	in2 := "X,Y,Z,W,actual,forecast\nL1,Wireless,Android,Site1,1,2"
	if _, err := ReadCSV(strings.NewReader(in2), s); err == nil {
		t.Error("ReadCSV accepted mismatched attribute names")
	}
	in3 := "Location,AccessType,OS,Website,actual,forecast\nL99,Wireless,Android,Site1,1,2"
	if _, err := ReadCSV(strings.NewReader(in3), s); err == nil {
		t.Error("ReadCSV accepted an unknown element under a fixed schema")
	}
}
