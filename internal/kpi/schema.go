package kpi

import (
	"errors"
	"fmt"
	"strings"
)

// Attribute is one dimension of the KPI space: a name plus the finite set of
// elements (values) the dimension can take. In the paper's CDN scenario the
// attributes are Location, AccessType, OS and Website (Table I).
type Attribute struct {
	Name   string
	Values []string
}

// Schema describes the full attribute space of a dataset. It interns every
// element name to a compact int32 code so that combinations can be compared
// and hashed without string work.
type Schema struct {
	attrs     []Attribute
	attrIndex map[string]int
	codes     []map[string]int32
	numLeaves int
}

// NewSchema validates the attribute list and builds the interning tables.
// Attribute names and the element names within one attribute must be
// non-empty and unique; every attribute needs at least one element.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, errors.New("kpi: schema needs at least one attribute")
	}
	s := &Schema{
		attrs:     make([]Attribute, len(attrs)),
		attrIndex: make(map[string]int, len(attrs)),
		codes:     make([]map[string]int32, len(attrs)),
		numLeaves: 1,
	}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("kpi: attribute %d has an empty name", i)
		}
		if strings.Contains(a.Name, WildcardToken) {
			return nil, fmt.Errorf("kpi: attribute %q: name must not contain %q", a.Name, WildcardToken)
		}
		if _, dup := s.attrIndex[a.Name]; dup {
			return nil, fmt.Errorf("kpi: duplicate attribute name %q", a.Name)
		}
		if len(a.Values) == 0 {
			return nil, fmt.Errorf("kpi: attribute %q has no elements", a.Name)
		}
		codes := make(map[string]int32, len(a.Values))
		for j, v := range a.Values {
			if v == "" || v == WildcardToken {
				return nil, fmt.Errorf("kpi: attribute %q: element %d is invalid (%q)", a.Name, j, v)
			}
			if _, dup := codes[v]; dup {
				return nil, fmt.Errorf("kpi: attribute %q: duplicate element %q", a.Name, v)
			}
			codes[v] = int32(j)
		}
		// Copy the value slice so later mutation by the caller cannot
		// corrupt the schema.
		s.attrs[i] = Attribute{Name: a.Name, Values: append([]string(nil), a.Values...)}
		s.attrIndex[a.Name] = i
		s.codes[i] = codes
		s.numLeaves *= len(a.Values)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for tests and for
// static schemas known to be valid at compile time.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumAttributes returns the number of dimensions n.
func (s *Schema) NumAttributes() int { return len(s.attrs) }

// Attribute returns the i-th attribute declaration.
func (s *Schema) Attribute(i int) Attribute { return s.attrs[i] }

// AttributeNames returns the attribute names in declaration order.
func (s *Schema) AttributeNames() []string {
	names := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		names[i] = a.Name
	}
	return names
}

// AttributeIndex maps an attribute name to its position.
func (s *Schema) AttributeIndex(name string) (int, bool) {
	i, ok := s.attrIndex[name]
	return i, ok
}

// Cardinality returns l(attr_i): the number of elements of attribute i.
func (s *Schema) Cardinality(i int) int { return len(s.attrs[i].Values) }

// NumLeaves returns the size of the most fine-grained cuboid: the product of
// all attribute cardinalities.
func (s *Schema) NumLeaves() int { return s.numLeaves }

// Code interns an element name of attribute attr.
func (s *Schema) Code(attr int, value string) (int32, bool) {
	if attr < 0 || attr >= len(s.codes) {
		return 0, false
	}
	c, ok := s.codes[attr][value]
	return c, ok
}

// Value is the inverse of Code.
func (s *Schema) Value(attr int, code int32) string {
	return s.attrs[attr].Values[code]
}

// ValidCode reports whether code is a valid element code for attribute attr.
func (s *Schema) ValidCode(attr int, code int32) bool {
	return attr >= 0 && attr < len(s.attrs) && code >= 0 && int(code) < len(s.attrs[attr].Values)
}
