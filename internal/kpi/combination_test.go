package kpi

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCombinationLayerAndAttrs(t *testing.T) {
	tests := []struct {
		combo     Combination
		wantLayer int
		wantAttrs []int
	}{
		{Combination{Wildcard, Wildcard, Wildcard}, 0, nil},
		{Combination{0, Wildcard, Wildcard}, 1, []int{0}},
		{Combination{0, Wildcard, 1}, 2, []int{0, 2}},
		{Combination{2, 1, 0}, 3, []int{0, 1, 2}},
	}
	for _, tt := range tests {
		if got := tt.combo.Layer(); got != tt.wantLayer {
			t.Errorf("%v.Layer() = %d, want %d", tt.combo, got, tt.wantLayer)
		}
		if got := tt.combo.Attrs(); !reflect.DeepEqual(got, tt.wantAttrs) {
			t.Errorf("%v.Attrs() = %v, want %v", tt.combo, got, tt.wantAttrs)
		}
	}
}

func TestCombinationMatches(t *testing.T) {
	tests := []struct {
		name  string
		a, b  Combination
		match bool
	}{
		{"root matches anything", Combination{Wildcard, Wildcard}, Combination{0, 1}, true},
		{"exact match", Combination{0, 1}, Combination{0, 1}, true},
		{"partial match", Combination{0, Wildcard}, Combination{0, 5}, true},
		{"mismatch", Combination{0, Wildcard}, Combination{1, 5}, false},
		{"length mismatch", Combination{0}, Combination{0, 1}, false},
		{"finer does not match coarser", Combination{0, 1}, Combination{0, Wildcard}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Matches(tt.b); got != tt.match {
				t.Errorf("Matches = %v, want %v", got, tt.match)
			}
		})
	}
}

func TestIsAncestorOf(t *testing.T) {
	parent := Combination{0, Wildcard, Wildcard}
	child := Combination{0, 1, Wildcard}
	if !parent.IsAncestorOf(child) {
		t.Error("parent is not ancestor of child")
	}
	if child.IsAncestorOf(parent) {
		t.Error("child claims to be ancestor of parent")
	}
	if parent.IsAncestorOf(parent) {
		t.Error("combination is its own ancestor")
	}
	other := Combination{1, 1, Wildcard}
	if parent.IsAncestorOf(other) {
		t.Error("ancestor across differing elements")
	}
}

func TestParentsOfCombination(t *testing.T) {
	c := Combination{0, 1, Wildcard}
	parents := c.Parents()
	if len(parents) != 2 {
		t.Fatalf("len(Parents) = %d, want 2", len(parents))
	}
	want := []Combination{
		{Wildcard, 1, Wildcard},
		{0, Wildcard, Wildcard},
	}
	for i := range want {
		if !parents[i].Equal(want[i]) {
			t.Errorf("Parents[%d] = %v, want %v", i, parents[i], want[i])
		}
	}
	if got := NewRoot(3).Parents(); got != nil {
		t.Errorf("root Parents = %v, want nil", got)
	}
}

func TestProject(t *testing.T) {
	c := Combination{4, 5, 6, 7}
	p := c.Project([]int{1, 3})
	want := Combination{Wildcard, 5, Wildcard, 7}
	if !p.Equal(want) {
		t.Errorf("Project = %v, want %v", p, want)
	}
	// Original untouched.
	if !c.Equal(Combination{4, 5, 6, 7}) {
		t.Errorf("Project mutated the receiver: %v", c)
	}
}

func TestKeyUniqueness(t *testing.T) {
	// Wildcard must not collide with any valid code, and distinct
	// combinations must produce distinct keys.
	combos := []Combination{
		{Wildcard, 0},
		{0, Wildcard},
		{0, 0},
		{1, 0},
		{0, 1},
		{Wildcard, Wildcard},
	}
	seen := make(map[string]Combination)
	for _, c := range combos {
		k := c.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision between %v and %v", prev, c)
		}
		seen[k] = c
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	s := testSchema(t)
	texts := []string{
		"(L1, *, *, Site1)",
		"(*, *, *, *)",
		"(L3, Fixed, IOS, Site2)",
		"(*, Wireless, *, *)",
	}
	for _, txt := range texts {
		c, err := ParseCombination(s, txt)
		if err != nil {
			t.Fatalf("ParseCombination(%q): %v", txt, err)
		}
		if got := c.Format(s); got != txt {
			t.Errorf("Format(Parse(%q)) = %q", txt, got)
		}
	}
}

func TestParseCombinationErrors(t *testing.T) {
	s := testSchema(t)
	for _, txt := range []string{"(L1, *)", "(L9, *, *, Site1)", ""} {
		if _, err := ParseCombination(s, txt); err == nil {
			t.Errorf("ParseCombination(%q) succeeded, want error", txt)
		}
	}
}

func TestMustParseCombinationPanics(t *testing.T) {
	s := testSchema(t)
	defer func() {
		if recover() == nil {
			t.Error("MustParseCombination did not panic")
		}
	}()
	MustParseCombination(s, "(bad)")
}

// randomCombo builds a random combination over nAttr attributes with codes
// in [0, card).
func randomCombo(r *rand.Rand, nAttr, card int) Combination {
	c := make(Combination, nAttr)
	for i := range c {
		if r.Intn(2) == 0 {
			c[i] = Wildcard
		} else {
			c[i] = int32(r.Intn(card))
		}
	}
	return c
}

func TestAncestorPropertyTransitivity(t *testing.T) {
	// If a is an ancestor of b and b of c, then a is an ancestor of c.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		c := randomCombo(r, 5, 4)
		// Derive b by relaxing one constrained position of c, and a by
		// relaxing one of b.
		relax := func(x Combination) Combination {
			attrs := x.Attrs()
			if len(attrs) == 0 {
				return nil
			}
			y := x.Clone()
			y[attrs[r.Intn(len(attrs))]] = Wildcard
			return y
		}
		b := relax(c)
		if b == nil {
			continue
		}
		a := relax(b)
		if a == nil {
			continue
		}
		if !b.IsAncestorOf(c) {
			t.Fatalf("b=%v not ancestor of c=%v", b, c)
		}
		if !a.IsAncestorOf(c) {
			t.Fatalf("transitivity violated: a=%v, b=%v, c=%v", a, b, c)
		}
	}
}

func TestProjectionIsIdempotentQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCombo(r, 6, 5)
		attrs := []int{0, 2, 4}
		p := c.Project(attrs)
		return p.Project(attrs).Equal(p) && p.Layer() <= len(attrs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectionMatchesOriginalQuick(t *testing.T) {
	// A projection of a leaf always matches the leaf.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		leaf := make(Combination, 5)
		for i := range leaf {
			leaf[i] = int32(r.Intn(4))
		}
		var attrs []int
		for i := 0; i < 5; i++ {
			if r.Intn(2) == 0 {
				attrs = append(attrs, i)
			}
		}
		return leaf.Project(attrs).Matches(leaf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
