package kpi

// CuboidIndexer maps leaf combinations to dense group indexes within one
// cuboid using mixed-radix arithmetic over the cuboid's attribute
// cardinalities. It avoids the per-leaf allocations of Project+Key in hot
// group-by loops: Index is a handful of integer operations.
type CuboidIndexer struct {
	schema  *Schema
	cuboid  Cuboid
	strides []int
	size    int
}

// NewCuboidIndexer builds an indexer for the cuboid. Size is the product
// of the cuboid attributes' cardinalities.
func NewCuboidIndexer(schema *Schema, cuboid Cuboid) *CuboidIndexer {
	strides := make([]int, len(cuboid))
	size := 1
	for i := len(cuboid) - 1; i >= 0; i-- {
		strides[i] = size
		size *= schema.Cardinality(cuboid[i])
	}
	return &CuboidIndexer{schema: schema, cuboid: cuboid, strides: strides, size: size}
}

// Size returns the number of distinct group indexes (the cuboid's full
// Cartesian length).
func (ix *CuboidIndexer) Size() int { return ix.size }

// Index returns the dense group index of a leaf combination's projection
// onto the cuboid. The combination must be fully constrained on the
// cuboid's attributes.
func (ix *CuboidIndexer) Index(leaf Combination) int {
	idx := 0
	for i, a := range ix.cuboid {
		idx += int(leaf[a]) * ix.strides[i]
	}
	return idx
}

// Combination reconstructs the projected combination for a group index.
func (ix *CuboidIndexer) Combination(idx int) Combination {
	c := NewRoot(ix.schema.NumAttributes())
	for i, a := range ix.cuboid {
		card := ix.schema.Cardinality(a)
		c[a] = int32(idx / ix.strides[i] % card)
	}
	return c
}
