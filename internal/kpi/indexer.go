package kpi

// CuboidIndexer maps leaf combinations to dense group indexes within one
// cuboid using mixed-radix arithmetic over the cuboid's attribute
// cardinalities. It avoids the per-leaf allocations of Project+Key in hot
// group-by loops: Index is a handful of integer operations.
type CuboidIndexer struct {
	schema  *Schema
	cuboid  Cuboid
	strides []int
	cards   []int
	size    int
}

// NewCuboidIndexer builds an indexer for the cuboid. Size is the product
// of the cuboid attributes' cardinalities.
func NewCuboidIndexer(schema *Schema, cuboid Cuboid) *CuboidIndexer {
	strides := make([]int, len(cuboid))
	cards := make([]int, len(cuboid))
	size := 1
	for i := len(cuboid) - 1; i >= 0; i-- {
		strides[i] = size
		cards[i] = schema.Cardinality(cuboid[i])
		size *= cards[i]
	}
	return &CuboidIndexer{schema: schema, cuboid: cuboid, strides: strides, cards: cards, size: size}
}

// Size returns the number of distinct group indexes (the cuboid's full
// Cartesian length).
func (ix *CuboidIndexer) Size() int { return ix.size }

// Index returns the dense group index of a leaf combination's projection
// onto the cuboid. The combination must be fully constrained on the
// cuboid's attributes.
func (ix *CuboidIndexer) Index(leaf Combination) int {
	idx := 0
	for i, a := range ix.cuboid {
		idx += int(leaf[a]) * ix.strides[i]
	}
	return idx
}

// Combination reconstructs the projected combination for a group index.
func (ix *CuboidIndexer) Combination(idx int) Combination {
	c := NewRoot(ix.schema.NumAttributes())
	ix.DecodeInto(c, idx)
	return c
}

// DecodeInto writes the projected combination of group index idx into dst,
// which must have the schema's attribute count: the cuboid's attributes get
// their decoded codes, every other position becomes Wildcard. It is the
// allocation-free form of Combination for scan loops that reuse a scratch
// combination across groups.
func (ix *CuboidIndexer) DecodeInto(dst Combination, idx int) {
	for i := range dst {
		dst[i] = Wildcard
	}
	// Successive-remainder decode: strides descend left to right and
	// idx < strides[i-1], so idx/strides[i] is already reduced modulo the
	// cardinality — one division per attribute instead of a div and a mod.
	for i, a := range ix.cuboid {
		q := idx / ix.strides[i]
		idx -= q * ix.strides[i]
		dst[a] = int32(q)
	}
}
