package kpi

import "testing"

// TestEncodeColumnsRoundTrip checks the dictionary encoding is lossless:
// every leaf decodes back identical from the columns.
func TestEncodeColumnsRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		snap := scanTestSnapshot(t, seed)
		cols := EncodeColumns(snap)
		if cols.Len() != snap.Len() {
			t.Fatalf("seed %d: %d encoded leaves, want %d", seed, cols.Len(), snap.Len())
		}
		for i := range snap.Leaves {
			want := snap.Leaves[i]
			got := cols.Leaf(i)
			if !got.Combo.Equal(want.Combo) || got.Actual != want.Actual ||
				got.Forecast != want.Forecast || got.Anomalous != want.Anomalous {
				t.Fatalf("seed %d leaf %d: decoded %+v, want %+v", seed, i, got, want)
			}
		}
	}
}

// TestColumnsBitsetMatchesLabels pins the packed bitset and its cached count
// to the leaves' Anomalous labels.
func TestColumnsBitsetMatchesLabels(t *testing.T) {
	snap := scanTestSnapshot(t, 3)
	cols := snap.Columns()
	n := 0
	for i := range snap.Leaves {
		if cols.Anomalous(i) != snap.Leaves[i].Anomalous {
			t.Fatalf("leaf %d: bitset says %v, label says %v",
				i, cols.Anomalous(i), snap.Leaves[i].Anomalous)
		}
		if snap.Leaves[i].Anomalous {
			n++
		}
	}
	if cols.NumAnomalous() != n {
		t.Fatalf("NumAnomalous() = %d, want %d", cols.NumAnomalous(), n)
	}
}

// TestColumnsCached checks Snapshot.Columns returns the same store across
// calls until labels are invalidated.
func TestColumnsCached(t *testing.T) {
	snap := scanTestSnapshot(t, 1)
	if snap.Columns() != snap.Columns() {
		t.Fatal("Columns() rebuilt the store on a second call")
	}
}

// TestColumnsInvalidateLabels is the stale-column regression test: after
// relabeling in place and calling InvalidateLabels, the columnar store must
// serve a fresh anomaly bitset AND a fresh cached count — never one without
// the other — while the label-independent element/value columns are reused.
func TestColumnsInvalidateLabels(t *testing.T) {
	snap := scanTestSnapshot(t, 2)
	before := snap.Columns()
	wasAnomalous := before.NumAnomalous()

	// Relabel in place: flip every label.
	for i := range snap.Leaves {
		snap.Leaves[i].Anomalous = !snap.Leaves[i].Anomalous
	}
	snap.InvalidateLabels()

	after := snap.Columns()
	if after == before {
		t.Fatal("InvalidateLabels did not invalidate the columnar store")
	}
	if want := snap.Len() - wasAnomalous; after.NumAnomalous() != want {
		t.Fatalf("stale anomalous count: got %d, want %d", after.NumAnomalous(), want)
	}
	for i := range snap.Leaves {
		if after.Anomalous(i) != snap.Leaves[i].Anomalous {
			t.Fatalf("leaf %d: stale bitset after relabel", i)
		}
	}
	// The element/value columns depend only on the immutable leaf structure
	// and must be shared across the invalidation, not rebuilt.
	if after.frame != before.frame {
		t.Error("label invalidation rebuilt the label-independent column frame")
	}
}
