package kpi

import (
	"math"
	"testing"
)

func buildTestTable(t *testing.T) *Table {
	t.Helper()
	s := testSchema(t)
	var combos []Combination
	for l := int32(0); l < 3; l++ {
		for a := int32(0); a < 2; a++ {
			for o := int32(0); o < 2; o++ {
				for w := int32(0); w < 2; w++ {
					combos = append(combos, Combination{l, a, o, w})
				}
			}
		}
	}
	tbl, err := NewTable(s, combos)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	requests := make([]float64, len(combos))
	hits := make([]float64, len(combos))
	for i := range combos {
		requests[i] = float64(100 + i)
		hits[i] = float64(80 + i/2)
	}
	if err := tbl.SetColumn("requests", requests); err != nil {
		t.Fatalf("SetColumn: %v", err)
	}
	if err := tbl.SetColumn("hits", hits); err != nil {
		t.Fatalf("SetColumn: %v", err)
	}
	return tbl
}

func TestNewTableRejectsNonLeaves(t *testing.T) {
	s := testSchema(t)
	if _, err := NewTable(s, []Combination{{0, Wildcard, 0, 0}}); err == nil {
		t.Error("NewTable accepted a wildcard row")
	}
	if _, err := NewTable(s, []Combination{{0, 0, 0, 0}, {0, 0, 0, 0}}); err == nil {
		t.Error("NewTable accepted duplicate rows")
	}
}

func TestSetColumnLengthCheck(t *testing.T) {
	tbl := buildTestTable(t)
	if err := tbl.SetColumn("bad", []float64{1}); err == nil {
		t.Error("SetColumn accepted a short column")
	}
}

func TestDeriveRatioColumn(t *testing.T) {
	tbl := buildTestTable(t)
	err := tbl.Derive("hit_ratio", []string{"hits", "requests"}, func(v []float64) float64 {
		if v[1] == 0 {
			return 0
		}
		return v[0] / v[1]
	})
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	ratio, ok := tbl.Column("hit_ratio")
	if !ok {
		t.Fatal("derived column missing")
	}
	hits, _ := tbl.Column("hits")
	reqs, _ := tbl.Column("requests")
	for i := range ratio {
		want := hits[i] / reqs[i]
		if math.Abs(ratio[i]-want) > 1e-12 {
			t.Fatalf("row %d: ratio = %v, want %v", i, ratio[i], want)
		}
	}
}

func TestDeriveUnknownColumn(t *testing.T) {
	tbl := buildTestTable(t)
	err := tbl.Derive("x", []string{"nope"}, func(v []float64) float64 { return 0 })
	if err == nil {
		t.Error("Derive accepted an unknown source column")
	}
}

func TestColumnsSorted(t *testing.T) {
	tbl := buildTestTable(t)
	got := tbl.Columns()
	want := []string{"hits", "requests"}
	if len(got) != len(want) {
		t.Fatalf("Columns = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Columns[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSnapshotOf(t *testing.T) {
	tbl := buildTestTable(t)
	snap, err := tbl.SnapshotOf("hits", "requests")
	if err != nil {
		t.Fatalf("SnapshotOf: %v", err)
	}
	if snap.Len() != tbl.Len() {
		t.Fatalf("snapshot len = %d, want %d", snap.Len(), tbl.Len())
	}
	hits, _ := tbl.Column("hits")
	reqs, _ := tbl.Column("requests")
	for i, l := range snap.Leaves {
		if l.Actual != hits[i] || l.Forecast != reqs[i] {
			t.Fatalf("leaf %d: (%v, %v), want (%v, %v)", i, l.Actual, l.Forecast, hits[i], reqs[i])
		}
		if l.Anomalous {
			t.Fatalf("leaf %d labeled anomalous by default", i)
		}
	}
	if _, err := tbl.SnapshotOf("nope", "requests"); err == nil {
		t.Error("SnapshotOf accepted an unknown column")
	}
}

func TestAggregateByAdditivity(t *testing.T) {
	tbl := buildTestTable(t)
	sums, err := tbl.AggregateBy(Cuboid{0}, []string{"requests", "hits"})
	if err != nil {
		t.Fatalf("AggregateBy: %v", err)
	}
	if len(sums) != 3 {
		t.Fatalf("got %d groups, want 3", len(sums))
	}
	// Total across groups must equal the column totals (additivity of
	// fundamental KPIs, Fig. 4).
	reqs, _ := tbl.Column("requests")
	var total float64
	for _, v := range reqs {
		total += v
	}
	var groupTotal float64
	for _, s := range sums {
		groupTotal += s[0]
	}
	if math.Abs(total-groupTotal) > 1e-9 {
		t.Errorf("aggregation not additive: %v vs %v", groupTotal, total)
	}
	if _, err := tbl.AggregateBy(Cuboid{0}, []string{"nope"}); err == nil {
		t.Error("AggregateBy accepted an unknown column")
	}
}
