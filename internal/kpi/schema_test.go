package kpi

import (
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Attribute{Name: "Location", Values: []string{"L1", "L2", "L3"}},
		Attribute{Name: "AccessType", Values: []string{"Wireless", "Fixed"}},
		Attribute{Name: "OS", Values: []string{"Android", "IOS"}},
		Attribute{Name: "Website", Values: []string{"Site1", "Site2"}},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestNewSchemaValid(t *testing.T) {
	s := testSchema(t)
	if got := s.NumAttributes(); got != 4 {
		t.Errorf("NumAttributes = %d, want 4", got)
	}
	if got := s.NumLeaves(); got != 3*2*2*2 {
		t.Errorf("NumLeaves = %d, want 24", got)
	}
	if got := s.Cardinality(0); got != 3 {
		t.Errorf("Cardinality(0) = %d, want 3", got)
	}
	i, ok := s.AttributeIndex("OS")
	if !ok || i != 2 {
		t.Errorf("AttributeIndex(OS) = %d, %v; want 2, true", i, ok)
	}
	if _, ok := s.AttributeIndex("Nope"); ok {
		t.Error("AttributeIndex(Nope) reported ok")
	}
}

func TestNewSchemaErrors(t *testing.T) {
	tests := []struct {
		name  string
		attrs []Attribute
		want  string
	}{
		{
			name:  "empty",
			attrs: nil,
			want:  "at least one attribute",
		},
		{
			name:  "empty name",
			attrs: []Attribute{{Name: "", Values: []string{"a"}}},
			want:  "empty name",
		},
		{
			name: "duplicate attribute",
			attrs: []Attribute{
				{Name: "A", Values: []string{"a"}},
				{Name: "A", Values: []string{"b"}},
			},
			want: "duplicate attribute",
		},
		{
			name:  "no elements",
			attrs: []Attribute{{Name: "A", Values: nil}},
			want:  "no elements",
		},
		{
			name:  "duplicate element",
			attrs: []Attribute{{Name: "A", Values: []string{"a", "a"}}},
			want:  "duplicate element",
		},
		{
			name:  "wildcard element",
			attrs: []Attribute{{Name: "A", Values: []string{"*"}}},
			want:  "invalid",
		},
		{
			name:  "wildcard in attribute name",
			attrs: []Attribute{{Name: "A*", Values: []string{"a"}}},
			want:  "must not contain",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewSchema(tt.attrs...)
			if err == nil {
				t.Fatal("NewSchema succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestSchemaCodeRoundTrip(t *testing.T) {
	s := testSchema(t)
	for a := 0; a < s.NumAttributes(); a++ {
		for _, v := range s.Attribute(a).Values {
			code, ok := s.Code(a, v)
			if !ok {
				t.Fatalf("Code(%d, %q) not found", a, v)
			}
			if got := s.Value(a, code); got != v {
				t.Errorf("Value(%d, %d) = %q, want %q", a, code, got, v)
			}
			if !s.ValidCode(a, code) {
				t.Errorf("ValidCode(%d, %d) = false", a, code)
			}
		}
	}
	if _, ok := s.Code(0, "missing"); ok {
		t.Error("Code found a missing element")
	}
	if _, ok := s.Code(-1, "L1"); ok {
		t.Error("Code accepted a negative attribute index")
	}
	if s.ValidCode(0, 99) {
		t.Error("ValidCode accepted an out-of-range code")
	}
	if s.ValidCode(0, -1) {
		t.Error("ValidCode accepted the wildcard code")
	}
}

func TestSchemaIsolatedFromCallerMutation(t *testing.T) {
	vals := []string{"x", "y"}
	s, err := NewSchema(Attribute{Name: "A", Values: vals})
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	vals[0] = "mutated"
	if got := s.Value(0, 0); got != "x" {
		t.Errorf("schema shares caller slice: Value(0,0) = %q", got)
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema did not panic on invalid input")
		}
	}()
	MustSchema()
}

func TestAttributeNames(t *testing.T) {
	s := testSchema(t)
	want := []string{"Location", "AccessType", "OS", "Website"}
	got := s.AttributeNames()
	if len(got) != len(want) {
		t.Fatalf("AttributeNames len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("AttributeNames[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
