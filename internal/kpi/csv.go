package kpi

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes the snapshot in the Table III layout: one row per
// leaf with the attribute element names, the actual value, the forecast
// value and the anomaly label.
func WriteCSV(w io.Writer, s *Snapshot) error {
	cw := csv.NewWriter(w)
	header := append(s.Schema.AttributeNames(), "actual", "forecast", "anomalous")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("kpi: write csv header: %w", err)
	}
	row := make([]string, len(header))
	for _, l := range s.Leaves {
		for a, code := range l.Combo {
			row[a] = s.Schema.Value(a, code)
		}
		n := s.Schema.NumAttributes()
		row[n] = strconv.FormatFloat(l.Actual, 'g', -1, 64)
		row[n+1] = strconv.FormatFloat(l.Forecast, 'g', -1, 64)
		row[n+2] = strconv.FormatBool(l.Anomalous)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("kpi: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a snapshot written by WriteCSV. When schema is nil a new
// schema is inferred from the header and the observed elements (in order of
// first appearance); otherwise rows are validated against the given schema,
// whose attribute names must match the header. The trailing "anomalous"
// column is optional; absent labels default to false so a detector can be
// applied afterwards.
func ReadCSV(r io.Reader, schema *Schema) (*Snapshot, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("kpi: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("kpi: read csv: empty input")
	}
	header := records[0]
	nAttr, hasLabel, err := csvLayout(header)
	if err != nil {
		return nil, err
	}
	rows := records[1:]
	if schema == nil {
		schema, err = inferSchema(header[:nAttr], rows, nAttr)
		if err != nil {
			return nil, err
		}
	} else {
		if schema.NumAttributes() != nAttr {
			return nil, fmt.Errorf("kpi: read csv: header has %d attributes, schema has %d",
				nAttr, schema.NumAttributes())
		}
		for i, name := range header[:nAttr] {
			if schema.Attribute(i).Name != name {
				return nil, fmt.Errorf("kpi: read csv: header attribute %q does not match schema attribute %q",
					name, schema.Attribute(i).Name)
			}
		}
	}
	leaves := make([]Leaf, 0, len(rows))
	for i, rec := range rows {
		want := nAttr + 2
		if hasLabel {
			want++
		}
		if len(rec) != want {
			return nil, fmt.Errorf("kpi: read csv: row %d has %d fields, want %d", i+2, len(rec), want)
		}
		combo := make(Combination, nAttr)
		for a := 0; a < nAttr; a++ {
			code, ok := schema.Code(a, rec[a])
			if !ok {
				return nil, fmt.Errorf("kpi: read csv: row %d: attribute %q has no element %q",
					i+2, schema.Attribute(a).Name, rec[a])
			}
			combo[a] = code
		}
		actual, err := strconv.ParseFloat(rec[nAttr], 64)
		if err != nil {
			return nil, fmt.Errorf("kpi: read csv: row %d: bad actual value %q", i+2, rec[nAttr])
		}
		forecast, err := strconv.ParseFloat(rec[nAttr+1], 64)
		if err != nil {
			return nil, fmt.Errorf("kpi: read csv: row %d: bad forecast value %q", i+2, rec[nAttr+1])
		}
		leaf := Leaf{Combo: combo, Actual: actual, Forecast: forecast}
		if hasLabel {
			leaf.Anomalous, err = strconv.ParseBool(rec[nAttr+2])
			if err != nil {
				return nil, fmt.Errorf("kpi: read csv: row %d: bad anomalous value %q", i+2, rec[nAttr+2])
			}
		}
		leaves = append(leaves, leaf)
	}
	return NewSnapshot(schema, leaves)
}

// csvLayout locates the actual/forecast(/anomalous) suffix in the header and
// returns the number of leading attribute columns.
func csvLayout(header []string) (nAttr int, hasLabel bool, err error) {
	for i, h := range header {
		if h != "actual" {
			continue
		}
		if i+1 >= len(header) || header[i+1] != "forecast" {
			break
		}
		switch {
		case i+2 == len(header):
			return i, false, nil
		case i+3 == len(header) && header[i+2] == "anomalous":
			return i, true, nil
		}
	}
	return 0, false, fmt.Errorf("kpi: read csv: header must end with actual,forecast[,anomalous]")
}

func inferSchema(names []string, rows [][]string, nAttr int) (*Schema, error) {
	attrs := make([]Attribute, nAttr)
	seen := make([]map[string]struct{}, nAttr)
	for a := range attrs {
		attrs[a].Name = names[a]
		seen[a] = make(map[string]struct{})
	}
	for _, rec := range rows {
		if len(rec) < nAttr {
			continue // length validated later against the schema
		}
		for a := 0; a < nAttr; a++ {
			if _, ok := seen[a][rec[a]]; ok {
				continue
			}
			seen[a][rec[a]] = struct{}{}
			attrs[a].Values = append(attrs[a].Values, rec[a])
		}
	}
	return NewSchema(attrs...)
}
