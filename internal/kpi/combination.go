package kpi

import (
	"fmt"
	"strings"
)

// Wildcard marks a position of a Combination as "*": the combination does
// not constrain that attribute.
const Wildcard int32 = -1

// WildcardToken is the textual form of Wildcard.
const WildcardToken = "*"

// Combination is an attribute combination: one code per attribute, with
// Wildcard in the unconstrained positions. A combination with no wildcards
// is a leaf (the most fine-grained granularity); the combination of all
// wildcards is the root covering the whole dataset.
type Combination []int32

// NewRoot returns the all-wildcard combination for a schema with n
// attributes.
func NewRoot(n int) Combination {
	c := make(Combination, n)
	for i := range c {
		c[i] = Wildcard
	}
	return c
}

// Clone returns a deep copy of c.
func (c Combination) Clone() Combination {
	return append(Combination(nil), c...)
}

// Layer returns the number of constrained attributes, i.e. the layer of the
// cuboid lattice the combination lives in (Fig. 2 of the paper). The root is
// layer 0; leaves of an n-attribute schema are layer n.
func (c Combination) Layer() int {
	n := 0
	for _, v := range c {
		if v != Wildcard {
			n++
		}
	}
	return n
}

// Attrs returns the sorted indexes of the constrained attributes, i.e. the
// cuboid the combination belongs to.
func (c Combination) Attrs() []int {
	var attrs []int
	for i, v := range c {
		if v != Wildcard {
			attrs = append(attrs, i)
		}
	}
	return attrs
}

// IsLeaf reports whether every attribute is constrained.
func (c Combination) IsLeaf() bool {
	for _, v := range c {
		if v == Wildcard {
			return false
		}
	}
	return true
}

// Equal reports whether c and other constrain exactly the same elements.
func (c Combination) Equal(other Combination) bool {
	if len(c) != len(other) {
		return false
	}
	for i := range c {
		if c[i] != other[i] {
			return false
		}
	}
	return true
}

// Matches reports whether other falls inside the scope described by c:
// every constrained position of c holds the same element in other. A leaf
// matched by c is one of c's most fine-grained descendants (or c itself).
func (c Combination) Matches(other Combination) bool {
	if len(c) != len(other) {
		return false
	}
	for i, v := range c {
		if v != Wildcard && v != other[i] {
			return false
		}
	}
	return true
}

// IsAncestorOf reports whether c is a strict ancestor of other in the
// parent-child DAG (Fig. 7): c matches other and constrains strictly fewer
// attributes.
func (c Combination) IsAncestorOf(other Combination) bool {
	return c.Layer() < other.Layer() && c.Matches(other)
}

// Project keeps only the attributes listed in attrs, replacing every other
// position with Wildcard. It is the group-by projection used when scanning a
// cuboid.
func (c Combination) Project(attrs []int) Combination {
	p := NewRoot(len(c))
	for _, a := range attrs {
		p[a] = c[a]
	}
	return p
}

// Parents returns the immediate parents of c: each constrained attribute
// relaxed to Wildcard in turn. The root has no parents.
func (c Combination) Parents() []Combination {
	var parents []Combination
	for i, v := range c {
		if v == Wildcard {
			continue
		}
		p := c.Clone()
		p[i] = Wildcard
		parents = append(parents, p)
	}
	return parents
}

// Key returns a compact byte-string form of c usable as a map key.
func (c Combination) Key() string {
	// 4 bytes per attribute, little endian; Wildcard (-1) encodes to
	// 0xffffffff which cannot collide with any valid code.
	b := make([]byte, 0, len(c)*4)
	for _, v := range c {
		u := uint32(v)
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return string(b)
}

// Format renders c in the paper's notation, e.g. "(L1, *, *, Site1)".
func (c Combination) Format(s *Schema) string {
	parts := make([]string, len(c))
	for i, v := range c {
		if v == Wildcard {
			parts[i] = WildcardToken
		} else {
			parts[i] = s.Value(i, v)
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// ParseCombination parses the paper notation produced by Format. Both
// "(a, *, c)" and "a,*,c" are accepted.
func ParseCombination(s *Schema, text string) (Combination, error) {
	t := strings.TrimSpace(text)
	t = strings.TrimPrefix(t, "(")
	t = strings.TrimSuffix(t, ")")
	parts := strings.Split(t, ",")
	if len(parts) != s.NumAttributes() {
		return nil, fmt.Errorf("kpi: combination %q has %d fields, schema has %d attributes",
			text, len(parts), s.NumAttributes())
	}
	c := make(Combination, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == WildcardToken {
			c[i] = Wildcard
			continue
		}
		code, ok := s.Code(i, p)
		if !ok {
			return nil, fmt.Errorf("kpi: attribute %q has no element %q",
				s.Attribute(i).Name, p)
		}
		c[i] = code
	}
	return c, nil
}

// MustParseCombination is ParseCombination that panics on error; intended
// for tests and literals.
func MustParseCombination(s *Schema, text string) Combination {
	c, err := ParseCombination(s, text)
	if err != nil {
		panic(err)
	}
	return c
}
