package kpi

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchSnapshot builds a CDN-sized dense snapshot (33*4*4*20 leaves).
func benchSnapshot(b *testing.B) *Snapshot {
	b.Helper()
	attrs := []Attribute{
		{Name: "Location", Values: elems("L", 33)},
		{Name: "AccessType", Values: elems("A", 4)},
		{Name: "OS", Values: elems("O", 4)},
		{Name: "Website", Values: elems("S", 20)},
	}
	s := MustSchema(attrs...)
	r := rand.New(rand.NewSource(1))
	leaves := make([]Leaf, 0, s.NumLeaves())
	for l := int32(0); l < 33; l++ {
		for a := int32(0); a < 4; a++ {
			for o := int32(0); o < 4; o++ {
				for w := int32(0); w < 20; w++ {
					leaves = append(leaves, Leaf{
						Combo:     Combination{l, a, o, w},
						Actual:    100 * r.Float64(),
						Forecast:  100,
						Anomalous: r.Intn(20) == 0,
					})
				}
			}
		}
	}
	snap, err := NewSnapshot(s, leaves)
	if err != nil {
		b.Fatal(err)
	}
	return snap
}

func elems(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = prefix + string(rune('0'+i/10)) + string(rune('0'+i%10))
	}
	return out
}

func BenchmarkGroupByLayer1(b *testing.B) {
	snap := benchSnapshot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := snap.GroupBy(Cuboid{0}); len(got) != 33 {
			b.Fatalf("groups = %d", len(got))
		}
	}
}

func BenchmarkGroupByLayer2(b *testing.B) {
	snap := benchSnapshot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := snap.GroupBy(Cuboid{0, 3}); len(got) != 660 {
			b.Fatalf("groups = %d", len(got))
		}
	}
}

func BenchmarkGroupByLeafCuboid(b *testing.B) {
	snap := benchSnapshot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := snap.GroupBy(Cuboid{0, 1, 2, 3}); len(got) != snap.Len() {
			b.Fatalf("groups = %d", len(got))
		}
	}
}

func BenchmarkSupportCount(b *testing.B) {
	snap := benchSnapshot(b)
	combo := Combination{3, Wildcard, Wildcard, 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if total, _ := snap.SupportCount(combo); total == 0 {
			b.Fatal("no support")
		}
	}
}

func BenchmarkCuboidIndexer(b *testing.B) {
	snap := benchSnapshot(b)
	ix := NewCuboidIndexer(snap.Schema, Cuboid{0, 2, 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0
		for j := range snap.Leaves {
			sum += ix.Index(snap.Leaves[j].Combo)
		}
		if sum == 0 {
			b.Fatal("degenerate sum")
		}
	}
}

// BenchmarkFusedVsPerCuboid compares one BFS layer's group counting under
// the per-cuboid engine (one ScanCuboid pass per cuboid) against the fused
// columnar pass (one LayerScan pass for the whole layer), across layers 1-3
// of the CDN-sized snapshot and worker counts 1/2/4/8. The percuboid mode
// only varies with the layer — the per-cuboid scans of the old engine ran
// one at a time on the merge goroutine — so it is benchmarked once per
// layer as the workers=1 baseline.
func BenchmarkFusedVsPerCuboid(b *testing.B) {
	snap := benchSnapshot(b)
	attrs := []int{0, 1, 2, 3}
	_ = snap.Columns() // build the columnar store outside the timer
	for layer := 1; layer <= 3; layer++ {
		cuboids := CuboidsAtLayer(attrs, layer)
		b.Run(fmt.Sprintf("layer=%d/mode=percuboid", layer), func(b *testing.B) {
			var buf []GroupCount
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total := 0
				for _, c := range cuboids {
					buf = snap.ScanCuboid(c, buf)
					total += len(buf)
				}
				if total == 0 {
					b.Fatal("no groups")
				}
			}
		})
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("layer=%d/mode=fused/workers=%d", layer, workers), func(b *testing.B) {
				var buf []GroupCount
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ls := snap.NewLayerScan(cuboids)
					if !ls.Run(workers, nil) {
						b.Fatal("Run aborted")
					}
					total := 0
					for ci := range cuboids {
						buf = ls.Groups(ci, buf)
						total += len(buf)
					}
					ls.Close()
					if total == 0 {
						b.Fatal("no groups")
					}
				}
			})
		}
	}
}

// BenchmarkRollupVsFused compares serving one BFS layer by roll-up
// (memoized marginalization over the base accumulators) against rescanning
// the leaves with the fused columnar pass, across layers 1-3 of the
// CDN-sized snapshot and worker counts 1/2/4/8. Each rollup iteration pays
// the FULL cost from a cold plan — base leaf pass plus marginalization plus
// emit — so its per-layer numbers are upper bounds: in a real run the base
// pass and the cached marginals amortize across every layer of the
// schedule (the end-to-end effect is what BenchmarkSearchParallel shows).
// The base sub-benchmarks price that one-time leaf pass alone.
func BenchmarkRollupVsFused(b *testing.B) {
	snap := benchSnapshot(b)
	attrs := []int{0, 1, 2, 3}
	_ = snap.Columns() // build the columnar store outside the timer
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("base/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan := snap.NewRollupPlan(attrs, 0)
				if plan == nil || !plan.Run(workers, nil) {
					b.Fatal("base pass failed")
				}
				plan.Close()
			}
		})
	}
	for layer := 1; layer <= 3; layer++ {
		cuboids := CuboidsAtLayer(attrs, layer)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("layer=%d/mode=fused/workers=%d", layer, workers), func(b *testing.B) {
				var buf []GroupCount
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ls := snap.NewLayerScan(cuboids)
					if !ls.Run(workers, nil) {
						b.Fatal("Run aborted")
					}
					total := 0
					for ci := range cuboids {
						buf = ls.Groups(ci, buf)
						total += len(buf)
					}
					ls.Close()
					if total == 0 {
						b.Fatal("no groups")
					}
				}
			})
			b.Run(fmt.Sprintf("layer=%d/mode=rollup/workers=%d", layer, workers), func(b *testing.B) {
				var buf []GroupCount
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					plan := snap.NewRollupPlan(attrs, 0)
					if plan == nil || !plan.Run(workers, nil) {
						b.Fatal("base pass failed")
					}
					total := 0
					for _, c := range cuboids {
						buf = plan.Groups(c, buf)
						total += len(buf)
					}
					plan.Close()
					if total == 0 {
						b.Fatal("no groups")
					}
				}
			})
		}
	}
	// The schedule pair is the tentpole claim measured directly: all of
	// layers 1-3 under the BFS layer barrier, one fused leaf pass PER LAYER
	// versus ONE base pass total plus memoized marginalization.
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("schedule/mode=fused/workers=%d", workers), func(b *testing.B) {
			var buf []GroupCount
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total := 0
				for layer := 1; layer <= 3; layer++ {
					cuboids := CuboidsAtLayer(attrs, layer)
					ls := snap.NewLayerScan(cuboids)
					if !ls.Run(workers, nil) {
						b.Fatal("Run aborted")
					}
					for ci := range cuboids {
						buf = ls.Groups(ci, buf)
						total += len(buf)
					}
					ls.Close()
				}
				if total == 0 {
					b.Fatal("no groups")
				}
			}
		})
		b.Run(fmt.Sprintf("schedule/mode=rollup/workers=%d", workers), func(b *testing.B) {
			var buf []GroupCount
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan := snap.NewRollupPlan(attrs, 0)
				if plan == nil || !plan.Run(workers, nil) {
					b.Fatal("base pass failed")
				}
				total := 0
				for layer := 1; layer <= 3; layer++ {
					for _, c := range CuboidsAtLayer(attrs, layer) {
						buf = plan.Groups(c, buf)
						total += len(buf)
					}
				}
				plan.Close()
				if total == 0 {
					b.Fatal("no groups")
				}
			}
		})
	}
}
