// Package kpi provides the multi-dimensional KPI data model shared by every
// localization method in this repository.
//
// The model follows Section III of the RAPMiner paper (DSN 2022): a Schema
// declares n categorical attributes, each with a finite element domain; an
// attribute Combination is an n-tuple in which every position either names a
// concrete element or is the Wildcard "*"; the most fine-grained
// combinations (no wildcards) are leaves and carry an actual KPI value v and
// a forecast value f. Cuboids group combinations that share the same set of
// concrete attributes; the 2^n-1 cuboids form a lattice of n layers with a
// parent-child relationship between layers.
//
// Fundamental KPIs are additive, so the KPI of a coarse combination is the
// sum over its leaf descendants (Fig. 4 of the paper); derived KPIs are
// computed from fundamental ones after aggregation via Table.Derive.
package kpi
