package kpi

import (
	"fmt"
	"sort"
	"sync"
)

// Leaf is one most fine-grained attribute combination at a single timestamp,
// carrying the actual value v, the forecast value f and the anomaly label
// produced by a leaf-level detector (Table III of the paper plus the label
// column consumed by RAPMiner).
type Leaf struct {
	Combo     Combination
	Actual    float64
	Forecast  float64
	Anomalous bool
}

// Dev returns the relative deviation (f - v) / f used by the paper's
// failure-injection procedure (Eq. 4). eps guards the division so the
// denominator's magnitude never falls below eps: the guard is applied on
// the side of the forecast's own sign, so a negative forecast (derived
// KPIs can dip below zero) keeps its sign and cannot push the denominator
// across zero — which would flip the deviation's sign or blow it up.
func (l Leaf) Dev(eps float64) float64 {
	den := l.Forecast + eps
	if l.Forecast < 0 {
		den = l.Forecast - eps
	}
	return (l.Forecast - l.Actual) / den
}

// Snapshot is the basic dataset D: the leaves of Cub_{A,B,...} observed at
// one timestamp. A snapshot may be sparse — leaves with no traffic are
// simply absent — matching the paper's support_count semantics, which are
// defined over the observed dataset D rather than the full Cartesian
// product.
//
// A snapshot lazily caches structures derived from its leaves (cuboid
// indexers, the anomalous leaf set and its per-attribute inverted lists);
// the caches are safe for concurrent readers. Code that rewrites the
// Anomalous labels in place after the snapshot has been used must call
// InvalidateLabels or PatchLabels (the anomaly package's labelers do), and
// mutation in general — relabeling, ApplyDelta — must not race with
// readers: the caller serializes ticks against searches, as the pipeline's
// continuous runner does.
type Snapshot struct {
	Schema *Schema
	Leaves []Leaf

	// mu guards the lazily built caches below.
	mu       sync.Mutex
	indexers map[string]*CuboidIndexer
	labeled  *labelDerived
	// frame is the label-independent half of the columnar store (element
	// IDs, v/f columns); built once, shared across label invalidations and
	// patched in place by ApplyDelta.
	frame *colFrame
	// leafPos maps Combination.Key() to the leaf's index; built lazily and
	// maintained incrementally by ApplyDelta.
	leafPos map[string]int32
	// gen stamps the snapshot's mutation generation: every label or
	// structure mutation (InvalidateLabels, PatchLabels, ApplyDelta,
	// InvalidateStructure) bumps it. Lazy builders that assemble a cache
	// outside the lock re-check the stamp before storing, so a build that
	// raced a mutation is discarded instead of resurrecting stale state —
	// the same contract InvalidateLabels' pointer swap used to enforce.
	gen uint64
}

// labelDerived bundles every cache computed from the Anomalous labels, so
// one pointer swap invalidates them together. Its fields are built lazily
// under the snapshot's mutex and patched in place by PatchLabels.
type labelDerived struct {
	// anomIdx lists the indexes (into Leaves) of anomalous leaves,
	// ascending.
	anomIdx []int
	// postings, built on demand, holds per (attribute, code) the indexes
	// of the anomalous leaves carrying that code: postings[a][code],
	// sorted ascending.
	postings [][][]int32
	// cols is the columnar leaf store (element-ID columns plus the packed
	// anomaly bitset and its cached count); it shares the snapshot's frame
	// and is rebuilt — bitset and count together — after InvalidateLabels.
	cols *Columns
}

// NewSnapshot validates that every leaf is fully constrained, carries valid
// codes, and appears at most once.
func NewSnapshot(schema *Schema, leaves []Leaf) (*Snapshot, error) {
	seen := make(map[string]struct{}, len(leaves))
	for i, l := range leaves {
		if len(l.Combo) != schema.NumAttributes() {
			return nil, fmt.Errorf("kpi: leaf %d has %d attributes, schema has %d",
				i, len(l.Combo), schema.NumAttributes())
		}
		for a, code := range l.Combo {
			if code == Wildcard {
				return nil, fmt.Errorf("kpi: leaf %d is not fully constrained (attribute %s)",
					i, schema.Attribute(a).Name)
			}
			if !schema.ValidCode(a, code) {
				return nil, fmt.Errorf("kpi: leaf %d has invalid code %d for attribute %s",
					i, code, schema.Attribute(a).Name)
			}
		}
		k := l.Combo.Key()
		if _, dup := seen[k]; dup {
			return nil, fmt.Errorf("kpi: duplicate leaf %s", l.Combo.Format(schema))
		}
		seen[k] = struct{}{}
	}
	return &Snapshot{Schema: schema, Leaves: leaves}, nil
}

// Len returns the number of observed leaves |D|.
func (s *Snapshot) Len() int { return len(s.Leaves) }

// NumAnomalous returns the number of leaves labeled anomalous.
func (s *Snapshot) NumAnomalous() int {
	n := 0
	for _, l := range s.Leaves {
		if l.Anomalous {
			n++
		}
	}
	return n
}

// Indexer returns the snapshot's cached CuboidIndexer for the cuboid,
// building it on first use. Indexers depend only on the schema, which is
// immutable, so the cache never goes stale. Safe for concurrent use.
func (s *Snapshot) Indexer(c Cuboid) *CuboidIndexer {
	// Attribute indexes are encoded big-endian as two bytes each, which is
	// collision-free for schemas up to 1<<16 attributes (far beyond any
	// realistic KPI schema; a single byte would silently collide attribute
	// a with attribute a+256 and hand back the wrong cuboid's indexer).
	var kb [32]byte
	key := kb[:0]
	for _, a := range c {
		key = append(key, byte(a>>8), byte(a))
	}
	s.mu.Lock()
	ix, ok := s.indexers[string(key)]
	if !ok {
		ix = NewCuboidIndexer(s.Schema, c)
		if s.indexers == nil {
			s.indexers = make(map[string]*CuboidIndexer, 8)
		}
		s.indexers[string(key)] = ix
	}
	s.mu.Unlock()
	return ix
}

// InvalidateLabels drops every cache derived from the Anomalous labels —
// the anomalous leaf set, the inverted postings, and the columnar store's
// anomaly bitset together with its cached count. Callers that rewrite
// labels in place (detectors relabeling a snapshot) must invalidate before
// the snapshot is searched again. Label-independent caches — the columnar
// frame, the cuboid indexers and the leaf-position index — deliberately
// survive: a relabel cycle must not force the next tick to re-encode the
// world (PatchLabels is the cheaper alternative when the changed leaf set
// is known).
func (s *Snapshot) InvalidateLabels() {
	s.mu.Lock()
	s.gen++
	s.labeled = nil
	s.mu.Unlock()
}

// InvalidateStructure drops every cache derived from the leaf set itself —
// the columnar frame, the leaf-position index and (with them necessarily)
// the label-derived bundle. Callers that mutate Leaves directly, outside
// ApplyDelta, must invalidate before the snapshot is used again. The
// cuboid indexers survive: they depend only on the schema.
func (s *Snapshot) InvalidateStructure() {
	s.mu.Lock()
	s.gen++
	s.labeled = nil
	s.frame = nil
	s.leafPos = nil
	s.mu.Unlock()
}

// FullRebuild is InvalidateStructure under the name the delta-ingestion
// contract uses: the fallback when an incremental path cannot patch (the
// schema or attribute cardinalities changed, or the caller lost track of
// what moved). Every cache rebuilds from the Leaves on next use.
func (s *Snapshot) FullRebuild() { s.InvalidateStructure() }

// Generation returns the snapshot's mutation generation: it advances on
// every InvalidateLabels/PatchLabels/ApplyDelta/InvalidateStructure call.
// Observability and tests use it to assert that caches were patched rather
// than rebuilt across a mutation.
func (s *Snapshot) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// labelCache returns the lazily built label-derived bundle.
func (s *Snapshot) labelCache() *labelDerived {
	s.mu.Lock()
	ld := s.labelCacheLocked()
	s.mu.Unlock()
	return ld
}

// labelCacheLocked is labelCache with s.mu already held.
func (s *Snapshot) labelCacheLocked() *labelDerived {
	ld := s.labeled
	if ld == nil {
		ld = &labelDerived{}
		for i := range s.Leaves {
			if s.Leaves[i].Anomalous {
				ld.anomIdx = append(ld.anomIdx, i)
			}
		}
		s.labeled = ld
	}
	return ld
}

// colFrameCached returns the snapshot's label-independent columns, building
// them on first use. The frame depends only on the leaves' combinations and
// values, so it survives InvalidateLabels; ApplyDelta patches it in place.
func (s *Snapshot) colFrameCached() *colFrame {
	s.mu.Lock()
	f := s.frame
	gen := s.gen
	s.mu.Unlock()
	if f != nil {
		return f
	}
	// Build outside the lock: the encode is O(leaves) and concurrent
	// builders produce identical frames, so the first store wins — unless
	// the generation moved underneath the build, in which case the built
	// frame describes a dead state and is discarded.
	f = buildColFrame(s.Schema, s.Leaves)
	s.mu.Lock()
	switch {
	case s.frame != nil:
		f = s.frame
	case s.gen == gen:
		s.frame = f
	default:
		// A mutation landed mid-build; leave frame nil so the next caller
		// rebuilds from the mutated leaves. (Mutators are documented to
		// serialize against readers, so this is belt-and-braces, not a
		// supported interleaving.)
		f = nil
	}
	s.mu.Unlock()
	if f == nil {
		return s.colFrameCached()
	}
	return f
}

// Columns returns the snapshot's columnar leaf store, building it on first
// use. The store is cached with the other label-derived structures,
// invalidated as a unit by InvalidateLabels and patched in place by
// PatchLabels, so the anomaly bitset and its cached count can never go
// stale independently of each other. Safe for concurrent use; treat the
// result as read-only.
func (s *Snapshot) Columns() *Columns {
	frame := s.colFrameCached()
	s.mu.Lock()
	defer s.mu.Unlock()
	ld := s.labelCacheLocked()
	if ld.cols == nil {
		ld.cols = newColumns(s.Schema, frame, len(s.Leaves), ld.anomIdx)
	}
	return ld.cols
}

// AnomalousLeafSet returns the index positions (into Leaves) of the
// anomalous leaves; used by the early-stop coverage check. The returned
// slice is cached on the snapshot — treat it as read-only.
func (s *Snapshot) AnomalousLeafSet() []int {
	return s.labelCache().anomIdx
}

// AnomalousPostings returns, per attribute and per code, the indexes of the
// anomalous leaves carrying that code: postings[attr][code] is sorted
// ascending. The inverted lists let coverage checks walk only a
// combination's member leaves instead of testing every anomalous leaf.
// Cached on the snapshot — treat the result as read-only.
func (s *Snapshot) AnomalousPostings() [][][]int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ld := s.labelCacheLocked()
	if ld.postings != nil {
		return ld.postings
	}
	n := s.Schema.NumAttributes()
	postings := make([][][]int32, n)
	for a := 0; a < n; a++ {
		postings[a] = make([][]int32, s.Schema.Cardinality(a))
	}
	for _, i := range ld.anomIdx {
		combo := s.Leaves[i].Combo
		for a := 0; a < n; a++ {
			postings[a][combo[a]] = append(postings[a][combo[a]], int32(i))
		}
	}
	ld.postings = postings
	return ld.postings
}

// SupportCount returns support_count_D(ac) and support_count_D(ac, Anomaly):
// the number of leaf descendants of ac in D, and how many of them are
// anomalous (Criteria 2 of the paper).
func (s *Snapshot) SupportCount(ac Combination) (total, anomalous int) {
	for _, l := range s.Leaves {
		if !ac.Matches(l.Combo) {
			continue
		}
		total++
		if l.Anomalous {
			anomalous++
		}
	}
	return total, anomalous
}

// Confidence returns Confidence(ac => Anomaly): the anomalous fraction of
// ac's leaf descendants, or 0 when ac has no descendants in D.
func (s *Snapshot) Confidence(ac Combination) float64 {
	total, anomalous := s.SupportCount(ac)
	if total == 0 {
		return 0
	}
	return float64(anomalous) / float64(total)
}

// Sum aggregates the fundamental KPI of ac from its leaf descendants
// (Fig. 4): the summed actual and forecast values.
func (s *Snapshot) Sum(ac Combination) (actual, forecast float64) {
	for _, l := range s.Leaves {
		if ac.Matches(l.Combo) {
			actual += l.Actual
			forecast += l.Forecast
		}
	}
	return actual, forecast
}

// GroupStats holds the aggregate of one group of a cuboid group-by.
type GroupStats struct {
	Combo     Combination
	Total     int
	Anomalous int
	Actual    float64
	Forecast  float64
}

// Confidence returns the anomaly confidence of the group.
func (g GroupStats) Confidence() float64 {
	if g.Total == 0 {
		return 0
	}
	return float64(g.Anomalous) / float64(g.Total)
}

// statsScratch pools the dense accumulator arrays of GroupByAppend so
// steady-state group-bys allocate nothing but their output.
type statsScratch struct {
	total     []int32
	anomalous []int32
	actual    []float64
	forecast  []float64
}

var statsScratchPool = sync.Pool{New: func() any { return new(statsScratch) }}

// grow sizes and zeroes the accumulators for a domain of size n.
func (sc *statsScratch) grow(n int) {
	if cap(sc.total) < n {
		sc.total = make([]int32, n)
		sc.anomalous = make([]int32, n)
		sc.actual = make([]float64, n)
		sc.forecast = make([]float64, n)
		return
	}
	sc.total = sc.total[:n]
	sc.anomalous = sc.anomalous[:n]
	sc.actual = sc.actual[:n]
	sc.forecast = sc.forecast[:n]
	clear(sc.total)
	clear(sc.anomalous)
	clear(sc.actual)
	clear(sc.forecast)
}

// GroupBy projects every leaf onto the cuboid's attributes and accumulates
// per-combination statistics in a single pass over D. Only combinations that
// actually occur in D are returned; the order is deterministic (ascending
// mixed-radix group index, which equals lexicographic code order).
//
// Dense cuboids are accumulated in flat arrays indexed by CuboidIndexer;
// when the cuboid's Cartesian size dwarfs the observed leaf count (very
// sparse data over a huge domain) a map-based path avoids allocating the
// full domain.
func (s *Snapshot) GroupBy(c Cuboid) []GroupStats {
	return s.GroupByAppend(c, nil)
}

// GroupByAppend is GroupBy appending into dst (reusing its capacity after
// truncation to zero length), so callers scanning many cuboids can recycle
// one result buffer. The accumulator arrays come from a sync.Pool, leaving
// the per-group Combinations as the only steady-state allocations.
func (s *Snapshot) GroupByAppend(c Cuboid, dst []GroupStats) []GroupStats {
	dst = dst[:0]
	ix := s.Indexer(c)
	if size := ix.Size(); size < 0 || size > denseGroupByLimit(len(s.Leaves)) {
		return s.groupBySparse(c, ix, dst)
	}
	sc := statsScratchPool.Get().(*statsScratch)
	sc.grow(ix.Size())
	for i := range s.Leaves {
		l := &s.Leaves[i]
		g := ix.Index(l.Combo)
		sc.total[g]++
		if l.Anomalous {
			sc.anomalous[g]++
		}
		sc.actual[g] += l.Actual
		sc.forecast[g] += l.Forecast
	}
	for g, n := range sc.total {
		if n == 0 {
			continue
		}
		dst = append(dst, GroupStats{
			Combo:     ix.Combination(g),
			Total:     int(n),
			Anomalous: int(sc.anomalous[g]),
			Actual:    sc.actual[g],
			Forecast:  sc.forecast[g],
		})
	}
	statsScratchPool.Put(sc)
	return dst
}

// denseGroupByLimit bounds the flat-array domain size relative to the
// observed leaf count: past it the dense path wastes more memory zeroing
// empty groups than the map path costs in hashing.
func denseGroupByLimit(leaves int) int {
	const floor = 1 << 16
	if limit := 64 * leaves; limit > floor {
		return limit
	}
	return floor
}

// groupBySparse is the map-based group-by used for huge sparse domains.
func (s *Snapshot) groupBySparse(c Cuboid, ix *CuboidIndexer, dst []GroupStats) []GroupStats {
	pos := make(map[int]int32, 64)
	var order []int
	for i := range s.Leaves {
		l := &s.Leaves[i]
		g := ix.Index(l.Combo)
		p, ok := pos[g]
		if !ok {
			p = int32(len(dst))
			pos[g] = p
			dst = append(dst, GroupStats{Combo: l.Combo.Project(c)})
			order = append(order, g)
		}
		st := &dst[p]
		st.Total++
		if l.Anomalous {
			st.Anomalous++
		}
		st.Actual += l.Actual
		st.Forecast += l.Forecast
	}
	sort.Sort(&sparseStatsSort{groups: order, stats: dst})
	return dst
}

// sparseStatsSort orders sparse group-by output by ascending group index,
// swapping the stats in lockstep with their keys.
type sparseStatsSort struct {
	groups []int
	stats  []GroupStats
}

func (s *sparseStatsSort) Len() int           { return len(s.groups) }
func (s *sparseStatsSort) Less(i, j int) bool { return s.groups[i] < s.groups[j] }
func (s *sparseStatsSort) Swap(i, j int) {
	s.groups[i], s.groups[j] = s.groups[j], s.groups[i]
	s.stats[i], s.stats[j] = s.stats[j], s.stats[i]
}

// Clone returns a deep copy of the snapshot (leaves and combinations).
// Lazily built caches are not carried over; they rebuild on demand.
func (s *Snapshot) Clone() *Snapshot {
	leaves := make([]Leaf, len(s.Leaves))
	for i, l := range s.Leaves {
		leaves[i] = Leaf{
			Combo:     l.Combo.Clone(),
			Actual:    l.Actual,
			Forecast:  l.Forecast,
			Anomalous: l.Anomalous,
		}
	}
	return &Snapshot{Schema: s.Schema, Leaves: leaves}
}
