package kpi

import (
	"fmt"
	"sort"
)

// Leaf is one most fine-grained attribute combination at a single timestamp,
// carrying the actual value v, the forecast value f and the anomaly label
// produced by a leaf-level detector (Table III of the paper plus the label
// column consumed by RAPMiner).
type Leaf struct {
	Combo     Combination
	Actual    float64
	Forecast  float64
	Anomalous bool
}

// Dev returns the relative deviation (f - v) / f used by the paper's
// failure-injection procedure (Eq. 4). eps guards the division for zero
// forecasts.
func (l Leaf) Dev(eps float64) float64 {
	return (l.Forecast - l.Actual) / (l.Forecast + eps)
}

// Snapshot is the basic dataset D: the leaves of Cub_{A,B,...} observed at
// one timestamp. A snapshot may be sparse — leaves with no traffic are
// simply absent — matching the paper's support_count semantics, which are
// defined over the observed dataset D rather than the full Cartesian
// product.
type Snapshot struct {
	Schema *Schema
	Leaves []Leaf
}

// NewSnapshot validates that every leaf is fully constrained, carries valid
// codes, and appears at most once.
func NewSnapshot(schema *Schema, leaves []Leaf) (*Snapshot, error) {
	seen := make(map[string]struct{}, len(leaves))
	for i, l := range leaves {
		if len(l.Combo) != schema.NumAttributes() {
			return nil, fmt.Errorf("kpi: leaf %d has %d attributes, schema has %d",
				i, len(l.Combo), schema.NumAttributes())
		}
		for a, code := range l.Combo {
			if code == Wildcard {
				return nil, fmt.Errorf("kpi: leaf %d is not fully constrained (attribute %s)",
					i, schema.Attribute(a).Name)
			}
			if !schema.ValidCode(a, code) {
				return nil, fmt.Errorf("kpi: leaf %d has invalid code %d for attribute %s",
					i, code, schema.Attribute(a).Name)
			}
		}
		k := l.Combo.Key()
		if _, dup := seen[k]; dup {
			return nil, fmt.Errorf("kpi: duplicate leaf %s", l.Combo.Format(schema))
		}
		seen[k] = struct{}{}
	}
	return &Snapshot{Schema: schema, Leaves: leaves}, nil
}

// Len returns the number of observed leaves |D|.
func (s *Snapshot) Len() int { return len(s.Leaves) }

// NumAnomalous returns the number of leaves labeled anomalous.
func (s *Snapshot) NumAnomalous() int {
	n := 0
	for _, l := range s.Leaves {
		if l.Anomalous {
			n++
		}
	}
	return n
}

// SupportCount returns support_count_D(ac) and support_count_D(ac, Anomaly):
// the number of leaf descendants of ac in D, and how many of them are
// anomalous (Criteria 2 of the paper).
func (s *Snapshot) SupportCount(ac Combination) (total, anomalous int) {
	for _, l := range s.Leaves {
		if !ac.Matches(l.Combo) {
			continue
		}
		total++
		if l.Anomalous {
			anomalous++
		}
	}
	return total, anomalous
}

// Confidence returns Confidence(ac => Anomaly): the anomalous fraction of
// ac's leaf descendants, or 0 when ac has no descendants in D.
func (s *Snapshot) Confidence(ac Combination) float64 {
	total, anomalous := s.SupportCount(ac)
	if total == 0 {
		return 0
	}
	return float64(anomalous) / float64(total)
}

// Sum aggregates the fundamental KPI of ac from its leaf descendants
// (Fig. 4): the summed actual and forecast values.
func (s *Snapshot) Sum(ac Combination) (actual, forecast float64) {
	for _, l := range s.Leaves {
		if ac.Matches(l.Combo) {
			actual += l.Actual
			forecast += l.Forecast
		}
	}
	return actual, forecast
}

// GroupStats holds the aggregate of one group of a cuboid group-by.
type GroupStats struct {
	Combo     Combination
	Total     int
	Anomalous int
	Actual    float64
	Forecast  float64
}

// Confidence returns the anomaly confidence of the group.
func (g GroupStats) Confidence() float64 {
	if g.Total == 0 {
		return 0
	}
	return float64(g.Anomalous) / float64(g.Total)
}

// GroupBy projects every leaf onto the cuboid's attributes and accumulates
// per-combination statistics in a single pass over D. Only combinations that
// actually occur in D are returned; the order is deterministic (ascending
// mixed-radix group index, which equals lexicographic code order).
//
// Dense cuboids are accumulated in flat arrays indexed by CuboidIndexer;
// when the cuboid's Cartesian size dwarfs the observed leaf count (very
// sparse data over a huge domain) a map-based path avoids allocating the
// full domain.
func (s *Snapshot) GroupBy(c Cuboid) []GroupStats {
	ix := NewCuboidIndexer(s.Schema, c)
	if size := ix.Size(); size < 0 || size > denseGroupByLimit(len(s.Leaves)) {
		return s.groupBySparse(c, ix)
	}
	var (
		total     = make([]int, ix.Size())
		anomalous = make([]int, ix.Size())
		actual    = make([]float64, ix.Size())
		forecast  = make([]float64, ix.Size())
		nonEmpty  int
	)
	for i := range s.Leaves {
		l := &s.Leaves[i]
		g := ix.Index(l.Combo)
		if total[g] == 0 {
			nonEmpty++
		}
		total[g]++
		if l.Anomalous {
			anomalous[g]++
		}
		actual[g] += l.Actual
		forecast[g] += l.Forecast
	}
	out := make([]GroupStats, 0, nonEmpty)
	for g, n := range total {
		if n == 0 {
			continue
		}
		out = append(out, GroupStats{
			Combo:     ix.Combination(g),
			Total:     n,
			Anomalous: anomalous[g],
			Actual:    actual[g],
			Forecast:  forecast[g],
		})
	}
	return out
}

// denseGroupByLimit bounds the flat-array domain size relative to the
// observed leaf count: past it the dense path wastes more memory zeroing
// empty groups than the map path costs in hashing.
func denseGroupByLimit(leaves int) int {
	const floor = 1 << 16
	if limit := 64 * leaves; limit > floor {
		return limit
	}
	return floor
}

// groupBySparse is the map-based group-by used for huge sparse domains.
func (s *Snapshot) groupBySparse(c Cuboid, ix *CuboidIndexer) []GroupStats {
	groups := make(map[int]*GroupStats)
	var order []int
	for i := range s.Leaves {
		l := &s.Leaves[i]
		g := ix.Index(l.Combo)
		st, ok := groups[g]
		if !ok {
			st = &GroupStats{Combo: l.Combo.Project(c)}
			groups[g] = st
			order = append(order, g)
		}
		st.Total++
		if l.Anomalous {
			st.Anomalous++
		}
		st.Actual += l.Actual
		st.Forecast += l.Forecast
	}
	sort.Ints(order)
	out := make([]GroupStats, 0, len(order))
	for _, g := range order {
		out = append(out, *groups[g])
	}
	return out
}

// AnomalousLeafSet returns the index positions (into Leaves) of the
// anomalous leaves; used by the early-stop coverage check.
func (s *Snapshot) AnomalousLeafSet() []int {
	var idx []int
	for i, l := range s.Leaves {
		if l.Anomalous {
			idx = append(idx, i)
		}
	}
	return idx
}

// Clone returns a deep copy of the snapshot (leaves and combinations).
func (s *Snapshot) Clone() *Snapshot {
	leaves := make([]Leaf, len(s.Leaves))
	for i, l := range s.Leaves {
		leaves[i] = Leaf{
			Combo:     l.Combo.Clone(),
			Actual:    l.Actual,
			Forecast:  l.Forecast,
			Anomalous: l.Anomalous,
		}
	}
	return &Snapshot{Schema: s.Schema, Leaves: leaves}
}
