package kpi

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildTestSnapshot creates a dense snapshot over the test schema where the
// leaves under (L1, *, *, Site1) are anomalous (the Fig. 3 scenario).
func buildTestSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	s := testSchema(t)
	rap := MustParseCombination(s, "(L1, *, *, Site1)")
	var leaves []Leaf
	for l := int32(0); l < 3; l++ {
		for a := int32(0); a < 2; a++ {
			for o := int32(0); o < 2; o++ {
				for w := int32(0); w < 2; w++ {
					combo := Combination{l, a, o, w}
					leaf := Leaf{
						Combo:    combo,
						Actual:   100,
						Forecast: 100,
					}
					if rap.Matches(combo) {
						leaf.Actual = 40
						leaf.Anomalous = true
					}
					leaves = append(leaves, leaf)
				}
			}
		}
	}
	snap, err := NewSnapshot(s, leaves)
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	return snap
}

func TestSnapshotValidation(t *testing.T) {
	s := testSchema(t)
	tests := []struct {
		name   string
		leaves []Leaf
		want   string
	}{
		{
			name:   "wrong arity",
			leaves: []Leaf{{Combo: Combination{0, 0}}},
			want:   "attributes",
		},
		{
			name:   "wildcard leaf",
			leaves: []Leaf{{Combo: Combination{0, Wildcard, 0, 0}}},
			want:   "not fully constrained",
		},
		{
			name:   "invalid code",
			leaves: []Leaf{{Combo: Combination{0, 9, 0, 0}}},
			want:   "invalid code",
		},
		{
			name: "duplicate leaf",
			leaves: []Leaf{
				{Combo: Combination{0, 0, 0, 0}},
				{Combo: Combination{0, 0, 0, 0}},
			},
			want: "duplicate leaf",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewSnapshot(s, tt.leaves)
			if err == nil {
				t.Fatal("NewSnapshot succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestSupportCountAndConfidence(t *testing.T) {
	snap := buildTestSnapshot(t)
	s := snap.Schema

	rap := MustParseCombination(s, "(L1, *, *, Site1)")
	total, anom := snap.SupportCount(rap)
	if total != 4 || anom != 4 {
		t.Errorf("SupportCount(RAP) = (%d, %d), want (4, 4)", total, anom)
	}
	if got := snap.Confidence(rap); got != 1 {
		t.Errorf("Confidence(RAP) = %v, want 1", got)
	}

	l1 := MustParseCombination(s, "(L1, *, *, *)")
	total, anom = snap.SupportCount(l1)
	if total != 8 || anom != 4 {
		t.Errorf("SupportCount(L1) = (%d, %d), want (8, 4)", total, anom)
	}
	if got := snap.Confidence(l1); got != 0.5 {
		t.Errorf("Confidence(L1) = %v, want 0.5", got)
	}

	clean := MustParseCombination(s, "(L2, *, *, *)")
	if got := snap.Confidence(clean); got != 0 {
		t.Errorf("Confidence(L2) = %v, want 0", got)
	}
}

func TestConfidenceOfAbsentCombination(t *testing.T) {
	s := testSchema(t)
	snap, err := NewSnapshot(s, []Leaf{{Combo: Combination{0, 0, 0, 0}, Anomalous: true}})
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	absent := MustParseCombination(s, "(L3, *, *, *)")
	if got := snap.Confidence(absent); got != 0 {
		t.Errorf("Confidence of absent combination = %v, want 0", got)
	}
}

func TestSumAggregation(t *testing.T) {
	snap := buildTestSnapshot(t)
	s := snap.Schema

	// Fundamental KPIs are additive: the root sums everything.
	v, f := snap.Sum(NewRoot(4))
	wantV := float64(20*100 + 4*40)
	wantF := float64(24 * 100)
	if v != wantV || f != wantF {
		t.Errorf("Sum(root) = (%v, %v), want (%v, %v)", v, f, wantV, wantF)
	}

	rap := MustParseCombination(s, "(L1, *, *, Site1)")
	v, f = snap.Sum(rap)
	if v != 160 || f != 400 {
		t.Errorf("Sum(RAP) = (%v, %v), want (160, 400)", v, f)
	}
}

func TestGroupByMatchesSupportCount(t *testing.T) {
	snap := buildTestSnapshot(t)
	for _, cuboid := range AllCuboids([]int{0, 1, 2, 3}) {
		groups := snap.GroupBy(cuboid)
		for _, g := range groups {
			total, anom := snap.SupportCount(g.Combo)
			if g.Total != total || g.Anomalous != anom {
				t.Fatalf("cuboid %v, combo %v: GroupBy = (%d, %d), SupportCount = (%d, %d)",
					cuboid, g.Combo, g.Total, g.Anomalous, total, anom)
			}
			v, f := snap.Sum(g.Combo)
			if math.Abs(g.Actual-v) > 1e-9 || math.Abs(g.Forecast-f) > 1e-9 {
				t.Fatalf("cuboid %v, combo %v: aggregates disagree", cuboid, g.Combo)
			}
		}
	}
}

func TestGroupByGroupCountMatchesCartesianOnDenseData(t *testing.T) {
	snap := buildTestSnapshot(t)
	s := snap.Schema
	for _, cuboid := range AllCuboids([]int{0, 1, 2, 3}) {
		want := 1
		for _, a := range cuboid {
			want *= s.Cardinality(a)
		}
		if got := len(snap.GroupBy(cuboid)); got != want {
			t.Errorf("cuboid %v: %d groups, want %d", cuboid, got, want)
		}
	}
}

func TestGroupByDeterministicOrder(t *testing.T) {
	snap := buildTestSnapshot(t)
	a := snap.GroupBy(Cuboid{0, 3})
	b := snap.GroupBy(Cuboid{0, 3})
	if len(a) != len(b) {
		t.Fatalf("group counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Combo.Equal(b[i].Combo) {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i].Combo, b[i].Combo)
		}
	}
}

func TestAnomalousLeafSet(t *testing.T) {
	snap := buildTestSnapshot(t)
	idx := snap.AnomalousLeafSet()
	if len(idx) != 4 {
		t.Fatalf("AnomalousLeafSet len = %d, want 4", len(idx))
	}
	for _, i := range idx {
		if !snap.Leaves[i].Anomalous {
			t.Errorf("leaf %d in anomalous set but not anomalous", i)
		}
	}
	if got, want := snap.NumAnomalous(), 4; got != want {
		t.Errorf("NumAnomalous = %d, want %d", got, want)
	}
}

func TestSnapshotClone(t *testing.T) {
	snap := buildTestSnapshot(t)
	clone := snap.Clone()
	clone.Leaves[0].Actual = -1
	clone.Leaves[0].Combo[0] = 2
	if snap.Leaves[0].Actual == -1 {
		t.Error("Clone shares leaf values")
	}
	if snap.Leaves[0].Combo[0] == 2 {
		t.Error("Clone shares combination storage")
	}
}

func TestLeafDev(t *testing.T) {
	l := Leaf{Actual: 50, Forecast: 100}
	if got := l.Dev(0); got != 0.5 {
		t.Errorf("Dev = %v, want 0.5", got)
	}
	zero := Leaf{Actual: 1, Forecast: 0}
	if got := zero.Dev(1e-9); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("Dev with eps produced %v", got)
	}
}

func TestSparseSnapshotSupport(t *testing.T) {
	// Sparse snapshots (missing leaves) are first-class: counts follow the
	// observed data only.
	s := testSchema(t)
	r := rand.New(rand.NewSource(3))
	var leaves []Leaf
	for l := int32(0); l < 3; l++ {
		for a := int32(0); a < 2; a++ {
			if r.Intn(3) == 0 {
				continue
			}
			leaves = append(leaves, Leaf{
				Combo:    Combination{l, a, 0, 0},
				Actual:   1,
				Forecast: 1,
			})
		}
	}
	snap, err := NewSnapshot(s, leaves)
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	total, _ := snap.SupportCount(NewRoot(4))
	if total != len(leaves) {
		t.Errorf("root support = %d, want %d", total, len(leaves))
	}
}

func TestCuboidIndexerBijectiveQuick(t *testing.T) {
	// Index and Combination are inverse over every cuboid of the test
	// schema, and distinct leaves in a cuboid's Cartesian space map to
	// distinct indexes.
	s := testSchema(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		attrs := []int{0, 1, 2, 3}
		cuboid := Cuboid{}
		for _, a := range attrs {
			if r.Intn(2) == 0 {
				cuboid = append(cuboid, a)
			}
		}
		if len(cuboid) == 0 {
			cuboid = Cuboid{0}
		}
		ix := NewCuboidIndexer(s, cuboid)
		leaf := Combination{
			int32(r.Intn(3)), int32(r.Intn(2)), int32(r.Intn(2)), int32(r.Intn(2)),
		}
		idx := ix.Index(leaf)
		if idx < 0 || idx >= ix.Size() {
			return false
		}
		back := ix.Combination(idx)
		// The reconstruction equals the leaf's projection.
		return back.Equal(leaf.Project(cuboid)) && ix.Index(back) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupBySparseHugeDomain(t *testing.T) {
	// A schema whose leaf cuboid has ~10^12 combinations: the dense path
	// would try to allocate the whole domain, so the sparse path must
	// kick in and still produce exact statistics.
	vals := func(prefix string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%s%d", prefix, i)
		}
		return out
	}
	s := MustSchema(
		Attribute{Name: "A", Values: vals("a", 10000)},
		Attribute{Name: "B", Values: vals("b", 10000)},
		Attribute{Name: "C", Values: vals("c", 10000)},
	)
	r := rand.New(rand.NewSource(8))
	seen := make(map[string]struct{})
	var leaves []Leaf
	for len(leaves) < 500 {
		combo := Combination{int32(r.Intn(10000)), int32(r.Intn(10000)), int32(r.Intn(10000))}
		if _, dup := seen[combo.Key()]; dup {
			continue
		}
		seen[combo.Key()] = struct{}{}
		leaves = append(leaves, Leaf{Combo: combo, Actual: 1, Forecast: 2, Anomalous: r.Intn(2) == 0})
	}
	snap, err := NewSnapshot(s, leaves)
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	for _, cuboid := range []Cuboid{{0}, {0, 1}, {0, 1, 2}} {
		groups := snap.GroupBy(cuboid)
		totalLeaves := 0
		for _, g := range groups {
			totalLeaves += g.Total
			total, anom := snap.SupportCount(g.Combo)
			if g.Total != total || g.Anomalous != anom {
				t.Fatalf("cuboid %v combo %v: (%d,%d) vs (%d,%d)",
					cuboid, g.Combo, g.Total, g.Anomalous, total, anom)
			}
		}
		if totalLeaves != snap.Len() {
			t.Fatalf("cuboid %v: groups cover %d leaves, want %d", cuboid, totalLeaves, snap.Len())
		}
		// Deterministic order.
		again := snap.GroupBy(cuboid)
		for i := range groups {
			if !groups[i].Combo.Equal(again[i].Combo) {
				t.Fatalf("cuboid %v: sparse order not deterministic", cuboid)
			}
		}
	}
}
