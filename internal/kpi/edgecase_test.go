package kpi

import (
	"fmt"
	"math"
	"testing"
)

// TestLeafDevGuard pins the eps guard of Leaf.Dev across forecast signs: the
// denominator's magnitude never falls below eps, the guard never flips the
// deviation's sign, and a zero eps leaves positive-forecast behavior exactly
// as before.
func TestLeafDevGuard(t *testing.T) {
	const eps = 1e-9
	tests := []struct {
		name     string
		leaf     Leaf
		eps      float64
		want     float64 // NaN means "assert finiteness and sign only"
		wantSign float64
	}{
		{"positive forecast, no eps", Leaf{Actual: 50, Forecast: 100}, 0, 0.5, 1},
		{"positive forecast with eps", Leaf{Actual: 50, Forecast: 100}, eps, math.NaN(), 1},
		{"negative forecast mirrors positive", Leaf{Actual: -50, Forecast: -100}, 0, 0.5, 1},
		{"negative forecast with eps", Leaf{Actual: -50, Forecast: -100}, eps, math.NaN(), 1},
		{"zero forecast, drop", Leaf{Actual: 1, Forecast: 0}, eps, math.NaN(), -1},
		{"zero forecast, spike", Leaf{Actual: -1, Forecast: 0}, eps, math.NaN(), 1},
		{"negative zero forecast", Leaf{Actual: 1, Forecast: math.Copysign(0, -1)}, eps, math.NaN(), -1},
		{"tiny negative forecast", Leaf{Actual: 1, Forecast: -1e-12}, eps, math.NaN(), 1},
		{"tiny positive forecast", Leaf{Actual: 1, Forecast: 1e-12}, eps, math.NaN(), -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.leaf.Dev(tt.eps)
			if math.IsInf(got, 0) || math.IsNaN(got) {
				t.Fatalf("Dev = %v, want finite", got)
			}
			if !math.IsNaN(tt.want) && got != tt.want {
				t.Fatalf("Dev = %v, want %v", got, tt.want)
			}
			if tt.wantSign > 0 && got <= 0 || tt.wantSign < 0 && got >= 0 {
				t.Fatalf("Dev = %v, want sign %v", got, tt.wantSign)
			}
			// The guard bounds the magnitude: |dev| <= |f - v| / eps.
			if tt.eps > 0 {
				if bound := math.Abs(tt.leaf.Forecast-tt.leaf.Actual) / tt.eps; math.Abs(got) > bound*(1+1e-12) {
					t.Fatalf("Dev = %v exceeds eps bound %v", got, bound)
				}
			}
		})
	}

	// The pre-guard denominator is eps-shifted away from zero on the
	// forecast's own side, so the negative branch is the exact mirror of the
	// positive one.
	pos := Leaf{Actual: 80, Forecast: 100}.Dev(eps)
	neg := Leaf{Actual: -80, Forecast: -100}.Dev(eps)
	if math.Abs(pos-neg) > 1e-15 {
		t.Errorf("Dev not sign-symmetric: +f gives %v, -f gives %v", pos, neg)
	}
}

// TestIndexerCacheHighAttributeIndexes pins the Indexer cache-key encoding:
// attribute indexes differing only above the low byte (a vs a+256) must map
// to different cache entries. A one-byte-per-attribute key collides them and
// silently hands back the wrong cuboid's indexer.
func TestIndexerCacheHighAttributeIndexes(t *testing.T) {
	// 258 attributes; attribute 1 and attribute 257 get different
	// cardinalities so a collision is observable through Size().
	attrs := make([]Attribute, 258)
	for i := range attrs {
		vals := []string{"a", "b"}
		if i == 257 {
			vals = []string{"a", "b", "c"}
		}
		attrs[i] = Attribute{Name: fmt.Sprintf("A%d", i), Values: vals}
	}
	s := MustSchema(attrs...)
	combo := make(Combination, 258)
	snap, err := NewSnapshot(s, []Leaf{{Combo: combo, Actual: 1, Forecast: 1}})
	if err != nil {
		t.Fatal(err)
	}

	low := snap.Indexer(Cuboid{1})
	high := snap.Indexer(Cuboid{257})
	if low == high {
		t.Fatal("cuboids {1} and {257} share a cached indexer: cache key collides above the low byte")
	}
	if low.Size() != 2 || high.Size() != 3 {
		t.Fatalf("indexer sizes %d/%d, want 2/3: a colliding key returned the wrong cuboid's indexer",
			low.Size(), high.Size())
	}
	// Repeat lookups still resolve to the right entries.
	if snap.Indexer(Cuboid{1}) != low || snap.Indexer(Cuboid{257}) != high {
		t.Fatal("repeat Indexer lookups did not hit their own cache entries")
	}
}

// bigScanSnapshot builds a dense two-attribute snapshot with more leaves
// than one halt stride, so ScanCuboidHalt polls its hook mid-scan.
func bigScanSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	vals := func(prefix string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%s%d", prefix, i)
		}
		return out
	}
	s := MustSchema(
		Attribute{Name: "A", Values: vals("a", 100)},
		Attribute{Name: "B", Values: vals("b", 100)},
	)
	leaves := make([]Leaf, 0, 100*100)
	for a := int32(0); a < 100; a++ {
		for b := int32(0); b < 100; b++ {
			leaves = append(leaves, Leaf{
				Combo: Combination{a, b}, Actual: 1, Forecast: 1,
				Anomalous: a == 3,
			})
		}
	}
	snap, err := NewSnapshot(s, leaves)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestScanCuboidHalt pins the Halt contract: a tripped hook aborts the scan
// with (empty, false) — never a partial result mistakable for a complete
// one — while a nil or never-tripping hook reproduces ScanCuboid exactly.
func TestScanCuboidHalt(t *testing.T) {
	snap := bigScanSnapshot(t)
	if snap.Len() <= 2*haltStride {
		t.Fatalf("snapshot has %d leaves, need more than two halt strides (%d)", snap.Len(), haltStride)
	}
	for _, cuboid := range []Cuboid{{0}, {1}, {0, 1}} {
		want := snap.ScanCuboid(cuboid, nil)

		got, ok := snap.ScanCuboidHalt(cuboid, nil, func() bool { return false })
		if !ok {
			t.Fatalf("cuboid %v: never-tripping halt aborted the scan", cuboid)
		}
		if len(got) != len(want) {
			t.Fatalf("cuboid %v: halt variant returned %d groups, want %d", cuboid, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cuboid %v group %d: %+v != %+v", cuboid, i, got[i], want[i])
			}
		}

		got, ok = snap.ScanCuboidHalt(cuboid, got, func() bool { return true })
		if ok {
			t.Fatalf("cuboid %v: tripped halt reported a complete scan", cuboid)
		}
		if len(got) != 0 {
			t.Fatalf("cuboid %v: aborted scan returned %d groups, want none", cuboid, len(got))
		}
	}

	// A hook tripping partway through still yields a clean abort, and the
	// scan stops promptly: the hook is not polled for the whole leaf count.
	polls := 0
	_, ok := snap.ScanCuboidHalt(Cuboid{0}, nil, func() bool {
		polls++
		return polls >= 2
	})
	if ok {
		t.Fatal("mid-scan trip reported a complete scan")
	}
	if polls != 2 {
		t.Fatalf("hook polled %d times after tripping on poll 2", polls)
	}
}
