package kpi

import (
	"math/rand"
	"testing"
)

// scanTestSnapshot builds a labeled random snapshot over a 3-attribute
// schema, leaving some leaves absent so group-bys see sparse data.
func scanTestSnapshot(t testing.TB, seed int64) *Snapshot {
	t.Helper()
	s := MustSchema(
		Attribute{Name: "a", Values: []string{"a1", "a2", "a3"}},
		Attribute{Name: "b", Values: []string{"b1", "b2", "b3", "b4"}},
		Attribute{Name: "c", Values: []string{"c1", "c2"}},
	)
	r := rand.New(rand.NewSource(seed))
	var leaves []Leaf
	for x := int32(0); x < 3; x++ {
		for y := int32(0); y < 4; y++ {
			for z := int32(0); z < 2; z++ {
				if r.Float64() < 0.2 {
					continue // sparse: leaf unobserved
				}
				leaves = append(leaves, Leaf{
					Combo:     Combination{x, y, z},
					Actual:    r.Float64() * 100,
					Forecast:  r.Float64() * 100,
					Anomalous: r.Float64() < 0.3,
				})
			}
		}
	}
	snap, err := NewSnapshot(s, leaves)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestScanCuboidMatchesGroupBy pins ScanCuboid to GroupBy: same groups, same
// order, same support counts, for every cuboid of the lattice.
func TestScanCuboidMatchesGroupBy(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		snap := scanTestSnapshot(t, seed)
		attrs := []int{0, 1, 2}
		var buf []GroupCount
		for _, cuboid := range AllCuboids(attrs) {
			stats := snap.GroupBy(cuboid)
			buf = snap.ScanCuboid(cuboid, buf)
			if len(buf) != len(stats) {
				t.Fatalf("seed %d cuboid %v: %d scanned groups, %d group-by groups",
					seed, cuboid, len(buf), len(stats))
			}
			ix := snap.Indexer(cuboid)
			for i, gc := range buf {
				if want := ix.Index(stats[i].Combo); gc.Group != want {
					t.Errorf("seed %d cuboid %v group %d: index %d, want %d", seed, cuboid, i, gc.Group, want)
				}
				if gc.Total != stats[i].Total || gc.Anomalous != stats[i].Anomalous {
					t.Errorf("seed %d cuboid %v group %d: counts (%d, %d), want (%d, %d)",
						seed, cuboid, i, gc.Total, gc.Anomalous, stats[i].Total, stats[i].Anomalous)
				}
				if gc.Confidence() != stats[i].Confidence() {
					t.Errorf("seed %d cuboid %v group %d: confidence mismatch", seed, cuboid, i)
				}
			}
		}
	}
}

// TestScanCuboidSparsePath forces the map-based path with a huge-domain
// schema and checks it agrees with GroupBy.
func TestScanCuboidSparsePath(t *testing.T) {
	mk := func(name string, n int) Attribute {
		vals := make([]string, n)
		for i := range vals {
			vals[i] = name + string(rune('a'+i/26)) + string(rune('a'+i%26))
		}
		return Attribute{Name: name, Values: vals}
	}
	s := MustSchema(mk("x", 500), mk("y", 400), mk("z", 300))
	r := rand.New(rand.NewSource(7))
	var leaves []Leaf
	seen := map[[3]int32]bool{}
	for len(leaves) < 50 {
		c := [3]int32{int32(r.Intn(500)), int32(r.Intn(400)), int32(r.Intn(300))}
		if seen[c] {
			continue
		}
		seen[c] = true
		leaves = append(leaves, Leaf{
			Combo:     Combination{c[0], c[1], c[2]},
			Actual:    1,
			Forecast:  1,
			Anomalous: r.Intn(2) == 0,
		})
	}
	snap, err := NewSnapshot(s, leaves)
	if err != nil {
		t.Fatal(err)
	}
	cuboid := Cuboid{0, 1, 2}
	if size := snap.Indexer(cuboid).Size(); size <= denseGroupByLimit(len(leaves)) {
		t.Fatalf("domain %d does not exercise the sparse path", size)
	}
	stats := snap.GroupBy(cuboid)
	scan := snap.ScanCuboid(cuboid, nil)
	if len(scan) != len(stats) {
		t.Fatalf("%d scanned groups, %d group-by groups", len(scan), len(stats))
	}
	ix := snap.Indexer(cuboid)
	for i := range scan {
		if scan[i].Group != ix.Index(stats[i].Combo) ||
			scan[i].Total != stats[i].Total || scan[i].Anomalous != stats[i].Anomalous {
			t.Errorf("group %d: scan %+v does not match stats %+v", i, scan[i], stats[i])
		}
	}
}

// TestGroupByAppendReusesBuffer checks the destination buffer is recycled
// and that repeated calls return identical content.
func TestGroupByAppendReusesBuffer(t *testing.T) {
	snap := scanTestSnapshot(t, 42)
	cuboid := Cuboid{0, 1}
	first := snap.GroupByAppend(cuboid, nil)
	reused := snap.GroupByAppend(cuboid, first)
	if len(reused) != len(first) {
		t.Fatalf("reused call returned %d groups, first %d", len(reused), len(first))
	}
	want := snap.GroupBy(cuboid)
	for i := range want {
		if !reused[i].Combo.Equal(want[i].Combo) || reused[i].Total != want[i].Total {
			t.Errorf("group %d mismatch after reuse", i)
		}
	}
}

// TestIndexerCacheReturnsSameInstance checks Indexer caches per cuboid and
// that DecodeInto matches Combination.
func TestIndexerCacheReturnsSameInstance(t *testing.T) {
	snap := scanTestSnapshot(t, 1)
	c := Cuboid{0, 2}
	ix1 := snap.Indexer(c)
	ix2 := snap.Indexer(Cuboid{0, 2})
	if ix1 != ix2 {
		t.Error("Indexer did not return the cached instance")
	}
	if snap.Indexer(Cuboid{1}) == ix1 {
		t.Error("distinct cuboids share an indexer")
	}
	dst := NewRoot(3)
	for g := 0; g < ix1.Size(); g++ {
		ix1.DecodeInto(dst, g)
		if want := ix1.Combination(g); !dst.Equal(want) {
			t.Fatalf("DecodeInto(%d) = %v, want %v", g, dst, want)
		}
	}
}

// TestAnomalousPostingsInvertAnomalousLeaves checks the inverted lists
// cover exactly the anomalous leaf set, per attribute.
func TestAnomalousPostingsInvertAnomalousLeaves(t *testing.T) {
	snap := scanTestSnapshot(t, 3)
	anom := snap.AnomalousLeafSet()
	if len(anom) != snap.NumAnomalous() {
		t.Fatalf("AnomalousLeafSet has %d entries, NumAnomalous %d", len(anom), snap.NumAnomalous())
	}
	postings := snap.AnomalousPostings()
	for a := 0; a < snap.Schema.NumAttributes(); a++ {
		var total int
		for code, list := range postings[a] {
			for _, i := range list {
				if !snap.Leaves[i].Anomalous {
					t.Errorf("attr %d code %d: leaf %d is not anomalous", a, code, i)
				}
				if snap.Leaves[i].Combo[a] != int32(code) {
					t.Errorf("attr %d code %d: leaf %d carries code %d", a, code, i, snap.Leaves[i].Combo[a])
				}
			}
			total += len(list)
		}
		if total != len(anom) {
			t.Errorf("attr %d postings cover %d leaves, want %d", a, total, len(anom))
		}
	}
}

// TestInvalidateLabelsRefreshesCaches checks that relabeling after
// InvalidateLabels is reflected by the cached views.
func TestInvalidateLabelsRefreshesCaches(t *testing.T) {
	snap := scanTestSnapshot(t, 9)
	before := len(snap.AnomalousLeafSet())
	for i := range snap.Leaves {
		snap.Leaves[i].Anomalous = true
	}
	if got := len(snap.AnomalousLeafSet()); got != before {
		t.Fatalf("cache refreshed without invalidation: %d vs %d", got, before)
	}
	snap.InvalidateLabels()
	if got := len(snap.AnomalousLeafSet()); got != snap.Len() {
		t.Fatalf("after invalidation AnomalousLeafSet has %d entries, want %d", got, snap.Len())
	}
	if got := len(snap.AnomalousPostings()[0][0]); got == 0 {
		t.Error("postings not rebuilt after invalidation")
	}
}

// TestScanCuboidConcurrent exercises the snapshot caches and pooled
// accumulators from many goroutines (run with -race).
func TestScanCuboidConcurrent(t *testing.T) {
	snap := scanTestSnapshot(t, 11)
	attrs := []int{0, 1, 2}
	cuboids := AllCuboids(attrs)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			var buf []GroupCount
			for rep := 0; rep < 50; rep++ {
				for _, c := range cuboids {
					buf = snap.ScanCuboid(c, buf)
					_ = snap.AnomalousPostings()
				}
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
