package kpi

// Cuboid identifies one cuboid of the lattice by the sorted indexes of the
// attributes it constrains; e.g. {0, 3} is Cub_{Location,Website} in the CDN
// schema. There are 2^n - 1 cuboids for n attributes, arranged in n layers
// by |Cuboid| (Fig. 2 of the paper).
type Cuboid []int

// CuboidsAtLayer enumerates all size-layer subsets of attrs, in
// lexicographic order of the attr slice. attrs need not be contiguous: after
// redundant attribute deletion the search runs on the surviving attributes
// only.
func CuboidsAtLayer(attrs []int, layer int) []Cuboid {
	if layer <= 0 || layer > len(attrs) {
		return nil
	}
	var (
		out  []Cuboid
		pick = make([]int, 0, layer)
	)
	var rec func(start int)
	rec = func(start int) {
		if len(pick) == layer {
			out = append(out, append(Cuboid(nil), pick...))
			return
		}
		// Not enough attributes left to complete the pick.
		for i := start; i <= len(attrs)-(layer-len(pick)); i++ {
			pick = append(pick, attrs[i])
			rec(i + 1)
			pick = pick[:len(pick)-1]
		}
	}
	rec(0)
	return out
}

// AllCuboids enumerates every non-empty cuboid over attrs, layer by layer
// from coarse (single attribute) to fine.
func AllCuboids(attrs []int) []Cuboid {
	var out []Cuboid
	for layer := 1; layer <= len(attrs); layer++ {
		out = append(out, CuboidsAtLayer(attrs, layer)...)
	}
	return out
}

// NumCuboids returns 2^n - 1, the number of cuboids over n attributes.
func NumCuboids(n int) int {
	if n <= 0 {
		return 0
	}
	return 1<<uint(n) - 1
}

// DecreaseRatio returns the fraction of cuboids no longer traversed after
// deleting k of n attributes (Eq. 2 / Table IV of the paper):
//
//	(2^n - 2^(n-k)) / (2^n - 1)
func DecreaseRatio(n, k int) float64 {
	if n <= 0 || k <= 0 {
		return 0
	}
	if k > n {
		k = n
	}
	total := float64(int64(1)<<uint(n)) - 1
	left := float64(int64(1)<<uint(n-k)) - 1
	return (total - left) / total
}
