package kpi

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// deltaTestSnapshot builds a small dense labeled snapshot for delta tests.
func deltaTestSnapshot(t testing.TB) *Snapshot {
	t.Helper()
	schema := MustSchema(
		Attribute{Name: "region", Values: []string{"r1", "r2", "r3"}},
		Attribute{Name: "isp", Values: []string{"i1", "i2"}},
		Attribute{Name: "proto", Values: []string{"p1", "p2"}},
	)
	r := rand.New(rand.NewSource(7))
	var leaves []Leaf
	for a := int32(0); a < 3; a++ {
		for b := int32(0); b < 2; b++ {
			for c := int32(0); c < 2; c++ {
				leaves = append(leaves, Leaf{
					Combo:     Combination{a, b, c},
					Actual:    100 * r.Float64(),
					Forecast:  100,
					Anomalous: r.Intn(3) == 0,
				})
			}
		}
	}
	snap, err := NewSnapshot(schema, leaves)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// freshOf rebuilds a from-scratch snapshot over the same post-delta leaves —
// the delta contract's reference point.
func freshOf(t testing.TB, s *Snapshot) *Snapshot {
	t.Helper()
	fresh, err := NewSnapshot(s.Schema, s.Clone().Leaves)
	if err != nil {
		t.Fatalf("post-delta leaves no longer form a valid snapshot: %v", err)
	}
	return fresh
}

// samePostings compares inverted postings treating nil and empty lists as
// equal (a patch that empties a list keeps a zero-length slice where a fresh
// build leaves nil).
func samePostings(a, b [][][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if len(a[i][j]) != len(b[i][j]) {
				return false
			}
			for k := range a[i][j] {
				if a[i][j][k] != b[i][j][k] {
					return false
				}
			}
		}
	}
	return true
}

// sameIdx is samePostings' nil-tolerant comparison for anomalous leaf sets.
func sameIdx(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertDeltaEquivalence checks every observable structure of the patched
// snapshot against a from-scratch rebuild of its post-delta leaves.
func assertDeltaEquivalence(t *testing.T, patched *Snapshot) {
	t.Helper()
	fresh := freshOf(t, patched)

	if !sameIdx(patched.AnomalousLeafSet(), fresh.AnomalousLeafSet()) {
		t.Fatalf("anomalous leaf set: patched %v, fresh %v",
			patched.AnomalousLeafSet(), fresh.AnomalousLeafSet())
	}
	if !samePostings(patched.AnomalousPostings(), fresh.AnomalousPostings()) {
		t.Fatalf("postings diverge:\npatched %v\nfresh   %v",
			patched.AnomalousPostings(), fresh.AnomalousPostings())
	}

	pc, fc := patched.Columns(), fresh.Columns()
	if pc.Len() != fc.Len() || pc.NumAnomalous() != fc.NumAnomalous() {
		t.Fatalf("columns: patched (n=%d, anom=%d), fresh (n=%d, anom=%d)",
			pc.Len(), pc.NumAnomalous(), fc.Len(), fc.NumAnomalous())
	}
	if !reflect.DeepEqual(pc.AnomalousBits(), fc.AnomalousBits()) {
		t.Fatalf("bitset: patched %b, fresh %b", pc.AnomalousBits(), fc.AnomalousBits())
	}
	for a := 0; a < patched.Schema.NumAttributes(); a++ {
		if !reflect.DeepEqual(pc.Elem(a), fc.Elem(a)) {
			t.Fatalf("elem column %d: patched %v, fresh %v", a, pc.Elem(a), fc.Elem(a))
		}
	}
	if !reflect.DeepEqual(pc.Actual(), fc.Actual()) || !reflect.DeepEqual(pc.Forecast(), fc.Forecast()) {
		t.Fatal("value columns diverge")
	}

	attrs := make([]int, patched.Schema.NumAttributes())
	for a := range attrs {
		attrs[a] = a
	}
	var want, got []GroupCount
	for layer := 1; layer <= len(attrs); layer++ {
		for _, cuboid := range CuboidsAtLayer(attrs, layer) {
			want = fresh.ScanCuboid(cuboid, want)
			got = patched.ScanCuboid(cuboid, got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cuboid %v: patched %v, fresh %v", cuboid, got, want)
			}
		}
	}
}

// TestDeltaApplyColdCaches applies a delta before any cache exists: nothing
// to patch, everything derives lazily from the mutated leaves.
func TestDeltaApplyColdCaches(t *testing.T) {
	snap := deltaTestSnapshot(t)
	res, err := snap.ApplyDelta(Delta{
		Removes: []Combination{{0, 0, 0}},
		Updates: []LeafUpdate{{Combo: Combination{1, 1, 1}, Actual: 5, Forecast: 100}},
		Adds:    []Leaf{{Combo: Combination{0, 0, 0}, Actual: 7, Forecast: 8, Anomalous: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 1 || res.Updated != 1 || res.Added != 1 {
		t.Fatalf("result %+v, want 1/1/1", res)
	}
	if res.PatchedFrame || res.PatchedLabels {
		t.Fatalf("cold caches reported patched: %+v", res)
	}
	if len(res.Touched) != 2 {
		t.Fatalf("touched %v, want 2 indexes", res.Touched)
	}
	assertDeltaEquivalence(t, snap)
}

// TestDeltaApplyPatchesWarmCaches is the core contract: with every cache
// built, a delta patches them in place — the frame pointer survives — and
// the result is indistinguishable from a from-scratch snapshot.
func TestDeltaApplyPatchesWarmCaches(t *testing.T) {
	snap := deltaTestSnapshot(t)
	// Warm everything.
	snap.Columns()
	snap.AnomalousPostings()
	frameBefore := snap.colFrameCached()
	genBefore := snap.Generation()

	res, err := snap.ApplyDelta(Delta{
		Removes: []Combination{{2, 1, 1}, {0, 1, 0}},
		Updates: []LeafUpdate{
			{Combo: Combination{0, 0, 0}, Actual: 1, Forecast: 100},
			{Combo: Combination{1, 0, 1}, Actual: 99, Forecast: 100},
		},
		Adds: []Leaf{
			{Combo: Combination{2, 1, 1}, Actual: 3, Forecast: 100, Anomalous: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PatchedFrame || !res.PatchedLabels {
		t.Fatalf("warm caches not patched: %+v", res)
	}
	if snap.colFrameCached() != frameBefore {
		t.Fatal("columnar frame was rebuilt, not patched")
	}
	if snap.Generation() == genBefore {
		t.Fatal("generation did not advance across ApplyDelta")
	}
	assertDeltaEquivalence(t, snap)
}

// TestDeltaValidationAtomic: any invalid record rejects the whole delta and
// leaves the snapshot byte-identical.
func TestDeltaValidationAtomic(t *testing.T) {
	snap := deltaTestSnapshot(t)
	snap.Columns()
	before := freshOf(t, snap)

	cases := []struct {
		name string
		d    Delta
	}{
		{"remove unknown", Delta{Removes: []Combination{{9, 0, 0}}}},
		{"remove wildcard", Delta{Removes: []Combination{{Wildcard, 0, 0}}}},
		{"remove duplicate", Delta{Removes: []Combination{{0, 0, 0}, {0, 0, 0}}}},
		{"update unknown", Delta{
			Removes: []Combination{{0, 0, 0}},
			Updates: []LeafUpdate{{Combo: Combination{0, 0, 0}, Actual: 1, Forecast: 2}},
		}},
		{"update short combo", Delta{Updates: []LeafUpdate{{Combo: Combination{0, 0}}}}},
		{"add present", Delta{Adds: []Leaf{{Combo: Combination{0, 0, 0}}}}},
		{"add duplicate", Delta{
			Removes: []Combination{{0, 0, 0}},
			Adds: []Leaf{
				{Combo: Combination{0, 0, 0}},
				{Combo: Combination{0, 0, 0}},
			},
		}},
	}
	for _, tc := range cases {
		res, err := snap.ApplyDelta(tc.d)
		if err == nil {
			t.Fatalf("%s: delta applied, result %+v", tc.name, res)
		}
		if snap.Len() != before.Len() {
			t.Fatalf("%s: leaf count changed on a rejected delta", tc.name)
		}
	}
	// The snapshot still matches the pre-delta world exactly.
	if !sameIdx(snap.AnomalousLeafSet(), before.AnomalousLeafSet()) {
		t.Fatal("rejected deltas perturbed the anomalous leaf set")
	}
	assertDeltaEquivalence(t, snap)
}

// TestDeltaRemoveThenReAdd exercises the documented ordering: a key removed
// and re-added by the same delta carries the fresh observation.
func TestDeltaRemoveThenReAdd(t *testing.T) {
	snap := deltaTestSnapshot(t)
	snap.Columns()
	res, err := snap.ApplyDelta(Delta{
		Removes: []Combination{{1, 1, 0}},
		Adds:    []Leaf{{Combo: Combination{1, 1, 0}, Actual: 123, Forecast: 456}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 1 || res.Added != 1 {
		t.Fatalf("result %+v", res)
	}
	i := res.Touched[0]
	if l := snap.Leaves[i]; l.Actual != 123 || l.Forecast != 456 || l.Anomalous {
		t.Fatalf("re-added leaf = %+v", l)
	}
	assertDeltaEquivalence(t, snap)
}

// TestDeltaRemoveAll drains the snapshot leaf by leaf with caches warm.
func TestDeltaRemoveAll(t *testing.T) {
	snap := deltaTestSnapshot(t)
	snap.Columns()
	snap.AnomalousPostings()
	for snap.Len() > 0 {
		if _, err := snap.ApplyDelta(Delta{Removes: []Combination{snap.Leaves[0].Combo.Clone()}}); err != nil {
			t.Fatal(err)
		}
		assertDeltaEquivalence(t, snap)
	}
	if n := snap.Columns().Len(); n != 0 {
		t.Fatalf("drained snapshot still encodes %d leaves", n)
	}
}

// TestPatchLabelsMatchesInvalidate: flipping labels through PatchLabels must
// leave the caches exactly as a full InvalidateLabels rebuild would.
func TestPatchLabelsMatchesInvalidate(t *testing.T) {
	snap := deltaTestSnapshot(t)
	snap.Columns()
	snap.AnomalousPostings()

	var changed []int
	for i := range snap.Leaves {
		if i%3 == 0 {
			snap.Leaves[i].Anomalous = !snap.Leaves[i].Anomalous
			changed = append(changed, i)
		}
	}
	snap.PatchLabels(changed)
	assertDeltaEquivalence(t, snap)
}

// TestInvalidateLabelsKeepsFrame is the granularity regression test: a
// relabel cycle (rewrite labels + InvalidateLabels) must not discard the
// label-independent columnar frame or the cuboid indexers — only
// InvalidateStructure does that.
func TestInvalidateLabelsKeepsFrame(t *testing.T) {
	snap := deltaTestSnapshot(t)
	cols := snap.Columns()
	frame := snap.colFrameCached()
	ix := snap.Indexer(Cuboid{0, 1})

	for i := range snap.Leaves {
		snap.Leaves[i].Anomalous = i%2 == 0
	}
	snap.InvalidateLabels()

	if snap.colFrameCached() != frame {
		t.Fatal("colFrame pointer did not survive the relabel cycle")
	}
	if snap.Indexer(Cuboid{0, 1}) != ix {
		t.Fatal("indexer cache did not survive the relabel cycle")
	}
	if snap.Columns() == cols {
		t.Fatal("label-derived columns survived InvalidateLabels")
	}
	assertDeltaEquivalence(t, snap)

	snap.InvalidateStructure()
	if snap.colFrameCached() == frame {
		t.Fatal("colFrame survived InvalidateStructure")
	}
	if snap.Indexer(Cuboid{0, 1}) != ix {
		t.Fatal("schema-derived indexer did not survive InvalidateStructure")
	}
}

// TestDeltaLeafPosMaintained checks the incremental leaf-position index
// against a rebuilt one after a mixed delta burst.
func TestDeltaLeafPosMaintained(t *testing.T) {
	snap := deltaTestSnapshot(t)
	_, err := snap.ApplyDelta(Delta{
		Removes: []Combination{{0, 0, 0}, {2, 1, 1}},
		Adds:    []Leaf{{Combo: Combination{2, 1, 1}, Actual: 1, Forecast: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap.mu.Lock()
	pos := snap.leafPosLocked()
	if len(pos) != len(snap.Leaves) {
		snap.mu.Unlock()
		t.Fatalf("leafPos has %d entries for %d leaves", len(pos), len(snap.Leaves))
	}
	for i := range snap.Leaves {
		if got := pos[snap.Leaves[i].Combo.Key()]; int(got) != i {
			snap.mu.Unlock()
			t.Fatalf("leafPos[%s] = %d, want %d", snap.Leaves[i].Combo.Format(snap.Schema), got, i)
		}
	}
	snap.mu.Unlock()
}

// FuzzDeltaVsRebuild is the delta property test: random delta sequences
// applied to a warm snapshot must keep every scan engine's counts —
// ScanCuboid, the fused LayerScan, and roll-up-served layers — identical to
// a from-scratch rebuild of the post-delta leaves, at several worker counts.
func FuzzDeltaVsRebuild(f *testing.F) {
	f.Add(int64(1), byte(60), byte(30), uint8(3))
	f.Add(int64(2), byte(95), byte(5), uint8(1))
	f.Add(int64(3), byte(30), byte(80), uint8(5))
	f.Add(int64(42), byte(80), byte(50), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, density, anomRate byte, nDeltas uint8) {
		snap := fuzzSnapshot(seed, density, anomRate)
		schema := snap.Schema
		nAttr := schema.NumAttributes()
		// Warm every cache so deltas exercise the patch paths.
		snap.Columns()
		snap.AnomalousPostings()

		r := rand.New(rand.NewSource(seed ^ 0x64656c7461))
		randomCombo := func() Combination {
			combo := make(Combination, nAttr)
			for a := range combo {
				combo[a] = int32(r.Intn(schema.Cardinality(a)))
			}
			return combo
		}
		for step := 0; step < int(nDeltas%8)+1; step++ {
			var d Delta
			present := make(map[string]bool, snap.Len())
			for i := range snap.Leaves {
				present[snap.Leaves[i].Combo.Key()] = true
			}
			claimed := make(map[string]bool)
			// Removes: up to 3 random existing leaves.
			for n := r.Intn(4); n > 0 && snap.Len() > 0; n-- {
				c := snap.Leaves[r.Intn(snap.Len())].Combo.Clone()
				if claimed[c.Key()] {
					continue
				}
				claimed[c.Key()] = true
				d.Removes = append(d.Removes, c)
			}
			// Updates: up to 3 random surviving leaves.
			for n := r.Intn(4); n > 0 && snap.Len() > 0; n-- {
				c := snap.Leaves[r.Intn(snap.Len())].Combo.Clone()
				if claimed[c.Key()] {
					continue
				}
				claimed[c.Key()] = true
				d.Updates = append(d.Updates, LeafUpdate{
					Combo: c, Actual: r.NormFloat64() * 50, Forecast: r.NormFloat64() * 50,
				})
			}
			// Adds: up to 3 random absent (or just-removed) combinations.
			for n := r.Intn(4); n > 0; n-- {
				c := randomCombo()
				k := c.Key()
				removed := false
				for _, rc := range d.Removes {
					if rc.Key() == k {
						removed = true
					}
				}
				if claimed[k] || (present[k] && !removed) {
					continue
				}
				claimed[k] = true
				d.Adds = append(d.Adds, Leaf{
					Combo: c, Actual: r.NormFloat64() * 50, Forecast: r.NormFloat64() * 50,
					Anomalous: r.Intn(2) == 0,
				})
			}
			if _, err := snap.ApplyDelta(d); err != nil {
				t.Fatalf("step %d: generated delta rejected: %v", step, err)
			}
			// Occasionally flip labels through the patch path too.
			if r.Intn(2) == 0 && snap.Len() > 0 {
				var changed []int
				for i := range snap.Leaves {
					if r.Intn(8) == 0 {
						snap.Leaves[i].Anomalous = !snap.Leaves[i].Anomalous
						changed = append(changed, i)
					}
				}
				snap.PatchLabels(changed)
			}
		}

		fresh := freshOf(t, snap)
		attrs := make([]int, nAttr)
		for a := range attrs {
			attrs[a] = a
		}
		var want, got []GroupCount
		for layer := 1; layer <= nAttr; layer++ {
			cuboids := CuboidsAtLayer(attrs, layer)
			for _, cuboid := range cuboids {
				want = fresh.ScanCuboid(cuboid, want)
				got = snap.ScanCuboid(cuboid, got)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("ScanCuboid %v: patched %v, fresh %v", cuboid, got, want)
				}
			}
			for _, workers := range []int{1, 4} {
				ls := snap.NewLayerScan(cuboids)
				fl := fresh.NewLayerScan(cuboids)
				ls.Run(workers, nil)
				fl.Run(workers, nil)
				for ci, cuboid := range cuboids {
					if ls.Done(ci) != fl.Done(ci) {
						t.Fatalf("cuboid %v: fused on one side only", cuboid)
					}
					if !ls.Done(ci) {
						continue
					}
					want = fl.Groups(ci, want)
					got = ls.Groups(ci, got)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("LayerScan %v workers %d: patched %v, fresh %v", cuboid, workers, got, want)
					}
				}
				ls.Close()
				fl.Close()
			}
		}
		for _, workers := range []int{1, 4} {
			pp := snap.NewRollupPlan(attrs, 0)
			fp := fresh.NewRollupPlan(attrs, 0)
			if (pp == nil) != (fp == nil) {
				t.Fatal("roll-up materializable on one side only")
			}
			if pp == nil {
				continue
			}
			pp.Run(workers, nil)
			fp.Run(workers, nil)
			for layer := 1; layer <= nAttr; layer++ {
				for _, cuboid := range CuboidsAtLayer(attrs, layer) {
					if pp.Serves(cuboid) != fp.Serves(cuboid) {
						t.Fatalf("cuboid %v: rolled up on one side only", cuboid)
					}
					if !pp.Serves(cuboid) {
						continue
					}
					want = fp.Groups(cuboid, want)
					got = pp.Groups(cuboid, got)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("rollup %v workers %d: patched %v, fresh %v", cuboid, workers, got, want)
					}
				}
			}
			pp.Close()
			fp.Close()
		}
	})
}

// TestDeltaJSONRoundTrip pins the delta wire format.
func TestDeltaJSONRoundTrip(t *testing.T) {
	snap := deltaTestSnapshot(t)
	d := Delta{
		Removes: []Combination{{0, 1, 0}},
		Updates: []LeafUpdate{{Combo: Combination{1, 0, 1}, Actual: 12.5, Forecast: 100}},
		Adds:    []Leaf{{Combo: Combination{2, 0, 0}, Actual: 1, Forecast: 2, Anomalous: true}},
	}
	var buf bytes.Buffer
	if err := WriteDeltaJSON(&buf, snap.Schema, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDeltaJSON(&buf, snap.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip:\ngot  %+v\nwant %+v", got, d)
	}
	bad := strings.NewReader(`{"adds":[{"combination":["r1","i1","nope"]}]}`)
	if _, err := ReadDeltaJSON(bad, snap.Schema); err == nil {
		t.Fatal("unknown element name decoded")
	}
}

// BenchmarkDeltaApply measures patching a warm >=100k-leaf snapshot at 10%
// and 1% touched leaves; BenchmarkFullRebuild is the from-scratch cost of
// the same post-delta state (what every tick paid before delta ingestion).
func BenchmarkDeltaApply(b *testing.B) {
	for _, pct := range []int{10, 1} {
		b.Run(fmt.Sprintf("touched=%d%%", pct), func(b *testing.B) {
			snap := benchDeltaSnapshot(b)
			d := benchDelta(snap, pct)
			snap.Columns()
			snap.AnomalousPostings()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := snap.ApplyDelta(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFullRebuild(b *testing.B) {
	for _, pct := range []int{10, 1} {
		b.Run(fmt.Sprintf("touched=%d%%", pct), func(b *testing.B) {
			snap := benchDeltaSnapshot(b)
			d := benchDelta(snap, pct)
			snap.Columns()
			snap.AnomalousPostings()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := snap.ApplyDelta(d); err != nil {
					b.Fatal(err)
				}
				// The pre-PR tick: every label/structure cache rebuilt from
				// the leaves.
				snap.InvalidateStructure()
				snap.Columns()
				snap.AnomalousPostings()
			}
		})
	}
}

// benchDeltaSnapshot is a ~115k-leaf dense snapshot (48*20*10*12).
func benchDeltaSnapshot(b *testing.B) *Snapshot {
	b.Helper()
	schema := MustSchema(
		Attribute{Name: "region", Values: elems("R", 48)},
		Attribute{Name: "isp", Values: elems("I", 20)},
		Attribute{Name: "proto", Values: elems("P", 10)},
		Attribute{Name: "site", Values: elems("S", 12)},
	)
	r := rand.New(rand.NewSource(11))
	leaves := make([]Leaf, 0, schema.NumLeaves())
	for a := int32(0); a < 48; a++ {
		for bb := int32(0); bb < 20; bb++ {
			for c := int32(0); c < 10; c++ {
				for d := int32(0); d < 12; d++ {
					leaves = append(leaves, Leaf{
						Combo:     Combination{a, bb, c, d},
						Actual:    100 * r.Float64(),
						Forecast:  100,
						Anomalous: r.Intn(50) == 0,
					})
				}
			}
		}
	}
	snap, err := NewSnapshot(schema, leaves)
	if err != nil {
		b.Fatal(err)
	}
	return snap
}

// benchDelta updates pct percent of the leaves (evenly strided).
func benchDelta(snap *Snapshot, pct int) Delta {
	stride := 100 / pct
	var d Delta
	for i := 0; i < len(snap.Leaves); i += stride {
		d.Updates = append(d.Updates, LeafUpdate{
			Combo:    snap.Leaves[i].Combo.Clone(),
			Actual:   float64(i % 97),
			Forecast: 100,
		})
	}
	return d
}
