package kpi

import (
	"fmt"
	"math/bits"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// LayerScan is the fused count-only group-by of one BFS layer: one pass
// over the columnar leaf store accumulates the support counts of every
// cuboid in the layer simultaneously, instead of one full scan of the
// leaves per cuboid. Each fused cuboid owns a contiguous slot range of a
// flat accumulator array; a leaf contributes to cuboid c at slot
// base(c) + mixed-radix group index, computed straight from the element-ID
// columns with the same strides CuboidIndexer uses — so the per-cuboid
// group counts are identical to ScanCuboid's, in the same ascending group
// order.
//
// Cuboids whose Cartesian size exceeds the dense limit are left out of the
// fusion (Fused reports false); callers scan those individually through the
// existing sparse path. When the fused slot total of a layer exceeds the
// limit the layer splits into several batches, each its own pass.
//
// The pass partitions across workers by contiguous leaf range: every worker
// accumulates into a private copy of the batch's count arrays and the
// copies are summed after the pool drains. Integer addition commutes
// exactly, so the merged counts — and everything derived from them — are
// bit-identical at any worker count.
type LayerScan struct {
	snap    *Snapshot
	cols    *Columns
	cuboids []Cuboid
	// fcOf maps a cuboid index to its entry in fcs, or -1 when the cuboid
	// is not fused (sparse domain).
	fcOf []int32
	fcs  []fusedCuboid
	// termCol/termStride are the flattened per-attribute scan terms; a
	// fused cuboid's terms live at [t0, t1).
	termCol    [][]uint32
	termStride []int32
	batches    []scanBatch
	// passes counts completed full passes over the leaf columns.
	passes int
}

// fusedCuboid is one cuboid's slice of the fused accumulator.
type fusedCuboid struct {
	ci     int32 // index into the layer's cuboid list
	batch  int32 // owning batch
	base   int32 // slot offset within the batch accumulator
	size   int32 // Cartesian size (CuboidIndexer.Size)
	t0, t1 int32 // term range in termCol/termStride
}

// scanBatch is one fused pass: a run of fused cuboids whose combined slot
// count fits the dense accumulator budget.
type scanBatch struct {
	f0, f1 int32 // fused-cuboid range in fcs
	size   int   // total slots
	done   bool
	// buf is the pooled backing array ([parts][2][size]); tot/anm are the
	// merged count views into it, valid once done.
	buf *[]int32
	tot []int32
	anm []int32
}

// scanChunk is the cache-blocking unit of the fused pass: within one chunk
// of leaves every cuboid of the batch accumulates before the scan advances,
// so the chunk's columns stay hot across cuboids. It doubles as the halt
// polling stride (matching haltStride of the per-cuboid scans).
const scanChunk = haltStride

// fusedScratchPool recycles the flat accumulator arrays across layers and
// runs, so steady-state fused scans allocate only their plan.
var fusedScratchPool = sync.Pool{New: func() any { return new([]int32) }}

// NewLayerScan plans the fused scan of cuboids over the snapshot's columnar
// store, building the store on first use. Run executes the plan; Groups
// extracts per-cuboid counts afterwards. Call Close to recycle the
// accumulators when the layer's results have been consumed.
func (s *Snapshot) NewLayerScan(cuboids []Cuboid) *LayerScan {
	return s.newLayerScanLimit(cuboids, denseGroupByLimit(len(s.Leaves)))
}

// newLayerScanLimit is NewLayerScan with an explicit dense accumulator
// limit, so callers with their own materialization budget (RollupPlan's
// base pass) reuse the fused machinery without inheriting the group-by
// heuristic.
func (s *Snapshot) newLayerScanLimit(cuboids []Cuboid, limit int) *LayerScan {
	ls := &LayerScan{
		snap:    s,
		cols:    s.Columns(),
		cuboids: cuboids,
		fcOf:    make([]int32, len(cuboids)),
	}
	for ci, c := range cuboids {
		ix := s.Indexer(c)
		size := ix.Size()
		if size < 0 || size > limit {
			// Sparse domain: the flat accumulator would dwarf the data.
			ls.fcOf[ci] = -1
			continue
		}
		if len(ls.batches) == 0 || ls.batches[len(ls.batches)-1].size+size > limit {
			ls.batches = append(ls.batches, scanBatch{
				f0: int32(len(ls.fcs)), f1: int32(len(ls.fcs)),
			})
		}
		b := &ls.batches[len(ls.batches)-1]
		fc := fusedCuboid{
			ci:    int32(ci),
			batch: int32(len(ls.batches) - 1),
			base:  int32(b.size),
			size:  int32(size),
			t0:    int32(len(ls.termCol)),
		}
		for i, a := range c {
			ls.termCol = append(ls.termCol, ls.cols.frame.elem[a])
			ls.termStride = append(ls.termStride, int32(ix.strides[i]))
		}
		fc.t1 = int32(len(ls.termCol))
		ls.fcOf[ci] = int32(len(ls.fcs))
		ls.fcs = append(ls.fcs, fc)
		b.f1++
		b.size += size
	}
	return ls
}

// Fused reports whether cuboid ci is covered by the fused plan (dense
// domain). Non-fused cuboids must be scanned individually.
func (ls *LayerScan) Fused(ci int) bool { return ls.fcOf[ci] >= 0 }

// Done reports whether cuboid ci's counts are available: its batch's pass
// completed without the halt hook tripping.
func (ls *LayerScan) Done(ci int) bool {
	fi := ls.fcOf[ci]
	return fi >= 0 && ls.batches[ls.fcs[fi].batch].done
}

// Passes returns the number of completed full passes over the leaf columns
// — the denominator of the "one pass per layer, not one per cuboid" claim.
func (ls *LayerScan) Passes() int { return ls.passes }

// Run executes every fused batch, partitioning each pass across workers
// goroutines by contiguous leaf range. halt (when non-nil) is polled every
// scanChunk leaves on each worker and before each batch; a tripped halt
// abandons the current batch — its partial counts are discarded and its
// cuboids report Done false — and stops the run, returning false. A panic
// on a scan worker is captured and rethrown on the calling goroutine as a
// *ScanPanic carrying the worker's stack.
func (ls *LayerScan) Run(workers int, halt Halt) bool {
	for bi := range ls.batches {
		if halt != nil && halt() {
			return false
		}
		if !ls.runBatch(&ls.batches[bi], workers, halt) {
			return false
		}
		ls.passes++
	}
	return true
}

// runBatch runs one fused pass, merging the per-part accumulators after the
// pool drains.
func (ls *LayerScan) runBatch(b *scanBatch, workers int, halt Halt) bool {
	n := ls.cols.n
	parts := 1
	if workers > 1 && n >= 2*scanChunk {
		parts = workers
		// Never split below one chunk per part: tiny ranges cost more in
		// goroutine handoff than they save in scan time.
		if mp := (n + scanChunk - 1) / scanChunk; parts > mp {
			parts = mp
		}
	}
	buf := fusedScratchPool.Get().(*[]int32)
	need := parts * 2 * b.size
	if cap(*buf) < need {
		*buf = make([]int32, need)
	} else {
		*buf = (*buf)[:need]
		clear(*buf)
	}
	b.buf = buf

	ok := true
	if parts == 1 {
		ok = ls.scanRange(b, 0, n, (*buf)[:b.size], (*buf)[b.size:2*b.size], halt)
	} else {
		var (
			wg      sync.WaitGroup
			aborted atomic.Bool
			trap    scanTrap
		)
		for p := 0; p < parts; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				defer trap.capture()
				lo, hi := p*n/parts, (p+1)*n/parts
				tot := (*buf)[p*2*b.size : p*2*b.size+b.size]
				anm := (*buf)[p*2*b.size+b.size : (p+1)*2*b.size]
				if !ls.scanRange(b, lo, hi, tot, anm, halt) {
					aborted.Store(true)
				}
			}(p)
		}
		wg.Wait()
		trap.rethrow()
		ok = !aborted.Load()
	}
	if !ok {
		b.buf = nil
		fusedScratchPool.Put(buf)
		return false
	}
	// Deterministic merge: per-slot integer sums are order-independent.
	tot0, anm0 := (*buf)[:b.size], (*buf)[b.size:2*b.size]
	for p := 1; p < parts; p++ {
		pt := (*buf)[p*2*b.size : p*2*b.size+b.size]
		pa := (*buf)[p*2*b.size+b.size : (p+1)*2*b.size]
		for j, v := range pt {
			tot0[j] += v
		}
		for j, v := range pa {
			anm0[j] += v
		}
	}
	b.tot, b.anm = tot0, anm0
	b.done = true
	return true
}

// keyScratchPool recycles the per-chunk group-key buffer the two-pass
// accumulate loop records into (one int32 per leaf of a chunk).
var keyScratchPool = sync.Pool{New: func() any {
	p := make([]int32, scanChunk)
	return &p
}}

// scanRange accumulates leaves [lo, hi) of every cuboid in the batch,
// chunk by chunk so the chunk's columns stay cached across cuboids.
func (ls *LayerScan) scanRange(b *scanBatch, lo, hi int, tot, anm []int32, halt Halt) bool {
	anomBits := ls.cols.anom
	kp := keyScratchPool.Get().(*[]int32)
	keys := *kp
	for cs := lo; cs < hi; cs += scanChunk {
		if halt != nil && cs > lo && halt() {
			keyScratchPool.Put(kp)
			return false
		}
		ce := cs + scanChunk
		if ce > hi {
			ce = hi
		}
		for fi := b.f0; fi < b.f1; fi++ {
			ls.accumulate(&ls.fcs[fi], anomBits, cs, ce, tot, anm, keys)
		}
	}
	keyScratchPool.Put(kp)
	return true
}

// accumulate adds leaves [cs, ce) into one cuboid's slot range in two
// passes. Pass one computes every leaf's slot key — specialized by arity,
// since the mixed-radix key of a layer-ℓ cuboid has ℓ terms — bumping the
// total counts and recording the keys into the chunk-sized keys scratch.
// Pass two adds the anomalous counts by walking the anomaly bitset a word
// at a time: full 64-leaf words iterate only their set bits (one
// TrailingZeros per anomalous leaf) instead of testing a bit per leaf, so
// the typical low anomaly rate makes the second pass nearly free.
func (ls *LayerScan) accumulate(fc *fusedCuboid, anomBits []uint64, cs, ce int, tot, anm, keys []int32) {
	base := fc.base
	switch fc.t1 - fc.t0 {
	case 1:
		col0 := ls.termCol[fc.t0]
		s0 := ls.termStride[fc.t0]
		for i := cs; i < ce; i++ {
			k := base + int32(col0[i])*s0
			tot[k]++
			keys[i-cs] = k
		}
	case 2:
		col0, col1 := ls.termCol[fc.t0], ls.termCol[fc.t0+1]
		s0, s1 := ls.termStride[fc.t0], ls.termStride[fc.t0+1]
		for i := cs; i < ce; i++ {
			k := base + int32(col0[i])*s0 + int32(col1[i])*s1
			tot[k]++
			keys[i-cs] = k
		}
	case 3:
		col0, col1, col2 := ls.termCol[fc.t0], ls.termCol[fc.t0+1], ls.termCol[fc.t0+2]
		s0, s1, s2 := ls.termStride[fc.t0], ls.termStride[fc.t0+1], ls.termStride[fc.t0+2]
		for i := cs; i < ce; i++ {
			k := base + int32(col0[i])*s0 + int32(col1[i])*s1 + int32(col2[i])*s2
			tot[k]++
			keys[i-cs] = k
		}
	default:
		for i := cs; i < ce; i++ {
			k := base
			for t := fc.t0; t < fc.t1; t++ {
				k += int32(ls.termCol[t][i]) * ls.termStride[t]
			}
			tot[k]++
			keys[i-cs] = k
		}
	}

	// Anomalous counts: leading and trailing partial words test bit by bit,
	// the aligned middle drains set bits word at a time.
	i := cs
	for ; i < ce && i&63 != 0; i++ {
		if anomBits[i>>6]>>(uint(i)&63)&1 != 0 {
			anm[keys[i-cs]]++
		}
	}
	for ; i+64 <= ce; i += 64 {
		off := i - cs
		for w := anomBits[i>>6]; w != 0; w &= w - 1 {
			anm[keys[off+bits.TrailingZeros64(w)]]++
		}
	}
	for ; i < ce; i++ {
		if anomBits[i>>6]>>(uint(i)&63)&1 != 0 {
			anm[keys[i-cs]]++
		}
	}
}

// Groups appends cuboid ci's non-empty groups into dst (reusing its
// capacity after truncation to zero length), in ascending group index —
// byte-for-byte the output ScanCuboid would produce. Valid only when
// Done(ci) is true.
func (ls *LayerScan) Groups(ci int, dst []GroupCount) []GroupCount {
	dst = dst[:0]
	if ls.cols.n == 0 {
		// No leaves means every accumulator segment is all zeros; skip the
		// per-slot append loop (wide sparse layers pay it per cuboid).
		return dst
	}
	fc := &ls.fcs[ls.fcOf[ci]]
	b := &ls.batches[fc.batch]
	tot := b.tot[fc.base : fc.base+fc.size]
	anm := b.anm[fc.base : fc.base+fc.size]
	for g, v := range tot {
		if v == 0 {
			continue
		}
		dst = append(dst, GroupCount{Group: g, Total: int(v), Anomalous: int(anm[g])})
	}
	return dst
}

// Close returns the accumulator arrays to the pool. The LayerScan must not
// be used afterwards.
func (ls *LayerScan) Close() {
	for bi := range ls.batches {
		b := &ls.batches[bi]
		if b.buf != nil {
			buf := b.buf
			b.buf, b.tot, b.anm, b.done = nil, nil, nil, false
			fusedScratchPool.Put(buf)
		}
	}
}

// ScanPanic wraps a panic captured on a fused-scan worker goroutine so it
// can be rethrown on the calling goroutine with the worker's stack intact
// (a goroutine's panic cannot be recovered by its parent directly).
type ScanPanic struct {
	Val   any
	Stack []byte
}

func (p *ScanPanic) String() string {
	return fmt.Sprintf("%v (from kpi scan worker)", p.Val)
}

// scanTrap captures the first worker panic of a scan pool.
type scanTrap struct {
	once sync.Once
	sp   *ScanPanic
}

// capture must be deferred inside each worker goroutine.
func (t *scanTrap) capture() {
	if r := recover(); r != nil {
		t.once.Do(func() { t.sp = &ScanPanic{Val: r, Stack: debug.Stack()} })
	}
}

// rethrow re-panics on the calling goroutine after the pool's Wait.
func (t *scanTrap) rethrow() {
	if t.sp != nil {
		panic(t.sp)
	}
}
