package kpi

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCuboidsAtLayer(t *testing.T) {
	attrs := []int{0, 1, 2, 3}
	tests := []struct {
		layer int
		want  []Cuboid
	}{
		{1, []Cuboid{{0}, {1}, {2}, {3}}},
		{2, []Cuboid{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}},
		{3, []Cuboid{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}},
		{4, []Cuboid{{0, 1, 2, 3}}},
		{5, nil},
		{0, nil},
	}
	for _, tt := range tests {
		got := CuboidsAtLayer(attrs, tt.layer)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("CuboidsAtLayer(%v, %d) = %v, want %v", attrs, tt.layer, got, tt.want)
		}
	}
}

func TestCuboidsWithGaps(t *testing.T) {
	// After redundant attribute deletion the surviving attribute indexes
	// are not contiguous.
	attrs := []int{0, 3}
	got := AllCuboids(attrs)
	want := []Cuboid{{0}, {3}, {0, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AllCuboids(%v) = %v, want %v", attrs, got, want)
	}
}

func TestAllCuboidsCountMatchesFormula(t *testing.T) {
	// The 4-attribute CDN system has 15 cuboids (Fig. 2 of the paper).
	for n := 1; n <= 8; n++ {
		attrs := make([]int, n)
		for i := range attrs {
			attrs[i] = i
		}
		got := len(AllCuboids(attrs))
		if want := NumCuboids(n); got != want {
			t.Errorf("n=%d: len(AllCuboids) = %d, want %d", n, got, want)
		}
	}
	if NumCuboids(0) != 0 || NumCuboids(-1) != 0 {
		t.Error("NumCuboids of non-positive n should be 0")
	}
}

func TestDecreaseRatioTableIV(t *testing.T) {
	// Table IV of the paper, lower bound (2^k-1)/2^k; the exact values
	// for large n converge to these. The paper reports the bound values.
	wantLower := map[int]float64{1: 0.5, 2: 0.75, 3: 0.875, 4: 0.9375, 5: 0.96875}
	for k, lower := range wantLower {
		// The exact ratio for any n > k must exceed the bound.
		for n := k + 1; n <= 10; n++ {
			got := DecreaseRatio(n, k)
			if got <= lower {
				t.Errorf("DecreaseRatio(%d, %d) = %v, want > %v", n, k, got, lower)
			}
			if got >= 1 {
				t.Errorf("DecreaseRatio(%d, %d) = %v, want < 1", n, k, got)
			}
		}
	}
}

func TestDecreaseRatioEdgeCases(t *testing.T) {
	if got := DecreaseRatio(4, 0); got != 0 {
		t.Errorf("DecreaseRatio(4, 0) = %v, want 0", got)
	}
	if got := DecreaseRatio(0, 1); got != 0 {
		t.Errorf("DecreaseRatio(0, 1) = %v, want 0", got)
	}
	// Deleting all attributes (k = n) leaves zero cuboids: ratio 1.
	if got := DecreaseRatio(4, 4); math.Abs(got-1) > 1e-12 {
		t.Errorf("DecreaseRatio(4, 4) = %v, want 1", got)
	}
	// k > n clamps to n.
	if got := DecreaseRatio(4, 9); math.Abs(got-1) > 1e-12 {
		t.Errorf("DecreaseRatio(4, 9) = %v, want 1", got)
	}
}

func TestDecreaseRatioMonotoneQuick(t *testing.T) {
	// For fixed n the ratio grows with k; for fixed k it shrinks with n.
	f := func(n8, k8 uint8) bool {
		n := int(n8%12) + 2
		k := int(k8%uint8(n-1)) + 1
		return DecreaseRatio(n, k+1) > DecreaseRatio(n, k) &&
			DecreaseRatio(n+1, k) < DecreaseRatio(n, k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCuboidEnumerationAgainstProofOne(t *testing.T) {
	// Proof 1: deleting k of n attributes leaves 2^(n-k)-1 cuboids.
	for n := 2; n <= 7; n++ {
		for k := 1; k < n; k++ {
			attrs := make([]int, n-k)
			for i := range attrs {
				attrs[i] = i
			}
			got := len(AllCuboids(attrs))
			want := NumCuboids(n - k)
			if got != want {
				t.Errorf("n=%d k=%d: %d cuboids, want %d", n, k, got, want)
			}
		}
	}
}
