package kpi

import (
	"encoding/json"
	"fmt"
	"io"
)

// deltaJSON is the wire form of a Delta. Unlike a snapshot document a delta
// never carries a schema — it patches an existing snapshot, so element names
// resolve against the receiver's stored schema and an unknown name is a
// decode error, not a cardinality change (cardinality changes go through a
// fresh snapshot, the FullRebuild fallback).
type deltaJSON struct {
	Removes [][]string `json:"removes,omitempty"`
	Updates []leafJSON `json:"updates,omitempty"`
	Adds    []leafJSON `json:"adds,omitempty"`
}

// WriteDeltaJSON serializes the delta with element names resolved through
// the schema.
func WriteDeltaJSON(w io.Writer, schema *Schema, d Delta) error {
	doc := deltaJSON{
		Removes: make([][]string, len(d.Removes)),
		Updates: make([]leafJSON, len(d.Updates)),
		Adds:    make([]leafJSON, len(d.Adds)),
	}
	for i, c := range d.Removes {
		doc.Removes[i] = comboNames(schema, c)
	}
	for i, u := range d.Updates {
		doc.Updates[i] = leafJSON{
			Combination: comboNames(schema, u.Combo),
			Actual:      u.Actual,
			Forecast:    u.Forecast,
		}
	}
	for i, l := range d.Adds {
		doc.Adds[i] = leafJSON{
			Combination: comboNames(schema, l.Combo),
			Actual:      l.Actual,
			Forecast:    l.Forecast,
			Anomalous:   l.Anomalous,
		}
	}
	if err := json.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("kpi: write delta json: %w", err)
	}
	return nil
}

// ReadDeltaJSON parses a delta written by WriteDeltaJSON, resolving element
// names against the given schema.
func ReadDeltaJSON(r io.Reader, schema *Schema) (Delta, error) {
	var doc deltaJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return Delta{}, fmt.Errorf("kpi: read delta json: %w", err)
	}
	var d Delta
	for i, names := range doc.Removes {
		combo, err := comboFromNames(schema, names)
		if err != nil {
			return Delta{}, fmt.Errorf("kpi: read delta json: remove %d: %w", i, err)
		}
		d.Removes = append(d.Removes, combo)
	}
	for i, row := range doc.Updates {
		combo, err := comboFromNames(schema, row.Combination)
		if err != nil {
			return Delta{}, fmt.Errorf("kpi: read delta json: update %d: %w", i, err)
		}
		d.Updates = append(d.Updates, LeafUpdate{Combo: combo, Actual: row.Actual, Forecast: row.Forecast})
	}
	for i, row := range doc.Adds {
		combo, err := comboFromNames(schema, row.Combination)
		if err != nil {
			return Delta{}, fmt.Errorf("kpi: read delta json: add %d: %w", i, err)
		}
		d.Adds = append(d.Adds, Leaf{
			Combo:     combo,
			Actual:    row.Actual,
			Forecast:  row.Forecast,
			Anomalous: row.Anomalous,
		})
	}
	return d, nil
}

// comboNames maps a fully constrained combination back to element names.
func comboNames(schema *Schema, c Combination) []string {
	names := make([]string, len(c))
	for a, code := range c {
		names[a] = schema.Value(a, code)
	}
	return names
}

// comboFromNames resolves element names into a combination.
func comboFromNames(schema *Schema, names []string) (Combination, error) {
	if len(names) != schema.NumAttributes() {
		return nil, fmt.Errorf("combination has %d elements, schema has %d attributes",
			len(names), schema.NumAttributes())
	}
	combo := make(Combination, len(names))
	for a, name := range names {
		code, ok := schema.Code(a, name)
		if !ok {
			return nil, fmt.Errorf("attribute %q has no element %q", schema.Attribute(a).Name, name)
		}
		combo[a] = code
	}
	return combo, nil
}
