package kpi

import (
	"sort"
	"sync"
)

// GroupCount is one non-empty group of a count-only cuboid scan: the dense
// group index within the cuboid (CuboidIndexer order) plus the support
// counts behind Criteria 2. It carries no materialized Combination — decode
// the group index through the cuboid's indexer only for the rare groups
// that become candidates.
type GroupCount struct {
	// Group is the dense group index within the cuboid.
	Group int
	// Total and Anomalous are support_count_D(ac) and
	// support_count_D(ac, Anomaly) for the group's combination.
	Total, Anomalous int
}

// Confidence returns the group's anomaly confidence (Criteria 2), the same
// division GroupStats.Confidence performs.
func (g GroupCount) Confidence() float64 {
	if g.Total == 0 {
		return 0
	}
	return float64(g.Anomalous) / float64(g.Total)
}

// countScratch pools the dense accumulator arrays of ScanCuboid.
type countScratch struct {
	total     []int32
	anomalous []int32
}

var countScratchPool = sync.Pool{New: func() any { return new(countScratch) }}

func (sc *countScratch) grow(n int) {
	if cap(sc.total) < n {
		sc.total = make([]int32, n)
		sc.anomalous = make([]int32, n)
		return
	}
	sc.total = sc.total[:n]
	sc.anomalous = sc.anomalous[:n]
	clear(sc.total)
	clear(sc.anomalous)
}

// Halt is a cancellation hook polled by long scans: returning true aborts
// the scan. Implementations must be cheap (an atomic load or a deadline
// comparison) and safe for concurrent use — one Halt may be polled from
// several scan workers at once.
type Halt func() bool

// haltStride is how many leaves a scan processes between Halt polls: large
// enough that the poll is free next to the scan work, small enough that a
// multi-million-leaf snapshot still aborts within a fraction of a
// millisecond of the hook tripping.
const haltStride = 4096

// ScanCuboid computes the count-only group-by of one cuboid, appending into
// dst (reusing its capacity after truncation to zero length). Groups are
// returned in ascending group index — the same deterministic order as
// GroupBy — with identical Total/Anomalous counts; only the aggregate KPI
// sums and materialized Combinations are omitted. The accumulators come
// from a sync.Pool, so steady-state scans allocate only when dst grows.
// Safe for concurrent use on one snapshot.
func (s *Snapshot) ScanCuboid(c Cuboid, dst []GroupCount) []GroupCount {
	out, _ := s.ScanCuboidHalt(c, dst, nil)
	return out
}

// ScanCuboidHalt is ScanCuboid with a cancellation hook: halt (when non-nil)
// is polled every haltStride leaves, and a scan it aborts returns
// (dst[:0], false) so callers never mistake a partial scan for a complete
// one. A nil halt never aborts and the result is identical to ScanCuboid.
func (s *Snapshot) ScanCuboidHalt(c Cuboid, dst []GroupCount, halt Halt) ([]GroupCount, bool) {
	dst = dst[:0]
	ix := s.Indexer(c)
	if size := ix.Size(); size < 0 || size > denseGroupByLimit(len(s.Leaves)) {
		return s.scanSparse(ix, dst, halt)
	}
	sc := countScratchPool.Get().(*countScratch)
	sc.grow(ix.Size())
	total, anomalous := sc.total, sc.anomalous
	for i := range s.Leaves {
		if halt != nil && i%haltStride == 0 && i > 0 && halt() {
			countScratchPool.Put(sc)
			return dst, false
		}
		l := &s.Leaves[i]
		g := ix.Index(l.Combo)
		total[g]++
		if l.Anomalous {
			anomalous[g]++
		}
	}
	for g, n := range total {
		if n == 0 {
			continue
		}
		dst = append(dst, GroupCount{Group: g, Total: int(n), Anomalous: int(anomalous[g])})
	}
	countScratchPool.Put(sc)
	return dst, true
}

// scanSparse is the map-based scan used for huge sparse domains.
func (s *Snapshot) scanSparse(ix *CuboidIndexer, dst []GroupCount, halt Halt) ([]GroupCount, bool) {
	pos := make(map[int]int32, 64)
	for i := range s.Leaves {
		if halt != nil && i%haltStride == 0 && i > 0 && halt() {
			return dst[:0], false
		}
		l := &s.Leaves[i]
		g := ix.Index(l.Combo)
		p, ok := pos[g]
		if !ok {
			p = int32(len(dst))
			pos[g] = p
			dst = append(dst, GroupCount{Group: g})
		}
		gc := &dst[p]
		gc.Total++
		if l.Anomalous {
			gc.Anomalous++
		}
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i].Group < dst[j].Group })
	return dst, true
}
