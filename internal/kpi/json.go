package kpi

import (
	"encoding/json"
	"fmt"
	"io"
)

// snapshotJSON is the wire form of a Snapshot: the schema plus one row per
// leaf, with attribute elements by name.
type snapshotJSON struct {
	Attributes []attributeJSON `json:"attributes"`
	Leaves     []leafJSON      `json:"leaves"`
}

type attributeJSON struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

type leafJSON struct {
	Combination []string `json:"combination"`
	Actual      float64  `json:"actual"`
	Forecast    float64  `json:"forecast"`
	Anomalous   bool     `json:"anomalous,omitempty"`
}

// WriteJSON serializes the snapshot as JSON: schema first, then one row per
// leaf with element names.
func WriteJSON(w io.Writer, s *Snapshot) error {
	doc := snapshotJSON{
		Attributes: make([]attributeJSON, s.Schema.NumAttributes()),
		Leaves:     make([]leafJSON, len(s.Leaves)),
	}
	for i := range doc.Attributes {
		a := s.Schema.Attribute(i)
		doc.Attributes[i] = attributeJSON{Name: a.Name, Values: a.Values}
	}
	for i, l := range s.Leaves {
		row := leafJSON{
			Combination: make([]string, len(l.Combo)),
			Actual:      l.Actual,
			Forecast:    l.Forecast,
			Anomalous:   l.Anomalous,
		}
		for a, code := range l.Combo {
			row.Combination[a] = s.Schema.Value(a, code)
		}
		doc.Leaves[i] = row
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("kpi: write json: %w", err)
	}
	return nil
}

// ReadJSON parses a snapshot written by WriteJSON, rebuilding the schema
// from the document.
func ReadJSON(r io.Reader) (*Snapshot, error) {
	var doc snapshotJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("kpi: read json: %w", err)
	}
	attrs := make([]Attribute, len(doc.Attributes))
	for i, a := range doc.Attributes {
		attrs[i] = Attribute{Name: a.Name, Values: a.Values}
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, fmt.Errorf("kpi: read json: %w", err)
	}
	leaves := make([]Leaf, 0, len(doc.Leaves))
	for i, row := range doc.Leaves {
		if len(row.Combination) != schema.NumAttributes() {
			return nil, fmt.Errorf("kpi: read json: leaf %d has %d elements, schema has %d attributes",
				i, len(row.Combination), schema.NumAttributes())
		}
		combo := make(Combination, len(row.Combination))
		for a, name := range row.Combination {
			code, ok := schema.Code(a, name)
			if !ok {
				return nil, fmt.Errorf("kpi: read json: leaf %d: attribute %q has no element %q",
					i, schema.Attribute(a).Name, name)
			}
			combo[a] = code
		}
		leaves = append(leaves, Leaf{
			Combo:     combo,
			Actual:    row.Actual,
			Forecast:  row.Forecast,
			Anomalous: row.Anomalous,
		})
	}
	return NewSnapshot(schema, leaves)
}
