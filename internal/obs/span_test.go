package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestSpanLifecycle(t *testing.T) {
	var logBuf bytes.Buffer
	prev := baseLogger.Load()
	SetLogger(slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug})))
	defer baseLogger.Store(prev)

	ctx, parent := StartSpan(context.Background(), "test.parent")
	_, child := StartSpan(ctx, "test.child")
	child.SetAttr("leaves", 42)
	child.End()
	child.End() // idempotent
	parent.End()

	recent := RecentSpans()
	if len(recent) < 2 {
		t.Fatalf("ring holds %d spans, want >= 2", len(recent))
	}
	// Newest first: parent ended last.
	if recent[0].Name != "test.parent" || recent[1].Name != "test.child" {
		t.Errorf("recent = %q, %q", recent[0].Name, recent[1].Name)
	}
	if recent[1].Parent != "test.parent" {
		t.Errorf("child parent = %q", recent[1].Parent)
	}
	if v, ok := recent[1].Attrs["leaves"]; !ok || v != int64(42) && v != 42 {
		// slog.Any round-trips ints as int64.
		t.Errorf("child attrs = %v", recent[1].Attrs)
	}
	if recent[0].DurationMS < 0 {
		t.Errorf("negative duration %v", recent[0].DurationMS)
	}

	logged := logBuf.String()
	if !strings.Contains(logged, "span=test.child") || !strings.Contains(logged, "component=trace") {
		t.Errorf("span not logged at debug:\n%s", logged)
	}

	// Ending a span observes into the default registry's histogram.
	h := Default().Histogram("span_duration_seconds", "", nil, "span", "test.parent")
	if h.Count() == 0 {
		t.Error("span duration not observed")
	}
}

func TestSpanRingEviction(t *testing.T) {
	r := NewSpanRing(3)
	for i := 0; i < 5; i++ {
		r.append(SpanRecord{Name: string(rune('a' + i))})
	}
	got := r.Recent()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	if got[0].Name != "e" || got[1].Name != "d" || got[2].Name != "c" {
		t.Errorf("recent = %v", got)
	}
	if r.Total() != 5 {
		t.Errorf("total = %d, want 5", r.Total())
	}
}

func TestSpanRingConcurrent(t *testing.T) {
	r := NewSpanRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.append(SpanRecord{Name: "s"})
				_ = r.Recent()
			}
		}()
	}
	wg.Wait()
	if r.Total() != 8*500 {
		t.Errorf("total = %d", r.Total())
	}
}

func TestSpansHandler(t *testing.T) {
	_, s := StartSpan(context.Background(), "handler.span")
	s.End()
	rec := httptest.NewRecorder()
	SpansHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
	var out struct {
		Total int          `json:"total"`
		Spans []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out.Total < 1 || len(out.Spans) == 0 {
		t.Errorf("handler output = %+v", out)
	}
}
