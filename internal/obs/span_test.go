package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestSpanLifecycle(t *testing.T) {
	var logBuf bytes.Buffer
	prev := baseLogger.Load()
	SetLogger(slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug})))
	defer baseLogger.Store(prev)

	ctx, parent := StartSpan(context.Background(), "test.parent")
	_, child := StartSpan(ctx, "test.child")
	child.SetAttr("leaves", 42)
	child.End()
	child.End() // idempotent
	parent.End()

	recent := RecentSpans()
	if len(recent) < 2 {
		t.Fatalf("ring holds %d spans, want >= 2", len(recent))
	}
	// Newest first: parent ended last.
	if recent[0].Name != "test.parent" || recent[1].Name != "test.child" {
		t.Errorf("recent = %q, %q", recent[0].Name, recent[1].Name)
	}
	if recent[1].Parent != "test.parent" {
		t.Errorf("child parent = %q", recent[1].Parent)
	}
	if v, ok := recent[1].Attrs["leaves"]; !ok || v != int64(42) && v != 42 {
		// slog.Any round-trips ints as int64.
		t.Errorf("child attrs = %v", recent[1].Attrs)
	}
	if recent[0].DurationMS < 0 {
		t.Errorf("negative duration %v", recent[0].DurationMS)
	}

	logged := logBuf.String()
	if !strings.Contains(logged, "span=test.child") || !strings.Contains(logged, "component=trace") {
		t.Errorf("span not logged at debug:\n%s", logged)
	}

	// Ending a span observes into the default registry's histogram.
	h := Default().Histogram("span_duration_seconds", "", nil, "span", "test.parent")
	if h.Count() == 0 {
		t.Error("span duration not observed")
	}
}

func TestSpanRingEviction(t *testing.T) {
	r := NewSpanRing(3)
	for i := 0; i < 5; i++ {
		r.append(SpanRecord{Name: string(rune('a' + i))})
	}
	got := r.Recent()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	if got[0].Name != "e" || got[1].Name != "d" || got[2].Name != "c" {
		t.Errorf("recent = %v", got)
	}
	if r.Total() != 5 {
		t.Errorf("total = %d, want 5", r.Total())
	}
}

func TestSpanRingConcurrent(t *testing.T) {
	r := NewSpanRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.append(SpanRecord{Name: "s"})
				_ = r.Recent()
			}
		}()
	}
	wg.Wait()
	if r.Total() != 8*500 {
		t.Errorf("total = %d", r.Total())
	}
}

func TestSpansHandler(t *testing.T) {
	_, s := StartSpan(context.Background(), "handler.span")
	s.End()
	rec := httptest.NewRecorder()
	SpansHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
	var out struct {
		Total int          `json:"total"`
		Spans []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out.Total < 1 || len(out.Spans) == 0 {
		t.Errorf("handler output = %+v", out)
	}
}

func TestSpanTraceInheritance(t *testing.T) {
	// Root span with no trace in context: fresh IDs.
	ctx, root := StartSpan(context.Background(), "trace.root")
	if !isLowerHex(root.TraceID(), 32) || !isLowerHex(root.SpanID(), 16) {
		t.Fatalf("root IDs = %q / %q", root.TraceID(), root.SpanID())
	}

	// Child inherits the trace ID and records the parent span ID.
	cctx, child := StartSpan(ctx, "trace.child")
	_, grandchild := StartSpan(cctx, "trace.grandchild")
	grandchild.End()
	child.End()
	root.End()

	if child.TraceID() != root.TraceID() || grandchild.TraceID() != root.TraceID() {
		t.Errorf("trace IDs differ: root %q child %q grandchild %q",
			root.TraceID(), child.TraceID(), grandchild.TraceID())
	}

	recent := RecentSpans()
	byID := make(map[string]SpanRecord)
	for _, s := range recent {
		byID[s.SpanID] = s
	}
	if got := byID[child.SpanID()]; got.ParentID != root.SpanID() {
		t.Errorf("child parent ID = %q, want %q", got.ParentID, root.SpanID())
	}
	if got := byID[grandchild.SpanID()]; got.ParentID != child.SpanID() {
		t.Errorf("grandchild parent ID = %q, want %q", got.ParentID, child.SpanID())
	}
	if got := byID[root.SpanID()]; got.ParentID != "" {
		t.Errorf("root parent ID = %q, want empty", got.ParentID)
	}

	// A span under an attached TraceContext joins that trace as a child
	// of the remote parent.
	tc := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	_, s := StartSpan(ContextWithTrace(context.Background(), tc), "trace.remote")
	if s.TraceID() != tc.TraceID {
		t.Errorf("span trace = %q, want %q", s.TraceID(), tc.TraceID)
	}
	s.End()
	if got := RecentSpans()[0]; got.ParentID != tc.SpanID {
		t.Errorf("remote parent ID = %q, want %q", got.ParentID, tc.SpanID)
	}
}

func TestSpanRingDroppedCounter(t *testing.T) {
	r := NewSpanRing(2)
	for i := 0; i < 5; i++ {
		r.append(SpanRecord{Name: "s"})
	}
	if r.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", r.Dropped())
	}

	// Wrapping the default ring increments spans_dropped_total.
	prevRing := DefaultSpanRing()
	defer defaultSpanRing.Store(prevRing)
	ConfigureDefaultSpanRing(2)
	before := Default().Counter("spans_dropped_total", "").Value()
	for i := 0; i < 4; i++ {
		_, s := StartSpan(context.Background(), "drop.test")
		s.End()
	}
	if got := Default().Counter("spans_dropped_total", "").Value(); got != before+2 {
		t.Errorf("spans_dropped_total = %v, want %v", got, before+2)
	}
	if DefaultSpanRing().Dropped() != 2 {
		t.Errorf("default ring Dropped = %d, want 2", DefaultSpanRing().Dropped())
	}
}

func TestSpansHandlerTraceFilterAndGrouping(t *testing.T) {
	prevRing := DefaultSpanRing()
	defer defaultSpanRing.Store(prevRing)
	ConfigureDefaultSpanRing(64)

	ctx, parent := StartSpan(context.Background(), "group.parent")
	_, child := StartSpan(ctx, "group.child")
	child.End()
	parent.End()
	_, other := StartSpan(context.Background(), "group.other")
	other.End()

	// ?trace= filters to one trace.
	rec := httptest.NewRecorder()
	SpansHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans?trace="+parent.TraceID(), nil))
	var flat struct {
		Total   int          `json:"total"`
		Dropped int          `json:"dropped"`
		Spans   []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &flat); err != nil {
		t.Fatal(err)
	}
	if len(flat.Spans) != 2 {
		t.Fatalf("filtered spans = %d, want 2", len(flat.Spans))
	}
	for _, s := range flat.Spans {
		if s.TraceID != parent.TraceID() {
			t.Errorf("filtered span has trace %q", s.TraceID)
		}
	}

	// ?group=trace groups spans per trace, oldest first inside a trace.
	rec = httptest.NewRecorder()
	SpansHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans?group=trace", nil))
	var grouped struct {
		Traces []struct {
			TraceID string       `json:"trace_id"`
			Spans   []SpanRecord `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &grouped); err != nil {
		t.Fatal(err)
	}
	if len(grouped.Traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(grouped.Traces))
	}
	// Most recent activity first: the "other" trace ended last.
	if grouped.Traces[0].TraceID != other.TraceID() {
		t.Errorf("first trace = %q, want %q", grouped.Traces[0].TraceID, other.TraceID())
	}
	pt := grouped.Traces[1]
	if pt.TraceID != parent.TraceID() || len(pt.Spans) != 2 {
		t.Fatalf("parent trace grouping = %+v", pt)
	}
	if pt.Spans[0].Name != "group.child" || pt.Spans[1].Name != "group.parent" {
		t.Errorf("trace spans order = %q, %q (want oldest first)", pt.Spans[0].Name, pt.Spans[1].Name)
	}
}
