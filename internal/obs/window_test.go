package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable rollClock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestRollingHistogramWindowQuantile(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	r := NewRollingHistogram([]float64{0.1, 0.5, 1, 5}, time.Second, time.Minute)
	r.now = clk.now

	for i := 0; i < 90; i++ {
		r.Observe(0.05) // all land in the first bucket
	}
	w := r.Window(time.Minute)
	if got := w.Count(); got != 90 {
		t.Fatalf("Count = %d, want 90", got)
	}
	if q := w.Quantile(0.99); q > 0.1 {
		t.Errorf("p99 = %v, want <= 0.1", q)
	}

	// Two minutes later the old observations have aged out of every window
	// the ring can answer.
	clk.advance(2 * time.Minute)
	r.Observe(3) // lands between bounds 1 and 5
	w = r.Window(time.Minute)
	if got := w.Count(); got != 1 {
		t.Fatalf("Count after aging = %d, want 1", got)
	}
	if q := w.Quantile(0.5); q <= 1 || q > 5 {
		t.Errorf("median = %v, want in (1, 5]", q)
	}
}

func TestRollingHistogramPartialWindow(t *testing.T) {
	clk := &fakeClock{t: time.Unix(5_000_000, 0)}
	r := NewRollingHistogram([]float64{1, 10}, time.Second, 5*time.Minute)
	r.now = clk.now

	r.Observe(0.5)
	clk.advance(30 * time.Second)
	r.Observe(0.5)

	// A 10s window sees only the newest observation; 1m sees both.
	if got := r.Window(10 * time.Second).Count(); got != 1 {
		t.Errorf("10s window Count = %d, want 1", got)
	}
	if got := r.Window(time.Minute).Count(); got != 2 {
		t.Errorf("1m window Count = %d, want 2", got)
	}
}

func TestRollingCounterRate(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2_000_000, 0)}
	c := NewRollingCounter(time.Second, 5*time.Minute)
	c.now = clk.now

	for i := 0; i < 60; i++ {
		c.Inc()
		if i < 59 {
			clk.advance(time.Second)
		}
	}
	if got := c.Sum(time.Minute); got != 60 {
		t.Fatalf("Sum(1m) = %v, want 60", got)
	}
	if got := c.Rate(time.Minute); got != 1 {
		t.Errorf("Rate(1m) = %v, want 1", got)
	}
	// After five idle minutes everything has aged out.
	clk.advance(5 * time.Minute)
	if got := c.Sum(5 * time.Minute); got != 0 {
		t.Errorf("Sum after idle = %v, want 0", got)
	}
}

func TestRollingConcurrent(t *testing.T) {
	r := NewRollingHistogram(ExpBuckets(0.001, 2, 12), time.Second, time.Minute)
	c := NewRollingCounter(time.Second, time.Minute)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Observe(0.01)
				c.Inc()
				_ = r.Window(time.Minute).Quantile(0.99)
				_ = c.Rate(time.Minute)
			}
		}()
	}
	wg.Wait()
	if got := r.Window(time.Minute).Count(); got != 4000 {
		t.Errorf("Count = %d, want 4000", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	// 10 observations uniformly in (1, 2].
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got < 1 || got > 2 {
		t.Errorf("median = %v, want in [1, 2]", got)
	}
	h.Observe(100) // +Inf bucket clamps to the highest finite bound
	if got := h.Quantile(1); got != 4 {
		t.Errorf("p100 = %v, want 4", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("ExpBuckets[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ExpBuckets(0, 2, 3) did not panic")
		}
	}()
	ExpBuckets(0, 2, 3)
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.SetExemplarThreshold(0.05)
	h.ObserveExemplar(0.01, "trace-fast") // below threshold: dropped
	h.ObserveExemplar(0.5, "trace-a")
	h.ObserveExemplar(0.7, "trace-b") // replaces trace-a in the same bucket
	h.ObserveExemplar(3, "trace-slow")
	h.ObserveExemplar(0.2, "") // no trace: counts, no exemplar

	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("Exemplars = %v, want 2 entries", ex)
	}
	if ex[0].TraceID != "trace-b" || ex[0].Value != 0.7 {
		t.Errorf("bucket exemplar = %+v, want trace-b/0.7", ex[0])
	}
	if ex[1].TraceID != "trace-slow" {
		t.Errorf("+Inf exemplar = %+v, want trace-slow", ex[1])
	}

	var buf strings.Builder
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# {trace_id="trace-b"} 0.7`) {
		t.Errorf("OpenMetrics exposition lacks trace-b exemplar:\n%s", out)
	}
	if !strings.Contains(out, `# {trace_id="trace-slow"}`) {
		t.Errorf("OpenMetrics exposition lacks trace-slow exemplar:\n%s", out)
	}
	if strings.Contains(out, "trace-fast") {
		t.Errorf("below-threshold exemplar leaked into exposition:\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("OpenMetrics exposition lacks the # EOF terminator:\n%s", out)
	}

	// The classic 0.0.4 format has no exemplar syntax: a trailing `#`
	// would make the official parser fail the whole scrape, so the plain
	// exposition must stay exemplar-free.
	var classic strings.Builder
	if err := r.WritePrometheus(&classic); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(classic.String(), "trace_id") || strings.Contains(classic.String(), " # ") {
		t.Errorf("exemplar leaked into the 0.0.4 exposition:\n%s", classic.String())
	}

	var json strings.Builder
	if err := r.WriteJSON(&json); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(json.String(), `"trace-slow"`) {
		t.Errorf("/debug/vars JSON lacks exemplars:\n%s", json.String())
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r)
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "rapminer_build_info{") || !strings.Contains(out, `go_version="go`) {
		t.Errorf("missing build info gauge:\n%s", out)
	}
	if !strings.Contains(out, "process_start_time_seconds") {
		t.Errorf("missing process_start_time_seconds:\n%s", out)
	}
}
