package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPrometheusExpositionGolden pins the exact exposition text: families
// sorted by name, series by label set, histograms cumulative with +Inf,
// label values escaped.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("api_requests_total", "API requests served.", "method", "GET", "class", "2xx").Add(12)
	r.Counter("api_requests_total", "ignored on re-register", "method", "POST", "class", "5xx").Inc()
	r.Gauge("inflight", "In-flight requests.").Set(3)
	h := r.Histogram("latency_seconds", "Request latency.", []float64{0.1, 0.5, 2.5})
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(10)
	r.Gauge("weird_label", "", "path", `a\b"c`+"\n").Set(1)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP api_requests_total API requests served.
# TYPE api_requests_total counter
api_requests_total{class="2xx",method="GET"} 12
api_requests_total{class="5xx",method="POST"} 1
# HELP inflight In-flight requests.
# TYPE inflight gauge
inflight 3
# HELP latency_seconds Request latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="0.5"} 2
latency_seconds_bucket{le="2.5"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 10.35
latency_seconds_count 3
# TYPE weird_label gauge
weird_label{path="a\\b\"c\n"} 1
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestOpenMetricsExpositionGolden pins the OpenMetrics rendering: counter
// families drop _total on HELP/TYPE while samples keep it, and the
// document ends with # EOF.
func TestOpenMetricsExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("api_requests_total", "API requests served.", "method", "GET").Add(12)
	r.Gauge("inflight", "In-flight requests.").Set(3)
	h := r.Histogram("latency_seconds", "Request latency.", []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.3)

	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP api_requests API requests served.
# TYPE api_requests counter
api_requests_total{method="GET"} 12
# HELP inflight In-flight requests.
# TYPE inflight gauge
inflight 3
# HELP latency_seconds Request latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="0.5"} 2
latency_seconds_bucket{le="+Inf"} 2
latency_seconds_sum 0.35
latency_seconds_count 2
# EOF
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestAcceptsOpenMetrics(t *testing.T) {
	for accept, want := range map[string]bool{
		"":                         false,
		"text/plain;version=0.0.4": false,
		"application/openmetrics-text;version=1.0.0;q=0.5,text/plain;version=0.0.4;q=0.3": true,
		"application/openmetrics-text":                          true,
		"application/openmetrics-text;q=0,text/plain":           false,
		"text/html,application/openmetrics-text; version=1.0.0": true,
	} {
		if got := acceptsOpenMetrics(accept); got != want {
			t.Errorf("acceptsOpenMetrics(%q) = %v, want %v", accept, got, want)
		}
	}
}

func TestWriteJSONVars(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "A counter.", "k", "v").Add(2)
	h := r.Histogram("h_seconds", "", nil)
	h.Observe(1.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]struct {
		Type   string `json:"type"`
		Series []struct {
			Labels map[string]string `json:"labels"`
			Value  *float64          `json:"value"`
			Count  *uint64           `json:"count"`
			Sum    *float64          `json:"sum"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	c := out["c_total"]
	if c.Type != "counter" || len(c.Series) != 1 || c.Series[0].Value == nil || *c.Series[0].Value != 2 {
		t.Errorf("c_total = %+v", c)
	}
	if c.Series[0].Labels["k"] != "v" {
		t.Errorf("labels = %v", c.Series[0].Labels)
	}
	hh := out["h_seconds"]
	if hh.Type != "histogram" || len(hh.Series) != 1 || hh.Series[0].Count == nil || *hh.Series[0].Count != 1 {
		t.Errorf("h_seconds = %+v", hh)
	}
}

func TestHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "").Inc()

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	body, _ := io.ReadAll(rec.Result().Body)
	if !strings.Contains(string(body), "hits_total 1") {
		t.Errorf("metrics body = %s", body)
	}
	if strings.Contains(string(body), "# EOF") {
		t.Errorf("plain exposition carries the OpenMetrics terminator:\n%s", body)
	}

	// A scraper negotiating OpenMetrics gets that format instead.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text;version=1.0.0,text/plain;q=0.5")
	r.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("negotiated content type = %q", ct)
	}
	om, _ := io.ReadAll(rec.Result().Body)
	if !strings.Contains(string(om), "# TYPE hits counter") || !strings.Contains(string(om), "hits_total 1") {
		t.Errorf("OpenMetrics body = %s", om)
	}
	if !strings.HasSuffix(string(om), "# EOF\n") {
		t.Errorf("OpenMetrics body lacks # EOF:\n%s", om)
	}

	rec = httptest.NewRecorder()
	r.VarsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("vars content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"hits_total"`) {
		t.Errorf("vars body = %s", rec.Body.String())
	}
}
