package obs

import (
	"context"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"time"
)

// Go runtime telemetry: a sampling collector that exports goroutine count,
// heap usage, and GC activity into a Registry, so operator dashboards see
// the process's health next to the miner's own metrics. Long-running
// commands (serve, monitor) start one collector on the default registry.

// Runtime metric names exported by the collector.
const (
	MetricGoroutines        = "go_goroutines"
	MetricHeapAllocBytes    = "go_heap_alloc_bytes"
	MetricHeapObjects       = "go_heap_objects"
	MetricHeapSysBytes      = "go_heap_sys_bytes"
	MetricThreads           = "go_threads"
	MetricProcessCPUSeconds = "process_cpu_seconds_total"
	MetricGCCycles          = "go_gc_cycles_total"
	MetricGCPauseSeconds    = "go_gc_pause_seconds"
	MetricRuntimeCollected  = "go_runtime_samples_total"
)

// cpuMetricNames are the runtime/metrics samples the collector reads to
// derive CPU usage portably (no syscalls): time actually spent executing
// is the total CPU-time budget minus the idle class.
const (
	cpuTotalMetric = "/cpu/classes/total:cpu-seconds"
	cpuIdleMetric  = "/cpu/classes/idle:cpu-seconds"
)

// gcPauseBuckets cover the realistic Go GC stop-the-world range, from
// microseconds to the pathological hundreds of milliseconds.
var gcPauseBuckets = []float64{1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5}

// RuntimeCollector samples the Go runtime into a registry.
type RuntimeCollector struct {
	goroutines *Gauge
	heapBytes  *Gauge
	heapObjs   *Gauge
	heapSys    *Gauge
	threads    *Gauge
	cpuSeconds *Counter
	gcCycles   *Counter
	gcPause    *Histogram
	samples    *Counter

	// lastNumGC is the NumGC high-water mark already exported, so each GC
	// cycle's pause is observed exactly once.
	lastNumGC uint32
	// lastCPU is the CPU-seconds reading already exported, so the counter
	// only advances by the delta between samples.
	lastCPU float64
	// cpuSamples is the reusable runtime/metrics read buffer.
	cpuSamples []metrics.Sample
}

// NewRuntimeCollector registers the runtime metric families on reg (nil
// means the default registry) — exposing them at zero immediately — and
// returns a collector ready to sample.
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	if reg == nil {
		reg = Default()
	}
	return &RuntimeCollector{
		goroutines: reg.Gauge(MetricGoroutines, "Number of live goroutines."),
		heapBytes:  reg.Gauge(MetricHeapAllocBytes, "Bytes of allocated heap objects."),
		heapObjs:   reg.Gauge(MetricHeapObjects, "Number of allocated heap objects."),
		heapSys:    reg.Gauge(MetricHeapSysBytes, "Bytes of heap memory obtained from the OS."),
		threads:    reg.Gauge(MetricThreads, "OS threads created by the runtime."),
		cpuSeconds: reg.Counter(MetricProcessCPUSeconds,
			"CPU seconds spent executing (user + runtime, excluding idle)."),
		gcCycles: reg.Counter(MetricGCCycles, "Completed GC cycles."),
		gcPause: reg.Histogram(MetricGCPauseSeconds,
			"Stop-the-world GC pause durations.", gcPauseBuckets),
		samples: reg.Counter(MetricRuntimeCollected, "Runtime telemetry samples taken."),
		cpuSamples: []metrics.Sample{
			{Name: cpuTotalMetric},
			{Name: cpuIdleMetric},
		},
	}
}

// Collect takes one sample: gauges are set to the current values, GC
// cycles completed since the previous sample are counted and their pauses
// observed into the histogram.
func (c *RuntimeCollector) Collect() {
	c.goroutines.Set(float64(runtime.NumGoroutine()))
	c.threads.Set(float64(pprof.Lookup("threadcreate").Count()))

	// CPU usage = total CPU-time budget minus the idle class, both from
	// runtime/metrics so no platform syscalls are needed. The estimates
	// are refreshed by metrics.Read itself; occasional tiny negative
	// deltas (re-estimation) are dropped by Counter.Add.
	metrics.Read(c.cpuSamples)
	if c.cpuSamples[0].Value.Kind() == metrics.KindFloat64 &&
		c.cpuSamples[1].Value.Kind() == metrics.KindFloat64 {
		used := c.cpuSamples[0].Value.Float64() - c.cpuSamples[1].Value.Float64()
		if delta := used - c.lastCPU; delta > 0 {
			c.cpuSeconds.Add(delta)
			c.lastCPU = used
		}
	}

	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	c.heapBytes.Set(float64(m.HeapAlloc))
	c.heapObjs.Set(float64(m.HeapObjects))
	c.heapSys.Set(float64(m.HeapSys))

	if n := m.NumGC - c.lastNumGC; n > 0 {
		c.gcCycles.Add(float64(n))
		// PauseNs is a circular buffer of the last 256 pauses; if more
		// cycles than that elapsed between samples the overwritten ones
		// are lost (the cycle counter still advances by the full n).
		if n > uint32(len(m.PauseNs)) {
			n = uint32(len(m.PauseNs))
		}
		for i := uint32(0); i < n; i++ {
			pause := m.PauseNs[(m.NumGC-i+255)%256]
			c.gcPause.Observe(float64(pause) / 1e9)
		}
		c.lastNumGC = m.NumGC
	}
	c.samples.Inc()
}

// DefaultRuntimeInterval is the sampling period commands use.
const DefaultRuntimeInterval = 10 * time.Second

// StartRuntimeCollector registers the runtime metrics on reg (nil means
// the default registry), takes an immediate first sample, and samples
// every interval (<= 0 means DefaultRuntimeInterval) until ctx is
// canceled.
func StartRuntimeCollector(ctx context.Context, reg *Registry, interval time.Duration) *RuntimeCollector {
	if interval <= 0 {
		interval = DefaultRuntimeInterval
	}
	c := NewRuntimeCollector(reg)
	c.Collect()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.Collect()
			}
		}
	}()
	return c
}
