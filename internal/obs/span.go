package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing: StartSpan opens a named region, End closes it. Every span
// belongs to a trace — inherited from the context (an enclosing span or an
// attached TraceContext) or freshly generated for a root span — so the
// spans of one localization run form a tree reassemblable by trace ID.
// Ended spans are (a) observed into the span_duration_seconds histogram of
// the Default registry, (b) logged at debug level through the "trace"
// component logger, and (c) appended to an in-memory ring buffer served
// over HTTP for post-hoc inspection without a tracing backend.

// spanCtxKey carries the active span through a context for parent linking.
type spanCtxKey struct{}

// Span is one timed region. Not safe for concurrent use; a span belongs to
// the goroutine that started it.
type Span struct {
	name     string
	parent   string // parent span name, for the log line
	traceID  string
	spanID   string
	parentID string
	start    time.Time
	attrs    []slog.Attr
	ended    bool
}

// StartSpan opens a span and returns a derived context carrying it, so
// child spans join the same trace and record their parent. The trace ID is
// taken from the enclosing span, else from a TraceContext attached with
// ContextWithTrace, else freshly generated (the span becomes a trace root).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, spanID: NewSpanID(), start: time.Now()}
	switch {
	case ctx == nil:
		ctx = context.Background()
		s.traceID = NewTraceID()
	default:
		if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok {
			s.parent = parent.name
			s.traceID = parent.traceID
			s.parentID = parent.spanID
		} else if tc, ok := ctx.Value(traceCtxKey{}).(TraceContext); ok && tc.TraceID != "" {
			s.traceID = tc.TraceID
			s.parentID = tc.SpanID
		} else {
			s.traceID = NewTraceID()
		}
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// TraceID returns the span's 32-hex-character trace ID.
func (s *Span) TraceID() string { return s.traceID }

// SpanID returns the span's 16-hex-character ID.
func (s *Span) SpanID() string { return s.spanID }

// SetAttr annotates the span with a key/value pair carried into the log
// record and the ring buffer.
func (s *Span) SetAttr(key string, value any) {
	s.attrs = append(s.attrs, slog.Any(key, value))
}

// End closes the span and publishes it. Repeated calls are no-ops, so
// `defer span.End()` composes with early explicit ends.
func (s *Span) End() {
	if s.ended {
		return
	}
	s.ended = true
	elapsed := time.Since(s.start)

	Default().Histogram("span_duration_seconds",
		"Duration of traced spans by span name.", nil, "span", s.name).
		Observe(elapsed.Seconds())

	rec := SpanRecord{
		Name:       s.name,
		Parent:     s.parent,
		TraceID:    s.traceID,
		SpanID:     s.spanID,
		ParentID:   s.parentID,
		Start:      s.start.UTC(),
		DurationMS: float64(elapsed.Microseconds()) / 1000,
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.Value.Any()
		}
	}
	if DefaultSpanRing().append(rec) {
		droppedSpans().Inc()
	}

	logAttrs := append([]slog.Attr{
		slog.String("span", s.name),
		slog.String("trace_id", s.traceID),
		slog.Duration("elapsed", elapsed),
	}, s.attrs...)
	if s.parent != "" {
		logAttrs = append(logAttrs, slog.String("parent", s.parent))
	}
	Logger("trace").LogAttrs(context.Background(), slog.LevelDebug, "span", logAttrs...)
}

// droppedSpans is the exported eviction counter of the default ring.
func droppedSpans() *Counter {
	return Default().Counter("spans_dropped_total",
		"Spans evicted from the default span ring because it wrapped.")
}

// SpanRecord is one completed span as stored in the ring and served over
// HTTP.
type SpanRecord struct {
	Name       string         `json:"name"`
	Parent     string         `json:"parent,omitempty"`
	TraceID    string         `json:"trace_id"`
	SpanID     string         `json:"span_id"`
	ParentID   string         `json:"parent_id,omitempty"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// SpanRing is a fixed-capacity ring of the most recent completed spans.
type SpanRing struct {
	mu      sync.Mutex
	buf     []SpanRecord
	next    int
	total   int
	dropped int
}

// DefaultSpanCapacity bounds the default ring; roughly a few minutes of
// traffic at production rates, and small enough to dump over HTTP.
const DefaultSpanCapacity = 512

var defaultSpanRing atomic.Pointer[SpanRing]

func init() {
	defaultSpanRing.Store(NewSpanRing(DefaultSpanCapacity))
}

// DefaultSpanRing returns the process-wide ring that StartSpan publishes
// into and SpansHandler serves.
func DefaultSpanRing() *SpanRing { return defaultSpanRing.Load() }

// ConfigureDefaultSpanRing replaces the default ring with a fresh one of
// the given capacity (commands call it once at startup, before traffic;
// previously buffered spans are discarded). It returns the new ring.
func ConfigureDefaultSpanRing(capacity int) *SpanRing {
	r := NewSpanRing(capacity)
	defaultSpanRing.Store(r)
	return r
}

// NewSpanRing builds a ring holding the last capacity spans.
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRing{buf: make([]SpanRecord, 0, capacity)}
}

// append stores rec, reporting whether an older span was evicted.
func (r *SpanRing) append(rec SpanRecord) (evicted bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
		evicted = true
		r.dropped++
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	return evicted
}

// Recent returns the buffered spans, newest first.
func (r *SpanRing) Recent() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, len(r.buf))
	for i := 1; i <= len(r.buf); i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Total returns how many spans were ever appended (including evicted ones).
func (r *SpanRing) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many spans were evicted because the ring wrapped.
func (r *SpanRing) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// RecentSpans returns the default ring's spans, newest first.
func RecentSpans() []SpanRecord { return DefaultSpanRing().Recent() }

// TraceSpans is one trace's spans, oldest first, as rendered by the
// grouped /debug/spans view and the flight recorder's spans artifact.
type TraceSpans struct {
	TraceID string       `json:"trace_id"`
	Spans   []SpanRecord `json:"spans"`
}

// SpansHandler serves the default ring as JSON (mount at GET /debug/spans):
// {"total": N, "dropped": D, "spans": [...]} with spans newest first.
// ?trace=<id> restricts the output to one trace; ?group=trace replaces the
// flat list with {"traces": [...]}, each trace's spans oldest first so the
// tree reads top-down, traces ordered by most recent activity.
func SpansHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ring := DefaultSpanRing()
		spans := ring.Recent()
		if want := r.URL.Query().Get("trace"); want != "" {
			filtered := spans[:0]
			for _, s := range spans {
				if s.TraceID == want {
					filtered = append(filtered, s)
				}
			}
			spans = filtered
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if r.URL.Query().Get("group") == "trace" {
			_ = enc.Encode(struct {
				Total   int          `json:"total"`
				Dropped int          `json:"dropped"`
				Traces  []TraceSpans `json:"traces"`
			}{Total: ring.Total(), Dropped: ring.Dropped(), Traces: GroupSpans(spans)})
			return
		}
		_ = enc.Encode(struct {
			Total   int          `json:"total"`
			Dropped int          `json:"dropped"`
			Spans   []SpanRecord `json:"spans"`
		}{Total: ring.Total(), Dropped: ring.Dropped(), Spans: spans})
	})
}

// GroupSpans buckets newest-first spans by trace ID, preserving recency
// order across traces and flipping each trace's spans oldest-first.
func GroupSpans(spans []SpanRecord) []TraceSpans {
	idx := make(map[string]int)
	out := make([]TraceSpans, 0)
	for _, s := range spans {
		i, ok := idx[s.TraceID]
		if !ok {
			i = len(out)
			idx[s.TraceID] = i
			out = append(out, TraceSpans{TraceID: s.TraceID})
		}
		// Prepend: input is newest first, each trace reads oldest first.
		out[i].Spans = append([]SpanRecord{s}, out[i].Spans...)
	}
	return out
}
