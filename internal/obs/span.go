package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"sync"
	"time"
)

// Span tracing: StartSpan opens a named region, End closes it. Ended spans
// are (a) observed into the span_duration_seconds histogram of the Default
// registry, (b) logged at debug level through the "trace" component logger,
// and (c) appended to an in-memory ring buffer served over HTTP for
// post-hoc inspection without a tracing backend.

// spanCtxKey carries the active span through a context for parent naming.
type spanCtxKey struct{}

// Span is one timed region. Not safe for concurrent use; a span belongs to
// the goroutine that started it.
type Span struct {
	name   string
	parent string
	start  time.Time
	attrs  []slog.Attr
	ended  bool
}

// StartSpan opens a span and returns a derived context carrying it, so
// child spans record their parent's name.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now()}
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok {
		s.parent = parent.name
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SetAttr annotates the span with a key/value pair carried into the log
// record and the ring buffer.
func (s *Span) SetAttr(key string, value any) {
	s.attrs = append(s.attrs, slog.Any(key, value))
}

// End closes the span and publishes it. Repeated calls are no-ops, so
// `defer span.End()` composes with early explicit ends.
func (s *Span) End() {
	if s.ended {
		return
	}
	s.ended = true
	elapsed := time.Since(s.start)

	Default().Histogram("span_duration_seconds",
		"Duration of traced spans by span name.", nil, "span", s.name).
		Observe(elapsed.Seconds())

	rec := SpanRecord{
		Name:       s.name,
		Parent:     s.parent,
		Start:      s.start.UTC(),
		DurationMS: float64(elapsed.Microseconds()) / 1000,
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.Value.Any()
		}
	}
	defaultSpanRing.append(rec)

	logAttrs := append([]slog.Attr{
		slog.String("span", s.name),
		slog.Duration("elapsed", elapsed),
	}, s.attrs...)
	if s.parent != "" {
		logAttrs = append(logAttrs, slog.String("parent", s.parent))
	}
	Logger("trace").LogAttrs(context.Background(), slog.LevelDebug, "span", logAttrs...)
}

// SpanRecord is one completed span as stored in the ring and served over
// HTTP.
type SpanRecord struct {
	Name       string         `json:"name"`
	Parent     string         `json:"parent,omitempty"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// SpanRing is a fixed-capacity ring of the most recent completed spans.
type SpanRing struct {
	mu    sync.Mutex
	buf   []SpanRecord
	next  int
	total int
}

// DefaultSpanCapacity bounds the default ring; roughly a few minutes of
// traffic at production rates, and small enough to dump over HTTP.
const DefaultSpanCapacity = 512

var defaultSpanRing = NewSpanRing(DefaultSpanCapacity)

// NewSpanRing builds a ring holding the last capacity spans.
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRing{buf: make([]SpanRecord, 0, capacity)}
}

func (r *SpanRing) append(rec SpanRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// Recent returns the buffered spans, newest first.
func (r *SpanRing) Recent() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, len(r.buf))
	for i := 1; i <= len(r.buf); i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Total returns how many spans were ever appended (including evicted ones).
func (r *SpanRing) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// RecentSpans returns the default ring's spans, newest first.
func RecentSpans() []SpanRecord { return defaultSpanRing.Recent() }

// SpansHandler serves the default ring as JSON (mount at GET /debug/spans):
// {"total": N, "spans": [...]} with spans newest first.
func SpansHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Total int          `json:"total"`
			Spans []SpanRecord `json:"spans"`
		}{Total: defaultSpanRing.Total(), Spans: RecentSpans()})
	})
}
