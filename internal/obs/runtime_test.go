package obs

import (
	"context"
	"runtime"
	"testing"
	"time"
)

func TestRuntimeCollectorCollect(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	c.Collect()

	if v := reg.Gauge(MetricGoroutines, "").Value(); v < 1 {
		t.Errorf("goroutines = %v, want >= 1", v)
	}
	if v := reg.Gauge(MetricHeapAllocBytes, "").Value(); v <= 0 {
		t.Errorf("heap bytes = %v, want > 0", v)
	}
	if v := reg.Counter(MetricRuntimeCollected, "").Value(); v != 1 {
		t.Errorf("samples = %v, want 1", v)
	}
	if v := reg.Gauge(MetricHeapSysBytes, "").Value(); v <= 0 {
		t.Errorf("heap sys bytes = %v, want > 0", v)
	}
	if v := reg.Gauge(MetricThreads, "").Value(); v < 1 {
		t.Errorf("threads = %v, want >= 1", v)
	}

	// Force GC cycles between samples; the counter must advance and the
	// pause histogram must record them.
	before := reg.Counter(MetricGCCycles, "").Value()
	runtime.GC()
	runtime.GC()
	c.Collect()
	after := reg.Counter(MetricGCCycles, "").Value()
	if after < before+2 {
		t.Errorf("gc cycles %v -> %v, want +2", before, after)
	}
	if n := reg.Histogram(MetricGCPauseSeconds, "", nil).Count(); n < 2 {
		t.Errorf("gc pause observations = %d, want >= 2", n)
	}

	// Collecting again without GC activity must not double-count cycles.
	mid := reg.Counter(MetricGCCycles, "").Value()
	c.Collect()
	if v := reg.Counter(MetricGCCycles, "").Value(); v != mid {
		t.Errorf("gc cycles moved %v -> %v without GC", mid, v)
	}
}

// TestRuntimeCollectorCPUSeconds pins the CPU counter contract: it only
// goes up between samples, and a process that just burned CPU shows a
// positive reading.
func TestRuntimeCollectorCPUSeconds(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	c.Collect()
	// Burn some CPU so the runtime/metrics estimate must move.
	x := 0.0
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		for i := 0; i < 1000; i++ {
			x += float64(i)
		}
	}
	_ = x
	runtime.GC() // refresh the runtime's internal CPU stats
	c.Collect()
	first := reg.Counter(MetricProcessCPUSeconds, "").Value()
	if first <= 0 {
		t.Fatalf("process cpu seconds = %v, want > 0", first)
	}
	c.Collect()
	if v := reg.Counter(MetricProcessCPUSeconds, "").Value(); v < first {
		t.Errorf("cpu counter went down: %v -> %v", first, v)
	}
}

func TestStartRuntimeCollectorSamplesUntilCanceled(t *testing.T) {
	reg := NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	StartRuntimeCollector(ctx, reg, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter(MetricRuntimeCollected, "").Value() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("collector took only %v samples in 2s",
				reg.Counter(MetricRuntimeCollected, "").Value())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	// After cancellation sampling stops.
	time.Sleep(5 * time.Millisecond)
	stopped := reg.Counter(MetricRuntimeCollected, "").Value()
	time.Sleep(20 * time.Millisecond)
	if v := reg.Counter(MetricRuntimeCollected, "").Value(); v != stopped {
		t.Errorf("collector still sampling after cancel: %v -> %v", stopped, v)
	}
}
