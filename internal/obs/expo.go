package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// famView is a consistent copy of one family's structure taken under the
// registry lock. Series pointers are shared with live writers — metric
// reads are atomic, so exposition is consistent per value, not across
// values, which is the usual scrape contract.
type famView struct {
	name    string
	help    string
	kind    metricKind
	ordered []*series
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, series sorted
// by label set, histograms expanded into cumulative _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fam := range r.snapshot() {
		if fam.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.name, escapeHelp(fam.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.kind); err != nil {
			return err
		}
		for _, s := range fam.ordered {
			if err := writeSeries(w, fam, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// snapshot copies the family structure (names and sorted series lists)
// under the registry lock, sorted by family name.
func (r *Registry) snapshot() []famView {
	r.mu.Lock()
	fams := make([]famView, 0, len(r.families))
	for _, f := range r.families {
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make([]*series, 0, len(keys))
		for _, k := range keys {
			ordered = append(ordered, f.series[k])
		}
		fams = append(fams, famView{name: f.name, help: f.help, kind: f.kind, ordered: ordered})
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func writeSeries(w io.Writer, fam famView, s *series) error {
	switch fam.kind {
	case counterKind:
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, formatLabels(s.labels), formatValue(s.counter.Value()))
		return err
	case gaugeKind:
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, formatLabels(s.labels), formatValue(s.gauge.Value()))
		return err
	case histogramKind:
		h := s.hist
		cum := uint64(0)
		for i, ub := range h.upper {
			cum += h.counts[i].Load()
			le := append(append([]string{}, s.labels...), "le", formatValue(ub))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
				fam.name, formatLabels(le), cum, formatExemplar(h.exemplarAt(i))); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.upper)].Load()
		le := append(append([]string{}, s.labels...), "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
			fam.name, formatLabels(le), cum, formatExemplar(h.exemplarAt(len(h.upper)))); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, formatLabels(s.labels), formatValue(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam.name, formatLabels(s.labels), h.Count())
		return err
	}
	return nil
}

// formatLabels renders {k="v",...} or "" for the empty label set. The "le"
// label of histogram buckets is appended last by writeSeries, matching the
// Prometheus client's ordering.
func formatLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a float the way the Prometheus text format expects.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatExemplar renders a bucket's exemplar as an OpenMetrics-style
// suffix (` # {trace_id="..."} value timestamp`), or "" when the bucket
// has none. Classic text-format parsers treat everything after '#' as a
// comment, so the suffix is safe on the 0.0.4 exposition.
func formatExemplar(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s %.3f",
		e.TraceID, formatValue(e.Value), float64(e.Time.UnixMilli())/1000)
}

// varsSeries is the /debug/vars JSON shape of one series.
type varsSeries struct {
	Labels    map[string]string `json:"labels,omitempty"`
	Value     *float64          `json:"value,omitempty"`
	Count     *uint64           `json:"count,omitempty"`
	Sum       *float64          `json:"sum,omitempty"`
	Exemplars []Exemplar        `json:"exemplars,omitempty"`
}

// WriteJSON renders the registry as a {name: {type, help, series: [...]}}
// document — an expvar-style debugging view of the same data /metrics
// exposes.
func (r *Registry) WriteJSON(w io.Writer) error {
	type varsFamily struct {
		Type   string       `json:"type"`
		Help   string       `json:"help,omitempty"`
		Series []varsSeries `json:"series"`
	}
	out := make(map[string]varsFamily)
	for _, fam := range r.snapshot() {
		vf := varsFamily{Type: fam.kind.String(), Help: fam.help, Series: []varsSeries{}}
		for _, s := range fam.ordered {
			vs := varsSeries{}
			if len(s.labels) > 0 {
				vs.Labels = make(map[string]string, len(s.labels)/2)
				for i := 0; i < len(s.labels); i += 2 {
					vs.Labels[s.labels[i]] = s.labels[i+1]
				}
			}
			switch fam.kind {
			case counterKind:
				v := s.counter.Value()
				vs.Value = &v
			case gaugeKind:
				v := s.gauge.Value()
				vs.Value = &v
			case histogramKind:
				c, sum := s.hist.Count(), s.hist.Sum()
				vs.Count = &c
				vs.Sum = &sum
				if ex := s.hist.Exemplars(); len(ex) > 0 {
					vs.Exemplars = ex
				}
			}
			vf.Series = append(vf.Series, vs)
		}
		out[fam.name] = vf
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler serves the registry in Prometheus text format (mount at
// GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// VarsHandler serves the registry as indented JSON (mount at
// GET /debug/vars).
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}
