package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// famView is a consistent copy of one family's structure taken under the
// registry lock. Series pointers are shared with live writers — metric
// reads are atomic, so exposition is consistent per value, not across
// values, which is the usual scrape contract.
type famView struct {
	name    string
	help    string
	kind    metricKind
	ordered []*series
}

// WritePrometheus renders every registered metric in the classic
// Prometheus text exposition format (version 0.0.4): families sorted by
// name, series sorted by label set, histograms expanded into cumulative
// _bucket/_sum/_count. Exemplars are never emitted here — the 0.0.4
// grammar only allows comments at the start of a line and has no exemplar
// syntax, so a trailing `# {...}` would make the official parser reject
// the whole scrape. Scrapers that want exemplars negotiate the OpenMetrics
// format (see WriteOpenMetrics); /debug/vars JSON carries them too.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteOpenMetrics renders the registry in the OpenMetrics text format
// (version 1.0.0): counter families drop the `_total` suffix on their
// HELP/TYPE lines while their samples keep it, histogram buckets carry
// their trace exemplars as `# {trace_id="..."} value ts` suffixes, and the
// document ends with the mandatory `# EOF` terminator.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if err := r.writeExposition(w, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func (r *Registry) writeExposition(w io.Writer, openMetrics bool) error {
	for _, fam := range r.snapshot() {
		famName := fam.name
		if openMetrics && fam.kind == counterKind {
			famName = strings.TrimSuffix(famName, "_total")
		}
		if fam.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", famName, escapeHelp(fam.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", famName, fam.kind); err != nil {
			return err
		}
		for _, s := range fam.ordered {
			if err := writeSeries(w, fam, s, openMetrics); err != nil {
				return err
			}
		}
	}
	return nil
}

// snapshot copies the family structure (names and sorted series lists)
// under the registry lock, sorted by family name.
func (r *Registry) snapshot() []famView {
	r.mu.Lock()
	fams := make([]famView, 0, len(r.families))
	for _, f := range r.families {
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make([]*series, 0, len(keys))
		for _, k := range keys {
			ordered = append(ordered, f.series[k])
		}
		fams = append(fams, famView{name: f.name, help: f.help, kind: f.kind, ordered: ordered})
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func writeSeries(w io.Writer, fam famView, s *series, openMetrics bool) error {
	switch fam.kind {
	case counterKind:
		name := fam.name
		if openMetrics && !strings.HasSuffix(name, "_total") {
			// OpenMetrics counter samples must carry the _total suffix;
			// every counter in this repo already does, so this only fires
			// for out-of-convention names.
			name += "_total"
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, formatLabels(s.labels), formatValue(s.counter.Value()))
		return err
	case gaugeKind:
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, formatLabels(s.labels), formatValue(s.gauge.Value()))
		return err
	case histogramKind:
		h := s.hist
		exemplar := func(i int) string {
			if !openMetrics {
				return ""
			}
			return formatExemplar(h.exemplarAt(i))
		}
		cum := uint64(0)
		for i, ub := range h.upper {
			cum += h.counts[i].Load()
			le := append(append([]string{}, s.labels...), "le", formatValue(ub))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
				fam.name, formatLabels(le), cum, exemplar(i)); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.upper)].Load()
		le := append(append([]string{}, s.labels...), "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
			fam.name, formatLabels(le), cum, exemplar(len(h.upper))); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, formatLabels(s.labels), formatValue(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam.name, formatLabels(s.labels), h.Count())
		return err
	}
	return nil
}

// formatLabels renders {k="v",...} or "" for the empty label set. The "le"
// label of histogram buckets is appended last by writeSeries, matching the
// Prometheus client's ordering.
func formatLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a float the way the Prometheus text format expects.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatExemplar renders a bucket's exemplar as an OpenMetrics suffix
// (` # {trace_id="..."} value timestamp`), or "" when the bucket has none.
// Only the OpenMetrics exposition may carry this — the classic 0.0.4
// grammar has no exemplar syntax and its parsers reject trailing '#'.
func formatExemplar(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s %.3f",
		e.TraceID, formatValue(e.Value), float64(e.Time.UnixMilli())/1000)
}

// varsSeries is the /debug/vars JSON shape of one series.
type varsSeries struct {
	Labels    map[string]string `json:"labels,omitempty"`
	Value     *float64          `json:"value,omitempty"`
	Count     *uint64           `json:"count,omitempty"`
	Sum       *float64          `json:"sum,omitempty"`
	Exemplars []Exemplar        `json:"exemplars,omitempty"`
}

// WriteJSON renders the registry as a {name: {type, help, series: [...]}}
// document — an expvar-style debugging view of the same data /metrics
// exposes.
func (r *Registry) WriteJSON(w io.Writer) error {
	type varsFamily struct {
		Type   string       `json:"type"`
		Help   string       `json:"help,omitempty"`
		Series []varsSeries `json:"series"`
	}
	out := make(map[string]varsFamily)
	for _, fam := range r.snapshot() {
		vf := varsFamily{Type: fam.kind.String(), Help: fam.help, Series: []varsSeries{}}
		for _, s := range fam.ordered {
			vs := varsSeries{}
			if len(s.labels) > 0 {
				vs.Labels = make(map[string]string, len(s.labels)/2)
				for i := 0; i < len(s.labels); i += 2 {
					vs.Labels[s.labels[i]] = s.labels[i+1]
				}
			}
			switch fam.kind {
			case counterKind:
				v := s.counter.Value()
				vs.Value = &v
			case gaugeKind:
				v := s.gauge.Value()
				vs.Value = &v
			case histogramKind:
				c, sum := s.hist.Count(), s.hist.Sum()
				vs.Count = &c
				vs.Sum = &sum
				if ex := s.hist.Exemplars(); len(ex) > 0 {
					vs.Exemplars = ex
				}
			}
			vf.Series = append(vf.Series, vs)
		}
		out[fam.name] = vf
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler serves the registry in Prometheus text format (mount at
// GET /metrics). Scrapers that negotiate OpenMetrics via the Accept
// header (as Prometheus does when exemplar ingestion is enabled) get the
// OpenMetrics exposition with exemplars; everyone else gets the classic
// 0.0.4 format, which cannot legally carry them.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if acceptsOpenMetrics(req.Header.Get("Accept")) {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			_ = r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// acceptsOpenMetrics reports whether an Accept header asks for the
// OpenMetrics text format with a non-zero quality. Full q-value ordering
// is not needed: a scraper that lists application/openmetrics-text at all
// can parse it, and one that cannot never sends it.
func acceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mediaType, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mediaType) != "application/openmetrics-text" {
			continue
		}
		for _, p := range strings.Split(params, ";") {
			if k, v, ok := strings.Cut(strings.TrimSpace(p), "="); ok && strings.TrimSpace(k) == "q" {
				if q, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil && q == 0 {
					return false
				}
			}
		}
		return true
	}
	return false
}

// VarsHandler serves the registry as indented JSON (mount at
// GET /debug/vars).
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}
