package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
)

func TestLoggerComponentConvention(t *testing.T) {
	var buf bytes.Buffer
	prev := baseLogger.Load()
	defer baseLogger.Store(prev)
	ConfigureLogging(&buf, slog.LevelInfo, false)

	Logger("pipeline").Info("incident opened", "id", 7)
	got := buf.String()
	if !strings.Contains(got, "component=pipeline") || !strings.Contains(got, "id=7") {
		t.Errorf("log line = %q", got)
	}
}

func TestConfigureLoggingJSONAndLevel(t *testing.T) {
	var buf bytes.Buffer
	prev := baseLogger.Load()
	defer baseLogger.Store(prev)
	ConfigureLogging(&buf, slog.LevelWarn, true)

	Logger("api").Info("dropped")
	Logger("api").Warn("kept")
	got := buf.String()
	if strings.Contains(got, "dropped") {
		t.Error("info line passed a warn-level handler")
	}
	if !strings.Contains(got, `"component":"api"`) || !strings.Contains(got, `"msg":"kept"`) {
		t.Errorf("JSON log line = %q", got)
	}
}

func TestSetLoggerNilDiscards(t *testing.T) {
	prev := baseLogger.Load()
	defer baseLogger.Store(prev)
	SetLogger(nil)
	// Must not panic.
	Logger("x").Info("goes nowhere")
}

func TestParseLogLevel(t *testing.T) {
	tests := map[string]slog.Level{
		"debug":   slog.LevelDebug,
		"INFO":    slog.LevelInfo,
		"warn":    slog.LevelWarn,
		"warning": slog.LevelWarn,
		"Error":   slog.LevelError,
		"":        slog.LevelInfo,
	}
	for in, want := range tests {
		got, err := ParseLogLevel(in)
		if err != nil {
			t.Errorf("ParseLogLevel(%q) error: %v", in, err)
		}
		if got != want {
			t.Errorf("ParseLogLevel(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseLogLevel("bogus"); err == nil {
		t.Error("ParseLogLevel(bogus) should error")
	}
}
