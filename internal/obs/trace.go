package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// Trace context: every localization run (HTTP request or monitor tick) gets
// a 16-byte trace ID under which all of its spans are grouped, so one run's
// span tree can be reassembled after the fact. The wire format is the W3C
// Trace Context `traceparent` header,
//
//	00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>
//
// accepted and emitted by the httpapi middleware and generated at the
// pipeline for monitor-driven runs.

// TraceContext identifies the trace a unit of work belongs to and the span
// that caused it.
type TraceContext struct {
	// TraceID is 32 lowercase hex characters; never all zeros.
	TraceID string
	// SpanID is the 16-hex-character ID of the parent (caller) span; empty
	// for a trace with no recorded parent.
	SpanID string
	// Sampled mirrors the traceparent sampled flag.
	Sampled bool
}

// traceCtxKey carries a TraceContext through a context.
type traceCtxKey struct{}

// NewTraceID returns a fresh random 32-hex-character trace ID.
func NewTraceID() string { return randomHex(16) }

// NewSpanID returns a fresh random 16-hex-character span ID.
func NewSpanID() string { return randomHex(8) }

// randomHex returns 2n lowercase hex characters from crypto/rand. A zero
// result is regenerated: all-zero IDs are invalid in the W3C format.
func randomHex(n int) string {
	buf := make([]byte, n)
	for {
		if _, err := rand.Read(buf); err != nil {
			panic(fmt.Sprintf("obs: crypto/rand failed: %v", err))
		}
		for _, b := range buf {
			if b != 0 {
				return hex.EncodeToString(buf)
			}
		}
	}
}

// NewTraceContext starts a new sampled trace with no parent span.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: NewTraceID(), Sampled: true}
}

// ParseTraceparent parses a W3C traceparent header value. It accepts the
// version-00 layout, rejecting unknown versions, malformed fields and
// all-zero IDs, so a malformed upstream header falls back to a fresh trace
// instead of poisoning the span tree.
func ParseTraceparent(header string) (TraceContext, error) {
	parts := strings.Split(strings.TrimSpace(header), "-")
	if len(parts) != 4 {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: want 4 dash-separated fields", header)
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if version != "00" {
		return TraceContext{}, fmt.Errorf("obs: traceparent version %q not supported", version)
	}
	if !isLowerHex(traceID, 32) || allZero(traceID) {
		return TraceContext{}, fmt.Errorf("obs: traceparent trace-id %q invalid", traceID)
	}
	if !isLowerHex(spanID, 16) || allZero(spanID) {
		return TraceContext{}, fmt.Errorf("obs: traceparent parent-id %q invalid", spanID)
	}
	if !isLowerHex(flags, 2) {
		return TraceContext{}, fmt.Errorf("obs: traceparent flags %q invalid", flags)
	}
	var f byte
	b, _ := hex.DecodeString(flags)
	f = b[0]
	return TraceContext{TraceID: traceID, SpanID: spanID, Sampled: f&1 == 1}, nil
}

// Traceparent renders the context as a version-00 traceparent header value.
// An empty SpanID is rendered as a fresh span ID, since the wire format has
// no empty-parent form.
func (tc TraceContext) Traceparent() string {
	spanID := tc.SpanID
	if spanID == "" {
		spanID = NewSpanID()
	}
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID + "-" + spanID + "-" + flags
}

// ContextWithTrace returns a context carrying tc. Spans started from the
// result join tc's trace.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext returns the trace context carried by ctx: the active
// span's trace if one is open, else an explicitly attached TraceContext.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	if s, ok := ctx.Value(spanCtxKey{}).(*Span); ok {
		return TraceContext{TraceID: s.traceID, SpanID: s.spanID, Sampled: true}, true
	}
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}

// TraceIDFromContext returns the trace ID carried by ctx, or "".
func TraceIDFromContext(ctx context.Context) string {
	tc, ok := TraceFromContext(ctx)
	if !ok {
		return ""
	}
	return tc.TraceID
}

// isLowerHex reports whether s is exactly n lowercase hex characters.
func isLowerHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// allZero reports whether s consists only of '0'.
func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
