package obs

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"time"
)

// processStart is when this process's obs package initialized — close
// enough to process start for uptime reporting.
var processStart = time.Now()

// ProcessStart returns the recorded process start time.
func ProcessStart() time.Time { return processStart }

// Uptime returns how long the process has been running.
func Uptime() time.Duration { return time.Since(processStart) }

// RegisterBuildInfo exports the process identity block on reg (nil means
// the default registry):
//
//	rapminer_build_info{go_version,module,module_version} 1
//	process_start_time_seconds                            unix seconds
//
// following the Prometheus convention of an always-1 info gauge whose
// labels carry the facts. Module identity comes from
// runtime/debug.ReadBuildInfo; binaries built outside module mode report
// "unknown".
func RegisterBuildInfo(reg *Registry) {
	if reg == nil {
		reg = Default()
	}
	module, version := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			module = bi.Main.Path
		}
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
	}
	reg.Gauge("rapminer_build_info",
		"Build identity of this binary; the value is always 1.",
		"go_version", runtime.Version(),
		"module", module,
		"module_version", version,
	).Set(1)
	reg.Gauge("process_start_time_seconds",
		"Unix time the process started.").
		Set(float64(processStart.UnixNano()) / 1e9)
}

// WithUptime wraps a metrics or vars handler so every scrape first
// refreshes the process_uptime_seconds gauge on reg (nil means the default
// registry) — a current uptime reading without a background ticker.
func WithUptime(reg *Registry, next http.Handler) http.Handler {
	if reg == nil {
		reg = Default()
	}
	uptime := reg.Gauge("process_uptime_seconds",
		"Seconds since the process started, refreshed at scrape time.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		uptime.Set(Uptime().Seconds())
		next.ServeHTTP(w, r)
	})
}
