package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.")
	c.Inc()
	c.Add(2.5)
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 3.5 {
		t.Errorf("Value = %v, want 3.5", got)
	}
	if again := r.Counter("jobs_total", "different help ignored"); again != c {
		t.Error("re-acquiring the series returned a different handle")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("temp", "Temperature.")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Errorf("Value = %v, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-106) > 1e-9 {
		t.Errorf("Sum = %v, want 106", h.Sum())
	}
	// Per-bucket (non-cumulative) counts: (-inf,1]=2, (1,2]=1, (2,4]=1, +Inf=1.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestLabelOrderCanonicalized(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "b", "2", "a", "1")
	b := r.Counter("x_total", "", "a", "1", "b", "2")
	if a != b {
		t.Error("label order created distinct series")
	}
	other := r.Counter("x_total", "", "a", "1", "b", "3")
	if other == a {
		t.Error("different label values shared a series")
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "")
	tests := []struct {
		name string
		f    func()
	}{
		{"bad metric name", func() { r.Counter("bad name", "") }},
		{"odd labels", func() { r.Counter("odd_total", "", "k") }},
		{"bad label name", func() { r.Counter("lbl_total", "", "bad-label", "v") }},
		{"kind clash", func() { r.Gauge("ok_total", "") }},
		{"bad buckets", func() { r.Histogram("h", "", []float64{2, 1}) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tt.f()
		})
	}
}

// TestConcurrentWriters is the -race stress test: many goroutines hammer
// the same and fresh series of all three kinds while scrapers render the
// registry.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		iters   = 2000
	)
	shared := r.Counter("shared_total", "Shared counter.")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lbl := string(rune('a' + id%4))
			for i := 0; i < iters; i++ {
				shared.Inc()
				r.Counter("worker_total", "", "w", lbl).Add(0.5)
				r.Gauge("worker_gauge", "", "w", lbl).Set(float64(i))
				r.Histogram("worker_hist", "", []float64{10, 100, 1000}, "w", lbl).Observe(float64(i))
			}
		}(w)
	}
	// Concurrent scrapers exercise snapshot vs. acquire.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Errorf("WritePrometheus: %v", err)
				}
				if err := r.WriteJSON(&buf); err != nil {
					t.Errorf("WriteJSON: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	if got, want := shared.Value(), float64(workers*iters); got != want {
		t.Errorf("shared counter = %v, want %v", got, want)
	}
	var sum float64
	var observed uint64
	for _, lbl := range []string{"a", "b", "c", "d"} {
		sum += r.Counter("worker_total", "", "w", lbl).Value()
		observed += r.Histogram("worker_hist", "", nil, "w", lbl).Count()
	}
	if want := float64(workers*iters) * 0.5; math.Abs(sum-want) > 1e-6 {
		t.Errorf("worker counters sum = %v, want %v", sum, want)
	}
	if want := uint64(workers * iters); observed != want {
		t.Errorf("histogram observations = %d, want %d", observed, want)
	}
}

func TestDefaultRegistryIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Error("Default not stable")
	}
	c := Default().Counter("obs_test_default_total", "")
	c.Inc()
	var buf bytes.Buffer
	if err := Default().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "obs_test_default_total") {
		t.Error("default registry exposition missing registered metric")
	}
}
