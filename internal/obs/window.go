package obs

import (
	"sync"
	"time"
)

// Sliding-window telemetry: RollingHistogram and RollingCounter keep their
// observations in a ring of fixed-duration time slots, so quantiles and
// rates can be asked "over the last minute" instead of since process start.
// Cumulative metrics (Histogram, Counter) answer "what has ever happened";
// the rolling views answer "what is happening now" — the shape an SLO page
// needs. Both are mutex-guarded: the hot path is one short critical section
// per observation, negligible next to the request work being measured.

// rollClock is the time source, swappable in tests.
type rollClock func() time.Time

// RollingHistogram buckets observations like a Histogram but into a ring of
// time slots, so quantiles can be computed over a recent window only.
type RollingHistogram struct {
	mu      sync.Mutex
	upper   []float64 // finite upper bounds, increasing
	slotDur time.Duration
	slots   []rollSlot
	now     rollClock
}

// rollSlot is one time slice of observations. epoch is the slot's absolute
// index (unix time / slotDur); a slot whose epoch is stale is zeroed before
// reuse.
type rollSlot struct {
	epoch  int64
	counts []uint64
	total  uint64
	sum    float64
}

// NewRollingHistogram builds a rolling histogram with the given finite
// bucket bounds covering at least the span window. The ring holds one extra
// slot beyond span/slotDur so a full window is always available even while
// the newest slot is still filling.
func NewRollingHistogram(bounds []float64, slotDur, span time.Duration) *RollingHistogram {
	if slotDur <= 0 {
		slotDur = time.Second
	}
	n := int(span/slotDur) + 1
	if n < 2 {
		n = 2
	}
	r := &RollingHistogram{
		upper:   bounds,
		slotDur: slotDur,
		slots:   make([]rollSlot, n),
		now:     time.Now,
	}
	for i := range r.slots {
		r.slots[i] = rollSlot{epoch: -1, counts: make([]uint64, len(bounds)+1)}
	}
	return r
}

// slotFor returns the ring slot for the given epoch, zeroing it first if it
// still holds an older epoch's data. Callers hold mu.
func (r *RollingHistogram) slotFor(epoch int64) *rollSlot {
	s := &r.slots[int(epoch%int64(len(r.slots)))]
	if s.epoch != epoch {
		s.epoch = epoch
		clear(s.counts)
		s.total = 0
		s.sum = 0
	}
	return s
}

// Observe records one value into the current time slot.
func (r *RollingHistogram) Observe(v float64) {
	i := 0
	for i < len(r.upper) && v > r.upper[i] {
		i++
	}
	r.mu.Lock()
	s := r.slotFor(r.now().UnixNano() / int64(r.slotDur))
	s.counts[i]++
	s.total++
	s.sum += v
	r.mu.Unlock()
}

// WindowSnapshot is the merged view of a rolling histogram over one window.
type WindowSnapshot struct {
	upper  []float64
	counts []uint64
	total  uint64
	sum    float64
}

// Window merges the slots of the last window duration (including the
// currently filling slot) into one consistent snapshot.
func (r *RollingHistogram) Window(window time.Duration) WindowSnapshot {
	slots := int(window / r.slotDur)
	if slots < 1 {
		slots = 1
	}
	if slots > len(r.slots) {
		slots = len(r.slots)
	}
	snap := WindowSnapshot{upper: r.upper, counts: make([]uint64, len(r.upper)+1)}
	r.mu.Lock()
	newest := r.now().UnixNano() / int64(r.slotDur)
	for e := newest - int64(slots) + 1; e <= newest; e++ {
		s := &r.slots[int(e%int64(len(r.slots)))]
		if s.epoch != e {
			continue // slot is stale or future: outside the window
		}
		for i, c := range s.counts {
			snap.counts[i] += c
		}
		snap.total += s.total
		snap.sum += s.sum
	}
	r.mu.Unlock()
	return snap
}

// Count returns the observations inside the window.
func (s WindowSnapshot) Count() uint64 { return s.total }

// Sum returns the summed observations inside the window.
func (s WindowSnapshot) Sum() float64 { return s.sum }

// Quantile estimates the q-quantile over the window, interpolating inside
// buckets exactly like Histogram.Quantile. 0 when the window is empty.
func (s WindowSnapshot) Quantile(q float64) float64 {
	return bucketQuantile(s.upper, s.counts, s.total, q)
}

// RollingCounter counts events into a ring of time slots so callers can ask
// for the count or rate over a recent window.
type RollingCounter struct {
	mu      sync.Mutex
	slotDur time.Duration
	epochs  []int64
	values  []float64
	now     rollClock
}

// NewRollingCounter builds a rolling counter spanning at least span with
// slotDur resolution.
func NewRollingCounter(slotDur, span time.Duration) *RollingCounter {
	if slotDur <= 0 {
		slotDur = time.Second
	}
	n := int(span/slotDur) + 1
	if n < 2 {
		n = 2
	}
	return &RollingCounter{
		slotDur: slotDur,
		epochs:  make([]int64, n),
		values:  make([]float64, n),
		now:     time.Now,
	}
}

// Add counts delta into the current time slot.
func (r *RollingCounter) Add(delta float64) {
	r.mu.Lock()
	epoch := r.now().UnixNano() / int64(r.slotDur)
	i := int(epoch % int64(len(r.epochs)))
	if r.epochs[i] != epoch {
		r.epochs[i] = epoch
		r.values[i] = 0
	}
	r.values[i] += delta
	r.mu.Unlock()
}

// Inc counts one event.
func (r *RollingCounter) Inc() { r.Add(1) }

// Sum returns the events counted inside the last window duration, including
// the currently filling slot.
func (r *RollingCounter) Sum(window time.Duration) float64 {
	slots := int(window / r.slotDur)
	if slots < 1 {
		slots = 1
	}
	if slots > len(r.epochs) {
		slots = len(r.epochs)
	}
	total := 0.0
	r.mu.Lock()
	newest := r.now().UnixNano() / int64(r.slotDur)
	for e := newest - int64(slots) + 1; e <= newest; e++ {
		i := int(e % int64(len(r.epochs)))
		if r.epochs[i] == e {
			total += r.values[i]
		}
	}
	r.mu.Unlock()
	return total
}

// Rate returns Sum(window) divided by the window in seconds.
func (r *RollingCounter) Rate(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return r.Sum(window) / window.Seconds()
}
