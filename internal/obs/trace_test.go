package obs

import (
	"context"
	"strings"
	"testing"
)

func TestNewTraceIDFormatAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 200; i++ {
		id := NewTraceID()
		if !isLowerHex(id, 32) || allZero(id) {
			t.Fatalf("trace ID %q not 32 lowercase hex", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q after %d draws", id, i)
		}
		seen[id] = true
	}
	spans := make(map[string]bool)
	for i := 0; i < 200; i++ {
		id := NewSpanID()
		if !isLowerHex(id, 16) || allZero(id) {
			t.Fatalf("span ID %q not 16 lowercase hex", id)
		}
		if spans[id] {
			t.Fatalf("duplicate span ID %q", id)
		}
		spans[id] = true
	}
}

func TestParseTraceparentValid(t *testing.T) {
	tc, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	if tc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace ID = %q", tc.TraceID)
	}
	if tc.SpanID != "00f067aa0ba902b7" {
		t.Errorf("span ID = %q", tc.SpanID)
	}
	if !tc.Sampled {
		t.Error("flags 01 should be sampled")
	}

	// Unsampled flags parse too.
	tc, err = ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if err != nil {
		t.Fatal(err)
	}
	if tc.Sampled {
		t.Error("flags 00 should not be sampled")
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"00-short-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-short-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // all-zero parent
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // unknown version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", // bad flags
	}
	for _, h := range bad {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	got, err := ParseTraceparent(tc.Traceparent())
	if err != nil {
		t.Fatal(err)
	}
	if got != tc {
		t.Errorf("round trip = %+v, want %+v", got, tc)
	}

	// An empty parent span ID still renders a valid header.
	root := NewTraceContext()
	if !strings.HasPrefix(root.Traceparent(), "00-"+root.TraceID+"-") {
		t.Errorf("Traceparent() = %q", root.Traceparent())
	}
	if _, err := ParseTraceparent(root.Traceparent()); err != nil {
		t.Errorf("root traceparent invalid: %v", err)
	}
}

func TestTraceContextThroughContext(t *testing.T) {
	tc := NewTraceContext()
	ctx := ContextWithTrace(context.Background(), tc)
	got, ok := TraceFromContext(ctx)
	if !ok || got.TraceID != tc.TraceID {
		t.Fatalf("TraceFromContext = %+v, %v", got, ok)
	}
	if id := TraceIDFromContext(ctx); id != tc.TraceID {
		t.Errorf("TraceIDFromContext = %q", id)
	}
	if _, ok := TraceFromContext(context.Background()); ok {
		t.Error("empty context should carry no trace")
	}
	if TraceIDFromContext(nil) != "" {
		t.Error("nil context should yield empty trace ID")
	}

	// An active span wins over an attached TraceContext and exposes its
	// own IDs.
	sctx, span := StartSpan(ctx, "trace.test")
	defer span.End()
	got, ok = TraceFromContext(sctx)
	if !ok || got.TraceID != tc.TraceID || got.SpanID != span.SpanID() {
		t.Errorf("span context trace = %+v, %v", got, ok)
	}
}
