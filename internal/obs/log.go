package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
)

// The shared logging convention: every package logs through
// obs.Logger("<component>"), which stamps a "component" attribute so one
// stream interleaves all layers and stays filterable. Commands configure
// the stream once at startup with ConfigureLogging.

// baseLogger holds the process-wide *slog.Logger.
var baseLogger atomic.Pointer[slog.Logger]

func init() {
	baseLogger.Store(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo})))
}

// Logger returns the shared logger with the component attribute attached.
// The result is cheap; callers may hold it or re-fetch per call site.
func Logger(component string) *slog.Logger {
	return baseLogger.Load().With(slog.String("component", component))
}

// SetLogger replaces the process-wide base logger (tests, embedders).
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	baseLogger.Store(l)
}

// ConfigureLogging installs a text or JSON slog handler writing to w at the
// given level, and returns the new base logger. Commands call this once
// after flag parsing:
//
//	obs.ConfigureLogging(os.Stderr, obs.ParseLogLevel("info"), false)
func ConfigureLogging(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	l := slog.New(h)
	baseLogger.Store(l)
	return l
}

// ParseLogLevel maps "debug", "info", "warn", "error" (case-insensitive) to
// slog levels. Unknown names report an error so a typo'd -log-level flag
// fails loudly instead of silently running at info.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return slog.LevelInfo, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
	}
}
