// Package obs is the repository's observability layer: a concurrency-safe
// metrics registry with Prometheus text-format exposition, structured
// logging conventions on log/slog, and lightweight span tracing with an
// in-memory ring buffer. It is stdlib-only so every binary in the module
// can depend on it without pulling external dependencies.
//
// The three pillars share one idiom: a process-wide default (Default
// registry, default logger, default span ring) that commands and handlers
// use directly, plus constructors (NewRegistry, Logger, NewSpanRing) for
// tests and embedders that need isolation.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metricKind discriminates the three metric families.
type metricKind int

const (
	counterKind metricKind = iota + 1
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	default:
		return fmt.Sprintf("kind-%d", int(k))
	}
}

// metricNameRE is the Prometheus metric/label name grammar.
var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry holds metric families keyed by name. All methods are safe for
// concurrent use; the returned Counter/Gauge/Histogram handles are lock-free
// on the hot path.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric with its labeled series.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histogram upper bounds, nil otherwise
	series  map[string]*series
}

// series is one (name, labels) time series.
type series struct {
	labels  []string // flattened k1, v1, k2, v2, ... pairs, sorted by key
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry used by Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that package-level helpers and
// the HTTP handlers use.
func Default() *Registry { return defaultRegistry }

// Counter returns (registering on first use) the counter for name with the
// given label pairs. Labels are flattened key/value pairs:
//
//	reg.Counter("http_requests_total", "Requests served.", "method", "GET")
//
// Re-acquiring an existing series returns the same handle; help text is
// fixed by the first registration. It panics on a malformed name, an odd
// label count, or a name already registered with a different kind —
// metric declarations are programmer-controlled, so these are bugs, not
// runtime conditions.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.acquire(name, help, counterKind, nil, labels)
	return s.counter
}

// Gauge returns (registering on first use) the gauge for name and labels.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.acquire(name, help, gaugeKind, nil, labels)
	return s.gauge
}

// Histogram returns (registering on first use) the fixed-bucket histogram
// for name and labels. buckets are upper bounds in increasing order; a
// final +Inf bucket is implicit. Nil buckets means DefBuckets. All series
// of one family share the first registration's buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	s := r.acquire(name, help, histogramKind, buckets, labels)
	return s.hist
}

// DefBuckets are the default histogram buckets, in seconds, matching the
// Prometheus client defaults so dashboards transfer.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

func (r *Registry) acquire(name, help string, kind metricKind, buckets []float64, labels []string) *series {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s: odd label count %d", name, len(labels)))
	}
	labels = sortLabelPairs(labels)
	for i := 0; i < len(labels); i += 2 {
		if !metricNameRE.MatchString(labels[i]) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, labels[i]))
		}
	}
	key := labelKey(labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = fam
	} else if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %s already registered as %s, requested %s", name, fam.kind, kind))
	}
	s, ok := fam.series[key]
	if !ok {
		s = &series{labels: labels}
		switch kind {
		case counterKind:
			s.counter = &Counter{}
		case gaugeKind:
			s.gauge = &Gauge{}
		case histogramKind:
			s.hist = newHistogram(fam.buckets)
		}
		fam.series[key] = s
	}
	return s
}

// sortLabelPairs orders the flattened pairs by label name so that
// ("a","1","b","2") and ("b","2","a","1") address the same series.
func sortLabelPairs(labels []string) []string {
	n := len(labels) / 2
	if n <= 1 {
		return labels
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return labels[2*idx[a]] < labels[2*idx[b]] })
	out := make([]string, 0, len(labels))
	for _, i := range idx {
		out = append(out, labels[2*i], labels[2*i+1])
	}
	return out
}

func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	key := ""
	for i := 0; i < len(labels); i += 2 {
		key += labels[i] + "\x00" + labels[i+1] + "\x00"
	}
	return key
}

// Counter is a monotonically increasing float64. The zero value is ready to
// use, but counters should be obtained from a Registry so they export.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. Negative deltas are ignored: a counter only
// goes up.
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	addFloat(&c.bits, delta)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an arbitrary float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by delta (which may be negative).
func (g *Gauge) Add(delta float64) { addFloat(&g.bits, delta) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat is a lock-free float64 += on uint64 bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets (cumulative on export,
// like Prometheus). Observe is lock-free. Buckets may additionally carry a
// trace exemplar — the most recent trace ID observed into the bucket above
// the exemplar threshold — exported in the OpenMetrics exposition and the
// /debug/vars JSON so a slow bucket on a dashboard resolves to a concrete
// traced request.
type Histogram struct {
	upper   []float64 // finite upper bounds, increasing
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
	// exemplars holds one slot per bucket (incl. +Inf); nil entries mean
	// the bucket has seen no exemplar-worthy observation yet.
	exemplars []atomic.Pointer[Exemplar]
	// exemplarMinBits is the float64 bits of the threshold below which
	// ObserveExemplar does not retain the trace ID (0 retains everything).
	exemplarMinBits atomic.Uint64
}

// Exemplar links one histogram bucket to a concrete traced observation, in
// the spirit of OpenMetrics exemplars.
type Exemplar struct {
	TraceID string    `json:"trace_id"`
	Value   float64   `json:"value"`
	Time    time.Time `json:"time"`
}

func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not increasing at %d: %v", i, buckets))
		}
	}
	return &Histogram{
		upper:     buckets,
		counts:    make([]atomic.Uint64, len(buckets)+1), // final slot is +Inf
		exemplars: make([]atomic.Pointer[Exemplar], len(buckets)+1),
	}
}

// bucketIndex returns the bucket v falls into.
func (h *Histogram) bucketIndex(v float64) int {
	// Buckets are few (≤ ~20); linear scan beats binary search.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// ObserveExemplar records one value and, when traceID is non-empty and v is
// at or above the exemplar threshold, remembers (traceID, v, now) as the
// bucket's exemplar, replacing any earlier one. The exemplar shows up as a
// `# {trace_id="..."}` suffix on the bucket's line when a scraper
// negotiates the OpenMetrics exposition, and always in /debug/vars JSON.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := h.bucketIndex(v)
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
	if traceID == "" || v < math.Float64frombits(h.exemplarMinBits.Load()) {
		return
	}
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v, Time: time.Now()})
}

// SetExemplarThreshold makes ObserveExemplar drop trace IDs for values
// below min, so only observations slow enough to be worth chasing occupy
// the per-bucket exemplar slots. The default threshold is 0 (keep every
// offered exemplar).
func (h *Histogram) SetExemplarThreshold(min float64) {
	h.exemplarMinBits.Store(math.Float64bits(min))
}

// exemplarAt returns bucket i's exemplar, or nil.
func (h *Histogram) exemplarAt(i int) *Exemplar {
	if i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// Exemplars returns the currently retained exemplars, ordered by bucket.
func (h *Histogram) Exemplars() []Exemplar {
	out := make([]Exemplar, 0, len(h.exemplars))
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// FamilyExemplars returns the trace exemplars currently retained across
// every series of the named histogram family, in stable (sorted label set,
// then bucket) order. It returns nil when the family is unknown or not a
// histogram. The flight recorder uses this to resolve the latency
// histogram's exemplar trace IDs into explain reports at capture time.
func (r *Registry) FamilyExemplars(name string) []Exemplar {
	r.mu.Lock()
	fam, ok := r.families[name]
	var hists []*Histogram
	if ok && fam.kind == histogramKind {
		keys := make([]string, 0, len(fam.series))
		for k := range fam.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		hists = make([]*Histogram, 0, len(keys))
		for _, k := range keys {
			hists = append(hists, fam.series[k].hist)
		}
	}
	r.mu.Unlock()
	var out []Exemplar
	for _, h := range hists {
		out = append(out, h.Exemplars()...)
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts by
// linear interpolation inside the bucket the quantile falls into, the same
// estimate Prometheus's histogram_quantile computes. Values in the +Inf
// bucket clamp to the highest finite bound. It returns 0 for an empty
// histogram. The estimate reads the counts atomically but not as one
// consistent snapshot — fine for monitoring, like scraping is.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]uint64, len(h.counts))
	total := uint64(0)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return bucketQuantile(h.upper, counts, total, q)
}

// bucketQuantile interpolates the q-quantile of total observations spread
// over per-bucket (non-cumulative) counts with the given finite upper
// bounds (counts has one extra +Inf slot).
func bucketQuantile(upper []float64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(upper) {
			// +Inf bucket: clamp to the highest finite bound.
			if len(upper) == 0 {
				return 0
			}
			return upper[len(upper)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = upper[i-1]
		}
		if c == 0 {
			return upper[i]
		}
		within := rank - float64(cum-c)
		return lo + (upper[i]-lo)*(within/float64(c))
	}
	return upper[len(upper)-1]
}

// ExpBuckets returns count log-spaced histogram bounds starting at start,
// each factor times the previous — the usual shape for latency histograms
// whose tail matters more than its absolute resolution.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic(fmt.Sprintf("obs: ExpBuckets(%v, %v, %d): need start > 0, factor > 1, count >= 1", start, factor, count))
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
