package svgplot

import (
	"strings"
	"testing"
)

func validBar() *BarChart {
	return &BarChart{
		Title:   "F1 by group",
		YLabel:  "F1",
		XLabels: []string{"(1,1)", "(1,2)"},
		Series: []Series{
			{Name: "RAPMiner", Values: []float64{1, 0.99}},
			{Name: "Squeeze", Values: []float64{0.9, 0.95}},
		},
		YMax: 1,
	}
}

func TestBarChartRender(t *testing.T) {
	var b strings.Builder
	if err := validBar().Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"<svg", "</svg>", "F1 by group", "RAPMiner", "Squeeze", "(1,1)", "<rect",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two series x two groups = four data bars (plus background + legend
	// rects).
	if got := strings.Count(out, "<rect"); got < 4+1+2 {
		t.Errorf("only %d rects", got)
	}
}

func TestBarChartLogAxis(t *testing.T) {
	c := validBar()
	c.LogY = true
	c.YMax = 0
	c.Series = []Series{
		{Name: "fast", Values: []float64{0.0004, 0.0005}},
		{Name: "slow", Values: []float64{0.04, 0.02}},
	}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(b.String(), "1e-") {
		t.Error("log axis has no decade labels")
	}
}

func TestBarChartValidation(t *testing.T) {
	bad := []*BarChart{
		{YLabel: "y", Series: []Series{{Name: "s", Values: []float64{1}}}},
		{XLabels: []string{"a"}},
		{XLabels: []string{"a"}, Series: []Series{{Name: "s", Values: []float64{1, 2}}}},
		{XLabels: []string{"a"}, Series: []Series{{Name: "s", Values: []float64{0}}}, LogY: true},
	}
	for i, c := range bad {
		var b strings.Builder
		if err := c.Render(&b); err == nil {
			t.Errorf("chart %d accepted", i)
		}
	}
}

func TestLineChartRender(t *testing.T) {
	c := &LineChart{
		Title:  "sensitivity",
		XLabel: "t_conf",
		YLabel: "RC@3",
		X:      []float64{0.55, 0.65, 0.75},
		Series: []Series{{Name: "RAPMiner", Values: []float64{0.98, 0.98, 0.97}}},
		YMax:   1,
	}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := b.String()
	for _, want := range []string{"<polyline", "<circle", "t_conf", "0.55"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(out, "<circle"); got != 3 {
		t.Errorf("%d markers, want 3", got)
	}
}

func TestLineChartValidation(t *testing.T) {
	bad := []*LineChart{
		{X: []float64{1}, Series: []Series{{Name: "s", Values: []float64{1}}}},
		{X: []float64{1, 2}},
		{X: []float64{1, 2}, Series: []Series{{Name: "s", Values: []float64{1}}}},
		{X: []float64{2, 2}, Series: []Series{{Name: "s", Values: []float64{1, 2}}}},
	}
	for i, c := range bad {
		var b strings.Builder
		if err := c.Render(&b); err == nil {
			t.Errorf("chart %d accepted", i)
		}
	}
}

func TestEscape(t *testing.T) {
	c := validBar()
	c.Title = `a <b> & "c"`
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if strings.Contains(b.String(), "<b>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(b.String(), "&lt;b&gt; &amp; &quot;c&quot;") {
		t.Error("escaped entities missing")
	}
}

func TestAutoScale(t *testing.T) {
	c := validBar()
	c.YMax = 0
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	// All-zero series still renders with a sane axis.
	z := validBar()
	z.YMax = 0
	z.Series = []Series{{Name: "zero", Values: []float64{0, 0}}}
	b.Reset()
	if err := z.Render(&b); err != nil {
		t.Fatalf("Render zero: %v", err)
	}
}
