// Package svgplot renders the repository's experiment results as
// standalone SVG figures using only the standard library, so
// cmd/experiments can regenerate the paper's figures as actual images:
// grouped bar charts for Fig. 8/9 and line charts for Fig. 10.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// palette holds the series colors (color-blind-safe Okabe-Ito).
var palette = []string{
	"#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9", "#F0E442",
}

// geometry shared by both chart kinds.
const (
	chartWidth   = 860
	chartHeight  = 420
	marginLeft   = 70
	marginRight  = 20
	marginTop    = 50
	marginBottom = 70
	plotWidth    = chartWidth - marginLeft - marginRight
	plotHeight   = chartHeight - marginTop - marginBottom
)

// BarChart is a grouped bar chart: one group per X label, one bar per
// series inside each group.
type BarChart struct {
	Title  string
	YLabel string
	// XLabels name the groups.
	XLabels []string
	// Series maps a legend name to one value per X label.
	Series []Series
	// YMax fixes the Y axis; 0 auto-scales.
	YMax float64
	// LogY renders a log10 Y axis (for runtime charts). All values must
	// be positive.
	LogY bool
}

// Series is one named value sequence.
type Series struct {
	Name   string
	Values []float64
}

// Validate checks shape consistency.
func (c *BarChart) Validate() error {
	if len(c.XLabels) == 0 {
		return fmt.Errorf("svgplot: no x labels")
	}
	if len(c.Series) == 0 {
		return fmt.Errorf("svgplot: no series")
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.XLabels) {
			return fmt.Errorf("svgplot: series %q has %d values, want %d",
				s.Name, len(s.Values), len(c.XLabels))
		}
		if c.LogY {
			for _, v := range s.Values {
				if v <= 0 {
					return fmt.Errorf("svgplot: series %q has non-positive value on a log axis", s.Name)
				}
			}
		}
	}
	return nil
}

// Render writes the chart as an SVG document.
func (c *BarChart) Render(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return err
	}
	b := newBuilder()
	b.header(c.Title)

	yMax := c.YMax
	if yMax == 0 {
		for _, s := range c.Series {
			for _, v := range s.Values {
				yMax = math.Max(yMax, v)
			}
		}
		if yMax == 0 {
			yMax = 1
		}
		yMax *= 1.05
	}
	var yMin float64
	toY := func(v float64) float64 {
		if c.LogY {
			lo, hi := math.Log10(yMin), math.Log10(yMax)
			return marginTop + plotHeight*(1-(math.Log10(v)-lo)/(hi-lo))
		}
		return marginTop + plotHeight*(1-v/yMax)
	}
	if c.LogY {
		yMin = math.Inf(1)
		for _, s := range c.Series {
			for _, v := range s.Values {
				yMin = math.Min(yMin, v)
			}
		}
		yMin /= 2
	}

	// Y axis with ticks.
	b.line(marginLeft, marginTop, marginLeft, marginTop+plotHeight)
	if c.LogY {
		for e := math.Ceil(math.Log10(yMin)); math.Pow(10, e) <= yMax; e++ {
			v := math.Pow(10, e)
			y := toY(v)
			b.tick(y, fmt.Sprintf("1e%d", int(e)))
		}
	} else {
		for i := 0; i <= 5; i++ {
			v := yMax * float64(i) / 5
			b.tick(toY(v), trimFloat(v))
		}
	}
	b.yLabel(c.YLabel)

	// X axis and grouped bars.
	b.line(marginLeft, marginTop+plotHeight, marginLeft+plotWidth, marginTop+plotHeight)
	groupWidth := float64(plotWidth) / float64(len(c.XLabels))
	barSlot := groupWidth * 0.8 / float64(len(c.Series))
	for gi, label := range c.XLabels {
		gx := marginLeft + groupWidth*float64(gi)
		b.xLabel(gx+groupWidth/2, label)
		for si, s := range c.Series {
			v := s.Values[gi]
			x := gx + groupWidth*0.1 + barSlot*float64(si)
			y := toY(math.Max(v, yMinFor(c, yMin)))
			h := float64(marginTop+plotHeight) - y
			if h < 0 {
				h = 0
			}
			b.rect(x, y, barSlot*0.9, h, palette[si%len(palette)])
		}
	}
	b.legend(seriesNames(c.Series))
	b.footer()
	_, err := io.WriteString(w, b.String())
	return err
}

func yMinFor(c *BarChart, yMin float64) float64 {
	if c.LogY {
		return yMin
	}
	return 0
}

// LineChart is a multi-series line chart over numeric X values.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	// YMax fixes the Y axis; 0 auto-scales.
	YMax float64
}

// Validate checks shape consistency.
func (c *LineChart) Validate() error {
	if len(c.X) < 2 {
		return fmt.Errorf("svgplot: need at least 2 x values")
	}
	if len(c.Series) == 0 {
		return fmt.Errorf("svgplot: no series")
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.X) {
			return fmt.Errorf("svgplot: series %q has %d values, want %d",
				s.Name, len(s.Values), len(c.X))
		}
	}
	return nil
}

// Render writes the chart as an SVG document.
func (c *LineChart) Render(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return err
	}
	b := newBuilder()
	b.header(c.Title)

	yMax := c.YMax
	if yMax == 0 {
		for _, s := range c.Series {
			for _, v := range s.Values {
				yMax = math.Max(yMax, v)
			}
		}
		if yMax == 0 {
			yMax = 1
		}
		yMax *= 1.05
	}
	xLo, xHi := c.X[0], c.X[len(c.X)-1]
	if xHi == xLo {
		return fmt.Errorf("svgplot: degenerate x range")
	}
	toX := func(v float64) float64 {
		return marginLeft + float64(plotWidth)*(v-xLo)/(xHi-xLo)
	}
	toY := func(v float64) float64 {
		return marginTop + plotHeight*(1-v/yMax)
	}

	b.line(marginLeft, marginTop, marginLeft, marginTop+plotHeight)
	b.line(marginLeft, marginTop+plotHeight, marginLeft+plotWidth, marginTop+plotHeight)
	for i := 0; i <= 5; i++ {
		v := yMax * float64(i) / 5
		b.tick(toY(v), trimFloat(v))
	}
	for _, x := range c.X {
		b.xLabel(toX(x), trimFloat(x))
	}
	b.yLabel(c.YLabel)
	b.xAxisLabel(c.XLabel)

	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var points []string
		for i, v := range s.Values {
			points = append(points, fmt.Sprintf("%.1f,%.1f", toX(c.X[i]), toY(v)))
		}
		b.polyline(points, color)
		for i, v := range s.Values {
			b.circle(toX(c.X[i]), toY(v), color)
		}
	}
	b.legend(seriesNames(c.Series))
	b.footer()
	_, err := io.WriteString(w, b.String())
	return err
}

func seriesNames(series []Series) []string {
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
	}
	return names
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4g", v)
	return s
}

// builder accumulates SVG elements.
type builder struct {
	strings.Builder
}

func newBuilder() *builder { return &builder{} }

func (b *builder) header(title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n",
		chartWidth, chartHeight)
	fmt.Fprintf(b, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	fmt.Fprintf(b, `<text x="%d" y="28" font-size="17" text-anchor="middle">%s</text>`+"\n",
		chartWidth/2, escape(title))
}

func (b *builder) footer() { b.WriteString("</svg>\n") }

func (b *builder) line(x1, y1, x2, y2 int) {
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", x1, y1, x2, y2)
}

func (b *builder) tick(y float64, label string) {
	fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`+"\n",
		marginLeft, y, marginLeft+plotWidth, y)
	fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
		marginLeft-6, y+4, escape(label))
}

func (b *builder) xLabel(x float64, label string) {
	fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
		x, marginTop+plotHeight+18, escape(label))
}

func (b *builder) xAxisLabel(label string) {
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="13" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotWidth/2, chartHeight-14, escape(label))
}

func (b *builder) yLabel(label string) {
	fmt.Fprintf(b, `<text x="16" y="%d" font-size="13" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		marginTop+plotHeight/2, marginTop+plotHeight/2, escape(label))
}

func (b *builder) rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
		x, y, w, h, fill)
}

func (b *builder) polyline(points []string, stroke string) {
	fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
		strings.Join(points, " "), stroke)
}

func (b *builder) circle(x, y float64, fill string) {
	fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s"/>`+"\n", x, y, fill)
}

func (b *builder) legend(names []string) {
	x := marginLeft + 8
	y := marginTop - 14
	for i, name := range names {
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n",
			x, y, palette[i%len(palette)])
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12">%s</text>`+"\n",
			x+16, y+10, escape(name))
		x += 16 + 8*len(name) + 24
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
