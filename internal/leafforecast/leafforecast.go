// Package leafforecast produces the per-leaf forecast values the
// localization pipeline needs, from observed actuals alone. The paper
// assumes "we can get the corresponding predicted values via some
// prediction methods" (Section III-C); this package is that method: a
// Tracker keeps a bounded history per most fine-grained attribute
// combination and fills in each leaf's forecast with a configurable
// univariate forecaster, handling cold starts and leaves that appear or
// disappear between ticks.
package leafforecast

import (
	"errors"
	"fmt"

	"repro/internal/kpi"
	"repro/internal/timeseries"
)

// Config assembles a Tracker.
type Config struct {
	// Forecaster predicts the next value from a leaf's history window.
	Forecaster timeseries.Forecaster
	// Window is the per-leaf history capacity (ring buffer length).
	Window int
	// MinHistory is the minimum number of observations before the
	// tracker forecasts a leaf; colder leaves get Fallback behavior.
	MinHistory int
}

// DefaultConfig tracks one day of minute samples per leaf and forecasts
// with an EWMA after 30 observations.
func DefaultConfig() Config {
	return Config{
		Forecaster: timeseries.EWMA{Alpha: 0.3},
		Window:     1440,
		MinHistory: 30,
	}
}

// Tracker maintains per-leaf history and produces forecast snapshots. It
// is not safe for concurrent use.
type Tracker struct {
	cfg    Config
	schema *kpi.Schema
	leaves map[string]*ring
}

// New validates the configuration.
func New(schema *kpi.Schema, cfg Config) (*Tracker, error) {
	if schema == nil {
		return nil, errors.New("leafforecast: nil schema")
	}
	if cfg.Forecaster == nil {
		return nil, errors.New("leafforecast: nil forecaster")
	}
	if cfg.Window < 2 {
		return nil, fmt.Errorf("leafforecast: window %d, want >= 2", cfg.Window)
	}
	if cfg.MinHistory < 1 || cfg.MinHistory > cfg.Window {
		return nil, fmt.Errorf("leafforecast: MinHistory %d out of [1, %d]", cfg.MinHistory, cfg.Window)
	}
	return &Tracker{
		cfg:    cfg,
		schema: schema,
		leaves: make(map[string]*ring),
	}, nil
}

// Observe appends the snapshot's actual values to each leaf's history.
// Call it once per tick with healthy (or at least believed-healthy) data;
// during an open incident the caller usually freezes observation so the
// failure does not contaminate the baseline.
func (t *Tracker) Observe(snap *kpi.Snapshot) error {
	if snap == nil {
		return errors.New("leafforecast: nil snapshot")
	}
	if snap.Schema != t.schema {
		return errors.New("leafforecast: snapshot schema differs from tracker schema")
	}
	for i := range snap.Leaves {
		l := &snap.Leaves[i]
		k := l.Combo.Key()
		r, ok := t.leaves[k]
		if !ok {
			r = newRing(t.cfg.Window)
			t.leaves[k] = r
		}
		r.push(l.Actual)
	}
	return nil
}

// Tracked returns the number of leaves with any history.
func (t *Tracker) Tracked() int { return len(t.leaves) }

// Forecast returns a copy of the snapshot whose Forecast values are the
// tracker's one-step-ahead predictions. Leaves with insufficient history
// get their own actual value as the forecast (so they never alarm), and
// the returned count reports how many leaves were genuinely forecast.
func (t *Tracker) Forecast(snap *kpi.Snapshot) (*kpi.Snapshot, int, error) {
	if snap == nil {
		return nil, 0, errors.New("leafforecast: nil snapshot")
	}
	if snap.Schema != t.schema {
		return nil, 0, errors.New("leafforecast: snapshot schema differs from tracker schema")
	}
	out := snap.Clone()
	forecast := 0
	for i := range out.Leaves {
		l := &out.Leaves[i]
		r, ok := t.leaves[l.Combo.Key()]
		if !ok || r.len() < t.cfg.MinHistory {
			l.Forecast = l.Actual // cold start: never alarm
			continue
		}
		pred, err := t.cfg.Forecaster.Forecast(r.values())
		if err != nil {
			// The forecaster needs more history than MinHistory
			// guarantees (e.g. a long seasonal period): degrade to
			// cold-start behavior rather than failing the tick.
			l.Forecast = l.Actual
			continue
		}
		l.Forecast = pred
		forecast++
	}
	return out, forecast, nil
}

// ring is a fixed-capacity append-only window of float64 samples.
type ring struct {
	buf   []float64
	start int
	n     int
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]float64, capacity)}
}

func (r *ring) push(v float64) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.start] = v
	r.start = (r.start + 1) % len(r.buf)
}

func (r *ring) len() int { return r.n }

// values returns the window oldest-first as a fresh slice.
func (r *ring) values() []float64 {
	out := make([]float64, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}
