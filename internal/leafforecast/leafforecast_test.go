package leafforecast

import (
	"math"
	"testing"
	"time"

	"repro/internal/anomaly"
	"repro/internal/cdn"
	"repro/internal/kpi"
	"repro/internal/rapminer"
	"repro/internal/timeseries"
)

func TestNewValidation(t *testing.T) {
	schema := kpi.MustSchema(kpi.Attribute{Name: "A", Values: []string{"x"}})
	bad := []Config{
		{Forecaster: nil, Window: 10, MinHistory: 2},
		{Forecaster: timeseries.EWMA{Alpha: 0.3}, Window: 1, MinHistory: 1},
		{Forecaster: timeseries.EWMA{Alpha: 0.3}, Window: 10, MinHistory: 0},
		{Forecaster: timeseries.EWMA{Alpha: 0.3}, Window: 10, MinHistory: 11},
	}
	for i, cfg := range bad {
		if _, err := New(schema, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestRingWindow(t *testing.T) {
	r := newRing(3)
	if r.len() != 0 {
		t.Fatal("fresh ring not empty")
	}
	for i := 1; i <= 5; i++ {
		r.push(float64(i))
	}
	if r.len() != 3 {
		t.Fatalf("ring len = %d, want 3", r.len())
	}
	got := r.values()
	want := []float64{3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("values = %v, want %v", got, want)
		}
	}
}

func TestColdStartNeverAlarms(t *testing.T) {
	schema := kpi.MustSchema(
		kpi.Attribute{Name: "A", Values: []string{"a1", "a2"}},
	)
	tr, err := New(schema, Config{
		Forecaster: timeseries.EWMA{Alpha: 0.3},
		Window:     10,
		MinHistory: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := kpi.NewSnapshot(schema, []kpi.Leaf{
		{Combo: kpi.Combination{0}, Actual: 100},
		{Combo: kpi.Combination{1}, Actual: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, forecast, err := tr.Forecast(snap)
	if err != nil {
		t.Fatal(err)
	}
	if forecast != 0 {
		t.Fatalf("cold tracker forecast %d leaves", forecast)
	}
	for _, l := range out.Leaves {
		if l.Forecast != l.Actual {
			t.Fatalf("cold leaf forecast %v != actual %v", l.Forecast, l.Actual)
		}
	}
	// The input snapshot is untouched.
	if snap.Leaves[0].Forecast == snap.Leaves[0].Actual && snap.Leaves[0].Forecast != 0 {
		t.Fatal("Forecast mutated its input")
	}
}

func TestForecastConvergesOnStableSignal(t *testing.T) {
	schema := kpi.MustSchema(kpi.Attribute{Name: "A", Values: []string{"a1"}})
	tr, err := New(schema, Config{
		Forecaster: timeseries.EWMA{Alpha: 0.5},
		Window:     32,
		MinHistory: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(v float64) *kpi.Snapshot {
		snap, err := kpi.NewSnapshot(schema, []kpi.Leaf{{Combo: kpi.Combination{0}, Actual: v}})
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	for i := 0; i < 10; i++ {
		if err := tr.Observe(mk(40)); err != nil {
			t.Fatal(err)
		}
	}
	out, forecast, err := tr.Forecast(mk(40))
	if err != nil {
		t.Fatal(err)
	}
	if forecast != 1 {
		t.Fatalf("forecast %d leaves, want 1", forecast)
	}
	if math.Abs(out.Leaves[0].Forecast-40) > 1e-6 {
		t.Fatalf("forecast = %v, want 40", out.Leaves[0].Forecast)
	}
}

func TestSchemaMismatchRejected(t *testing.T) {
	a := kpi.MustSchema(kpi.Attribute{Name: "A", Values: []string{"x"}})
	b := kpi.MustSchema(kpi.Attribute{Name: "A", Values: []string{"x"}})
	tr, err := New(a, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := kpi.NewSnapshot(b, []kpi.Leaf{{Combo: kpi.Combination{0}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe(snap); err == nil {
		t.Error("Observe accepted a foreign schema")
	}
	if _, _, err := tr.Forecast(snap); err == nil {
		t.Error("Forecast accepted a foreign schema")
	}
	if err := tr.Observe(nil); err == nil {
		t.Error("Observe accepted nil")
	}
	if _, _, err := tr.Forecast(nil); err == nil {
		t.Error("Forecast accepted nil")
	}
}

// TestEndToEndWithoutOracleForecasts drives the full realistic pipeline:
// the tracker learns the CDN's behavior from actual observations only,
// then a failure hits, and detection+localization on the tracker's own
// forecasts recovers the failure scope.
func TestEndToEndWithoutOracleForecasts(t *testing.T) {
	sim, err := cdn.NewSimulator(cdn.DefaultConfig(33))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(sim.Schema(), Config{
		Forecaster: timeseries.EWMA{Alpha: 0.4},
		Window:     64,
		MinHistory: 10,
	})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Date(2026, 2, 23, 20, 0, 0, 0, time.UTC)
	for m := 0; m < 20; m++ {
		snap, err := sim.SnapshotAt(start.Add(time.Duration(m) * time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Observe(snap); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Tracked() != sim.NumActiveLeaves() {
		t.Fatalf("tracking %d leaves, want %d", tr.Tracked(), sim.NumActiveLeaves())
	}

	// Failure tick: a site outage, observed values only.
	failing, err := sim.SnapshotAt(start.Add(20 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	scope := kpi.MustParseCombination(sim.Schema(), "(*, *, *, Site9)")
	err = cdn.ApplyFailures(failing, []cdn.Failure{{
		Kind: cdn.SiteOutage, Scope: scope, Severity: 0.7,
	}})
	if err != nil {
		t.Fatal(err)
	}

	withForecasts, forecast, err := tr.Forecast(failing)
	if err != nil {
		t.Fatal(err)
	}
	if forecast < tr.Tracked()*9/10 {
		t.Fatalf("only %d of %d leaves forecast", forecast, tr.Tracked())
	}
	// Detect against the tracker's forecasts (3% simulator noise needs a
	// threshold above it; the 70% drop is far beyond).
	n := anomaly.Label(withForecasts, anomaly.RelativeDeviation{Threshold: 0.3, Eps: 1e-9})
	if n == 0 {
		t.Fatal("no anomalies detected")
	}
	miner := rapminer.MustNew(rapminer.DefaultConfig())
	res, err := miner.Localize(withForecasts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 || !res.Patterns[0].Combo.Equal(scope) {
		t.Fatalf("pipeline localized %s, want (*, *, *, Site9)",
			res.Format(sim.Schema()))
	}
}
