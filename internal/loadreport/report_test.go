package loadreport

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() *Report {
	return &Report{
		Mode:     "open",
		Endpoint: "localize",
		Requests: 100,
		Latency:  LatencySummary{P50MS: 10, P99MS: 40},
	}
}

func writeBaseline(t *testing.T, rep *Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Write(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" || rep.Requests != 100 || rep.Latency.P99MS != 40 {
		t.Fatalf("round trip lost fields: %+v", rep)
	}
}

func TestReadRejectsForeignDocument(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"benchmarks": []}`)); err == nil {
		t.Fatal("accepted a non-loadgen document")
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	path := writeBaseline(t, sample())
	var out bytes.Buffer
	Compare(&out, sample(), path, 1.5)
	if strings.Contains(out.String(), "::warning::") {
		t.Fatalf("identical run warned: %s", out.String())
	}
	if !strings.Contains(out.String(), "within") {
		t.Fatalf("no all-clear line: %s", out.String())
	}
}

func TestCompareFlagsLatencyRegression(t *testing.T) {
	path := writeBaseline(t, sample())
	cur := sample()
	cur.Latency.P99MS = 100 // 2.5x the baseline's 40ms
	var out bytes.Buffer
	Compare(&out, cur, path, 1.5)
	if !strings.Contains(out.String(), "::warning::") || !strings.Contains(out.String(), "p99") {
		t.Fatalf("p99 regression not flagged: %s", out.String())
	}
}

func TestCompareFlagsNewErrors(t *testing.T) {
	path := writeBaseline(t, sample())
	cur := sample()
	cur.ErrorRate = 0.05
	var out bytes.Buffer
	Compare(&out, cur, path, 1.5)
	if !strings.Contains(out.String(), "error rate") {
		t.Fatalf("new errors not flagged: %s", out.String())
	}
}

func TestCompareMissingBaselineIsSoft(t *testing.T) {
	var out bytes.Buffer
	Compare(&out, sample(), filepath.Join(t.TempDir(), "missing.json"), 1.5)
	if !strings.Contains(out.String(), "::warning::") || !strings.Contains(out.String(), "skipping") {
		t.Fatalf("missing baseline not soft-skipped: %s", out.String())
	}
}
