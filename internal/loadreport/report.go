// Package loadreport defines the JSON document cmd/loadgen emits after a
// load run and the advisory baseline comparison cmd/benchjson applies to
// it. It lives outside both commands so the producer, the differ and the
// tests share one schema.
package loadreport

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// LatencySummary is the client-observed latency distribution in
// milliseconds, summarized from a log-bucketed histogram.
type LatencySummary struct {
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// SlowRequest names one of the run's slowest requests by its trace ID, so
// the operator can chase it into the server's /debug/runs/{trace-id} and
// /debug/spans?trace= pages.
type SlowRequest struct {
	TraceID   string  `json:"trace_id"`
	LatencyMS float64 `json:"latency_ms"`
	Status    int     `json:"status"`
}

// Report is the whole load run. Rates are fractions of Requests.
type Report struct {
	// Shape of the run.
	Mode            string  `json:"mode"` // "open" or "closed"
	Endpoint        string  `json:"endpoint"`
	Method          string  `json:"method"`
	TargetQPS       float64 `json:"target_qps,omitempty"` // open loop only
	Concurrency     int     `json:"concurrency"`
	DurationSeconds float64 `json:"duration_seconds"`

	// Outcome.
	Requests      uint64            `json:"requests"`
	ThroughputRPS float64           `json:"throughput_rps"`
	Latency       LatencySummary    `json:"latency"`
	Status        map[string]uint64 `json:"status"` // HTTP status -> count; "error" = no response
	NetErrors     uint64            `json:"net_errors"`
	ErrorRate     float64           `json:"error_rate"` // net errors + 5xx other than 503/504
	Degraded      uint64            `json:"degraded"`
	DegradedRate  float64           `json:"degraded_rate"`
	Rejected503   uint64            `json:"rejected_503"`
	RetryRate     float64           `json:"retry_rate"` // 503-with-Retry-After fraction
	Timeout504    uint64            `json:"timeout_504"`
	TimeoutRate   float64           `json:"timeout_rate"`
	// Dropped counts open-loop sends skipped because the in-flight cap was
	// reached: the server fell behind the offered rate.
	Dropped uint64        `json:"dropped,omitempty"`
	Slowest []SlowRequest `json:"slowest,omitempty"`
}

// Read decodes a report from r.
func Read(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("loadreport: %w", err)
	}
	if rep.Mode == "" && rep.Requests == 0 {
		return nil, fmt.Errorf("loadreport: document has neither mode nor requests; not a loadgen report")
	}
	return &rep, nil
}

// ReadFile decodes a report from a file.
func ReadFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Write encodes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Compare diffs a run against an archived baseline report, emitting GitHub
// `::warning::` lines for latency regressions past the threshold ratio and
// for error/degraded rates that newly appeared. Like the benchmark diff,
// everything is advisory — shared-runner latencies are too noisy for a hard
// gate — so Compare only reports, never fails.
func Compare(w io.Writer, cur *Report, basePath string, threshold float64) {
	base, err := ReadFile(basePath)
	if err != nil {
		fmt.Fprintf(w, "::warning::loadgen baseline %s unreadable (%v); skipping comparison\n", basePath, err)
		return
	}
	warnings := 0
	warnRatio := func(name string, got, want float64) {
		if want > 0 && got > 0 {
			if ratio := got / want; ratio > threshold {
				warnings++
				fmt.Fprintf(w, "::warning::loadgen regression: %s %.1f ms vs baseline %.1f ms (%.2fx, threshold %.2fx)\n",
					name, got, want, ratio, threshold)
			}
		}
	}
	warnRatio("p50", cur.Latency.P50MS, base.Latency.P50MS)
	warnRatio("p99", cur.Latency.P99MS, base.Latency.P99MS)
	// Rate floors, not ratios: a baseline of zero errors makes any ratio
	// meaningless, and a fraction of a percent of new errors is worth a line.
	warnRate := func(name string, got, want float64) {
		if got > want+0.005 {
			warnings++
			fmt.Fprintf(w, "::warning::loadgen regression: %s %.2f%% vs baseline %.2f%%\n",
				name, 100*got, 100*want)
		}
	}
	warnRate("error rate", cur.ErrorRate, base.ErrorRate)
	warnRate("degraded rate", cur.DegradedRate, base.DegradedRate)
	if warnings == 0 {
		fmt.Fprintf(w, "loadgen: run within %.2fx of baseline %s\n", threshold, basePath)
	}
}
