package pipeline

import (
	"testing"
	"time"

	"repro/internal/anomaly"
	"repro/internal/kpi"
	"repro/internal/rapminer"
)

var t0 = time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)

func testSchema() *kpi.Schema {
	return kpi.MustSchema(
		kpi.Attribute{Name: "A", Values: []string{"a1", "a2", "a3"}},
		kpi.Attribute{Name: "B", Values: []string{"b1", "b2"}},
	)
}

// snapshotWithDrop builds a dense snapshot where leaves under scope lose
// frac of their forecast value.
func snapshotWithDrop(t *testing.T, scope kpi.Combination, frac float64) *kpi.Snapshot {
	t.Helper()
	s := testSchema()
	var leaves []kpi.Leaf
	for a := int32(0); a < 3; a++ {
		for b := int32(0); b < 2; b++ {
			combo := kpi.Combination{a, b}
			leaf := kpi.Leaf{Combo: combo, Actual: 100, Forecast: 100}
			if scope != nil && scope.Matches(combo) {
				leaf.Actual = 100 * (1 - frac)
			}
			leaves = append(leaves, leaf)
		}
	}
	snap, err := kpi.NewSnapshot(s, leaves)
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	return snap
}

func testMonitor(t *testing.T) *Monitor {
	t.Helper()
	miner, err := rapminer.New(rapminer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(DefaultConfig(anomaly.DefaultRelativeDeviation(), miner))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	miner := rapminer.MustNew(rapminer.DefaultConfig())
	det := anomaly.DefaultRelativeDeviation()
	bad := []Config{
		{Localizer: miner, K: 3, AlarmThreshold: 0.02, DebounceTicks: 1, ResolveTicks: 1},
		{Detector: det, K: 3, AlarmThreshold: 0.02, DebounceTicks: 1, ResolveTicks: 1},
		{Detector: det, Localizer: miner, K: 0, AlarmThreshold: 0.02, DebounceTicks: 1, ResolveTicks: 1},
		{Detector: det, Localizer: miner, K: 3, AlarmThreshold: 0, DebounceTicks: 1, ResolveTicks: 1},
		{Detector: det, Localizer: miner, K: 3, AlarmThreshold: 0.02, DebounceTicks: 0, ResolveTicks: 1},
		{Detector: det, Localizer: miner, K: 3, AlarmThreshold: 0.02, DebounceTicks: 1, ResolveTicks: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestIncidentLifecycle(t *testing.T) {
	m := testMonitor(t)
	scope := kpi.MustParseCombination(testSchema(), "(a2, *)")

	clean := func() *kpi.Snapshot { return snapshotWithDrop(t, nil, 0) }
	failing := func() *kpi.Snapshot { return snapshotWithDrop(t, scope, 0.5) }

	// Quiet tick.
	ev, err := m.Process(t0, clean())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventTick || m.Current() != nil {
		t.Fatalf("quiet tick produced %v", ev.Kind)
	}

	// First alarming tick: debounce (DebounceTicks = 2).
	ev, err = m.Process(t0.Add(time.Minute), failing())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventArming {
		t.Fatalf("first alarming tick = %v, want arming", ev.Kind)
	}

	// Second alarming tick: incident opens with the localized scope.
	ev, err = m.Process(t0.Add(2*time.Minute), failing())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventOpened || ev.Incident == nil {
		t.Fatalf("second alarming tick = %v", ev.Kind)
	}
	if len(ev.Incident.Scopes) == 0 || !ev.Incident.Scopes[0].Combo.Equal(scope) {
		t.Fatalf("incident scopes = %v, want (a2, *)", ev.Incident.Scopes)
	}
	if m.Current() == nil || m.Current().ID != 1 {
		t.Fatal("incident not tracked")
	}

	// Same failure continues: ongoing, no update.
	ev, err = m.Process(t0.Add(3*time.Minute), failing())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventOngoing || ev.Incident.Updates != 0 {
		t.Fatalf("continuation = %v (updates %d)", ev.Kind, ev.Incident.Updates)
	}

	// The failure scope changes: update.
	scope2 := kpi.MustParseCombination(testSchema(), "(a3, *)")
	ev, err = m.Process(t0.Add(4*time.Minute), snapshotWithDrop(t, scope2, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventUpdated || ev.Incident.Updates != 1 {
		t.Fatalf("scope change = %v (updates %d)", ev.Kind, ev.Incident.Updates)
	}

	// Three clean ticks (ResolveTicks = 3): first two ongoing, third
	// resolves.
	for i := 0; i < 2; i++ {
		ev, err = m.Process(t0.Add(time.Duration(5+i)*time.Minute), clean())
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != EventOngoing {
			t.Fatalf("clean tick %d = %v, want ongoing", i, ev.Kind)
		}
	}
	ev, err = m.Process(t0.Add(7*time.Minute), clean())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventResolved || ev.Incident == nil || ev.Incident.ResolvedAt.IsZero() {
		t.Fatalf("resolve tick = %v", ev.Kind)
	}
	if m.Current() != nil {
		t.Fatal("incident still open after resolve")
	}

	// A new failure opens incident #2.
	m.Process(t0.Add(8*time.Minute), failing())
	ev, err = m.Process(t0.Add(9*time.Minute), failing())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventOpened || ev.Incident.ID != 2 {
		t.Fatalf("second incident = %v id %d", ev.Kind, ev.Incident.ID)
	}
}

func TestBlipDoesNotOpenIncident(t *testing.T) {
	m := testMonitor(t)
	scope := kpi.MustParseCombination(testSchema(), "(a1, *)")
	// One alarming tick, then clean: the debounce suppresses it.
	if ev, _ := m.Process(t0, snapshotWithDrop(t, scope, 0.5)); ev.Kind != EventArming {
		t.Fatalf("blip tick = %v", ev.Kind)
	}
	if ev, _ := m.Process(t0.Add(time.Minute), snapshotWithDrop(t, nil, 0)); ev.Kind != EventTick {
		t.Fatalf("post-blip tick = %v", ev.Kind)
	}
	if m.Current() != nil {
		t.Fatal("blip opened an incident")
	}
}

func TestProcessNilSnapshot(t *testing.T) {
	m := testMonitor(t)
	if _, err := m.Process(t0, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EventTick, EventArming, EventOpened, EventUpdated, EventOngoing, EventResolved}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad name %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind has empty name")
	}
}
