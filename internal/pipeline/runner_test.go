package pipeline

import (
	"errors"
	"testing"
	"time"

	"repro/internal/anomaly"
	"repro/internal/cdn"
	"repro/internal/kpi"
	"repro/internal/rapminer"
)

// failingSource injects a 50% drop under a fixed scope from a given tick
// onward, wrapping the CDN simulator.
type failingSource struct {
	sim   *cdn.Simulator
	scope kpi.Combination
	from  time.Time
}

func (f *failingSource) Schema() *kpi.Schema { return f.sim.Schema() }

func (f *failingSource) SnapshotAt(ts time.Time) (*kpi.Snapshot, error) {
	snap, err := f.sim.SnapshotAt(ts)
	if err != nil {
		return nil, err
	}
	if !ts.Before(f.from) {
		err = cdn.ApplyFailures(snap, []cdn.Failure{{
			Kind:     cdn.NodeOutage,
			Scope:    f.scope,
			Severity: 0.5,
		}})
		if err != nil {
			return nil, err
		}
	}
	return snap, nil
}

func TestRunnerDetectsInjectedOutage(t *testing.T) {
	sim, err := cdn.NewSimulator(cdn.DefaultConfig(61))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2026, 3, 2, 21, 0, 0, 0, time.UTC)
	scope := kpi.MustParseCombination(sim.Schema(), "(L3, *, *, *)")
	src := &failingSource{sim: sim, scope: scope, from: start.Add(5 * time.Minute)}

	miner := rapminer.MustNew(rapminer.DefaultConfig())
	cfg := DefaultConfig(anomaly.DefaultRelativeDeviation(), miner)
	// A single location carries only a few percent of the CDN's traffic;
	// halving it moves the aggregate by ~1%, so the production default of
	// 2% would (correctly) not alarm. Use a tighter aggregate threshold.
	cfg.AlarmThreshold = 0.005
	monitor, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := StartRunner(monitor, src, start, time.Minute, 0 /* as fast as possible */, 12)
	if err != nil {
		t.Fatalf("StartRunner: %v", err)
	}

	var opened *Incident
	for ev := range runner.Events() {
		if ev.Kind == EventOpened {
			opened = ev.Incident
		}
	}
	if err := runner.Err(); err != nil {
		t.Fatalf("runner error: %v", err)
	}
	if opened == nil {
		t.Fatal("no incident opened over the failure window")
	}
	if len(opened.Scopes) == 0 || !opened.Scopes[0].Combo.Equal(scope) {
		t.Fatalf("incident scope = %v, want (L3, *, *, *)", opened.Scopes)
	}
	runner.Stop() // idempotent after natural exit
}

func TestRunnerStopInterruptsLoop(t *testing.T) {
	sim, err := cdn.NewSimulator(cdn.DefaultConfig(62))
	if err != nil {
		t.Fatal(err)
	}
	src := &failingSource{sim: sim, scope: kpi.NewRoot(4), from: time.Now().Add(time.Hour)}
	monitor, err := New(DefaultConfig(anomaly.DefaultRelativeDeviation(),
		rapminer.MustNew(rapminer.DefaultConfig())))
	if err != nil {
		t.Fatal(err)
	}
	runner, err := StartRunner(monitor, src, time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC),
		time.Minute, time.Millisecond, 0 /* unbounded */)
	if err != nil {
		t.Fatalf("StartRunner: %v", err)
	}
	// Receive a couple of events, then stop; the channel must close.
	<-runner.Events()
	runner.Stop()
	for range runner.Events() {
		// drain whatever was in flight
	}
	if err := runner.Err(); err != nil {
		t.Fatalf("runner error: %v", err)
	}
}

type brokenSource struct{ schema *kpi.Schema }

func (b *brokenSource) Schema() *kpi.Schema { return b.schema }
func (b *brokenSource) SnapshotAt(time.Time) (*kpi.Snapshot, error) {
	return nil, errors.New("source down")
}

func TestRunnerSurfacesSourceErrors(t *testing.T) {
	monitor, err := New(DefaultConfig(anomaly.DefaultRelativeDeviation(),
		rapminer.MustNew(rapminer.DefaultConfig())))
	if err != nil {
		t.Fatal(err)
	}
	src := &brokenSource{schema: testSchema()}
	runner, err := StartRunner(monitor, src, t0, time.Minute, 0, 3)
	if err != nil {
		t.Fatalf("StartRunner: %v", err)
	}
	for range runner.Events() {
	}
	if err := runner.Err(); err == nil {
		t.Fatal("source error not surfaced")
	}
}

func TestStartRunnerValidation(t *testing.T) {
	monitor, _ := New(DefaultConfig(anomaly.DefaultRelativeDeviation(),
		rapminer.MustNew(rapminer.DefaultConfig())))
	src := &brokenSource{schema: testSchema()}
	if _, err := StartRunner(nil, src, t0, time.Minute, 0, 1); err == nil {
		t.Error("nil monitor accepted")
	}
	if _, err := StartRunner(monitor, nil, t0, time.Minute, 0, 1); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := StartRunner(monitor, src, t0, 0, 0, 1); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := StartRunner(monitor, src, t0, time.Minute, 0, -1); err == nil {
		t.Error("negative ticks accepted")
	}
}
