package pipeline

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/kpi"
	"repro/internal/localize"
	"repro/internal/obs"
)

// blockingLocalizer counts into started and blocks every Localize call
// until release is closed, so tests can hold the executor's slots at will.
type blockingLocalizer struct {
	started chan struct{}
	release chan struct{}
}

func (l *blockingLocalizer) Name() string { return "blocking" }

func (l *blockingLocalizer) Localize(s *kpi.Snapshot, k int) (localize.Result, error) {
	l.started <- struct{}{}
	<-l.release
	return localize.Result{}, nil
}

// indexLocalizer returns a distinguishable result per snapshot, so
// positional integrity is checkable.
type indexLocalizer struct{}

func (indexLocalizer) Name() string { return "index" }

func (indexLocalizer) Localize(s *kpi.Snapshot, k int) (localize.Result, error) {
	if s.Len() == 1 {
		return localize.Result{}, errors.New("single-leaf snapshot rejected")
	}
	// Tag the result with the snapshot's leaf count so positional
	// integrity is checkable.
	return localize.Result{Patterns: []localize.ScoredPattern{{Score: float64(s.Len())}}}, nil
}

// batchSnapshots builds n snapshots with distinct leaf counts (2, 3, ...).
func batchSnapshots(t *testing.T, n int) []*kpi.Snapshot {
	t.Helper()
	out := make([]*kpi.Snapshot, n)
	for i := range out {
		out[i] = batchSnapshot(t, i+2)
	}
	return out
}

func batchSnapshot(t *testing.T, leaves int) *kpi.Snapshot {
	t.Helper()
	vals := make([]string, leaves)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%d", i)
	}
	s := kpi.MustSchema(kpi.Attribute{Name: "a", Values: vals})
	ls := make([]kpi.Leaf, leaves)
	for i := range ls {
		ls[i] = kpi.Leaf{Combo: kpi.Combination{int32(i)}, Actual: 1, Forecast: 1}
	}
	snap, err := kpi.NewSnapshot(s, ls)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestBatchExecutorPositionalResults(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewBatchExecutor(reg, 4, -1)
	snaps := batchSnapshots(t, 6)
	snaps = append([]*kpi.Snapshot{batchSnapshot(t, 1)}, snaps...) // item 0 errors
	results, err := e.Execute(context.Background(), indexLocalizer{}, snaps, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(snaps) {
		t.Fatalf("%d results, want %d", len(results), len(snaps))
	}
	if results[0].Err == nil {
		t.Error("item 0 should have failed")
	}
	for i := 1; i < len(results); i++ {
		if results[i].Err != nil {
			t.Fatalf("item %d: %v", i, results[i].Err)
		}
		if want := float64(snaps[i].Len()); results[i].Result.Patterns[0].Score != want {
			t.Errorf("item %d: score %v, want %v", i, results[i].Result.Patterns[0].Score, want)
		}
	}
	if got := e.pending.Load(); got != 0 {
		t.Errorf("pending = %d after completion, want 0", got)
	}
}

func TestBatchExecutorBackpressure(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewBatchExecutor(reg, 1, 0) // capacity: 1 item total
	if e.Capacity() != 1 {
		t.Fatalf("capacity = %d, want 1", e.Capacity())
	}
	bl := &blockingLocalizer{started: make(chan struct{}, 1), release: make(chan struct{})}
	first := make(chan []localize.BatchResult, 1)
	go func() {
		res, err := e.Execute(context.Background(), bl, batchSnapshots(t, 1), 3)
		if err != nil {
			t.Error(err)
		}
		first <- res
	}()
	<-bl.started // first batch holds the only slot

	if _, err := e.Execute(context.Background(), indexLocalizer{}, batchSnapshots(t, 1), 3); !errors.Is(err, ErrBatchBusy) {
		t.Fatalf("second batch error = %v, want ErrBatchBusy", err)
	}

	close(bl.release)
	res := <-first
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("first batch results = %+v", res)
	}
	// Capacity is free again.
	if _, err := e.Execute(context.Background(), indexLocalizer{}, batchSnapshots(t, 1), 3); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestBatchExecutorOversizedBatchRejected(t *testing.T) {
	e := NewBatchExecutor(obs.NewRegistry(), 2, 1) // capacity 3
	if _, err := e.Execute(context.Background(), indexLocalizer{}, batchSnapshots(t, 4), 3); !errors.Is(err, ErrBatchBusy) {
		t.Fatalf("error = %v, want ErrBatchBusy", err)
	}
}

func TestBatchExecutorCancellation(t *testing.T) {
	e := NewBatchExecutor(obs.NewRegistry(), 1, 1)
	bl := &blockingLocalizer{started: make(chan struct{}, 2), release: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []localize.BatchResult, 1)
	go func() {
		res, err := e.Execute(ctx, bl, batchSnapshots(t, 2), 3)
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	<-bl.started // one item runs; the other waits for the slot
	cancel()     // fails the waiting item
	// Wait for the canceled item to drain (pending 2 -> 1) before releasing
	// the slot, so it cannot grab the freed slot instead of observing the
	// cancellation.
	deadline := time.Now().Add(10 * time.Second)
	for e.pending.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("canceled item never drained")
		}
		time.Sleep(time.Millisecond)
	}
	close(bl.release)
	var res []localize.BatchResult
	select {
	case res = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("batch did not finish after cancellation")
	}
	var ok, canceled int
	for _, br := range res {
		switch br.Err {
		case nil:
			ok++
		case context.Canceled:
			canceled++
		default:
			t.Fatalf("unexpected error %v", br.Err)
		}
	}
	if ok != 1 || canceled != 1 {
		t.Fatalf("ok=%d canceled=%d, want 1 and 1", ok, canceled)
	}
}
