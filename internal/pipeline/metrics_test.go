package pipeline

import (
	"strings"
	"testing"
	"time"

	"repro/internal/anomaly"
	"repro/internal/kpi"
	"repro/internal/obs"
	"repro/internal/rapminer"
)

// monitorWithRegistry builds a monitor whose metrics land on a fresh
// registry, reusing the package tests' schema and snapshot helpers.
func monitorWithRegistry(t *testing.T, reg *obs.Registry) *Monitor {
	t.Helper()
	cfg := DefaultConfig(anomaly.DefaultRelativeDeviation(), rapminer.MustNew(rapminer.DefaultConfig()))
	cfg.Registry = reg
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMonitorMetricsLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	m := monitorWithRegistry(t, reg)

	ts := t0
	scope := kpi.Combination{0, kpi.Wildcard}
	step := func(failing bool) {
		t.Helper()
		var snap *kpi.Snapshot
		if failing {
			snap = snapshotWithDrop(t, scope, 0.5)
		} else {
			snap = snapshotWithDrop(t, nil, 0)
		}
		if _, err := m.Process(ts, snap); err != nil {
			t.Fatal(err)
		}
		ts = ts.Add(time.Minute)
	}

	// quiet, arm (x2 opens), ongoing, quiet x3 resolves.
	step(false)
	step(true)
	step(true) // opened
	step(true) // ongoing or updated
	step(false)
	step(false)
	step(false) // resolved

	if got := reg.Counter("pipeline_incidents_opened_total", "").Value(); got != 1 {
		t.Errorf("opened = %v, want 1", got)
	}
	if got := reg.Counter("pipeline_incidents_resolved_total", "").Value(); got != 1 {
		t.Errorf("resolved = %v, want 1", got)
	}
	if got := reg.Gauge("pipeline_incidents_open", "").Value(); got != 0 {
		t.Errorf("open gauge = %v, want 0 after resolve", got)
	}
	if got := reg.Counter("pipeline_events_total", "", "kind", "tick").Value(); got != 1 {
		t.Errorf("tick events = %v, want 1", got)
	}
	if got := reg.Counter("pipeline_events_total", "", "kind", "arming").Value(); got != 1 {
		t.Errorf("arming events = %v, want 1", got)
	}
	if got := reg.Counter("pipeline_events_total", "", "kind", "opened").Value(); got != 1 {
		t.Errorf("opened events = %v, want 1", got)
	}

	// The incident lasted 4 simulated minutes (opened at +2, resolved at
	// +6): the duration histogram saw exactly one observation of 240s.
	h := reg.Histogram("pipeline_incident_duration_seconds", "", incidentDurationBuckets)
	if h.Count() != 1 {
		t.Fatalf("duration observations = %d, want 1", h.Count())
	}
	if h.Sum() != 240 {
		t.Errorf("duration sum = %v, want 240", h.Sum())
	}

	// Stage latency histograms ticked once per localization call.
	if got := reg.Histogram("pipeline_stage_seconds", "", nil, "stage", "localize").Count(); got == 0 {
		t.Error("localize stage never observed")
	}
	if got := reg.Histogram("pipeline_stage_seconds", "", nil, "stage", "detect").Count(); got == 0 {
		t.Error("detect stage never observed")
	}
}

func TestRegisterMetricsPreRegistersFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pipeline_incidents_opened_total 0",
		"pipeline_incidents_resolved_total 0",
		`pipeline_events_total{kind="resolved"} 0`,
		`pipeline_stage_seconds_count{stage="detect"} 0`,
		"pipeline_incident_duration_seconds_count 0",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("pre-registration missing %q:\n%s", want, sb.String())
		}
	}
}
