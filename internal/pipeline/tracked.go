package pipeline

import (
	"context"
	"errors"
	"time"

	"repro/internal/kpi"
	"repro/internal/leafforecast"
)

// TrackedMonitor closes the loop the paper's Fig. 1 implies but leaves to
// "some prediction methods": it owns a leafforecast.Tracker that learns
// every leaf's baseline from observed actuals, fills in forecasts on each
// tick, and feeds the result to a Monitor. While an incident is open the
// tracker stops observing, so failure data does not contaminate the
// learned baseline.
type TrackedMonitor struct {
	monitor *Monitor
	tracker *leafforecast.Tracker
	history []Incident
	// maxHistory bounds the retained resolved incidents.
	maxHistory int
}

// NewTracked assembles the closed-loop monitor.
func NewTracked(m *Monitor, tr *leafforecast.Tracker) (*TrackedMonitor, error) {
	if m == nil || tr == nil {
		return nil, errors.New("pipeline: nil monitor or tracker")
	}
	return &TrackedMonitor{monitor: m, tracker: tr, maxHistory: 64}, nil
}

// Current returns the open incident, or nil.
func (t *TrackedMonitor) Current() *Incident { return t.monitor.Current() }

// History returns the resolved incidents, oldest first (bounded).
func (t *TrackedMonitor) History() []Incident {
	out := make([]Incident, len(t.history))
	copy(out, t.history)
	return out
}

// Process handles one tick of raw observations (forecasts in the snapshot
// are ignored and replaced by the tracker's own predictions).
func (t *TrackedMonitor) Process(ts time.Time, snap *kpi.Snapshot) (Event, error) {
	return t.ProcessContext(context.Background(), ts, snap)
}

// ProcessContext is Process under the caller's trace context (see
// Monitor.ProcessContext).
func (t *TrackedMonitor) ProcessContext(ctx context.Context, ts time.Time, snap *kpi.Snapshot) (Event, error) {
	if snap == nil {
		return Event{}, errors.New("pipeline: nil snapshot")
	}
	withForecasts, _, err := t.tracker.Forecast(snap)
	if err != nil {
		return Event{}, err
	}
	ev, err := t.monitor.ProcessContext(ctx, ts, withForecasts)
	if err != nil {
		return Event{}, err
	}
	switch ev.Kind {
	case EventTick:
		// Healthy tick: learn from it.
		if err := t.tracker.Observe(snap); err != nil {
			return Event{}, err
		}
	case EventResolved:
		t.history = append(t.history, *ev.Incident)
		if len(t.history) > t.maxHistory {
			t.history = t.history[len(t.history)-t.maxHistory:]
		}
	}
	// Arming/open-incident ticks are never observed: the baseline must
	// describe healthy behavior only.
	return ev, nil
}
