package pipeline

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kpi"
	"repro/internal/localize"
	"repro/internal/obs"
)

// ErrBatchBusy is returned when admitting a batch would exceed the
// executor's queue capacity. Callers translate it into backpressure — the
// HTTP layer answers 503 with Retry-After — instead of letting work pile up
// unboundedly behind the worker pool.
var ErrBatchBusy = errors.New("pipeline: batch queue full")

// batch stage names for pipeline_batch_stage_seconds.
const (
	stageBatchDecode   = "decode"
	stageBatchWait     = "wait"
	stageBatchLocalize = "localize"
)

// subSecondBuckets resolves per-item latencies from 100µs to 10s.
var subSecondBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// BatchExecutor runs many-snapshot localization requests over a fixed pool
// of worker slots with admission control. Items from all concurrent batches
// share the same slots, so total localization parallelism is bounded by
// workers no matter how many requests are in flight; a batch whose items
// would push the pending count past the queue capacity is rejected whole
// with ErrBatchBusy rather than enqueued.
//
// The executor publishes its saturation to reg:
//
//	pipeline_batch_queue_depth          gauge, admitted items not yet finished
//	pipeline_batch_items_total          counter, items localized (label ok/error)
//	pipeline_batch_batches_total        counter, batches by outcome (ok/rejected)
//	pipeline_batch_stage_seconds{stage} histogram, decode / wait / localize
type BatchExecutor struct {
	workers int
	// capacity bounds admitted-but-unfinished items: running + queued.
	capacity int
	slots    chan struct{}
	pending  atomic.Int64

	depth       *obs.Gauge
	itemsOK     *obs.Counter
	itemsErr    *obs.Counter
	batchesOK   *obs.Counter
	batchesBusy *obs.Counter
	stages      map[string]*obs.Histogram
}

// NewBatchExecutor builds an executor with the given localization
// parallelism and queue depth. workers <= 0 defaults to 1. queue is the
// number of items that may wait beyond the running ones; queue < 0 defaults
// to 4x workers but no less than 16, so small machines still absorb a
// typical batch. reg nil means the default registry.
func NewBatchExecutor(reg *obs.Registry, workers, queue int) *BatchExecutor {
	if reg == nil {
		reg = obs.Default()
	}
	if workers <= 0 {
		workers = 1
	}
	if queue < 0 {
		queue = 4 * workers
		if queue < 16 {
			queue = 16
		}
	}
	e := &BatchExecutor{
		workers:  workers,
		capacity: workers + queue,
		slots:    make(chan struct{}, workers),
		depth: reg.Gauge("pipeline_batch_queue_depth",
			"Batch items admitted and not yet finished (running + waiting)."),
		itemsOK: reg.Counter("pipeline_batch_items_total",
			"Batch items localized, by outcome.", "outcome", "ok"),
		itemsErr: reg.Counter("pipeline_batch_items_total",
			"Batch items localized, by outcome.", "outcome", "error"),
		batchesOK: reg.Counter("pipeline_batch_batches_total",
			"Batch requests, by admission outcome.", "outcome", "ok"),
		batchesBusy: reg.Counter("pipeline_batch_batches_total",
			"Batch requests, by admission outcome.", "outcome", "rejected"),
		stages: make(map[string]*obs.Histogram),
	}
	for _, s := range []string{stageBatchDecode, stageBatchWait, stageBatchLocalize} {
		e.stages[s] = reg.Histogram("pipeline_batch_stage_seconds",
			"Per-item wall time of the batch pipeline stages.", subSecondBuckets, "stage", s)
	}
	return e
}

// Workers reports the executor's localization parallelism.
func (e *BatchExecutor) Workers() int { return e.workers }

// Capacity reports the maximum admitted-but-unfinished items.
func (e *BatchExecutor) Capacity() int { return e.capacity }

// Depth reports the items currently admitted and not yet finished
// (running + waiting) — the instantaneous queue saturation next to
// Capacity. The pending counter is the source of truth the
// pipeline_batch_queue_depth gauge mirrors.
func (e *BatchExecutor) Depth() int { return int(e.pending.Load()) }

// ObserveDecode records the request-decoding latency of one batch; the
// decode stage runs in the caller (it has the request body), not the pool.
func (e *BatchExecutor) ObserveDecode(elapsed time.Duration) {
	e.stages[stageBatchDecode].Observe(elapsed.Seconds())
}

// admit reserves n items against capacity, all-or-nothing.
//
// The gauge mirrors the pending counter with commutative Add/Dec deltas
// rather than Set snapshots: a Set of a precomputed value (cur+n here, the
// Add result in finish) can land after concurrent releases and publish a
// stale-high depth that nothing ever corrects. Deltas commute, so the gauge
// always converges to the counter no matter how the publications interleave.
func (e *BatchExecutor) admit(n int) bool {
	for {
		cur := e.pending.Load()
		if cur+int64(n) > int64(e.capacity) {
			return false
		}
		if e.pending.CompareAndSwap(cur, cur+int64(n)) {
			e.depth.Add(float64(n))
			return true
		}
	}
}

// finish releases one admitted item.
func (e *BatchExecutor) finish() {
	e.pending.Add(-1)
	e.depth.Dec()
}

// Execute localizes every snapshot with l at the given k, fanning items
// across the executor's worker slots. Results are positional. The whole
// batch is rejected with ErrBatchBusy when its items do not fit the queue.
// Canceling ctx fails the not-yet-started items with ctx.Err(); items
// already holding a slot see ctx through localize.SafeLocalize, so a
// context-aware localizer stops at its next cancellation point with a
// degraded partial result instead of pinning the slot. A panicking item
// fails only itself: SafeLocalize converts the panic into the item's error
// (stack logged), keeping one poisoned snapshot from killing the process or
// failing its batch neighbors.
func (e *BatchExecutor) Execute(ctx context.Context, l localize.Localizer, snapshots []*kpi.Snapshot, k int) ([]localize.BatchResult, error) {
	out := make([]localize.BatchResult, len(snapshots))
	if len(snapshots) == 0 {
		e.batchesOK.Inc()
		return out, nil
	}
	if !e.admit(len(snapshots)) {
		e.batchesBusy.Inc()
		return nil, ErrBatchBusy
	}
	e.batchesOK.Inc()
	var wg sync.WaitGroup
	for i := range snapshots {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer e.finish()
			waitStart := time.Now()
			select {
			case e.slots <- struct{}{}:
			case <-ctx.Done():
				out[i] = localize.BatchResult{Err: ctx.Err()}
				e.itemsErr.Inc()
				return
			}
			e.stages[stageBatchWait].Observe(time.Since(waitStart).Seconds())
			defer func() { <-e.slots }()
			start := time.Now()
			res, err := localize.SafeLocalize(ctx, l, snapshots[i], k)
			e.stages[stageBatchLocalize].Observe(time.Since(start).Seconds())
			out[i] = localize.BatchResult{Result: res, Err: err}
			if err != nil {
				e.itemsErr.Inc()
			} else {
				e.itemsOK.Inc()
			}
		}(i)
	}
	wg.Wait()
	return out, nil
}
