package pipeline

import (
	"time"

	"repro/internal/obs"
)

// metrics holds the monitor's pre-registered instruments. Registering every
// series up front (including the zero-valued ones) makes the full schema
// visible on the first /metrics scrape, before any incident has happened.
type metrics struct {
	events            map[EventKind]*obs.Counter
	incidentsOpened   *obs.Counter
	incidentsResolved *obs.Counter
	incidentDuration  *obs.Histogram
	incidentsOpen     *obs.Gauge
	stageSeconds      map[string]*obs.Histogram
}

// incidentDurationBuckets spans blip-to-outage incident lengths, in
// seconds: 1 min up to 4 h.
var incidentDurationBuckets = []float64{60, 120, 300, 600, 1800, 3600, 7200, 14400}

// stageNames are the two localization stages the monitor times.
const (
	stageDetect   = "detect"
	stageLocalize = "localize"
)

// RegisterMetrics pre-registers every monitor metric family on reg (nil
// means the default registry) so a /metrics scrape shows the full schema
// at zero before the first monitor exists. Constructing a Monitor does the
// same implicitly.
func RegisterMetrics(reg *obs.Registry) { newMetrics(reg) }

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.Default()
	}
	m := &metrics{
		events: make(map[EventKind]*obs.Counter),
		incidentsOpened: reg.Counter("pipeline_incidents_opened_total",
			"Incidents opened by the monitor."),
		incidentsResolved: reg.Counter("pipeline_incidents_resolved_total",
			"Incidents resolved by the monitor."),
		incidentDuration: reg.Histogram("pipeline_incident_duration_seconds",
			"Open-to-resolve duration of resolved incidents.", incidentDurationBuckets),
		incidentsOpen: reg.Gauge("pipeline_incidents_open",
			"Incidents currently open (0 or 1 per monitor)."),
		stageSeconds: make(map[string]*obs.Histogram),
	}
	for _, k := range []EventKind{EventTick, EventArming, EventOpened, EventUpdated, EventOngoing, EventResolved} {
		m.events[k] = reg.Counter("pipeline_events_total",
			"Processed ticks by resulting event kind.", "kind", k.String())
	}
	for _, s := range []string{stageDetect, stageLocalize} {
		m.stageSeconds[s] = reg.Histogram("pipeline_stage_seconds",
			"Wall time of the detector and localizer stages.", nil, "stage", s)
	}
	return m
}

// record updates the counters for one processed tick's outcome.
func (mx *metrics) record(ev Event) {
	if c, ok := mx.events[ev.Kind]; ok {
		c.Inc()
	}
	switch ev.Kind {
	case EventOpened:
		mx.incidentsOpened.Inc()
		mx.incidentsOpen.Set(1)
	case EventResolved:
		mx.incidentsResolved.Inc()
		mx.incidentsOpen.Set(0)
		if ev.Incident != nil && !ev.Incident.ResolvedAt.IsZero() {
			mx.incidentDuration.Observe(ev.Incident.ResolvedAt.Sub(ev.Incident.OpenedAt).Seconds())
		}
	}
}

// observeStage times one stage invocation.
func (mx *metrics) observeStage(stage string, elapsed time.Duration) {
	if h, ok := mx.stageSeconds[stage]; ok {
		h.Observe(elapsed.Seconds())
	}
}
