// Package pipeline assembles the repository's pieces into the IT-operations
// service of the paper's Fig. 1: a Monitor consumes per-minute KPI
// snapshots, raises an aggregate anomaly alarm with debouncing, triggers
// anomaly localization only while the alarm is active, and tracks incident
// lifecycle (open → update → resolve) so operators receive one coherent
// incident per failure instead of a per-tick stream of patterns.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"time"

	"repro/internal/anomaly"
	"repro/internal/kpi"
	"repro/internal/localize"
	"repro/internal/obs"
	"repro/internal/rapminer"
	"repro/internal/rapminer/explain"
)

// Config assembles a Monitor.
type Config struct {
	// Detector labels the leaves before localization.
	Detector anomaly.Detector
	// Localizer mines the root anomaly patterns.
	Localizer localize.Localizer
	// K is the number of patterns requested per localization.
	K int
	// AlarmThreshold is the relative deviation of the aggregate KPI
	// (|sum f - sum v| / sum f) that arms the alarm.
	AlarmThreshold float64
	// DebounceTicks is how many consecutive alarming ticks are needed
	// before an incident opens (suppresses single-sample blips).
	DebounceTicks int
	// ResolveTicks is how many consecutive clean ticks close an open
	// incident.
	ResolveTicks int
	// PreLabeled skips the full detector pass before localization: the
	// snapshot arrives already labeled, because the caller labels
	// incrementally over the touched leaves (the continuous runner's
	// anomaly.LabelDelta path). The Detector is still required — the
	// labeler that pre-labels must be the same one.
	PreLabeled bool
	// Registry receives the monitor's metrics (event-kind counters,
	// incident counts and durations, stage latencies). Nil means
	// obs.Default().
	Registry *obs.Registry
	// Runs receives one explain report per localization run, keyed by
	// the run's trace ID, when the localizer supports diagnostics. Nil
	// means explain.Default().
	Runs *explain.Store
}

// DefaultConfig returns a production-flavored configuration around the
// given localizer: 2% aggregate alarm, 2-tick debounce, 3-tick resolve.
func DefaultConfig(det anomaly.Detector, loc localize.Localizer) Config {
	return Config{
		Detector:       det,
		Localizer:      loc,
		K:              3,
		AlarmThreshold: 0.02,
		DebounceTicks:  2,
		ResolveTicks:   3,
	}
}

// EventKind classifies what a processed tick produced.
type EventKind int

// The event kinds, in lifecycle order.
const (
	// EventTick is a quiet tick: no open incident, no alarm.
	EventTick EventKind = iota + 1
	// EventArming counts an alarming tick still inside the debounce
	// window.
	EventArming
	// EventOpened reports a new incident with its localized scopes.
	EventOpened
	// EventUpdated reports changed scopes on an open incident.
	EventUpdated
	// EventOngoing is an open incident whose scopes did not change.
	EventOngoing
	// EventResolved closes an incident after ResolveTicks clean ticks.
	EventResolved
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventTick:
		return "tick"
	case EventArming:
		return "arming"
	case EventOpened:
		return "opened"
	case EventUpdated:
		return "updated"
	case EventOngoing:
		return "ongoing"
	case EventResolved:
		return "resolved"
	default:
		return fmt.Sprintf("event-%d", int(k))
	}
}

// Incident is one tracked failure.
type Incident struct {
	ID       int
	OpenedAt time.Time
	// ResolvedAt is zero while the incident is open.
	ResolvedAt time.Time
	// Scopes is the latest localization result.
	Scopes []localize.ScoredPattern
	// Updates counts scope changes after opening.
	Updates int
}

// Event is the outcome of one processed tick.
type Event struct {
	Kind      EventKind
	Time      time.Time
	Deviation float64
	// Incident is set for Opened/Updated/Ongoing/Resolved events.
	Incident *Incident
}

// Monitor is the stateful alarm-and-localize service. It is not safe for
// concurrent use; drive it from one goroutine (see Runner).
type Monitor struct {
	cfg Config
	mx  *metrics
	log *slog.Logger

	alarmStreak int
	cleanStreak int
	current     *Incident
	nextID      int
}

// New validates the configuration.
func New(cfg Config) (*Monitor, error) {
	if cfg.Detector == nil {
		return nil, errors.New("pipeline: nil detector")
	}
	if cfg.Localizer == nil {
		return nil, errors.New("pipeline: nil localizer")
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("pipeline: K %d, want >= 1", cfg.K)
	}
	if cfg.AlarmThreshold <= 0 {
		return nil, fmt.Errorf("pipeline: AlarmThreshold %v, want > 0", cfg.AlarmThreshold)
	}
	if cfg.DebounceTicks < 1 || cfg.ResolveTicks < 1 {
		return nil, fmt.Errorf("pipeline: debounce/resolve ticks (%d, %d), want >= 1",
			cfg.DebounceTicks, cfg.ResolveTicks)
	}
	if cfg.Runs == nil {
		cfg.Runs = explain.Default()
	}
	return &Monitor{
		cfg:    cfg,
		mx:     newMetrics(cfg.Registry),
		log:    obs.Logger("pipeline"),
		nextID: 1,
	}, nil
}

// Current returns the open incident, or nil.
func (m *Monitor) Current() *Incident { return m.current }

// Process handles one tick. The snapshot is labeled in place with the
// configured detector when localization runs. Every tick updates the
// monitor's metrics, and incident transitions are logged through the
// "pipeline" component logger.
func (m *Monitor) Process(ts time.Time, snap *kpi.Snapshot) (Event, error) {
	return m.ProcessContext(context.Background(), ts, snap)
}

// ProcessContext is Process under the caller's trace context: spans and
// the explain report of a localizing tick join the trace ctx carries
// (e.g. an HTTP request's). When ctx carries no trace, the tick that
// localizes starts a fresh one, so every monitor-driven run is traceable
// by its own ID.
func (m *Monitor) ProcessContext(ctx context.Context, ts time.Time, snap *kpi.Snapshot) (Event, error) {
	ev, err := m.process(ctx, ts, snap)
	if err != nil {
		m.log.Error("tick failed", slog.Time("ts", ts), slog.Any("err", err))
		return ev, err
	}
	m.mx.record(ev)
	switch ev.Kind {
	case EventOpened:
		m.log.Info("incident opened",
			slog.Int("id", ev.Incident.ID), slog.Float64("deviation", ev.Deviation),
			slog.Int("scopes", len(ev.Incident.Scopes)))
	case EventUpdated:
		m.log.Info("incident scope updated",
			slog.Int("id", ev.Incident.ID), slog.Int("updates", ev.Incident.Updates))
	case EventResolved:
		m.log.Info("incident resolved",
			slog.Int("id", ev.Incident.ID),
			slog.Duration("after", ev.Incident.ResolvedAt.Sub(ev.Incident.OpenedAt)))
	}
	return ev, nil
}

func (m *Monitor) process(ctx context.Context, ts time.Time, snap *kpi.Snapshot) (Event, error) {
	if snap == nil {
		return Event{}, errors.New("pipeline: nil snapshot")
	}
	v, f := snap.Sum(kpi.NewRoot(snap.Schema.NumAttributes()))
	dev := 0.0
	switch {
	case f != 0:
		dev = math.Abs(f-v) / math.Abs(f)
	case v != 0:
		// Zero aggregate forecast with nonzero actuals is a total forecast
		// outage, not a clean tick: forcing deviation to 0 here would blind
		// the alarm exactly when the forecasting backend fails. Report the
		// maximal relative deviation (the same value a total actual outage
		// |f-0|/|f| = 1 produces on the other side) so the alarm can arm.
		dev = 1
	}
	alarming := dev > m.cfg.AlarmThreshold

	if alarming {
		m.alarmStreak++
		m.cleanStreak = 0
	} else {
		m.cleanStreak++
		m.alarmStreak = 0
	}

	switch {
	case m.current == nil && alarming && m.alarmStreak >= m.cfg.DebounceTicks:
		scopes, err := m.localize(ctx, snap)
		if err != nil {
			return Event{}, err
		}
		m.current = &Incident{ID: m.nextID, OpenedAt: ts, Scopes: scopes}
		m.nextID++
		return Event{Kind: EventOpened, Time: ts, Deviation: dev, Incident: m.current}, nil

	case m.current == nil && alarming:
		return Event{Kind: EventArming, Time: ts, Deviation: dev}, nil

	case m.current != nil && !alarming && m.cleanStreak >= m.cfg.ResolveTicks:
		incident := m.current
		incident.ResolvedAt = ts
		m.current = nil
		return Event{Kind: EventResolved, Time: ts, Deviation: dev, Incident: incident}, nil

	case m.current != nil && alarming:
		scopes, err := m.localize(ctx, snap)
		if err != nil {
			return Event{}, err
		}
		kind := EventOngoing
		if !sameScopes(m.current.Scopes, scopes) {
			m.current.Scopes = scopes
			m.current.Updates++
			kind = EventUpdated
		}
		return Event{Kind: kind, Time: ts, Deviation: dev, Incident: m.current}, nil

	case m.current != nil:
		// Open incident, clean tick, still inside the resolve window.
		return Event{Kind: EventOngoing, Time: ts, Deviation: dev, Incident: m.current}, nil

	default:
		return Event{Kind: EventTick, Time: ts, Deviation: dev}, nil
	}
}

func (m *Monitor) localize(ctx context.Context, snap *kpi.Snapshot) ([]localize.ScoredPattern, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Every localizing tick runs under a trace: inherit the caller's
	// (an HTTP observation request) or start a fresh one, so the run's
	// spans and explain report share one ID.
	if _, ok := obs.TraceFromContext(ctx); !ok {
		ctx = obs.ContextWithTrace(ctx, obs.NewTraceContext())
	}
	runStart := time.Now()

	ctx, span := obs.StartSpan(ctx, "pipeline.detect")
	start := time.Now()
	var n int
	if m.cfg.PreLabeled {
		// Continuous mode labeled incrementally as the delta applied; the
		// anomalous count is already cached on the snapshot.
		n = len(snap.AnomalousLeafSet())
	} else {
		n = anomaly.Label(snap, m.cfg.Detector)
	}
	m.mx.observeStage(stageDetect, time.Since(start))
	span.SetAttr("anomalous", n)
	span.End()

	locCtx, span := obs.StartSpan(ctx, "pipeline.localize")
	defer span.End()
	start = time.Now()
	var (
		res localize.Result
		err error
	)
	// Localizers that expose search diagnostics (RAPMiner) publish the
	// paper's pruning statistics as live metrics on every incident tick
	// and journal the run into the explain-report store.
	if dl, ok := m.cfg.Localizer.(rapminer.TracedLocalizer); ok {
		var diag rapminer.Diagnostics
		res, diag, err = dl.LocalizeWithDiagnosticsContext(locCtx, snap, m.cfg.K)
		if err == nil {
			rapminer.PublishDiagnostics(m.cfg.Registry, diag)
			span.SetAttr("cuboids_visited", diag.CuboidsVisited)
			span.SetAttr("early_stopped", diag.EarlyStopped)
			m.cfg.Runs.Put(explain.New(obs.TraceIDFromContext(locCtx),
				"pipeline", m.cfg.Localizer.Name(), snap, m.cfg.K, diag,
				time.Since(runStart)))
		}
		if err == nil && diag.Degraded {
			// Partial results are still served, but a degraded incident
			// scope deserves an operator-visible line.
			m.log.Warn("localization degraded",
				slog.String("reason", diag.DegradedReason),
				slog.Int("candidates", diag.Candidates))
		}
	} else if dl, ok := m.cfg.Localizer.(rapminer.DiagnosticLocalizer); ok {
		var diag rapminer.Diagnostics
		res, diag, err = dl.LocalizeWithDiagnostics(snap, m.cfg.K)
		if err == nil {
			rapminer.PublishDiagnostics(m.cfg.Registry, diag)
			span.SetAttr("cuboids_visited", diag.CuboidsVisited)
			span.SetAttr("early_stopped", diag.EarlyStopped)
		}
	} else {
		res, err = m.cfg.Localizer.Localize(snap, m.cfg.K)
	}
	m.mx.observeStage(stageLocalize, time.Since(start))
	if err != nil {
		return nil, fmt.Errorf("pipeline: localize: %w", err)
	}
	span.SetAttr("patterns", len(res.Patterns))
	return res.Patterns, nil
}

func sameScopes(a, b []localize.ScoredPattern) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Combo.Equal(b[i].Combo) {
			return false
		}
	}
	return true
}
