package pipeline

import (
	"context"
	"testing"
	"time"

	"repro/internal/anomaly"
	"repro/internal/kpi"
	"repro/internal/rapminer"
)

func testContinuous(t *testing.T, window int) *ContinuousRunner {
	t.Helper()
	miner, err := rapminer.New(rapminer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewContinuous(DefaultConfig(anomaly.DefaultRelativeDeviation(), miner), window)
	if err != nil {
		t.Fatalf("NewContinuous: %v", err)
	}
	return r
}

// dropDelta builds a delta that re-observes every leaf: leaves under scope
// lose frac of their forecast, the rest report clean.
func dropDelta(scope kpi.Combination, frac float64) kpi.Delta {
	var d kpi.Delta
	for a := int32(0); a < 3; a++ {
		for b := int32(0); b < 2; b++ {
			combo := kpi.Combination{a, b}
			u := kpi.LeafUpdate{Combo: combo, Actual: 100, Forecast: 100}
			if scope != nil && scope.Matches(combo) {
				u.Actual = 100 * (1 - frac)
			}
			d.Updates = append(d.Updates, u)
		}
	}
	return d
}

// TestContinuousDeltaMatchesSnapshots drives the same incident lifecycle two
// ways — a ContinuousRunner fed a baseline plus per-tick deltas, and a plain
// Monitor fed equivalent full snapshots — and demands identical events and
// identical localized scopes at every tick.
func TestContinuousDeltaMatchesSnapshots(t *testing.T) {
	ctx := context.Background()
	r := testContinuous(t, 16)
	ref := testMonitor(t)
	scope := kpi.MustParseCombination(testSchema(), "(a2, *)")

	// Baseline: clean world.
	ev, err := r.ObserveSnapshot(ctx, t0, snapshotWithDrop(t, nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	refEv, err := ref.Process(t0, snapshotWithDrop(t, nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != refEv.Kind {
		t.Fatalf("baseline: %v vs %v", ev.Kind, refEv.Kind)
	}

	// Failure opens (debounce + open), persists, then heals to resolution.
	ticks := []kpi.Combination{scope, scope, scope, nil, nil, nil}
	for i, sc := range ticks {
		ts := t0.Add(time.Duration(i+1) * time.Minute)
		frac := 0.5
		if sc == nil {
			frac = 0
		}
		ev, res, err := r.ObserveDelta(ctx, ts, dropDelta(sc, frac))
		if err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		if !res.PatchedFrame || !res.PatchedLabels {
			t.Fatalf("tick %d: caches not patched: %+v", i, res)
		}
		refEv, err := ref.Process(ts, snapshotWithDrop(t, sc, frac))
		if err != nil {
			t.Fatalf("tick %d: reference: %v", i, err)
		}
		if ev.Kind != refEv.Kind || ev.Deviation != refEv.Deviation {
			t.Fatalf("tick %d: delta path %v (dev %v) vs snapshot path %v (dev %v)",
				i, ev.Kind, ev.Deviation, refEv.Kind, refEv.Deviation)
		}
		if (ev.Incident == nil) != (refEv.Incident == nil) {
			t.Fatalf("tick %d: incident presence diverges", i)
		}
		if ev.Incident != nil {
			got, want := ev.Incident.Scopes, refEv.Incident.Scopes
			if len(got) != len(want) {
				t.Fatalf("tick %d: scopes %v vs %v", i, got, want)
			}
			for j := range want {
				if !got[j].Combo.Equal(want[j].Combo) {
					t.Fatalf("tick %d: scopes %v vs %v", i, got, want)
				}
			}
		}
	}

	// The lifecycle actually ran: an incident opened and resolved.
	kinds := map[EventKind]bool{}
	for _, st := range r.Window() {
		kinds[st.Kind] = true
	}
	if !kinds[EventOpened] || !kinds[EventResolved] {
		t.Fatalf("lifecycle incomplete: window kinds %v", kinds)
	}
}

// TestContinuousWindowAndErrors covers the bookkeeping around the happy
// path: tick counting, window eviction, the no-baseline error, and that an
// invalid delta is rejected without recording a tick or corrupting state.
func TestContinuousWindowAndErrors(t *testing.T) {
	ctx := context.Background()

	if _, err := NewContinuous(DefaultConfig(anomaly.DefaultRelativeDeviation(),
		rapminer.MustNew(rapminer.DefaultConfig())), 0); err == nil {
		t.Fatal("window 0 accepted")
	}

	r := testContinuous(t, 3)
	if _, _, err := r.ObserveDelta(ctx, t0, dropDelta(nil, 0)); err == nil {
		t.Fatal("delta before first snapshot accepted")
	}
	if r.Len() != 0 || r.Schema() != nil || r.Ticks() != 0 {
		t.Fatal("failed delta mutated runner state")
	}

	if _, err := r.ObserveSnapshot(ctx, t0, snapshotWithDrop(t, nil, 0)); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 6 || r.Schema() == nil {
		t.Fatalf("baseline not installed: len %d", r.Len())
	}
	st := r.Window()
	if len(st) != 1 || st[0].Delta || st[0].Touched != 6 {
		t.Fatalf("baseline tick stats %+v", st)
	}

	// An update naming a leaf outside the world must be rejected atomically:
	// no tick recorded, leaf count unchanged.
	bad := kpi.Delta{Updates: []kpi.LeafUpdate{
		{Combo: kpi.Combination{-1, 0}, Actual: 1, Forecast: 1},
	}}
	if _, _, err := r.ObserveDelta(ctx, t0.Add(time.Minute), bad); err == nil {
		t.Fatal("wildcard update accepted")
	}
	if r.Ticks() != 1 || r.Len() != 6 {
		t.Fatalf("rejected delta recorded: ticks %d len %d", r.Ticks(), r.Len())
	}

	// Window stays bounded at 3 while the tick counter keeps climbing.
	for i := 0; i < 5; i++ {
		ts := t0.Add(time.Duration(i+1) * time.Minute)
		if _, _, err := r.ObserveDelta(ctx, ts, dropDelta(nil, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Ticks() != 6 {
		t.Fatalf("ticks %d, want 6", r.Ticks())
	}
	st = r.Window()
	if len(st) != 3 {
		t.Fatalf("window %d entries, want 3", len(st))
	}
	for i, s := range st {
		if !s.Delta || !s.Patched {
			t.Fatalf("window[%d] = %+v, want patched delta tick", i, s)
		}
	}
	// Oldest-first: the retained ticks are the last three.
	if !st[2].Time.After(st[0].Time) {
		t.Fatalf("window not oldest-first: %v .. %v", st[0].Time, st[2].Time)
	}
}
