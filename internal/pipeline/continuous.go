package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/anomaly"
	"repro/internal/kpi"
	"repro/internal/obs"
)

// ContinuousRunner is the sliding-window continuous-localization mode: it
// holds one long-lived snapshot per KPI, applies per-tick deltas to it in
// place (kpi.ApplyDelta), re-runs detection only over the touched leaves
// (anomaly.LabelDelta) and hands the patched snapshot to the Monitor, whose
// debounce/budget/degraded machinery decides when to localize. A bounded
// window of recent tick statistics is retained for status reporting.
//
// The runner serializes ticks internally, so it is safe for concurrent use
// (the HTTP ingestion path calls it from request goroutines). Mutating the
// held snapshot from outside the runner is not.
type ContinuousRunner struct {
	mon    *Monitor
	det    anomaly.Detector
	mx     *continuousMetrics
	window int

	mu     sync.Mutex
	snap   *kpi.Snapshot
	recent []TickStats
	ticks  int
}

// TickStats records one continuous tick for the sliding window.
type TickStats struct {
	Time      time.Time
	Kind      EventKind
	Deviation float64
	// Delta reports whether the tick was a delta (true) or a full snapshot
	// (false).
	Delta bool
	// Touched is the number of leaves the tick updated or added; full
	// snapshots count every leaf.
	Touched int
	// Flipped is how many touched leaves changed their anomaly label.
	Flipped int
	// Patched reports that the tick patched the columnar frame in place
	// rather than (re)building it.
	Patched bool
	// Apply is the wall time of delta application plus incremental
	// relabeling (zero for full snapshots).
	Apply time.Duration
}

// NewContinuous builds a continuous runner around a Monitor configured from
// cfg. The monitor is forced into PreLabeled mode — the runner labels
// incrementally as deltas apply, so the full detector pass before
// localization would be redundant work. window bounds the retained tick
// statistics (how many recent ticks Window reports).
func NewContinuous(cfg Config, window int) (*ContinuousRunner, error) {
	if window < 1 {
		return nil, fmt.Errorf("pipeline: continuous window %d, want >= 1", window)
	}
	cfg.PreLabeled = true
	mon, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &ContinuousRunner{
		mon:    mon,
		det:    cfg.Detector,
		mx:     newContinuousMetrics(cfg.Registry),
		window: window,
	}, nil
}

// Monitor exposes the underlying monitor (incident state, config).
func (r *ContinuousRunner) Monitor() *Monitor { return r.mon }

// Len returns the held snapshot's leaf count, or 0 before the first
// ObserveSnapshot.
func (r *ContinuousRunner) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.snap == nil {
		return 0
	}
	return r.snap.Len()
}

// Schema returns the held snapshot's schema, or nil before the first
// ObserveSnapshot.
func (r *ContinuousRunner) Schema() *kpi.Schema {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.snap == nil {
		return nil
	}
	return r.snap.Schema
}

// Ticks returns the number of processed ticks (snapshots and deltas).
func (r *ContinuousRunner) Ticks() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ticks
}

// Window returns a copy of the retained tick statistics, oldest first; at
// most the configured window length.
func (r *ContinuousRunner) Window() []TickStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TickStats(nil), r.recent...)
}

// ObserveSnapshot installs (or replaces) the long-lived snapshot and
// processes it as one tick. The snapshot is labeled in full — it is the
// baseline every subsequent delta patches against. A snapshot with a
// different schema simply replaces the old world; that is the FullRebuild
// fallback of the delta contract.
func (r *ContinuousRunner) ObserveSnapshot(ctx context.Context, ts time.Time, snap *kpi.Snapshot) (Event, error) {
	if snap == nil {
		return Event{}, errors.New("pipeline: nil snapshot")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := anomaly.Label(snap, r.det)
	// Warm the columnar caches now: the baseline install is the expensive
	// tick, and a warm frame is what lets every subsequent delta take the
	// patch-in-place path instead of a lazy rebuild mid-incident.
	snap.Columns()
	snap.AnomalousPostings()
	r.snap = snap
	r.mx.rebuilt.Inc()
	r.mx.touched.Observe(float64(snap.Len()))
	ev, err := r.mon.ProcessContext(ctx, ts, snap)
	if err != nil {
		return ev, err
	}
	r.push(TickStats{
		Time: ts, Kind: ev.Kind, Deviation: ev.Deviation,
		Touched: snap.Len(), Flipped: n,
	})
	return ev, nil
}

// ObserveDelta applies one tick's delta to the held snapshot, relabels the
// touched leaves, and processes the patched snapshot. The delta is validated
// atomically by ApplyDelta: on error the snapshot is untouched and no tick
// is recorded.
func (r *ContinuousRunner) ObserveDelta(ctx context.Context, ts time.Time, d kpi.Delta) (Event, kpi.ApplyResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.snap == nil {
		return Event{}, kpi.ApplyResult{}, errors.New("pipeline: delta before first snapshot")
	}
	start := time.Now()
	res, err := r.snap.ApplyDelta(d)
	if err != nil {
		return Event{}, res, err
	}
	flipped := anomaly.LabelDelta(r.snap, r.det, res.Touched)
	apply := time.Since(start)

	r.mx.applySeconds.Observe(apply.Seconds())
	r.mx.touched.Observe(float64(len(res.Touched)))
	if res.PatchedFrame {
		r.mx.patched.Inc()
	} else {
		r.mx.rebuilt.Inc()
	}

	ev, err := r.mon.ProcessContext(ctx, ts, r.snap)
	if err != nil {
		return ev, res, err
	}
	r.push(TickStats{
		Time: ts, Kind: ev.Kind, Deviation: ev.Deviation, Delta: true,
		Touched: len(res.Touched), Flipped: len(flipped),
		Patched: res.PatchedFrame, Apply: apply,
	})
	return ev, res, nil
}

// push appends one tick to the sliding window, evicting the oldest past the
// window length.
func (r *ContinuousRunner) push(st TickStats) {
	r.ticks++
	r.recent = append(r.recent, st)
	if len(r.recent) > r.window {
		r.recent = r.recent[len(r.recent)-r.window:]
	}
}

// continuousMetrics instruments the delta-ingestion path: apply latency,
// leaves touched per tick, and the patched-vs-rebuilt split that tells an
// operator whether the incremental path is actually being hit.
type continuousMetrics struct {
	applySeconds *obs.Histogram
	touched      *obs.Histogram
	patched      *obs.Counter
	rebuilt      *obs.Counter
}

// deltaApplyBuckets spans patch-in-place latencies, in seconds: 100 µs up
// to 5 s.
var deltaApplyBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

// touchedLeafBuckets spans touched-set sizes per tick: single leaves up to
// millions (a full snapshot install).
var touchedLeafBuckets = []float64{1, 10, 100, 1000, 1e4, 1e5, 1e6}

func newContinuousMetrics(reg *obs.Registry) *continuousMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &continuousMetrics{
		applySeconds: reg.Histogram("pipeline_delta_apply_seconds",
			"Wall time of delta application plus incremental relabel per tick.", deltaApplyBuckets),
		touched: reg.Histogram("pipeline_tick_touched_leaves",
			"Leaves touched (updated + added) per continuous tick.", touchedLeafBuckets),
		patched: reg.Counter("pipeline_frame_patched_total",
			"Continuous ticks that patched the columnar frame in place."),
		rebuilt: reg.Counter("pipeline_frame_rebuilt_total",
			"Continuous ticks that (re)built the columnar frame: full snapshot installs and deltas landing before the frame was built."),
	}
}
