package pipeline

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/kpi"
	"repro/internal/localize"
	"repro/internal/obs"
)

// zeroForecastSnapshot builds a snapshot whose aggregate forecast is zero
// while actual traffic flows — the shape a total forecasting-backend outage
// produces.
func zeroForecastSnapshot(t *testing.T, actual float64) *kpi.Snapshot {
	t.Helper()
	s := testSchema()
	var leaves []kpi.Leaf
	for a := int32(0); a < 3; a++ {
		for b := int32(0); b < 2; b++ {
			leaves = append(leaves, kpi.Leaf{
				Combo: kpi.Combination{a, b}, Actual: actual, Forecast: 0,
			})
		}
	}
	snap, err := kpi.NewSnapshot(s, leaves)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestZeroForecastOutageAlarms is the regression test for the zero-forecast
// blind spot: nonzero actuals against an all-zero forecast used to divide
// into a 0.0 deviation and read as a perfectly clean tick. The monitor must
// instead see the maximal relative deviation and start arming.
func TestZeroForecastOutageAlarms(t *testing.T) {
	m := testMonitor(t)
	ev, err := m.Process(t0, zeroForecastSnapshot(t, 100))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Deviation != 1 {
		t.Fatalf("deviation = %v, want 1 (maximal) on a forecast outage", ev.Deviation)
	}
	if ev.Kind != EventArming {
		t.Fatalf("event = %v, want %v: a forecast outage must arm the alarm", ev.Kind, EventArming)
	}

	// Zero forecast with zero actuals stays a clean tick (no traffic, no
	// forecast — nothing to alarm about).
	m2 := testMonitor(t)
	ev, err = m2.Process(t0, zeroForecastSnapshot(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Deviation != 0 || ev.Kind != EventTick {
		t.Fatalf("all-zero tick: deviation %v kind %v, want 0 and %v", ev.Deviation, ev.Kind, EventTick)
	}
}

// panicLocalizer panics on snapshots with exactly boomLen leaves.
type panicLocalizer struct{ boomLen int }

func (p panicLocalizer) Name() string { return "panic" }

func (p panicLocalizer) Localize(s *kpi.Snapshot, k int) (localize.Result, error) {
	if s.Len() == p.boomLen {
		panic("poisoned snapshot")
	}
	return localize.Result{Patterns: []localize.ScoredPattern{{Score: float64(s.Len())}}}, nil
}

// TestBatchExecutorPanicIsolation checks a panicking localizer fails only
// its own batch item: neighbors complete, the pool survives, and the
// executor's accounting drains back to zero.
func TestBatchExecutorPanicIsolation(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewBatchExecutor(reg, 2, -1)
	snaps := batchSnapshots(t, 5) // leaf counts 2..6
	results, err := e.Execute(context.Background(), panicLocalizer{boomLen: 4}, snaps, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range results {
		if snaps[i].Len() == 4 {
			if br.Err == nil || !strings.Contains(br.Err.Error(), "panicked") {
				t.Fatalf("poisoned item error = %v, want a panic-derived error", br.Err)
			}
			continue
		}
		if br.Err != nil {
			t.Fatalf("healthy item %d failed: %v", i, br.Err)
		}
		if want := float64(snaps[i].Len()); br.Result.Patterns[0].Score != want {
			t.Fatalf("healthy item %d score %v, want %v", i, br.Result.Patterns[0].Score, want)
		}
	}
	if got := e.pending.Load(); got != 0 {
		t.Fatalf("pending = %d after panic batch, want 0", got)
	}
	if got := e.depth.Value(); got != 0 {
		t.Fatalf("queue depth gauge = %v after panic batch, want 0", got)
	}
}

// TestBatchQueueDepthGaugeConverges is the regression test for the
// admit/finish gauge race: under concurrent batches the published depth must
// track the pending counter via commutative deltas, never stick at a
// stale-high snapshot. After every batch drains, both must read zero.
func TestBatchQueueDepthGaugeConverges(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewBatchExecutor(reg, 4, 1000)
	var wg sync.WaitGroup
	for b := 0; b < 8; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := e.Execute(context.Background(), indexLocalizer{}, batchSnapshots(t, 3), 3); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := e.pending.Load(); got != 0 {
		t.Fatalf("pending = %d after all batches, want 0", got)
	}
	if got := e.depth.Value(); got != 0 {
		t.Fatalf("queue depth gauge = %v after all batches, want 0 (stale Set race)", got)
	}
}
