package pipeline_test

import (
	"fmt"
	"time"

	"repro/internal/anomaly"
	"repro/internal/kpi"
	"repro/internal/pipeline"
	"repro/internal/rapminer"
)

// Example drives a Monitor by hand through a blip, an incident and its
// resolution.
func Example() {
	schema := kpi.MustSchema(
		kpi.Attribute{Name: "Location", Values: []string{"L1", "L2"}},
		kpi.Attribute{Name: "Website", Values: []string{"Site1", "Site2"}},
	)
	snapshot := func(drop float64) *kpi.Snapshot {
		scope := kpi.MustParseCombination(schema, "(L1, *)")
		var leaves []kpi.Leaf
		for l := int32(0); l < 2; l++ {
			for w := int32(0); w < 2; w++ {
				combo := kpi.Combination{l, w}
				leaf := kpi.Leaf{Combo: combo, Actual: 100, Forecast: 100}
				if drop > 0 && scope.Matches(combo) {
					leaf.Actual = 100 * (1 - drop)
				}
				leaves = append(leaves, leaf)
			}
		}
		snap, err := kpi.NewSnapshot(schema, leaves)
		if err != nil {
			panic(err)
		}
		return snap
	}

	miner, _ := rapminer.New(rapminer.DefaultConfig())
	cfg := pipeline.DefaultConfig(anomaly.DefaultRelativeDeviation(), miner)
	cfg.DebounceTicks = 2
	cfg.ResolveTicks = 1
	monitor, _ := pipeline.New(cfg)

	ts := time.Date(2026, 3, 5, 12, 0, 0, 0, time.UTC)
	drops := []float64{0, 0.5, 0.5, 0.5, 0}
	for i, drop := range drops {
		ev, err := monitor.Process(ts.Add(time.Duration(i)*time.Minute), snapshot(drop))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(ev.Kind)
	}
	// Output:
	// tick
	// arming
	// opened
	// ongoing
	// resolved
}
