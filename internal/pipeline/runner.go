package pipeline

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/kpi"
)

// Source produces the leaf snapshot to monitor at a timestamp. The CDN
// simulator satisfies it; a production deployment would back it with the
// KPI collection layer.
type Source interface {
	SnapshotAt(ts time.Time) (*kpi.Snapshot, error)
	Schema() *kpi.Schema
}

// Runner drives a Monitor over a Source on a fixed tick, delivering events
// on a channel. It owns one goroutine; Stop signals it and waits for exit
// (the events channel is closed when the goroutine drains).
type Runner struct {
	events chan Event
	errs   chan error
	stop   chan struct{}
	done   chan struct{}
}

// StartRunner launches the monitoring loop: every interval of simulated
// time (stepping `step` per tick starting at `start`, one tick per real
// `interval`), it pulls a snapshot and processes it. Passing interval = 0
// runs ticks back-to-back (useful for simulations and tests); `ticks`
// bounds the run, 0 means run until Stop.
func StartRunner(m *Monitor, src Source, start time.Time, step, interval time.Duration, ticks int) (*Runner, error) {
	if m == nil || src == nil {
		return nil, errors.New("pipeline: nil monitor or source")
	}
	if step <= 0 {
		return nil, fmt.Errorf("pipeline: step %v, want > 0", step)
	}
	if ticks < 0 {
		return nil, fmt.Errorf("pipeline: ticks %d, want >= 0", ticks)
	}
	r := &Runner{
		events: make(chan Event, 1),
		errs:   make(chan error, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go r.loop(m, src, start, step, interval, ticks)
	return r, nil
}

// Events delivers one Event per processed tick; closed when the runner
// exits.
func (r *Runner) Events() <-chan Event { return r.events }

// Err returns the first error the loop hit, or nil; valid after Events is
// closed (or after Stop).
func (r *Runner) Err() error {
	select {
	case err := <-r.errs:
		return err
	default:
		return nil
	}
}

// Stop signals the loop and waits for it to exit.
func (r *Runner) Stop() {
	select {
	case <-r.stop:
		// already stopped
	default:
		close(r.stop)
	}
	<-r.done
}

func (r *Runner) loop(m *Monitor, src Source, start time.Time, step, interval time.Duration, ticks int) {
	defer close(r.done)
	defer close(r.events)

	var ticker *time.Ticker
	if interval > 0 {
		ticker = time.NewTicker(interval)
		defer ticker.Stop()
	}
	ts := start
	for i := 0; ticks == 0 || i < ticks; i++ {
		if ticker != nil {
			select {
			case <-r.stop:
				return
			case <-ticker.C:
			}
		} else {
			select {
			case <-r.stop:
				return
			default:
			}
		}
		snap, err := src.SnapshotAt(ts)
		if err != nil {
			r.errs <- fmt.Errorf("pipeline: snapshot at %v: %w", ts, err)
			return
		}
		ev, err := m.Process(ts, snap)
		if err != nil {
			r.errs <- err
			return
		}
		select {
		case r.events <- ev:
		case <-r.stop:
			return
		}
		ts = ts.Add(step)
	}
}
