package pipeline

import (
	"context"
	"testing"
	"time"

	"repro/internal/anomaly"
	"repro/internal/kpi"
	"repro/internal/obs"
	"repro/internal/rapminer"
	"repro/internal/rapminer/explain"
)

// TestPipelineCapturesExplainReports drives an incident open through a
// monitor with its own report store and checks every localizing tick left
// a pipeline-sourced report keyed by a trace ID.
func TestPipelineCapturesExplainReports(t *testing.T) {
	runs := explain.NewStore(8)
	cfg := DefaultConfig(anomaly.DefaultRelativeDeviation(), rapminer.MustNew(rapminer.DefaultConfig()))
	cfg.Runs = runs
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	scope := kpi.MustParseCombination(testSchema(), "(a2, *)")
	failing := func() *kpi.Snapshot { return snapshotWithDrop(t, scope, 0.5) }

	// Two alarming ticks: arming (no localization), then open (localizes).
	if _, err := m.Process(t0, failing()); err != nil {
		t.Fatal(err)
	}
	if runs.Len() != 0 {
		t.Fatalf("arming tick recorded %d reports, want 0", runs.Len())
	}
	if _, err := m.Process(t0.Add(time.Minute), failing()); err != nil {
		t.Fatal(err)
	}
	if runs.Len() != 1 {
		t.Fatalf("opening tick recorded %d reports, want 1", runs.Len())
	}
	rep := runs.Recent()[0]
	if rep.Source != "pipeline" || rep.TraceID == "" {
		t.Errorf("report = source %q, trace %q", rep.Source, rep.TraceID)
	}
	if len(rep.Candidates) == 0 || rep.Candidates[0].Combination[0] != "a2" {
		t.Errorf("report candidates = %+v", rep.Candidates)
	}

	// A caller-supplied trace keys the next report.
	tc := obs.NewTraceContext()
	ctx := obs.ContextWithTrace(context.Background(), tc)
	if _, err := m.ProcessContext(ctx, t0.Add(2*time.Minute), snapshotWithDrop(t, kpi.MustParseCombination(testSchema(), "(a3, *)"), 0.5)); err != nil {
		t.Fatal(err)
	}
	got, ok := runs.Get(tc.TraceID)
	if !ok {
		t.Fatalf("no report under caller trace %s; runs = %+v", tc.TraceID, runs.Recent())
	}
	if got.Source != "pipeline" {
		t.Errorf("caller-traced report source = %q", got.Source)
	}
}
