package pipeline

import (
	"testing"
	"time"

	"repro/internal/anomaly"
	"repro/internal/cdn"
	"repro/internal/kpi"
	"repro/internal/leafforecast"
	"repro/internal/rapminer"
	"repro/internal/timeseries"
)

func newTracked(t *testing.T, sim *cdn.Simulator) *TrackedMonitor {
	t.Helper()
	miner := rapminer.MustNew(rapminer.DefaultConfig())
	cfg := DefaultConfig(anomaly.RelativeDeviation{Threshold: 0.3, Eps: 1e-9}, miner)
	cfg.AlarmThreshold = 0.01
	cfg.DebounceTicks = 1
	cfg.ResolveTicks = 2
	monitor, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := leafforecast.New(sim.Schema(), leafforecast.Config{
		Forecaster: timeseries.EWMA{Alpha: 0.4},
		Window:     32,
		MinHistory: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := NewTracked(monitor, tracker)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestNewTrackedValidation(t *testing.T) {
	if _, err := NewTracked(nil, nil); err == nil {
		t.Error("nil arguments accepted")
	}
}

func TestTrackedMonitorFullLoop(t *testing.T) {
	sim, err := cdn.NewSimulator(cdn.DefaultConfig(71))
	if err != nil {
		t.Fatal(err)
	}
	tm := newTracked(t, sim)
	start := time.Date(2026, 3, 3, 21, 0, 0, 0, time.UTC)
	scope := kpi.MustParseCombination(sim.Schema(), "(*, *, *, Site4)")

	tick := func(m int, failing bool) Event {
		t.Helper()
		snap, err := sim.SnapshotAt(start.Add(time.Duration(m) * time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		// Raw observations only: wipe the simulator's oracle forecasts.
		for i := range snap.Leaves {
			snap.Leaves[i].Forecast = 0
		}
		if failing {
			if err := cdn.ApplyFailures(snap, []cdn.Failure{{
				Kind: cdn.SiteOutage, Scope: scope, Severity: 0.8,
			}}); err != nil {
				t.Fatal(err)
			}
		}
		ev, err := tm.Process(start.Add(time.Duration(m)*time.Minute), snap)
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}

	// Warm-up: the cold tracker never alarms.
	for m := 0; m < 8; m++ {
		if ev := tick(m, false); ev.Kind != EventTick {
			t.Fatalf("warm-up tick %d = %v", m, ev.Kind)
		}
	}
	// Failure: incident opens with the right scope (debounce = 1).
	ev := tick(8, true)
	if ev.Kind != EventOpened {
		t.Fatalf("failure tick = %v, want opened", ev.Kind)
	}
	if len(ev.Incident.Scopes) == 0 || !ev.Incident.Scopes[0].Combo.Equal(scope) {
		t.Fatalf("incident scope = %v, want (*, *, *, Site4)", ev.Incident.Scopes)
	}
	// Recovery: two clean ticks resolve (resolve = 2); the incident
	// lands in history.
	tick(9, false)
	ev = tick(10, false)
	if ev.Kind != EventResolved {
		t.Fatalf("recovery tick = %v, want resolved", ev.Kind)
	}
	if got := tm.History(); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("history = %v", got)
	}
	if tm.Current() != nil {
		t.Fatal("incident still open")
	}
}

func TestTrackedMonitorDoesNotLearnDuringIncidents(t *testing.T) {
	sim, err := cdn.NewSimulator(cdn.DefaultConfig(72))
	if err != nil {
		t.Fatal(err)
	}
	tm := newTracked(t, sim)
	start := time.Date(2026, 3, 4, 21, 0, 0, 0, time.UTC)
	scope := kpi.MustParseCombination(sim.Schema(), "(*, *, *, Site2)")

	process := func(m int, failing bool) Event {
		t.Helper()
		snap, err := sim.SnapshotAt(start.Add(time.Duration(m) * time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		for i := range snap.Leaves {
			snap.Leaves[i].Forecast = 0
		}
		if failing {
			if err := cdn.ApplyFailures(snap, []cdn.Failure{{
				Kind: cdn.SiteOutage, Scope: scope, Severity: 0.8,
			}}); err != nil {
				t.Fatal(err)
			}
		}
		ev, err := tm.Process(start.Add(time.Duration(m)*time.Minute), snap)
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}

	for m := 0; m < 8; m++ {
		process(m, false)
	}
	if process(8, true).Kind != EventOpened {
		t.Fatal("incident did not open")
	}
	// A long outage: if the tracker learned failure data, the baseline
	// would converge to the degraded level and the incident would
	// resolve spuriously. It must stay open.
	for m := 9; m < 25; m++ {
		ev := process(m, true)
		if ev.Kind == EventResolved {
			t.Fatalf("incident resolved at minute %d while the failure persists", m)
		}
	}
	if tm.Current() == nil {
		t.Fatal("incident lost during the outage")
	}
}

func TestTrackedMonitorNilSnapshot(t *testing.T) {
	sim, err := cdn.NewSimulator(cdn.DefaultConfig(73))
	if err != nil {
		t.Fatal(err)
	}
	tm := newTracked(t, sim)
	if _, err := tm.Process(time.Now(), nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}
