package ensemble

import (
	"errors"
	"testing"

	"repro/internal/baseline/fpgrowth"
	"repro/internal/baseline/squeeze"
	"repro/internal/kpi"
	"repro/internal/localize"
	"repro/internal/rapminer"
)

func testSchema() *kpi.Schema {
	return kpi.MustSchema(
		kpi.Attribute{Name: "A", Values: []string{"a1", "a2", "a3"}},
		kpi.Attribute{Name: "B", Values: []string{"b1", "b2"}},
		kpi.Attribute{Name: "C", Values: []string{"c1", "c2"}},
	)
}

func injected(t *testing.T, raps ...kpi.Combination) *kpi.Snapshot {
	t.Helper()
	s := testSchema()
	var leaves []kpi.Leaf
	for a := int32(0); a < 3; a++ {
		for b := int32(0); b < 2; b++ {
			for c := int32(0); c < 2; c++ {
				combo := kpi.Combination{a, b, c}
				leaf := kpi.Leaf{Combo: combo, Actual: 100, Forecast: 100}
				for _, r := range raps {
					if r.Matches(combo) {
						leaf.Actual = 40
						leaf.Anomalous = true
						break
					}
				}
				leaves = append(leaves, leaf)
			}
		}
	}
	snap, err := kpi.NewSnapshot(s, leaves)
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	return snap
}

func members(t *testing.T) []localize.Localizer {
	t.Helper()
	rm, err := rapminer.New(rapminer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := fpgrowth.New(fpgrowth.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sq, err := squeeze.New(squeeze.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return []localize.Localizer{rm, fp, sq}
}

func TestEnsembleAgreesWithMembersOnCleanCase(t *testing.T) {
	s := testSchema()
	rap := kpi.MustParseCombination(s, "(a1, *, *)")
	snap := injected(t, rap)
	ens, err := New(members(t)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := ens.Localize(snap, 2)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if len(res.Patterns) == 0 || !res.Patterns[0].Combo.Equal(rap) {
		t.Fatalf("ensemble top = %s, want (a1, *, *)", res.Format(s))
	}
}

func TestEnsembleConsensusBeatsSingleVote(t *testing.T) {
	// The RAP every member ranks first must outscore patterns only one
	// member mentions.
	s := testSchema()
	rap := kpi.MustParseCombination(s, "(*, b2, *)")
	snap := injected(t, rap)
	ens, err := New(members(t)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := ens.Localize(snap, 5)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if !res.Patterns[0].Combo.Equal(rap) {
		t.Fatalf("consensus RAP not first: %s", res.Format(s))
	}
	if len(res.Patterns) > 1 && res.Patterns[1].Score >= res.Patterns[0].Score {
		t.Errorf("runner-up ties the consensus RAP: %s", res.Format(s))
	}
}

func TestEnsembleValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty ensemble accepted")
	}
	if _, err := New(nil); err == nil {
		t.Error("nil member accepted")
	}
	ens, err := New(members(t)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ens.Localize(nil, 3); err == nil {
		t.Error("nil snapshot accepted")
	}
	if _, err := ens.Localize(injected(t), 0); err == nil {
		t.Error("k = 0 accepted")
	}
	if ens.Name() != "Ensemble" {
		t.Errorf("Name = %q", ens.Name())
	}
	if got := ens.Members(); len(got) != 3 || got[0] != "RAPMiner" {
		t.Errorf("Members = %v", got)
	}
}

type failingLocalizer struct{}

func (failingLocalizer) Name() string { return "boom" }
func (failingLocalizer) Localize(*kpi.Snapshot, int) (localize.Result, error) {
	return localize.Result{}, errors.New("boom")
}

func TestEnsemblePropagatesMemberErrors(t *testing.T) {
	ens, err := New(failingLocalizer{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ens.Localize(injected(t), 3); err == nil {
		t.Error("member error swallowed")
	}
}

func TestEnsembleEmptyWhenNoAnomalies(t *testing.T) {
	ens, err := New(members(t)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ens.Localize(injected(t), 3)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if len(res.Patterns) != 0 {
		t.Errorf("clean snapshot produced %d patterns", len(res.Patterns))
	}
}
