package ensemble

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/baseline/riskloc"
	"repro/internal/kpi"
	"repro/internal/localize"
)

// fixedMember returns a canned ranking, letting tests construct exact RRF
// score ties.
type fixedMember struct {
	name     string
	patterns []localize.ScoredPattern
}

func (f fixedMember) Name() string { return f.name }

func (f fixedMember) Localize(_ *kpi.Snapshot, k int) (localize.Result, error) {
	ps := f.patterns
	if k < len(ps) {
		ps = ps[:k]
	}
	out := make([]localize.ScoredPattern, len(ps))
	copy(out, ps)
	return localize.Result{Patterns: out}, nil
}

// TestTiedRRFScoresRankDeterministically pins the tie-break contract: when
// candidates end with exactly equal fused scores, the final order must be
// stable across repeated votes (lexicographic combination key, via
// SortPatterns) — never a function of map iteration order. The fixture
// makes the ties exact: two members swap the ranks of each pair, so both
// patterns of a pair accumulate the same 1/(60+1)+1/(60+2) sum (IEEE
// addition is commutative), and the vote is repeated 100 times.
func TestTiedRRFScoresRankDeterministically(t *testing.T) {
	s := testSchema()
	snap := injected(t, kpi.MustParseCombination(s, "(a1, *, *)"))

	// Two tied pairs within one layer plus a tied pair at layer 2:
	// every tie must fall through score (equal) and layer (equal) to
	// the lexicographic key.
	combos := []kpi.Combination{
		kpi.MustParseCombination(s, "(a1, *, *)"),
		kpi.MustParseCombination(s, "(a2, *, *)"),
		kpi.MustParseCombination(s, "(*, b1, *)"),
		kpi.MustParseCombination(s, "(*, b2, *)"),
		kpi.MustParseCombination(s, "(a3, b1, *)"),
		kpi.MustParseCombination(s, "(a3, b2, *)"),
	}
	forward := make([]localize.ScoredPattern, len(combos))
	backward := make([]localize.ScoredPattern, len(combos))
	for i, c := range combos {
		forward[i] = localize.ScoredPattern{Combo: c, Score: float64(len(combos) - i)}
	}
	// Pairwise swap: (0,1), (2,3), (4,5) exchange ranks between the two
	// members, producing exact fused-score ties within each pair.
	for i := 0; i < len(combos); i += 2 {
		backward[i], backward[i+1] = forward[i+1], forward[i]
	}

	l, err := New(
		fixedMember{name: "forward", patterns: forward},
		fixedMember{name: "backward", patterns: backward},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	want, err := l.Localize(snap, len(combos))
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if len(want.Patterns) != len(combos) {
		t.Fatalf("got %d patterns, want %d", len(want.Patterns), len(combos))
	}
	for i := 0; i+1 < len(want.Patterns); i += 2 {
		a, b := want.Patterns[i], want.Patterns[i+1]
		if a.Score != b.Score {
			t.Fatalf("fixture broke: patterns %d/%d not tied (%v vs %v)", i, i+1, a.Score, b.Score)
		}
		if a.Combo.Key() >= b.Combo.Key() {
			t.Fatalf("tied pair %d not in lexicographic key order: %s before %s",
				i/2, a.Combo.Format(s), b.Combo.Format(s))
		}
	}

	for run := 0; run < 100; run++ {
		got, err := l.Localize(snap, len(combos))
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: tied ranking diverged\n got %+v\nwant %+v", run, got, want)
		}
	}
}

// TestEnsembleContextPropagatesDegraded checks the ContextLocalizer path:
// a canceled ctx reaching a context-aware member (RiskLoc here, which is
// also how the method joins the voting pool) marks the fused result
// degraded rather than erroring out.
func TestEnsembleContextPropagatesDegraded(t *testing.T) {
	snap := injected(t, kpi.MustParseCombination(testSchema(), "(a1, *, *)"))
	rl, err := riskloc.New(riskloc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(append(members(t), rl)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := l.LocalizeContext(ctx, snap, 3)
	if err != nil {
		t.Fatalf("LocalizeContext: %v", err)
	}
	if !res.Degraded {
		t.Fatal("canceled ctx did not degrade the fused result")
	}
	if res.DegradedReason == "" {
		t.Fatal("degraded fused result carries no reason")
	}
}
