package ensemble_test

import (
	"fmt"

	"repro/internal/baseline/fpgrowth"
	"repro/internal/ensemble"
	"repro/internal/kpi"
	"repro/internal/rapminer"
)

// Example fuses RAPMiner with the FP-growth baseline: the pattern both
// rank first wins the fused ranking.
func Example() {
	schema := kpi.MustSchema(
		kpi.Attribute{Name: "Location", Values: []string{"L1", "L2"}},
		kpi.Attribute{Name: "Website", Values: []string{"Site1", "Site2"}},
	)
	scope := kpi.MustParseCombination(schema, "(*, Site2)")
	var leaves []kpi.Leaf
	for l := int32(0); l < 2; l++ {
		for w := int32(0); w < 2; w++ {
			combo := kpi.Combination{l, w}
			leaf := kpi.Leaf{Combo: combo, Actual: 100, Forecast: 100}
			if scope.Matches(combo) {
				leaf.Actual = 20
				leaf.Anomalous = true
			}
			leaves = append(leaves, leaf)
		}
	}
	snapshot, err := kpi.NewSnapshot(schema, leaves)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	miner, _ := rapminer.New(rapminer.DefaultConfig())
	rules, _ := fpgrowth.New(fpgrowth.DefaultConfig())
	fused, _ := ensemble.New(miner, rules)

	result, err := fused.Localize(snapshot, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(result.Patterns[0].Combo.Format(schema))
	// Output:
	// (*, Site2)
}
