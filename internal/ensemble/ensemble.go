// Package ensemble combines several localization methods with reciprocal
// rank fusion. The RAPMiner paper observes that different methods win on
// different workload shapes (Fig. 8: Squeeze on some 2-D groups, FP-growth
// on (2,1)/(3,3), RAPMiner on 1-D and RAPMD); fusing their rankings is the
// natural "supplement" extension — a pattern several methods agree on is a
// stronger RAP candidate than any single method's opinion.
package ensemble

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/kpi"
	"repro/internal/localize"
)

// rrfK is the standard reciprocal-rank-fusion damping constant.
const rrfK = 60

// Localizer fuses the rankings of its member methods.
type Localizer struct {
	members []localize.Localizer
}

var _ localize.Localizer = (*Localizer)(nil)

// New builds an ensemble over at least one member.
func New(members ...localize.Localizer) (*Localizer, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ensemble: no members")
	}
	for i, m := range members {
		if m == nil {
			return nil, fmt.Errorf("ensemble: member %d is nil", i)
		}
	}
	return &Localizer{members: members}, nil
}

// Name implements localize.Localizer.
func (l *Localizer) Name() string { return "Ensemble" }

// Members returns the member names, for reports.
func (l *Localizer) Members() []string {
	names := make([]string, len(l.members))
	for i, m := range l.members {
		names[i] = m.Name()
	}
	return names
}

// Localize implements localize.Localizer: each member is asked for a
// generous candidate list, and candidates are re-ranked by
// sum over members of 1 / (rrfK + rank).
func (l *Localizer) Localize(snapshot *kpi.Snapshot, k int) (localize.Result, error) {
	return l.LocalizeContext(context.Background(), snapshot, k)
}

var _ localize.ContextLocalizer = (*Localizer)(nil)

// LocalizeContext implements localize.ContextLocalizer. Members run
// sequentially through localize.SafeLocalize, so a ContextLocalizer member
// honors ctx and a panicking member becomes an error instead of unwinding
// the vote. If any member returns a degraded partial, the fused result is
// marked degraded too (the vote was taken over partial rankings).
func (l *Localizer) LocalizeContext(ctx context.Context, snapshot *kpi.Snapshot, k int) (localize.Result, error) {
	if snapshot == nil {
		return localize.Result{}, fmt.Errorf("ensemble: nil snapshot")
	}
	if k <= 0 {
		return localize.Result{}, fmt.Errorf("ensemble: k = %d, want > 0", k)
	}
	askK := 3 * k
	type fused struct {
		combo kpi.Combination
		score float64
		votes int
	}
	pool := make(map[string]*fused)
	var degraded bool
	var reasons []string
	for _, m := range l.members {
		res, err := localize.SafeLocalize(ctx, m, snapshot, askK)
		if err != nil {
			return localize.Result{}, fmt.Errorf("ensemble: %s: %w", m.Name(), err)
		}
		if res.Degraded {
			degraded = true
			reasons = append(reasons, fmt.Sprintf("%s: %s", m.Name(), res.DegradedReason))
		}
		for rank, p := range res.Patterns {
			key := p.Combo.Key()
			f, ok := pool[key]
			if !ok {
				f = &fused{combo: p.Combo}
				pool[key] = f
			}
			f.score += 1 / float64(rrfK+rank+1)
			f.votes++
		}
	}

	// Drain the pool in lexicographic key order so the pre-sort slice —
	// and with it the final ranking on tied RRF scores — never depends
	// on map iteration order. (Combination keys are unique per pattern,
	// so key order is a total order over the candidates.)
	keys := make([]string, 0, len(pool))
	for key := range pool {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	out := make([]localize.ScoredPattern, 0, len(pool))
	for _, key := range keys {
		f := pool[key]
		out = append(out, localize.ScoredPattern{Combo: f.combo, Score: f.score})
	}
	// SortPatterns ranks by fused score and breaks ties toward coarser
	// patterns first, then lexicographic combination key — with the
	// key-ordered input above, equal-score candidates keep a stable,
	// map-independent order.
	localize.SortPatterns(out)
	if k < len(out) {
		out = out[:k]
	}
	return localize.Result{Patterns: out, Degraded: degraded, DegradedReason: strings.Join(reasons, "; ")}, nil
}
