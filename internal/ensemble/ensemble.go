// Package ensemble combines several localization methods with reciprocal
// rank fusion. The RAPMiner paper observes that different methods win on
// different workload shapes (Fig. 8: Squeeze on some 2-D groups, FP-growth
// on (2,1)/(3,3), RAPMiner on 1-D and RAPMD); fusing their rankings is the
// natural "supplement" extension — a pattern several methods agree on is a
// stronger RAP candidate than any single method's opinion.
package ensemble

import (
	"fmt"

	"repro/internal/kpi"
	"repro/internal/localize"
)

// rrfK is the standard reciprocal-rank-fusion damping constant.
const rrfK = 60

// Localizer fuses the rankings of its member methods.
type Localizer struct {
	members []localize.Localizer
}

var _ localize.Localizer = (*Localizer)(nil)

// New builds an ensemble over at least one member.
func New(members ...localize.Localizer) (*Localizer, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ensemble: no members")
	}
	for i, m := range members {
		if m == nil {
			return nil, fmt.Errorf("ensemble: member %d is nil", i)
		}
	}
	return &Localizer{members: members}, nil
}

// Name implements localize.Localizer.
func (l *Localizer) Name() string { return "Ensemble" }

// Members returns the member names, for reports.
func (l *Localizer) Members() []string {
	names := make([]string, len(l.members))
	for i, m := range l.members {
		names[i] = m.Name()
	}
	return names
}

// Localize implements localize.Localizer: each member is asked for a
// generous candidate list, and candidates are re-ranked by
// sum over members of 1 / (rrfK + rank).
func (l *Localizer) Localize(snapshot *kpi.Snapshot, k int) (localize.Result, error) {
	if snapshot == nil {
		return localize.Result{}, fmt.Errorf("ensemble: nil snapshot")
	}
	if k <= 0 {
		return localize.Result{}, fmt.Errorf("ensemble: k = %d, want > 0", k)
	}
	askK := 3 * k
	type fused struct {
		combo kpi.Combination
		score float64
		votes int
	}
	pool := make(map[string]*fused)
	for _, m := range l.members {
		res, err := m.Localize(snapshot, askK)
		if err != nil {
			return localize.Result{}, fmt.Errorf("ensemble: %s: %w", m.Name(), err)
		}
		for rank, p := range res.Patterns {
			key := p.Combo.Key()
			f, ok := pool[key]
			if !ok {
				f = &fused{combo: p.Combo}
				pool[key] = f
			}
			f.score += 1 / float64(rrfK+rank+1)
			f.votes++
		}
	}

	out := make([]localize.ScoredPattern, 0, len(pool))
	for _, f := range pool {
		out = append(out, localize.ScoredPattern{Combo: f.combo, Score: f.score})
	}
	// SortPatterns ranks by fused score and breaks ties toward coarser
	// patterns, which is the right default here too.
	localize.SortPatterns(out)
	if k < len(out) {
		out = out[:k]
	}
	return localize.Result{Patterns: out}, nil
}
