package rapminer

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestPublishDiagnostics(t *testing.T) {
	reg := obs.NewRegistry()
	d := Diagnostics{
		CPs: []AttributeCP{
			{Attr: 0, CP: 0.9}, {Attr: 1, CP: 0.0001}, {Attr: 2, CP: 0.0002},
		},
		KeptAttributes:      []int{0},
		CuboidsTotal:        7,
		CuboidsSearchable:   1,
		CuboidsVisited:      1,
		CombinationsScanned: 42,
		Candidates:          1,
		EarlyStopped:        true,
	}
	PublishDiagnostics(reg, d)

	checks := map[string]float64{
		MetricCuboidsTotal:      7,
		MetricCuboidsSearchable: 1,
		MetricCuboidsVisited:    1,
		MetricCandidates:        1,
		MetricAttributesDeleted: 2,
		MetricEarlyStopRatio:    1,
	}
	for name, want := range checks {
		if got := reg.Gauge(name, "").Value(); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if got := reg.Counter(MetricCombinationsScanned, "").Value(); got != 42 {
		t.Errorf("combinations scanned = %v, want 42", got)
	}

	// A second, non-early-stopped run: gauges track the last run, counters
	// accumulate, the ratio averages.
	d.EarlyStopped = false
	d.CuboidsVisited = 3
	PublishDiagnostics(reg, d)
	if got := reg.Gauge(MetricCuboidsVisited, "").Value(); got != 3 {
		t.Errorf("visited after 2nd run = %v, want 3", got)
	}
	if got := reg.Counter(MetricRuns, "").Value(); got != 2 {
		t.Errorf("runs = %v, want 2", got)
	}
	if got := reg.Gauge(MetricEarlyStopRatio, "").Value(); got != 0.5 {
		t.Errorf("early stop ratio = %v, want 0.5", got)
	}
	if got := reg.Counter(MetricCombinationsScanned, "").Value(); got != 84 {
		t.Errorf("combinations scanned = %v, want 84", got)
	}
}

func TestRegisterMetricsExposesZeroSchema(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, name := range []string{
		MetricCuboidsTotal, MetricCuboidsSearchable, MetricCuboidsVisited,
		MetricCombinationsScanned, MetricCandidates, MetricAttributesDeleted,
		MetricRuns, MetricEarlyStops, MetricEarlyStopRatio,
	} {
		if !strings.Contains(body, name+" 0") {
			t.Errorf("registration did not expose %s at zero:\n%s", name, body)
		}
	}
	// The live layer-scan instruments register too: the counters at zero,
	// the histogram with its bucket series.
	for _, name := range []string{MetricLayerScanPasses, MetricLayerScanFusedCuboids} {
		if !strings.Contains(body, name+" 0") {
			t.Errorf("registration did not expose %s at zero:\n%s", name, body)
		}
	}
	if !strings.Contains(body, MetricLayerScanSeconds+"_count 0") {
		t.Errorf("registration did not expose %s histogram:\n%s", MetricLayerScanSeconds, body)
	}
	// Registration must not count a run.
	if got := reg.Counter(MetricRuns, "").Value(); got != 0 {
		t.Errorf("RegisterMetrics counted %v runs", got)
	}
}

// TestSearchObservesLayerScanMetrics checks a localization run feeds the
// live layer-scan instruments on the default registry: passes and fused
// cuboids accumulate, and the seconds histogram records one observation per
// layer entered.
func TestSearchObservesLayerScanMetrics(t *testing.T) {
	mx := layerScanInstruments()
	passes0 := mx.passes.Value()
	fused0 := mx.fused.Value()

	snap := fig6Snapshot(t)
	res, diag, err := MustNew(DefaultConfig()).LocalizeWithDiagnostics(snap, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns")
	}
	wantPasses := 0
	for _, l := range diag.Layers {
		wantPasses += l.ScanPasses
	}
	if got := mx.passes.Value() - passes0; got != float64(wantPasses) {
		t.Errorf("%s advanced by %v, want %d", MetricLayerScanPasses, got, wantPasses)
	}
	if got := mx.fused.Value() - fused0; got < 1 {
		t.Errorf("%s advanced by %v, want >= 1", MetricLayerScanFusedCuboids, got)
	}
}

func TestMinerImplementsDiagnosticLocalizer(t *testing.T) {
	var loc interface{} = MustNew(DefaultConfig())
	if _, ok := loc.(DiagnosticLocalizer); !ok {
		t.Fatal("*Miner does not satisfy DiagnosticLocalizer")
	}
}
