package rapminer

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/gendata"
	"repro/internal/kpi"
)

// scrubScanStrategy zeroes the per-layer scan-strategy telemetry
// (ScanPasses, FusedCuboids, RollupServed) so Diagnostics from different
// scan engines can be compared on their search semantics — which must be
// bit-identical — without the strategy counters that differ by
// construction.
func scrubScanStrategy(d Diagnostics) Diagnostics {
	layers := make([]LayerStats, len(d.Layers))
	copy(layers, d.Layers)
	for i := range layers {
		layers[i].ScanPasses, layers[i].FusedCuboids, layers[i].RollupServed = 0, 0, 0
	}
	d.Layers = layers
	return d
}

// TestRollupEngineMatchesFused is the determinism pin between the two scan
// engines: at every worker count, a roll-up run (RollupLimit 0, the
// default) and a fused-only run (RollupLimit -1) must produce bit-identical
// results and — up to the scan-strategy counters — bit-identical
// Diagnostics, so the fallback path can never drift from the roll-up path.
// It also pins the headline claim: with roll-up on, the whole search over a
// dense corpus costs ONE pass over the leaf store, and every layer's
// cuboids are served without leaf reads.
func TestRollupEngineMatchesFused(t *testing.T) {
	corpus, err := gendata.RAPMD(17, 6)
	if err != nil {
		t.Fatal(err)
	}
	snapshots := make([]*kpi.Snapshot, 0, len(corpus.Cases)+1)
	for _, c := range corpus.Cases {
		snapshots = append(snapshots, c.Snapshot)
	}
	snapshots = append(snapshots, benchCase(t))

	base, err := New(DefaultConfig()) // RollupLimit 0: roll-up on, auto-sized
	if err != nil {
		t.Fatal(err)
	}
	fusedOnly := base.WithRollupLimit(-1)
	for si, snap := range snapshots {
		for _, workers := range []int{1, 2, 4, 8} {
			on := base.WithWorkers(workers)
			off := fusedOnly.WithWorkers(workers)
			onRes, onDiag, err := on.LocalizeWithDiagnostics(snap, 10)
			if err != nil {
				t.Fatalf("case %d workers %d (rollup on): %v", si, workers, err)
			}
			offRes, offDiag, err := off.LocalizeWithDiagnostics(snap, 10)
			if err != nil {
				t.Fatalf("case %d workers %d (rollup off): %v", si, workers, err)
			}
			if !reflect.DeepEqual(onRes, offRes) {
				t.Errorf("case %d workers %d: results diverge between engines\n  on %+v\n off %+v",
					si, workers, onRes, offRes)
			}
			if !reflect.DeepEqual(scrubScanStrategy(onDiag), scrubScanStrategy(offDiag)) {
				t.Errorf("case %d workers %d: diagnostics diverge between engines\n  on %+v\n off %+v",
					si, workers, onDiag, offDiag)
			}

			// The roll-up run's cost model: one base pass over the leaves
			// serves every layer of these dense corpora by pure arithmetic.
			passes := 0
			for _, l := range onDiag.Layers {
				passes += l.ScanPasses
			}
			if passes > 1 {
				t.Errorf("case %d workers %d: %d leaf passes with roll-up on, want <= 1", si, workers, passes)
			}
			if len(onDiag.KeptAttributes) >= 2 {
				for _, l := range onDiag.Layers {
					if l.RollupServed != l.Cuboids {
						t.Errorf("case %d workers %d layer %d: %d of %d cuboids rolled up, want all",
							si, workers, l.Layer, l.RollupServed, l.Cuboids)
					}
				}
			}
			// The fused-only engine must never report roll-up service.
			for _, l := range offDiag.Layers {
				if l.RollupServed != 0 {
					t.Errorf("case %d workers %d layer %d: fused-only run reports %d rolled up",
						si, workers, l.Layer, l.RollupServed)
				}
			}
		}
	}
}

// TestRollupBudgetCutoffMatchesFused pins the degraded semantics across
// engines: a deterministic MaxCuboids budget must cut both engines off at
// the same cuboid boundary with identical partial results at any worker
// count.
func TestRollupBudgetCutoffMatchesFused(t *testing.T) {
	snap := benchCase(t)
	cfg := DefaultConfig()
	cfg.MaxCuboids = 3
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want Diagnostics
	for i, workers := range []int{1, 2, 4, 8} {
		for _, rollup := range []int{0, -1} {
			res, diag, err := m.WithWorkers(workers).WithRollupLimit(rollup).LocalizeWithDiagnostics(snap, 10)
			if err != nil {
				t.Fatalf("workers %d rollup %d: %v", workers, rollup, err)
			}
			if !res.Degraded || res.DegradedReason != DegradedMaxCuboids {
				t.Fatalf("workers %d rollup %d: degraded = %v (%q), want max-cuboids cutoff",
					workers, rollup, res.Degraded, res.DegradedReason)
			}
			if diag.CuboidsVisited != cfg.MaxCuboids {
				t.Fatalf("workers %d rollup %d: visited %d cuboids, want %d",
					workers, rollup, diag.CuboidsVisited, cfg.MaxCuboids)
			}
			scrubbed := scrubScanStrategy(diag)
			if i == 0 && rollup == 0 {
				want = scrubbed
				continue
			}
			if !reflect.DeepEqual(scrubbed, want) {
				t.Errorf("workers %d rollup %d: budgeted diagnostics diverge", workers, rollup)
			}
		}
	}
}

// TestRollupPreCanceledContext pins the degraded first-cuboid guarantee
// with roll-up enabled: an already-canceled context still merges exactly
// one cuboid, identically at every worker count.
func TestRollupPreCanceledContext(t *testing.T) {
	snap := benchCase(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := MustNew(DefaultConfig())
	var want Diagnostics
	for i, workers := range []int{1, 4, 8} {
		res, diag, err := m.WithWorkers(workers).LocalizeWithDiagnosticsContext(ctx, snap, 10)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if !res.Degraded || diag.CuboidsVisited != 1 {
			t.Fatalf("workers %d: degraded=%v visited=%d, want the single guaranteed cuboid",
				workers, res.Degraded, diag.CuboidsVisited)
		}
		if i == 0 {
			want = diag
			continue
		}
		if !reflect.DeepEqual(diag, want) {
			t.Errorf("workers %d: pre-canceled diagnostics diverge from workers=1", workers)
		}
	}
}

// TestWithRollupLimitDoesNotMutateReceiver checks WithRollupLimit derives a
// new miner and leaves the receiver untouched.
func TestWithRollupLimitDoesNotMutateReceiver(t *testing.T) {
	m := MustNew(DefaultConfig())
	d := m.WithRollupLimit(-1)
	if d.cfg.RollupLimit != -1 {
		t.Fatalf("derived miner RollupLimit = %d, want -1", d.cfg.RollupLimit)
	}
	if m.cfg.RollupLimit != 0 {
		t.Fatalf("receiver mutated to RollupLimit %d, want 0", m.cfg.RollupLimit)
	}
}
