package rapminer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kpi"
	"repro/internal/localize"
)

// tableVSchema is the 4-attribute schema behind Table V / Fig. 7 of the
// paper: A{a1,a2,a3}, B{b1,b2}, C{c1,c2} plus a fourth attribute D that the
// walkthrough leaves unconstrained.
func tableVSchema() *kpi.Schema {
	return kpi.MustSchema(
		kpi.Attribute{Name: "A", Values: []string{"a1", "a2", "a3"}},
		kpi.Attribute{Name: "B", Values: []string{"b1", "b2"}},
		kpi.Attribute{Name: "C", Values: []string{"c1", "c2"}},
		kpi.Attribute{Name: "D", Values: []string{"d1", "d2"}},
	)
}

// denseSnapshot builds a dense snapshot over schema s, labeling anomalous
// exactly the leaves matched by one of the raps.
func denseSnapshot(t *testing.T, s *kpi.Schema, raps ...kpi.Combination) *kpi.Snapshot {
	t.Helper()
	var leaves []kpi.Leaf
	n := s.NumAttributes()
	combo := make(kpi.Combination, n)
	var rec func(depth int)
	rec = func(depth int) {
		if depth == n {
			c := combo.Clone()
			anom := false
			for _, r := range raps {
				if r.Matches(c) {
					anom = true
					break
				}
			}
			leaves = append(leaves, kpi.Leaf{Combo: c, Actual: 100, Forecast: 100, Anomalous: anom})
			return
		}
		for v := int32(0); v < int32(s.Cardinality(depth)); v++ {
			combo[depth] = v
			rec(depth + 1)
		}
	}
	rec(0)
	snap, err := kpi.NewSnapshot(s, leaves)
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	return snap
}

func combosEqualAsSet(got []kpi.Combination, want []kpi.Combination) bool {
	if len(got) != len(want) {
		return false
	}
	used := make([]bool, len(want))
outer:
	for _, g := range got {
		for i, w := range want {
			if !used[i] && g.Equal(w) {
				used[i] = true
				continue outer
			}
		}
		return false
	}
	return true
}

func TestSearchWalkthroughTableV(t *testing.T) {
	// Fig. 7: the RAPs are (a1, *, *, *) and (a2, b2, *, *). The search
	// must find exactly those, pruning every descendant.
	s := tableVSchema()
	raps := []kpi.Combination{
		kpi.MustParseCombination(s, "(a1, *, *, *)"),
		kpi.MustParseCombination(s, "(a2, b2, *, *)"),
	}
	snap := denseSnapshot(t, s, raps...)

	m := MustNew(DefaultConfig())
	res, err := m.Localize(snap, 10)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if !combosEqualAsSet(res.TopK(len(res.Patterns)), raps) {
		t.Fatalf("found %s, want the Table V RAPs", res.Format(s))
	}
	// RAPScore ranks the layer-1 candidate first: 1/sqrt(1) > 1/sqrt(2).
	if !res.Patterns[0].Combo.Equal(raps[0]) {
		t.Errorf("first result = %s, want (a1, *, *, *)", res.Patterns[0].Combo.Format(s))
	}
	if math.Abs(res.Patterns[0].Score-1) > 1e-12 {
		t.Errorf("score of layer-1 RAP = %v, want 1", res.Patterns[0].Score)
	}
	if math.Abs(res.Patterns[1].Score-1/math.Sqrt(2)) > 1e-12 {
		t.Errorf("score of layer-2 RAP = %v, want 1/sqrt(2)", res.Patterns[1].Score)
	}
}

func TestSearchFig3CDNScenario(t *testing.T) {
	// Fig. 3: (L1, *, *, Site1) is the RAP; its descendants are anomalous
	// but must not be reported.
	s := kpi.MustSchema(
		kpi.Attribute{Name: "Location", Values: []string{"L1", "L2", "L3"}},
		kpi.Attribute{Name: "AccessType", Values: []string{"Wireless", "Fixed"}},
		kpi.Attribute{Name: "OS", Values: []string{"Android", "IOS"}},
		kpi.Attribute{Name: "Website", Values: []string{"Site1", "Site2"}},
	)
	rap := kpi.MustParseCombination(s, "(L1, *, *, Site1)")
	snap := denseSnapshot(t, s, rap)

	m := MustNew(DefaultConfig())
	res, err := m.Localize(snap, 5)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if len(res.Patterns) != 1 || !res.Patterns[0].Combo.Equal(rap) {
		t.Fatalf("got %s, want exactly (L1, *, *, Site1)", res.Format(s))
	}
}

func TestSearchThreeDimensionalRAP(t *testing.T) {
	s := tableVSchema()
	rap := kpi.MustParseCombination(s, "(a3, b1, c2, *)")
	snap := denseSnapshot(t, s, rap)
	m := MustNew(DefaultConfig())
	res, err := m.Localize(snap, 3)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if len(res.Patterns) != 1 || !res.Patterns[0].Combo.Equal(rap) {
		t.Fatalf("got %s, want (a3, b1, c2, *)", res.Format(s))
	}
}

func TestSearchLeafLevelRAP(t *testing.T) {
	s := tableVSchema()
	rap := kpi.MustParseCombination(s, "(a1, b1, c1, d1)")
	snap := denseSnapshot(t, s, rap)
	m := MustNew(DefaultConfig())
	res, err := m.Localize(snap, 3)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if len(res.Patterns) != 1 || !res.Patterns[0].Combo.Equal(rap) {
		t.Fatalf("got %s, want the single leaf RAP", res.Format(s))
	}
}

func TestSearchMultipleRAPsAcrossCuboids(t *testing.T) {
	// RAPMD Randomness 1: RAP dimensions may differ within one failure.
	s := tableVSchema()
	raps := []kpi.Combination{
		kpi.MustParseCombination(s, "(*, b1, *, *)"),
		kpi.MustParseCombination(s, "(a2, *, c2, d1)"),
	}
	snap := denseSnapshot(t, s, raps...)
	// The 3-D RAP covers only 2 of 24 leaves, so its attributes carry
	// little classification power; a small t_CP keeps them searchable
	// (larger t_CP trades exactly this kind of RAP for speed, Fig. 10a).
	m := MustNew(Config{TCP: 0.005, TConf: 0.8})
	res, err := m.Localize(snap, 10)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	got := res.TopK(len(res.Patterns))
	// (*, b1, *, *) must be found. (a2, *, c2, d1) overlaps it; the part
	// of its scope outside b1 must also be covered by some candidate that
	// is not a descendant of (*, b1, *, *).
	found := false
	for _, g := range got {
		if g.Equal(raps[0]) {
			found = true
		}
	}
	if !found {
		t.Fatalf("1-D RAP missing from %s", res.Format(s))
	}
	// Every anomalous leaf is covered by the returned set.
	for _, l := range snap.Leaves {
		if !l.Anomalous {
			continue
		}
		covered := false
		for _, g := range got {
			if g.Matches(l.Combo) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("anomalous leaf %s not covered by %s", l.Combo.Format(s), res.Format(s))
		}
	}
}

func TestSearchToleratesLabelNoise(t *testing.T) {
	// With t_conf = 0.8 a RAP whose scope is 90% anomalous is still
	// found ("a relatively large t_conf will achieve a good
	// error-tolerant rate").
	s := kpi.MustSchema(
		kpi.Attribute{Name: "A", Values: []string{"a1", "a2"}},
		kpi.Attribute{Name: "B", Values: []string{"b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8", "b9", "b10"}},
	)
	rap := kpi.MustParseCombination(s, "(a1, *)")
	snap := denseSnapshot(t, s, rap)
	// Flip one of the ten anomalous leaves back to normal.
	for i := range snap.Leaves {
		if snap.Leaves[i].Anomalous {
			snap.Leaves[i].Anomalous = false
			break
		}
	}
	m := MustNew(DefaultConfig())
	res, err := m.Localize(snap, 3)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if len(res.Patterns) == 0 || !res.Patterns[0].Combo.Equal(rap) {
		t.Fatalf("noisy RAP not recovered: %s", res.Format(s))
	}
}

func TestLocalizeNoAnomalies(t *testing.T) {
	s := tableVSchema()
	snap := denseSnapshot(t, s) // no RAPs: nothing anomalous
	m := MustNew(DefaultConfig())
	res, err := m.Localize(snap, 3)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if len(res.Patterns) != 0 {
		t.Errorf("got %d patterns on a clean snapshot", len(res.Patterns))
	}
}

func TestLocalizeAllAnomalous(t *testing.T) {
	s := tableVSchema()
	snap := denseSnapshot(t, s, kpi.NewRoot(4))
	m := MustNew(DefaultConfig())
	res, err := m.Localize(snap, 3)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if len(res.Patterns) != 1 || !res.Patterns[0].Combo.Equal(kpi.NewRoot(4)) {
		t.Fatalf("got %v, want the root pattern", res.Patterns)
	}
}

func TestLocalizeArgumentValidation(t *testing.T) {
	m := MustNew(DefaultConfig())
	if _, err := m.Localize(nil, 3); err == nil {
		t.Error("nil snapshot accepted")
	}
	s := tableVSchema()
	snap := denseSnapshot(t, s)
	if _, err := m.Localize(snap, 0); err == nil {
		t.Error("k = 0 accepted")
	}
}

func TestNewConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{TCP: -0.1, TConf: 0.8},
		{TCP: 1.0, TConf: 0.8},
		{TCP: 0.02, TConf: 0},
		{TCP: 0.02, TConf: 1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid config", cfg)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("New(DefaultConfig()) = %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(Config{TCP: -1, TConf: 2})
}

func TestLocalizeTopKTruncation(t *testing.T) {
	// Three disjoint 1-D RAPs on attribute A; ask for k = 2.
	s := kpi.MustSchema(
		kpi.Attribute{Name: "A", Values: []string{"a1", "a2", "a3", "a4", "a5"}},
		kpi.Attribute{Name: "B", Values: []string{"b1", "b2"}},
	)
	raps := []kpi.Combination{
		kpi.MustParseCombination(s, "(a1, *)"),
		kpi.MustParseCombination(s, "(a2, *)"),
		kpi.MustParseCombination(s, "(a3, *)"),
	}
	snap := denseSnapshot(t, s, raps...)
	m := MustNew(DefaultConfig())
	res, err := m.Localize(snap, 2)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if len(res.Patterns) != 2 {
		t.Fatalf("got %d patterns, want 2", len(res.Patterns))
	}
}

func TestSearchResultsAreAntichain(t *testing.T) {
	// No returned RAP may be an ancestor of another (Criteria 3), under
	// random injected RAP sets.
	s := tableVSchema()
	r := rand.New(rand.NewSource(11))
	m := MustNew(DefaultConfig())
	for trial := 0; trial < 50; trial++ {
		nRAPs := 1 + r.Intn(3)
		var raps []kpi.Combination
		for i := 0; i < nRAPs; i++ {
			c := kpi.NewRoot(4)
			dims := 1 + r.Intn(3)
			perm := r.Perm(4)
			for _, a := range perm[:dims] {
				c[a] = int32(r.Intn(s.Cardinality(a)))
			}
			raps = append(raps, c)
		}
		snap := denseSnapshot(t, s, raps...)
		res, err := m.Localize(snap, 10)
		if err != nil {
			t.Fatalf("Localize: %v", err)
		}
		got := res.TopK(len(res.Patterns))
		for i := range got {
			for j := range got {
				if i != j && got[i].IsAncestorOf(got[j]) {
					t.Fatalf("trial %d: %s is ancestor of %s",
						trial, got[i].Format(s), got[j].Format(s))
				}
			}
		}
		// Confidence of every returned pattern exceeds t_conf.
		for _, g := range got {
			if conf := snap.Confidence(g); conf <= 0.8 {
				t.Fatalf("trial %d: returned pattern %s has confidence %v",
					trial, g.Format(s), conf)
			}
		}
	}
}

func TestDisableAttributeDeletionStillFindsRAPs(t *testing.T) {
	s := tableVSchema()
	rap := kpi.MustParseCombination(s, "(a2, b2, *, *)")
	snap := denseSnapshot(t, s, rap)
	m := MustNew(Config{TCP: 0.02, TConf: 0.8, DisableAttributeDeletion: true})
	res, err := m.Localize(snap, 3)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if len(res.Patterns) != 1 || !res.Patterns[0].Combo.Equal(rap) {
		t.Fatalf("ablated miner got %s, want (a2, b2, *, *)", res.Format(s))
	}
}

func TestAttributeDeletionAgreesWithFullSearch(t *testing.T) {
	// On clean labels, deleting redundant attributes must not change the
	// result set (the deleted attributes are not in any RAP).
	s := tableVSchema()
	r := rand.New(rand.NewSource(23))
	fast := MustNew(DefaultConfig())
	slow := MustNew(Config{TCP: 0.02, TConf: 0.8, DisableAttributeDeletion: true})
	for trial := 0; trial < 30; trial++ {
		c := kpi.NewRoot(4)
		dims := 1 + r.Intn(2)
		perm := r.Perm(4)
		for _, a := range perm[:dims] {
			c[a] = int32(r.Intn(s.Cardinality(a)))
		}
		snap := denseSnapshot(t, s, c)
		a, err := fast.Localize(snap, 5)
		if err != nil {
			t.Fatalf("fast: %v", err)
		}
		b, err := slow.Localize(snap, 5)
		if err != nil {
			t.Fatalf("slow: %v", err)
		}
		if !combosEqualAsSet(a.TopK(len(a.Patterns)), b.TopK(len(b.Patterns))) {
			t.Fatalf("trial %d: results differ:\nwith deletion: %s\nwithout: %s",
				trial, a.Format(s), b.Format(s))
		}
	}
}

func TestSortPatternsTieBreaks(t *testing.T) {
	ps := []localize.ScoredPattern{
		{Combo: kpi.Combination{0, 1, kpi.Wildcard}, Score: 0.5},
		{Combo: kpi.Combination{0, kpi.Wildcard, kpi.Wildcard}, Score: 0.5},
		{Combo: kpi.Combination{1, kpi.Wildcard, kpi.Wildcard}, Score: 0.9},
	}
	localize.SortPatterns(ps)
	if ps[0].Score != 0.9 {
		t.Errorf("highest score not first: %+v", ps)
	}
	if ps[1].Combo.Layer() != 1 {
		t.Errorf("tie not broken by layer: %+v", ps)
	}
}

func TestDefinitionOneInvariantQuick(t *testing.T) {
	// Definition 1 on arbitrary random labelings: no returned RAP has an
	// anomalous parent (confidence above t_conf), and every returned RAP
	// is itself anomalous.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := kpi.MustSchema(
			kpi.Attribute{Name: "A", Values: []string{"a1", "a2", "a3"}},
			kpi.Attribute{Name: "B", Values: []string{"b1", "b2"}},
			kpi.Attribute{Name: "C", Values: []string{"c1", "c2"}},
		)
		var leaves []kpi.Leaf
		for a := int32(0); a < 3; a++ {
			for b := int32(0); b < 2; b++ {
				for c := int32(0); c < 2; c++ {
					leaves = append(leaves, kpi.Leaf{
						Combo:     kpi.Combination{a, b, c},
						Actual:    1,
						Forecast:  1,
						Anomalous: r.Intn(3) == 0,
					})
				}
			}
		}
		snap, err := kpi.NewSnapshot(s, leaves)
		if err != nil {
			return false
		}
		m := MustNew(DefaultConfig())
		res, err := m.Localize(snap, 10)
		if err != nil {
			return false
		}
		for _, p := range res.Patterns {
			if p.Combo.Layer() == 0 {
				// The all-anomalous special case returns the root,
				// which has no parents by construction.
				continue
			}
			if snap.Confidence(p.Combo) <= 0.8 {
				return false // not anomalous itself
			}
			for _, parent := range p.Combo.Parents() {
				if parent.Layer() == 0 {
					continue // the root is outside the cuboid lattice
				}
				if snap.Confidence(parent) > 0.8 {
					return false // anomalous parent: not a RAP
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
