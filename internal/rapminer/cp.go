package rapminer

import (
	"math"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/kpi"
)

// AttributeCP pairs an attribute index with its Classification Power.
type AttributeCP struct {
	Attr int
	CP   float64
}

// ClassificationPower computes CP_attr (Eq. 1 of the paper): the normalized
// information gain obtained when the anomalous/normal labeling of the leaf
// dataset D is partitioned by the elements of attribute attr.
//
//	CP_attr = (Info(D) - Info_attr(D)) / Info(D)
//
// When Info(D) is zero (no anomalies, or every leaf anomalous) no attribute
// can reduce entropy and CP is defined as 0.
func ClassificationPower(s *kpi.Snapshot, attr int) float64 {
	// The columnar store carries the anomaly bitset with a cached
	// population count, so a run computing CP for n attributes counts
	// anomalies once and never re-walks the leaf structs.
	cols := s.Columns()
	total := cols.Len()
	if total == 0 {
		return 0
	}
	anomalous := cols.NumAnomalous()
	infoD := binaryEntropy(float64(anomalous) / float64(total))
	if infoD == 0 {
		return 0
	}

	// One pass over the attribute's dense element column and the packed
	// bitset: per-element counts of the attribute's branches.
	card := s.Schema.Cardinality(attr)
	branchTotal := make([]int, card)
	branchAnom := make([]int, card)
	elem := cols.Elem(attr)
	bits := cols.AnomalousBits()
	for i, c := range elem {
		branchTotal[c]++
		if bits[i>>6]>>(uint(i)&63)&1 != 0 {
			branchAnom[c]++
		}
	}

	var infoAttr float64
	for i := 0; i < card; i++ {
		if branchTotal[i] == 0 {
			continue
		}
		w := float64(branchTotal[i]) / float64(total)
		infoAttr += w * binaryEntropy(float64(branchAnom[i])/float64(branchTotal[i]))
	}
	cp := (infoD - infoAttr) / infoD
	if cp < 0 {
		// Information gain is mathematically non-negative; clamp the
		// floating-point residue of a no-gain partition.
		cp = 0
	}
	return cp
}

// ClassificationPowers computes CP for every attribute of the snapshot's
// schema, in attribute order.
func ClassificationPowers(s *kpi.Snapshot) []AttributeCP {
	return classificationPowers(s, 1)
}

// classificationPowers fans the per-attribute CP passes across workers.
// Each attribute's computation is independent and identical to
// ClassificationPower, so the result does not depend on the worker count.
func classificationPowers(s *kpi.Snapshot, workers int) []AttributeCP {
	out := make([]AttributeCP, s.Schema.NumAttributes())
	if workers > len(out) {
		workers = len(out)
	}
	if workers <= 1 || len(out) <= 1 {
		for a := range out {
			out[a] = AttributeCP{Attr: a, CP: ClassificationPower(s, a)}
		}
		return out
	}
	// Build the shared columnar store before forking so workers only read it.
	_ = s.Columns()
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		trap panicTrap
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panic on a worker goroutine would kill the process; trap it
			// and rethrow on the caller, where localize's recover converts
			// it into the run's error.
			defer func() {
				if r := recover(); r != nil {
					trap.capture(r, debug.Stack())
				}
			}()
			for {
				a := int(next.Add(1)) - 1
				if a >= len(out) {
					return
				}
				out[a] = AttributeCP{Attr: a, CP: ClassificationPower(s, a)}
			}
		}()
	}
	wg.Wait()
	trap.rethrow()
	return out
}

// SelectAttributes implements Algorithm 1 (Redundant Attributes Deletion):
// attributes whose CP does not exceed tCP are deleted (Criteria 1), and the
// survivors are returned sorted by descending CP.
//
// If deletion would remove every attribute — e.g. the anomaly labels carry
// no structure at all — the full attribute set is retained (sorted by CP)
// so the search still runs; the paper's datasets always have at least one
// attribute with positive classification power, so this is a safety net,
// not a behavioral change on the evaluated workloads.
func SelectAttributes(cps []AttributeCP, tCP float64) []int {
	sorted := append([]AttributeCP(nil), cps...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].CP > sorted[j].CP })

	var kept []int
	for _, c := range sorted {
		if c.CP > tCP {
			kept = append(kept, c.Attr)
		}
	}
	if len(kept) == 0 {
		kept = make([]int, len(sorted))
		for i, c := range sorted {
			kept[i] = c.Attr
		}
	}
	return kept
}

// binaryEntropy returns -(p log p + (1-p) log (1-p)) in nats, with the
// standard convention 0 log 0 = 0.
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	q := 1 - p
	return -(p*math.Log(p) + q*math.Log(q))
}
