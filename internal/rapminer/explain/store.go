package explain

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Store is a bounded, concurrency-safe collection of explain reports keyed
// by trace ID. When full, storing a new report evicts the oldest, so a
// long-lived service keeps the most recent runs inspectable at a fixed
// memory cost.
type Store struct {
	mu    sync.Mutex
	cap   int
	byID  map[string]Report
	order []string // trace IDs, oldest first
	total int
}

// DefaultCapacity bounds the default store: enough for hours of incident
// ticks, small enough to list over HTTP.
const DefaultCapacity = 256

var defaultStore = NewStore(DefaultCapacity)

// Default returns the process-wide store that the HTTP API and the
// pipeline publish into.
func Default() *Store { return defaultStore }

// NewStore builds a store retaining the last capacity reports.
func NewStore(capacity int) *Store {
	if capacity < 1 {
		capacity = 1
	}
	return &Store{cap: capacity, byID: make(map[string]Report, capacity)}
}

// Put stores r under its trace ID, evicting the oldest report when full.
// A report with an empty trace ID is dropped; re-storing an existing ID
// replaces the report in place.
func (s *Store) Put(r Report) {
	if r.TraceID == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[r.TraceID]; ok {
		s.byID[r.TraceID] = r
		return
	}
	for len(s.order) >= s.cap {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.byID, oldest)
	}
	s.byID[r.TraceID] = r
	s.order = append(s.order, r.TraceID)
	s.total++
}

// Get returns the report stored under the trace ID.
func (s *Store) Get(traceID string) (Report, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.byID[traceID]
	return r, ok
}

// Len returns the number of retained reports.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

// Total returns how many reports were ever stored (including evicted).
func (s *Store) Total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Recent returns the retained reports, newest first.
func (s *Store) Recent() []Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Report, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		out = append(out, s.byID[s.order[i]])
	}
	return out
}

// Summary is one run's row in the GET /debug/runs listing.
type Summary struct {
	TraceID         string    `json:"trace_id"`
	Time            time.Time `json:"time"`
	Source          string    `json:"source"`
	Method          string    `json:"method"`
	Leaves          int       `json:"leaves"`
	AnomalousLeaves int       `json:"anomalous_leaves"`
	Candidates      int       `json:"candidates"`
	EarlyStopped    bool      `json:"early_stopped"`
	ElapsedMS       float64   `json:"elapsed_ms"`
}

// summarize projects a report to its listing row.
func summarize(r Report) Summary {
	return Summary{
		TraceID:         r.TraceID,
		Time:            r.Time,
		Source:          r.Source,
		Method:          r.Method,
		Leaves:          r.Leaves,
		AnomalousLeaves: r.AnomalousLeaves,
		Candidates:      len(r.Candidates),
		EarlyStopped:    r.EarlyStopped,
		ElapsedMS:       r.ElapsedMS,
	}
}

// RunsHandler lists the retained runs as JSON (mount at GET /debug/runs):
// {"total": N, "runs": [...]} with runs newest first.
func (s *Store) RunsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		recent := s.Recent()
		summaries := make([]Summary, 0, len(recent))
		for _, r := range recent {
			summaries = append(summaries, summarize(r))
		}
		writeJSON(w, http.StatusOK, struct {
			Total int       `json:"total"`
			Runs  []Summary `json:"runs"`
		}{Total: s.Total(), Runs: summaries})
	})
}

// RunHandler serves one run's full report (mount at GET /debug/runs/{id});
// unknown IDs get a JSON 404.
func (s *Store) RunHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		report, ok := s.Get(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{
				"error": "no run with trace ID " + id,
			})
			return
		}
		writeJSON(w, http.StatusOK, report)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
