// Package explain turns one localization run's rapminer.Diagnostics into a
// stored, servable, human-readable explain report: which attributes
// survived the CP cut (Algorithm 1), how much of the cuboid lattice each
// layer of the AC-guided search scanned and pruned (Algorithm 2), and the
// full ranked candidate set behind the returned RAPs (Eq. 3). Reports are
// keyed by trace ID, so the span tree at /debug/spans and the report at
// /debug/runs/{id} describe the same run.
package explain

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/kpi"
	"repro/internal/rapminer"
)

// Report is one localization run's explain journal, JSON-servable at
// /debug/runs/{trace-id} and renderable as text by `rapmctl explain`.
type Report struct {
	// TraceID keys the report; it equals the run's span-tree trace ID.
	TraceID string    `json:"trace_id"`
	Time    time.Time `json:"time"`
	// Source names the subsystem that ran the localization: "httpapi"
	// for POST /v1/localize, "pipeline" for monitor-driven runs.
	Source string `json:"source"`
	Method string `json:"method"`
	K      int    `json:"k"`
	// Leaves and AnomalousLeaves describe the input snapshot.
	Leaves          int     `json:"leaves"`
	AnomalousLeaves int     `json:"anomalous_leaves"`
	ElapsedMS       float64 `json:"elapsed_ms"`

	// TCP and TConf echo the run's thresholds (t_CP, t_conf).
	TCP   float64 `json:"t_cp"`
	TConf float64 `json:"t_conf"`

	// Attributes holds Algorithm 1's verdict for every attribute.
	Attributes []AttributeVerdict `json:"attributes"`

	// Lattice sizes and total search effort (Algorithm 2).
	CuboidsTotal        int `json:"cuboids_total"`
	CuboidsSearchable   int `json:"cuboids_searchable"`
	CuboidsVisited      int `json:"cuboids_visited"`
	CombinationsScanned int `json:"combinations_scanned"`
	CombinationsPruned  int `json:"combinations_pruned"`

	// Layers journals per-layer effort, in layer order.
	Layers []rapminer.LayerStats `json:"layers"`

	// EarlyStopped and EarlyStopLayer report the Algorithm 2 early stop.
	EarlyStopped   bool `json:"early_stopped"`
	EarlyStopLayer int  `json:"early_stop_layer,omitempty"`

	// Degraded reports a run cut off by cancellation, deadline, or budget;
	// the candidate set is the best-so-far prefix of the search.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`

	// Candidates is the full candidate set in ranked order; the first
	// min(K, len) entries are what the caller received.
	Candidates []Candidate `json:"candidates"`
}

// AttributeVerdict is one attribute's Algorithm 1 outcome.
type AttributeVerdict struct {
	Attr int     `json:"attr"`
	Name string  `json:"name"`
	CP   float64 `json:"cp"`
	// Kept reports whether CP > t_CP (Criteria 1) let the attribute
	// survive into the search.
	Kept bool `json:"kept"`
}

// Candidate is one ranked RAP candidate with the statistics behind Eq. 3.
type Candidate struct {
	Rank int `json:"rank"`
	// Combination is the schema-resolved pattern, one token per
	// attribute ("*" for wildcard).
	Combination     []string `json:"combination"`
	Confidence      float64  `json:"confidence"`
	Layer           int      `json:"layer"`
	RAPScore        float64  `json:"rap_score"`
	AnomalousLeaves int      `json:"anomalous_leaves"`
	TotalLeaves     int      `json:"total_leaves"`
	// Returned reports whether the candidate made the top-k reply.
	Returned bool `json:"returned"`
}

// New builds a report from one run's inputs and journal. The snapshot is
// only read for its schema and leaf counts.
func New(traceID, source, method string, snap *kpi.Snapshot, k int, diag rapminer.Diagnostics, elapsed time.Duration) Report {
	r := Report{
		TraceID:             traceID,
		Time:                time.Now().UTC(),
		Source:              source,
		Method:              method,
		K:                   k,
		Leaves:              snap.Len(),
		AnomalousLeaves:     snap.NumAnomalous(),
		ElapsedMS:           float64(elapsed.Microseconds()) / 1000,
		TCP:                 diag.TCP,
		TConf:               diag.TConf,
		CuboidsTotal:        diag.CuboidsTotal,
		CuboidsSearchable:   diag.CuboidsSearchable,
		CuboidsVisited:      diag.CuboidsVisited,
		CombinationsScanned: diag.CombinationsScanned,
		CombinationsPruned:  diag.CombinationsPruned,
		Layers:              append([]rapminer.LayerStats(nil), diag.Layers...),
		EarlyStopped:        diag.EarlyStopped,
		EarlyStopLayer:      diag.EarlyStopLayer,
		Degraded:            diag.Degraded,
		DegradedReason:      diag.DegradedReason,
	}

	kept := make(map[int]bool, len(diag.KeptAttributes))
	for _, a := range diag.KeptAttributes {
		kept[a] = true
	}
	r.Attributes = make([]AttributeVerdict, 0, len(diag.CPs))
	for _, cp := range diag.CPs {
		r.Attributes = append(r.Attributes, AttributeVerdict{
			Attr: cp.Attr,
			Name: snap.Schema.Attribute(cp.Attr).Name,
			CP:   cp.CP,
			Kept: kept[cp.Attr],
		})
	}

	r.Candidates = make([]Candidate, 0, len(diag.CandidateSet))
	for i, c := range diag.CandidateSet {
		r.Candidates = append(r.Candidates, Candidate{
			Rank:            i + 1,
			Combination:     comboTokens(snap.Schema, c.Combo),
			Confidence:      c.Confidence,
			Layer:           c.Layer,
			RAPScore:        c.RAPScore,
			AnomalousLeaves: c.AnomalousLeaves,
			TotalLeaves:     c.TotalLeaves,
			Returned:        i < k,
		})
	}
	return r
}

// comboTokens resolves a combination to schema value tokens.
func comboTokens(s *kpi.Schema, c kpi.Combination) []string {
	out := make([]string, len(c))
	for a, code := range c {
		if code == kpi.Wildcard {
			out[a] = kpi.WildcardToken
		} else {
			out[a] = s.Value(a, code)
		}
	}
	return out
}

// Render writes the report as a human-readable explanation, the format
// `rapmctl explain` prints.
func (r Report) Render(w io.Writer) {
	fmt.Fprintf(w, "run %s\n", r.TraceID)
	fmt.Fprintf(w, "  time      %s\n", r.Time.Format(time.RFC3339))
	fmt.Fprintf(w, "  source    %s  method %s  k=%d\n", r.Source, r.Method, r.K)
	fmt.Fprintf(w, "  snapshot  %d leaves, %d anomalous\n", r.Leaves, r.AnomalousLeaves)
	fmt.Fprintf(w, "  elapsed   %.3f ms\n", r.ElapsedMS)

	fmt.Fprintf(w, "\nstage 1 — attribute deletion (t_CP = %g, Algorithm 1)\n", r.TCP)
	for _, a := range r.Attributes {
		verdict := "deleted"
		if a.Kept {
			verdict = "kept"
		}
		fmt.Fprintf(w, "  %-16s CP %.6f  %s\n", a.Name, a.CP, verdict)
	}
	fmt.Fprintf(w, "  lattice: %d cuboids total -> %d searchable\n",
		r.CuboidsTotal, r.CuboidsSearchable)

	fmt.Fprintf(w, "\nstage 2 — AC-guided search (t_conf = %g, Algorithm 2)\n", r.TConf)
	for _, l := range r.Layers {
		fmt.Fprintf(w, "  layer %d: %d cuboids, %d combinations scanned, %d pruned, %d candidates"+
			" (%d leaf passes, %d cuboids fused, %d rolled up)\n",
			l.Layer, l.Cuboids, l.Combinations, l.Pruned, l.Candidates,
			l.ScanPasses, l.FusedCuboids, l.RollupServed)
	}
	fmt.Fprintf(w, "  visited %d/%d cuboids, scanned %d combinations, pruned %d (Criteria 3)\n",
		r.CuboidsVisited, r.CuboidsSearchable, r.CombinationsScanned, r.CombinationsPruned)
	switch {
	case r.Degraded:
		fmt.Fprintf(w, "  DEGRADED (%s): search cut off, candidates are best-so-far only\n", r.DegradedReason)
	case r.EarlyStopped:
		fmt.Fprintf(w, "  early stop at layer %d: candidates cover every anomalous leaf\n", r.EarlyStopLayer)
	default:
		fmt.Fprintln(w, "  no early stop: search exhausted the lattice")
	}

	fmt.Fprintf(w, "\ncandidates (RAPScore = Confidence / sqrt(Layer), Eq. 3)\n")
	if len(r.Candidates) == 0 {
		fmt.Fprintln(w, "  (none)")
		return
	}
	for _, c := range r.Candidates {
		marker := " "
		if c.Returned {
			marker = "*"
		}
		fmt.Fprintf(w, "%s %2d. (%s)  conf %.4f  layer %d  score %.4f  (%d/%d leaves)\n",
			marker, c.Rank, strings.Join(c.Combination, ", "),
			c.Confidence, c.Layer, c.RAPScore, c.AnomalousLeaves, c.TotalLeaves)
	}
	fmt.Fprintln(w, "  (* = returned in the top-k reply)")
}
