package explain

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/kpi"
	"repro/internal/rapminer"
)

// testSnapshot builds a small two-attribute snapshot with the (a1, *)
// subtree anomalous.
func testSnapshot(t *testing.T) *kpi.Snapshot {
	t.Helper()
	s := kpi.MustSchema(
		kpi.Attribute{Name: "Location", Values: []string{"a1", "a2", "a3"}},
		kpi.Attribute{Name: "Website", Values: []string{"b1", "b2"}},
	)
	snap := &kpi.Snapshot{Schema: s}
	for a := int32(0); a < 3; a++ {
		for b := int32(0); b < 2; b++ {
			leaf := kpi.Leaf{Combo: kpi.Combination{a, b}, Forecast: 100, Actual: 100}
			if a == 0 {
				leaf.Actual = 20
				leaf.Anomalous = true
			}
			snap.Leaves = append(snap.Leaves, leaf)
		}
	}
	return snap
}

// minedReport runs the miner on the test snapshot and wraps the result.
func minedReport(t *testing.T, traceID string) (Report, rapminer.Diagnostics, *kpi.Snapshot) {
	t.Helper()
	snap := testSnapshot(t)
	m := rapminer.MustNew(rapminer.DefaultConfig())
	_, diag, err := m.LocalizeWithDiagnostics(snap, 2)
	if err != nil {
		t.Fatal(err)
	}
	return New(traceID, "httpapi", "RAPMiner", snap, 2, diag, 1500*time.Microsecond), diag, snap
}

func TestNewReportMapsDiagnostics(t *testing.T) {
	r, diag, snap := minedReport(t, "abc123")

	if r.TraceID != "abc123" || r.Source != "httpapi" || r.Method != "RAPMiner" || r.K != 2 {
		t.Errorf("header = %+v", r)
	}
	if r.Leaves != snap.Len() || r.AnomalousLeaves != snap.NumAnomalous() {
		t.Errorf("leaf counts = %d/%d", r.AnomalousLeaves, r.Leaves)
	}
	if r.ElapsedMS != 1.5 {
		t.Errorf("elapsed = %v ms", r.ElapsedMS)
	}
	if r.TCP != diag.TCP || r.TConf != diag.TConf {
		t.Errorf("thresholds = (%v, %v)", r.TCP, r.TConf)
	}
	if len(r.Attributes) != 2 {
		t.Fatalf("attributes = %d, want 2", len(r.Attributes))
	}
	if r.Attributes[0].Name != "Location" || !r.Attributes[0].Kept {
		t.Errorf("Location verdict = %+v", r.Attributes[0])
	}
	if r.Attributes[1].Name != "Website" || r.Attributes[1].Kept {
		t.Errorf("Website verdict = %+v (should be deleted: no classification power)", r.Attributes[1])
	}
	if len(r.Candidates) != len(diag.CandidateSet) {
		t.Fatalf("candidates = %d, want %d", len(r.Candidates), len(diag.CandidateSet))
	}
	top := r.Candidates[0]
	if got := strings.Join(top.Combination, ","); got != "a1,*" {
		t.Errorf("top candidate = %q, want a1,*", got)
	}
	if top.Rank != 1 || !top.Returned || top.Layer != 1 || top.Confidence != 1 {
		t.Errorf("top candidate = %+v", top)
	}
	if !r.EarlyStopped || r.EarlyStopLayer != 1 {
		t.Errorf("early stop = (%v, %d)", r.EarlyStopped, r.EarlyStopLayer)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r, _, _ := minedReport(t, "roundtrip")
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.TraceID != r.TraceID || len(back.Candidates) != len(r.Candidates) ||
		len(back.Layers) != len(r.Layers) || back.Candidates[0].RAPScore != r.Candidates[0].RAPScore {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestReportRender(t *testing.T) {
	r, _, _ := minedReport(t, "rendered")
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, want := range []string{
		"run rendered",
		"stage 1 — attribute deletion",
		"Location",
		"kept",
		"deleted",
		"stage 2 — AC-guided search",
		"layer 1:",
		"early stop at layer 1",
		"(a1, *)",
		"RAPScore = Confidence / sqrt(Layer)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestStoreBoundedEviction(t *testing.T) {
	s := NewStore(3)
	for i := 0; i < 5; i++ {
		s.Put(Report{TraceID: fmt.Sprintf("id-%d", i)})
	}
	if s.Len() != 3 || s.Total() != 5 {
		t.Errorf("Len = %d, Total = %d", s.Len(), s.Total())
	}
	if _, ok := s.Get("id-0"); ok {
		t.Error("oldest report not evicted")
	}
	if _, ok := s.Get("id-4"); !ok {
		t.Error("newest report missing")
	}
	recent := s.Recent()
	if len(recent) != 3 || recent[0].TraceID != "id-4" || recent[2].TraceID != "id-2" {
		t.Errorf("Recent = %+v", recent)
	}

	// Empty IDs are dropped; replacing an existing ID does not grow.
	s.Put(Report{})
	s.Put(Report{TraceID: "id-4", Source: "updated"})
	if s.Len() != 3 {
		t.Errorf("Len after replace = %d", s.Len())
	}
	if got, _ := s.Get("id-4"); got.Source != "updated" {
		t.Errorf("replace did not take: %+v", got)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore(16)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				s.Put(Report{TraceID: fmt.Sprintf("w%d-%d", w, i)})
				s.Recent()
				s.Get(fmt.Sprintf("w%d-%d", w, i))
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if s.Total() != 8*200 {
		t.Errorf("Total = %d", s.Total())
	}
}

func TestRunsHandlers(t *testing.T) {
	s := NewStore(8)
	r, _, _ := minedReport(t, "deadbeef")
	s.Put(r)

	mux := http.NewServeMux()
	mux.Handle("GET /debug/runs", s.RunsHandler())
	mux.Handle("GET /debug/runs/{id}", s.RunHandler())

	// Listing.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/runs", nil))
	var list struct {
		Total int       `json:"total"`
		Runs  []Summary `json:"runs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Total != 1 || len(list.Runs) != 1 || list.Runs[0].TraceID != "deadbeef" {
		t.Errorf("listing = %+v", list)
	}
	if list.Runs[0].Candidates != len(r.Candidates) || !list.Runs[0].EarlyStopped {
		t.Errorf("summary = %+v", list.Runs[0])
	}

	// Fetch by ID.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/runs/deadbeef", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var got Report
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.TraceID != "deadbeef" || len(got.Candidates) == 0 {
		t.Errorf("report = %+v", got)
	}

	// Unknown ID is a JSON 404.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/runs/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown ID status = %d", rec.Code)
	}
	var apiErr map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &apiErr); err != nil || apiErr["error"] == "" {
		t.Errorf("404 body = %q", rec.Body.String())
	}
}
