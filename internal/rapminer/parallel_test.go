package rapminer

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/gendata"
	"repro/internal/kpi"
	"repro/internal/localize"
)

// TestParallelSearchMatchesSequential is the determinism property behind the
// worker pool: for any worker count the search must produce bit-identical
// results — same candidates, same scores, same ranking, and the same
// Diagnostics journal (layer counts, prune counts, early-stop cut-off) — as
// the sequential single-worker run.
func TestParallelSearchMatchesSequential(t *testing.T) {
	corpus, err := gendata.RAPMD(17, 6)
	if err != nil {
		t.Fatal(err)
	}
	snapshots := make([]*kpi.Snapshot, 0, len(corpus.Cases)+1)
	for _, c := range corpus.Cases {
		snapshots = append(snapshots, c.Snapshot)
	}
	snapshots = append(snapshots, benchCase(t))

	base, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq := base.WithWorkers(1)
	for si, snap := range snapshots {
		wantRes, wantDiag, err := seq.LocalizeWithDiagnostics(snap, 10)
		if err != nil {
			t.Fatalf("case %d: sequential run failed: %v", si, err)
		}
		// The fused layer scan must actually fuse: any layer that merged two
		// or more cuboids has to cost at most half as many leaf-scan passes
		// as the per-cuboid engine would (which paid one pass per cuboid).
		for _, l := range wantDiag.Layers {
			if l.Cuboids >= 2 && l.ScanPasses*2 > l.Cuboids {
				t.Errorf("case %d layer %d: %d scan passes for %d cuboids, want <= half",
					si, l.Layer, l.ScanPasses, l.Cuboids)
			}
			if l.FusedCuboids > l.Cuboids {
				t.Errorf("case %d layer %d: %d fused cuboids > %d merged", si, l.Layer, l.FusedCuboids, l.Cuboids)
			}
		}
		for _, workers := range []int{2, 4, 8} {
			par := base.WithWorkers(workers)
			gotRes, gotDiag, err := par.LocalizeWithDiagnostics(snap, 10)
			if err != nil {
				t.Fatalf("case %d workers %d: %v", si, workers, err)
			}
			if len(gotRes.Patterns) != len(wantRes.Patterns) {
				t.Fatalf("case %d workers %d: %d patterns, want %d",
					si, workers, len(gotRes.Patterns), len(wantRes.Patterns))
			}
			for i := range wantRes.Patterns {
				w, g := wantRes.Patterns[i], gotRes.Patterns[i]
				if !g.Combo.Equal(w.Combo) || g.Score != w.Score {
					t.Errorf("case %d workers %d pattern %d: got %v@%v, want %v@%v",
						si, workers, i, g.Combo, g.Score, w.Combo, w.Score)
				}
			}
			if !reflect.DeepEqual(gotDiag, wantDiag) {
				t.Errorf("case %d workers %d: diagnostics diverge\n got %+v\nwant %+v",
					si, workers, gotDiag, wantDiag)
			}
			// Threading a live context (cancellation plumbing active, no
			// deadline) must not perturb the run either.
			ctxRes, ctxDiag, err := par.LocalizeWithDiagnosticsContext(context.Background(), snap, 10)
			if err != nil {
				t.Fatalf("case %d workers %d (ctx): %v", si, workers, err)
			}
			if ctxRes.Degraded {
				t.Fatalf("case %d workers %d: unbudgeted ctx run reported degraded", si, workers)
			}
			if !reflect.DeepEqual(ctxRes, gotRes) || !reflect.DeepEqual(ctxDiag, gotDiag) {
				t.Errorf("case %d workers %d: ctx-threaded run diverges from context-free run", si, workers)
			}
			// Disabling roll-up must not change the search semantics either:
			// identical results, identical Diagnostics up to the
			// scan-strategy counters (see TestRollupEngineMatchesFused for
			// the full engine matrix).
			offRes, offDiag, err := par.WithRollupLimit(-1).LocalizeWithDiagnostics(snap, 10)
			if err != nil {
				t.Fatalf("case %d workers %d (rollup off): %v", si, workers, err)
			}
			if !reflect.DeepEqual(offRes, gotRes) ||
				!reflect.DeepEqual(scrubScanStrategy(offDiag), scrubScanStrategy(gotDiag)) {
				t.Errorf("case %d workers %d: rollup-off run diverges from rollup-on run", si, workers)
			}
		}
	}
}

// TestWithWorkersDoesNotMutateReceiver checks WithWorkers derives a new miner
// and leaves the receiver's configuration untouched.
func TestWithWorkersDoesNotMutateReceiver(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 3
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := m.WithWorkers(7)
	if got := w.cfg.Workers; got != 7 {
		t.Fatalf("derived miner has %d workers, want 7", got)
	}
	if got := m.cfg.Workers; got != 3 {
		t.Fatalf("receiver mutated to %d workers, want 3", got)
	}
	if neg := m.WithWorkers(-5); neg.cfg.Workers != 0 {
		t.Fatalf("negative worker count not normalized: %d", neg.cfg.Workers)
	}
}

// TestLocalizeBatch checks the batch entry point returns positional results
// identical to per-snapshot Localize calls and honors cancellation.
func TestLocalizeBatch(t *testing.T) {
	corpus, err := gendata.RAPMD(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	snapshots := make([]*kpi.Snapshot, len(corpus.Cases))
	for i, c := range corpus.Cases {
		snapshots[i] = c.Snapshot
	}
	cfg := DefaultConfig()
	cfg.Workers = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := m.LocalizeBatch(context.Background(), snapshots, 5)
	if len(results) != len(snapshots) {
		t.Fatalf("%d results, want %d", len(results), len(snapshots))
	}
	for i, br := range results {
		if br.Err != nil {
			t.Fatalf("item %d: %v", i, br.Err)
		}
		want, err := m.Localize(snapshots[i], 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(br.Result.Patterns) != len(want.Patterns) {
			t.Fatalf("item %d: %d patterns, want %d", i, len(br.Result.Patterns), len(want.Patterns))
		}
		for j := range want.Patterns {
			if !br.Result.Patterns[j].Combo.Equal(want.Patterns[j].Combo) {
				t.Errorf("item %d pattern %d diverges from Localize", i, j)
			}
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, br := range m.LocalizeBatch(ctx, snapshots, 5) {
		if br.Err != context.Canceled {
			t.Fatalf("canceled batch item error = %v, want context.Canceled", br.Err)
		}
	}

	var _ localize.BatchLocalizer = m
}
