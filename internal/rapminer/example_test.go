package rapminer_test

import (
	"fmt"

	"repro/internal/anomaly"
	"repro/internal/kpi"
	"repro/internal/rapminer"
)

// Example mines the Fig. 3 scenario of the paper: every leaf under
// (L1, *, Site1) lost most of its traffic, so that combination is the root
// anomaly pattern.
func Example() {
	schema := kpi.MustSchema(
		kpi.Attribute{Name: "Location", Values: []string{"L1", "L2"}},
		kpi.Attribute{Name: "Website", Values: []string{"Site1", "Site2"}},
	)
	rap := kpi.MustParseCombination(schema, "(L1, Site1)")
	var leaves []kpi.Leaf
	for l := int32(0); l < 2; l++ {
		for w := int32(0); w < 2; w++ {
			combo := kpi.Combination{l, w}
			leaf := kpi.Leaf{Combo: combo, Actual: 100, Forecast: 100}
			if rap.Matches(combo) {
				leaf.Actual = 30
			}
			leaves = append(leaves, leaf)
		}
	}
	snapshot, err := kpi.NewSnapshot(schema, leaves)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	anomaly.Label(snapshot, anomaly.DefaultRelativeDeviation())

	miner := rapminer.MustNew(rapminer.DefaultConfig())
	result, err := miner.Localize(snapshot, 3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, p := range result.Patterns {
		fmt.Println(p.Combo.Format(schema))
	}
	// Output:
	// (L1, Site1)
}

// ExampleClassificationPower shows Eq. 1 on the Fig. 6 dataset: attribute A
// separates the anomalies perfectly while B cannot.
func ExampleClassificationPower() {
	schema := kpi.MustSchema(
		kpi.Attribute{Name: "A", Values: []string{"a1", "a2"}},
		kpi.Attribute{Name: "B", Values: []string{"b1", "b2"}},
	)
	var leaves []kpi.Leaf
	for a := int32(0); a < 2; a++ {
		for b := int32(0); b < 2; b++ {
			leaves = append(leaves, kpi.Leaf{
				Combo:     kpi.Combination{a, b},
				Anomalous: a == 0, // everything under a1 is anomalous
			})
		}
	}
	snapshot, err := kpi.NewSnapshot(schema, leaves)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("CP_A = %.1f\n", rapminer.ClassificationPower(snapshot, 0))
	fmt.Printf("CP_B = %.1f\n", rapminer.ClassificationPower(snapshot, 1))
	// Output:
	// CP_A = 1.0
	// CP_B = 0.0
}
