// Package rapminer implements the paper's primary contribution: the Root
// Anomaly Pattern Miner (RAPMiner, DSN 2022). It mines the coarsest
// attribute combinations that are anomalous while none of their parents are
// (RAPs), in two stages:
//
//  1. Classification-Power-based redundant attribute deletion (Algorithm 1)
//     prunes attributes that cannot appear in any RAP, shrinking the cuboid
//     lattice from 2^n - 1 to 2^(n-k) - 1 cuboids.
//  2. Anomaly-Confidence-guided layer-by-layer top-down BFS (Algorithm 2)
//     walks the remaining lattice from coarse to fine; combinations whose
//     anomaly confidence exceeds t_conf become RAP candidates, their
//     descendants are pruned (Criteria 3) and the search early-stops once
//     the candidates cover every anomalous leaf.
//
// Candidates are ranked by RAPScore = Confidence / sqrt(Layer) (Eq. 3).
package rapminer

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/kpi"
	"repro/internal/localize"
	"repro/internal/obs"
)

// Config holds the miner's two thresholds and the ablation switch.
type Config struct {
	// TCP is t_CP: attributes with classification power <= TCP are
	// deleted before the search. The paper expresses this threshold "in
	// the form of percentage" and requires an attribute's classification
	// power to be "extremely small" before deletion; its recommended
	// range below 0.1 (percent) corresponds to fractions below 0.001.
	TCP float64
	// TConf is t_conf in (0, 1): an attribute combination whose anomaly
	// confidence exceeds TConf is anomalous (Criteria 2). The paper
	// recommends "relatively large" values above 0.5.
	TConf float64
	// DisableAttributeDeletion turns off stage 1, searching all 2^n - 1
	// cuboids. Used by the Table VI ablation.
	DisableAttributeDeletion bool
	// Workers bounds the goroutines used inside one localization run: the
	// per-cuboid scans of each search layer and the per-attribute
	// classification-power passes fan out across this many workers. The
	// result is bit-identical for every worker count. 0 means GOMAXPROCS;
	// 1 runs fully sequential on the caller's goroutine.
	Workers int
	// MaxDuration is the per-run wall-clock budget: a search that is still
	// running when it expires stops at the next cuboid boundary and
	// returns the best-so-far candidates as a degraded partial result
	// (Diagnostics.Degraded). 0 means unlimited. Context deadlines compose
	// with it — the earlier of the two wins.
	MaxDuration time.Duration
	// MaxCuboids bounds how many cuboids one run may scan before it is cut
	// off the same way; unlike MaxDuration the cut-off is deterministic.
	// 0 means unlimited.
	MaxCuboids int
	// RollupLimit caps the flat base-accumulator size (in slots) of the
	// roll-up scan engine: the search scans the leaves once into the
	// finest cuboid of the surviving attributes whose Cartesian size fits
	// the limit, then serves every cuboid that coarsens the base by pure
	// integer roll-up — zero further leaf reads. 0 picks a heuristic limit
	// from the leaf count (kpi.DefaultRollupLimit); negative disables
	// roll-up, restoring the per-layer fused scans. The results and
	// Diagnostics' search semantics are bit-identical either way — only
	// the scan-strategy telemetry (ScanPasses, FusedCuboids, RollupServed)
	// reflects the chosen engine.
	RollupLimit int
}

// DefaultConfig returns the thresholds used in the paper's experiments:
// t_CP = 0.05% (fraction 0.0005) and t_conf = 0.8, both well inside the
// stable regions of Fig. 10.
func DefaultConfig() Config {
	return Config{TCP: 0.0005, TConf: 0.8}
}

// Miner is a configured RAPMiner instance. The zero value is not usable;
// construct with New.
type Miner struct {
	cfg Config
}

var _ localize.Localizer = (*Miner)(nil)

// New validates the configuration and returns a Miner.
func New(cfg Config) (*Miner, error) {
	if cfg.TCP < 0 || cfg.TCP >= 1 {
		return nil, fmt.Errorf("rapminer: t_CP %v out of [0, 1)", cfg.TCP)
	}
	if cfg.TConf <= 0 || cfg.TConf >= 1 {
		return nil, fmt.Errorf("rapminer: t_conf %v out of (0, 1)", cfg.TConf)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("rapminer: workers %d, want >= 0", cfg.Workers)
	}
	if cfg.MaxDuration < 0 {
		return nil, fmt.Errorf("rapminer: max duration %v, want >= 0", cfg.MaxDuration)
	}
	if cfg.MaxCuboids < 0 {
		return nil, fmt.Errorf("rapminer: max cuboids %d, want >= 0", cfg.MaxCuboids)
	}
	return &Miner{cfg: cfg}, nil
}

// workers resolves Config.Workers: 0 means GOMAXPROCS.
func (m *Miner) workers() int {
	if m.cfg.Workers > 0 {
		return m.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// WithWorkers returns a miner sharing m's thresholds with the per-run
// worker count replaced; m is unchanged. Callers that already parallelize
// across snapshots (batch pools) use WithWorkers(1) so items do not
// oversubscribe the CPU with nested fan-out.
func (m *Miner) WithWorkers(n int) *Miner {
	if n < 0 {
		n = 0
	}
	cfg := m.cfg
	cfg.Workers = n
	return &Miner{cfg: cfg}
}

// WithRollupLimit returns a miner sharing m's thresholds with the roll-up
// accumulator limit replaced; m is unchanged. See Config.RollupLimit for
// the knob's meaning (0 auto-sizes, negative disables roll-up).
func (m *Miner) WithRollupLimit(n int) *Miner {
	cfg := m.cfg
	cfg.RollupLimit = n
	return &Miner{cfg: cfg}
}

// MustNew is New that panics on error; for tests and static configurations.
func MustNew(cfg Config) *Miner {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements localize.Localizer.
func (m *Miner) Name() string { return "RAPMiner" }

// ErrNilSnapshot reports a nil snapshot argument.
var ErrNilSnapshot = errors.New("rapminer: nil snapshot")

// Diagnostics reports what the two stages did on one localization run —
// the observability a production deployment needs to explain its answers.
// It is a full per-run journal: Algorithm 1's per-attribute CP verdicts,
// Algorithm 2's per-layer search effort and pruning, and the complete
// candidate set with the statistics behind the Eq. 3 ranking.
type Diagnostics struct {
	// TCP and TConf echo the thresholds the run used, so a stored report
	// stays interpretable after the configuration changes.
	TCP, TConf float64
	// CPs holds every attribute's classification power, in attribute
	// order.
	CPs []AttributeCP
	// KeptAttributes are the surviving attributes in search order
	// (descending CP).
	KeptAttributes []int
	// CuboidsTotal is 2^n - 1 for the schema's n attributes;
	// CuboidsSearchable is 2^len(kept) - 1 after deletion;
	// CuboidsVisited counts cuboids actually scanned before early stop.
	CuboidsTotal, CuboidsSearchable, CuboidsVisited int
	// CombinationsScanned counts group-by rows inspected.
	CombinationsScanned int
	// CombinationsPruned counts group-by rows skipped by Criteria 3
	// (a descendant of an accepted RAP cannot be a RAP).
	CombinationsPruned int
	// Candidates counts RAP candidates found (before top-k truncation).
	Candidates int
	// Layers journals the per-layer search effort, in layer order, for
	// every layer the BFS entered.
	Layers []LayerStats
	// CandidateSet is the full candidate set in ranked order (the same
	// ranking the result uses), with the statistics behind each score.
	CandidateSet []CandidateInfo
	// EarlyStopped reports whether candidate coverage ended the search
	// before the lattice was exhausted; EarlyStopLayer is the layer the
	// stop fired on (0 when the search ran to completion).
	EarlyStopped   bool
	EarlyStopLayer int
	// Degraded reports that the run was cut off — context cancellation, an
	// expired deadline, or an exhausted MaxDuration/MaxCuboids budget —
	// and the candidate set holds only the best-so-far prefix of the
	// search. DegradedReason is one of the Degraded* constants.
	Degraded       bool
	DegradedReason string
}

// LayerStats is one lattice layer's search effort (Algorithm 2 telemetry).
type LayerStats struct {
	// Layer is the cuboid layer (number of concrete attributes).
	Layer int `json:"layer"`
	// Cuboids counts cuboids of this layer that were scanned.
	Cuboids int `json:"cuboids"`
	// Combinations counts group-by rows inspected across those cuboids.
	Combinations int `json:"combinations"`
	// Pruned counts rows skipped by Criteria 3 without computing
	// confidence.
	Pruned int `json:"pruned"`
	// Candidates counts RAP candidates accepted at this layer.
	Candidates int `json:"candidates"`
	// ScanPasses counts completed passes over the leaf store for this
	// layer: one per fused columnar batch (however many cuboids it
	// covered, and regardless of how many workers partitioned it) plus one
	// per per-cuboid fallback scan. Without fusion this would equal
	// Cuboids; fusion drives it toward the batch count.
	ScanPasses int `json:"scan_passes"`
	// FusedCuboids counts cuboids of this layer whose counts were served
	// by the fused pass rather than a per-cuboid scan.
	FusedCuboids int `json:"fused_cuboids"`
	// RollupServed counts cuboids of this layer whose counts were rolled
	// up from the run's materialized base cuboid — pure arithmetic over
	// the base accumulators, zero leaf reads.
	RollupServed int `json:"rollup_served"`
}

// CandidateInfo is one RAP candidate with the statistics behind its Eq. 3
// ranking.
type CandidateInfo struct {
	// Combo is the candidate's attribute combination.
	Combo kpi.Combination
	// Confidence is the anomaly confidence (anomalous / total leaves
	// under the combination, Criteria 2).
	Confidence float64
	// Layer is the cuboid layer the candidate was found at.
	Layer int
	// RAPScore is Confidence / sqrt(Layer) (Eq. 3).
	RAPScore float64
	// AnomalousLeaves and TotalLeaves are the support counts behind
	// Confidence.
	AnomalousLeaves, TotalLeaves int
}

// DeletedAttributes returns the attribute indexes removed by stage 1, in
// attribute order.
func (d Diagnostics) DeletedAttributes() []int {
	kept := make(map[int]bool, len(d.KeptAttributes))
	for _, a := range d.KeptAttributes {
		kept[a] = true
	}
	var deleted []int
	for _, cp := range d.CPs {
		if !kept[cp.Attr] {
			deleted = append(deleted, cp.Attr)
		}
	}
	return deleted
}

// Localize implements localize.Localizer: it runs both stages and returns
// the top-k RAPs by RAPScore.
func (m *Miner) Localize(snapshot *kpi.Snapshot, k int) (localize.Result, error) {
	res, _, err := m.localize(nil, snapshot, k, nil)
	return res, err
}

// LocalizeContext implements localize.ContextLocalizer: Localize under ctx,
// honoring cancellation and deadline. A run cut off mid-search returns its
// best-so-far candidates with Result.Degraded set rather than an error, so
// a tight deadline yields a usable partial answer.
func (m *Miner) LocalizeContext(ctx context.Context, snapshot *kpi.Snapshot, k int) (localize.Result, error) {
	res, _, err := m.localize(ctx, snapshot, k, nil)
	return res, err
}

var _ localize.ContextLocalizer = (*Miner)(nil)

// LocalizeBatch implements localize.BatchLocalizer: the snapshots are
// localized concurrently across cfg.Workers goroutines, each item's run
// fully sequential (item-level parallelism maximizes batch throughput, and
// per-item results are independent of the fan-out). Results are positional;
// a failed item carries its error without affecting its neighbors.
func (m *Miner) LocalizeBatch(ctx context.Context, snapshots []*kpi.Snapshot, k int) []localize.BatchResult {
	return localize.BatchLocalize(ctx, m.WithWorkers(1), snapshots, k, m.workers())
}

// LocalizeWithDiagnostics is Localize plus the run's search statistics.
func (m *Miner) LocalizeWithDiagnostics(snapshot *kpi.Snapshot, k int) (localize.Result, Diagnostics, error) {
	var diag Diagnostics
	res, diag, err := m.localize(nil, snapshot, k, &diag)
	return res, diag, err
}

// LocalizeWithDiagnosticsContext is LocalizeWithDiagnostics under a trace:
// the run's two stages are recorded as child spans of whatever trace ctx
// carries, so the miner's work appears in the caller's span tree. A nil
// context traces the stages as a fresh root trace.
func (m *Miner) LocalizeWithDiagnosticsContext(ctx context.Context, snapshot *kpi.Snapshot, k int) (localize.Result, Diagnostics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var diag Diagnostics
	res, diag, err := m.localize(ctx, snapshot, k, &diag)
	return res, diag, err
}

// localize runs both stages. diag, when non-nil, accumulates the run
// journal; ctx, when non-nil, traces the stages as spans and bounds the run
// (cancellation and deadline), composing with the configured
// MaxDuration/MaxCuboids budget. A panic anywhere in the run — including on
// a search or classification-power worker goroutine — is recovered into the
// run's error with the stack logged, so one poisoned snapshot fails one
// call, not the process.
func (m *Miner) localize(ctx context.Context, snapshot *kpi.Snapshot, k int, diag *Diagnostics) (res localize.Result, out Diagnostics, err error) {
	defer func() {
		if r := recover(); r != nil {
			val, stack := r, debug.Stack()
			if wp, ok := r.(*workerPanic); ok {
				val, stack = wp.val, wp.stack
			}
			if sp, ok := r.(*kpi.ScanPanic); ok {
				val, stack = sp.Val, sp.Stack
			}
			obs.Logger("rapminer").Error("localization panicked",
				slog.Any("panic", val), slog.String("stack", string(stack)))
			res, out = localize.Result{}, Diagnostics{}
			err = fmt.Errorf("rapminer: panic during localization: %v", val)
		}
	}()
	var zero Diagnostics
	if snapshot == nil {
		return localize.Result{}, zero, ErrNilSnapshot
	}
	if k <= 0 {
		return localize.Result{}, zero, fmt.Errorf("rapminer: k = %d, want > 0", k)
	}

	// The anomalous leaf set is cached on the snapshot; the search's
	// coverage check reuses it along with the inverted leaf lists.
	numAnomalous := len(snapshot.AnomalousLeafSet())
	if numAnomalous == 0 {
		return localize.Result{}, zero, nil
	}
	if numAnomalous == snapshot.Len() {
		// Every observed leaf is anomalous: the root itself is the
		// coarsest anomalous combination and it has no parents, so it
		// is the unique RAP by Definition 1.
		root := kpi.NewRoot(snapshot.Schema.NumAttributes())
		out = zero
		if diag != nil {
			diag.TCP, diag.TConf = m.cfg.TCP, m.cfg.TConf
			diag.Candidates = 1
			diag.CandidateSet = []CandidateInfo{{
				Combo: root, Confidence: 1, Layer: 0, RAPScore: 1,
				AnomalousLeaves: numAnomalous, TotalLeaves: snapshot.Len(),
			}}
			out = *diag
		}
		return localize.Result{Patterns: []localize.ScoredPattern{{
			Combo: root,
			Score: 1,
		}}}, out, nil
	}

	var span *obs.Span
	if ctx != nil {
		_, span = obs.StartSpan(ctx, "rapminer.attribute_deletion")
	}
	cps := classificationPowers(snapshot, m.workers())
	attrs := m.selectSearchAttributes(cps)
	if span != nil {
		span.SetAttr("kept", len(attrs))
		span.SetAttr("deleted", snapshot.Schema.NumAttributes()-len(attrs))
		span.End()
	}
	if diag != nil {
		diag.TCP = m.cfg.TCP
		diag.TConf = m.cfg.TConf
		diag.CPs = cps
		diag.KeptAttributes = attrs
		diag.CuboidsTotal = kpi.NumCuboids(snapshot.Schema.NumAttributes())
		diag.CuboidsSearchable = kpi.NumCuboids(len(attrs))
	}
	if ctx != nil {
		_, span = obs.StartSpan(ctx, "rapminer.search")
	}
	budget := newRunBudget(ctx, m.cfg)
	patterns, degraded := m.search(snapshot, attrs, diag, budget) // already ranked
	if span != nil {
		span.SetAttr("candidates", len(patterns))
		if degraded != "" {
			span.SetAttr("degraded", degraded)
		}
		if diag != nil {
			span.SetAttr("cuboids_visited", diag.CuboidsVisited)
			span.SetAttr("early_stopped", diag.EarlyStopped)
		}
		span.End()
	}
	if k < len(patterns) {
		patterns = patterns[:k]
	}
	out = zero
	if diag != nil {
		out = *diag
	}
	return localize.Result{
		Patterns:       patterns,
		Degraded:       degraded != "",
		DegradedReason: degraded,
	}, out, nil
}

// selectSearchAttributes runs stage 1 (or returns all attributes when the
// ablation switch is set, still ordered by CP so the search order matches).
func (m *Miner) selectSearchAttributes(cps []AttributeCP) []int {
	if !m.cfg.DisableAttributeDeletion {
		return SelectAttributes(cps, m.cfg.TCP)
	}
	return SelectAttributes(cps, -1) // keep everything: CP >= 0 > -1
}
