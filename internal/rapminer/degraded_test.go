package rapminer

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/kpi"
)

// TestCanceledContextReturnsDeterministicPartial pins the degraded-result
// contract: a context canceled before the run still yields the first
// cuboid's best-so-far candidates (never an empty answer), marked Degraded,
// and the partial result is bit-identical at every worker count — the stop
// lands on a deterministic cuboid boundary.
func TestCanceledContextReturnsDeterministicPartial(t *testing.T) {
	snap := benchCase(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	base := MustNew(DefaultConfig())
	wantRes, wantDiag, err := base.WithWorkers(1).LocalizeWithDiagnosticsContext(ctx, snap, 10)
	if err != nil {
		t.Fatalf("canceled run errored: %v", err)
	}
	if !wantRes.Degraded || wantRes.DegradedReason != DegradedCanceled {
		t.Fatalf("Degraded=%v reason=%q, want true/%q",
			wantRes.Degraded, wantRes.DegradedReason, DegradedCanceled)
	}
	if !wantDiag.Degraded || wantDiag.DegradedReason != DegradedCanceled {
		t.Fatalf("diag Degraded=%v reason=%q", wantDiag.Degraded, wantDiag.DegradedReason)
	}
	if len(wantRes.Patterns) == 0 {
		t.Fatal("degraded run returned no best-so-far candidates")
	}
	// The guaranteed first cuboid is the only one merged under a
	// pre-canceled context.
	if wantDiag.CuboidsVisited != 1 {
		t.Fatalf("visited %d cuboids under pre-canceled ctx, want 1", wantDiag.CuboidsVisited)
	}
	for _, workers := range []int{2, 4, 8} {
		gotRes, gotDiag, err := base.WithWorkers(workers).LocalizeWithDiagnosticsContext(ctx, snap, 10)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Errorf("workers %d: degraded result diverges\n got %+v\nwant %+v", workers, gotRes, wantRes)
		}
		if !reflect.DeepEqual(gotDiag, wantDiag) {
			t.Errorf("workers %d: degraded diagnostics diverge", workers)
		}
	}
}

// TestMaxCuboidsBudget pins the deterministic cuboid budget: the run merges
// exactly MaxCuboids cuboids, returns the candidate prefix those cuboids
// produced, and the cut-off is identical at every worker count.
func TestMaxCuboidsBudget(t *testing.T) {
	snap := benchCase(t)
	cfg := DefaultConfig()
	cfg.MaxCuboids = 3
	cfg.Workers = 1
	wantRes, wantDiag, err := MustNew(cfg).LocalizeWithDiagnostics(snap, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !wantRes.Degraded || wantRes.DegradedReason != DegradedMaxCuboids {
		t.Fatalf("Degraded=%v reason=%q, want true/%q",
			wantRes.Degraded, wantRes.DegradedReason, DegradedMaxCuboids)
	}
	if wantDiag.CuboidsVisited != 3 {
		t.Fatalf("visited %d cuboids, want exactly MaxCuboids=3", wantDiag.CuboidsVisited)
	}
	if len(wantRes.Patterns) == 0 {
		t.Fatal("budgeted run returned no candidates")
	}
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		gotRes, gotDiag, err := MustNew(cfg).LocalizeWithDiagnostics(snap, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotRes, wantRes) || !reflect.DeepEqual(gotDiag, wantDiag) {
			t.Errorf("workers %d: MaxCuboids cut-off not deterministic", workers)
		}
	}

	// A budget larger than the search never degrades and changes nothing.
	cfg.Workers = 1
	cfg.MaxCuboids = 0
	full, fullDiag, err := MustNew(cfg).LocalizeWithDiagnostics(snap, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxCuboids = fullDiag.CuboidsVisited + 100
	loose, looseDiag, err := MustNew(cfg).LocalizeWithDiagnostics(snap, 10)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Degraded || looseDiag.Degraded {
		t.Fatal("un-exhausted budget reported degraded")
	}
	if !reflect.DeepEqual(full, loose) {
		t.Fatal("loose budget changed the result")
	}
}

// largeCase scales benchCase's schema up to ~288k leaves (120x8x6x50) with
// the same two injected RAP shapes, big enough that no machine localizes it
// inside a single-digit-millisecond deadline.
func largeCase(t testing.TB) *kpi.Snapshot {
	t.Helper()
	mk := func(prefix string, n int) kpi.Attribute {
		vals := make([]string, n)
		for i := range vals {
			vals[i] = prefix + string(rune('a'+i/26)) + string(rune('a'+i%26))
		}
		return kpi.Attribute{Name: prefix, Values: vals}
	}
	dims := []int32{120, 8, 6, 50}
	s := kpi.MustSchema(mk("L", int(dims[0])), mk("A", int(dims[1])), mk("O", int(dims[2])), mk("S", int(dims[3])))
	raps := []kpi.Combination{
		{4, kpi.Wildcard, kpi.Wildcard, kpi.Wildcard},
		{kpi.Wildcard, 1, kpi.Wildcard, 7},
	}
	leaves := make([]kpi.Leaf, 0, s.NumLeaves())
	for l := int32(0); l < dims[0]; l++ {
		for a := int32(0); a < dims[1]; a++ {
			for o := int32(0); o < dims[2]; o++ {
				for w := int32(0); w < dims[3]; w++ {
					combo := kpi.Combination{l, a, o, w}
					leaf := kpi.Leaf{Combo: combo, Actual: 100, Forecast: 100}
					for _, rap := range raps {
						if rap.Matches(combo) {
							leaf.Anomalous = true
							leaf.Actual = 20
							break
						}
					}
					leaves = append(leaves, leaf)
				}
			}
		}
	}
	snap, err := kpi.NewSnapshot(s, leaves)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestTightDeadlineReturnsPartialFast is the acceptance scenario: a 1ms
// deadline against a large corpus must come back quickly (well under the
// un-deadlined run) with Degraded=true and non-empty best-so-far
// candidates, while the same request without a deadline stays bit-identical
// to the sequential engine at any worker count (pinned separately by
// TestParallelSearchMatchesSequential and TestContextDoesNotChangeResults).
func TestTightDeadlineReturnsPartialFast(t *testing.T) {
	snap := largeCase(t)
	m := MustNew(DefaultConfig()).WithWorkers(4)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := m.LocalizeContext(ctx, snap, 10)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Skip("snapshot localized inside 1ms; machine too fast to degrade")
	}
	if res.DegradedReason != DegradedDeadline {
		t.Fatalf("reason %q, want %q", res.DegradedReason, DegradedDeadline)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("deadline-expired run returned no best-so-far candidates")
	}
	// Generous CI bound: the contract is "a few scan strides past the
	// deadline", not "runs to completion".
	if elapsed > 250*time.Millisecond {
		t.Fatalf("degraded run took %v, want a prompt return", elapsed)
	}
}

// TestMaxDurationBudget checks the config-side wall budget degrades the
// same way without any context.
func TestMaxDurationBudget(t *testing.T) {
	snap := benchCase(t)
	cfg := DefaultConfig()
	cfg.MaxDuration = time.Nanosecond
	res, diag, err := MustNew(cfg).LocalizeWithDiagnostics(snap, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.DegradedReason != DegradedDeadline {
		t.Fatalf("Degraded=%v reason=%q, want true/%q", res.Degraded, res.DegradedReason, DegradedDeadline)
	}
	if len(res.Patterns) == 0 || diag.CuboidsVisited == 0 {
		t.Fatal("budget-expired run dropped its best-so-far work")
	}
}

// TestContextDoesNotChangeResults pins the determinism guarantee the
// tentpole must preserve: threading a live (never-canceled, no-deadline)
// context through the search changes nothing versus the context-free
// sequential engine, at any worker count.
func TestContextDoesNotChangeResults(t *testing.T) {
	snap := benchCase(t)
	base := MustNew(DefaultConfig())
	wantRes, wantDiag, err := base.WithWorkers(1).LocalizeWithDiagnostics(snap, 10)
	if err != nil {
		t.Fatal(err)
	}
	if wantRes.Degraded {
		t.Fatal("unbudgeted run reported degraded")
	}
	for _, workers := range []int{1, 2, 8} {
		gotRes, gotDiag, err := base.WithWorkers(workers).
			LocalizeWithDiagnosticsContext(context.Background(), snap, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Errorf("workers %d: ctx-threaded result diverges from sequential", workers)
		}
		if !reflect.DeepEqual(gotDiag, wantDiag) {
			t.Errorf("workers %d: ctx-threaded diagnostics diverge from sequential", workers)
		}
	}
}

// poisonedSnapshot builds a snapshot that panics inside the search: its leaf
// carries an attribute code outside the schema's cardinality (bypassing
// NewSnapshot validation), so the cuboid indexer's array access faults. This
// models a corrupted upstream feed.
func poisonedSnapshot() *kpi.Snapshot {
	s := kpi.MustSchema(
		kpi.Attribute{Name: "A", Values: []string{"a1", "a2"}},
		kpi.Attribute{Name: "B", Values: []string{"b1", "b2"}},
	)
	return &kpi.Snapshot{Schema: s, Leaves: []kpi.Leaf{
		{Combo: kpi.Combination{0, 0}, Actual: 1, Forecast: 100, Anomalous: true},
		{Combo: kpi.Combination{9, 1}, Actual: 100, Forecast: 100}, // code 9 out of range
	}}
}

// TestPanicIsolatedToError checks a panic anywhere in the run — on the
// calling goroutine or a worker — is converted to the call's error instead
// of crashing the process.
func TestPanicIsolatedToError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		m := MustNew(DefaultConfig()).WithWorkers(workers)
		res, err := m.Localize(poisonedSnapshot(), 3)
		if err == nil {
			t.Fatalf("workers %d: poisoned snapshot localized without error", workers)
		}
		if !strings.Contains(err.Error(), "panic") {
			t.Fatalf("workers %d: error %q does not mention the panic", workers, err)
		}
		if len(res.Patterns) != 0 {
			t.Fatalf("workers %d: panicked run returned patterns", workers)
		}
	}
}

// TestPanicFailsOnlyItsBatchItem checks one poisoned snapshot inside a
// batch fails only its own item.
func TestPanicFailsOnlyItsBatchItem(t *testing.T) {
	good := benchCase(t)
	snaps := []*kpi.Snapshot{good, poisonedSnapshot(), good}
	m := MustNew(DefaultConfig())
	results := m.LocalizeBatch(context.Background(), snaps, 3)
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy neighbors failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "panic") {
		t.Fatalf("poisoned item error = %v, want a panic-derived error", results[1].Err)
	}
	if len(results[0].Result.Patterns) == 0 {
		t.Fatal("healthy item returned no patterns")
	}
}

// TestBudgetConfigValidation checks New rejects negative budgets.
func TestBudgetConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDuration = -time.Second
	if _, err := New(cfg); err == nil {
		t.Error("negative MaxDuration accepted")
	}
	cfg = DefaultConfig()
	cfg.MaxCuboids = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative MaxCuboids accepted")
	}
}
