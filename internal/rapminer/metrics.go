package rapminer

import (
	"context"
	"sync"

	"repro/internal/kpi"
	"repro/internal/localize"
	"repro/internal/obs"
)

// Metric names exported by PublishDiagnostics. The gauges carry the most
// recent run's search statistics (the paper's Table IV/VI pruning numbers
// as live values); the counters accumulate across runs so rates and the
// early-stop ratio survive scraping.
const (
	MetricCuboidsTotal        = "rapminer_cuboids_total"
	MetricCuboidsSearchable   = "rapminer_cuboids_searchable"
	MetricCuboidsVisited      = "rapminer_cuboids_visited"
	MetricCombinationsScanned = "rapminer_combinations_scanned_total"
	MetricCandidates          = "rapminer_candidates"
	MetricAttributesDeleted   = "rapminer_attributes_deleted"
	MetricRuns                = "rapminer_runs_total"
	MetricEarlyStops          = "rapminer_early_stops_total"
	MetricEarlyStopRatio      = "rapminer_early_stop_ratio"
	MetricRunsDegraded        = "rapminer_runs_degraded_total"
	// Layer-scan metrics are observed live by the search engine itself
	// (they time the fused columnar passes), not via PublishDiagnostics:
	// wall-clock timings are nondeterministic and must stay out of
	// Diagnostics, whose contents are bit-identical across worker counts.
	MetricLayerScanSeconds      = "rapminer_layer_scan_seconds"
	MetricLayerScanPasses       = "rapminer_layer_scan_passes_total"
	MetricLayerScanFusedCuboids = "rapminer_layer_scan_fused_cuboids_total"
	// Roll-up telemetry: layers answered entirely from the run's
	// materialized base cuboid versus layers that still needed leaf scans
	// while roll-up was enabled (sparse base, wide attributes, or an
	// aborted base pass).
	MetricRollupLayers   = "rapminer_rollup_layers_total"
	MetricRollupFallback = "rapminer_rollup_fallback_total"
)

// minerMetrics is the set of instruments PublishDiagnostics writes, bound
// to one registry.
type minerMetrics struct {
	cuboidsTotal, cuboidsSearchable, cuboidsVisited *obs.Gauge
	candidates, attributesDeleted, earlyStopRatio   *obs.Gauge
	combinationsScanned, runs, earlyStops           *obs.Counter
	runsDegraded                                    *obs.Counter
}

// minerInstruments acquires (registering on first use) every family, so
// all series expose at zero from the moment of registration.
func minerInstruments(reg *obs.Registry) minerMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return minerMetrics{
		cuboidsTotal: reg.Gauge(MetricCuboidsTotal,
			"Cuboids in the full lattice (2^n - 1) for the last run's schema."),
		cuboidsSearchable: reg.Gauge(MetricCuboidsSearchable,
			"Cuboids remaining after CP-based attribute deletion in the last run."),
		cuboidsVisited: reg.Gauge(MetricCuboidsVisited,
			"Cuboids actually scanned before early stop in the last run."),
		candidates: reg.Gauge(MetricCandidates,
			"RAP candidates found in the last run before top-k truncation."),
		attributesDeleted: reg.Gauge(MetricAttributesDeleted,
			"Attributes deleted by classification-power pruning in the last run."),
		earlyStopRatio: reg.Gauge(MetricEarlyStopRatio,
			"Fraction of published runs that early-stopped."),
		combinationsScanned: reg.Counter(MetricCombinationsScanned,
			"Group-by rows inspected across all localization runs."),
		runs: reg.Counter(MetricRuns, "Localization runs published."),
		earlyStops: reg.Counter(MetricEarlyStops,
			"Runs ended early by candidate coverage (Criteria 3 early stop)."),
		runsDegraded: reg.Counter(MetricRunsDegraded,
			"Runs cut off by cancellation, deadline, or budget, returning best-so-far partial results."),
	}
}

// RegisterMetrics pre-registers the miner's metric families on reg (nil
// means the default registry) so they expose at zero before the first run.
func RegisterMetrics(reg *obs.Registry) {
	minerInstruments(reg)
	scanInstrumentsOn(reg)
}

// layerScanBuckets resolves fused-pass timings: the passes are
// microsecond-to-millisecond on realistic snapshots, well under the default
// request-latency buckets.
var layerScanBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1,
}

// scanMetrics are the live layer-scan instruments the search engine writes
// during the run (unlike minerMetrics, which publish a finished run's
// Diagnostics after the fact).
type scanMetrics struct {
	seconds        *obs.Histogram
	passes         *obs.Counter
	fused          *obs.Counter
	rollupLayers   *obs.Counter
	rollupFallback *obs.Counter
}

// scanInstrumentsOn acquires the layer-scan families on reg (nil means the
// default registry).
func scanInstrumentsOn(reg *obs.Registry) scanMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return scanMetrics{
		seconds: reg.Histogram(MetricLayerScanSeconds,
			"Wall-clock seconds per fused layer scan (one observation per BFS layer).",
			layerScanBuckets),
		passes: reg.Counter(MetricLayerScanPasses,
			"Completed passes over the leaf store across all runs (fused batches plus per-cuboid fallbacks)."),
		fused: reg.Counter(MetricLayerScanFusedCuboids,
			"Cuboids whose group counts were served by a fused layer scan."),
		rollupLayers: reg.Counter(MetricRollupLayers,
			"BFS layers served entirely by roll-up over the run's base cuboid (zero leaf reads)."),
		rollupFallback: reg.Counter(MetricRollupFallback,
			"BFS layers that fell back to leaf scans while roll-up was enabled (sparse base, wide attributes, or an aborted base pass)."),
	}
}

var (
	scanMetricsOnce sync.Once
	scanMetricsDef  scanMetrics
)

// layerScanInstruments returns the default registry's layer-scan
// instruments, resolved once — the search engine is on the hot path and must
// not pay a registry lookup per layer.
func layerScanInstruments() scanMetrics {
	scanMetricsOnce.Do(func() { scanMetricsDef = scanInstrumentsOn(nil) })
	return scanMetricsDef
}

// PublishDiagnostics exports one run's Diagnostics into reg (nil means the
// default registry). Callers holding a Diagnostics — the HTTP API, the
// pipeline, batch experiments — call this once per localization run.
func PublishDiagnostics(reg *obs.Registry, d Diagnostics) {
	mx := minerInstruments(reg)
	mx.cuboidsTotal.Set(float64(d.CuboidsTotal))
	mx.cuboidsSearchable.Set(float64(d.CuboidsSearchable))
	mx.cuboidsVisited.Set(float64(d.CuboidsVisited))
	mx.candidates.Set(float64(d.Candidates))
	mx.attributesDeleted.Set(float64(len(d.DeletedAttributes())))
	mx.combinationsScanned.Add(float64(d.CombinationsScanned))
	mx.runs.Inc()
	if d.EarlyStopped {
		mx.earlyStops.Inc()
	}
	if d.Degraded {
		mx.runsDegraded.Inc()
	}
	if r := mx.runs.Value(); r > 0 {
		mx.earlyStopRatio.Set(mx.earlyStops.Value() / r)
	}
}

// DiagnosticLocalizer is implemented by localizers that report per-run
// Diagnostics. Callers holding a plain localize.Localizer type-assert to
// it to publish search telemetry without naming the concrete miner:
//
//	if dl, ok := loc.(rapminer.DiagnosticLocalizer); ok {
//		res, diag, err := dl.LocalizeWithDiagnostics(snap, k)
//		rapminer.PublishDiagnostics(nil, diag)
//	}
type DiagnosticLocalizer interface {
	localize.Localizer
	LocalizeWithDiagnostics(snapshot *kpi.Snapshot, k int) (localize.Result, Diagnostics, error)
}

var _ DiagnosticLocalizer = (*Miner)(nil)

// TracedLocalizer is a DiagnosticLocalizer whose run joins the caller's
// trace: the context's trace ID groups the run's stage spans and keys its
// explain report. The HTTP API and the pipeline prefer this interface so
// every localization is individually traceable after the fact.
type TracedLocalizer interface {
	DiagnosticLocalizer
	LocalizeWithDiagnosticsContext(ctx context.Context, snapshot *kpi.Snapshot, k int) (localize.Result, Diagnostics, error)
}

var _ TracedLocalizer = (*Miner)(nil)
