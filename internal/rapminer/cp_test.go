package rapminer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kpi"
)

// fig6Snapshot builds the Fig. 6 example: attributes A{a1,a2,a3}, B{b1,b2},
// C{c1,c2}, with (a1, *, *) as the RAP — every leaf under a1 anomalous.
func fig6Snapshot(t *testing.T) *kpi.Snapshot {
	t.Helper()
	s := kpi.MustSchema(
		kpi.Attribute{Name: "A", Values: []string{"a1", "a2", "a3"}},
		kpi.Attribute{Name: "B", Values: []string{"b1", "b2"}},
		kpi.Attribute{Name: "C", Values: []string{"c1", "c2"}},
	)
	var leaves []kpi.Leaf
	for a := int32(0); a < 3; a++ {
		for b := int32(0); b < 2; b++ {
			for c := int32(0); c < 2; c++ {
				leaves = append(leaves, kpi.Leaf{
					Combo:     kpi.Combination{a, b, c},
					Actual:    100,
					Forecast:  100,
					Anomalous: a == 0,
				})
			}
		}
	}
	snap, err := kpi.NewSnapshot(s, leaves)
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	return snap
}

func TestClassificationPowerFig6(t *testing.T) {
	snap := fig6Snapshot(t)
	// Attribute A separates anomalous from normal perfectly: CP = 1.
	if got := ClassificationPower(snap, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("CP_A = %v, want 1", got)
	}
	// B and C split the anomalies evenly: no entropy reduction, CP = 0.
	for _, attr := range []int{1, 2} {
		if got := ClassificationPower(snap, attr); math.Abs(got) > 1e-12 {
			t.Errorf("CP of attribute %d = %v, want 0", attr, got)
		}
	}
}

func TestClassificationPowerHandComputed(t *testing.T) {
	// 4 leaves over A{a1,a2}, B{b1,b2}; anomalous: (a1,b1) and (a1,b2)
	// partially mixed so CP is strictly between 0 and 1.
	s := kpi.MustSchema(
		kpi.Attribute{Name: "A", Values: []string{"a1", "a2"}},
		kpi.Attribute{Name: "B", Values: []string{"b1", "b2"}},
	)
	snap, err := kpi.NewSnapshot(s, []kpi.Leaf{
		{Combo: kpi.Combination{0, 0}, Anomalous: true},
		{Combo: kpi.Combination{0, 1}, Anomalous: false},
		{Combo: kpi.Combination{1, 0}, Anomalous: false},
		{Combo: kpi.Combination{1, 1}, Anomalous: false},
	})
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	h := func(p float64) float64 {
		if p <= 0 || p >= 1 {
			return 0
		}
		return -(p*math.Log(p) + (1-p)*math.Log(1-p))
	}
	infoD := h(0.25)
	// Splitting by A: branch a1 has 1/2 anomalous, branch a2 has 0.
	infoA := 0.5 * h(0.5)
	want := (infoD - infoA) / infoD
	if got := ClassificationPower(snap, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("CP_A = %v, want %v", got, want)
	}
	// B splits symmetrically: same value by symmetry of this dataset.
	if got := ClassificationPower(snap, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("CP_B = %v, want %v", got, want)
	}
}

func TestClassificationPowerDegenerateLabels(t *testing.T) {
	snap := fig6Snapshot(t)
	// No anomalies.
	for i := range snap.Leaves {
		snap.Leaves[i].Anomalous = false
	}
	if got := ClassificationPower(snap, 0); got != 0 {
		t.Errorf("CP with no anomalies = %v, want 0", got)
	}
	// All anomalous.
	for i := range snap.Leaves {
		snap.Leaves[i].Anomalous = true
	}
	if got := ClassificationPower(snap, 0); got != 0 {
		t.Errorf("CP with all anomalous = %v, want 0", got)
	}
}

func TestClassificationPowerEmptySnapshot(t *testing.T) {
	s := kpi.MustSchema(kpi.Attribute{Name: "A", Values: []string{"a1"}})
	snap, err := kpi.NewSnapshot(s, nil)
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	if got := ClassificationPower(snap, 0); got != 0 {
		t.Errorf("CP of empty snapshot = %v, want 0", got)
	}
}

func TestClassificationPowerBoundsQuick(t *testing.T) {
	// Information gain is non-negative and normalized gain is at most 1,
	// for arbitrary random labelings.
	s := kpi.MustSchema(
		kpi.Attribute{Name: "A", Values: []string{"a1", "a2", "a3"}},
		kpi.Attribute{Name: "B", Values: []string{"b1", "b2"}},
	)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var leaves []kpi.Leaf
		for a := int32(0); a < 3; a++ {
			for b := int32(0); b < 2; b++ {
				leaves = append(leaves, kpi.Leaf{
					Combo:     kpi.Combination{a, b},
					Anomalous: r.Intn(2) == 0,
				})
			}
		}
		snap, err := kpi.NewSnapshot(s, leaves)
		if err != nil {
			return false
		}
		for attr := 0; attr < 2; attr++ {
			cp := ClassificationPower(snap, attr)
			if cp < -1e-12 || cp > 1+1e-12 || math.IsNaN(cp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassificationPowersOrder(t *testing.T) {
	snap := fig6Snapshot(t)
	cps := ClassificationPowers(snap)
	if len(cps) != 3 {
		t.Fatalf("len = %d, want 3", len(cps))
	}
	for i, c := range cps {
		if c.Attr != i {
			t.Errorf("cps[%d].Attr = %d", i, c.Attr)
		}
	}
}

func TestSelectAttributesDeletesRedundant(t *testing.T) {
	cps := []AttributeCP{
		{Attr: 0, CP: 0.9},
		{Attr: 1, CP: 0.0},
		{Attr: 2, CP: 0.4},
		{Attr: 3, CP: 0.01},
	}
	got := SelectAttributes(cps, 0.02)
	want := []int{0, 2}
	if len(got) != len(want) {
		t.Fatalf("SelectAttributes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SelectAttributes[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSelectAttributesBoundaryIsDeleted(t *testing.T) {
	// Criteria 1 keeps only CP strictly greater than t_CP.
	cps := []AttributeCP{{Attr: 0, CP: 0.02}, {Attr: 1, CP: 0.021}}
	got := SelectAttributes(cps, 0.02)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("SelectAttributes = %v, want [1]", got)
	}
}

func TestSelectAttributesFallbackKeepsAll(t *testing.T) {
	cps := []AttributeCP{{Attr: 0, CP: 0}, {Attr: 1, CP: 0}}
	got := SelectAttributes(cps, 0.02)
	if len(got) != 2 {
		t.Errorf("fallback kept %v, want both attributes", got)
	}
}

func TestSelectAttributesSortedByCP(t *testing.T) {
	cps := []AttributeCP{
		{Attr: 0, CP: 0.3},
		{Attr: 1, CP: 0.8},
		{Attr: 2, CP: 0.5},
	}
	got := SelectAttributes(cps, 0.0)
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SelectAttributes = %v, want %v", got, want)
		}
	}
}

// TestClassificationPowerAfterRelabel is the stale-column regression test
// at the consumer level: ClassificationPower reads the columnar store's
// anomaly bitset, so relabeling a snapshot in place and calling
// InvalidateLabels must change the CP — a stale bitset or a stale cached
// anomalous count would silently reproduce the old verdicts.
func TestClassificationPowerAfterRelabel(t *testing.T) {
	snap := fig6Snapshot(t)
	if got := ClassificationPower(snap, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("CP_A = %v before relabel, want 1", got)
	}

	// Move the anomaly from (a1, *, *) to (*, b1, *): now B separates
	// perfectly and A carries no information.
	for i := range snap.Leaves {
		snap.Leaves[i].Anomalous = snap.Leaves[i].Combo[1] == 0
	}
	snap.InvalidateLabels()

	if got := ClassificationPower(snap, 0); math.Abs(got) > 1e-12 {
		t.Errorf("CP_A = %v after relabel, want 0 (stale columnar store?)", got)
	}
	if got := ClassificationPower(snap, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("CP_B = %v after relabel, want 1 (stale columnar store?)", got)
	}

	// The parallel fan-out reads the same store.
	for _, cp := range classificationPowers(snap, 4) {
		want := 0.0
		if cp.Attr == 1 {
			want = 1.0
		}
		if math.Abs(cp.CP-want) > 1e-12 {
			t.Errorf("workers=4: CP of attribute %d = %v, want %v", cp.Attr, cp.CP, want)
		}
	}
}
