package rapminer

import (
	"math/rand"
	"testing"

	"repro/internal/kpi"
)

// benchCase builds a CDN-scale labeled snapshot with two injected RAPs.
func benchCase(b testing.TB) *kpi.Snapshot {
	b.Helper()
	mk := func(prefix string, n int) kpi.Attribute {
		vals := make([]string, n)
		for i := range vals {
			vals[i] = prefix + string(rune('a'+i/26)) + string(rune('a'+i%26))
		}
		return kpi.Attribute{Name: prefix, Values: vals}
	}
	s := kpi.MustSchema(mk("L", 33), mk("A", 4), mk("O", 4), mk("S", 20))
	raps := []kpi.Combination{
		{4, kpi.Wildcard, kpi.Wildcard, kpi.Wildcard},
		{kpi.Wildcard, 1, kpi.Wildcard, 7},
	}
	r := rand.New(rand.NewSource(3))
	leaves := make([]kpi.Leaf, 0, s.NumLeaves())
	for l := int32(0); l < 33; l++ {
		for a := int32(0); a < 4; a++ {
			for o := int32(0); o < 4; o++ {
				for w := int32(0); w < 20; w++ {
					combo := kpi.Combination{l, a, o, w}
					leaf := kpi.Leaf{Combo: combo, Actual: 100, Forecast: 100}
					for _, rap := range raps {
						if rap.Matches(combo) {
							leaf.Anomalous = true
							leaf.Actual = 100 * (0.1 + 0.8*r.Float64())
							break
						}
					}
					leaves = append(leaves, leaf)
				}
			}
		}
	}
	snap, err := kpi.NewSnapshot(s, leaves)
	if err != nil {
		b.Fatal(err)
	}
	return snap
}

func BenchmarkClassificationPowers(b *testing.B) {
	snap := benchCase(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cps := ClassificationPowers(snap); len(cps) != 4 {
			b.Fatal("wrong CP count")
		}
	}
}

func BenchmarkLocalizeCDNScale(b *testing.B) {
	snap := benchCase(b)
	m := MustNew(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.Localize(snap, 3)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Patterns) == 0 {
			b.Fatal("nothing found")
		}
	}
}

func BenchmarkLocalizeWithoutDeletion(b *testing.B) {
	snap := benchCase(b)
	cfg := DefaultConfig()
	cfg.DisableAttributeDeletion = true
	m := MustNew(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Localize(snap, 3); err != nil {
			b.Fatal(err)
		}
	}
}
