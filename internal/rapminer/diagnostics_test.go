package rapminer

import (
	"testing"

	"repro/internal/kpi"
)

func TestLocalizeWithDiagnostics(t *testing.T) {
	s := tableVSchema()
	rap := kpi.MustParseCombination(s, "(a1, *, *, *)")
	snap := denseSnapshot(t, s, rap)
	m := MustNew(DefaultConfig())
	res, diag, err := m.LocalizeWithDiagnostics(snap, 3)
	if err != nil {
		t.Fatalf("LocalizeWithDiagnostics: %v", err)
	}
	if len(res.Patterns) != 1 || !res.Patterns[0].Combo.Equal(rap) {
		t.Fatalf("result = %s", res.Format(s))
	}
	if len(diag.CPs) != 4 {
		t.Fatalf("CPs = %d, want 4", len(diag.CPs))
	}
	if diag.CuboidsTotal != 15 {
		t.Errorf("CuboidsTotal = %d, want 15", diag.CuboidsTotal)
	}
	if diag.CuboidsSearchable > diag.CuboidsTotal {
		t.Errorf("searchable %d > total %d", diag.CuboidsSearchable, diag.CuboidsTotal)
	}
	if diag.CuboidsVisited < 1 || diag.CuboidsVisited > diag.CuboidsSearchable {
		t.Errorf("visited %d outside [1, %d]", diag.CuboidsVisited, diag.CuboidsSearchable)
	}
	if diag.CombinationsScanned < 1 {
		t.Error("no combinations scanned")
	}
	if !diag.EarlyStopped {
		t.Error("clean single-RAP case should early-stop")
	}
	if diag.Candidates != 1 {
		t.Errorf("Candidates = %d, want 1", diag.Candidates)
	}
	// Only attribute A has classification power here; the other three
	// are deleted.
	if len(diag.KeptAttributes) != 1 || diag.KeptAttributes[0] != 0 {
		t.Errorf("KeptAttributes = %v, want [0]", diag.KeptAttributes)
	}
	if got := diag.DeletedAttributes(); len(got) != 3 {
		t.Errorf("DeletedAttributes = %v, want 3 entries", got)
	}
}

func TestDiagnosticsAblationVisitsWholeLattice(t *testing.T) {
	s := tableVSchema()
	snap := denseSnapshot(t, s, kpi.MustParseCombination(s, "(a1, b1, c1, d1)"))
	// Flip one extra unmatched leaf anomalous so coverage cannot
	// complete (the candidate covering it is found, so use a leaf the
	// search WILL cover... instead break coverage by keeping a leaf
	// anomalous that no confident pattern covers: impossible — a leaf
	// group always has confidence 1. Use the ablation arm instead and a
	// clean case: early stop fires only at the leaf layer.
	cfg := DefaultConfig()
	cfg.DisableAttributeDeletion = true
	m := MustNew(cfg)
	_, diag, err := m.LocalizeWithDiagnostics(snap, 3)
	if err != nil {
		t.Fatal(err)
	}
	if diag.CuboidsSearchable != diag.CuboidsTotal {
		t.Errorf("ablation searchable = %d, want %d", diag.CuboidsSearchable, diag.CuboidsTotal)
	}
	if len(diag.KeptAttributes) != 4 {
		t.Errorf("ablation kept %v", diag.KeptAttributes)
	}
}

func TestDeletedAttributesOrdering(t *testing.T) {
	// DeletedAttributes promises attribute order (ascending index), no
	// matter how KeptAttributes is ordered — it is sorted by descending CP,
	// not by index.
	d := Diagnostics{
		CPs: []AttributeCP{
			{Attr: 0, CP: 0.0001},
			{Attr: 1, CP: 0.9},
			{Attr: 2, CP: 0.0002},
			{Attr: 3, CP: 0.5},
			{Attr: 4, CP: 0.0003},
		},
		// Kept in descending-CP order: attribute 1 then 3.
		KeptAttributes: []int{1, 3},
	}
	got := d.DeletedAttributes()
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("DeletedAttributes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DeletedAttributes = %v, want %v (ascending attribute order)", got, want)
		}
	}

	// Nothing deleted -> empty (nil) result.
	all := Diagnostics{CPs: d.CPs, KeptAttributes: []int{4, 3, 2, 1, 0}}
	if got := all.DeletedAttributes(); len(got) != 0 {
		t.Errorf("all-kept DeletedAttributes = %v, want empty", got)
	}
}

func TestDiagnosticsZeroOnDegenerateInputs(t *testing.T) {
	s := tableVSchema()
	snap := denseSnapshot(t, s) // no anomalies
	m := MustNew(DefaultConfig())
	_, diag, err := m.LocalizeWithDiagnostics(snap, 3)
	if err != nil {
		t.Fatal(err)
	}
	if diag.CuboidsVisited != 0 || diag.Candidates != 0 {
		t.Errorf("degenerate diagnostics = %+v", diag)
	}
}
