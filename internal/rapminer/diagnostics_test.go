package rapminer

import (
	"context"
	"math"
	"testing"

	"repro/internal/kpi"
	"repro/internal/obs"
)

func TestLocalizeWithDiagnostics(t *testing.T) {
	s := tableVSchema()
	rap := kpi.MustParseCombination(s, "(a1, *, *, *)")
	snap := denseSnapshot(t, s, rap)
	m := MustNew(DefaultConfig())
	res, diag, err := m.LocalizeWithDiagnostics(snap, 3)
	if err != nil {
		t.Fatalf("LocalizeWithDiagnostics: %v", err)
	}
	if len(res.Patterns) != 1 || !res.Patterns[0].Combo.Equal(rap) {
		t.Fatalf("result = %s", res.Format(s))
	}
	if len(diag.CPs) != 4 {
		t.Fatalf("CPs = %d, want 4", len(diag.CPs))
	}
	if diag.CuboidsTotal != 15 {
		t.Errorf("CuboidsTotal = %d, want 15", diag.CuboidsTotal)
	}
	if diag.CuboidsSearchable > diag.CuboidsTotal {
		t.Errorf("searchable %d > total %d", diag.CuboidsSearchable, diag.CuboidsTotal)
	}
	if diag.CuboidsVisited < 1 || diag.CuboidsVisited > diag.CuboidsSearchable {
		t.Errorf("visited %d outside [1, %d]", diag.CuboidsVisited, diag.CuboidsSearchable)
	}
	if diag.CombinationsScanned < 1 {
		t.Error("no combinations scanned")
	}
	if !diag.EarlyStopped {
		t.Error("clean single-RAP case should early-stop")
	}
	if diag.Candidates != 1 {
		t.Errorf("Candidates = %d, want 1", diag.Candidates)
	}
	// Only attribute A has classification power here; the other three
	// are deleted.
	if len(diag.KeptAttributes) != 1 || diag.KeptAttributes[0] != 0 {
		t.Errorf("KeptAttributes = %v, want [0]", diag.KeptAttributes)
	}
	if got := diag.DeletedAttributes(); len(got) != 3 {
		t.Errorf("DeletedAttributes = %v, want 3 entries", got)
	}
}

func TestDiagnosticsAblationVisitsWholeLattice(t *testing.T) {
	s := tableVSchema()
	snap := denseSnapshot(t, s, kpi.MustParseCombination(s, "(a1, b1, c1, d1)"))
	// Flip one extra unmatched leaf anomalous so coverage cannot
	// complete (the candidate covering it is found, so use a leaf the
	// search WILL cover... instead break coverage by keeping a leaf
	// anomalous that no confident pattern covers: impossible — a leaf
	// group always has confidence 1. Use the ablation arm instead and a
	// clean case: early stop fires only at the leaf layer.
	cfg := DefaultConfig()
	cfg.DisableAttributeDeletion = true
	m := MustNew(cfg)
	_, diag, err := m.LocalizeWithDiagnostics(snap, 3)
	if err != nil {
		t.Fatal(err)
	}
	if diag.CuboidsSearchable != diag.CuboidsTotal {
		t.Errorf("ablation searchable = %d, want %d", diag.CuboidsSearchable, diag.CuboidsTotal)
	}
	if len(diag.KeptAttributes) != 4 {
		t.Errorf("ablation kept %v", diag.KeptAttributes)
	}
}

func TestDeletedAttributesOrdering(t *testing.T) {
	// DeletedAttributes promises attribute order (ascending index), no
	// matter how KeptAttributes is ordered — it is sorted by descending CP,
	// not by index.
	d := Diagnostics{
		CPs: []AttributeCP{
			{Attr: 0, CP: 0.0001},
			{Attr: 1, CP: 0.9},
			{Attr: 2, CP: 0.0002},
			{Attr: 3, CP: 0.5},
			{Attr: 4, CP: 0.0003},
		},
		// Kept in descending-CP order: attribute 1 then 3.
		KeptAttributes: []int{1, 3},
	}
	got := d.DeletedAttributes()
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("DeletedAttributes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DeletedAttributes = %v, want %v (ascending attribute order)", got, want)
		}
	}

	// Nothing deleted -> empty (nil) result.
	all := Diagnostics{CPs: d.CPs, KeptAttributes: []int{4, 3, 2, 1, 0}}
	if got := all.DeletedAttributes(); len(got) != 0 {
		t.Errorf("all-kept DeletedAttributes = %v, want empty", got)
	}
}

func TestDiagnosticsZeroOnDegenerateInputs(t *testing.T) {
	s := tableVSchema()
	snap := denseSnapshot(t, s) // no anomalies
	m := MustNew(DefaultConfig())
	_, diag, err := m.LocalizeWithDiagnostics(snap, 3)
	if err != nil {
		t.Fatal(err)
	}
	if diag.CuboidsVisited != 0 || diag.Candidates != 0 {
		t.Errorf("degenerate diagnostics = %+v", diag)
	}
}

func TestDiagnosticsJournalLayersAndCandidates(t *testing.T) {
	s := tableVSchema()
	rap := kpi.MustParseCombination(s, "(a1, *, *, *)")
	snap := denseSnapshot(t, s, rap)
	m := MustNew(DefaultConfig())
	res, diag, err := m.LocalizeWithDiagnostics(snap, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Config echo.
	if diag.TCP != DefaultConfig().TCP || diag.TConf != DefaultConfig().TConf {
		t.Errorf("thresholds = (%v, %v)", diag.TCP, diag.TConf)
	}

	// Per-layer counts must sum to the run totals.
	var cuboids, combos, pruned, cands int
	for i, l := range diag.Layers {
		if l.Layer != i+1 {
			t.Errorf("layer %d records Layer = %d", i+1, l.Layer)
		}
		cuboids += l.Cuboids
		combos += l.Combinations
		pruned += l.Pruned
		cands += l.Candidates
	}
	if cuboids != diag.CuboidsVisited {
		t.Errorf("layer cuboids sum %d != CuboidsVisited %d", cuboids, diag.CuboidsVisited)
	}
	if combos != diag.CombinationsScanned {
		t.Errorf("layer combinations sum %d != CombinationsScanned %d", combos, diag.CombinationsScanned)
	}
	if pruned != diag.CombinationsPruned {
		t.Errorf("layer pruned sum %d != CombinationsPruned %d", pruned, diag.CombinationsPruned)
	}
	if cands != diag.Candidates {
		t.Errorf("layer candidates sum %d != Candidates %d", cands, diag.Candidates)
	}

	// Early stop on layer 1: the single RAP covers everything.
	if !diag.EarlyStopped || diag.EarlyStopLayer != 1 {
		t.Errorf("early stop = (%v, layer %d), want (true, 1)", diag.EarlyStopped, diag.EarlyStopLayer)
	}

	// The candidate set journals the ranked candidates with the Eq. 3
	// arithmetic intact and mirrors the returned patterns.
	if len(diag.CandidateSet) != diag.Candidates {
		t.Fatalf("CandidateSet has %d entries, Candidates = %d", len(diag.CandidateSet), diag.Candidates)
	}
	for i, c := range diag.CandidateSet {
		want := c.Confidence / math.Sqrt(float64(c.Layer))
		if math.Abs(c.RAPScore-want) > 1e-12 {
			t.Errorf("candidate %d RAPScore = %v, want conf/sqrt(layer) = %v", i, c.RAPScore, want)
		}
		if c.Confidence <= DefaultConfig().TConf {
			t.Errorf("candidate %d confidence %v <= t_conf", i, c.Confidence)
		}
		if c.TotalLeaves < c.AnomalousLeaves || c.AnomalousLeaves < 1 {
			t.Errorf("candidate %d support %d/%d", i, c.AnomalousLeaves, c.TotalLeaves)
		}
		if c.Combo.Layer() != c.Layer {
			t.Errorf("candidate %d Layer %d != combo layer %d", i, c.Layer, c.Combo.Layer())
		}
		if i < len(res.Patterns) {
			if !c.Combo.Equal(res.Patterns[i].Combo) || c.RAPScore != res.Patterns[i].Score {
				t.Errorf("candidate %d disagrees with returned pattern", i)
			}
		}
	}
}

func TestLocalizeWithDiagnosticsContextSharesTrace(t *testing.T) {
	s := tableVSchema()
	snap := denseSnapshot(t, s, kpi.MustParseCombination(s, "(a1, *, *, *)"))
	m := MustNew(DefaultConfig())

	tc := obs.NewTraceContext()
	ctx, parent := obs.StartSpan(obs.ContextWithTrace(context.Background(), tc), "test.run")
	resCtx, diagCtx, err := m.LocalizeWithDiagnosticsContext(ctx, snap, 3)
	if err != nil {
		t.Fatal(err)
	}
	parent.End()

	// Same answer as the untraced variant.
	resPlain, diagPlain, err := m.LocalizeWithDiagnostics(snap, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(resCtx.Patterns) != len(resPlain.Patterns) || diagCtx.CuboidsVisited != diagPlain.CuboidsVisited {
		t.Errorf("traced and untraced runs disagree")
	}

	// Both stage spans joined the caller's trace.
	var stages []string
	for _, sp := range obs.RecentSpans() {
		if sp.TraceID == tc.TraceID &&
			(sp.Name == "rapminer.attribute_deletion" || sp.Name == "rapminer.search") {
			stages = append(stages, sp.Name)
		}
	}
	if len(stages) != 2 {
		t.Errorf("stage spans in trace = %v, want both stages", stages)
	}
}
