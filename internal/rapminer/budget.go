package rapminer

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Degradation reasons reported by Diagnostics.DegradedReason and
// localize.Result.DegradedReason when a run stops before exhausting the
// search (best-so-far candidates are still returned and ranked).
const (
	// DegradedCanceled: the caller's context was canceled.
	DegradedCanceled = "canceled"
	// DegradedDeadline: the context deadline or Config.MaxDuration expired.
	DegradedDeadline = "deadline exceeded"
	// DegradedMaxCuboids: the run scanned Config.MaxCuboids cuboids.
	DegradedMaxCuboids = "max cuboids"
)

// runBudget bounds one localization run: the caller's context (cancellation
// and deadline), the configured wall-clock budget, and the configured cuboid
// budget. The merging goroutine polls exceeded() between cuboids — the only
// mutating method — while scan workers poll the read-only expired() hook, so
// the budget needs no lock for the merge-side state.
//
// Determinism: a budget that never trips leaves the search bit-identical to
// an unbudgeted run — every check is a pure read until the moment of
// tripping, and tripping is monotonic (once exceeded, always exceeded).
type runBudget struct {
	ctx         context.Context // nil = no cancellation source
	deadline    time.Time       // earliest of ctx deadline and MaxDuration
	hasDeadline bool
	maxCuboids  int // 0 = unlimited

	// cuboids counts cuboids merged so far; owned by the merge goroutine.
	cuboids int
	// reason is set once on the first trip; owned by the merge goroutine.
	reason string
	// tripped mirrors reason != "" for concurrent readers (scan workers).
	tripped atomic.Bool
}

// newRunBudget derives the run's budget from the context and configuration.
// The returned budget is never nil; with no context, deadline, or cuboid cap
// every check is a cheap constant false.
func newRunBudget(ctx context.Context, cfg Config) *runBudget {
	b := &runBudget{maxCuboids: cfg.MaxCuboids}
	if ctx != nil && ctx.Done() != nil {
		b.ctx = ctx
	}
	if ctx != nil {
		if d, ok := ctx.Deadline(); ok {
			b.deadline, b.hasDeadline = d, true
		}
	}
	if cfg.MaxDuration > 0 {
		d := time.Now().Add(cfg.MaxDuration)
		if !b.hasDeadline || d.Before(b.deadline) {
			b.deadline, b.hasDeadline = d, true
		}
	}
	return b
}

// active reports whether the budget can ever trip; an inactive budget lets
// callers skip polling entirely.
func (b *runBudget) active() bool {
	return b.ctx != nil || b.hasDeadline || b.maxCuboids > 0
}

// noteCuboid records one merged cuboid against the cuboid cap. Merge
// goroutine only.
func (b *runBudget) noteCuboid() { b.cuboids++ }

// exceeded reports whether the budget has tripped, recording the reason on
// the first trip. Merge goroutine only; between-cuboid granularity keeps the
// time checks off the per-combination hot path.
func (b *runBudget) exceeded() bool {
	if b.reason != "" {
		return true
	}
	switch {
	case b.maxCuboids > 0 && b.cuboids >= b.maxCuboids:
		b.reason = DegradedMaxCuboids
	case b.ctx != nil && b.ctx.Err() != nil:
		if b.ctx.Err() == context.DeadlineExceeded {
			b.reason = DegradedDeadline
		} else {
			b.reason = DegradedCanceled
		}
	case b.hasDeadline && !time.Now().Before(b.deadline):
		b.reason = DegradedDeadline
	default:
		return false
	}
	b.tripped.Store(true)
	return true
}

// expired is the concurrent-safe cancellation hook polled by scan workers
// (kpi.Halt). It reads only monotonic state — the trip flag, the context's
// done state, and the wall clock against a fixed deadline — so a worker
// observing true guarantees the merge goroutine's next exceeded() also
// trips.
func (b *runBudget) expired() bool {
	if b.tripped.Load() {
		return true
	}
	if b.ctx != nil && b.ctx.Err() != nil {
		return true
	}
	return b.hasDeadline && !time.Now().Before(b.deadline)
}

// halt returns the budget as a scan cancellation hook, or nil when the
// budget cannot trip (nil keeps the halt-polling branch out of scans).
func (b *runBudget) halt() func() bool {
	if b == nil || !b.active() {
		return nil
	}
	return b.expired
}

// panicTrap captures the first panic of a worker-pool goroutine so the
// goroutine that owns the pool can rethrow it after Wait — turning a panic
// that would otherwise kill the process (goroutine panics cannot be
// recovered by their parent) back into an ordinary panic on the calling
// goroutine, where localize's recover converts it into the run's error.
type panicTrap struct {
	once  sync.Once
	val   any
	stack []byte
}

// capture must be deferred inside each worker goroutine; stack records the
// panicking worker's stack for the component log.
func (p *panicTrap) capture(val any, stack []byte) {
	p.once.Do(func() { p.val, p.stack = val, stack })
}

// rethrow re-panics on the calling goroutine with the captured value, if
// any. Call after the pool's Wait.
func (p *panicTrap) rethrow() {
	if p.val != nil {
		panic(&workerPanic{val: p.val, stack: p.stack})
	}
}

// workerPanic wraps a panic captured on a worker goroutine, preserving the
// worker's stack across the rethrow.
type workerPanic struct {
	val   any
	stack []byte
}

func (w *workerPanic) String() string {
	return fmt.Sprintf("%v (from worker goroutine)", w.val)
}
