package rapminer

import (
	"context"
	"math"
	"runtime/pprof"
	"sort"
	"strconv"
	"time"

	"repro/internal/kpi"
	"repro/internal/localize"
)

// candidate is one RAP candidate found by the search, carrying the
// statistics used for ranking and the run journal.
type candidate struct {
	combo      kpi.Combination
	score      float64
	confidence float64
	layer      int
	anomalous  int
	total      int
	// key is combo.Key(), computed once before sorting so the tie-break
	// comparator does not allocate a string per comparison.
	key string
}

// search implements Algorithm 2: the anomaly-confidence-guided
// layer-by-layer top-down BFS over the cuboids of the surviving attributes.
// The result is ranked by RAPScore (Eq. 3); ties are broken toward coarser
// candidates and then toward larger anomalous support, so a genuine RAP
// always precedes a stray false-alarm leaf that happens to share its score.
// diag, when non-nil, accumulates search statistics. budget bounds the run;
// when it trips the search stops at the next cuboid boundary and returns
// the best-so-far candidates with a non-empty degraded reason.
//
// Concurrency model: the expensive part of a layer — the count-only
// group-bys of its cuboids — is one fused pass over the snapshot's columnar
// leaf store (kpi.LayerScan) that accumulates every cuboid of the layer
// simultaneously, partitioned across cfg.Workers goroutines by contiguous
// leaf range; per-range partial counts merge by integer addition, which is
// exact and order-independent. The cheap per-group decisions (Criteria 2/3,
// coverage, journaling) replay sequentially over the fused results in
// cuboid order, then group-index order. That merge order is exactly the
// sequential visit order, so candidates, scores, ranking and Diagnostics
// are bit-identical to a single-worker run. The layer barrier is preserved:
// no combination is judged before every shallower layer has been fully
// merged, which is what Definition 1 and Criteria 3 rely on. Pruning and
// early-stop state (ancestorIndex, coverage) are touched only by the
// merging goroutine, so the parallel path needs no locks beyond the
// snapshot's internal caches.
//
// Cancellation model: the budget is polled between cuboids by the merging
// goroutine and inside scans (every few thousand leaves) by the workers, so
// every stop lands on the cuboid boundary — Algorithm 2's own layer barrier
// is never split, and the candidate set at the stop point is a prefix of
// the sequential run's candidate stream. The first cuboid of the run is
// always merged before the budget is consulted, so even an
// already-expired deadline yields the coarsest layer's best-so-far
// candidates instead of an empty answer.
func (m *Miner) search(snapshot *kpi.Snapshot, attrs []int, diag *Diagnostics, budget *runBudget) ([]localize.ScoredPattern, string) {
	var (
		candidates []candidate
		degraded   string
		merged     int
		anc        = newAncestorIndex()
		covered    = newCoverage(snapshot)
		scanner    = layerScanner{snap: snapshot, workers: m.workers(), halt: budget.halt()}
		mx         = layerScanInstruments()
		// probe is the scratch combination groups are decoded into; it is
		// cloned only when a group becomes a candidate.
		probe = kpi.NewRoot(snapshot.Schema.NumAttributes())
	)
	defer scanner.close()

layers:
	for layer := 1; layer <= len(attrs); layer++ {
		// The budget is checked before the fused pass as well as between
		// cuboids: an exhausted budget at a layer boundary must not pay for
		// a whole layer's scan it will never merge. The trip point is the
		// same cuboid boundary either way, so determinism is unaffected.
		if merged > 0 && budget.exceeded() {
			degraded = budget.reason
			break layers
		}
		var stats *LayerStats
		if diag != nil {
			diag.Layers = append(diag.Layers, LayerStats{Layer: layer})
			stats = &diag.Layers[len(diag.Layers)-1]
		}
		cuboids := kpi.CuboidsAtLayer(attrs, layer)
		scanStart := time.Now()
		scanner.prefetch(cuboids, layer)
		mx.seconds.Observe(time.Since(scanStart).Seconds())
		for ci, cuboid := range cuboids {
			// The budget is enforced on the cuboid boundary: the layer's
			// merge replay is sequential, so stopping here is deterministic
			// for deterministic budgets (pre-canceled context, MaxCuboids)
			// and never splits a cuboid's group stream. The first cuboid is
			// exempt so a degraded run still carries best-so-far work.
			if merged > 0 && budget.exceeded() {
				degraded = budget.reason
				break layers
			}
			groups, fused, ok := scanner.groups(ci, cuboid, merged == 0)
			if !ok {
				// The scan itself aborted mid-pass (budget tripped inside a
				// large snapshot); its partial counts are discarded.
				budget.exceeded()
				if degraded = budget.reason; degraded == "" {
					degraded = DegradedDeadline
				}
				break layers
			}
			merged++
			budget.noteCuboid()
			if diag != nil {
				diag.CuboidsVisited++
				stats.Cuboids++
				stats.ScanPasses = scanner.passes
				if fused {
					stats.FusedCuboids++
				}
			}
			if fused {
				scanner.fusedMerged++
			}
			ix := snapshot.Indexer(cuboid)
			for _, g := range groups {
				if diag != nil {
					diag.CombinationsScanned++
					stats.Combinations++
				}
				ix.DecodeInto(probe, g.Group)
				// Criteria 3: descendants of an accepted RAP cannot be
				// RAPs; skip them without computing confidence.
				if anc.hasAncestor(probe, layer) {
					if diag != nil {
						diag.CombinationsPruned++
						stats.Pruned++
					}
					continue
				}
				conf := g.Confidence()
				// Criteria 2: the combination is anomalous iff its
				// confidence exceeds t_conf.
				if conf <= m.cfg.TConf {
					continue
				}
				// Definition 1 holds: all shallower cuboids were fully
				// merged before this layer, so no anomalous parent exists
				// (it would have become a candidate and pruned this
				// combination above).
				combo := probe.Clone()
				candidates = append(candidates, candidate{
					combo:      combo,
					score:      rapScore(conf, layer),
					confidence: conf,
					layer:      layer,
					anomalous:  g.Anomalous,
					total:      g.Total,
				})
				anc.add(combo, layer)
				if diag != nil {
					stats.Candidates++
				}
				// Early stop: quit as soon as the candidate set covers
				// every anomalous leaf of D.
				if covered.add(combo) {
					if diag != nil {
						diag.EarlyStopped = true
						diag.EarlyStopLayer = layer
					}
					break layers
				}
			}
		}
	}
	mx.passes.Add(float64(scanner.totalPasses))
	mx.fused.Add(float64(scanner.fusedMerged))
	if diag != nil {
		diag.Candidates = len(candidates)
		if degraded != "" {
			diag.Degraded = true
			diag.DegradedReason = degraded
		}
	}
	for i := range candidates {
		candidates[i].key = candidates[i].combo.Key()
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		if a.score != b.score {
			return a.score > b.score
		}
		if a.layer != b.layer {
			return a.layer < b.layer
		}
		if a.anomalous != b.anomalous {
			return a.anomalous > b.anomalous
		}
		return a.key < b.key
	})
	out := make([]localize.ScoredPattern, len(candidates))
	for i, c := range candidates {
		out[i] = localize.ScoredPattern{Combo: c.combo, Score: c.score}
	}
	if diag != nil {
		// Journal the full candidate set in ranked order, ahead of the
		// caller's top-k truncation.
		diag.CandidateSet = make([]CandidateInfo, len(candidates))
		for i, c := range candidates {
			diag.CandidateSet[i] = CandidateInfo{
				Combo:           c.combo,
				Confidence:      c.confidence,
				Layer:           c.layer,
				RAPScore:        c.score,
				AnomalousLeaves: c.anomalous,
				TotalLeaves:     c.total,
			}
		}
	}
	return out, degraded
}

// rapScore computes Eq. 3: Confidence / sqrt(Layer). Coarser candidates win
// ties because the likelihood of being a root cause falls with depth.
func rapScore(conf float64, layer int) float64 {
	return conf / math.Sqrt(float64(layer))
}

// layerScanner produces the count-only group-bys of one BFS layer. The
// primary path is the fused columnar pass (kpi.LayerScan): one scan of the
// leaf columns accumulates every dense cuboid of the layer at once,
// partitioned across the worker pool by leaf range. Cuboids the fused pass
// did not cover — sparse domains, or batches a tripped budget abandoned —
// fall back to the per-cuboid scan in the merge loop, where the run's first
// cuboid scans without the halt hook so a degraded run always merges at
// least one cuboid. A panic on a fused-scan worker is rethrown on the
// merging goroutine (as *kpi.ScanPanic), where localize's recover turns it
// into the run's error.
type layerScanner struct {
	snap    *kpi.Snapshot
	workers int
	halt    kpi.Halt
	scan    *kpi.LayerScan
	fbuf    []kpi.GroupCount
	lazy    []kpi.GroupCount
	// passes counts completed full passes over the leaf store for the
	// current layer (fused batches plus per-cuboid fallbacks); totalPasses
	// and fusedMerged accumulate across the run for the scan metrics.
	passes      int
	totalPasses int
	fusedMerged int
}

// prefetch plans and runs the layer's fused pass. The scan workers carry
// pprof labels (layer, cuboid_count) so CPU profiles attribute scan time to
// lattice layers. A tripped budget abandons the pass; the merge loop's
// per-cuboid fallback notices via Done.
func (ls *layerScanner) prefetch(cuboids []kpi.Cuboid, layer int) {
	ls.close()
	ls.scan = ls.snap.NewLayerScan(cuboids)
	pprof.Do(context.Background(), pprof.Labels(
		"layer", strconv.Itoa(layer),
		"cuboid_count", strconv.Itoa(len(cuboids)),
	), func(context.Context) {
		ls.scan.Run(ls.workers, ls.halt)
	})
	ls.passes = ls.scan.Passes()
	ls.totalPasses += ls.scan.Passes()
}

// groups returns cuboid ci's counts, reporting whether they came from the
// fused pass and ok=false when the budget aborted the fallback scan. first
// marks the run's guaranteed cuboid, which scans without the halt hook.
func (ls *layerScanner) groups(ci int, cuboid kpi.Cuboid, first bool) (groups []kpi.GroupCount, fused, ok bool) {
	if ls.scan.Done(ci) {
		ls.fbuf = ls.scan.Groups(ci, ls.fbuf)
		return ls.fbuf, true, true
	}
	halt := ls.halt
	if first {
		halt = nil
	}
	ls.lazy, ok = ls.snap.ScanCuboidHalt(cuboid, ls.lazy, halt)
	if ok {
		ls.passes++
		ls.totalPasses++
	}
	return ls.lazy, false, ok
}

// close releases the current layer's fused accumulators back to their pool.
func (ls *layerScanner) close() {
	if ls.scan != nil {
		ls.scan.Close()
		ls.scan = nil
	}
}

// ancestorIndex answers the Criteria 3 test — "is any accepted candidate a
// strict ancestor of this combination?" — via inverted (attribute, element)
// posting lists over the candidate set. A candidate is an ancestor of the
// probe iff every one of its constrained pairs appears in the probe and it
// constrains strictly fewer attributes; the index counts per-candidate pair
// matches with generation-stamped counters, so a probe costs time
// proportional to the candidates sharing a pair with it instead of the
// former O(candidates) scan that recomputed Layer() per comparison.
type ancestorIndex struct {
	postings map[uint64][]int32
	layers   []int32
	stamp    []uint64
	count    []int32
	gen      uint64
}

func newAncestorIndex() *ancestorIndex {
	return &ancestorIndex{postings: make(map[uint64][]int32)}
}

func postingKey(attr int, code int32) uint64 {
	return uint64(attr)<<32 | uint64(uint32(code))
}

// add registers an accepted candidate.
func (ai *ancestorIndex) add(c kpi.Combination, layer int) {
	id := int32(len(ai.layers))
	ai.layers = append(ai.layers, int32(layer))
	ai.stamp = append(ai.stamp, 0)
	ai.count = append(ai.count, 0)
	for a, v := range c {
		if v == kpi.Wildcard {
			continue
		}
		k := postingKey(a, v)
		ai.postings[k] = append(ai.postings[k], id)
	}
}

// hasAncestor reports whether any registered candidate is a strict ancestor
// of c, where probeLayer is c's constrained attribute count.
func (ai *ancestorIndex) hasAncestor(c kpi.Combination, probeLayer int) bool {
	if len(ai.layers) == 0 {
		return false
	}
	ai.gen++
	for a, v := range c {
		if v == kpi.Wildcard {
			continue
		}
		for _, id := range ai.postings[postingKey(a, v)] {
			if ai.stamp[id] != ai.gen {
				ai.stamp[id] = ai.gen
				ai.count[id] = 1
			} else {
				ai.count[id]++
			}
			if ai.count[id] == ai.layers[id] && int(ai.layers[id]) < probeLayer {
				return true
			}
		}
	}
	return false
}

// coverage tracks which anomalous leaves are covered by the candidate set,
// powering the early-stop check of Algorithm 2 (line 9). Covered leaves
// live in a bitset indexed by leaf position, and add walks only the probe's
// member leaves — the shortest of the snapshot's per-attribute inverted
// anomalous-leaf lists — instead of Matches-testing every anomalous leaf.
type coverage struct {
	snap     *kpi.Snapshot
	postings [][][]int32
	bits     []uint64
	left     int
}

func newCoverage(s *kpi.Snapshot) *coverage {
	return &coverage{
		snap:     s,
		postings: s.AnomalousPostings(),
		bits:     make([]uint64, (len(s.Leaves)+63)/64),
		left:     len(s.AnomalousLeafSet()),
	}
}

// add marks the anomalous leaves under c as covered and reports whether the
// whole anomalous set is now covered.
func (cv *coverage) add(c kpi.Combination) bool {
	// Every leaf under c appears in the posting list of each of c's
	// constrained attributes; walking the shortest one suffices.
	var (
		list  []int32
		found bool
	)
	for a, v := range c {
		if v == kpi.Wildcard {
			continue
		}
		p := cv.postings[a][v]
		if !found || len(p) < len(list) {
			list, found = p, true
		}
	}
	if !found {
		// Root probe: it covers the entire anomalous set. Unreachable from
		// the search (layers start at 1) but kept for safety.
		for _, i := range cv.snap.AnomalousLeafSet() {
			cv.mark(int32(i), cv.snap.Leaves[i].Combo, c)
		}
		return cv.left == 0
	}
	for _, i := range list {
		cv.mark(i, cv.snap.Leaves[i].Combo, c)
	}
	return cv.left == 0
}

// mark sets leaf i's bit when c matches it.
func (cv *coverage) mark(i int32, leaf kpi.Combination, c kpi.Combination) {
	w, b := int(i)>>6, uint64(1)<<(uint(i)&63)
	if cv.bits[w]&b != 0 {
		return
	}
	if c.Matches(leaf) {
		cv.bits[w] |= b
		cv.left--
	}
}
