package rapminer

import (
	"math"
	"sort"

	"repro/internal/kpi"
	"repro/internal/localize"
)

// candidate is one RAP candidate found by the search, carrying the
// statistics used for ranking and the run journal.
type candidate struct {
	combo      kpi.Combination
	score      float64
	confidence float64
	layer      int
	anomalous  int
	total      int
}

// search implements Algorithm 2: the anomaly-confidence-guided
// layer-by-layer top-down BFS over the cuboids of the surviving attributes.
// The result is ranked by RAPScore (Eq. 3); ties are broken toward coarser
// candidates and then toward larger anomalous support, so a genuine RAP
// always precedes a stray false-alarm leaf that happens to share its score.
// diag, when non-nil, accumulates search statistics.
func (m *Miner) search(snapshot *kpi.Snapshot, attrs []int, diag *Diagnostics) []localize.ScoredPattern {
	var (
		candidates []candidate
		// candidateCombos mirrors candidates for the descendant-pruning
		// test (Criteria 3).
		candidateCombos []kpi.Combination
		covered         = newCoverage(snapshot)
	)

layers:
	for layer := 1; layer <= len(attrs); layer++ {
		var stats *LayerStats
		if diag != nil {
			diag.Layers = append(diag.Layers, LayerStats{Layer: layer})
			stats = &diag.Layers[len(diag.Layers)-1]
		}
		for _, cuboid := range kpi.CuboidsAtLayer(attrs, layer) {
			if diag != nil {
				diag.CuboidsVisited++
				stats.Cuboids++
			}
			for _, g := range snapshot.GroupBy(cuboid) {
				if diag != nil {
					diag.CombinationsScanned++
					stats.Combinations++
				}
				// Criteria 3: descendants of an accepted RAP cannot be
				// RAPs; skip them without computing confidence.
				if hasAncestor(candidateCombos, g.Combo) {
					if diag != nil {
						diag.CombinationsPruned++
						stats.Pruned++
					}
					continue
				}
				conf := g.Confidence()
				// Criteria 2: the combination is anomalous iff its
				// confidence exceeds t_conf.
				if conf <= m.cfg.TConf {
					continue
				}
				// Definition 1 holds: all shallower cuboids were fully
				// searched before this layer, so no anomalous parent
				// exists (it would have become a candidate and pruned
				// this combination above).
				candidates = append(candidates, candidate{
					combo:      g.Combo,
					score:      rapScore(conf, layer),
					confidence: conf,
					layer:      layer,
					anomalous:  g.Anomalous,
					total:      g.Total,
				})
				candidateCombos = append(candidateCombos, g.Combo)
				if diag != nil {
					stats.Candidates++
				}
				// Early stop: quit as soon as the candidate set covers
				// every anomalous leaf of D.
				if covered.add(g.Combo) {
					if diag != nil {
						diag.EarlyStopped = true
						diag.EarlyStopLayer = layer
					}
					break layers
				}
			}
		}
	}
	if diag != nil {
		diag.Candidates = len(candidates)
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		if a.score != b.score {
			return a.score > b.score
		}
		if a.layer != b.layer {
			return a.layer < b.layer
		}
		if a.anomalous != b.anomalous {
			return a.anomalous > b.anomalous
		}
		return a.combo.Key() < b.combo.Key()
	})
	out := make([]localize.ScoredPattern, len(candidates))
	for i, c := range candidates {
		out[i] = localize.ScoredPattern{Combo: c.combo, Score: c.score}
	}
	if diag != nil {
		// Journal the full candidate set in ranked order, ahead of the
		// caller's top-k truncation.
		diag.CandidateSet = make([]CandidateInfo, len(candidates))
		for i, c := range candidates {
			diag.CandidateSet[i] = CandidateInfo{
				Combo:           c.combo,
				Confidence:      c.confidence,
				Layer:           c.layer,
				RAPScore:        c.score,
				AnomalousLeaves: c.anomalous,
				TotalLeaves:     c.total,
			}
		}
	}
	return out
}

// rapScore computes Eq. 3: Confidence / sqrt(Layer). Coarser candidates win
// ties because the likelihood of being a root cause falls with depth.
func rapScore(conf float64, layer int) float64 {
	return conf / math.Sqrt(float64(layer))
}

// hasAncestor reports whether any accepted candidate is an ancestor of c.
func hasAncestor(candidates []kpi.Combination, c kpi.Combination) bool {
	for _, cand := range candidates {
		if cand.IsAncestorOf(c) {
			return true
		}
	}
	return false
}

// coverage tracks which anomalous leaves are covered by the candidate set,
// powering the early-stop check of Algorithm 2 (line 9).
type coverage struct {
	snapshot *kpi.Snapshot
	// anomIdx lists the indexes of anomalous leaves in the snapshot.
	anomIdx []int
	covered []bool
	left    int
}

func newCoverage(s *kpi.Snapshot) *coverage {
	idx := s.AnomalousLeafSet()
	return &coverage{
		snapshot: s,
		anomIdx:  idx,
		covered:  make([]bool, len(idx)),
		left:     len(idx),
	}
}

// add marks the anomalous leaves under c as covered and reports whether the
// whole anomalous set is now covered.
func (cv *coverage) add(c kpi.Combination) bool {
	for i, leafIdx := range cv.anomIdx {
		if cv.covered[i] {
			continue
		}
		if c.Matches(cv.snapshot.Leaves[leafIdx].Combo) {
			cv.covered[i] = true
			cv.left--
		}
	}
	return cv.left == 0
}
