package rapminer

import (
	"context"
	"math"
	"runtime/pprof"
	"sort"
	"strconv"
	"time"

	"repro/internal/kpi"
	"repro/internal/localize"
)

// candidate is one RAP candidate found by the search, carrying the
// statistics used for ranking and the run journal.
type candidate struct {
	combo      kpi.Combination
	score      float64
	confidence float64
	layer      int
	anomalous  int
	total      int
	// key is combo.Key(), computed once before sorting so the tie-break
	// comparator does not allocate a string per comparison.
	key string
}

// search implements Algorithm 2: the anomaly-confidence-guided
// layer-by-layer top-down BFS over the cuboids of the surviving attributes.
// The result is ranked by RAPScore (Eq. 3); ties are broken toward coarser
// candidates and then toward larger anomalous support, so a genuine RAP
// always precedes a stray false-alarm leaf that happens to share its score.
// diag, when non-nil, accumulates search statistics. budget bounds the run;
// when it trips the search stops at the next cuboid boundary and returns
// the best-so-far candidates with a non-empty degraded reason.
//
// Concurrency model: the expensive part of a run — the count-only group-bys
// of its cuboids — is driven to a single pass over the snapshot's columnar
// leaf store: the first layer's prefetch scans the leaves once into the
// finest materializable base cuboid (kpi.RollupPlan), and every cuboid the
// base refines — across all layers — is served by exact integer roll-up
// over that array, with zero further leaf reads. Cuboids outside the base
// take the per-layer fused pass (kpi.LayerScan), which accumulates every
// residual cuboid of the layer simultaneously. Both passes partition across
// cfg.Workers goroutines by contiguous leaf range; per-range partial counts
// merge by integer addition, which is exact and order-independent. The cheap per-group decisions (Criteria 2/3,
// coverage, journaling) replay sequentially over the fused results in
// cuboid order, then group-index order. That merge order is exactly the
// sequential visit order, so candidates, scores, ranking and Diagnostics
// are bit-identical to a single-worker run. The layer barrier is preserved:
// no combination is judged before every shallower layer has been fully
// merged, which is what Definition 1 and Criteria 3 rely on. Pruning and
// early-stop state (ancestorIndex, coverage) are touched only by the
// merging goroutine, so the parallel path needs no locks beyond the
// snapshot's internal caches.
//
// Cancellation model: the budget is polled between cuboids by the merging
// goroutine and inside scans (every few thousand leaves) by the workers, so
// every stop lands on the cuboid boundary — Algorithm 2's own layer barrier
// is never split, and the candidate set at the stop point is a prefix of
// the sequential run's candidate stream. The first cuboid of the run is
// always merged before the budget is consulted, so even an
// already-expired deadline yields the coarsest layer's best-so-far
// candidates instead of an empty answer.
func (m *Miner) search(snapshot *kpi.Snapshot, attrs []int, diag *Diagnostics, budget *runBudget) ([]localize.ScoredPattern, string) {
	var (
		candidates []candidate
		degraded   string
		merged     int
		anc        = newAncestorIndex(snapshot.Schema)
		covered    = newCoverage(snapshot)
		scanner    = layerScanner{snap: snapshot, workers: m.workers(), halt: budget.halt()}
		mx         = layerScanInstruments()
		// probe is the scratch combination groups are decoded into; it is
		// cloned only when a group becomes a candidate.
		probe = kpi.NewRoot(snapshot.Schema.NumAttributes())
	)
	defer scanner.close()
	if m.cfg.RollupLimit >= 0 {
		// The plan is only a choice of base cuboid at this point; the one
		// leaf pass that fills it runs inside the first layer's prefetch,
		// under the run budget's halt hook.
		scanner.rollupOn = true
		scanner.plan = snapshot.NewRollupPlan(attrs, m.cfg.RollupLimit)
	}

layers:
	for layer := 1; layer <= len(attrs); layer++ {
		// The budget is checked before the fused pass as well as between
		// cuboids: an exhausted budget at a layer boundary must not pay for
		// a whole layer's scan it will never merge. The trip point is the
		// same cuboid boundary either way, so determinism is unaffected.
		if merged > 0 && budget.exceeded() {
			degraded = budget.reason
			break layers
		}
		var stats *LayerStats
		if diag != nil {
			diag.Layers = append(diag.Layers, LayerStats{Layer: layer})
			stats = &diag.Layers[len(diag.Layers)-1]
		}
		cuboids := kpi.CuboidsAtLayer(attrs, layer)
		scanStart := time.Now()
		scanner.prefetch(cuboids, layer)
		mx.seconds.Observe(time.Since(scanStart).Seconds())
		for ci, cuboid := range cuboids {
			// The budget is enforced on the cuboid boundary: the layer's
			// merge replay is sequential, so stopping here is deterministic
			// for deterministic budgets (pre-canceled context, MaxCuboids)
			// and never splits a cuboid's group stream. The first cuboid is
			// exempt so a degraded run still carries best-so-far work.
			if merged > 0 && budget.exceeded() {
				degraded = budget.reason
				break layers
			}
			groups, src, ok := scanner.groups(ci, cuboid, merged == 0)
			if !ok {
				// The scan itself aborted mid-pass (budget tripped inside a
				// large snapshot); its partial counts are discarded.
				budget.exceeded()
				if degraded = budget.reason; degraded == "" {
					degraded = DegradedDeadline
				}
				break layers
			}
			merged++
			budget.noteCuboid()
			if diag != nil {
				diag.CuboidsVisited++
				stats.Cuboids++
				stats.ScanPasses = scanner.passes
				switch src {
				case srcFused:
					stats.FusedCuboids++
				case srcRollup:
					stats.RollupServed++
				}
			}
			switch src {
			case srcFused:
				scanner.fusedMerged++
			case srcRollup:
				scanner.rollupMerged++
			}
			ix := snapshot.Indexer(cuboid)
			for _, g := range groups {
				if diag != nil {
					diag.CombinationsScanned++
					stats.Combinations++
				}
				ix.DecodeInto(probe, g.Group)
				// Criteria 3: descendants of an accepted RAP cannot be
				// RAPs; skip them without computing confidence.
				if anc.hasAncestor(probe, layer) {
					if diag != nil {
						diag.CombinationsPruned++
						stats.Pruned++
					}
					continue
				}
				conf := g.Confidence()
				// Criteria 2: the combination is anomalous iff its
				// confidence exceeds t_conf.
				if conf <= m.cfg.TConf {
					continue
				}
				// Definition 1 holds: all shallower cuboids were fully
				// merged before this layer, so no anomalous parent exists
				// (it would have become a candidate and pruned this
				// combination above).
				combo := probe.Clone()
				candidates = append(candidates, candidate{
					combo:      combo,
					score:      rapScore(conf, layer),
					confidence: conf,
					layer:      layer,
					anomalous:  g.Anomalous,
					total:      g.Total,
				})
				anc.add(combo, layer)
				if diag != nil {
					stats.Candidates++
				}
				// Early stop: quit as soon as the candidate set covers
				// every anomalous leaf of D.
				if covered.add(combo) {
					if diag != nil {
						diag.EarlyStopped = true
						diag.EarlyStopLayer = layer
					}
					break layers
				}
			}
		}
	}
	mx.passes.Add(float64(scanner.totalPasses))
	mx.fused.Add(float64(scanner.fusedMerged))
	if scanner.rollupLayers > 0 {
		mx.rollupLayers.Add(float64(scanner.rollupLayers))
	}
	if scanner.fallbackLayers > 0 {
		mx.rollupFallback.Add(float64(scanner.fallbackLayers))
	}
	if diag != nil {
		diag.Candidates = len(candidates)
		if degraded != "" {
			diag.Degraded = true
			diag.DegradedReason = degraded
		}
	}
	for i := range candidates {
		candidates[i].key = candidates[i].combo.Key()
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		if a.score != b.score {
			return a.score > b.score
		}
		if a.layer != b.layer {
			return a.layer < b.layer
		}
		if a.anomalous != b.anomalous {
			return a.anomalous > b.anomalous
		}
		return a.key < b.key
	})
	out := make([]localize.ScoredPattern, len(candidates))
	for i, c := range candidates {
		out[i] = localize.ScoredPattern{Combo: c.combo, Score: c.score}
	}
	if diag != nil {
		// Journal the full candidate set in ranked order, ahead of the
		// caller's top-k truncation.
		diag.CandidateSet = make([]CandidateInfo, len(candidates))
		for i, c := range candidates {
			diag.CandidateSet[i] = CandidateInfo{
				Combo:           c.combo,
				Confidence:      c.confidence,
				Layer:           c.layer,
				RAPScore:        c.score,
				AnomalousLeaves: c.anomalous,
				TotalLeaves:     c.total,
			}
		}
	}
	return out, degraded
}

// rapScore computes Eq. 3: Confidence / sqrt(Layer). Coarser candidates win
// ties because the likelihood of being a root cause falls with depth.
func rapScore(conf float64, layer int) float64 {
	return conf / math.Sqrt(float64(layer))
}

// groupSource names where a cuboid's counts came from, for the per-layer
// strategy telemetry (LayerStats.FusedCuboids / RollupServed and the scan
// metric counters).
type groupSource int

const (
	// srcScan is the per-cuboid fallback scan in the merge loop.
	srcScan groupSource = iota
	// srcFused is the layer's fused columnar pass.
	srcFused
	// srcRollup is pure arithmetic over the run's materialized base cuboid.
	srcRollup
)

// layerScanner produces the count-only group-bys of one BFS layer. The
// primary path is the run-level roll-up (kpi.RollupPlan): the first layer's
// prefetch scans the leaves once into the base cuboid's flat accumulators,
// and every cuboid the base refines — on this layer and every deeper one —
// is answered by mixed-radix roll-up over that array, with zero further
// leaf reads. Cuboids outside the base (attributes too wide to
// materialize, or roll-up disabled) take the per-layer fused columnar pass
// (kpi.LayerScan): one scan of the leaf columns accumulates every dense
// residual cuboid of the layer at once, partitioned across the worker pool
// by leaf range. Cuboids neither engine covered — sparse domains, or
// passes a tripped budget abandoned — fall back to the per-cuboid scan in
// the merge loop, where the run's first cuboid scans without the halt hook
// so a degraded run always merges at least one cuboid. A panic on a scan
// worker is rethrown on the merging goroutine (as *kpi.ScanPanic), where
// localize's recover turns it into the run's error.
type layerScanner struct {
	snap    *kpi.Snapshot
	workers int
	halt    kpi.Halt
	// plan is the run-level roll-up engine; nil when disabled, not
	// materializable, or dropped after an aborted base pass. rollupOn
	// records that roll-up was requested, so fallback layers stay
	// observable even after the plan is dropped.
	plan     *kpi.RollupPlan
	planRan  bool
	rollupOn bool
	scan     *kpi.LayerScan
	// residx maps a layer cuboid index to its position in the residual
	// fused scan, or -1 when the roll-up plan serves it.
	residx   []int32
	residual []kpi.Cuboid
	fbuf     []kpi.GroupCount
	lazy     []kpi.GroupCount
	rbuf     []kpi.GroupCount
	// passes counts completed full passes over the leaf store for the
	// current layer (base pass, fused batches, per-cuboid fallbacks); the
	// remaining fields accumulate across the run for the scan metrics.
	passes         int
	totalPasses    int
	fusedMerged    int
	rollupMerged   int
	rollupLayers   int
	fallbackLayers int
}

// prefetch prepares the layer: it runs the roll-up base pass the first
// time through (one leaf scan for the whole run), partitions the layer's
// cuboids into roll-up-served and residual, and runs the residual fused
// pass. The scan workers carry pprof labels (layer, cuboid_count) so CPU
// profiles attribute scan time to lattice layers. A tripped budget
// abandons the in-flight pass — an aborted base pass drops the plan for
// the rest of the run — and the merge loop's per-cuboid fallback notices
// via the residual scan's Done.
func (ls *layerScanner) prefetch(cuboids []kpi.Cuboid, layer int) {
	ls.closeLayer()
	ls.passes = 0
	if ls.plan != nil && !ls.planRan {
		ls.planRan = true
		ok := false
		pprof.Do(context.Background(), pprof.Labels(
			"layer", strconv.Itoa(layer),
			"rollup_base", strconv.Itoa(len(ls.plan.Base())),
		), func(context.Context) {
			ok = ls.plan.Run(ls.workers, ls.halt)
		})
		if ok {
			ls.passes += ls.plan.Passes()
			ls.totalPasses += ls.plan.Passes()
		} else {
			ls.plan.Close()
			ls.plan = nil
		}
	}
	if cap(ls.residx) < len(cuboids) {
		ls.residx = make([]int32, len(cuboids))
	}
	ls.residx = ls.residx[:len(cuboids)]
	ls.residual = ls.residual[:0]
	for ci, c := range cuboids {
		if ls.plan != nil && ls.plan.Serves(c) {
			ls.residx[ci] = -1
			continue
		}
		ls.residx[ci] = int32(len(ls.residual))
		ls.residual = append(ls.residual, c)
	}
	if len(ls.residual) == 0 {
		// The whole layer rolls up from the base: no leaf access at all.
		ls.rollupLayers++
		return
	}
	if ls.rollupOn {
		ls.fallbackLayers++
	}
	ls.scan = ls.snap.NewLayerScan(ls.residual)
	pprof.Do(context.Background(), pprof.Labels(
		"layer", strconv.Itoa(layer),
		"cuboid_count", strconv.Itoa(len(ls.residual)),
	), func(context.Context) {
		ls.scan.Run(ls.workers, ls.halt)
	})
	ls.passes += ls.scan.Passes()
	ls.totalPasses += ls.scan.Passes()
}

// groups returns cuboid ci's counts, reporting which engine served them
// and ok=false when the budget aborted the fallback scan. first marks the
// run's guaranteed cuboid, which scans without the halt hook.
func (ls *layerScanner) groups(ci int, cuboid kpi.Cuboid, first bool) (groups []kpi.GroupCount, src groupSource, ok bool) {
	if ls.residx[ci] < 0 {
		ls.rbuf = ls.plan.Groups(cuboid, ls.rbuf)
		return ls.rbuf, srcRollup, true
	}
	ri := int(ls.residx[ci])
	if ls.scan != nil && ls.scan.Done(ri) {
		ls.fbuf = ls.scan.Groups(ri, ls.fbuf)
		return ls.fbuf, srcFused, true
	}
	halt := ls.halt
	if first {
		halt = nil
	}
	ls.lazy, ok = ls.snap.ScanCuboidHalt(cuboid, ls.lazy, halt)
	if ok {
		ls.passes++
		ls.totalPasses++
	}
	return ls.lazy, srcScan, ok
}

// closeLayer releases the current layer's fused accumulators back to their
// pool; the roll-up base survives across layers.
func (ls *layerScanner) closeLayer() {
	if ls.scan != nil {
		ls.scan.Close()
		ls.scan = nil
	}
}

// close releases everything, base included; the scanner must not be used
// afterwards.
func (ls *layerScanner) close() {
	ls.closeLayer()
	if ls.plan != nil {
		ls.plan.Close()
		ls.plan = nil
	}
}

// ancestorIndex answers the Criteria 3 test — "is any accepted candidate a
// strict ancestor of this combination?" — via inverted (attribute, element)
// posting lists over the candidate set. A candidate is an ancestor of the
// probe iff every one of its constrained pairs appears in the probe and it
// constrains strictly fewer attributes; the index counts per-candidate pair
// matches with generation-stamped counters, so a probe costs time
// proportional to the candidates sharing a pair with it instead of the
// former O(candidates) scan that recomputed Layer() per comparison. The
// posting lists are direct-indexed by [attribute][element code] — the
// domain is the schema, known up front — so the per-pair lookup in the
// merge loop's hottest path is two slice indexes, not a map probe.
type ancestorIndex struct {
	postings [][][]int32
	layers   []int32
	stamp    []uint64
	count    []int32
	gen      uint64
}

func newAncestorIndex(schema *kpi.Schema) *ancestorIndex {
	postings := make([][][]int32, schema.NumAttributes())
	for a := range postings {
		postings[a] = make([][]int32, schema.Cardinality(a))
	}
	return &ancestorIndex{postings: postings}
}

// add registers an accepted candidate.
func (ai *ancestorIndex) add(c kpi.Combination, layer int) {
	id := int32(len(ai.layers))
	ai.layers = append(ai.layers, int32(layer))
	ai.stamp = append(ai.stamp, 0)
	ai.count = append(ai.count, 0)
	for a, v := range c {
		if v == kpi.Wildcard {
			continue
		}
		ai.postings[a][v] = append(ai.postings[a][v], id)
	}
}

// hasAncestor reports whether any registered candidate is a strict ancestor
// of c, where probeLayer is c's constrained attribute count.
func (ai *ancestorIndex) hasAncestor(c kpi.Combination, probeLayer int) bool {
	if len(ai.layers) == 0 {
		return false
	}
	ai.gen++
	for a, v := range c {
		if v == kpi.Wildcard {
			continue
		}
		for _, id := range ai.postings[a][v] {
			if ai.stamp[id] != ai.gen {
				ai.stamp[id] = ai.gen
				ai.count[id] = 1
			} else {
				ai.count[id]++
			}
			if ai.count[id] == ai.layers[id] && int(ai.layers[id]) < probeLayer {
				return true
			}
		}
	}
	return false
}

// coverage tracks which anomalous leaves are covered by the candidate set,
// powering the early-stop check of Algorithm 2 (line 9). Covered leaves
// live in a bitset indexed by leaf position, and add walks only the probe's
// member leaves — the shortest of the snapshot's per-attribute inverted
// anomalous-leaf lists — instead of Matches-testing every anomalous leaf.
type coverage struct {
	snap     *kpi.Snapshot
	postings [][][]int32
	bits     []uint64
	left     int
}

func newCoverage(s *kpi.Snapshot) *coverage {
	return &coverage{
		snap:     s,
		postings: s.AnomalousPostings(),
		bits:     make([]uint64, (len(s.Leaves)+63)/64),
		left:     len(s.AnomalousLeafSet()),
	}
}

// add marks the anomalous leaves under c as covered and reports whether the
// whole anomalous set is now covered.
func (cv *coverage) add(c kpi.Combination) bool {
	// Every leaf under c appears in the posting list of each of c's
	// constrained attributes; walking the shortest one suffices.
	var (
		list  []int32
		found bool
	)
	for a, v := range c {
		if v == kpi.Wildcard {
			continue
		}
		p := cv.postings[a][v]
		if !found || len(p) < len(list) {
			list, found = p, true
		}
	}
	if !found {
		// Root probe: it covers the entire anomalous set. Unreachable from
		// the search (layers start at 1) but kept for safety.
		for _, i := range cv.snap.AnomalousLeafSet() {
			cv.mark(int32(i), cv.snap.Leaves[i].Combo, c)
		}
		return cv.left == 0
	}
	for _, i := range list {
		cv.mark(i, cv.snap.Leaves[i].Combo, c)
	}
	return cv.left == 0
}

// mark sets leaf i's bit when c matches it.
func (cv *coverage) mark(i int32, leaf kpi.Combination, c kpi.Combination) {
	w, b := int(i)>>6, uint64(1)<<(uint(i)&63)
	if cv.bits[w]&b != 0 {
		return
	}
	if c.Matches(leaf) {
		cv.bits[w] |= b
		cv.left--
	}
}
