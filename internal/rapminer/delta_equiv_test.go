package rapminer

import (
	"reflect"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/gendata"
	"repro/internal/kpi"
)

// TestDeltaIngestedMatchesFresh is the delta-ingestion correctness bar at
// the engine level: a snapshot grown through a baseline plus a sequence of
// ticks (ApplyDelta + incremental LabelDelta, all caches warm and patched in
// place) must localize bit-identically — results AND Diagnostics — to a
// from-scratch snapshot of the same final state, at every worker count and
// with roll-up on and off.
func TestDeltaIngestedMatchesFresh(t *testing.T) {
	spec := gendata.StreamSpec{
		Attributes: []gendata.StreamAttr{
			{Name: "region", Cardinality: 24},
			{Name: "isp", Cardinality: 8},
			{Name: "proto", Cardinality: 6},
		},
		Seed:    19,
		NumRAPs: 2,
	}
	tspec := gendata.TickSpec{TouchFraction: 0.08, FailEvery: 2, FailFor: 1}
	det := anomaly.DefaultRelativeDeviation()

	patched, err := spec.Background().StreamSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	anomaly.Label(patched, det)
	// Warm every cache so the ticks exercise the patch paths, not lazy
	// rebuilds.
	patched.Columns()
	patched.AnomalousPostings()
	for tick := 1; tick <= 5; tick++ {
		d, err := spec.TickDelta(tspec, tick)
		if err != nil {
			t.Fatal(err)
		}
		res, err := patched.ApplyDelta(d)
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if !res.PatchedFrame || !res.PatchedLabels {
			t.Fatalf("tick %d: caches not patched in place: %+v", tick, res)
		}
		anomaly.LabelDelta(patched, det, res.Touched)
	}
	if patched.NumAnomalous() == 0 {
		t.Fatal("tick sequence left no anomalies; the pin would be vacuous")
	}

	fresh, err := kpi.NewSnapshot(patched.Schema, patched.Clone().Leaves)
	if err != nil {
		t.Fatal(err)
	}

	base, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, rollup := range []int{0, -1} {
			m := base.WithWorkers(workers).WithRollupLimit(rollup)
			wantRes, wantDiag, err := m.LocalizeWithDiagnostics(fresh, 5)
			if err != nil {
				t.Fatalf("workers %d rollup %d: fresh run: %v", workers, rollup, err)
			}
			gotRes, gotDiag, err := m.LocalizeWithDiagnostics(patched, 5)
			if err != nil {
				t.Fatalf("workers %d rollup %d: patched run: %v", workers, rollup, err)
			}
			if !reflect.DeepEqual(gotRes, wantRes) {
				t.Errorf("workers %d rollup %d: results diverge\n got %+v\nwant %+v",
					workers, rollup, gotRes, wantRes)
			}
			if !reflect.DeepEqual(gotDiag, wantDiag) {
				t.Errorf("workers %d rollup %d: diagnostics diverge\n got %+v\nwant %+v",
					workers, rollup, gotDiag, wantDiag)
			}
		}
	}
}
