package httpapi

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/kpi"
	"repro/internal/obs"
	"repro/internal/rapminer"
	"repro/internal/rapminer/explain"
)

const incomingTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

// postLocalizeTraced POSTs sampleCSV to /v1/localize with the given
// traceparent header (empty = none) and returns the response.
func postLocalizeTraced(t *testing.T, srv *httptest.Server, header string) (*http.Response, localizeResponse) {
	t.Helper()
	req, err := http.NewRequest("POST", srv.URL+"/v1/localize", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	if header != "" {
		req.Header.Set(TraceparentHeader, header)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out localizeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestTraceparentPropagation(t *testing.T) {
	srv := newServer(t)

	// A valid incoming traceparent is adopted: the request joins the
	// caller's trace, and the response header names a server-side span in
	// that same trace.
	resp, out := postLocalizeTraced(t, srv, incomingTraceparent)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	echoed, err := obs.ParseTraceparent(resp.Header.Get(TraceparentHeader))
	if err != nil {
		t.Fatalf("response traceparent invalid: %v", err)
	}
	if echoed.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("response trace ID = %q, want the caller's", echoed.TraceID)
	}
	if echoed.SpanID == "00f067aa0ba902b7" {
		t.Error("response span ID should name the server's span, not echo the caller's")
	}
	if out.TraceID != echoed.TraceID {
		t.Errorf("body trace_id = %q, header trace ID = %q", out.TraceID, echoed.TraceID)
	}

	// The request's internal spans all joined that trace and form a tree:
	// http.request -> httpapi.localize -> rapminer stages.
	names := map[string]obs.SpanRecord{}
	for _, sp := range obs.RecentSpans() {
		if sp.TraceID == echoed.TraceID {
			names[sp.Name] = sp
		}
	}
	for _, want := range []string{"http.request", "httpapi.localize", "rapminer.attribute_deletion", "rapminer.search"} {
		if _, ok := names[want]; !ok {
			t.Errorf("span %q missing from trace %s", want, echoed.TraceID)
		}
	}
	if root, ok := names["http.request"]; ok {
		if root.ParentID != "00f067aa0ba902b7" {
			t.Errorf("http.request parent = %q, want the caller's span ID", root.ParentID)
		}
		if loc, ok := names["httpapi.localize"]; ok && loc.ParentID != root.SpanID {
			t.Errorf("httpapi.localize parent = %q, want http.request span %q", loc.ParentID, root.SpanID)
		}
	}
}

func TestTraceparentMalformedGetsFreshTrace(t *testing.T) {
	srv := newServer(t)
	for _, bad := range []string{
		"garbage",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
	} {
		resp, out := postLocalizeTraced(t, srv, bad)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("malformed traceparent %q failed the request: %d", bad, resp.StatusCode)
		}
		tc, err := obs.ParseTraceparent(resp.Header.Get(TraceparentHeader))
		if err != nil {
			t.Fatalf("response to %q has invalid traceparent: %v", bad, err)
		}
		if tc.TraceID == "4bf92f3577b34da6a3ce929d0e0e4736" || tc.TraceID == "" {
			t.Errorf("malformed %q: trace ID %q not freshly generated", bad, tc.TraceID)
		}
		if out.TraceID != tc.TraceID {
			t.Errorf("body/header trace mismatch: %q vs %q", out.TraceID, tc.TraceID)
		}
	}
}

func TestTraceparentUniquePerRequest(t *testing.T) {
	srv := newServer(t)
	seen := make(map[string]bool)
	for i := 0; i < 5; i++ {
		resp, out := postLocalizeTraced(t, srv, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if out.TraceID == "" || seen[out.TraceID] {
			t.Fatalf("request %d: trace ID %q not unique", i, out.TraceID)
		}
		seen[out.TraceID] = true
	}
}

// TestExplainReportEndToEnd is the acceptance path: localize with a
// traceparent, fetch /debug/runs/{trace-id}, and check the report against
// LocalizeWithDiagnostics on the same snapshot.
func TestExplainReportEndToEnd(t *testing.T) {
	srv := newServer(t)

	resp, out := postLocalizeTraced(t, srv, incomingTraceparent)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("localize status = %d", resp.StatusCode)
	}

	runResp, err := http.Get(srv.URL + "/debug/runs/" + out.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer runResp.Body.Close()
	if runResp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/runs/%s = %d", out.TraceID, runResp.StatusCode)
	}
	var report explain.Report
	if err := json.NewDecoder(runResp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}

	// Reproduce the server's run: same CSV, same default labeling, same
	// miner config, same default k.
	snap, err := kpi.ReadCSV(strings.NewReader(sampleCSV), nil)
	if err != nil {
		t.Fatal(err)
	}
	anomaly.Label(snap, anomaly.DefaultRelativeDeviation())
	m := rapminer.MustNew(rapminer.DefaultConfig())
	res, diag, err := m.LocalizeWithDiagnostics(snap, 3)
	if err != nil {
		t.Fatal(err)
	}

	if report.TraceID != out.TraceID || report.Source != "httpapi" || report.K != 3 {
		t.Errorf("report header = %+v", report)
	}
	if report.Leaves != snap.Len() || report.AnomalousLeaves != snap.NumAnomalous() {
		t.Errorf("report counts %d/%d, want %d/%d",
			report.AnomalousLeaves, report.Leaves, snap.NumAnomalous(), snap.Len())
	}

	// Kept attributes agree with Algorithm 1 on the same snapshot.
	kept := make(map[int]bool)
	for _, a := range diag.KeptAttributes {
		kept[a] = true
	}
	if len(report.Attributes) != len(diag.CPs) {
		t.Fatalf("report has %d attribute verdicts, want %d", len(report.Attributes), len(diag.CPs))
	}
	for _, v := range report.Attributes {
		if v.Kept != kept[v.Attr] {
			t.Errorf("attribute %s kept = %v, local run says %v", v.Name, v.Kept, kept[v.Attr])
		}
	}

	// Per-layer counts agree with Algorithm 2 on the same snapshot.
	if len(report.Layers) != len(diag.Layers) {
		t.Fatalf("report has %d layers, want %d", len(report.Layers), len(diag.Layers))
	}
	for i, l := range report.Layers {
		if l != diag.Layers[i] {
			t.Errorf("layer %d = %+v, local run says %+v", i+1, l, diag.Layers[i])
		}
	}
	if report.CuboidsVisited != diag.CuboidsVisited || report.CombinationsScanned != diag.CombinationsScanned {
		t.Errorf("report totals (%d, %d), local run (%d, %d)",
			report.CuboidsVisited, report.CombinationsScanned, diag.CuboidsVisited, diag.CombinationsScanned)
	}

	// Ranked candidates agree: combination, confidence, layer, RAPScore.
	if len(report.Candidates) != len(diag.CandidateSet) {
		t.Fatalf("report has %d candidates, want %d", len(report.Candidates), len(diag.CandidateSet))
	}
	for i, c := range report.Candidates {
		want := diag.CandidateSet[i]
		got := "(" + strings.Join(c.Combination, ", ") + ")"
		if got != want.Combo.Format(snap.Schema) {
			t.Errorf("candidate %d = %s, local run says %s", i, got, want.Combo.Format(snap.Schema))
		}
		if math.Abs(c.Confidence-want.Confidence) > 1e-12 || c.Layer != want.Layer ||
			math.Abs(c.RAPScore-want.RAPScore) > 1e-12 {
			t.Errorf("candidate %d = %+v, local run says %+v", i, c, want)
		}
		if c.Returned != (i < len(res.Patterns)) {
			t.Errorf("candidate %d Returned = %v", i, c.Returned)
		}
	}

	// The response patterns match the report's returned candidates.
	if len(out.Patterns) == 0 || len(out.Patterns) > len(report.Candidates) {
		t.Fatalf("response has %d patterns, report %d candidates", len(out.Patterns), len(report.Candidates))
	}
	for i, p := range out.Patterns {
		if strings.Join(p.Combination, ",") != strings.Join(report.Candidates[i].Combination, ",") {
			t.Errorf("response pattern %d = %v, report says %v", i, p.Combination, report.Candidates[i].Combination)
		}
	}
}
