package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/kpi"
)

const sampleCSV = `Location,Website,actual,forecast
L1,Site1,40,100
L1,Site2,100,100
L2,Site1,38,95
L2,Site2,101,100
L3,Site1,41,100
L3,Site2,98,100
`

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler())
	t.Cleanup(srv.Close)
	return srv
}

func TestHealthz(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Errorf("body = %v", body)
	}
}

func TestMethodsEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/v1/methods")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body["methods"]) != 8 {
		t.Errorf("methods = %v", body["methods"])
	}
	// Every advertised method must actually build.
	for _, m := range body["methods"] {
		if _, ok := methodBuilders[m]; !ok {
			t.Errorf("advertised method %q has no builder", m)
		}
	}
}

func postLocalize(t *testing.T, srv *httptest.Server, path, contentType, body string) (*http.Response, localizeResponse) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out localizeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestLocalizeCSV(t *testing.T) {
	srv := newServer(t)
	resp, out := postLocalize(t, srv, "/v1/localize?k=2", "text/csv", sampleCSV)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Method != "RAPMiner" || out.Leaves != 6 || out.Anomalous != 3 {
		t.Fatalf("response = %+v", out)
	}
	if len(out.Patterns) == 0 {
		t.Fatal("no patterns returned")
	}
	got := strings.Join(out.Patterns[0].Combination, ",")
	if got != "*,Site1" {
		t.Errorf("top pattern = %q, want *,Site1", got)
	}
}

func TestLocalizeJSON(t *testing.T) {
	// Round-trip the same snapshot through the JSON codec.
	snap, err := kpi.ReadCSV(strings.NewReader(sampleCSV), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := kpi.WriteJSON(&buf, snap); err != nil {
		t.Fatal(err)
	}
	srv := newServer(t)
	resp, out := postLocalize(t, srv, "/v1/localize", "application/json", buf.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Patterns) == 0 || strings.Join(out.Patterns[0].Combination, ",") != "*,Site1" {
		t.Fatalf("patterns = %v", out.Patterns)
	}
}

func TestLocalizeEveryMethod(t *testing.T) {
	srv := newServer(t)
	for _, m := range MethodNames() {
		t.Run(m, func(t *testing.T) {
			resp, out := postLocalize(t, srv, "/v1/localize?method="+m, "text/csv", sampleCSV)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d", resp.StatusCode)
			}
			if out.Method == "" {
				t.Error("method missing from response")
			}
		})
	}
}

func TestLocalizeErrors(t *testing.T) {
	srv := newServer(t)
	tests := []struct {
		name        string
		path        string
		contentType string
		body        string
		wantStatus  int
	}{
		{"unknown method", "/v1/localize?method=bogus", "text/csv", sampleCSV, http.StatusBadRequest},
		{"bad k", "/v1/localize?k=0", "text/csv", sampleCSV, http.StatusBadRequest},
		{"bad csv", "/v1/localize", "text/csv", "not,a,snapshot", http.StatusBadRequest},
		{"bad json", "/v1/localize", "application/json", "{", http.StatusBadRequest},
		{"bad content type", "/v1/localize", "application/xml", "<x/>", http.StatusUnsupportedMediaType},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, _ := postLocalize(t, srv, tt.path, tt.contentType, tt.body)
			if resp.StatusCode != tt.wantStatus {
				t.Errorf("status = %d, want %d", resp.StatusCode, tt.wantStatus)
			}
		})
	}
}

func TestLocalizeMethodNotAllowed(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/v1/localize")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/localize status = %d", resp.StatusCode)
	}
}

func TestLocalizeCharsetParameter(t *testing.T) {
	srv := newServer(t)
	resp, out := postLocalize(t, srv, "/v1/localize", "text/csv; charset=utf-8", sampleCSV)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Patterns) == 0 {
		t.Error("no patterns with charset parameter")
	}
}

func TestLocalizeBodyTooLarge(t *testing.T) {
	srv := newServer(t)
	// A body beyond the 64 MiB cap; build it lazily with a reader to
	// avoid allocating the whole thing.
	resp, err := http.Post(srv.URL+"/v1/localize", "text/csv",
		io.LimitReader(neverEnding('a'), maxBodyBytes+10))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
}

func TestObserveBodyTooLarge(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Post(srv.URL+"/v1/observe", "text/csv",
		io.LimitReader(neverEnding('a'), maxBodyBytes+10))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body["error"], "exceeds") {
		t.Errorf("error = %q", body["error"])
	}
}

// neverEnding is an io.Reader of one repeated byte.
type neverEnding byte

func (b neverEnding) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(b)
	}
	return len(p), nil
}
