package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/kpi"
)

// observeBody renders a 2x2 snapshot as the JSON document, with the leaves
// under (L1, *) dropped by the given fraction.
func observeBody(t *testing.T, drop float64) string {
	t.Helper()
	schema := kpi.MustSchema(
		kpi.Attribute{Name: "Location", Values: []string{"L1", "L2"}},
		kpi.Attribute{Name: "Website", Values: []string{"Site1", "Site2"}},
	)
	scope := kpi.MustParseCombination(schema, "(L1, *)")
	var leaves []kpi.Leaf
	for l := int32(0); l < 2; l++ {
		for w := int32(0); w < 2; w++ {
			combo := kpi.Combination{l, w}
			leaf := kpi.Leaf{Combo: combo, Actual: 100}
			if drop > 0 && scope.Matches(combo) {
				leaf.Actual = 100 * (1 - drop)
			}
			leaves = append(leaves, leaf)
		}
	}
	snap, err := kpi.NewSnapshot(schema, leaves)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := kpi.WriteJSON(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func observe(t *testing.T, srv *httptest.Server, tick int, drop float64) observeResponse {
	t.Helper()
	ts := time.Date(2026, 3, 6, 10, 0, 0, 0, time.UTC).Add(time.Duration(tick) * time.Minute)
	url := fmt.Sprintf("%s/v1/observe?ts=%s", srv.URL, ts.Format(time.RFC3339))
	resp, err := http.Post(url, "application/json", strings.NewReader(observeBody(t, drop)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick %d: status %d", tick, resp.StatusCode)
	}
	var out observeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestObserveIncidentLifecycle(t *testing.T) {
	srv := newServer(t)

	// Warm-up ticks: the cold tracker keeps everything quiet.
	tick := 0
	for ; tick < 8; tick++ {
		if ev := observe(t, srv, tick, 0); ev.Event != "tick" {
			t.Fatalf("warm-up tick %d = %s", tick, ev.Event)
		}
	}
	// Failure ticks: debounce (2 ticks) then an incident with the right
	// scope.
	if ev := observe(t, srv, tick, 0.6); ev.Event != "arming" {
		t.Fatalf("first failing tick = %s", ev.Event)
	}
	tick++
	ev := observe(t, srv, tick, 0.6)
	tick++
	if ev.Event != "opened" || ev.Incident == nil {
		t.Fatalf("second failing tick = %s", ev.Event)
	}
	if len(ev.Incident.Scopes) == 0 ||
		strings.Join(ev.Incident.Scopes[0].Combination, ",") != "L1,*" {
		t.Fatalf("incident scopes = %v", ev.Incident.Scopes)
	}

	// Incidents endpoint reflects the open incident.
	resp, err := http.Get(srv.URL + "/v1/incidents")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var state struct {
		Ticks    int                `json:"ticks"`
		Current  *incidentResponse  `json:"current"`
		Resolved []incidentResponse `json:"resolved"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	if state.Current == nil || state.Current.ID != 1 {
		t.Fatalf("incidents state = %+v", state)
	}
	if state.Ticks != tick {
		t.Errorf("ticks = %d, want %d", state.Ticks, tick)
	}

	// Recovery: resolve after 3 clean ticks, then history shows it.
	var last observeResponse
	for i := 0; i < 3; i++ {
		last = observe(t, srv, tick, 0)
		tick++
	}
	if last.Event != "resolved" {
		t.Fatalf("final recovery tick = %s", last.Event)
	}
	resp2, err := http.Get(srv.URL + "/v1/incidents")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var after struct {
		Current  *incidentResponse  `json:"current"`
		Resolved []incidentResponse `json:"resolved"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	if after.Current != nil || len(after.Resolved) != 1 {
		t.Fatalf("post-resolve state = %+v", after)
	}
	if after.Resolved[0].ResolvedAt == nil {
		t.Error("resolved incident missing ResolvedAt")
	}
}

func TestObserveSchemaConflict(t *testing.T) {
	srv := newServer(t)
	observe(t, srv, 0, 0)
	// A different schema on a later tick is rejected.
	other := `{"attributes":[{"name":"X","values":["x1"]}],"leaves":[{"combination":["x1"],"actual":1,"forecast":0}]}`
	resp, err := http.Post(srv.URL+"/v1/observe", "application/json", strings.NewReader(other))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("status = %d, want 409", resp.StatusCode)
	}
}

func TestObserveBadInputs(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Post(srv.URL+"/v1/observe?ts=not-a-time", "application/json",
		strings.NewReader(observeBody(t, 0)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad ts status = %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/observe", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status = %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/observe", "application/xml", strings.NewReader("<x/>"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("bad content type status = %d", resp.StatusCode)
	}
}

func TestIncidentsBeforeFirstObservation(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/v1/incidents")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var state map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	if state["ticks"].(float64) != 0 {
		t.Errorf("ticks = %v, want 0", state["ticks"])
	}
}
