package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestMain discards the request log stream: these tests drive hundreds of
// requests and the per-request lines drown real failures.
func TestMain(m *testing.M) {
	obs.SetLogger(nil)
	os.Exit(m.Run())
}

// newObsServer builds a server on a fresh registry so metric assertions
// are not polluted by other tests sharing the default registry.
func newObsServer(t *testing.T) (*httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	srv := httptest.NewServer(NewHandlerObs(reg, nil))
	t.Cleanup(srv.Close)
	return srv, reg
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsEndToEnd is the acceptance path: drive real traffic through
// the service, then scrape /metrics and verify the Prometheus exposition
// carries the miner, HTTP, and pipeline families.
func TestMetricsEndToEnd(t *testing.T) {
	srv, _ := newObsServer(t)

	// One successful localization (publishes rapminer diagnostics), one 4xx.
	resp, err := http.Post(srv.URL+"/v1/localize?k=2", "text/csv", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("localize status = %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/localize?method=bogus", "text/csv", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	status, body := get(t, srv.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status = %d", status)
	}

	// The acceptance criteria's three families.
	for _, want := range []string{
		"rapminer_cuboids_visited",
		`http_request_duration_seconds_bucket{route="POST /v1/localize",le="0.005"}`,
		"pipeline_incidents_opened_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
	// The sample snapshot has 2 attributes: the full lattice is 3 cuboids
	// and the run visits at least one.
	if !strings.Contains(body, "rapminer_cuboids_total 3") {
		t.Errorf("cuboids_total not exported from the run:\n%s", body)
	}
	if strings.Contains(body, "rapminer_cuboids_visited 0\n") {
		t.Error("cuboids_visited still zero after a localization run")
	}
	if !strings.Contains(body, "rapminer_runs_total 1") {
		t.Errorf("runs_total != 1:\n%s", body)
	}
	// Request counting by status class, with route labels from the mux
	// pattern, not the raw path.
	if !strings.Contains(body, `http_requests_total{class="2xx",method="POST",route="POST /v1/localize"} 1`) {
		t.Errorf("2xx request not counted:\n%s", body)
	}
	if !strings.Contains(body, `http_requests_total{class="4xx",method="POST",route="POST /v1/localize"} 1`) {
		t.Errorf("4xx request not counted:\n%s", body)
	}
	// TYPE lines make it valid exposition for a Prometheus scraper.
	for _, want := range []string{
		"# TYPE http_request_duration_seconds histogram",
		"# TYPE rapminer_cuboids_visited gauge",
		"# TYPE pipeline_incidents_opened_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsPipelineIncidentCounters drives the observe endpoint into an
// incident and verifies the pipeline counters move.
func TestMetricsPipelineIncidentCounters(t *testing.T) {
	srv, reg := newObsServer(t)

	quiet := `Location,actual,forecast
L1,100,0
L2,100,0
`
	anomalous := `Location,actual,forecast
L1,10,0
L2,100,0
`
	post := func(body string) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/observe", "text/csv", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			out, _ := io.ReadAll(resp.Body)
			t.Fatalf("observe status = %d: %s", resp.StatusCode, out)
		}
	}
	// Teach the tracker a baseline (MinHistory 5), then break it long
	// enough to pass the 2-tick debounce.
	for i := 0; i < 8; i++ {
		post(quiet)
	}
	for i := 0; i < 4; i++ {
		post(anomalous)
	}

	if got := reg.Counter("pipeline_incidents_opened_total", "").Value(); got != 1 {
		t.Errorf("pipeline_incidents_opened_total = %v, want 1", got)
	}
	_, body := get(t, srv.URL+"/metrics")
	if !strings.Contains(body, "pipeline_incidents_opened_total 1") {
		t.Errorf("/metrics does not report the opened incident:\n%s", body)
	}
	if !strings.Contains(body, `pipeline_events_total{kind="opened"} 1`) {
		t.Errorf("event-kind counter missing:\n%s", body)
	}
}

func TestDebugVarsEndpoint(t *testing.T) {
	srv, _ := newObsServer(t)
	status, body := get(t, srv.URL+"/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("vars not JSON: %v", err)
	}
	if _, ok := out["pipeline_incidents_opened_total"]; !ok {
		t.Errorf("vars missing pipeline metric: %v", out)
	}
}

func TestDebugSpansEndpoint(t *testing.T) {
	srv, _ := newObsServer(t)
	// Localization opens an httpapi.localize span on the default ring.
	resp, err := http.Post(srv.URL+"/v1/localize", "text/csv", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	status, body := get(t, srv.URL+"/debug/spans")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if !strings.Contains(body, "httpapi.localize") {
		t.Errorf("span ring missing localize span:\n%s", body)
	}
}

func TestInflightGaugeReturnsToZero(t *testing.T) {
	srv, reg := newObsServer(t)
	for i := 0; i < 3; i++ {
		status, _ := get(t, srv.URL+"/healthz")
		if status != http.StatusOK {
			t.Fatalf("healthz = %d", status)
		}
	}
	if got := reg.Gauge("http_inflight_requests", "").Value(); got != 0 {
		t.Errorf("inflight = %v after requests drained", got)
	}
}

func TestUnmatchedRouteCountsAsNone(t *testing.T) {
	srv, reg := newObsServer(t)
	status, _ := get(t, srv.URL+"/no/such/route")
	if status != http.StatusNotFound {
		t.Fatalf("status = %d", status)
	}
	if got := reg.Counter("http_requests_total", "",
		"method", "GET", "route", "none", "class", "4xx").Value(); got != 1 {
		t.Errorf("unmatched-route counter = %v, want 1", got)
	}
}
