// Package httpapi exposes anomaly localization as an HTTP service: clients
// POST a KPI snapshot (the Table III layout as JSON or CSV) and receive the
// ranked root anomaly patterns. The service is stateless — every request
// carries its snapshot — so it scales horizontally behind any load
// balancer.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/anomaly"
	"repro/internal/baseline/adtributor"
	"repro/internal/baseline/fpgrowth"
	"repro/internal/baseline/hotspot"
	"repro/internal/baseline/idice"
	"repro/internal/baseline/riskloc"
	"repro/internal/baseline/squeeze"
	"repro/internal/ensemble"
	"repro/internal/flight"
	"repro/internal/kpi"
	"repro/internal/localize"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/rapminer"
	"repro/internal/rapminer/explain"
)

// maxBodyBytes bounds request snapshots (a dense Table I CDN snapshot in
// JSON is ~2 MB).
const maxBodyBytes = 64 << 20

// methodBuilders constructs a fresh localizer per request; all methods are
// cheap to build and the resulting values are safe to discard.
var methodBuilders = map[string]func() (localize.Localizer, error){
	"rapminer": func() (localize.Localizer, error) { return rapminer.New(rapminer.DefaultConfig()) },
	"adtributor": func() (localize.Localizer, error) {
		return adtributor.New(adtributor.DefaultConfig())
	},
	"idice":    func() (localize.Localizer, error) { return idice.New(idice.DefaultConfig()) },
	"fpgrowth": func() (localize.Localizer, error) { return fpgrowth.New(fpgrowth.DefaultConfig()) },
	"squeeze":  func() (localize.Localizer, error) { return squeeze.New(squeeze.DefaultConfig()) },
	"hotspot":  func() (localize.Localizer, error) { return hotspot.New(hotspot.DefaultConfig()) },
	"riskloc":  func() (localize.Localizer, error) { return riskloc.New(riskloc.DefaultConfig()) },
	"ensemble": func() (localize.Localizer, error) {
		rm, err := rapminer.New(rapminer.DefaultConfig())
		if err != nil {
			return nil, err
		}
		fp, err := fpgrowth.New(fpgrowth.DefaultConfig())
		if err != nil {
			return nil, err
		}
		sq, err := squeeze.New(squeeze.DefaultConfig())
		if err != nil {
			return nil, err
		}
		rl, err := riskloc.New(riskloc.DefaultConfig())
		if err != nil {
			return nil, err
		}
		return ensemble.New(rm, fp, sq, rl)
	},
}

// MethodNames lists the accepted ?method= values in sorted order.
func MethodNames() []string {
	return []string{"adtributor", "ensemble", "fpgrowth", "hotspot", "idice", "rapminer", "riskloc", "squeeze"}
}

// api carries the service's observability plumbing into the handlers.
type api struct {
	reg     *obs.Registry
	log     *slog.Logger
	runs    *explain.Store
	batch   *pipeline.BatchExecutor
	slo     *sloState
	timeout time.Duration
	rollup  int
}

// applyRollup overrides the roll-up accumulator limit on RAPMiner-backed
// localizers when the server was configured with one; other methods pass
// through untouched.
func (a *api) applyRollup(m localize.Localizer) localize.Localizer {
	if a.rollup == 0 {
		return m
	}
	if rm, ok := m.(*rapminer.Miner); ok {
		return rm.WithRollupLimit(a.rollup)
	}
	return m
}

// Options configures NewHandlerOpts. The zero value is valid: default
// registry, shared component logger, GOMAXPROCS batch workers and a queue
// of four items per worker.
type Options struct {
	// Registry receives the service's metrics; nil means obs.Default().
	Registry *obs.Registry
	// Logger is the request logger; nil means the shared "httpapi"
	// component logger.
	Logger *slog.Logger
	// BatchWorkers bounds concurrent localizations across all
	// POST /v1/localize/batch requests; <= 0 means GOMAXPROCS.
	BatchWorkers int
	// BatchQueue is how many batch items may wait beyond the running
	// ones before requests are rejected with 503. 0 means the default
	// (4x workers, minimum 16); negative means no queue at all — items
	// beyond the running ones are rejected immediately.
	BatchQueue int
	// RollupLimit overrides rapminer.Config.RollupLimit for RAPMiner-backed
	// requests: the slot cap of the roll-up scan engine's base accumulator.
	// 0 keeps the miner's default (auto-sized from the leaf count);
	// negative disables roll-up, restoring per-layer fused scans.
	RollupLimit int
	// RequestTimeout bounds the localization work of one POST /v1/localize
	// or /v1/localize/batch request via context.WithTimeout. An expired
	// request answers 504 carrying the best-so-far partial result
	// (degraded=true) rather than an empty error — clients keep whatever
	// the deadline's worth of search bought. 0 means no per-request
	// deadline.
	RequestTimeout time.Duration
	// ExemplarThreshold is the request latency (seconds) below which the
	// latency histogram does not retain trace exemplars. 0 keeps an
	// exemplar for every bucket's most recent request.
	ExemplarThreshold float64
	// Continuous mounts the continuous-localization endpoints: POST
	// /v1/observe/snapshot (baseline install), POST /v1/observe/delta
	// (per-tick patches) and GET /v1/observe/continuous (window status).
	// The server then holds one long-lived snapshot that deltas mutate in
	// place; the stateless /v1/localize path is unaffected.
	Continuous bool
	// ContinuousWindow bounds the sliding tick-statistics window the
	// continuous status endpoint reports; <= 0 means 60 ticks.
	ContinuousWindow int
	// LogMaxPerSec caps per-request log lines emitted per second; excess
	// requests are served silently and counted in
	// rapminer_logs_suppressed_total, so a load test cannot drown the log
	// stream. <= 0 means unlimited.
	LogMaxPerSec float64

	// FlightRules are the flight recorder's automatic triggers (parse flag
	// strings with flight.ParseRules); empty leaves manual captures only.
	// The rules only fire while the recorder's trigger loop runs — start it
	// with `go srv.Flight().Run(ctx)`.
	FlightRules []flight.Rule
	// FlightCooldown, FlightCapacity, FlightSpillDir, FlightCPUProfile and
	// FlightInterval pass through to flight.Config; zero values take the
	// recorder's defaults.
	FlightCooldown   time.Duration
	FlightCapacity   int
	FlightSpillDir   string
	FlightCPUProfile time.Duration
	FlightInterval   time.Duration
}

// NewHandler builds the service's HTTP routes against the default metrics
// registry and the shared "httpapi" component logger. The localization
// endpoint is stateless; the observe/incidents pair shares one tracked
// monitor per handler instance (its schema is fixed by the first
// observation — stream the JSON snapshot document, whose attribute domains
// are explicit, so every tick declares the same schema).
func NewHandler() http.Handler {
	return NewHandlerOpts(Options{})
}

// NewHandlerObs is NewHandler with an explicit registry and logger, for
// embedders and tests that need isolation. A nil registry means
// obs.Default(); a nil logger means the shared component logger.
func NewHandlerObs(reg *obs.Registry, log *slog.Logger) http.Handler {
	return NewHandlerOpts(Options{Registry: reg, Logger: log})
}

// NewHandlerOpts is NewHandler with full configuration. The returned
// handler is a *Server; callers that need the flight recorder or the
// drain switch use New instead.
func NewHandlerOpts(o Options) http.Handler {
	return New(o)
}

// New builds the service as a *Server, exposing the flight recorder and
// the /readyz drain switch alongside the routes.
func New(o Options) *Server {
	reg, log := o.Registry, o.Logger
	if reg == nil {
		reg = obs.Default()
	}
	if log == nil {
		log = obs.Logger("httpapi")
	}
	workers := o.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := o.BatchQueue
	switch {
	case queue == 0:
		queue = -1 // executor default: 4x workers, minimum 16
	case queue < 0:
		queue = 0 // no waiting beyond the running items
	}
	a := &api{
		reg:     reg,
		log:     log,
		runs:    explain.Default(),
		batch:   pipeline.NewBatchExecutor(reg, workers, queue),
		timeout: o.RequestTimeout,
		rollup:  o.RollupLimit,
	}
	// Expose the full metric schema at zero from the first scrape, before
	// any localization or incident has happened, plus the process identity
	// block (rapminer_build_info, process_start_time_seconds).
	rapminer.RegisterMetrics(reg)
	pipeline.RegisterMetrics(reg)
	obs.RegisterBuildInfo(reg)
	slo := newSLOState(reg, a.batch)
	a.slo = slo
	srv := &Server{slo: slo, batch: a.batch}
	srv.flight = flight.New(flight.Config{
		Registry:   reg,
		Rules:      o.FlightRules,
		Cooldown:   o.FlightCooldown,
		Capacity:   o.FlightCapacity,
		SpillDir:   o.FlightSpillDir,
		CPUProfile: o.FlightCPUProfile,
		Interval:   o.FlightInterval,
		Status:     slo.flightStatus,
		Sources:    flightSources(reg, slo, a.runs),
	})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", handleHealthz)
	mux.HandleFunc("GET /readyz", srv.handleReadyz)
	mux.HandleFunc("GET /v1/methods", handleMethods)
	mux.HandleFunc("POST /v1/localize", a.handleLocalize)
	mux.HandleFunc("POST /v1/localize/batch", a.handleLocalizeBatch)
	monitor := newMonitorAPI(reg, a.runs)
	mux.HandleFunc("POST /v1/observe", monitor.handleObserve)
	mux.HandleFunc("GET /v1/incidents", monitor.handleIncidents)
	if o.Continuous {
		cont := newContinuousAPI(reg, a.runs, o.ContinuousWindow, o.RollupLimit)
		mux.HandleFunc("POST /v1/observe/snapshot", cont.handleSnapshot)
		mux.HandleFunc("POST /v1/observe/delta", cont.handleDelta)
		mux.HandleFunc("GET /v1/observe/continuous", cont.handleStatus)
	}
	mux.Handle("GET /metrics", obs.WithUptime(reg, reg.Handler()))
	mux.Handle("GET /debug/vars", obs.WithUptime(reg, reg.VarsHandler()))
	mux.Handle("GET /debug/spans", obs.SpansHandler())
	mux.Handle("GET /debug/runs", a.runs.RunsHandler())
	mux.Handle("GET /debug/runs/{id}", a.runs.RunHandler())
	mux.Handle("GET /debug/slo", slo.handler())
	mux.Handle("GET /debug/flight", srv.flight.IndexHandler())
	mux.Handle("GET /debug/flight/{id}", srv.flight.ArchiveHandler())
	mux.Handle("POST /debug/flight/capture", srv.flight.CaptureHandler())
	srv.handler = instrument(reg, log, slo, newLogSampler(reg, o.LogMaxPerSec), o.ExemplarThreshold, mux)
	return srv
}

func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func handleMethods(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"methods": MethodNames()})
}

// localizeResponse is the POST /v1/localize reply.
type localizeResponse struct {
	// TraceID keys the run's spans and explain report under /debug.
	TraceID   string            `json:"trace_id"`
	Method    string            `json:"method"`
	K         int               `json:"k"`
	Anomalous int               `json:"anomalous_leaves"`
	Leaves    int               `json:"leaves"`
	ElapsedMS float64           `json:"elapsed_ms"`
	Patterns  []patternResponse `json:"patterns"`
	// Degraded marks a run cut off by the request deadline or the miner's
	// budget: Patterns holds the best-so-far candidates only. A deadline
	// expiry additionally answers with status 504.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

type patternResponse struct {
	Combination []string `json:"combination"`
	Score       float64  `json:"score"`
}

func (a *api) handleLocalize(w http.ResponseWriter, r *http.Request) {
	methodName := strings.ToLower(r.URL.Query().Get("method"))
	if methodName == "" {
		methodName = "rapminer"
	}
	build, ok := methodBuilders[methodName]
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown method %q; see /v1/methods", methodName))
		return
	}
	k := 3
	if raw := r.URL.Query().Get("k"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid k %q", raw))
			return
		}
		k = parsed
	}

	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	defer body.Close()
	var (
		snap *kpi.Snapshot
		err  error
	)
	switch mediaType(r.Header.Get("Content-Type")) {
	case "text/csv":
		snap, err = kpi.ReadCSV(body, nil)
	case "", "application/json":
		snap, err = kpi.ReadJSON(body)
	default:
		writeError(w, http.StatusUnsupportedMediaType, "content type must be application/json or text/csv")
		return
	}
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("snapshot exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Label with the default detector unless the snapshot already
	// carries labels (or ?relabel=true forces it).
	if snap.NumAnomalous() == 0 || r.URL.Query().Get("relabel") == "true" {
		anomaly.Label(snap, anomaly.DefaultRelativeDeviation())
	}

	m, err := build()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	m = a.applyRollup(m)
	reqCtx := r.Context()
	if a.timeout > 0 {
		// The per-request deadline bounds the localization work itself;
		// decode is already bounded by MaxBytesReader and the server's
		// ReadTimeout. Context-aware localizers stop at the deadline and
		// return best-so-far candidates, answered below as 504 + partial
		// result.
		var cancel context.CancelFunc
		reqCtx, cancel = context.WithTimeout(reqCtx, a.timeout)
		defer cancel()
	}
	ctx, span := obs.StartSpan(reqCtx, "httpapi.localize")
	defer span.End()
	span.SetAttr("method", methodName)
	span.SetAttr("leaves", snap.Len())
	start := time.Now()
	var res localize.Result
	// Diagnostic-capable localizers additionally publish the run's search
	// statistics (the paper's pruning telemetry) to the registry, and
	// journal the run as an explain report keyed by the request's trace
	// ID (fetch it at /debug/runs/{trace-id} or with `rapmctl explain`).
	if dl, ok := m.(rapminer.TracedLocalizer); ok {
		var diag rapminer.Diagnostics
		res, diag, err = dl.LocalizeWithDiagnosticsContext(ctx, snap, k)
		if err == nil {
			rapminer.PublishDiagnostics(a.reg, diag)
			span.SetAttr("cuboids_visited", diag.CuboidsVisited)
			a.runs.Put(explain.New(span.TraceID(), "httpapi", m.Name(),
				snap, k, diag, time.Since(start)))
		}
	} else if dl, ok := m.(rapminer.DiagnosticLocalizer); ok {
		var diag rapminer.Diagnostics
		res, diag, err = dl.LocalizeWithDiagnostics(snap, k)
		if err == nil {
			rapminer.PublishDiagnostics(a.reg, diag)
			span.SetAttr("cuboids_visited", diag.CuboidsVisited)
		}
	} else {
		// SafeLocalize adds panic isolation and, for context-aware
		// methods, deadline enforcement to the plain path.
		res, err = localize.SafeLocalize(ctx, m, snap, k)
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	resp := localizeResponse{
		TraceID:        span.TraceID(),
		Method:         m.Name(),
		K:              k,
		Anomalous:      snap.NumAnomalous(),
		Leaves:         snap.Len(),
		ElapsedMS:      float64(time.Since(start).Microseconds()) / 1000,
		Patterns:       renderPatterns(snap, res.Patterns),
		Degraded:       res.Degraded,
		DegradedReason: res.DegradedReason,
	}
	// An expired request deadline is a gateway timeout, but the reply still
	// carries the partial result the deadline's worth of search produced.
	// (No Retry-After: unlike the batch queue's 503, retrying the same
	// request under the same deadline would degrade the same way.) The
	// miner's budget can observe the wall deadline slightly before the
	// context timer fires, so the degraded reason — not reqCtx.Err()
	// alone — decides the status.
	status := http.StatusOK
	if res.Degraded && (a.timeout > 0 && res.DegradedReason == rapminer.DegradedDeadline ||
		errors.Is(reqCtx.Err(), context.DeadlineExceeded)) {
		status = http.StatusGatewayTimeout
	}
	if res.Degraded {
		w.Header().Set(DegradedHeader, degradedHeaderValue(res.DegradedReason))
	}
	writeJSON(w, status, resp)
}

// degradedHeaderValue renders a degraded reason for the DegradedHeader;
// the header must be non-empty to signal, even without a reason.
func degradedHeaderValue(reason string) string {
	if reason == "" {
		return "degraded"
	}
	return strings.ReplaceAll(reason, "\n", " ")
}

// renderPatterns maps scored patterns back to the snapshot's attribute
// vocabulary for the wire format.
func renderPatterns(snap *kpi.Snapshot, patterns []localize.ScoredPattern) []patternResponse {
	out := make([]patternResponse, 0, len(patterns))
	for _, p := range patterns {
		combo := make([]string, len(p.Combo))
		for a, code := range p.Combo {
			if code == kpi.Wildcard {
				combo[a] = kpi.WildcardToken
			} else {
				combo[a] = snap.Schema.Value(a, code)
			}
		}
		out = append(out, patternResponse{Combination: combo, Score: p.Score})
	}
	return out
}

// mediaType strips parameters like "; charset=utf-8".
func mediaType(contentType string) string {
	if i := strings.IndexByte(contentType, ';'); i >= 0 {
		contentType = contentType[:i]
	}
	return strings.TrimSpace(strings.ToLower(contentType))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header cannot be reported to the client.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
