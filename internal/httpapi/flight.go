package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/rapminer/explain"
)

// Flight-recorder wiring: the recorder itself (internal/flight) knows
// nothing about HTTP, SLO windows or explain reports — this file is the
// adapter that feeds it the service's telemetry and artifacts.

// maxExemplarRuns bounds how many exemplar-referenced explain reports one
// bundle carries; exemplars mark the slowest/degraded requests, so the
// first few are the interesting ones.
const maxExemplarRuns = 16

// Server is the service handler plus its operational controls: the flight
// recorder (start its trigger loop with Flight().Run) and the drain switch
// that flips /readyz before shutdown. It is itself the http.Handler built
// by NewHandlerOpts.
type Server struct {
	handler  http.Handler
	flight   *flight.Recorder
	slo      *sloState
	batch    batchSaturation
	draining atomic.Bool
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Flight returns the service's flight recorder. The caller owns the
// trigger loop: `go srv.Flight().Run(ctx)`. Manual captures work without
// the loop.
func (s *Server) Flight() *flight.Recorder { return s.flight }

// SetDraining flips the /readyz verdict; commands call SetDraining(true)
// when shutdown begins so load balancers stop routing new work while
// in-flight requests finish.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// readyzResponse is the GET /readyz document.
type readyzResponse struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
	// Queue fill at answer time, so a not-ready probe is self-explaining.
	BatchQueueDepth int `json:"batch_queue_depth"`
	BatchCapacity   int `json:"batch_capacity"`
}

// handleReadyz serves the readiness probe. Where /healthz answers "is the
// process alive" (always yes once serving), /readyz answers "should a load
// balancer send this instance more work": 503 while draining for shutdown
// or while the batch queue is at capacity — the instance would only answer
// new batch work with backpressure anyway.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	resp := readyzResponse{Ready: true}
	if s.batch != nil {
		resp.BatchQueueDepth = s.batch.Depth()
		resp.BatchCapacity = s.batch.Capacity()
	}
	switch {
	case s.draining.Load():
		resp.Ready = false
		resp.Reason = "draining: shutdown in progress"
	case s.batch != nil && resp.BatchCapacity > 0 && resp.BatchQueueDepth >= resp.BatchCapacity:
		resp.Ready = false
		resp.Reason = "batch queue at capacity"
	}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// flightStatus adapts the 1-minute SLO windows and batch queue into the
// telemetry snapshot the trigger rules evaluate.
func (s *sloState) flightStatus() flight.Status {
	st := flight.Status{Endpoints: make(map[string]flight.EndpointStatus, len(s.trackers))}
	for route, t := range s.trackers {
		w := t.window(time.Minute)
		st.Endpoints[route] = flight.EndpointStatus{
			Requests:     w.Requests,
			P99MS:        w.P99MS,
			ErrorRate:    w.ErrorRate,
			DegradedRate: w.DegradedRate,
		}
	}
	if s.batch != nil {
		st.QueueDepth = s.batch.Depth()
		st.QueueCapacity = s.batch.Capacity()
	}
	return st
}

// flightSources builds the service-level bundle artifacts: the SLO report,
// a full metrics snapshot, recent spans grouped by trace, and the explain
// reports of the runs the latency histogram's exemplars point at — i.e.
// the slowest/degraded localizations still resolvable at capture time.
func flightSources(reg *obs.Registry, slo *sloState, runs *explain.Store) []flight.Source {
	marshal := func(name string, v any) ([]flight.Artifact, error) {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return nil, err
		}
		return []flight.Artifact{{Name: name, Data: data}}, nil
	}
	return []flight.Source{
		{Name: "slo.json", Fetch: func(context.Context) ([]flight.Artifact, error) {
			return marshal("slo.json", slo.report())
		}},
		{Name: "metrics.prom", Fetch: func(context.Context) ([]flight.Artifact, error) {
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				return nil, err
			}
			return []flight.Artifact{{Name: "metrics.prom", Data: buf.Bytes()}}, nil
		}},
		{Name: "spans.json", Fetch: func(context.Context) ([]flight.Artifact, error) {
			return marshal("spans.json", struct {
				Traces []obs.TraceSpans `json:"traces"`
			}{Traces: obs.GroupSpans(obs.RecentSpans())})
		}},
		{Name: "runs", Fetch: func(context.Context) ([]flight.Artifact, error) {
			var out []flight.Artifact
			seen := make(map[string]bool)
			exemplars := reg.FamilyExemplars("http_request_duration_seconds")
			// Slowest first: when the cap bites, keep the worst offenders.
			sort.Slice(exemplars, func(i, j int) bool {
				return exemplars[i].Value > exemplars[j].Value
			})
			for _, ex := range exemplars {
				if ex.TraceID == "" || seen[ex.TraceID] {
					continue
				}
				seen[ex.TraceID] = true
				rep, ok := runs.Get(ex.TraceID)
				if !ok {
					continue // exemplar outlived the bounded run store
				}
				files, err := marshal("runs/"+ex.TraceID+".json", rep)
				if err != nil {
					return nil, err
				}
				out = append(out, files...)
				if len(out) >= maxExemplarRuns {
					break
				}
			}
			return out, nil
		}},
	}
}

// NewSLOHandler serves a bare GET /debug/slo (uptime and empty endpoint
// windows) for processes that run the metrics listener without the API
// middleware — cmd/monitor mounts it for parity with serve. A nil
// registry means obs.Default().
func NewSLOHandler(reg *obs.Registry) http.Handler {
	if reg == nil {
		reg = obs.Default()
	}
	return newSLOState(reg, nil).handler()
}
