package httpapi

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/anomaly"
	"repro/internal/kpi"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/rapminer"
	"repro/internal/rapminer/explain"
)

// defaultContinuousWindow is the sliding tick-stats window when the server
// was started without an explicit -window.
const defaultContinuousWindow = 60

// continuousAPI holds the continuous-localization endpoints: clients POST
// one full snapshot to establish the baseline, then stream per-tick deltas
// to POST /v1/observe/delta. The runner patches its long-lived snapshot in
// place, relabels only the touched leaves, and the monitor's debounce
// machinery opens/updates incidents as usual. Unlike the /v1/observe
// tracked monitor, snapshots here carry their own forecasts.
type continuousAPI struct {
	reg    *obs.Registry
	runs   *explain.Store
	window int
	rollup int

	mu     sync.Mutex
	runner *pipeline.ContinuousRunner
	schema *kpi.Schema
}

func newContinuousAPI(reg *obs.Registry, runs *explain.Store, window, rollup int) *continuousAPI {
	if window < 1 {
		window = defaultContinuousWindow
	}
	return &continuousAPI{reg: reg, runs: runs, window: window, rollup: rollup}
}

// init assembles the runner on the first baseline snapshot.
func (c *continuousAPI) init(schema *kpi.Schema) error {
	miner, err := rapminer.New(rapminer.DefaultConfig())
	if err != nil {
		return err
	}
	if c.rollup != 0 {
		miner = miner.WithRollupLimit(c.rollup)
	}
	cfg := pipeline.DefaultConfig(anomaly.DefaultRelativeDeviation(), miner)
	cfg.AlarmThreshold = 0.01
	cfg.Registry = c.reg
	cfg.Runs = c.runs
	runner, err := pipeline.NewContinuous(cfg, c.window)
	if err != nil {
		return err
	}
	c.runner = runner
	c.schema = schema
	return nil
}

// deltaResponse is the POST /v1/observe/delta reply; snapshotResponse the
// POST /v1/observe/snapshot one (same shape, no delta counters).
type deltaResponse struct {
	Event     string            `json:"event"`
	Tick      int               `json:"tick"`
	Deviation float64           `json:"deviation"`
	Leaves    int               `json:"leaves"`
	Removed   int               `json:"removed,omitempty"`
	Updated   int               `json:"updated,omitempty"`
	Added     int               `json:"added,omitempty"`
	Flipped   int               `json:"flipped,omitempty"`
	Patched   bool              `json:"patched"`
	ApplyMS   float64           `json:"apply_ms"`
	Incident  *incidentResponse `json:"incident,omitempty"`
}

// handleSnapshot installs (or replaces) the baseline snapshot. A snapshot
// whose schema differs from the current one replaces the world outright —
// the FullRebuild fallback of the delta contract — rather than erroring.
func (c *continuousAPI) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	ts, ok := requestTime(w, r)
	if !ok {
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	defer body.Close()
	snap, err := kpi.ReadJSON(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("snapshot exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.runner == nil || !sameSchema(c.schema, snap.Schema) {
		// First baseline, or a schema change: (re)build the runner. Incident
		// state does not survive a schema change — the world it described is
		// gone.
		if err := c.init(snap.Schema); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
	} else {
		// Re-home onto the stored schema instance so cached indexers and
		// interned codes keep working across requests.
		snap = &kpi.Snapshot{Schema: c.schema, Leaves: snap.Leaves}
	}
	ev, err := c.runner.ObserveSnapshot(r.Context(), ts, snap)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, deltaResponse{
		Event:     ev.Kind.String(),
		Tick:      c.runner.Ticks(),
		Deviation: ev.Deviation,
		Leaves:    c.runner.Len(),
		Incident:  c.incidentJSON(ev.Incident),
	})
}

// handleDelta applies one delta tick against the baseline snapshot.
func (c *continuousAPI) handleDelta(w http.ResponseWriter, r *http.Request) {
	ts, ok := requestTime(w, r)
	if !ok {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.runner == nil {
		writeError(w, http.StatusConflict, "no baseline snapshot; POST /v1/observe/snapshot first")
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	defer body.Close()
	d, err := kpi.ReadDeltaJSON(body, c.schema)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("delta exceeds %d bytes", tooLarge.Limit))
			return
		}
		// Unknown element names are schema conflicts (a delta cannot grow
		// the schema); everything else is a malformed document.
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	start := time.Now()
	ev, res, err := c.runner.ObserveDelta(r.Context(), ts, d)
	if err != nil {
		// An invalid delta (unknown leaf, duplicate, add of a present leaf)
		// conflicts with the server's state, and left it untouched.
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, deltaResponse{
		Event:     ev.Kind.String(),
		Tick:      c.runner.Ticks(),
		Deviation: ev.Deviation,
		Leaves:    c.runner.Len(),
		Removed:   res.Removed,
		Updated:   res.Updated,
		Added:     res.Added,
		Flipped:   flippedOf(c.runner),
		Patched:   res.PatchedFrame,
		ApplyMS:   float64(time.Since(start).Microseconds()) / 1000,
		Incident:  c.incidentJSON(ev.Incident),
	})
}

// flippedOf reads the latest tick's flipped-label count from the window.
func flippedOf(r *pipeline.ContinuousRunner) int {
	win := r.Window()
	if len(win) == 0 {
		return 0
	}
	return win[len(win)-1].Flipped
}

// continuousStatusResponse is the GET /v1/observe/continuous reply.
type continuousStatusResponse struct {
	Ticks    int               `json:"ticks"`
	Leaves   int               `json:"leaves"`
	Window   []tickJSON        `json:"window"`
	Incident *incidentResponse `json:"incident,omitempty"`
}

type tickJSON struct {
	Time      time.Time `json:"time"`
	Event     string    `json:"event"`
	Deviation float64   `json:"deviation"`
	Delta     bool      `json:"delta"`
	Touched   int       `json:"touched"`
	Flipped   int       `json:"flipped"`
	Patched   bool      `json:"patched"`
	ApplyMS   float64   `json:"apply_ms"`
}

func (c *continuousAPI) handleStatus(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp := continuousStatusResponse{Window: []tickJSON{}}
	if c.runner != nil {
		resp.Ticks = c.runner.Ticks()
		resp.Leaves = c.runner.Len()
		for _, st := range c.runner.Window() {
			resp.Window = append(resp.Window, tickJSON{
				Time:      st.Time,
				Event:     st.Kind.String(),
				Deviation: st.Deviation,
				Delta:     st.Delta,
				Touched:   st.Touched,
				Flipped:   st.Flipped,
				Patched:   st.Patched,
				ApplyMS:   float64(st.Apply.Microseconds()) / 1000,
			})
		}
		resp.Incident = c.incidentJSON(c.runner.Monitor().Current())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *continuousAPI) incidentJSON(inc *pipeline.Incident) *incidentResponse {
	if inc == nil {
		return nil
	}
	out := &incidentResponse{
		ID:       inc.ID,
		OpenedAt: inc.OpenedAt,
		Updates:  inc.Updates,
		Scopes:   []patternResponse{},
	}
	if !inc.ResolvedAt.IsZero() {
		t := inc.ResolvedAt
		out.ResolvedAt = &t
	}
	for _, p := range inc.Scopes {
		combo := make([]string, len(p.Combo))
		for a, code := range p.Combo {
			if code == kpi.Wildcard {
				combo[a] = kpi.WildcardToken
			} else {
				combo[a] = c.schema.Value(a, code)
			}
		}
		out.Scopes = append(out.Scopes, patternResponse{Combination: combo, Score: p.Score})
	}
	return out
}

// requestTime parses the optional ?ts= query parameter (RFC 3339), answering
// 400 itself on a malformed value.
func requestTime(w http.ResponseWriter, r *http.Request) (time.Time, bool) {
	ts := time.Now().UTC()
	if raw := r.URL.Query().Get("ts"); raw != "" {
		parsed, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "ts must be RFC 3339")
			return time.Time{}, false
		}
		ts = parsed
	}
	return ts, true
}
