package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/anomaly"
	"repro/internal/kpi"
	"repro/internal/localize"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/rapminer"
)

// batchRequest is the POST /v1/localize/batch body: an array of the same
// JSON snapshot documents POST /v1/localize accepts, localized as one
// admission unit against the shared worker pool.
type batchRequest struct {
	Snapshots []json.RawMessage `json:"snapshots"`
}

// maxBatchItems bounds one request's fan-out so a single client cannot
// reserve the whole queue indefinitely.
const maxBatchItems = 256

// batchResponse is the POST /v1/localize/batch reply. Items are positional:
// item i answers snapshot i of the request.
type batchResponse struct {
	TraceID   string              `json:"trace_id"`
	Method    string              `json:"method"`
	K         int                 `json:"k"`
	ElapsedMS float64             `json:"elapsed_ms"`
	Items     []batchItemResponse `json:"items"`
}

type batchItemResponse struct {
	Anomalous int               `json:"anomalous_leaves"`
	Leaves    int               `json:"leaves"`
	Patterns  []patternResponse `json:"patterns,omitempty"`
	Error     string            `json:"error,omitempty"`
	// Degraded marks an item whose run was cut off by the request deadline
	// or budget; Patterns holds its best-so-far candidates.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// handleLocalizeBatch localizes many snapshots in one request. Items fan
// out across the handler's BatchExecutor, whose worker slots are shared by
// every in-flight batch; when the queue is full the whole request is
// rejected with 503 and a Retry-After header instead of being buffered.
func (a *api) handleLocalizeBatch(w http.ResponseWriter, r *http.Request) {
	methodName := strings.ToLower(r.URL.Query().Get("method"))
	if methodName == "" {
		methodName = "rapminer"
	}
	build, ok := methodBuilders[methodName]
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown method %q; see /v1/methods", methodName))
		return
	}
	k := 3
	if raw := r.URL.Query().Get("k"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid k %q", raw))
			return
		}
		k = parsed
	}

	decodeStart := time.Now()
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	defer body.Close()
	var req batchRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Snapshots) == 0 {
		writeError(w, http.StatusBadRequest, "snapshots must be a non-empty array")
		return
	}
	if len(req.Snapshots) > maxBatchItems {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("%d snapshots exceed the per-request limit of %d", len(req.Snapshots), maxBatchItems))
		return
	}
	relabel := r.URL.Query().Get("relabel") == "true"
	snaps := make([]*kpi.Snapshot, len(req.Snapshots))
	for i, raw := range req.Snapshots {
		snap, err := kpi.ReadJSON(bytes.NewReader(raw))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("snapshot %d: %v", i, err))
			return
		}
		if snap.NumAnomalous() == 0 || relabel {
			anomaly.Label(snap, anomaly.DefaultRelativeDeviation())
		}
		snaps[i] = snap
	}
	a.batch.ObserveDecode(time.Since(decodeStart))

	m, err := build()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// The executor already parallelizes across items; cap each item's own
	// fan-out at one worker so a batch does not oversubscribe the CPU with
	// nested parallelism.
	if rm, ok := m.(*rapminer.Miner); ok {
		m = rm.WithWorkers(1)
	}
	m = a.applyRollup(m)

	reqCtx := r.Context()
	if a.timeout > 0 {
		// One deadline bounds the whole batch: items already running stop
		// at their next cancellation point with best-so-far results,
		// unstarted items fail with the context error, and the reply is a
		// 504 carrying everything the deadline's worth of work produced.
		var cancel context.CancelFunc
		reqCtx, cancel = context.WithTimeout(reqCtx, a.timeout)
		defer cancel()
	}
	ctx, span := obs.StartSpan(reqCtx, "httpapi.localize_batch")
	defer span.End()
	span.SetAttr("method", methodName)
	span.SetAttr("items", len(snaps))
	start := time.Now()
	results, err := a.batch.Execute(ctx, m, snaps, k)
	if err != nil {
		if errors.Is(err, pipeline.ErrBatchBusy) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("batch queue full (capacity %d items); retry later", a.batch.Capacity()))
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	resp := batchResponse{
		TraceID:   span.TraceID(),
		Method:    m.Name(),
		K:         k,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		Items:     make([]batchItemResponse, len(results)),
	}
	var failed, degraded, deadlined int
	for i, br := range results {
		item := batchItemResponse{
			Anomalous: snaps[i].NumAnomalous(),
			Leaves:    snaps[i].Len(),
		}
		if br.Err != nil {
			item.Error = br.Err.Error()
			failed++
			if errors.Is(br.Err, context.DeadlineExceeded) {
				deadlined++
			}
		} else {
			item.Patterns = renderPatterns(snaps[i], br.Result.Patterns)
			item.Degraded = br.Result.Degraded
			item.DegradedReason = br.Result.DegradedReason
			if br.Result.Degraded {
				degraded++
				if a.timeout > 0 && br.Result.DegradedReason == rapminer.DegradedDeadline {
					deadlined++
				}
			}
		}
		resp.Items[i] = item
	}
	span.SetAttr("failed", failed)
	span.SetAttr("degraded", degraded)
	// Deadline expiry answers 504 with the partial per-item results; no
	// Retry-After, since a retry under the same deadline fares no better
	// (the 503 busy path above is the transient, retryable condition). Items
	// record the deadline themselves — the miner's budget can observe the
	// wall deadline before the context timer fires, so reqCtx.Err() alone
	// would race the timer.
	status := http.StatusOK
	if deadlined > 0 ||
		errors.Is(reqCtx.Err(), context.DeadlineExceeded) && (failed > 0 || degraded > 0) {
		status = http.StatusGatewayTimeout
	}
	if degraded > 0 {
		w.Header().Set(DegradedHeader, fmt.Sprintf("%d/%d items degraded", degraded, len(results)))
	}
	writeJSON(w, status, resp)
}

// ensure the interface stays satisfied as the miner evolves.
var _ localize.BatchLocalizer = (*rapminer.Miner)(nil)
