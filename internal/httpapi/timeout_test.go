package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/kpi"
	"repro/internal/localize"
	"repro/internal/rapminer"
)

// stallLocalizer is a context-aware localizer that parks until the request
// deadline expires, then returns a degraded best-so-far result — the
// behavior the miner exhibits on a too-tight deadline, without depending on
// machine speed.
type stallLocalizer struct{}

func (stallLocalizer) Name() string { return "stall" }

func (stallLocalizer) Localize(s *kpi.Snapshot, k int) (localize.Result, error) {
	return stallLocalizer{}.LocalizeContext(context.Background(), s, k)
}

func (stallLocalizer) LocalizeContext(ctx context.Context, s *kpi.Snapshot, k int) (localize.Result, error) {
	select {
	case <-ctx.Done():
	case <-time.After(10 * time.Second):
		return localize.Result{}, nil
	}
	return localize.Result{
		Patterns:       []localize.ScoredPattern{{Combo: kpi.NewRoot(s.Schema.NumAttributes()), Score: 1}},
		Degraded:       true,
		DegradedReason: rapminer.DegradedDeadline,
	}, nil
}

var _ localize.ContextLocalizer = stallLocalizer{}

// panickyLocalizer panics unconditionally.
type panickyLocalizer struct{}

func (panickyLocalizer) Name() string { return "panicky" }

func (panickyLocalizer) Localize(s *kpi.Snapshot, k int) (localize.Result, error) {
	panic("poisoned method")
}

// withTestMethod registers a temporary localization method for the duration
// of the test.
func withTestMethod(t *testing.T, name string, l localize.Localizer) {
	t.Helper()
	if _, exists := methodBuilders[name]; exists {
		t.Fatalf("method %q already registered", name)
	}
	methodBuilders[name] = func() (localize.Localizer, error) { return l, nil }
	t.Cleanup(func() { delete(methodBuilders, name) })
}

// TestRequestTimeoutAnswers504WithPartialResult pins the deadline contract
// of POST /v1/localize: an expired RequestTimeout answers 504 whose body
// still carries the degraded best-so-far result, and — unlike the batch
// queue's retryable 503 — no Retry-After header, because retrying under the
// same deadline would degrade the same way.
func TestRequestTimeoutAnswers504WithPartialResult(t *testing.T) {
	withTestMethod(t, "stall", stallLocalizer{})
	srv := httptest.NewServer(NewHandlerOpts(Options{RequestTimeout: 30 * time.Millisecond}))
	t.Cleanup(srv.Close)

	resp, err := http.Post(srv.URL+"/v1/localize?method=stall", "text/csv", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want %d", resp.StatusCode, http.StatusGatewayTimeout)
	}
	if got := resp.Header.Get("Retry-After"); got != "" {
		t.Fatalf("Retry-After = %q on a deadline 504, want absent", got)
	}
	var out localizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || out.DegradedReason != rapminer.DegradedDeadline {
		t.Fatalf("degraded=%v reason=%q, want true/%q", out.Degraded, out.DegradedReason, rapminer.DegradedDeadline)
	}
	if len(out.Patterns) == 0 {
		t.Fatal("504 body carries no best-so-far patterns")
	}
}

// TestRequestTimeoutLeavesFastRunsAlone checks a run finishing inside the
// deadline still answers 200 with no degraded marker.
func TestRequestTimeoutLeavesFastRunsAlone(t *testing.T) {
	srv := httptest.NewServer(NewHandlerOpts(Options{RequestTimeout: 10 * time.Second}))
	t.Cleanup(srv.Close)
	resp, out := postLocalize(t, srv, "/v1/localize?k=2", "text/csv", sampleCSV)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Degraded || out.DegradedReason != "" {
		t.Fatalf("fast run reported degraded: %+v", out)
	}
	if len(out.Patterns) == 0 {
		t.Fatal("no patterns")
	}
}

// TestPanickingMethodAnswers500 checks a panicking localizer is converted
// into the request's 500 — and the server keeps serving afterwards.
func TestPanickingMethodAnswers500(t *testing.T) {
	withTestMethod(t, "panicky", panickyLocalizer{})
	srv := newServer(t)

	resp, err := http.Post(srv.URL+"/v1/localize?method=panicky", "text/csv", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want %d", resp.StatusCode, http.StatusInternalServerError)
	}

	// The process survived; a healthy request still works.
	resp2, out := postLocalize(t, srv, "/v1/localize?k=2", "text/csv", sampleCSV)
	if resp2.StatusCode != http.StatusOK || len(out.Patterns) == 0 {
		t.Fatalf("healthy request after panic: status %d, %+v", resp2.StatusCode, out)
	}
}

// TestBatchRequestTimeoutAnswers504 pins the batch variant: one stalled item
// under an expired deadline turns the whole reply into a 504 (no
// Retry-After) whose items carry their degraded partial results.
func TestBatchRequestTimeoutAnswers504(t *testing.T) {
	withTestMethod(t, "stall", stallLocalizer{})
	srv := httptest.NewServer(NewHandlerOpts(Options{RequestTimeout: 30 * time.Millisecond}))
	t.Cleanup(srv.Close)

	snap, err := kpi.ReadCSV(strings.NewReader(sampleCSV), nil)
	if err != nil {
		t.Fatal(err)
	}
	var doc strings.Builder
	if err := kpi.WriteJSON(&doc, snap); err != nil {
		t.Fatal(err)
	}
	body := `{"snapshots":[` + doc.String() + `]}`

	resp, err := http.Post(srv.URL+"/v1/localize/batch?method=stall", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want %d", resp.StatusCode, http.StatusGatewayTimeout)
	}
	if got := resp.Header.Get("Retry-After"); got != "" {
		t.Fatalf("Retry-After = %q on a deadline 504, want absent", got)
	}
	var out batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 1 {
		t.Fatalf("%d items, want 1", len(out.Items))
	}
	item := out.Items[0]
	if item.Error != "" {
		t.Fatalf("item errored instead of degrading: %q", item.Error)
	}
	if !item.Degraded || len(item.Patterns) == 0 {
		t.Fatalf("item = %+v, want degraded with best-so-far patterns", item)
	}
}
