package httpapi

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Saturation observability: sloTracker keeps per-endpoint rolling windows
// of latency, traffic and failure classes, served at GET /debug/slo. Where
// /metrics answers "what has this process ever done" (cumulative counters
// a scraper turns into rates), /debug/slo answers the operator's live
// question — "what are p50/p99, the degraded rate and the backpressure
// rate right now" — with no scraper in the loop, over 1m and 5m windows.

// sloWindows are the rolling windows /debug/slo reports.
var sloWindows = []time.Duration{time.Minute, 5 * time.Minute}

// sloSlotDur is the ring resolution: fine enough that a 1m window is off by
// at most one filling slot.
const sloSlotDur = 5 * time.Second

// sloLatencyBuckets resolve client-visible latency from 0.5ms to ~2min on
// a log scale.
var sloLatencyBuckets = obs.ExpBuckets(0.0005, 2, 18)

// sloTracker accumulates one endpoint's rolling telemetry.
type sloTracker struct {
	route    string
	latency  *obs.RollingHistogram
	requests *obs.RollingCounter
	errors   *obs.RollingCounter // 5xx answers other than 503
	degraded *obs.RollingCounter // responses carrying a degraded result
	rejected *obs.RollingCounter // 503 backpressure rejections
	timeouts *obs.RollingCounter // 504 deadline expiries
}

func newSLOTracker(route string) *sloTracker {
	span := sloWindows[len(sloWindows)-1]
	return &sloTracker{
		route:    route,
		latency:  obs.NewRollingHistogram(sloLatencyBuckets, sloSlotDur, span),
		requests: obs.NewRollingCounter(sloSlotDur, span),
		errors:   obs.NewRollingCounter(sloSlotDur, span),
		degraded: obs.NewRollingCounter(sloSlotDur, span),
		rejected: obs.NewRollingCounter(sloSlotDur, span),
		timeouts: obs.NewRollingCounter(sloSlotDur, span),
	}
}

// record folds one finished request into the windows.
func (t *sloTracker) record(elapsed time.Duration, status int, degraded bool) {
	t.latency.Observe(elapsed.Seconds())
	t.requests.Inc()
	switch {
	case status == http.StatusServiceUnavailable:
		t.rejected.Inc()
	case status == http.StatusGatewayTimeout:
		t.timeouts.Inc()
	case status >= 500:
		t.errors.Inc()
	}
	if degraded {
		t.degraded.Inc()
	}
}

// SLOEndpointWindow is one endpoint's view over one rolling window, as
// served inside SLOReport and rendered by `rapmctl slo`.
type SLOEndpointWindow struct {
	Requests         float64 `json:"requests"`
	RatePerSec       float64 `json:"rate_per_sec"`
	P50MS            float64 `json:"p50_ms"`
	P90MS            float64 `json:"p90_ms"`
	P99MS            float64 `json:"p99_ms"`
	MeanMS           float64 `json:"mean_ms"`
	DegradedRate     float64 `json:"degraded_rate"`
	BackpressureRate float64 `json:"backpressure_rate"`
	TimeoutRate      float64 `json:"timeout_rate"`
	ErrorRate        float64 `json:"error_rate"`
}

// window summarizes the tracker over one window. Rates are fractions of
// the window's requests (0 when idle).
func (t *sloTracker) window(w time.Duration) SLOEndpointWindow {
	snap := t.latency.Window(w)
	out := SLOEndpointWindow{
		Requests:   t.requests.Sum(w),
		RatePerSec: t.requests.Rate(w),
		P50MS:      snap.Quantile(0.50) * 1000,
		P90MS:      snap.Quantile(0.90) * 1000,
		P99MS:      snap.Quantile(0.99) * 1000,
	}
	if n := snap.Count(); n > 0 {
		out.MeanMS = snap.Sum() / float64(n) * 1000
	}
	if out.Requests > 0 {
		out.DegradedRate = t.degraded.Sum(w) / out.Requests
		out.BackpressureRate = t.rejected.Sum(w) / out.Requests
		out.TimeoutRate = t.timeouts.Sum(w) / out.Requests
		out.ErrorRate = t.errors.Sum(w) / out.Requests
	}
	return out
}

// sloState is the handler-wide SLO page state: one tracker per route of
// interest plus the saturation gauges worth showing next to them.
type sloState struct {
	start    time.Time
	trackers map[string]*sloTracker
	inflight *obs.Gauge
	batch    batchSaturation
}

// batchSaturation is the slice of BatchExecutor the SLO page reads: the
// queue's instantaneous fill and its ceiling.
type batchSaturation interface {
	Capacity() int
	Depth() int
}

// sloRoutes are the endpoints the SLO page windows; everything else still
// lands in the cumulative /metrics histograms.
var sloRoutes = []string{
	"POST /v1/localize",
	"POST /v1/localize/batch",
	"POST /v1/observe",
}

func newSLOState(reg *obs.Registry, batch batchSaturation) *sloState {
	s := &sloState{
		start:    time.Now(),
		trackers: make(map[string]*sloTracker, len(sloRoutes)),
		inflight: reg.Gauge("http_inflight_requests", "Requests currently being served."),
		batch:    batch,
	}
	for _, r := range sloRoutes {
		s.trackers[r] = newSLOTracker(r)
	}
	return s
}

// record folds one finished request into its route's tracker, if tracked.
func (s *sloState) record(route string, elapsed time.Duration, status int, degraded bool) {
	if t, ok := s.trackers[route]; ok {
		t.record(elapsed, status, degraded)
	}
}

// SLOReport is the GET /debug/slo document.
type SLOReport struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// InflightRequests and the batch queue fields are instantaneous
	// saturation readings, not windowed.
	InflightRequests int `json:"inflight_requests"`
	BatchQueueDepth  int `json:"batch_queue_depth"`
	BatchCapacity    int `json:"batch_capacity"`
	// Windows maps "1m"/"5m" to per-endpoint rolling views.
	Windows map[string]map[string]SLOEndpointWindow `json:"windows"`
}

// report assembles the current SLO view.
func (s *sloState) report() SLOReport {
	rep := SLOReport{
		UptimeSeconds:    obs.Uptime().Seconds(),
		InflightRequests: int(s.inflight.Value()),
		Windows:          make(map[string]map[string]SLOEndpointWindow, len(sloWindows)),
	}
	if s.batch != nil {
		rep.BatchCapacity = s.batch.Capacity()
		rep.BatchQueueDepth = s.batch.Depth()
	}
	for _, w := range sloWindows {
		name := w.String() // "1m0s" -> trim below
		if w == time.Minute {
			name = "1m"
		} else if w == 5*time.Minute {
			name = "5m"
		}
		per := make(map[string]SLOEndpointWindow, len(s.trackers))
		for route, t := range s.trackers {
			per[route] = t.window(w)
		}
		rep.Windows[name] = per
	}
	return rep
}

// handler serves GET /debug/slo.
func (s *sloState) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.report())
	})
}
