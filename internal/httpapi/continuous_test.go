package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/kpi"
)

func newContinuousServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandlerOpts(Options{Continuous: true, ContinuousWindow: 4}))
	t.Cleanup(srv.Close)
	return srv
}

// continuousSnapshotJSON renders a dense 3x2 snapshot where the leaves under
// (r2, *) lose frac of their forecast.
func continuousSnapshotJSON(t *testing.T, frac float64) string {
	t.Helper()
	schema := kpi.MustSchema(
		kpi.Attribute{Name: "region", Values: []string{"r1", "r2", "r3"}},
		kpi.Attribute{Name: "isp", Values: []string{"i1", "i2"}},
	)
	var leaves []kpi.Leaf
	for a := int32(0); a < 3; a++ {
		for b := int32(0); b < 2; b++ {
			leaf := kpi.Leaf{Combo: kpi.Combination{a, b}, Actual: 100, Forecast: 100}
			if a == 1 {
				leaf.Actual = 100 * (1 - frac)
			}
			leaves = append(leaves, leaf)
		}
	}
	snap, err := kpi.NewSnapshot(schema, leaves)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := kpi.WriteJSON(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// failDelta re-observes the (r2, *) leaves at frac below forecast.
func failDelta(frac float64) string {
	var sb strings.Builder
	sb.WriteString(`{"updates":[`)
	for i, isp := range []string{"i1", "i2"} {
		if i > 0 {
			sb.WriteString(",")
		}
		enc, _ := json.Marshal(map[string]any{
			"combination": []string{"r2", isp},
			"actual":      100 * (1 - frac),
			"forecast":    100,
		})
		sb.Write(enc)
	}
	sb.WriteString("]}")
	return sb.String()
}

func postContinuous(t *testing.T, srv *httptest.Server, path, body string) (*http.Response, deltaResponse) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out deltaResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
	}
	return resp, out
}

func TestContinuousDeltaFlow(t *testing.T) {
	srv := newContinuousServer(t)

	// Baseline install.
	resp, out := postContinuous(t, srv, "/v1/observe/snapshot", continuousSnapshotJSON(t, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	if out.Tick != 1 || out.Leaves != 6 || out.Event != "tick" {
		t.Fatalf("baseline response %+v", out)
	}

	// First failing delta: debounced (arming), patched in place.
	resp, out = postContinuous(t, srv, "/v1/observe/delta", failDelta(0.5))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta status %d", resp.StatusCode)
	}
	if out.Tick != 2 || out.Updated != 2 || !out.Patched || out.Flipped != 2 {
		t.Fatalf("first failing tick %+v", out)
	}
	if out.Event != "arming" {
		t.Fatalf("first failing tick event %q, want arming", out.Event)
	}

	// Second failing delta: incident opens, localized to (r2, *).
	_, out = postContinuous(t, srv, "/v1/observe/delta", failDelta(0.5))
	if out.Event != "opened" || out.Incident == nil {
		t.Fatalf("second failing tick %+v", out)
	}
	if len(out.Incident.Scopes) == 0 {
		t.Fatal("opened incident carries no scopes")
	}
	got := out.Incident.Scopes[0].Combination
	if len(got) != 2 || got[0] != "r2" || got[1] != "*" {
		t.Fatalf("localized scope %v, want [r2 *]", got)
	}

	// Status endpoint reflects the window (bounded at 4) and the incident.
	stResp, err := http.Get(srv.URL + "/v1/observe/continuous")
	if err != nil {
		t.Fatal(err)
	}
	defer stResp.Body.Close()
	var st continuousStatusResponse
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Ticks != 3 || st.Leaves != 6 || len(st.Window) != 3 {
		t.Fatalf("status %+v", st)
	}
	if st.Incident == nil || st.Incident.ResolvedAt != nil {
		t.Fatalf("status incident %+v, want open", st.Incident)
	}
	if !st.Window[1].Delta || !st.Window[1].Patched || st.Window[0].Delta {
		t.Fatalf("window stats %+v", st.Window)
	}
}

func TestContinuousDeltaErrors(t *testing.T) {
	srv := newContinuousServer(t)

	// No baseline yet: state conflict.
	resp, _ := postContinuous(t, srv, "/v1/observe/delta", failDelta(0.5))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("delta before baseline: status %d, want 409", resp.StatusCode)
	}

	if resp, _ := postContinuous(t, srv, "/v1/observe/snapshot", continuousSnapshotJSON(t, 0)); resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline status %d", resp.StatusCode)
	}

	// Malformed document and unknown element name: both the client's fault.
	for _, body := range []string{
		`{"updates":[`,
		`{"updates":[{"combination":["r9","i1"],"actual":1,"forecast":1}]}`,
		`{"updates":[{"combination":["r1"],"actual":1,"forecast":1}]}`,
	} {
		resp, _ := postContinuous(t, srv, "/v1/observe/delta", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	// Structurally valid but conflicting with server state: add of a leaf
	// that is already present, remove of one that is not.
	for _, body := range []string{
		`{"adds":[{"combination":["r1","i1"],"actual":1,"forecast":1}]}`,
		`{"removes":[["r1","i1"]],"updates":[{"combination":["r1","i1"],"actual":1,"forecast":1}]}`,
	} {
		resp, _ := postContinuous(t, srv, "/v1/observe/delta", body)
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("body %q: status %d, want 409", body, resp.StatusCode)
		}
	}

	// Rejected deltas record no ticks.
	stResp, err := http.Get(srv.URL + "/v1/observe/continuous")
	if err != nil {
		t.Fatal(err)
	}
	defer stResp.Body.Close()
	var st continuousStatusResponse
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Ticks != 1 {
		t.Fatalf("ticks %d after rejected deltas, want 1", st.Ticks)
	}

	// Malformed ?ts= answers 400 before touching state.
	resp, err = http.Post(srv.URL+"/v1/observe/delta?ts=yesterday", "application/json",
		strings.NewReader(failDelta(0)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ts: status %d, want 400", resp.StatusCode)
	}
}

// TestContinuousSchemaChange: a baseline with a different schema replaces the
// world — the FullRebuild fallback — resetting ticks and incident state.
func TestContinuousSchemaChange(t *testing.T) {
	srv := newContinuousServer(t)

	if resp, _ := postContinuous(t, srv, "/v1/observe/snapshot", continuousSnapshotJSON(t, 0)); resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline status %d", resp.StatusCode)
	}
	postContinuous(t, srv, "/v1/observe/delta", failDelta(0.5))
	postContinuous(t, srv, "/v1/observe/delta", failDelta(0.5)) // incident opens

	// New world, one attribute, different cardinality.
	other := `{"attributes":[{"name":"pop","values":["p1","p2"]}],` +
		`"leaves":[{"combination":["p1"],"actual":10,"forecast":10},` +
		`{"combination":["p2"],"actual":10,"forecast":10}]}`
	resp, out := postContinuous(t, srv, "/v1/observe/snapshot", other)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schema-change snapshot status %d", resp.StatusCode)
	}
	if out.Tick != 1 || out.Leaves != 2 || out.Incident != nil {
		t.Fatalf("schema-change response %+v, want fresh world", out)
	}

	// Deltas now resolve against the new schema; the old names are gone.
	resp, _ = postContinuous(t, srv, "/v1/observe/delta", failDelta(0.5))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("old-schema delta status %d, want 400", resp.StatusCode)
	}
	resp, out = postContinuous(t, srv, "/v1/observe/delta",
		`{"updates":[{"combination":["p1"],"actual":9,"forecast":10}]}`)
	if resp.StatusCode != http.StatusOK || out.Updated != 1 {
		t.Fatalf("new-schema delta: status %d %+v", resp.StatusCode, out)
	}
}

// TestContinuousDisabled: without -continuous the endpoints are not mounted.
func TestContinuousDisabledNotMounted(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Post(srv.URL+"/v1/observe/delta", "application/json",
		strings.NewReader(failDelta(0.5)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}
