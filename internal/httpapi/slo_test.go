package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// localizeN drives n successful CSV localizations through the server.
func localizeN(t *testing.T, url string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		resp, err := http.Post(url+"/v1/localize?k=2", "text/csv", strings.NewReader(sampleCSV))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("localize status = %d", resp.StatusCode)
		}
	}
}

// TestDebugSLOReflectsTraffic is the acceptance path: drive traffic, then
// check the rolling windows report it with plausible latency quantiles.
func TestDebugSLOReflectsTraffic(t *testing.T) {
	srv, _ := newObsServer(t)
	localizeN(t, srv.URL, 5)

	status, body := get(t, srv.URL+"/debug/slo")
	if status != http.StatusOK {
		t.Fatalf("/debug/slo status = %d", status)
	}
	var rep SLOReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/debug/slo not JSON: %v\n%s", err, body)
	}
	if rep.UptimeSeconds <= 0 {
		t.Fatalf("uptime %v", rep.UptimeSeconds)
	}
	if rep.BatchCapacity <= 0 {
		t.Fatalf("batch capacity %d", rep.BatchCapacity)
	}
	for _, window := range []string{"1m", "5m"} {
		per, ok := rep.Windows[window]
		if !ok {
			t.Fatalf("window %q missing (have %v)", window, rep.Windows)
		}
		v, ok := per["POST /v1/localize"]
		if !ok {
			t.Fatalf("window %q lacks the localize endpoint", window)
		}
		if v.Requests != 5 {
			t.Fatalf("window %q requests = %v, want 5", window, v.Requests)
		}
		if v.P50MS <= 0 || v.P99MS < v.P50MS {
			t.Fatalf("window %q implausible latency %+v", window, v)
		}
		if v.DegradedRate != 0 || v.ErrorRate != 0 {
			t.Fatalf("window %q unexpected failure rates %+v", window, v)
		}
	}
	// Untracked endpoints must not grow the map.
	if _, ok := rep.Windows["1m"]["GET /healthz"]; ok {
		t.Fatal("healthz leaked into the SLO windows")
	}
}

// getOpenMetrics scrapes url negotiating the OpenMetrics exposition — the
// only text format that may legally carry exemplars.
func getOpenMetrics(t *testing.T, url string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsExemplarResolvesToRun checks the cross-linking contract: a
// trace exemplar scraped from /metrics (OpenMetrics negotiation) names a
// run whose explain report is fetchable at /debug/runs/{trace-id}. The
// classic 0.0.4 exposition must stay exemplar-free, since its grammar has
// no exemplar syntax and real Prometheus parsers would fail the scrape.
func TestMetricsExemplarResolvesToRun(t *testing.T) {
	srv, _ := newObsServer(t)
	localizeN(t, srv.URL, 1)

	_, plain := get(t, srv.URL+"/metrics")
	if strings.Contains(plain, "trace_id=") {
		t.Fatalf("exemplar leaked into the plain 0.0.4 exposition:\n%s", plain)
	}

	_, metrics := getOpenMetrics(t, srv.URL+"/metrics")
	if !strings.HasSuffix(metrics, "# EOF\n") {
		t.Fatalf("OpenMetrics exposition lacks # EOF:\n%s", metrics)
	}
	// Pin the localize route: other instrumented requests (like the plain
	// /metrics scrape above) carry exemplar traces that never started a run.
	re := regexp.MustCompile(`http_request_duration_seconds_bucket\{[^}]*route="POST /v1/localize"[^}]*\} \d+ # \{trace_id="([0-9a-f]{32})"\}`)
	m := re.FindStringSubmatch(metrics)
	if m == nil {
		t.Fatalf("no trace exemplar in the latency exposition:\n%s", metrics)
	}
	status, body := get(t, srv.URL+"/debug/runs/"+m[1])
	if status != http.StatusOK {
		t.Fatalf("/debug/runs/%s status = %d: %s", m[1], status, body)
	}
	if !strings.Contains(body, m[1]) {
		t.Fatalf("run report does not echo trace id %s", m[1])
	}
}

// TestExemplarThresholdSuppressesFastRequests: with a threshold far above
// any realistic request, no exemplar may appear.
func TestExemplarThresholdSuppressesFastRequests(t *testing.T) {
	reg := obs.NewRegistry()
	srv := newOptServer(t, Options{Registry: reg, ExemplarThreshold: 3600})
	localizeN(t, srv.URL, 1)
	_, metrics := getOpenMetrics(t, srv.URL+"/metrics")
	if strings.Contains(metrics, "trace_id=") {
		t.Fatalf("exemplar recorded below threshold:\n%s", metrics)
	}
}

func TestLogSamplerWindow(t *testing.T) {
	reg := obs.NewRegistry()
	s := newLogSampler(reg, 2)
	now := time.Unix(100, 0)
	allowed := 0
	for i := 0; i < 5; i++ {
		if s.allow(now) {
			allowed++
		}
	}
	if allowed != 2 {
		t.Fatalf("allowed %d lines at 2/s, want 2", allowed)
	}
	if got := reg.Counter("rapminer_logs_suppressed_total", "").Value(); got != 3 {
		t.Fatalf("suppressed counter = %v, want 3", got)
	}
	// A new second refills the window.
	if !s.allow(now.Add(time.Second)) {
		t.Fatal("new second did not refill the sampler")
	}
	// Unlimited sampler never suppresses.
	u := newLogSampler(obs.NewRegistry(), 0)
	for i := 0; i < 100; i++ {
		if !u.allow(now) {
			t.Fatal("unlimited sampler suppressed a line")
		}
	}
}

// TestUptimeAndBuildInfoExposed: /debug/vars carries the process identity
// block registered by the handler.
func TestUptimeAndBuildInfoExposed(t *testing.T) {
	srv, _ := newObsServer(t)
	_, body := get(t, srv.URL+"/debug/vars")
	for _, want := range []string{"rapminer_build_info", "process_start_time_seconds", "process_uptime_seconds"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/debug/vars lacks %s:\n%s", want, body)
		}
	}
	_, metrics := get(t, srv.URL+"/metrics")
	if !strings.Contains(metrics, `rapminer_build_info{`) {
		t.Fatalf("/metrics lacks rapminer_build_info:\n%s", metrics)
	}
}

// newOptServer builds a server with explicit options.
func newOptServer(t *testing.T, o Options) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandlerOpts(o))
	t.Cleanup(srv.Close)
	return srv
}

// TestObservabilityUnderConcurrentLoad hammers every observability surface
// while localizations run, so the race detector can certify the whole
// telemetry path (histograms, exemplars, rolling windows, span ring,
// sampler) under contention.
func TestObservabilityUnderConcurrentLoad(t *testing.T) {
	reg := obs.NewRegistry()
	srv := newOptServer(t, Options{Registry: reg, LogMaxPerSec: 5, ExemplarThreshold: 0})

	const (
		loaders  = 4
		scrapers = 4
		rounds   = 8
	)
	var wg sync.WaitGroup
	errCh := make(chan error, loaders+scrapers)
	for i := 0; i < loaders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				resp, err := http.Post(srv.URL+"/v1/localize?k=2", "text/csv", strings.NewReader(sampleCSV))
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("localize status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	pages := []string{"/metrics", "/debug/vars", "/debug/spans", "/debug/slo", "/debug/runs"}
	for i := 0; i < scrapers; i++ {
		page := pages[i%len(pages)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				resp, err := http.Get(srv.URL + page)
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("%s status %d", page, resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// The run must have left a coherent SLO view behind.
	_, body := get(t, srv.URL+"/debug/slo")
	var rep SLOReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if got := rep.Windows["1m"]["POST /v1/localize"].Requests; got != loaders*rounds {
		t.Fatalf("SLO window saw %v localizations, want %d", got, loaders*rounds)
	}
}
