package httpapi

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/flight"
	"repro/internal/kpi"
	"repro/internal/obs"
	"repro/internal/rapminer/explain"
)

// extractBundle pulls a tar.gz archive apart into name -> contents.
func extractBundle(t *testing.T, archive []byte) map[string][]byte {
	t.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(archive))
	if err != nil {
		t.Fatalf("bundle is not gzip: %v", err)
	}
	files := make(map[string][]byte)
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("tar: %v", err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			t.Fatalf("tar %s: %v", hdr.Name, err)
		}
		files[hdr.Name] = data
	}
	return files
}

// TestFlightBreachCapturesBundle is the end-to-end incident story: traffic
// drives the rolling SLO windows past a trigger rule, one poll captures a
// diagnostic bundle, and the bundle ties the whole serving stack together
// — a parseable CPU profile, the SLO report showing the traffic, recent
// spans, and an explain report reachable from a latency-histogram exemplar
// that also resolves live at /debug/runs/{id}.
func TestFlightBreachCapturesBundle(t *testing.T) {
	reg := obs.NewRegistry()
	rules, err := flight.ParseRules("p99-latency=1ns")
	if err != nil {
		t.Fatal(err)
	}
	api := New(Options{
		Registry:         reg,
		FlightRules:      rules,
		FlightCPUProfile: 30 * time.Millisecond,
	})
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)

	// Real traffic: every finished request lands in the 1m window and
	// leaves a trace exemplar plus an explain report behind.
	for i := 0; i < 3; i++ {
		resp, out := postLocalize(t, srv, "/v1/localize?k=2", "text/csv", sampleCSV)
		if resp.StatusCode != http.StatusOK || out.TraceID == "" {
			t.Fatalf("request %d: status %d, trace %q", i, resp.StatusCode, out.TraceID)
		}
	}

	// One poll: any completed request's p99 beats a 1ns threshold.
	api.Flight().Poll(context.Background())
	if total := api.Flight().Total(); total != 1 {
		t.Fatalf("captured %d bundles, want 1", total)
	}

	// The index is served and names the capture's rule.
	resp, err := http.Get(srv.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	var idx struct {
		Total   int                 `json:"total"`
		Bundles []flight.BundleInfo `json:"bundles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if idx.Total != 1 || len(idx.Bundles) != 1 || idx.Bundles[0].Rule != flight.RuleP99Latency {
		t.Fatalf("index = %+v", idx)
	}

	// Download and open the archive.
	resp, err = http.Get(srv.URL + "/debug/flight/" + idx.Bundles[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	archive, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("archive: HTTP %d", resp.StatusCode)
	}
	files := extractBundle(t, archive)

	// CPU profile: present and a parseable (gzipped protobuf) profile.
	gzr, err := gzip.NewReader(bytes.NewReader(files["cpu.pprof"]))
	if err != nil {
		t.Fatalf("cpu.pprof is not gzip: %v", err)
	}
	if raw, err := io.ReadAll(gzr); err != nil || len(raw) == 0 {
		t.Fatalf("cpu.pprof: %d bytes, err %v", len(raw), err)
	}

	// SLO report: unmarshals and shows the localize traffic we sent.
	var slo SLOReport
	if err := json.Unmarshal(files["slo.json"], &slo); err != nil {
		t.Fatalf("slo.json: %v", err)
	}
	if reqs := slo.Windows["1m"]["POST /v1/localize"].Requests; reqs < 3 {
		t.Errorf("slo.json records %v localize requests, want >= 3", reqs)
	}

	// Spans: grouped by trace, non-empty.
	var spans struct {
		Traces []obs.TraceSpans `json:"traces"`
	}
	if err := json.Unmarshal(files["spans.json"], &spans); err != nil {
		t.Fatalf("spans.json: %v", err)
	}
	if len(spans.Traces) == 0 {
		t.Error("spans.json has no traces")
	}

	// Exemplar-linked explain reports: at least one runs/<trace>.json whose
	// trace ID also resolves live at /debug/runs/{id}.
	var runFiles []string
	for name := range files {
		if strings.HasPrefix(name, "runs/") && strings.HasSuffix(name, ".json") {
			runFiles = append(runFiles, name)
		}
	}
	if len(runFiles) == 0 {
		t.Fatalf("bundle has no exemplar-linked explain reports (files: %v)", idx.Bundles[0].Artifacts)
	}
	var rep explain.Report
	if err := json.Unmarshal(files[runFiles[0]], &rep); err != nil {
		t.Fatalf("%s: %v", runFiles[0], err)
	}
	traceID := strings.TrimSuffix(path.Base(runFiles[0]), ".json")
	if rep.TraceID != traceID {
		t.Errorf("report trace %q != filename trace %q", rep.TraceID, traceID)
	}
	resp, err = http.Get(srv.URL + "/debug/runs/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/runs/%s: HTTP %d, want 200", traceID, resp.StatusCode)
	}

	// The trigger shows up in the metrics the scraper sees.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics),
		`rapminer_flight_captures_total{rule="p99-latency"} 1`) {
		t.Error("/metrics does not count the p99-latency capture")
	}
}

// TestFlightConcurrentCaptureAndServe hammers capture, index, archive and
// localize concurrently — the interesting assertions are the race
// detector's.
func TestFlightConcurrentCaptureAndServe(t *testing.T) {
	reg := obs.NewRegistry()
	api := New(Options{
		Registry:         reg,
		FlightCapacity:   2,
		FlightCPUProfile: time.Millisecond,
	})
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(600*time.Millisecond, func() { close(stop) })
	hammer := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f()
				}
			}
		}()
	}
	get := func(path string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	hammer(func() {
		// Captures serialize; busy answers 409 and that is fine here.
		resp, err := http.Post(srv.URL+"/debug/flight/capture", "", nil)
		if err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	})
	hammer(func() { get("/debug/flight") })
	hammer(func() {
		for _, b := range api.Flight().Bundles() {
			get("/debug/flight/" + b.ID)
		}
	})
	hammer(func() {
		resp, err := http.Post(srv.URL+"/v1/localize?k=2", "text/csv", strings.NewReader(sampleCSV))
		if err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	})
	wg.Wait()
	if api.Flight().Total() == 0 {
		t.Error("no capture succeeded during the hammer")
	}
}

func TestReadyz(t *testing.T) {
	api := New(Options{Registry: obs.NewRegistry()})
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)

	readyz := func() (int, readyzResponse) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out readyzResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	if code, out := readyz(); code != http.StatusOK || !out.Ready {
		t.Fatalf("fresh server: HTTP %d, %+v", code, out)
	}
	api.SetDraining(true)
	if code, out := readyz(); code != http.StatusServiceUnavailable ||
		out.Ready || !strings.Contains(out.Reason, "draining") {
		t.Fatalf("draining: HTTP %d, %+v", code, out)
	}
	api.SetDraining(false)
	if code, _ := readyz(); code != http.StatusOK {
		t.Fatalf("after drain reset: HTTP %d", code)
	}
}

// TestReadyzQueueFull pins the saturation verdict: a batch queue at
// capacity flips /readyz to 503 with a queue reason, and releases once the
// queue drains.
func TestReadyzQueueFull(t *testing.T) {
	withTestMethod(t, "stall", stallLocalizer{})
	// One worker, no waiting room: a single stalled item fills the queue.
	api := New(Options{Registry: obs.NewRegistry(), BatchWorkers: 1, BatchQueue: -1})
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)

	snap, err := kpi.ReadCSV(strings.NewReader(sampleCSV), nil)
	if err != nil {
		t.Fatal(err)
	}
	var doc strings.Builder
	if err := kpi.WriteJSON(&doc, snap); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"snapshots":[%s]}`, doc.String())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			srv.URL+"/v1/localize/batch?method=stall", strings.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	// Wait until the stalled item is admitted, then the probe must say no.
	deadline := time.Now().Add(5 * time.Second)
	for api.batch.Depth() < api.batch.Capacity() {
		if time.Now().After(deadline) {
			t.Fatal("batch queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var out readyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || out.Ready ||
		!strings.Contains(out.Reason, "queue") {
		t.Fatalf("full queue: HTTP %d, %+v", resp.StatusCode, out)
	}
	if out.BatchQueueDepth < out.BatchCapacity {
		t.Errorf("probe reports depth %d < capacity %d while full",
			out.BatchQueueDepth, out.BatchCapacity)
	}

	// Release the stalled request; readiness recovers.
	cancel()
	<-done
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never recovered after the queue drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
