package httpapi

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/anomaly"
	"repro/internal/kpi"
	"repro/internal/leafforecast"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/rapminer"
	"repro/internal/rapminer/explain"
	"repro/internal/timeseries"
)

// monitorAPI holds the stateful monitoring endpoints: clients stream raw
// observation snapshots to POST /v1/observe and read the incident
// lifecycle from GET /v1/incidents. The tracked monitor learns every
// leaf's baseline from the stream itself, so observations need only carry
// actual values.
type monitorAPI struct {
	reg     *obs.Registry
	runs    *explain.Store
	mu      sync.Mutex
	tracked *pipeline.TrackedMonitor
	schema  *kpi.Schema
	ticks   int
}

// newMonitorAPI builds the endpoints around the default pipeline
// configuration, publishing the monitor's metrics to reg and its explain
// reports to runs.
func newMonitorAPI(reg *obs.Registry, runs *explain.Store) *monitorAPI {
	return &monitorAPI{reg: reg, runs: runs}
}

// init lazily assembles the monitor from the first observation's schema.
func (m *monitorAPI) init(schema *kpi.Schema) error {
	miner, err := rapminer.New(rapminer.DefaultConfig())
	if err != nil {
		return err
	}
	cfg := pipeline.DefaultConfig(anomaly.RelativeDeviation{Threshold: 0.3, Eps: 1e-9}, miner)
	cfg.AlarmThreshold = 0.01
	cfg.Registry = m.reg
	cfg.Runs = m.runs
	monitor, err := pipeline.New(cfg)
	if err != nil {
		return err
	}
	tracker, err := leafforecast.New(schema, leafforecast.Config{
		Forecaster: timeseries.EWMA{Alpha: 0.3},
		Window:     256,
		MinHistory: 5,
	})
	if err != nil {
		return err
	}
	tracked, err := pipeline.NewTracked(monitor, tracker)
	if err != nil {
		return err
	}
	m.tracked = tracked
	m.schema = schema
	return nil
}

// observeResponse is the POST /v1/observe reply.
type observeResponse struct {
	Event     string            `json:"event"`
	Tick      int               `json:"tick"`
	Deviation float64           `json:"deviation"`
	Incident  *incidentResponse `json:"incident,omitempty"`
}

type incidentResponse struct {
	ID         int               `json:"id"`
	OpenedAt   time.Time         `json:"opened_at"`
	ResolvedAt *time.Time        `json:"resolved_at,omitempty"`
	Updates    int               `json:"updates"`
	Scopes     []patternResponse `json:"scopes"`
}

func (m *monitorAPI) handleObserve(w http.ResponseWriter, r *http.Request) {
	ts := time.Now().UTC()
	if raw := r.URL.Query().Get("ts"); raw != "" {
		parsed, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "ts must be RFC 3339")
			return
		}
		ts = parsed
	}
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	defer body.Close()
	var (
		snap *kpi.Snapshot
		err  error
	)
	switch mediaType(r.Header.Get("Content-Type")) {
	case "text/csv":
		snap, err = kpi.ReadCSV(body, nil)
	case "", "application/json":
		snap, err = kpi.ReadJSON(body)
	default:
		writeError(w, http.StatusUnsupportedMediaType, "content type must be application/json or text/csv")
		return
	}
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("snapshot exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.tracked == nil {
		if err := m.init(snap.Schema); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
	} else if !sameSchema(m.schema, snap.Schema) {
		writeError(w, http.StatusConflict, "observation schema differs from the monitored schema")
		return
	} else {
		// Re-home the snapshot onto the monitor's schema instance: the
		// tracker compares schema identity.
		snap = &kpi.Snapshot{Schema: m.schema, Leaves: snap.Leaves}
	}
	// The request's trace context flows into the pipeline, so a tick
	// that localizes journals its run under the request's trace ID.
	ev, err := m.tracked.ProcessContext(r.Context(), ts, snap)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	m.ticks++
	writeJSON(w, http.StatusOK, observeResponse{
		Event:     ev.Kind.String(),
		Tick:      m.ticks,
		Deviation: ev.Deviation,
		Incident:  m.incidentJSON(ev.Incident),
	})
}

func (m *monitorAPI) handleIncidents(w http.ResponseWriter, _ *http.Request) {
	m.mu.Lock()
	defer m.mu.Unlock()
	type incidentsResponse struct {
		Ticks    int                 `json:"ticks"`
		Current  *incidentResponse   `json:"current,omitempty"`
		Resolved []*incidentResponse `json:"resolved"`
	}
	resp := incidentsResponse{Ticks: m.ticks, Resolved: []*incidentResponse{}}
	if m.tracked != nil {
		resp.Current = m.incidentJSON(m.tracked.Current())
		for _, inc := range m.tracked.History() {
			in := inc
			resp.Resolved = append(resp.Resolved, m.incidentJSON(&in))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (m *monitorAPI) incidentJSON(inc *pipeline.Incident) *incidentResponse {
	if inc == nil {
		return nil
	}
	out := &incidentResponse{
		ID:       inc.ID,
		OpenedAt: inc.OpenedAt,
		Updates:  inc.Updates,
		Scopes:   []patternResponse{},
	}
	if !inc.ResolvedAt.IsZero() {
		t := inc.ResolvedAt
		out.ResolvedAt = &t
	}
	for _, p := range inc.Scopes {
		combo := make([]string, len(p.Combo))
		for a, code := range p.Combo {
			if code == kpi.Wildcard {
				combo[a] = kpi.WildcardToken
			} else {
				combo[a] = m.schema.Value(a, code)
			}
		}
		out.Scopes = append(out.Scopes, patternResponse{Combination: combo, Score: p.Score})
	}
	return out
}

// sameSchema compares attribute names and element domains.
func sameSchema(a, b *kpi.Schema) bool {
	if a.NumAttributes() != b.NumAttributes() {
		return false
	}
	for i := 0; i < a.NumAttributes(); i++ {
		aa, bb := a.Attribute(i), b.Attribute(i)
		if aa.Name != bb.Name || len(aa.Values) != len(bb.Values) {
			return false
		}
		for j := range aa.Values {
			if aa.Values[j] != bb.Values[j] {
				return false
			}
		}
	}
	return true
}
