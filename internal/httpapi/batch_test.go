package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/kpi"
	"repro/internal/obs"
)

// sampleBatchBody builds a batch request of n copies of the sampleCSV
// snapshot encoded as JSON documents.
func sampleBatchBody(t *testing.T, n int) string {
	t.Helper()
	snap, err := kpi.ReadCSV(strings.NewReader(sampleCSV), nil)
	if err != nil {
		t.Fatal(err)
	}
	var doc bytes.Buffer
	if err := kpi.WriteJSON(&doc, snap); err != nil {
		t.Fatal(err)
	}
	items := make([]string, n)
	for i := range items {
		items[i] = doc.String()
	}
	return fmt.Sprintf(`{"snapshots":[%s]}`, strings.Join(items, ","))
}

func postBatch(t *testing.T, srv *httptest.Server, path, body string) (*http.Response, batchResponse) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out batchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestLocalizeBatchEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, out := postBatch(t, srv, "/v1/localize/batch?k=2", sampleBatchBody(t, 3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Method != "RAPMiner" || out.K != 2 || len(out.Items) != 3 {
		t.Fatalf("response = %+v", out)
	}
	for i, item := range out.Items {
		if item.Error != "" {
			t.Fatalf("item %d: %s", i, item.Error)
		}
		if item.Leaves != 6 || item.Anomalous != 3 {
			t.Errorf("item %d: leaves=%d anomalous=%d", i, item.Leaves, item.Anomalous)
		}
		if len(item.Patterns) == 0 || strings.Join(item.Patterns[0].Combination, ",") != "*,Site1" {
			t.Errorf("item %d: patterns = %v", i, item.Patterns)
		}
	}
	if out.TraceID == "" {
		t.Error("missing trace_id")
	}
}

func TestLocalizeBatchEveryMethod(t *testing.T) {
	srv := newServer(t)
	body := sampleBatchBody(t, 2)
	for _, m := range MethodNames() {
		t.Run(m, func(t *testing.T) {
			resp, out := postBatch(t, srv, "/v1/localize/batch?method="+m, body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d", resp.StatusCode)
			}
			if len(out.Items) != 2 {
				t.Fatalf("items = %+v", out.Items)
			}
			for i, item := range out.Items {
				if item.Error != "" {
					t.Fatalf("item %d: %s", i, item.Error)
				}
			}
		})
	}
}

func TestLocalizeBatchErrors(t *testing.T) {
	srv := newServer(t)
	cases := []struct {
		name, path, body string
		status           int
	}{
		{"empty array", "/v1/localize/batch", `{"snapshots":[]}`, http.StatusBadRequest},
		{"malformed json", "/v1/localize/batch", `{"snapshots":`, http.StatusBadRequest},
		{"bad snapshot", "/v1/localize/batch", `{"snapshots":[{"bogus":1}]}`, http.StatusBadRequest},
		{"unknown method", "/v1/localize/batch?method=nope", sampleBatchBody(t, 1), http.StatusBadRequest},
		{"bad k", "/v1/localize/batch?k=zero", sampleBatchBody(t, 1), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _ := postBatch(t, srv, tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.status)
			}
		})
	}
}

func TestLocalizeBatchTooManyItems(t *testing.T) {
	srv := newServer(t)
	// One item over the per-request cap: cheap to build (items are small
	// strings) and rejected before any decoding of the snapshots.
	items := make([]string, maxBatchItems+1)
	for i := range items {
		items[i] = "{}"
	}
	body := fmt.Sprintf(`{"snapshots":[%s]}`, strings.Join(items, ","))
	resp, _ := postBatch(t, srv, "/v1/localize/batch", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestLocalizeBatchBackpressure exercises the 503 path: with capacity for a
// single item, a two-item batch cannot be admitted.
func TestLocalizeBatchBackpressure(t *testing.T) {
	srv := httptest.NewServer(NewHandlerOpts(Options{
		Registry:     obs.NewRegistry(),
		BatchWorkers: 1,
		BatchQueue:   -1, // no queue: capacity is the single worker slot
	}))
	t.Cleanup(srv.Close)
	resp, _ := postBatch(t, srv, "/v1/localize/batch", sampleBatchBody(t, 2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("missing Retry-After header")
	}
	// A one-item batch fits and succeeds.
	resp, out := postBatch(t, srv, "/v1/localize/batch", sampleBatchBody(t, 1))
	if resp.StatusCode != http.StatusOK || len(out.Items) != 1 {
		t.Fatalf("status = %d items = %+v", resp.StatusCode, out.Items)
	}
}
