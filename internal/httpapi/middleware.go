package httpapi

import (
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// TraceparentHeader is the W3C Trace Context header the middleware accepts
// on requests and emits on responses, carrying the request's trace ID so
// clients can fetch the run's spans (/debug/spans?trace=...) and explain
// report (/debug/runs/{trace-id}) afterwards.
const TraceparentHeader = "traceparent"

// DegradedHeader marks responses whose localization result was cut off by a
// deadline or budget; the value is the degraded reason. Handlers set it,
// the middleware folds it into the SLO windows, and clients get a cheap
// header-level signal without parsing the body.
const DegradedHeader = "X-Rapminer-Degraded"

// logSampler rate-limits the per-request log line. Up to maxPerSec lines
// pass per one-second window; the rest are counted, not printed, so a
// load-generator run cannot drown the process's log stream. maxPerSec <= 0
// means unlimited.
type logSampler struct {
	maxPerSec  float64
	suppressed *obs.Counter

	mu    sync.Mutex
	epoch int64
	count float64
}

func newLogSampler(reg *obs.Registry, maxPerSec float64) *logSampler {
	return &logSampler{
		maxPerSec: maxPerSec,
		suppressed: reg.Counter("rapminer_logs_suppressed_total",
			"Per-request log lines suppressed by the log sampler."),
	}
}

// allow reports whether this request's log line may print.
func (s *logSampler) allow(now time.Time) bool {
	if s.maxPerSec <= 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	epoch := now.Unix()
	if epoch != s.epoch {
		s.epoch = epoch
		s.count = 0
	}
	s.count++
	if s.count > s.maxPerSec {
		s.suppressed.Inc()
		return false
	}
	return true
}

// instrument wraps the route mux with the service's observability
// middleware: trace propagation (a valid incoming traceparent joins its
// trace, anything else starts a fresh one; the response always carries the
// request's traceparent), one "http.request" root span per request,
// request counting by method/route/status class, a request latency
// histogram carrying trace exemplars (each bucket remembers the most
// recent trace ID at or above the exemplar threshold, so a slow bucket on
// an OpenMetrics /metrics scrape resolves straight to
// /debug/runs/{trace-id}), the rolling SLO
// windows behind GET /debug/slo, an in-flight gauge, and one structured —
// and, under load, sampled — log line per request. Metric label
// cardinality is bounded by using the matched route pattern (never the raw
// URL path).
func instrument(reg *obs.Registry, log *slog.Logger, slo *sloState, sampler *logSampler, exemplarMin float64, next http.Handler) http.Handler {
	inflight := reg.Gauge("http_inflight_requests",
		"Requests currently being served.")
	// Pre-register the latency family so /metrics shows it before traffic.
	reg.Histogram("http_request_duration_seconds",
		"Request latency by matched route.", nil, "route", "none").
		SetExemplarThreshold(exemplarMin)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflight.Inc()
		defer inflight.Dec()

		tc, err := obs.ParseTraceparent(r.Header.Get(TraceparentHeader))
		if err != nil {
			// Absent or malformed: start a fresh trace rather than
			// rejecting — tracing must never fail a request.
			tc = obs.NewTraceContext()
		}
		ctx, span := obs.StartSpan(obs.ContextWithTrace(r.Context(), tc), "http.request")
		r = r.WithContext(ctx)
		// The response traceparent names this request's root span so a
		// calling service can link its own child spans under it.
		w.Header().Set(TraceparentHeader,
			obs.TraceContext{TraceID: span.TraceID(), SpanID: span.SpanID(), Sampled: true}.Traceparent())

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)

		// r.Pattern is populated by the mux during routing, so reading it
		// after ServeHTTP yields the matched route ("" on 404/405).
		route := r.Pattern
		if route == "" {
			route = "none"
		}
		degraded := rec.Header().Get(DegradedHeader) != ""
		span.SetAttr("route", route)
		span.SetAttr("status", rec.status)
		span.End()
		reg.Counter("http_requests_total",
			"Requests served by method, matched route, and status class.",
			"method", r.Method, "route", route, "class", statusClass(rec.status)).Inc()
		h := reg.Histogram("http_request_duration_seconds",
			"Request latency by matched route.", nil, "route", route)
		h.SetExemplarThreshold(exemplarMin)
		h.ObserveExemplar(elapsed.Seconds(), span.TraceID())
		slo.record(route, elapsed, rec.status, degraded)

		if sampler.allow(start) {
			log.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("trace_id", span.TraceID()),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", rec.status),
				slog.Int64("bytes", rec.bytes),
				slog.Duration("elapsed", elapsed),
			)
		}
	})
}

// statusRecorder captures the status code and body size written downstream.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards streaming support when the underlying writer has it.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// statusClass maps 200 -> "2xx" etc.; out-of-range codes report "other".
func statusClass(status int) string {
	switch {
	case status >= 100 && status < 200:
		return "1xx"
	case status < 300:
		return "2xx"
	case status < 400:
		return "3xx"
	case status < 500:
		return "4xx"
	case status < 600:
		return "5xx"
	default:
		return "other"
	}
}
