package timeseries

import (
	"fmt"
)

// Decomposition splits a series into trend, seasonal and residual
// components (classical additive decomposition): value = trend + seasonal +
// residual.
type Decomposition struct {
	Period   int
	Trend    []float64
	Seasonal []float64
	Residual []float64
}

// Decompose performs classical additive decomposition with the given
// season length: a centered moving average of one period estimates the
// trend, per-phase means of the detrended series estimate the seasonal
// component (normalized to zero mean), and the rest is residual. The series
// needs at least two full periods.
func Decompose(values []float64, period int) (*Decomposition, error) {
	if period < 2 {
		return nil, fmt.Errorf("timeseries: decompose period %d, want >= 2", period)
	}
	if len(values) < 2*period {
		return nil, fmt.Errorf("timeseries: decompose needs >= %d samples, have %d: %w",
			2*period, len(values), ErrShortHistory)
	}
	n := len(values)
	d := &Decomposition{
		Period:   period,
		Trend:    make([]float64, n),
		Seasonal: make([]float64, n),
		Residual: make([]float64, n),
	}

	// Centered moving average; for even periods average two windows.
	half := period / 2
	trendAt := func(i int) (float64, bool) {
		if i < half || i >= n-half {
			return 0, false
		}
		if period%2 == 1 {
			var sum float64
			for j := i - half; j <= i+half; j++ {
				sum += values[j]
			}
			return sum / float64(period), true
		}
		if i+half >= n {
			return 0, false
		}
		var sum float64
		for j := i - half; j < i+half; j++ {
			sum += values[j]
		}
		a := sum / float64(period)
		sum = 0
		for j := i - half + 1; j <= i+half; j++ {
			sum += values[j]
		}
		b := sum / float64(period)
		return (a + b) / 2, true
	}

	// Seasonal component: mean detrended value per phase.
	phaseSum := make([]float64, period)
	phaseCount := make([]int, period)
	for i := 0; i < n; i++ {
		if t, ok := trendAt(i); ok {
			phaseSum[i%period] += values[i] - t
			phaseCount[i%period]++
		}
	}
	season := make([]float64, period)
	var seasonMean float64
	for p := 0; p < period; p++ {
		if phaseCount[p] > 0 {
			season[p] = phaseSum[p] / float64(phaseCount[p])
		}
		seasonMean += season[p]
	}
	seasonMean /= float64(period)
	for p := range season {
		season[p] -= seasonMean // zero-mean seasonal component
	}

	// Fill outputs; trend at the edges is extended from the nearest
	// interior estimate so the components always sum to the series.
	firstTrend, lastTrend := 0.0, 0.0
	firstSet := false
	for i := 0; i < n; i++ {
		if t, ok := trendAt(i); ok {
			if !firstSet {
				firstTrend = t
				firstSet = true
			}
			lastTrend = t
			d.Trend[i] = t
		}
	}
	for i := 0; i < n; i++ {
		if _, ok := trendAt(i); !ok {
			if i < half {
				d.Trend[i] = firstTrend
			} else {
				d.Trend[i] = lastTrend
			}
		}
		d.Seasonal[i] = season[i%period]
		d.Residual[i] = values[i] - d.Trend[i] - d.Seasonal[i]
	}
	return d, nil
}

// Reconstruct returns trend + seasonal + residual, which equals the input
// series up to floating-point error.
func (d *Decomposition) Reconstruct() []float64 {
	out := make([]float64, len(d.Trend))
	for i := range out {
		out[i] = d.Trend[i] + d.Seasonal[i] + d.Residual[i]
	}
	return out
}

// Deseasonalize returns the series with the seasonal component removed —
// useful as a preprocessing step for non-seasonal forecasters.
func (d *Decomposition) Deseasonalize(values []float64) ([]float64, error) {
	if len(values) != len(d.Seasonal) {
		return nil, fmt.Errorf("timeseries: deseasonalize length %d, decomposition has %d",
			len(values), len(d.Seasonal))
	}
	out := make([]float64, len(values))
	for i := range values {
		out[i] = values[i] - d.Seasonal[i]
	}
	return out, nil
}
