package timeseries

import (
	"fmt"
)

// MovingAverage predicts the mean of the last Window samples.
type MovingAverage struct {
	Window int
}

var _ Forecaster = MovingAverage{}

// Name implements Forecaster.
func (m MovingAverage) Name() string { return fmt.Sprintf("ma(%d)", m.Window) }

// Forecast implements Forecaster.
func (m MovingAverage) Forecast(history []float64) (float64, error) {
	if m.Window <= 0 {
		return 0, fmt.Errorf("timeseries: moving average window %d: %w", m.Window, ErrShortHistory)
	}
	if len(history) < m.Window {
		return 0, ErrShortHistory
	}
	var sum float64
	for _, v := range history[len(history)-m.Window:] {
		sum += v
	}
	return sum / float64(m.Window), nil
}

// EWMA predicts with an exponentially weighted moving average with smoothing
// factor Alpha in (0, 1].
type EWMA struct {
	Alpha float64
}

var _ Forecaster = EWMA{}

// Name implements Forecaster.
func (e EWMA) Name() string { return fmt.Sprintf("ewma(%.2f)", e.Alpha) }

// Forecast implements Forecaster.
func (e EWMA) Forecast(history []float64) (float64, error) {
	if e.Alpha <= 0 || e.Alpha > 1 {
		return 0, fmt.Errorf("timeseries: ewma alpha %v out of (0, 1]", e.Alpha)
	}
	if len(history) == 0 {
		return 0, ErrShortHistory
	}
	level := history[0]
	for _, v := range history[1:] {
		level = e.Alpha*v + (1-e.Alpha)*level
	}
	return level, nil
}

// SeasonalNaive predicts the value observed one season (Period samples)
// earlier. With minute-granularity CDN KPIs a period of one day captures the
// dominant diurnal cycle.
type SeasonalNaive struct {
	Period int
}

var _ Forecaster = SeasonalNaive{}

// Name implements Forecaster.
func (s SeasonalNaive) Name() string { return fmt.Sprintf("snaive(%d)", s.Period) }

// Forecast implements Forecaster.
func (s SeasonalNaive) Forecast(history []float64) (float64, error) {
	if s.Period <= 0 || len(history) < s.Period {
		return 0, ErrShortHistory
	}
	return history[len(history)-s.Period], nil
}

// HoltWinters is additive triple exponential smoothing with season length
// Period and smoothing factors Alpha (level), Beta (trend), Gamma (season).
type HoltWinters struct {
	Period             int
	Alpha, Beta, Gamma float64
}

var _ Forecaster = HoltWinters{}

// Name implements Forecaster.
func (h HoltWinters) Name() string { return fmt.Sprintf("holtwinters(%d)", h.Period) }

// Forecast implements Forecaster. It needs at least two full seasons of
// history to initialize the seasonal components.
func (h HoltWinters) Forecast(history []float64) (float64, error) {
	p := h.Period
	if p <= 0 || len(history) < 2*p {
		return 0, ErrShortHistory
	}
	if bad := func(x float64) bool { return x < 0 || x > 1 }; bad(h.Alpha) || bad(h.Beta) || bad(h.Gamma) {
		return 0, fmt.Errorf("timeseries: holt-winters smoothing factors out of [0, 1]")
	}
	// Initialize level and trend from the first two seasons.
	var mean1, mean2 float64
	for i := 0; i < p; i++ {
		mean1 += history[i]
		mean2 += history[p+i]
	}
	mean1 /= float64(p)
	mean2 /= float64(p)
	level := mean1
	trend := (mean2 - mean1) / float64(p)
	season := make([]float64, p)
	for i := 0; i < p; i++ {
		season[i] = history[i] - mean1
	}
	for i := p; i < len(history); i++ {
		v := history[i]
		si := i % p
		prevLevel := level
		level = h.Alpha*(v-season[si]) + (1-h.Alpha)*(level+trend)
		trend = h.Beta*(level-prevLevel) + (1-h.Beta)*trend
		season[si] = h.Gamma*(v-level) + (1-h.Gamma)*season[si]
	}
	next := len(history) % p
	return level + trend + season[next], nil
}
