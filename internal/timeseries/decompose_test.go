package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecomposeValidation(t *testing.T) {
	if _, err := Decompose(make([]float64, 10), 1); err == nil {
		t.Error("period 1 accepted")
	}
	if _, err := Decompose(make([]float64, 5), 4); !errors.Is(err, ErrShortHistory) {
		t.Errorf("short series error = %v", err)
	}
}

func TestDecomposeRecoversKnownComponents(t *testing.T) {
	const period = 12
	n := 8 * period
	values := make([]float64, n)
	trueSeason := func(i int) float64 { return 10 * math.Sin(2*math.Pi*float64(i%period)/period) }
	for i := range values {
		trend := 100 + 0.5*float64(i)
		values[i] = trend + trueSeason(i)
	}
	d, err := Decompose(values, period)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	// Seasonal component approximates the sine (interior phases).
	for p := 0; p < period; p++ {
		if math.Abs(d.Seasonal[p]-trueSeason(p)) > 1.0 {
			t.Errorf("seasonal[%d] = %v, want about %v", p, d.Seasonal[p], trueSeason(p))
		}
	}
	// Interior residuals are near zero for a noiseless series.
	for i := period; i < n-period; i++ {
		if math.Abs(d.Residual[i]) > 1.0 {
			t.Errorf("residual[%d] = %v, want near 0", i, d.Residual[i])
		}
	}
	// Trend is increasing on the interior.
	if d.Trend[n/2] <= d.Trend[period] {
		t.Error("trend not increasing")
	}
}

func TestDecomposeOddPeriod(t *testing.T) {
	const period = 7
	values := make([]float64, 6*period)
	for i := range values {
		values[i] = 50 + 5*math.Cos(2*math.Pi*float64(i%period)/period)
	}
	d, err := Decompose(values, period)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	recon := d.Reconstruct()
	for i := range values {
		if math.Abs(recon[i]-values[i]) > 1e-9 {
			t.Fatalf("reconstruction differs at %d: %v vs %v", i, recon[i], values[i])
		}
	}
}

func TestDecomposeSeasonalZeroMean(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	values := make([]float64, 100)
	for i := range values {
		values[i] = 10*math.Sin(2*math.Pi*float64(i%10)/10) + r.NormFloat64()
	}
	d, err := Decompose(values, 10)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	var sum float64
	for p := 0; p < d.Period; p++ {
		sum += d.Seasonal[p]
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("seasonal component mean = %v, want 0", sum/float64(d.Period))
	}
}

func TestDecomposeReconstructExactQuick(t *testing.T) {
	// Reconstruction is exact for any input: the residual absorbs
	// whatever trend+seasonal miss.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		values := make([]float64, 48)
		for i := range values {
			values[i] = 100 * r.Float64()
		}
		d, err := Decompose(values, 6)
		if err != nil {
			return false
		}
		recon := d.Reconstruct()
		for i := range values {
			if math.Abs(recon[i]-values[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDeseasonalize(t *testing.T) {
	const period = 4
	values := make([]float64, 5*period)
	for i := range values {
		values[i] = 20 + []float64{5, -5, 3, -3}[i%period]
	}
	d, err := Decompose(values, period)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	flat, err := d.Deseasonalize(values)
	if err != nil {
		t.Fatalf("Deseasonalize: %v", err)
	}
	st := Summarize(flat[period : len(flat)-period])
	if st.Std > 0.5 {
		t.Errorf("deseasonalized interior std = %v, want near 0", st.Std)
	}
	if _, err := d.Deseasonalize(values[:3]); err == nil {
		t.Error("length mismatch accepted")
	}
}
