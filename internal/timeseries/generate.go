package timeseries

import (
	"math"
	"math/rand"
	"time"
)

// SeasonalProfile parameterizes a synthetic KPI stream with the diurnal and
// weekly structure typical of CDN traffic: a base level, a day-cycle
// amplitude peaking in the evening, a weekend uplift and multiplicative
// noise.
type SeasonalProfile struct {
	// Base is the mean traffic level.
	Base float64
	// DailyAmplitude scales the sinusoidal day cycle relative to Base.
	DailyAmplitude float64
	// WeekendBoost multiplies weekend samples (1 = no effect).
	WeekendBoost float64
	// NoiseStd is the standard deviation of multiplicative Gaussian
	// noise (relative to the noiseless value).
	NoiseStd float64
	// PeakHour is the hour of day (0-23) at which the day cycle peaks.
	PeakHour float64
}

// DefaultProfile returns a profile resembling residential CDN traffic:
// evening peak, mild weekend uplift, a few percent noise.
func DefaultProfile(base float64) SeasonalProfile {
	return SeasonalProfile{
		Base:           base,
		DailyAmplitude: 0.6,
		WeekendBoost:   1.15,
		NoiseStd:       0.03,
		PeakHour:       21,
	}
}

// ValueAt returns the noiseless profile value at time ts.
func (p SeasonalProfile) ValueAt(ts time.Time) float64 {
	hour := float64(ts.Hour()) + float64(ts.Minute())/60
	phase := 2 * math.Pi * (hour - p.PeakHour) / 24
	v := p.Base * (1 + p.DailyAmplitude*math.Cos(phase))
	if wd := ts.Weekday(); wd == time.Saturday || wd == time.Sunday {
		v *= p.WeekendBoost
	}
	if v < 0 {
		v = 0
	}
	return v
}

// Generate produces a series of n samples starting at start with the given
// step, adding multiplicative Gaussian noise drawn from r.
func (p SeasonalProfile) Generate(r *rand.Rand, start time.Time, step time.Duration, n int) *Series {
	values := make([]float64, n)
	for i := range values {
		v := p.ValueAt(start.Add(time.Duration(i) * step))
		v *= 1 + p.NoiseStd*r.NormFloat64()
		if v < 0 {
			v = 0
		}
		values[i] = v
	}
	return &Series{Start: start, Step: step, Values: values}
}
