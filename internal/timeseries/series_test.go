package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var testStart = time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)

func TestNewSeriesValidation(t *testing.T) {
	if _, err := NewSeries(testStart, 0, nil); err == nil {
		t.Error("NewSeries accepted zero step")
	}
	s, err := NewSeries(testStart, time.Minute, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("NewSeries: %v", err)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if got := s.TimeAt(2); !got.Equal(testStart.Add(2 * time.Minute)) {
		t.Errorf("TimeAt(2) = %v", got)
	}
}

func TestSeriesSlice(t *testing.T) {
	s, _ := NewSeries(testStart, time.Minute, []float64{0, 1, 2, 3, 4})
	sub, err := s.Slice(1, 4)
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	if sub.Len() != 3 || sub.Values[0] != 1 {
		t.Errorf("Slice = %+v", sub)
	}
	if !sub.Start.Equal(testStart.Add(time.Minute)) {
		t.Errorf("Slice start = %v", sub.Start)
	}
	if _, err := s.Slice(3, 2); err == nil {
		t.Error("Slice accepted inverted range")
	}
	if _, err := s.Slice(-1, 2); err == nil {
		t.Error("Slice accepted negative start")
	}
	if _, err := s.Slice(0, 6); err == nil {
		t.Error("Slice accepted overrun")
	}
}

func TestSummarize(t *testing.T) {
	st := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if st.Mean != 5 {
		t.Errorf("Mean = %v, want 5", st.Mean)
	}
	if math.Abs(st.Std-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", st.Std)
	}
	if st.Min != 2 || st.Max != 9 || st.N != 8 {
		t.Errorf("Stats = %+v", st)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Errorf("Summarize(nil) = %+v", empty)
	}
}

func TestMovingAverage(t *testing.T) {
	m := MovingAverage{Window: 3}
	got, err := m.Forecast([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatalf("Forecast: %v", err)
	}
	if got != 4 {
		t.Errorf("Forecast = %v, want 4", got)
	}
	if _, err := m.Forecast([]float64{1, 2}); !errors.Is(err, ErrShortHistory) {
		t.Errorf("short history error = %v", err)
	}
	if _, err := (MovingAverage{}).Forecast([]float64{1}); err == nil {
		t.Error("zero window accepted")
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	hist := make([]float64, 50)
	for i := range hist {
		hist[i] = 7
	}
	got, err := e.Forecast(hist)
	if err != nil {
		t.Fatalf("Forecast: %v", err)
	}
	if math.Abs(got-7) > 1e-9 {
		t.Errorf("Forecast = %v, want 7", got)
	}
	if _, err := e.Forecast(nil); !errors.Is(err, ErrShortHistory) {
		t.Errorf("empty history error = %v", err)
	}
	if _, err := (EWMA{Alpha: 0}).Forecast(hist); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := (EWMA{Alpha: 1.5}).Forecast(hist); err == nil {
		t.Error("alpha > 1 accepted")
	}
}

func TestSeasonalNaive(t *testing.T) {
	s := SeasonalNaive{Period: 4}
	hist := []float64{10, 20, 30, 40, 11, 21, 31, 41, 12}
	got, err := s.Forecast(hist)
	if err != nil {
		t.Fatalf("Forecast: %v", err)
	}
	// Next index is 9 -> one period earlier is index 5 (value 21).
	if got != 21 {
		t.Errorf("Forecast = %v, want 21", got)
	}
	if _, err := s.Forecast(hist[:3]); !errors.Is(err, ErrShortHistory) {
		t.Errorf("short history error = %v", err)
	}
}

func TestHoltWintersTracksSeasonalSignal(t *testing.T) {
	const period = 24
	hw := HoltWinters{Period: period, Alpha: 0.4, Beta: 0.05, Gamma: 0.3}
	// Pure seasonal signal, no noise: prediction error should be small.
	signal := func(i int) float64 {
		return 100 + 30*math.Sin(2*math.Pi*float64(i%period)/period)
	}
	hist := make([]float64, 6*period)
	for i := range hist {
		hist[i] = signal(i)
	}
	got, err := hw.Forecast(hist)
	if err != nil {
		t.Fatalf("Forecast: %v", err)
	}
	want := signal(len(hist))
	if math.Abs(got-want) > 5 {
		t.Errorf("Forecast = %v, want about %v", got, want)
	}
}

func TestHoltWintersValidation(t *testing.T) {
	hw := HoltWinters{Period: 24, Alpha: 0.4, Beta: 0.05, Gamma: 0.3}
	if _, err := hw.Forecast(make([]float64, 30)); !errors.Is(err, ErrShortHistory) {
		t.Errorf("short history error = %v", err)
	}
	bad := HoltWinters{Period: 4, Alpha: 2}
	if _, err := bad.Forecast(make([]float64, 20)); err == nil {
		t.Error("invalid alpha accepted")
	}
}

func TestForecastSeries(t *testing.T) {
	s, _ := NewSeries(testStart, time.Minute, []float64{1, 2, 3, 4, 5, 6})
	preds, err := ForecastSeries(MovingAverage{Window: 2}, s, 2)
	if err != nil {
		t.Fatalf("ForecastSeries: %v", err)
	}
	want := []float64{1, 2, 1.5, 2.5, 3.5, 4.5}
	for i := range want {
		if math.Abs(preds[i]-want[i]) > 1e-12 {
			t.Errorf("preds[%d] = %v, want %v", i, preds[i], want[i])
		}
	}
	if _, err := ForecastSeries(MovingAverage{Window: 2}, s, -1); err == nil {
		t.Error("negative warmup accepted")
	}
	if _, err := ForecastSeries(MovingAverage{Window: 3}, s, 1); err == nil {
		t.Error("warmup shorter than window should surface ErrShortHistory")
	}
}

func TestResiduals(t *testing.T) {
	res, err := Residuals([]float64{3, 5}, []float64{1, 10})
	if err != nil {
		t.Fatalf("Residuals: %v", err)
	}
	if res[0] != 2 || res[1] != -5 {
		t.Errorf("Residuals = %v", res)
	}
	if _, err := Residuals([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSeasonalProfileShape(t *testing.T) {
	p := DefaultProfile(1000)
	// Peak at PeakHour beats trough 12h away.
	peakDay := time.Date(2026, 2, 2, 21, 0, 0, 0, time.UTC) // a Monday
	trough := time.Date(2026, 2, 2, 9, 0, 0, 0, time.UTC)
	if p.ValueAt(peakDay) <= p.ValueAt(trough) {
		t.Error("profile peak not above trough")
	}
	// Weekend boost applies.
	sat := time.Date(2026, 2, 7, 21, 0, 0, 0, time.UTC)
	if p.ValueAt(sat) <= p.ValueAt(peakDay) {
		t.Error("weekend boost missing")
	}
	// Never negative even with extreme amplitude.
	extreme := SeasonalProfile{Base: 10, DailyAmplitude: 3, PeakHour: 21}
	low := time.Date(2026, 2, 2, 9, 0, 0, 0, time.UTC)
	if v := extreme.ValueAt(low); v < 0 {
		t.Errorf("negative profile value %v", v)
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	p := DefaultProfile(500)
	a := p.Generate(rand.New(rand.NewSource(1)), testStart, time.Minute, 100)
	b := p.Generate(rand.New(rand.NewSource(1)), testStart, time.Minute, 100)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("values diverge at %d", i)
		}
	}
	c := p.Generate(rand.New(rand.NewSource(2)), testStart, time.Minute, 100)
	same := true
	for i := range a.Values {
		if a.Values[i] != c.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestGenerateNonNegativeQuick(t *testing.T) {
	f := func(seed int64, base uint16) bool {
		p := DefaultProfile(float64(base))
		s := p.Generate(rand.New(rand.NewSource(seed)), testStart, time.Minute, 64)
		for _, v := range s.Values {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestForecasterNames(t *testing.T) {
	for _, f := range []Forecaster{
		MovingAverage{Window: 5},
		EWMA{Alpha: 0.3},
		SeasonalNaive{Period: 1440},
		HoltWinters{Period: 24},
	} {
		if f.Name() == "" {
			t.Errorf("%T has empty name", f)
		}
	}
}
