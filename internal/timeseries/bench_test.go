package timeseries

import (
	"math"
	"testing"
)

func benchSeries(n, period int) []float64 {
	values := make([]float64, n)
	for i := range values {
		values[i] = 100 + 20*math.Sin(2*math.Pi*float64(i%period)/float64(period))
	}
	return values
}

func BenchmarkHoltWinters(b *testing.B) {
	hw := HoltWinters{Period: 1440, Alpha: 0.4, Beta: 0.05, Gamma: 0.3}
	values := benchSeries(5*1440, 1440)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hw.Forecast(values); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompose(b *testing.B) {
	values := benchSeries(5*1440, 1440)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(values, 1440); err != nil {
			b.Fatal(err)
		}
	}
}
