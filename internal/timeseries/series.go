// Package timeseries provides the KPI forecasting substrate: series
// containers, seasonal traffic generators and simple forecasters. The
// RAPMiner paper treats leaf-level forecasting as an external building block
// ("we do not take the prediction methods as our primary work"); this
// package supplies that block so the repository is a complete pipeline from
// raw KPI streams to localized root anomaly patterns.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Series is a regularly sampled univariate KPI stream.
type Series struct {
	Start  time.Time
	Step   time.Duration
	Values []float64
}

// NewSeries validates the sampling parameters.
func NewSeries(start time.Time, step time.Duration, values []float64) (*Series, error) {
	if step <= 0 {
		return nil, fmt.Errorf("timeseries: non-positive step %v", step)
	}
	return &Series{Start: start, Step: step, Values: values}, nil
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// TimeAt returns the timestamp of sample i.
func (s *Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Step)
}

// Slice returns the sub-series [from, to).
func (s *Series) Slice(from, to int) (*Series, error) {
	if from < 0 || to > len(s.Values) || from > to {
		return nil, fmt.Errorf("timeseries: slice [%d, %d) out of range [0, %d)", from, to, len(s.Values))
	}
	return &Series{
		Start:  s.TimeAt(from),
		Step:   s.Step,
		Values: s.Values[from:to],
	}, nil
}

// Stats summarizes a sample set.
type Stats struct {
	Mean, Std, Min, Max float64
	N                   int
}

// Summarize computes mean, population standard deviation and range.
func Summarize(values []float64) Stats {
	st := Stats{N: len(values), Min: math.Inf(1), Max: math.Inf(-1)}
	if st.N == 0 {
		st.Min, st.Max = 0, 0
		return st
	}
	var sum float64
	for _, v := range values {
		sum += v
		st.Min = math.Min(st.Min, v)
		st.Max = math.Max(st.Max, v)
	}
	st.Mean = sum / float64(st.N)
	var ss float64
	for _, v := range values {
		d := v - st.Mean
		ss += d * d
	}
	st.Std = math.Sqrt(ss / float64(st.N))
	return st
}

// ErrShortHistory reports that a forecaster was given fewer samples than it
// needs.
var ErrShortHistory = errors.New("timeseries: history too short")

// Forecaster predicts the next value of a series from its history.
type Forecaster interface {
	// Forecast returns the one-step-ahead prediction for the sample
	// following history.
	Forecast(history []float64) (float64, error)
	// Name identifies the forecaster in reports.
	Name() string
}

// ForecastSeries runs a forecaster over a series, producing the predicted
// value for every index in [warmup, len). Indices before warmup are filled
// with the actual values (no prediction available yet).
func ForecastSeries(f Forecaster, s *Series, warmup int) ([]float64, error) {
	if warmup < 0 || warmup > s.Len() {
		return nil, fmt.Errorf("timeseries: warmup %d out of range", warmup)
	}
	out := make([]float64, s.Len())
	copy(out, s.Values[:warmup])
	for i := warmup; i < s.Len(); i++ {
		p, err := f.Forecast(s.Values[:i])
		if err != nil {
			return nil, fmt.Errorf("timeseries: forecast at %d: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}

// Residuals returns actual - forecast for aligned slices.
func Residuals(actual, forecast []float64) ([]float64, error) {
	if len(actual) != len(forecast) {
		return nil, fmt.Errorf("timeseries: residuals length mismatch %d vs %d", len(actual), len(forecast))
	}
	out := make([]float64, len(actual))
	for i := range actual {
		out[i] = actual[i] - forecast[i]
	}
	return out, nil
}
