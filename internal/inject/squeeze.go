package inject

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/kpi"
)

// SqueezeConfig parameterizes Squeeze-style injection: the scheme behind
// the published Squeeze semi-synthetic dataset, whose groups are labeled
// (dimension of the RAPs, number of RAPs).
type SqueezeConfig struct {
	// Dim is the dimensionality of every RAP in the case (all RAPs live
	// in one cuboid of this many attributes).
	Dim int
	// NumRAPs is the number of RAPs injected per case.
	NumRAPs int
	// MagnitudeLo/Hi bound the per-case anomaly magnitude; magnitudes
	// differ across cases (the horizontal assumption) but every
	// descendant of a case's RAPs shares the case magnitude (the
	// vertical assumption).
	MagnitudeLo, MagnitudeHi float64
	// NoiseStd adds relative Gaussian noise to the actual values of all
	// leaves; 0 is the B0 setting evaluated in the paper.
	NoiseStd float64
	// MinSupport is the minimum observed leaf count per RAP.
	MinSupport int
	// AnomalyThreshold is the relative deviation above which a leaf is
	// labeled anomalous (matching the default detector).
	AnomalyThreshold float64
}

// DefaultSqueezeConfig returns the B0 setting for the given group.
func DefaultSqueezeConfig(dim, numRAPs int) SqueezeConfig {
	return SqueezeConfig{
		Dim:         dim,
		NumRAPs:     numRAPs,
		MagnitudeLo: 0.2, MagnitudeHi: 0.9,
		NoiseStd:         0,
		MinSupport:       4,
		AnomalyThreshold: 0.095,
	}
}

// InjectSqueeze perturbs the background snapshot per the Squeeze dataset
// assumptions. The background's Forecast values are kept as the clean
// forecasts; Actual values of leaves under the RAPs drop by the case
// magnitude, all other leaves get Actual = Forecast (plus noise when
// NoiseStd > 0). Labels are assigned with the relative-deviation threshold.
func InjectSqueeze(r *rand.Rand, background *kpi.Snapshot, cfg SqueezeConfig) (Case, error) {
	n := background.Schema.NumAttributes()
	if cfg.Dim < 1 || cfg.Dim > n {
		return Case{}, fmt.Errorf("inject: squeeze Dim %d out of [1, %d]", cfg.Dim, n)
	}
	if cfg.NumRAPs < 1 {
		return Case{}, fmt.Errorf("inject: squeeze NumRAPs %d, want >= 1", cfg.NumRAPs)
	}
	if cfg.MagnitudeLo <= 0 || cfg.MagnitudeHi >= 1 || cfg.MagnitudeLo > cfg.MagnitudeHi {
		return Case{}, fmt.Errorf("inject: squeeze magnitude range [%v, %v] invalid",
			cfg.MagnitudeLo, cfg.MagnitudeHi)
	}
	if cfg.MagnitudeLo <= cfg.AnomalyThreshold {
		return Case{}, fmt.Errorf("inject: magnitude floor %v not above anomaly threshold %v",
			cfg.MagnitudeLo, cfg.AnomalyThreshold)
	}
	if background.Len() == 0 {
		return Case{}, errors.New("inject: empty background snapshot")
	}
	snap := background.Clone()

	// One cuboid for the whole case (the single-cuboid assumption).
	cuboid := make([]int, 0, cfg.Dim)
	for _, a := range r.Perm(n)[:cfg.Dim] {
		cuboid = append(cuboid, a)
	}
	raps, err := drawRAPsInCuboid(r, snap, cuboid, cfg.NumRAPs, cfg.MinSupport)
	if err != nil {
		return Case{}, err
	}

	magnitude := cfg.MagnitudeLo + (cfg.MagnitudeHi-cfg.MagnitudeLo)*r.Float64()
	for i := range snap.Leaves {
		leaf := &snap.Leaves[i]
		leaf.Actual = leaf.Forecast
		for _, rap := range raps {
			if rap.Matches(leaf.Combo) {
				// Vertical assumption: same relative drop everywhere
				// under this case's RAPs.
				leaf.Actual = leaf.Forecast * (1 - magnitude)
				break
			}
		}
		if cfg.NoiseStd > 0 {
			leaf.Actual *= 1 + cfg.NoiseStd*r.NormFloat64()
			if leaf.Actual < 0 {
				leaf.Actual = 0
			}
		}
		dev := 0.0
		if leaf.Forecast > 0 {
			dev = (leaf.Forecast - leaf.Actual) / leaf.Forecast
		}
		leaf.Anomalous = dev >= cfg.AnomalyThreshold || dev <= -cfg.AnomalyThreshold
	}
	return Case{Snapshot: snap, RAPs: raps}, nil
}

// drawRAPsInCuboid draws n distinct combinations of the given cuboid, each
// anchored on an observed leaf.
func drawRAPsInCuboid(r *rand.Rand, snap *kpi.Snapshot, cuboid []int, n, minSupport int) ([]kpi.Combination, error) {
	var raps []kpi.Combination
	const maxTries = 200
	for len(raps) < n {
		ok := false
		for try := 0; try < maxTries; try++ {
			seedLeaf := snap.Leaves[r.Intn(len(snap.Leaves))].Combo
			rap := seedLeaf.Project(cuboid)
			if related(rap, raps) {
				continue
			}
			if total, _ := snap.SupportCount(rap); total < minSupport {
				continue
			}
			raps = append(raps, rap)
			ok = true
			break
		}
		if !ok {
			if len(raps) > 0 {
				return raps, nil
			}
			return nil, errNoRAP
		}
	}
	return raps, nil
}
