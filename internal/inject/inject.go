// Package inject builds semi-synthetic failure cases by injecting root
// anomaly patterns into background KPI snapshots, implementing both
// injection schemes of the RAPMiner paper's evaluation (Section V-A):
//
//   - RAPMD-style injection (Randomness 1 and 2): 1-3 RAPs of arbitrary,
//     possibly different dimensions; each most fine-grained descendant of a
//     RAP gets its own relative deviation Dev drawn from [0.1, 0.9], normal
//     leaves get Dev in [-0.02, 0.09], and forecasts are derived via Eq. 5.
//   - Squeeze-style injection: all RAPs of one case live in a single cuboid
//     (HotSpot/Squeeze assumption), every descendant of a case's RAPs takes
//     the same anomaly magnitude (vertical assumption), and magnitudes vary
//     across cases (horizontal assumption). The B0 setting adds no forecast
//     noise.
package inject

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/kpi"
)

// Case is one injected failure: the perturbed snapshot plus the ground
// truth root anomaly patterns.
type Case struct {
	Snapshot *kpi.Snapshot
	RAPs     []kpi.Combination
}

// RAPMDConfig parameterizes RAPMD-style injection. Zero values are replaced
// by the paper's parameters.
type RAPMDConfig struct {
	// MinRAPs and MaxRAPs bound the number of RAPs per case
	// (paper: [1, 3]).
	MinRAPs, MaxRAPs int
	// MaxDim bounds each RAP's dimensionality (paper: any dimension; the
	// examples use 1-3, and a RAP spanning every attribute would be a
	// single leaf). 0 means number-of-attributes - 1.
	MaxDim int
	// AnomDevLo/Hi is the anomalous leaf deviation range (paper: [0.1, 0.9]).
	AnomDevLo, AnomDevHi float64
	// NormDevLo/Hi is the normal leaf deviation range (paper: [-0.02, 0.09]).
	NormDevLo, NormDevHi float64
	// Eps is the epsilon of Eq. 4/5.
	Eps float64
	// MinSupport is the minimum number of observed leaf descendants a
	// chosen RAP must have, so ground truth is never an empty scope.
	MinSupport int
	// MaxSupportShare caps a RAP's scope as a fraction of all observed
	// leaves. The paper injects RAPs "referring to the real-world root
	// anomaly patterns": a realistic failure hits a location, a website
	// or a combination — not, say, every Android user of the whole CDN
	// at once. 0 disables the cap.
	MaxSupportShare float64
	// MaxScaleGap bounds the support ratio between the largest and the
	// smallest RAP of one case. Real co-occurring failure patterns have
	// comparable blast radii; without this bound a dominant RAP washes
	// out the classification power of the attributes that only appear
	// in a tiny co-injected RAP, which no threshold-based method can
	// recover. 0 disables the bound.
	MaxScaleGap float64
	// FalsePositiveRate and FalseNegativeRate flip a fraction of the
	// leaf labels after injection, modeling imperfect anomaly detection
	// (the miner input is "anomaly detection results", not ground
	// truth). The paper's own injection keeps the anomalous and normal
	// deviation ranges separable, so its detector makes no false
	// negatives; false positives model the paper's observation that
	// sparse fine-grained KPIs "fail to show the statistical
	// characteristic".
	FalsePositiveRate, FalseNegativeRate float64
	// AttrReuseProb is the probability that a subsequent RAP of the same
	// case constrains the same attribute set as the previous one (with
	// different elements). Real co-occurring patterns often share a
	// shape — one website failing at several locations — while the
	// paper's Randomness 1 still requires that dimensions "are not
	// necessary to be the same", which the remaining probability mass
	// provides.
	AttrReuseProb float64
}

// DefaultRAPMDConfig returns the paper's injection parameters.
func DefaultRAPMDConfig() RAPMDConfig {
	return RAPMDConfig{
		MinRAPs:   1,
		MaxRAPs:   3,
		MaxDim:    3,
		AnomDevLo: 0.1, AnomDevHi: 0.9,
		NormDevLo: -0.02, NormDevHi: 0.09,
		Eps:               1e-6,
		MinSupport:        4,
		MaxSupportShare:   0.1,
		MaxScaleGap:       6,
		FalsePositiveRate: 0.005,
		FalseNegativeRate: 0,
		AttrReuseProb:     0.6,
	}
}

var errNoRAP = errors.New("inject: could not draw a RAP with enough support")

// InjectRAPMD perturbs the background snapshot in place semantics-free (the
// input is cloned) per the RAPMD procedure: the snapshot's Actual values
// are kept as the observed truth v, and Forecast values are re-derived from
// per-leaf deviations via Eq. 5, f = (v + Dev*eps) / (1 - Dev). Anomaly
// labels are set to the ground truth (Dev >= AnomDevLo), matching the
// paper's use of detection results as the miner input.
func InjectRAPMD(r *rand.Rand, background *kpi.Snapshot, cfg RAPMDConfig) (Case, error) {
	if err := validateRAPMD(cfg, background.Schema.NumAttributes()); err != nil {
		return Case{}, err
	}
	if background.Len() == 0 {
		return Case{}, errors.New("inject: empty background snapshot")
	}
	snap := background.Clone()

	raps, err := DrawCaseRAPs(r, snap, cfg)
	if err != nil {
		return Case{}, err
	}

	for i := range snap.Leaves {
		leaf := &snap.Leaves[i]
		anomalous := false
		for _, rap := range raps {
			if rap.Matches(leaf.Combo) {
				anomalous = true
				break
			}
		}
		var dev float64
		if anomalous {
			dev = cfg.AnomDevLo + (cfg.AnomDevHi-cfg.AnomDevLo)*r.Float64()
		} else {
			dev = cfg.NormDevLo + (cfg.NormDevHi-cfg.NormDevLo)*r.Float64()
		}
		// Eq. 5: f = (v + Dev*eps) / (1 - Dev), so that Eq. 4 yields
		// Dev = (f - v) / (f + eps).
		leaf.Forecast = (leaf.Actual + dev*cfg.Eps) / (1 - dev)
		// Detector imperfection: occasional false alarms on normal
		// leaves and missed detections under the RAPs.
		switch {
		case anomalous && r.Float64() < cfg.FalseNegativeRate:
			leaf.Anomalous = false
		case !anomalous && r.Float64() < cfg.FalsePositiveRate:
			leaf.Anomalous = true
		default:
			leaf.Anomalous = anomalous
		}
	}
	return Case{Snapshot: snap, RAPs: raps}, nil
}

func validateRAPMD(cfg RAPMDConfig, nAttrs int) error {
	if cfg.MinRAPs < 1 || cfg.MaxRAPs < cfg.MinRAPs {
		return fmt.Errorf("inject: RAP count range [%d, %d] invalid", cfg.MinRAPs, cfg.MaxRAPs)
	}
	if cfg.MaxDim < 1 || cfg.MaxDim > nAttrs {
		return fmt.Errorf("inject: MaxDim %d out of [1, %d]", cfg.MaxDim, nAttrs)
	}
	if cfg.AnomDevLo <= cfg.NormDevHi {
		return fmt.Errorf("inject: anomalous range [%v, %v] overlaps normal range ending %v",
			cfg.AnomDevLo, cfg.AnomDevHi, cfg.NormDevHi)
	}
	if cfg.AnomDevHi >= 1 {
		return fmt.Errorf("inject: AnomDevHi %v must stay below 1 (Eq. 5 divides by 1-Dev)", cfg.AnomDevHi)
	}
	if cfg.NormDevLo > cfg.NormDevHi || cfg.AnomDevLo > cfg.AnomDevHi {
		return errors.New("inject: inverted deviation range")
	}
	if cfg.MinSupport < 1 {
		return errors.New("inject: MinSupport must be >= 1")
	}
	if cfg.MaxSupportShare < 0 || cfg.MaxSupportShare > 1 {
		return fmt.Errorf("inject: MaxSupportShare %v out of [0, 1]", cfg.MaxSupportShare)
	}
	if cfg.MaxScaleGap < 0 || (cfg.MaxScaleGap > 0 && cfg.MaxScaleGap < 1) {
		return fmt.Errorf("inject: MaxScaleGap %v, want 0 or >= 1", cfg.MaxScaleGap)
	}
	if bad := func(r float64) bool { return r < 0 || r >= 0.5 }; bad(cfg.FalsePositiveRate) || bad(cfg.FalseNegativeRate) {
		return fmt.Errorf("inject: label noise rates (%v, %v) out of [0, 0.5)",
			cfg.FalsePositiveRate, cfg.FalseNegativeRate)
	}
	if cfg.AttrReuseProb < 0 || cfg.AttrReuseProb > 1 {
		return fmt.Errorf("inject: AttrReuseProb %v out of [0, 1]", cfg.AttrReuseProb)
	}
	return nil
}

// DrawCaseRAPs draws one case's RAP set against the snapshot per the
// Randomness 1 parameters of cfg: a random count in [MinRAPs, MaxRAPs],
// random dimensions up to MaxDim, and the support/scale bounds. The RAPs
// are pairwise unrelated (no ancestor pairs). Exposed so alternative
// injection schemes — e.g. the derived-KPI corpus — can share the drawing
// logic.
func DrawCaseRAPs(r *rand.Rand, snap *kpi.Snapshot, cfg RAPMDConfig) ([]kpi.Combination, error) {
	if err := validateRAPMD(cfg, snap.Schema.NumAttributes()); err != nil {
		return nil, err
	}
	if snap.Len() == 0 {
		return nil, errors.New("inject: empty snapshot")
	}
	nRAPs := cfg.MinRAPs + r.Intn(cfg.MaxRAPs-cfg.MinRAPs+1)
	maxSupport := snap.Len()
	if cfg.MaxSupportShare > 0 {
		maxSupport = int(cfg.MaxSupportShare * float64(snap.Len()))
		if maxSupport < cfg.MinSupport {
			maxSupport = cfg.MinSupport
		}
	}
	return drawRAPs(r, snap, nRAPs, cfg, maxSupport)
}

// drawRAPs picks n distinct RAPs with adequate support such that no RAP is
// an ancestor of another (otherwise ground truth would be ambiguous under
// Definition 1) and, when MaxScaleGap is set, all RAPs of the case have
// supports within that ratio of each other.
func drawRAPs(r *rand.Rand, snap *kpi.Snapshot, n int, cfg RAPMDConfig, maxSupport int) ([]kpi.Combination, error) {
	schema := snap.Schema
	var (
		raps     []kpi.Combination
		supports []int
	)
	const maxTries = 200
	for len(raps) < n {
		ok := false
		for try := 0; try < maxTries; try++ {
			// Anchor the RAP on a random observed leaf so it always has
			// support in sparse snapshots.
			seedLeaf := snap.Leaves[r.Intn(len(snap.Leaves))].Combo
			rap := kpi.NewRoot(schema.NumAttributes())
			if len(raps) > 0 && r.Float64() < cfg.AttrReuseProb {
				// Same shape as the previous RAP, new elements.
				for _, a := range raps[len(raps)-1].Attrs() {
					rap[a] = seedLeaf[a]
				}
			} else {
				dim := 1 + r.Intn(cfg.MaxDim)
				perm := r.Perm(schema.NumAttributes())
				for _, a := range perm[:dim] {
					rap[a] = seedLeaf[a]
				}
			}
			if related(rap, raps) {
				continue
			}
			total, _ := snap.SupportCount(rap)
			if total < cfg.MinSupport || total > maxSupport {
				continue
			}
			if cfg.MaxScaleGap > 0 && !scaleCompatible(total, supports, cfg.MaxScaleGap) {
				continue
			}
			raps = append(raps, rap)
			supports = append(supports, total)
			ok = true
			break
		}
		if !ok {
			if len(raps) > 0 {
				return raps, nil // settle for fewer RAPs than drawn
			}
			return nil, errNoRAP
		}
	}
	return raps, nil
}

// scaleCompatible reports whether a new RAP support keeps the case's
// largest-to-smallest support ratio within gap.
func scaleCompatible(total int, supports []int, gap float64) bool {
	for _, s := range supports {
		lo, hi := total, s
		if lo > hi {
			lo, hi = hi, lo
		}
		if float64(hi) > gap*float64(lo) {
			return false
		}
	}
	return true
}

// related reports whether c duplicates or is ordered (ancestor/descendant)
// with any existing RAP.
func related(c kpi.Combination, raps []kpi.Combination) bool {
	for _, r := range raps {
		if r.Equal(c) || r.IsAncestorOf(c) || c.IsAncestorOf(r) {
			return true
		}
	}
	return false
}
