package inject

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/kpi"
)

// twoRAPCase builds a deterministic case by hand: two disjoint layer-1
// RAPs over the shared test background, both at a 0.6 relative drop.
func twoRAPCase(t *testing.T) Case {
	t.Helper()
	bg := background(t)
	s := bg.Schema
	raps := []kpi.Combination{
		kpi.MustParseCombination(s, "(a1, *, *, *)"),
		kpi.MustParseCombination(s, "(*, b3, *, *)"),
	}
	snap := bg.Clone()
	for i := range snap.Leaves {
		leaf := &snap.Leaves[i]
		for _, rap := range raps {
			if rap.Matches(leaf.Combo) {
				leaf.Actual = leaf.Forecast * 0.4
				leaf.Anomalous = true
				break
			}
		}
	}
	return Case{Snapshot: snap, RAPs: raps}
}

func TestApplyNoiseValidation(t *testing.T) {
	c := twoRAPCase(t)
	r := rand.New(rand.NewSource(1))
	bad := []NoiseConfig{
		{ForecastStd: -0.1},
		{ForecastStd: 1.5},
		{Imbalance: -0.1},
		{Imbalance: 1},
		{Dropout: -0.1},
		{Dropout: 0.95},
		{RelabelThreshold: -0.1},
		{RelabelThreshold: 1},
		{Eps: -1},
	}
	for i, cfg := range bad {
		if _, err := ApplyNoise(r, c, cfg); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
	if _, err := ApplyNoise(r, Case{}, NoiseConfig{ForecastStd: 0.1}); err == nil {
		t.Error("nil snapshot accepted")
	}
}

func TestApplyNoiseZeroIsIdentity(t *testing.T) {
	c := twoRAPCase(t)
	got, err := ApplyNoise(rand.New(rand.NewSource(1)), c, NoiseConfig{})
	if err != nil {
		t.Fatalf("ApplyNoise: %v", err)
	}
	if got.Snapshot != c.Snapshot {
		t.Error("identity config cloned the snapshot")
	}
}

func TestApplyNoiseDoesNotMutateInput(t *testing.T) {
	c := twoRAPCase(t)
	before := c.Snapshot.Clone()
	_, err := ApplyNoise(rand.New(rand.NewSource(7)), c, NoiseConfig{
		ForecastStd: 0.1, Imbalance: 0.5, Dropout: 0.3, RelabelThreshold: 0.095,
	})
	if err != nil {
		t.Fatalf("ApplyNoise: %v", err)
	}
	if !reflect.DeepEqual(before.Leaves, c.Snapshot.Leaves) {
		t.Fatal("input case mutated")
	}
}

func TestApplyNoiseImbalanceShrinksLaterRAPsOnly(t *testing.T) {
	c := twoRAPCase(t)
	got, err := ApplyNoise(rand.New(rand.NewSource(3)), c, NoiseConfig{Imbalance: 0.8})
	if err != nil {
		t.Fatalf("ApplyNoise: %v", err)
	}
	first, second := c.RAPs[0], c.RAPs[1]
	var shrunk int
	for i := range got.Snapshot.Leaves {
		leaf := got.Snapshot.Leaves[i]
		orig := c.Snapshot.Leaves[i]
		switch {
		case first.Matches(leaf.Combo):
			if leaf.Actual != orig.Actual {
				t.Fatalf("first RAP's leaf %d changed: %v -> %v", i, orig.Actual, leaf.Actual)
			}
		case second.Matches(leaf.Combo):
			// a' = f + (a-f)*s with s in [0.2, 1]: the drop shrinks,
			// never grows, and never crosses the forecast.
			if leaf.Actual < orig.Actual-1e-9 || leaf.Actual > leaf.Forecast+1e-9 {
				t.Fatalf("second RAP's leaf %d out of range: a=%v orig=%v f=%v",
					i, leaf.Actual, orig.Actual, leaf.Forecast)
			}
			if leaf.Actual > orig.Actual {
				shrunk++
			}
		default:
			if leaf.Actual != orig.Actual {
				t.Fatalf("normal leaf %d changed", i)
			}
		}
	}
	if shrunk == 0 {
		t.Fatal("Imbalance=0.8 shrank nothing")
	}
}

func TestApplyNoiseForecastNoisePerturbsForecastsOnly(t *testing.T) {
	c := twoRAPCase(t)
	got, err := ApplyNoise(rand.New(rand.NewSource(5)), c, NoiseConfig{ForecastStd: 0.05})
	if err != nil {
		t.Fatalf("ApplyNoise: %v", err)
	}
	var moved int
	for i := range got.Snapshot.Leaves {
		leaf := got.Snapshot.Leaves[i]
		orig := c.Snapshot.Leaves[i]
		if leaf.Actual != orig.Actual {
			t.Fatalf("leaf %d actual changed under forecast noise", i)
		}
		if leaf.Forecast < 0 {
			t.Fatalf("leaf %d forecast negative", i)
		}
		if leaf.Forecast != orig.Forecast {
			moved++
		}
	}
	if moved < c.Snapshot.Len()/2 {
		t.Fatalf("only %d/%d forecasts perturbed", moved, c.Snapshot.Len())
	}
}

func TestApplyNoiseRelabelMatchesThreshold(t *testing.T) {
	c := twoRAPCase(t)
	cfg := NoiseConfig{ForecastStd: 0.2, RelabelThreshold: 0.095}
	got, err := ApplyNoise(rand.New(rand.NewSource(11)), c, cfg)
	if err != nil {
		t.Fatalf("ApplyNoise: %v", err)
	}
	for i := range got.Snapshot.Leaves {
		leaf := got.Snapshot.Leaves[i]
		dev := math.Abs(leaf.Forecast-leaf.Actual) / (math.Abs(leaf.Forecast) + 1e-6)
		if want := dev >= cfg.RelabelThreshold; leaf.Anomalous != want {
			t.Fatalf("leaf %d label %v, dev %v vs threshold", i, leaf.Anomalous, dev)
		}
	}
}

func TestApplyNoiseDropoutKeepsRAPSupport(t *testing.T) {
	c := twoRAPCase(t)
	for _, p := range []float64{0.25, 0.9} {
		got, err := ApplyNoise(rand.New(rand.NewSource(13)), c, NoiseConfig{Dropout: p})
		if err != nil {
			t.Fatalf("Dropout %v: %v", p, err)
		}
		if got.Snapshot.Len() == 0 {
			t.Fatalf("Dropout %v emptied the snapshot", p)
		}
		if got.Snapshot.Len() >= c.Snapshot.Len() {
			t.Fatalf("Dropout %v removed nothing (%d leaves)", p, got.Snapshot.Len())
		}
		for _, rap := range got.RAPs {
			total, _ := got.Snapshot.SupportCount(rap)
			if total == 0 {
				t.Fatalf("Dropout %v starved RAP %s", p, rap.Format(c.Snapshot.Schema))
			}
		}
	}
}

// TestApplyNoiseDeterministicPerSeed pins that a degraded case is a pure
// function of the seed: same seed, same case, bit-identical output.
func TestApplyNoiseDeterministicPerSeed(t *testing.T) {
	c := twoRAPCase(t)
	cfg := NoiseConfig{ForecastStd: 0.05, Imbalance: 0.6, Dropout: 0.25, RelabelThreshold: 0.095}
	a, err := ApplyNoise(rand.New(rand.NewSource(99)), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ApplyNoise(rand.New(rand.NewSource(99)), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Snapshot.Leaves, b.Snapshot.Leaves) {
		t.Fatal("same seed produced different degraded snapshots")
	}
}

// TestApplyNoiseComposesWithBothSchemes runs the full inject→degrade
// composition for RAPMD and Squeeze injection.
func TestApplyNoiseComposesWithBothSchemes(t *testing.T) {
	bg := background(t)
	cfg := NoiseConfig{ForecastStd: 0.025, Imbalance: 0.4, Dropout: 0.1, RelabelThreshold: 0.095}

	r := rand.New(rand.NewSource(21))
	rapmd, err := InjectRAPMD(r, bg, DefaultRAPMDConfig())
	if err != nil {
		t.Fatalf("InjectRAPMD: %v", err)
	}
	degraded, err := ApplyNoise(r, rapmd, cfg)
	if err != nil {
		t.Fatalf("ApplyNoise(RAPMD): %v", err)
	}
	if len(degraded.RAPs) != len(rapmd.RAPs) {
		t.Fatal("ground truth changed under noise")
	}

	sq, err := InjectSqueeze(r, bg, DefaultSqueezeConfig(2, 2))
	if err != nil {
		t.Fatalf("InjectSqueeze: %v", err)
	}
	degraded, err = ApplyNoise(r, sq, cfg)
	if err != nil {
		t.Fatalf("ApplyNoise(Squeeze): %v", err)
	}
	for _, rap := range degraded.RAPs {
		if total, _ := degraded.Snapshot.SupportCount(rap); total == 0 {
			t.Fatal("squeeze RAP starved by noise")
		}
	}
}
