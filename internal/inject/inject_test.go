package inject

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kpi"
)

func background(t *testing.T) *kpi.Snapshot {
	t.Helper()
	s := kpi.MustSchema(
		kpi.Attribute{Name: "A", Values: []string{"a1", "a2", "a3", "a4", "a5"}},
		kpi.Attribute{Name: "B", Values: []string{"b1", "b2", "b3"}},
		kpi.Attribute{Name: "C", Values: []string{"c1", "c2", "c3"}},
		kpi.Attribute{Name: "D", Values: []string{"d1", "d2"}},
	)
	r := rand.New(rand.NewSource(77))
	var leaves []kpi.Leaf
	for a := int32(0); a < 5; a++ {
		for b := int32(0); b < 3; b++ {
			for c := int32(0); c < 3; c++ {
				for d := int32(0); d < 2; d++ {
					v := 50 + 200*r.Float64()
					leaves = append(leaves, kpi.Leaf{
						Combo:    kpi.Combination{a, b, c, d},
						Actual:   v,
						Forecast: v,
					})
				}
			}
		}
	}
	snap, err := kpi.NewSnapshot(s, leaves)
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	return snap
}

// noiselessRAPMDConfig disables detector noise so label/scope identities
// can be asserted exactly.
func noiselessRAPMDConfig() RAPMDConfig {
	cfg := DefaultRAPMDConfig()
	cfg.FalsePositiveRate = 0
	cfg.FalseNegativeRate = 0
	return cfg
}

func TestInjectRAPMDGroundTruthConsistency(t *testing.T) {
	bg := background(t)
	r := rand.New(rand.NewSource(1))
	cfg := noiselessRAPMDConfig()
	for trial := 0; trial < 40; trial++ {
		c, err := InjectRAPMD(r, bg, cfg)
		if err != nil {
			t.Fatalf("InjectRAPMD: %v", err)
		}
		if len(c.RAPs) < 1 || len(c.RAPs) > 3 {
			t.Fatalf("got %d RAPs, want 1-3", len(c.RAPs))
		}
		// A leaf is labeled anomalous iff it is under some RAP.
		for _, leaf := range c.Snapshot.Leaves {
			under := false
			for _, rap := range c.RAPs {
				if rap.Matches(leaf.Combo) {
					under = true
					break
				}
			}
			if leaf.Anomalous != under {
				t.Fatalf("leaf %v label %v, under-RAP %v", leaf.Combo, leaf.Anomalous, under)
			}
		}
	}
}

func TestInjectRAPMDDevRanges(t *testing.T) {
	bg := background(t)
	r := rand.New(rand.NewSource(2))
	cfg := noiselessRAPMDConfig()
	c, err := InjectRAPMD(r, bg, cfg)
	if err != nil {
		t.Fatalf("InjectRAPMD: %v", err)
	}
	for _, leaf := range c.Snapshot.Leaves {
		// Eq. 4 recovers the drawn Dev.
		dev := (leaf.Forecast - leaf.Actual) / (leaf.Forecast + cfg.Eps)
		if leaf.Anomalous {
			if dev < cfg.AnomDevLo-1e-9 || dev > cfg.AnomDevHi+1e-9 {
				t.Fatalf("anomalous leaf Dev = %v outside [%v, %v]", dev, cfg.AnomDevLo, cfg.AnomDevHi)
			}
		} else {
			if dev < cfg.NormDevLo-1e-9 || dev > cfg.NormDevHi+1e-9 {
				t.Fatalf("normal leaf Dev = %v outside [%v, %v]", dev, cfg.NormDevLo, cfg.NormDevHi)
			}
		}
	}
}

func TestInjectRAPMDPreservesActuals(t *testing.T) {
	bg := background(t)
	r := rand.New(rand.NewSource(3))
	c, err := InjectRAPMD(r, bg, DefaultRAPMDConfig())
	if err != nil {
		t.Fatalf("InjectRAPMD: %v", err)
	}
	for i := range bg.Leaves {
		if c.Snapshot.Leaves[i].Actual != bg.Leaves[i].Actual {
			t.Fatal("injection modified the observed actual values")
		}
	}
	// And the background itself is untouched.
	for i := range bg.Leaves {
		if bg.Leaves[i].Anomalous {
			t.Fatal("injection mutated the background snapshot")
		}
	}
}

func TestInjectRAPMDRAPsAreAntichainWithSupport(t *testing.T) {
	bg := background(t)
	r := rand.New(rand.NewSource(4))
	cfg := DefaultRAPMDConfig()
	for trial := 0; trial < 30; trial++ {
		c, err := InjectRAPMD(r, bg, cfg)
		if err != nil {
			t.Fatalf("InjectRAPMD: %v", err)
		}
		for i := range c.RAPs {
			if total, _ := c.Snapshot.SupportCount(c.RAPs[i]); total < cfg.MinSupport {
				t.Fatalf("RAP %v has support %d < %d", c.RAPs[i], total, cfg.MinSupport)
			}
			if dim := c.RAPs[i].Layer(); dim < 1 || dim > cfg.MaxDim {
				t.Fatalf("RAP %v has dimension %d", c.RAPs[i], dim)
			}
			for j := range c.RAPs {
				if i != j && (c.RAPs[i].Equal(c.RAPs[j]) || c.RAPs[i].IsAncestorOf(c.RAPs[j])) {
					t.Fatalf("RAPs %v and %v are related", c.RAPs[i], c.RAPs[j])
				}
			}
		}
	}
}

func TestInjectRAPMDValidation(t *testing.T) {
	bg := background(t)
	r := rand.New(rand.NewSource(5))
	bad := []RAPMDConfig{
		func() RAPMDConfig { c := DefaultRAPMDConfig(); c.MinRAPs = 0; return c }(),
		func() RAPMDConfig { c := DefaultRAPMDConfig(); c.FalsePositiveRate = -1; return c }(),
		func() RAPMDConfig { c := DefaultRAPMDConfig(); c.FalseNegativeRate = 0.7; return c }(),
		func() RAPMDConfig { c := DefaultRAPMDConfig(); c.MaxRAPs = 0; return c }(),
		func() RAPMDConfig { c := DefaultRAPMDConfig(); c.MaxDim = 9; return c }(),
		func() RAPMDConfig { c := DefaultRAPMDConfig(); c.AnomDevLo = 0.05; return c }(),
		func() RAPMDConfig { c := DefaultRAPMDConfig(); c.AnomDevHi = 1.0; return c }(),
		func() RAPMDConfig { c := DefaultRAPMDConfig(); c.MinSupport = 0; return c }(),
	}
	for i, cfg := range bad {
		if _, err := InjectRAPMD(r, bg, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	s := kpi.MustSchema(kpi.Attribute{Name: "A", Values: []string{"x"}})
	empty, _ := kpi.NewSnapshot(s, nil)
	cfg := DefaultRAPMDConfig()
	cfg.MaxDim = 1
	if _, err := InjectRAPMD(r, empty, cfg); err == nil {
		t.Error("empty background accepted")
	}
}

func TestInjectSqueezeVerticalAssumption(t *testing.T) {
	bg := background(t)
	r := rand.New(rand.NewSource(6))
	cfg := DefaultSqueezeConfig(2, 2)
	c, err := InjectSqueeze(r, bg, cfg)
	if err != nil {
		t.Fatalf("InjectSqueeze: %v", err)
	}
	if len(c.RAPs) != 2 {
		t.Fatalf("got %d RAPs, want 2", len(c.RAPs))
	}
	// All RAPs in the same cuboid.
	attrsOf := func(c kpi.Combination) string {
		out := ""
		for _, a := range c.Attrs() {
			out += string(rune('A' + a))
		}
		return out
	}
	if attrsOf(c.RAPs[0]) != attrsOf(c.RAPs[1]) {
		t.Errorf("RAPs in different cuboids: %v vs %v", c.RAPs[0], c.RAPs[1])
	}
	// Same relative deviation for every anomalous leaf (B0: exactly).
	var dev float64
	first := true
	for _, leaf := range c.Snapshot.Leaves {
		if !leaf.Anomalous {
			if leaf.Actual != leaf.Forecast {
				t.Fatal("normal leaf perturbed in B0 setting")
			}
			continue
		}
		d := (leaf.Forecast - leaf.Actual) / leaf.Forecast
		if first {
			dev = d
			first = false
		} else if math.Abs(d-dev) > 1e-9 {
			t.Fatalf("vertical assumption violated: %v vs %v", d, dev)
		}
	}
	if first {
		t.Fatal("no anomalous leaves injected")
	}
	if dev < cfg.MagnitudeLo || dev > cfg.MagnitudeHi {
		t.Errorf("magnitude %v outside [%v, %v]", dev, cfg.MagnitudeLo, cfg.MagnitudeHi)
	}
}

func TestInjectSqueezeHorizontalAssumption(t *testing.T) {
	// Across cases, magnitudes differ (almost surely).
	bg := background(t)
	r := rand.New(rand.NewSource(7))
	cfg := DefaultSqueezeConfig(1, 1)
	mags := make(map[float64]struct{})
	for i := 0; i < 5; i++ {
		c, err := InjectSqueeze(r, bg, cfg)
		if err != nil {
			t.Fatalf("InjectSqueeze: %v", err)
		}
		for _, leaf := range c.Snapshot.Leaves {
			if leaf.Anomalous {
				mags[math.Round(1e6*(leaf.Forecast-leaf.Actual)/leaf.Forecast)/1e6] = struct{}{}
				break
			}
		}
	}
	if len(mags) < 4 {
		t.Errorf("only %d distinct magnitudes across 5 cases", len(mags))
	}
}

func TestInjectSqueezeLabelsMatchThreshold(t *testing.T) {
	bg := background(t)
	r := rand.New(rand.NewSource(8))
	cfg := DefaultSqueezeConfig(2, 3)
	c, err := InjectSqueeze(r, bg, cfg)
	if err != nil {
		t.Fatalf("InjectSqueeze: %v", err)
	}
	for _, leaf := range c.Snapshot.Leaves {
		dev := 0.0
		if leaf.Forecast > 0 {
			dev = math.Abs(leaf.Forecast-leaf.Actual) / leaf.Forecast
		}
		want := dev >= cfg.AnomalyThreshold
		if leaf.Anomalous != want {
			t.Fatalf("leaf label %v, deviation %v, threshold %v", leaf.Anomalous, dev, cfg.AnomalyThreshold)
		}
	}
}

func TestInjectSqueezeValidation(t *testing.T) {
	bg := background(t)
	r := rand.New(rand.NewSource(9))
	bad := []SqueezeConfig{
		func() SqueezeConfig { c := DefaultSqueezeConfig(0, 1); return c }(),
		func() SqueezeConfig { c := DefaultSqueezeConfig(9, 1); return c }(),
		func() SqueezeConfig { c := DefaultSqueezeConfig(1, 0); return c }(),
		func() SqueezeConfig { c := DefaultSqueezeConfig(1, 1); c.MagnitudeLo = 0; return c }(),
		func() SqueezeConfig { c := DefaultSqueezeConfig(1, 1); c.MagnitudeHi = 1; return c }(),
		func() SqueezeConfig { c := DefaultSqueezeConfig(1, 1); c.MagnitudeLo = 0.05; return c }(),
	}
	for i, cfg := range bad {
		if _, err := InjectSqueeze(r, bg, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestInjectSqueezeNoise(t *testing.T) {
	bg := background(t)
	r := rand.New(rand.NewSource(10))
	cfg := DefaultSqueezeConfig(1, 1)
	cfg.NoiseStd = 0.02
	c, err := InjectSqueeze(r, bg, cfg)
	if err != nil {
		t.Fatalf("InjectSqueeze: %v", err)
	}
	perturbedNormals := 0
	for _, leaf := range c.Snapshot.Leaves {
		if !leaf.Anomalous && leaf.Actual != leaf.Forecast {
			perturbedNormals++
		}
	}
	if perturbedNormals == 0 {
		t.Error("noise setting left all normal leaves exact")
	}
}

func TestInjectRAPMDLabelNoiseRates(t *testing.T) {
	bg := background(t)
	r := rand.New(rand.NewSource(12))
	cfg := DefaultRAPMDConfig()
	cfg.FalsePositiveRate = 0.1
	cfg.FalseNegativeRate = 0.1
	var flippedFP, flippedFN, normals, anoms int
	for trial := 0; trial < 50; trial++ {
		c, err := InjectRAPMD(r, bg, cfg)
		if err != nil {
			t.Fatalf("InjectRAPMD: %v", err)
		}
		for _, leaf := range c.Snapshot.Leaves {
			under := false
			for _, rap := range c.RAPs {
				if rap.Matches(leaf.Combo) {
					under = true
					break
				}
			}
			if under {
				anoms++
				if !leaf.Anomalous {
					flippedFN++
				}
			} else {
				normals++
				if leaf.Anomalous {
					flippedFP++
				}
			}
		}
	}
	fpRate := float64(flippedFP) / float64(normals)
	fnRate := float64(flippedFN) / float64(anoms)
	if fpRate < 0.05 || fpRate > 0.15 {
		t.Errorf("false positive rate = %v, want near 0.1", fpRate)
	}
	if fnRate < 0.05 || fnRate > 0.15 {
		t.Errorf("false negative rate = %v, want near 0.1", fnRate)
	}
}

func TestInjectDeterministicPerSeed(t *testing.T) {
	bg := background(t)
	a, err := InjectRAPMD(rand.New(rand.NewSource(42)), bg, DefaultRAPMDConfig())
	if err != nil {
		t.Fatalf("InjectRAPMD: %v", err)
	}
	b, err := InjectRAPMD(rand.New(rand.NewSource(42)), bg, DefaultRAPMDConfig())
	if err != nil {
		t.Fatalf("InjectRAPMD: %v", err)
	}
	if len(a.RAPs) != len(b.RAPs) {
		t.Fatal("seeded injection not deterministic")
	}
	for i := range a.RAPs {
		if !a.RAPs[i].Equal(b.RAPs[i]) {
			t.Fatal("seeded injection drew different RAPs")
		}
	}
}
