package inject

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/kpi"
)

// NoiseConfig describes the PSqueeze-style robustness perturbations
// ("Generic and Robust Root Cause Localization for Multi-Dimensional Data
// in Online Service Systems", Section V) applied on top of an injected
// case. It composes with both injection schemes: inject first (RAPMD or
// Squeeze), then ApplyNoise degrades the case while the ground-truth RAPs
// stay fixed — robustness is measured as localization quality against the
// original truth under the degraded observation.
//
// The zero value is the identity: no noise, no imbalance, no dropout.
type NoiseConfig struct {
	// ForecastStd adds relative Gaussian noise to every leaf's forecast,
	// f' = f * (1 + N(0, ForecastStd)), modeling an imperfect predictor.
	// PSqueeze's F-corpora sweep this axis.
	ForecastStd float64
	// Imbalance shrinks the anomaly magnitude of every co-injected RAP
	// after the first by an independent factor drawn from
	// [1-Imbalance, 1]: a' = f + (a - f) * s. Both existing schemes give
	// one case's RAPs comparable deviations; real co-occurring failures
	// do not, and threshold-partition methods lose the weak RAP first.
	Imbalance float64
	// Dropout removes each leaf independently with this probability,
	// modeling missing fine-grained records (sparse KPIs are the
	// paper's motivating CDN pathology). Every RAP is guaranteed to
	// keep at least one observed descendant so ground truth never
	// becomes an empty scope.
	Dropout float64
	// RelabelThreshold re-runs the relative-deviation detector after the
	// perturbations so labels reflect what a detector would now see:
	// |f - a| / (|f| + Eps) >= RelabelThreshold. 0 keeps the original
	// labels.
	RelabelThreshold float64
	// Eps guards the relabel division. 0 means 1e-6.
	Eps float64
}

// IsZero reports whether the config is the identity perturbation.
func (c NoiseConfig) IsZero() bool {
	return c.ForecastStd == 0 && c.Imbalance == 0 && c.Dropout == 0 && c.RelabelThreshold == 0
}

func (c NoiseConfig) validate() error {
	if c.ForecastStd < 0 || c.ForecastStd > 1 {
		return fmt.Errorf("inject: ForecastStd %v out of [0, 1]", c.ForecastStd)
	}
	if c.Imbalance < 0 || c.Imbalance >= 1 {
		return fmt.Errorf("inject: Imbalance %v out of [0, 1)", c.Imbalance)
	}
	if c.Dropout < 0 || c.Dropout > 0.9 {
		return fmt.Errorf("inject: Dropout %v out of [0, 0.9]", c.Dropout)
	}
	if c.RelabelThreshold < 0 || c.RelabelThreshold >= 1 {
		return fmt.Errorf("inject: RelabelThreshold %v out of [0, 1)", c.RelabelThreshold)
	}
	if c.Eps < 0 {
		return fmt.Errorf("inject: Eps %v negative", c.Eps)
	}
	return nil
}

// ApplyNoise returns a degraded copy of the case (the input is never
// mutated): magnitude imbalance first, then forecast noise, then optional
// relabeling, then leaf dropout. The draw sequence is a fixed function of
// the config and the case shape, so a caller seeding r per case keeps
// corpora reproducible.
func ApplyNoise(r *rand.Rand, c Case, cfg NoiseConfig) (Case, error) {
	if err := cfg.validate(); err != nil {
		return Case{}, err
	}
	if c.Snapshot == nil {
		return Case{}, errors.New("inject: ApplyNoise on nil snapshot")
	}
	if cfg.IsZero() {
		return c, nil
	}
	eps := cfg.Eps
	if eps == 0 {
		eps = 1e-6
	}
	snap := c.Snapshot.Clone()

	// Magnitude imbalance: the first RAP keeps its injected magnitude,
	// every later RAP's deviation shrinks by an independent factor. A
	// leaf under several RAPs follows the first match, like both
	// injection schemes do.
	if cfg.Imbalance > 0 && len(c.RAPs) > 1 {
		scale := make([]float64, len(c.RAPs))
		scale[0] = 1
		for j := 1; j < len(scale); j++ {
			scale[j] = 1 - cfg.Imbalance*r.Float64()
		}
		for i := range snap.Leaves {
			leaf := &snap.Leaves[i]
			for j, rap := range c.RAPs {
				if rap.Matches(leaf.Combo) {
					if scale[j] != 1 {
						leaf.Actual = leaf.Forecast + (leaf.Actual-leaf.Forecast)*scale[j]
					}
					break
				}
			}
		}
	}

	if cfg.ForecastStd > 0 {
		for i := range snap.Leaves {
			leaf := &snap.Leaves[i]
			leaf.Forecast *= 1 + cfg.ForecastStd*r.NormFloat64()
			if leaf.Forecast < 0 {
				leaf.Forecast = 0
			}
		}
	}

	if cfg.RelabelThreshold > 0 {
		for i := range snap.Leaves {
			leaf := &snap.Leaves[i]
			dev := math.Abs(leaf.Forecast-leaf.Actual) / (math.Abs(leaf.Forecast) + eps)
			leaf.Anomalous = dev >= cfg.RelabelThreshold
		}
	}

	if cfg.Dropout > 0 {
		kept := dropLeaves(r, snap.Leaves, c.RAPs, cfg.Dropout)
		rebuilt, err := kpi.NewSnapshot(snap.Schema, kept)
		if err != nil {
			return Case{}, fmt.Errorf("inject: rebuilding after dropout: %w", err)
		}
		snap = rebuilt
	} else {
		snap.InvalidateLabels()
	}

	return Case{Snapshot: snap, RAPs: c.RAPs}, nil
}

// dropLeaves removes leaves with probability p but keeps ground truth
// non-degenerate: every RAP retains at least one observed descendant, and
// the snapshot at least one leaf. The resurrection picks each starved
// RAP's first matching leaf in snapshot order, independent of the drop
// draws, so the guard is deterministic given the draw sequence.
func dropLeaves(r *rand.Rand, leaves []kpi.Leaf, raps []kpi.Combination, p float64) []kpi.Leaf {
	drop := make([]bool, len(leaves))
	for i := range leaves {
		drop[i] = r.Float64() < p
	}
	for _, rap := range raps {
		alive := false
		first := -1
		for i := range leaves {
			if !rap.Matches(leaves[i].Combo) {
				continue
			}
			if first < 0 {
				first = i
			}
			if !drop[i] {
				alive = true
				break
			}
		}
		if !alive && first >= 0 {
			drop[first] = false
		}
	}
	kept := make([]kpi.Leaf, 0, len(leaves))
	for i := range leaves {
		if !drop[i] {
			kept = append(kept, leaves[i])
		}
	}
	if len(kept) == 0 && len(leaves) > 0 {
		kept = append(kept, leaves[0])
	}
	return kept
}
