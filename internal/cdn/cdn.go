// Package cdn simulates the ISP-operated CDN the RAPMiner paper studies. It
// stands in for the proprietary production traces: the paper's RAPMD
// dataset starts from 35 days of minute-granularity fundamental KPIs of the
// most fine-grained attribute combinations of a real CDN; this simulator
// produces the same shape of data — a Table I schema (33 locations, 4
// access types, 4 OS, 20 websites), heavy-tailed per-leaf traffic volumes,
// diurnal/weekly seasonality, sparse leaves, and both fundamental
// (out-flow, requests, cache hits) and derived (hit ratio) KPIs.
package cdn

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/kpi"
	"repro/internal/timeseries"
)

// DefaultSchema returns the Table I attribute space of the paper's CDN:
// Location (33), Access Type (4), OS (4), Website (20) — 10560 leaves.
func DefaultSchema() *kpi.Schema {
	locations := make([]string, 33)
	for i := range locations {
		locations[i] = fmt.Sprintf("L%d", i+1)
	}
	websites := make([]string, 20)
	for i := range websites {
		websites[i] = fmt.Sprintf("Site%d", i+1)
	}
	return kpi.MustSchema(
		kpi.Attribute{Name: "Location", Values: locations},
		kpi.Attribute{Name: "AccessType", Values: []string{"Wireless", "Fixed", "Cellular", "Dedicated"}},
		kpi.Attribute{Name: "OS", Values: []string{"Android", "IOS", "Windows", "Other"}},
		kpi.Attribute{Name: "Website", Values: websites},
	)
}

// Config parameterizes a Simulator.
type Config struct {
	// Schema defaults to DefaultSchema when nil.
	Schema *kpi.Schema
	// Seed fixes the per-leaf weights and the noise stream.
	Seed int64
	// BaseTraffic is the mean out-flow of the whole CDN at the seasonal
	// baseline (arbitrary units, e.g. Mbit/min).
	BaseTraffic float64
	// Sparsity is the fraction of leaves carrying no traffic at all —
	// the paper notes that fine-grained CDN KPIs "are usually sparse".
	Sparsity float64
	// NoiseStd is the multiplicative observation noise per leaf sample.
	NoiseStd float64
	// CacheHitRatio is the mean cache hit ratio of edge nodes.
	CacheHitRatio float64
}

// DefaultConfig returns a CDN of plausible scale: 1 Tbit/min aggregate
// traffic, 5% silent leaves, 3% per-sample noise.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		BaseTraffic:   1e6,
		Sparsity:      0.05,
		NoiseStd:      0.03,
		CacheHitRatio: 0.92,
	}
}

// Simulator produces KPI snapshots and tables of the simulated CDN at any
// timestamp, deterministically for a given seed.
type Simulator struct {
	schema  *kpi.Schema
	cfg     Config
	profile timeseries.SeasonalProfile
	// combos and weights describe the active (non-silent) leaves; a
	// weight is the leaf's share of the CDN's aggregate traffic.
	combos  []kpi.Combination
	weights []float64
	// phase shifts the diurnal peak per location to mimic geography.
	phase []float64
}

// NewSimulator validates the configuration and draws the static leaf
// population (weights, sparsity mask, per-location phase).
func NewSimulator(cfg Config) (*Simulator, error) {
	if cfg.BaseTraffic <= 0 {
		return nil, fmt.Errorf("cdn: BaseTraffic %v, want > 0", cfg.BaseTraffic)
	}
	if cfg.Sparsity < 0 || cfg.Sparsity >= 1 {
		return nil, fmt.Errorf("cdn: Sparsity %v out of [0, 1)", cfg.Sparsity)
	}
	if cfg.NoiseStd < 0 {
		return nil, fmt.Errorf("cdn: NoiseStd %v, want >= 0", cfg.NoiseStd)
	}
	if cfg.CacheHitRatio <= 0 || cfg.CacheHitRatio > 1 {
		return nil, fmt.Errorf("cdn: CacheHitRatio %v out of (0, 1]", cfg.CacheHitRatio)
	}
	schema := cfg.Schema
	if schema == nil {
		schema = DefaultSchema()
	}

	s := &Simulator{
		schema:  schema,
		cfg:     cfg,
		profile: timeseries.DefaultProfile(1),
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	// Heavy-tailed popularity per attribute element (Zipf-ish): the
	// weight of a leaf is the product of its elements' popularities, so
	// popular sites on popular locations dominate, like real CDNs.
	elemPop := make([][]float64, schema.NumAttributes())
	for a := range elemPop {
		card := schema.Cardinality(a)
		elemPop[a] = make([]float64, card)
		for e := range elemPop[a] {
			// Zipf over a random permutation plus log-normal jitter.
			rank := float64(e%card) + 1
			elemPop[a][e] = math.Exp(0.5*r.NormFloat64()) / rank
		}
		r.Shuffle(card, func(i, j int) {
			elemPop[a][i], elemPop[a][j] = elemPop[a][j], elemPop[a][i]
		})
	}

	s.phase = make([]float64, schema.Cardinality(0))
	for i := range s.phase {
		s.phase[i] = 2 * (r.Float64() - 0.5) // +/- 1 hour
	}

	var totalWeight float64
	forEachLeaf(schema, func(c kpi.Combination) {
		if r.Float64() < cfg.Sparsity {
			return // silent leaf
		}
		w := 1.0
		for a, code := range c {
			w *= elemPop[a][code]
		}
		s.combos = append(s.combos, c.Clone())
		s.weights = append(s.weights, w)
		totalWeight += w
	})
	for i := range s.weights {
		s.weights[i] /= totalWeight
	}
	return s, nil
}

// Schema returns the simulator's attribute space.
func (s *Simulator) Schema() *kpi.Schema { return s.schema }

// NumActiveLeaves returns the number of leaves carrying traffic.
func (s *Simulator) NumActiveLeaves() int { return len(s.combos) }

// expected returns the noiseless out-flow of leaf i at ts.
func (s *Simulator) expected(i int, ts time.Time) float64 {
	shifted := ts.Add(time.Duration(s.phase[s.combos[i][0]] * float64(time.Hour)))
	return s.cfg.BaseTraffic * s.weights[i] * s.profile.ValueAt(shifted)
}

// SnapshotAt returns the out-flow snapshot at ts: Actual carries the
// simulated (noisy) observation and Forecast the noiseless seasonal
// expectation, standing in for the external prediction method the paper
// assumes. Labels start false. The result is deterministic in (seed, ts).
func (s *Simulator) SnapshotAt(ts time.Time) (*kpi.Snapshot, error) {
	r := rand.New(rand.NewSource(s.cfg.Seed ^ ts.Unix()))
	leaves := make([]kpi.Leaf, len(s.combos))
	for i := range s.combos {
		f := s.expected(i, ts)
		v := f * (1 + s.cfg.NoiseStd*r.NormFloat64())
		if v < 0 {
			v = 0
		}
		leaves[i] = kpi.Leaf{Combo: s.combos[i], Actual: v, Forecast: f}
	}
	return kpi.NewSnapshot(s.schema, leaves)
}

// TableAt returns the fundamental KPIs at ts (out_flow, requests, hits)
// plus the derived hit_ratio column, demonstrating the fundamental/derived
// KPI pipeline of Section III-A.
func (s *Simulator) TableAt(ts time.Time) (*kpi.Table, error) {
	r := rand.New(rand.NewSource(s.cfg.Seed ^ ts.Unix() ^ 0x5bd1e995))
	tbl, err := kpi.NewTable(s.schema, s.combos)
	if err != nil {
		return nil, err
	}
	n := len(s.combos)
	outFlow := make([]float64, n)
	requests := make([]float64, n)
	hits := make([]float64, n)
	const meanObjectKB = 512
	for i := range s.combos {
		flow := s.expected(i, ts) * (1 + s.cfg.NoiseStd*r.NormFloat64())
		if flow < 0 {
			flow = 0
		}
		outFlow[i] = flow
		requests[i] = math.Ceil(flow / meanObjectKB * 1024)
		hitRatio := s.cfg.CacheHitRatio + 0.02*r.NormFloat64()
		hitRatio = math.Max(0, math.Min(1, hitRatio))
		hits[i] = math.Round(requests[i] * hitRatio)
	}
	for name, col := range map[string][]float64{
		"out_flow": outFlow,
		"requests": requests,
		"hits":     hits,
	} {
		if err := tbl.SetColumn(name, col); err != nil {
			return nil, err
		}
	}
	err = tbl.Derive("hit_ratio", []string{"hits", "requests"}, func(v []float64) float64 {
		if v[1] == 0 {
			return 0
		}
		return v[0] / v[1]
	})
	if err != nil {
		return nil, err
	}
	return tbl, nil
}

// forEachLeaf enumerates the full Cartesian product of the schema in
// lexicographic code order.
func forEachLeaf(s *kpi.Schema, fn func(kpi.Combination)) {
	n := s.NumAttributes()
	combo := make(kpi.Combination, n)
	var rec func(depth int)
	rec = func(depth int) {
		if depth == n {
			fn(combo)
			return
		}
		for v := int32(0); v < int32(s.Cardinality(depth)); v++ {
			combo[depth] = v
			rec(depth + 1)
		}
	}
	rec(0)
}
