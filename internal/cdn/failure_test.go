package cdn

import (
	"math/rand"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/kpi"
	"repro/internal/rapminer"
)

func TestFailureKindScopes(t *testing.T) {
	sim, err := NewSimulator(smallConfig(1))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	r := rand.New(rand.NewSource(2))
	tests := []struct {
		kind FailureKind
		dims int
	}{
		{NodeOutage, 1},
		{SiteOutage, 1},
		{RegionalSiteFailure, 2},
		{AccessDegradation, 2},
		{ClientBug, 2},
	}
	for _, tt := range tests {
		t.Run(tt.kind.String(), func(t *testing.T) {
			f, err := sim.DrawFailure(r, tt.kind)
			if err != nil {
				t.Fatalf("DrawFailure: %v", err)
			}
			if got := f.Scope.Layer(); got != tt.dims {
				t.Errorf("scope dims = %d, want %d", got, tt.dims)
			}
			if f.Severity < 0.3 || f.Severity > 0.95 {
				t.Errorf("severity = %v", f.Severity)
			}
			if f.Format(sim.Schema()) == "" {
				t.Error("empty Format")
			}
		})
	}
	if _, err := sim.DrawFailure(r, FailureKind(99)); err == nil {
		t.Error("unknown kind accepted")
	}
	if FailureKind(99).String() == "" {
		t.Error("unknown kind has empty name")
	}
}

func TestApplyFailuresDropsScopedTraffic(t *testing.T) {
	sim, err := NewSimulator(smallConfig(3))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	snap, err := sim.SnapshotAt(testTime)
	if err != nil {
		t.Fatalf("SnapshotAt: %v", err)
	}
	f := Failure{
		Kind:     NodeOutage,
		Scope:    kpi.MustParseCombination(sim.Schema(), "(L2, *, *, *)"),
		Severity: 0.5,
	}
	before := snap.Clone()
	if err := ApplyFailures(snap, []Failure{f}); err != nil {
		t.Fatalf("ApplyFailures: %v", err)
	}
	for i := range snap.Leaves {
		in := f.Scope.Matches(snap.Leaves[i].Combo)
		want := before.Leaves[i].Actual
		if in {
			want *= 0.5
		}
		if snap.Leaves[i].Actual != want {
			t.Fatalf("leaf %d: actual %v, want %v (in scope: %v)",
				i, snap.Leaves[i].Actual, want, in)
		}
		if snap.Leaves[i].Forecast != before.Leaves[i].Forecast {
			t.Fatal("ApplyFailures touched forecasts")
		}
	}
}

func TestApplyFailuresValidation(t *testing.T) {
	sim, err := NewSimulator(smallConfig(4))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	snap, err := sim.SnapshotAt(testTime)
	if err != nil {
		t.Fatalf("SnapshotAt: %v", err)
	}
	bad := Failure{Scope: kpi.NewRoot(4), Severity: 1.5}
	if err := ApplyFailures(snap, []Failure{bad}); err == nil {
		t.Error("severity > 1 accepted")
	}
	badScope := Failure{Scope: kpi.NewRoot(2), Severity: 0.5}
	if err := ApplyFailures(snap, []Failure{badScope}); err == nil {
		t.Error("wrong-arity scope accepted")
	}
}

func TestScenarioScopesAreUnrelated(t *testing.T) {
	sim, err := NewSimulator(DefaultConfig(11))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	r := rand.New(rand.NewSource(12))
	failures, err := sim.Scenario(r, NodeOutage, SiteOutage, ClientBug)
	if err != nil {
		t.Fatalf("Scenario: %v", err)
	}
	if len(failures) != 3 {
		t.Fatalf("got %d failures, want 3", len(failures))
	}
	for i := range failures {
		for j := range failures {
			if i == j {
				continue
			}
			a, b := failures[i].Scope, failures[j].Scope
			if a.Equal(b) || a.IsAncestorOf(b) {
				t.Errorf("scopes %v and %v are related", a, b)
			}
		}
	}
}

func TestScenarioEndToEndLocalization(t *testing.T) {
	// The failure catalog feeds the standard pipeline: apply a regional
	// site failure, detect, and RAPMiner recovers exactly its scope.
	sim, err := NewSimulator(DefaultConfig(21))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	snap, err := sim.SnapshotAt(testTime)
	if err != nil {
		t.Fatalf("SnapshotAt: %v", err)
	}
	r := rand.New(rand.NewSource(22))
	failures, err := sim.Scenario(r, RegionalSiteFailure)
	if err != nil {
		t.Fatalf("Scenario: %v", err)
	}
	if err := ApplyFailures(snap, failures); err != nil {
		t.Fatalf("ApplyFailures: %v", err)
	}
	anomaly.Label(snap, anomaly.DefaultRelativeDeviation())
	miner := rapminer.MustNew(rapminer.DefaultConfig())
	res, err := miner.Localize(snap, 3)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if len(res.Patterns) == 0 || !res.Patterns[0].Combo.Equal(failures[0].Scope) {
		t.Fatalf("localized %s, want %s",
			res.Format(sim.Schema()), failures[0].Scope.Format(sim.Schema()))
	}
}
