package cdn

import (
	"testing"
	"time"

	"repro/internal/anomaly"
	"repro/internal/kpi"
	"repro/internal/rapminer"
)

// TestDerivedKPILocalization exercises the paper's genericity claim
// (Section IV-B): RAPMiner consumes only leaf anomaly labels, so a
// non-additive derived KPI — cache hit ratio — localizes exactly like a
// fundamental one, with no special handling. A cache failure at one
// location drops hits while requests stay flat, so only the derived ratio
// exposes it.
func TestDerivedKPILocalization(t *testing.T) {
	cfg := DefaultConfig(41)
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	ts := time.Date(2026, 2, 12, 20, 0, 0, 0, time.UTC)
	table, err := sim.TableAt(ts)
	if err != nil {
		t.Fatalf("TableAt: %v", err)
	}

	// Cache failure: hits collapse to 30% at location L9, requests
	// unchanged.
	scope := kpi.MustParseCombination(sim.Schema(), "(L9, *, *, *)")
	hits, _ := table.Column("hits")
	for i, combo := range table.Combos {
		if scope.Matches(combo) {
			hits[i] *= 0.3
		}
	}
	if err := table.Derive("hit_ratio", []string{"hits", "requests"}, func(v []float64) float64 {
		if v[1] == 0 {
			return 0
		}
		return v[0] / v[1]
	}); err != nil {
		t.Fatalf("Derive: %v", err)
	}

	// Build the localization snapshot on the derived KPI: actual = the
	// observed hit ratio, forecast = the configured healthy ratio.
	ratio, _ := table.Column("hit_ratio")
	leaves := make([]kpi.Leaf, table.Len())
	for i := range leaves {
		leaves[i] = kpi.Leaf{
			Combo:    table.Combos[i],
			Actual:   ratio[i],
			Forecast: cfg.CacheHitRatio,
		}
	}
	snap, err := kpi.NewSnapshot(sim.Schema(), leaves)
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}

	// The total requests did not change: a fundamental-KPI alarm on
	// traffic volume would stay silent.
	reqSnap, err := table.SnapshotOf("requests", "requests")
	if err != nil {
		t.Fatalf("SnapshotOf: %v", err)
	}
	v, f := reqSnap.Sum(kpi.NewRoot(4))
	if v != f {
		t.Fatalf("request volume changed: %v vs %v", v, f)
	}

	anomaly.Label(snap, anomaly.RelativeDeviation{Threshold: 0.3, Eps: 1e-9})
	miner := rapminer.MustNew(rapminer.DefaultConfig())
	res, err := miner.Localize(snap, 3)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if len(res.Patterns) == 0 || !res.Patterns[0].Combo.Equal(scope) {
		t.Fatalf("derived-KPI localization got:\n%swant %s",
			res.Format(sim.Schema()), scope.Format(sim.Schema()))
	}
}
