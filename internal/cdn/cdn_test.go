package cdn

import (
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/kpi"
)

var testTime = time.Date(2026, 2, 10, 21, 0, 0, 0, time.UTC)

func TestDefaultSchemaMatchesTableI(t *testing.T) {
	s := DefaultSchema()
	if got := s.NumAttributes(); got != 4 {
		t.Fatalf("NumAttributes = %d, want 4", got)
	}
	wantCard := map[string]int{"Location": 33, "AccessType": 4, "OS": 4, "Website": 20}
	for name, card := range wantCard {
		i, ok := s.AttributeIndex(name)
		if !ok {
			t.Fatalf("attribute %q missing", name)
		}
		if got := s.Cardinality(i); got != card {
			t.Errorf("Cardinality(%s) = %d, want %d", name, got, card)
		}
	}
	// 33 * 4 * 4 * 20 = 10560 (Section II-B of the paper).
	if got := s.NumLeaves(); got != 10560 {
		t.Errorf("NumLeaves = %d, want 10560", got)
	}
}

func TestNewSimulatorValidation(t *testing.T) {
	for _, cfg := range []Config{
		{BaseTraffic: 0, CacheHitRatio: 0.9},
		{BaseTraffic: 1, Sparsity: -0.1, CacheHitRatio: 0.9},
		{BaseTraffic: 1, Sparsity: 1, CacheHitRatio: 0.9},
		{BaseTraffic: 1, NoiseStd: -1, CacheHitRatio: 0.9},
		{BaseTraffic: 1, CacheHitRatio: 0},
		{BaseTraffic: 1, CacheHitRatio: 1.5},
	} {
		if _, err := NewSimulator(cfg); err == nil {
			t.Errorf("NewSimulator(%+v) accepted invalid config", cfg)
		}
	}
}

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Schema = kpi.MustSchema(
		kpi.Attribute{Name: "Location", Values: []string{"L1", "L2", "L3", "L4", "L5"}},
		kpi.Attribute{Name: "AccessType", Values: []string{"Wireless", "Fixed"}},
		kpi.Attribute{Name: "OS", Values: []string{"Android", "IOS"}},
		kpi.Attribute{Name: "Website", Values: []string{"Site1", "Site2", "Site3"}},
	)
	return cfg
}

func TestSimulatorSparsity(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Sparsity = 0.5
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	total := sim.Schema().NumLeaves()
	active := sim.NumActiveLeaves()
	frac := float64(active) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("active fraction = %v, want near 0.5", frac)
	}
}

func TestSnapshotDeterministicAndSeedSensitive(t *testing.T) {
	sim1, err := NewSimulator(smallConfig(1))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	a, err := sim1.SnapshotAt(testTime)
	if err != nil {
		t.Fatalf("SnapshotAt: %v", err)
	}
	b, err := sim1.SnapshotAt(testTime)
	if err != nil {
		t.Fatalf("SnapshotAt: %v", err)
	}
	for i := range a.Leaves {
		if a.Leaves[i].Actual != b.Leaves[i].Actual {
			t.Fatalf("same (seed, ts) produced different values at leaf %d", i)
		}
	}
	sim2, err := NewSimulator(smallConfig(2))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	c, err := sim2.SnapshotAt(testTime)
	if err != nil {
		t.Fatalf("SnapshotAt: %v", err)
	}
	if sim1.NumActiveLeaves() == sim2.NumActiveLeaves() {
		same := true
		for i := range a.Leaves {
			if a.Leaves[i].Actual != c.Leaves[i].Actual {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical snapshots")
		}
	}
}

func TestSnapshotForecastTracksActual(t *testing.T) {
	sim, err := NewSimulator(smallConfig(3))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	snap, err := sim.SnapshotAt(testTime)
	if err != nil {
		t.Fatalf("SnapshotAt: %v", err)
	}
	if snap.Len() == 0 {
		t.Fatal("no active leaves")
	}
	// Under 3% noise nearly all leaves are within 15% of forecast.
	within := 0
	for _, l := range snap.Leaves {
		if l.Forecast <= 0 {
			t.Fatalf("non-positive forecast %v", l.Forecast)
		}
		if math.Abs(l.Actual-l.Forecast)/l.Forecast < 0.15 {
			within++
		}
	}
	if frac := float64(within) / float64(snap.Len()); frac < 0.99 {
		t.Errorf("only %v of leaves near forecast", frac)
	}
}

func TestSnapshotDiurnalPattern(t *testing.T) {
	sim, err := NewSimulator(smallConfig(4))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	peak, err := sim.SnapshotAt(time.Date(2026, 2, 10, 21, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatalf("SnapshotAt: %v", err)
	}
	trough, err := sim.SnapshotAt(time.Date(2026, 2, 10, 9, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatalf("SnapshotAt: %v", err)
	}
	pv, _ := peak.Sum(kpi.NewRoot(4))
	tv, _ := trough.Sum(kpi.NewRoot(4))
	if pv <= tv {
		t.Errorf("evening traffic %v not above morning traffic %v", pv, tv)
	}
}

func TestHeavyTailedWeights(t *testing.T) {
	sim, err := NewSimulator(NewSimulatorDefaultForTest())
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	snap, err := sim.SnapshotAt(testTime)
	if err != nil {
		t.Fatalf("SnapshotAt: %v", err)
	}
	// Top 10% of leaves should carry well over 10% of traffic.
	var total float64
	values := make([]float64, snap.Len())
	for i, l := range snap.Leaves {
		values[i] = l.Forecast
		total += l.Forecast
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	cut := sorted[len(sorted)*9/10]
	var topShare float64
	for _, v := range values {
		if v >= cut {
			topShare += v
		}
	}
	if topShare/total < 0.3 {
		t.Errorf("top decile carries %v of traffic, want heavy tail (> 0.3)", topShare/total)
	}
}

// NewSimulatorDefaultForTest returns the default config over the full
// Table I schema with a fixed seed.
func NewSimulatorDefaultForTest() Config {
	return DefaultConfig(99)
}

func TestTableAtColumnsAndDerivation(t *testing.T) {
	sim, err := NewSimulator(smallConfig(5))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	tbl, err := sim.TableAt(testTime)
	if err != nil {
		t.Fatalf("TableAt: %v", err)
	}
	for _, col := range []string{"out_flow", "requests", "hits", "hit_ratio"} {
		vals, ok := tbl.Column(col)
		if !ok {
			t.Fatalf("column %q missing", col)
		}
		for i, v := range vals {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("column %q row %d = %v", col, i, v)
			}
		}
	}
	hits, _ := tbl.Column("hits")
	reqs, _ := tbl.Column("requests")
	ratio, _ := tbl.Column("hit_ratio")
	for i := range hits {
		if hits[i] > reqs[i] {
			t.Fatalf("row %d: hits %v > requests %v", i, hits[i], reqs[i])
		}
		if reqs[i] > 0 {
			want := hits[i] / reqs[i]
			if math.Abs(ratio[i]-want) > 1e-9 {
				t.Fatalf("row %d: hit_ratio %v, want %v", i, ratio[i], want)
			}
		}
	}
}
