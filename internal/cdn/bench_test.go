package cdn

import (
	"testing"
	"time"
)

func BenchmarkSnapshotAt(b *testing.B) {
	sim, err := NewSimulator(DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	ts := time.Date(2026, 2, 10, 21, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := sim.SnapshotAt(ts.Add(time.Duration(i) * time.Minute))
		if err != nil {
			b.Fatal(err)
		}
		if snap.Len() == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

func BenchmarkTableAt(b *testing.B) {
	sim, err := NewSimulator(DefaultConfig(2))
	if err != nil {
		b.Fatal(err)
	}
	ts := time.Date(2026, 2, 10, 21, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.TableAt(ts); err != nil {
			b.Fatal(err)
		}
	}
}
