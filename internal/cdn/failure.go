package cdn

import (
	"fmt"
	"math/rand"

	"repro/internal/kpi"
)

// FailureKind enumerates the realistic CDN failure classes the paper's
// introduction motivates: configuration errors, software defects, and
// network or server overload/failures, each with a characteristic affected
// scope.
type FailureKind int

// The failure catalog.
const (
	// NodeOutage takes an edge location down: scope (L, *, *, *).
	NodeOutage FailureKind = iota + 1
	// SiteOutage breaks one website everywhere: scope (*, *, *, Site).
	SiteOutage
	// RegionalSiteFailure breaks one website at one location — the
	// Fig. 3 scenario: scope (L, *, *, Site).
	RegionalSiteFailure
	// AccessDegradation degrades one access network at one location:
	// scope (L, AccessType, *, *).
	AccessDegradation
	// ClientBug ships a broken client for one OS against one website:
	// scope (*, *, OS, Site).
	ClientBug
)

// String names the failure kind.
func (k FailureKind) String() string {
	switch k {
	case NodeOutage:
		return "node-outage"
	case SiteOutage:
		return "site-outage"
	case RegionalSiteFailure:
		return "regional-site-failure"
	case AccessDegradation:
		return "access-degradation"
	case ClientBug:
		return "client-bug"
	default:
		return fmt.Sprintf("failure-kind-%d", int(k))
	}
}

// scopeAttrs returns the attribute indexes the kind constrains, in terms of
// the default schema layout (Location, AccessType, OS, Website).
func (k FailureKind) scopeAttrs() ([]int, error) {
	switch k {
	case NodeOutage:
		return []int{0}, nil
	case SiteOutage:
		return []int{3}, nil
	case RegionalSiteFailure:
		return []int{0, 3}, nil
	case AccessDegradation:
		return []int{0, 1}, nil
	case ClientBug:
		return []int{2, 3}, nil
	default:
		return nil, fmt.Errorf("cdn: unknown failure kind %d", int(k))
	}
}

// Failure is one concrete incident: the kind, the affected scope (its root
// anomaly pattern) and the severity — the fraction of traffic lost inside
// the scope.
type Failure struct {
	Kind     FailureKind
	Scope    kpi.Combination
	Severity float64
}

// Format renders the failure for reports.
func (f Failure) Format(s *kpi.Schema) string {
	return fmt.Sprintf("%s at %s (severity %.0f%%)", f.Kind, f.Scope.Format(s), 100*f.Severity)
}

// DrawFailure instantiates a failure of the given kind with random affected
// elements and a severity in [0.3, 0.95].
func (s *Simulator) DrawFailure(r *rand.Rand, kind FailureKind) (Failure, error) {
	attrs, err := kind.scopeAttrs()
	if err != nil {
		return Failure{}, err
	}
	scope := kpi.NewRoot(s.schema.NumAttributes())
	for _, a := range attrs {
		scope[a] = int32(r.Intn(s.schema.Cardinality(a)))
	}
	return Failure{
		Kind:     kind,
		Scope:    scope,
		Severity: 0.3 + 0.65*r.Float64(),
	}, nil
}

// ApplyFailures drops the actual values of every leaf under each failure's
// scope by that failure's severity, in place. Overlapping scopes compound.
// The forecasts are untouched, so a deviation-based detector sees exactly
// the injected loss.
func ApplyFailures(snap *kpi.Snapshot, failures []Failure) error {
	for _, f := range failures {
		if f.Severity < 0 || f.Severity > 1 {
			return fmt.Errorf("cdn: severity %v out of [0, 1]", f.Severity)
		}
		if len(f.Scope) != snap.Schema.NumAttributes() {
			return fmt.Errorf("cdn: failure scope arity %d does not match schema", len(f.Scope))
		}
	}
	for i := range snap.Leaves {
		leaf := &snap.Leaves[i]
		for _, f := range failures {
			if f.Scope.Matches(leaf.Combo) {
				leaf.Actual *= 1 - f.Severity
			}
		}
	}
	return nil
}

// Scenario draws one failure per kind, guaranteeing pairwise-unrelated
// scopes (no scope is an ancestor of another) so the set is a valid ground
// truth under Definition 1.
func (s *Simulator) Scenario(r *rand.Rand, kinds ...FailureKind) ([]Failure, error) {
	var failures []Failure
	const maxTries = 100
	for _, kind := range kinds {
		placed := false
		for try := 0; try < maxTries; try++ {
			f, err := s.DrawFailure(r, kind)
			if err != nil {
				return nil, err
			}
			related := false
			for _, prev := range failures {
				if prev.Scope.Equal(f.Scope) ||
					prev.Scope.IsAncestorOf(f.Scope) || f.Scope.IsAncestorOf(prev.Scope) {
					related = true
					break
				}
			}
			if related {
				continue
			}
			failures = append(failures, f)
			placed = true
			break
		}
		if !placed {
			return nil, fmt.Errorf("cdn: could not place %s without overlapping an earlier scope", kind)
		}
	}
	return failures, nil
}
