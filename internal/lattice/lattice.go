// Package lattice materializes the attribute-combination DAG of Fig. 7 in
// the RAPMiner paper: each vertex is an observed attribute combination,
// each edge links a parent to a child one layer down, and vertices carry
// the anomaly-confidence statistics the search uses. The graph can be
// rendered to Graphviz DOT with anomalous vertices and localized RAPs
// highlighted, reproducing the paper's walkthrough figures.
package lattice

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/kpi"
)

// Node is one vertex of the DAG.
type Node struct {
	Combo     kpi.Combination
	Layer     int
	Total     int
	Anomalous int
}

// Confidence returns the vertex's anomaly confidence.
func (n Node) Confidence() float64 {
	if n.Total == 0 {
		return 0
	}
	return float64(n.Anomalous) / float64(n.Total)
}

// Graph is the combination DAG down to a chosen layer.
type Graph struct {
	Schema *kpi.Schema
	Nodes  []Node
	// Edges holds (parent, child) pairs as indexes into Nodes.
	Edges [][2]int
}

// MaxNodes bounds graph construction; the DAG is a visualization aid for
// example-scale schemas, not for the full CDN lattice.
const MaxNodes = 5000

// Build constructs the DAG of every combination observed in the snapshot
// over the given attributes, from layer 1 down to maxLayer.
func Build(snap *kpi.Snapshot, attrs []int, maxLayer int) (*Graph, error) {
	return build(snap, attrs, maxLayer, false)
}

// BuildAnomalous is Build restricted to combinations with at least one
// anomalous leaf descendant — the sub-DAG Fig. 7 actually draws. It keeps
// example graphs readable on large snapshots.
func BuildAnomalous(snap *kpi.Snapshot, attrs []int, maxLayer int) (*Graph, error) {
	return build(snap, attrs, maxLayer, true)
}

func build(snap *kpi.Snapshot, attrs []int, maxLayer int, onlyAnomalous bool) (*Graph, error) {
	if maxLayer < 1 || maxLayer > len(attrs) {
		return nil, fmt.Errorf("lattice: maxLayer %d out of [1, %d]", maxLayer, len(attrs))
	}
	g := &Graph{Schema: snap.Schema}
	index := make(map[string]int)
	for layer := 1; layer <= maxLayer; layer++ {
		for _, cuboid := range kpi.CuboidsAtLayer(attrs, layer) {
			for _, stats := range snap.GroupBy(cuboid) {
				if onlyAnomalous && stats.Anomalous == 0 {
					continue
				}
				if len(g.Nodes) >= MaxNodes {
					return nil, fmt.Errorf("lattice: graph exceeds %d nodes; restrict attrs or maxLayer", MaxNodes)
				}
				index[stats.Combo.Key()] = len(g.Nodes)
				g.Nodes = append(g.Nodes, Node{
					Combo:     stats.Combo,
					Layer:     layer,
					Total:     stats.Total,
					Anomalous: stats.Anomalous,
				})
			}
		}
	}
	// Edges: a child links to each immediate parent present in the graph.
	for childIdx, child := range g.Nodes {
		if child.Layer == 1 {
			continue
		}
		for _, parent := range child.Combo.Parents() {
			if parentIdx, ok := index[parent.Key()]; ok {
				g.Edges = append(g.Edges, [2]int{parentIdx, childIdx})
			}
		}
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i][0] != g.Edges[j][0] {
			return g.Edges[i][0] < g.Edges[j][0]
		}
		return g.Edges[i][1] < g.Edges[j][1]
	})
	return g, nil
}

// NodesAtLayer returns the vertex count per layer, mirroring the Table V
// vertex numbering ("1-1", "2-6", ...).
func (g *Graph) NodesAtLayer(layer int) int {
	n := 0
	for _, node := range g.Nodes {
		if node.Layer == layer {
			n++
		}
	}
	return n
}

// WriteDOT renders the graph in Graphviz DOT. Vertices whose confidence
// exceeds tConf are filled red (the paper's anomalous vertices); vertices
// in highlight (e.g. the localized RAPs) get a double border.
func (g *Graph) WriteDOT(w io.Writer, highlight []kpi.Combination, tConf float64) error {
	highlighted := make(map[string]struct{}, len(highlight))
	for _, h := range highlight {
		highlighted[h.Key()] = struct{}{}
	}
	if _, err := fmt.Fprintln(w, "digraph rap {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, `  node [shape=ellipse, style=filled, fillcolor=white];`)
	for i, n := range g.Nodes {
		attrs := fmt.Sprintf("label=%q", n.Combo.Format(g.Schema))
		if n.Confidence() > tConf {
			attrs += `, fillcolor="#f4cccc"`
		}
		if _, ok := highlighted[n.Combo.Key()]; ok {
			attrs += `, peripheries=2, penwidth=2`
		}
		if _, err := fmt.Fprintf(w, "  n%d [%s];\n", i, attrs); err != nil {
			return err
		}
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", e[0], e[1]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
