package lattice

import (
	"strings"
	"testing"

	"repro/internal/kpi"
)

// tableVSnapshot reproduces the schema behind Table V of the paper:
// A{a1..a3}, B{b1,b2}, C{c1,c2} (the fourth attribute is unconstrained in
// the walkthrough and omitted here), with (a1, *, *) anomalous.
func tableVSnapshot(t *testing.T) *kpi.Snapshot {
	t.Helper()
	s := kpi.MustSchema(
		kpi.Attribute{Name: "A", Values: []string{"a1", "a2", "a3"}},
		kpi.Attribute{Name: "B", Values: []string{"b1", "b2"}},
		kpi.Attribute{Name: "C", Values: []string{"c1", "c2"}},
	)
	rap := kpi.MustParseCombination(s, "(a1, *, *)")
	var leaves []kpi.Leaf
	for a := int32(0); a < 3; a++ {
		for b := int32(0); b < 2; b++ {
			for c := int32(0); c < 2; c++ {
				combo := kpi.Combination{a, b, c}
				leaves = append(leaves, kpi.Leaf{
					Combo: combo, Actual: 1, Forecast: 1,
					Anomalous: rap.Matches(combo),
				})
			}
		}
	}
	snap, err := kpi.NewSnapshot(s, leaves)
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	return snap
}

func TestBuildMatchesTableVVertexCounts(t *testing.T) {
	snap := tableVSnapshot(t)
	g, err := Build(snap, []int{0, 1, 2}, 3)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Table V: layer 1 has 7 vertices (3 + 2 + 2), layer 2 has 16
	// (3*2 + 3*2 + 2*2), layer 3 has 12 (3*2*2).
	if got := g.NodesAtLayer(1); got != 7 {
		t.Errorf("layer 1 vertices = %d, want 7", got)
	}
	if got := g.NodesAtLayer(2); got != 16 {
		t.Errorf("layer 2 vertices = %d, want 16", got)
	}
	if got := g.NodesAtLayer(3); got != 12 {
		t.Errorf("layer 3 vertices = %d, want 12", got)
	}
}

func TestBuildEdgesLinkParents(t *testing.T) {
	snap := tableVSnapshot(t)
	g, err := Build(snap, []int{0, 1, 2}, 3)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Each layer-2 vertex has 2 parents; each layer-3 vertex has 3.
	inDegree := make(map[int]int)
	for _, e := range g.Edges {
		parent, child := g.Nodes[e[0]], g.Nodes[e[1]]
		if parent.Layer != child.Layer-1 {
			t.Fatalf("edge spans layers %d -> %d", parent.Layer, child.Layer)
		}
		if !parent.Combo.IsAncestorOf(child.Combo) {
			t.Fatalf("edge %v -> %v is not an ancestor link", parent.Combo, child.Combo)
		}
		inDegree[e[1]]++
	}
	for i, n := range g.Nodes {
		want := 0
		switch n.Layer {
		case 2:
			want = 2
		case 3:
			want = 3
		}
		if inDegree[i] != want {
			t.Errorf("vertex %v in-degree = %d, want %d", n.Combo, inDegree[i], want)
		}
	}
}

func TestBuildConfidenceAnnotations(t *testing.T) {
	snap := tableVSnapshot(t)
	g, err := Build(snap, []int{0, 1, 2}, 1)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for _, n := range g.Nodes {
		want := snap.Confidence(n.Combo)
		if got := n.Confidence(); got != want {
			t.Errorf("%v confidence = %v, want %v", n.Combo, got, want)
		}
	}
	if (Node{}).Confidence() != 0 {
		t.Error("empty node confidence should be 0")
	}
}

func TestBuildValidation(t *testing.T) {
	snap := tableVSnapshot(t)
	if _, err := Build(snap, []int{0, 1, 2}, 0); err == nil {
		t.Error("maxLayer 0 accepted")
	}
	if _, err := Build(snap, []int{0, 1, 2}, 4); err == nil {
		t.Error("maxLayer beyond attrs accepted")
	}
}

func TestWriteDOT(t *testing.T) {
	snap := tableVSnapshot(t)
	g, err := Build(snap, []int{0, 1, 2}, 2)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rap := kpi.MustParseCombination(snap.Schema, "(a1, *, *)")
	var b strings.Builder
	if err := g.WriteDOT(&b, []kpi.Combination{rap}, 0.8); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "digraph rap {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("DOT framing missing")
	}
	if !strings.Contains(out, `label="(a1, *, *)"`) {
		t.Error("vertex label missing")
	}
	// The RAP vertex is both anomalous (red) and highlighted.
	if !strings.Contains(out, `fillcolor="#f4cccc", peripheries=2`) {
		t.Error("anomalous highlighted vertex missing")
	}
	if !strings.Contains(out, "->") {
		t.Error("no edges emitted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	snap := tableVSnapshot(t)
	a, err := Build(snap, []int{0, 1, 2}, 3)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	b, err := Build(snap, []int{0, 1, 2}, 3)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) {
		t.Fatal("graph sizes differ between builds")
	}
	for i := range a.Nodes {
		if !a.Nodes[i].Combo.Equal(b.Nodes[i].Combo) {
			t.Fatal("node order differs between builds")
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("edge order differs between builds")
		}
	}
}

func TestBuildAnomalousFiltersCleanVertices(t *testing.T) {
	snap := tableVSnapshot(t)
	g, err := BuildAnomalous(snap, []int{0, 1, 2}, 3)
	if err != nil {
		t.Fatalf("BuildAnomalous: %v", err)
	}
	for _, n := range g.Nodes {
		if n.Anomalous == 0 {
			t.Errorf("clean vertex %v kept", n.Combo)
		}
	}
	// (a1, *, *) plus its descendants under attributes B and C:
	// layer 1: a1, b1, b2, c1, c2 (b and c each see a1's anomalies);
	// the layer counts must be strictly smaller than the full graph's.
	full, err := Build(snap, []int{0, 1, 2}, 3)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(g.Nodes) >= len(full.Nodes) {
		t.Errorf("anomalous sub-DAG (%d) not smaller than full DAG (%d)", len(g.Nodes), len(full.Nodes))
	}
	// The RAP itself must be present.
	rap := kpi.MustParseCombination(snap.Schema, "(a1, *, *)")
	found := false
	for _, n := range g.Nodes {
		if n.Combo.Equal(rap) {
			found = true
			break
		}
	}
	if !found {
		t.Error("RAP vertex missing from anomalous sub-DAG")
	}
}
