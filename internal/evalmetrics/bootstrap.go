package evalmetrics

import (
	"fmt"
	"math/rand"
	"sort"
)

// RCInterval is a bootstrap percentile confidence interval for RC@k.
type RCInterval struct {
	// Point is the plain RC@k estimate.
	Point float64
	// Lo and Hi bound the interval at the requested level.
	Lo, Hi float64
	// Level is the confidence level, e.g. 0.95.
	Level float64
	// NumTrue is the number of true RAPs resampled over.
	NumTrue int
}

// Bootstrap computes a percentile confidence interval for the accumulated
// RC@k by resampling the per-truth hit indicators with replacement. seed
// fixes the resampling stream so reports are reproducible.
func (m *RCAtK) Bootstrap(resamples int, level float64, seed int64) (RCInterval, error) {
	if resamples < 10 {
		return RCInterval{}, fmt.Errorf("evalmetrics: resamples %d, want >= 10", resamples)
	}
	if level <= 0 || level >= 1 {
		return RCInterval{}, fmt.Errorf("evalmetrics: level %v out of (0, 1)", level)
	}
	n := len(m.perTruth)
	if n == 0 {
		return RCInterval{}, fmt.Errorf("evalmetrics: no truths accumulated")
	}
	r := rand.New(rand.NewSource(seed))
	values := make([]float64, resamples)
	for b := range values {
		hits := 0
		for i := 0; i < n; i++ {
			if m.perTruth[r.Intn(n)] {
				hits++
			}
		}
		values[b] = float64(hits) / float64(n)
	}
	sort.Float64s(values)
	alpha := (1 - level) / 2
	lo := values[int(alpha*float64(resamples))]
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return RCInterval{
		Point:   m.Value(),
		Lo:      lo,
		Hi:      values[hiIdx],
		Level:   level,
		NumTrue: n,
	}, nil
}
