package evalmetrics

import (
	"math"
	"testing"

	"repro/internal/kpi"
)

// overlapSnapshot is a dense 3x2x2 snapshot for scope computations.
func overlapSnapshot(t *testing.T) *kpi.Snapshot {
	t.Helper()
	s := kpi.MustSchema(
		kpi.Attribute{Name: "A", Values: []string{"a1", "a2", "a3"}},
		kpi.Attribute{Name: "B", Values: []string{"b1", "b2"}},
		kpi.Attribute{Name: "C", Values: []string{"c1", "c2"}},
	)
	var leaves []kpi.Leaf
	for a := int32(0); a < 3; a++ {
		for b := int32(0); b < 2; b++ {
			for c := int32(0); c < 2; c++ {
				leaves = append(leaves, kpi.Leaf{Combo: kpi.Combination{a, b, c}})
			}
		}
	}
	snap, err := kpi.NewSnapshot(s, leaves)
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	return snap
}

func TestScopeOverlapIdentityAndDisjoint(t *testing.T) {
	snap := overlapSnapshot(t)
	a1 := kpi.MustParseCombination(snap.Schema, "(a1, *, *)")
	a2 := kpi.MustParseCombination(snap.Schema, "(a2, *, *)")
	if got := ScopeOverlap(snap, a1, a1); got != 1 {
		t.Errorf("self overlap = %v, want 1", got)
	}
	if got := ScopeOverlap(snap, a1, a2); got != 0 {
		t.Errorf("disjoint overlap = %v, want 0", got)
	}
}

func TestScopeOverlapChildOfTruth(t *testing.T) {
	snap := overlapSnapshot(t)
	truth := kpi.MustParseCombination(snap.Schema, "(a1, *, *)")  // 4 leaves
	child := kpi.MustParseCombination(snap.Schema, "(a1, b1, *)") // 2 leaves, subset
	if got := ScopeOverlap(snap, child, truth); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("child overlap = %v, want 0.5", got)
	}
	// Symmetric.
	if got := ScopeOverlap(snap, truth, child); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("reversed overlap = %v, want 0.5", got)
	}
}

func TestScopeOverlapEmptyScopes(t *testing.T) {
	s := kpi.MustSchema(kpi.Attribute{Name: "A", Values: []string{"a1", "a2"}})
	snap, err := kpi.NewSnapshot(s, []kpi.Leaf{{Combo: kpi.Combination{0}}})
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	absent := kpi.Combination{1}
	if got := ScopeOverlap(snap, absent, absent); got != 0 {
		t.Errorf("empty-vs-empty overlap = %v, want 0", got)
	}
}

func TestBestOverlapsGreedyAssignment(t *testing.T) {
	snap := overlapSnapshot(t)
	parse := func(txt string) kpi.Combination {
		return kpi.MustParseCombination(snap.Schema, txt)
	}
	truths := []kpi.Combination{parse("(a1, *, *)"), parse("(a2, *, *)")}
	// First prediction exactly matches truth 0; second is a child of
	// truth 1.
	preds := []kpi.Combination{parse("(a1, *, *)"), parse("(a2, b2, *)")}
	got := BestOverlaps(snap, preds, truths)
	if got[0] != 1 {
		t.Errorf("truth 0 overlap = %v, want 1", got[0])
	}
	if math.Abs(got[1]-0.5) > 1e-12 {
		t.Errorf("truth 1 overlap = %v, want 0.5", got[1])
	}
	// A prediction is consumed once: duplicate truths cannot both claim
	// the same exact prediction.
	dup := BestOverlaps(snap, preds[:1], []kpi.Combination{truths[0], truths[0]})
	if dup[0] != 1 || dup[1] != 0 {
		t.Errorf("duplicate truths got %v, want [1 0]", dup)
	}
}

func TestMeanOverlapAccumulates(t *testing.T) {
	snap := overlapSnapshot(t)
	parse := func(txt string) kpi.Combination {
		return kpi.MustParseCombination(snap.Schema, txt)
	}
	var m MeanOverlap
	if m.Value() != 0 {
		t.Error("empty MeanOverlap not 0")
	}
	m.Add(snap, []kpi.Combination{parse("(a1, *, *)")}, []kpi.Combination{parse("(a1, *, *)")})
	m.Add(snap, nil, []kpi.Combination{parse("(a2, *, *)")})
	if got := m.Value(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MeanOverlap = %v, want 0.5", got)
	}
}
