package evalmetrics

import (
	"math"
	"testing"

	"repro/internal/kpi"
)

// These table-driven tests pin the degenerate-input contract: empty
// prediction sets, empty ground truth, and zero-support RAPs must yield
// defined precision/recall/F1/RC@k — finite values, never NaN or ±Inf
// leaking into EXPERIMENTS tables.

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func degSchema() *kpi.Schema {
	return kpi.MustSchema(
		kpi.Attribute{Name: "A", Values: []string{"a1", "a2"}},
		kpi.Attribute{Name: "B", Values: []string{"b1", "b2"}},
	)
}

func TestSetScoreDegenerateInputs(t *testing.T) {
	s := degSchema()
	rap := kpi.MustParseCombination(s, "(a1, *)")
	other := kpi.MustParseCombination(s, "(a2, *)")

	cases := []struct {
		name                 string
		pred, truth          []kpi.Combination
		wantP, wantR, wantF1 float64
	}{
		{name: "empty prediction set", pred: nil, truth: []kpi.Combination{rap},
			wantP: 0, wantR: 0, wantF1: 0},
		{name: "empty ground truth", pred: []kpi.Combination{rap}, truth: nil,
			wantP: 0, wantR: 0, wantF1: 0},
		{name: "both empty", pred: nil, truth: nil,
			wantP: 0, wantR: 0, wantF1: 0},
		{name: "disjoint sets", pred: []kpi.Combination{other}, truth: []kpi.Combination{rap},
			wantP: 0, wantR: 0, wantF1: 0},
		{name: "exact match", pred: []kpi.Combination{rap}, truth: []kpi.Combination{rap},
			wantP: 1, wantR: 1, wantF1: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var score SetScore
			score.Add(tc.pred, tc.truth)
			p, r, f1 := score.Precision(), score.Recall(), score.F1()
			for name, v := range map[string]float64{"precision": p, "recall": r, "F1": f1} {
				if !finite(v) {
					t.Errorf("%s = %v, want finite", name, v)
				}
			}
			if p != tc.wantP || r != tc.wantR || f1 != tc.wantF1 {
				t.Errorf("got P=%v R=%v F1=%v, want P=%v R=%v F1=%v",
					p, r, f1, tc.wantP, tc.wantR, tc.wantF1)
			}
		})
	}
}

func TestSetScoreNeverAddedStaysDefined(t *testing.T) {
	var score SetScore
	if v := score.F1(); v != 0 || !finite(v) {
		t.Errorf("F1 of empty accumulator = %v", v)
	}
}

func TestRCAtKDegenerateInputs(t *testing.T) {
	s := degSchema()
	rap := kpi.MustParseCombination(s, "(a1, *)")

	cases := []struct {
		name        string
		pred, truth []kpi.Combination
		want        float64
	}{
		{name: "empty prediction set", pred: nil, truth: []kpi.Combination{rap}, want: 0},
		{name: "empty ground truth", pred: []kpi.Combination{rap}, truth: nil, want: 0},
		{name: "both empty", pred: nil, truth: nil, want: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := NewRCAtK(5)
			if err != nil {
				t.Fatal(err)
			}
			m.Add(tc.pred, tc.truth)
			if v := m.Value(); v != tc.want || !finite(v) {
				t.Errorf("RC@5 = %v, want %v and finite", v, tc.want)
			}
		})
	}
}

// TestScopeOverlapZeroSupportRAP covers the zero-support case: a RAP whose
// scope matches no observed leaf (sparse KPIs drop leaves all the time)
// must produce a defined overlap, not NaN from a 0/0 Jaccard.
func TestScopeOverlapZeroSupportRAP(t *testing.T) {
	s := degSchema()
	// Only a2-leaves observed: any (a1, ...) scope has zero support.
	leaves := []kpi.Leaf{
		{Combo: kpi.Combination{1, 0}, Actual: 10, Forecast: 10},
		{Combo: kpi.Combination{1, 1}, Actual: 10, Forecast: 10},
	}
	snap, err := kpi.NewSnapshot(s, leaves)
	if err != nil {
		t.Fatal(err)
	}
	zero := kpi.MustParseCombination(s, "(a1, *)")
	live := kpi.MustParseCombination(s, "(a2, *)")

	cases := []struct {
		name        string
		pred, truth kpi.Combination
		want        float64
	}{
		{name: "zero-support prediction", pred: zero, truth: live, want: 0},
		{name: "zero-support truth", pred: live, truth: zero, want: 0},
		{name: "both zero-support", pred: zero, truth: zero, want: 0},
		{name: "identical live scopes", pred: live, truth: live, want: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := ScopeOverlap(snap, tc.pred, tc.truth)
			if !finite(v) {
				t.Fatalf("overlap = %v, want finite", v)
			}
			if v != tc.want {
				t.Errorf("overlap = %v, want %v", v, tc.want)
			}
		})
	}

	// BestOverlaps on zero-support truths must stay finite as well.
	for _, v := range BestOverlaps(snap, []kpi.Combination{zero, live}, []kpi.Combination{zero}) {
		if !finite(v) {
			t.Errorf("BestOverlaps produced %v", v)
		}
	}
}
