// Package evalmetrics implements the evaluation metrics of the RAPMiner
// paper: F1-score over predicted vs. true RAP sets (Eq. 6, used on the
// Squeeze dataset where the number of RAPs is known in advance) and RC@k
// (Eq. 7, used on RAPMD where it is not), plus simple runtime accounting.
package evalmetrics

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/kpi"
)

// SetScore accumulates exact-match statistics between predicted and true
// RAP sets across cases.
type SetScore struct {
	TP, FP, FN int
}

// Add scores one case: predictions and truth are compared by exact
// combination equality (the criterion behind Eq. 6).
func (s *SetScore) Add(pred, truth []kpi.Combination) {
	matched := make([]bool, len(truth))
	for _, p := range pred {
		hit := false
		for i, t := range truth {
			if !matched[i] && p.Equal(t) {
				matched[i] = true
				hit = true
				break
			}
		}
		if hit {
			s.TP++
		} else {
			s.FP++
		}
	}
	for _, m := range matched {
		if !m {
			s.FN++
		}
	}
}

// Precision returns TP / (TP + FP), or 0 when nothing was predicted.
func (s SetScore) Precision() float64 {
	if s.TP+s.FP == 0 {
		return 0
	}
	return float64(s.TP) / float64(s.TP+s.FP)
}

// Recall returns TP / (TP + FN), or 0 when there is no truth.
func (s SetScore) Recall() float64 {
	if s.TP+s.FN == 0 {
		return 0
	}
	return float64(s.TP) / float64(s.TP+s.FN)
}

// F1 returns the harmonic mean of precision and recall (Eq. 6).
func (s SetScore) F1() float64 {
	p, r := s.Precision(), s.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// RCAtK accumulates the RC@k recall metric of Eq. 7: the fraction of true
// RAPs that appear among the top-k recommendations, aggregated over all
// cases. Per-truth hit indicators are retained for Bootstrap.
type RCAtK struct {
	K        int
	hits     int
	numTrue  int
	perTruth []bool
}

// NewRCAtK validates k.
func NewRCAtK(k int) (*RCAtK, error) {
	if k < 1 {
		return nil, fmt.Errorf("evalmetrics: k %d, want >= 1", k)
	}
	return &RCAtK{K: k}, nil
}

// Add scores one case.
func (m *RCAtK) Add(pred, truth []kpi.Combination) {
	top := pred
	if len(top) > m.K {
		top = top[:m.K]
	}
	matched := make([]bool, len(truth))
	for _, p := range top {
		for i, t := range truth {
			if !matched[i] && p.Equal(t) {
				matched[i] = true
				m.hits++
				break
			}
		}
	}
	m.numTrue += len(truth)
	m.perTruth = append(m.perTruth, matched...)
}

// Value returns RC@k in [0, 1], or 0 before any case was added.
func (m *RCAtK) Value() float64 {
	if m.numTrue == 0 {
		return 0
	}
	return float64(m.hits) / float64(m.numTrue)
}

// Timing accumulates per-case wall-clock runtimes.
type Timing struct {
	samples []time.Duration
}

// Add records one case runtime.
func (t *Timing) Add(d time.Duration) { t.samples = append(t.samples, d) }

// N returns the number of samples.
func (t *Timing) N() int { return len(t.samples) }

// Mean returns the average runtime, or 0 with no samples.
func (t *Timing) Mean() time.Duration {
	if len(t.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range t.samples {
		sum += d
	}
	return sum / time.Duration(len(t.samples))
}

// Median returns the median runtime, or 0 with no samples.
func (t *Timing) Median() time.Duration {
	if len(t.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), t.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}
