package evalmetrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/kpi"
)

func combos(texts ...string) []kpi.Combination {
	s := kpi.MustSchema(
		kpi.Attribute{Name: "A", Values: []string{"a1", "a2", "a3"}},
		kpi.Attribute{Name: "B", Values: []string{"b1", "b2", "b3"}},
	)
	var out []kpi.Combination
	for _, t := range texts {
		out = append(out, kpi.MustParseCombination(s, t))
	}
	return out
}

func TestSetScorePerfect(t *testing.T) {
	var s SetScore
	truth := combos("(a1, *)", "(a2, b2)")
	s.Add(truth, truth)
	if s.TP != 2 || s.FP != 0 || s.FN != 0 {
		t.Fatalf("SetScore = %+v", s)
	}
	if s.F1() != 1 || s.Precision() != 1 || s.Recall() != 1 {
		t.Errorf("perfect prediction scores: P=%v R=%v F1=%v", s.Precision(), s.Recall(), s.F1())
	}
}

func TestSetScorePartial(t *testing.T) {
	var s SetScore
	s.Add(combos("(a1, *)", "(a3, *)"), combos("(a1, *)", "(a2, b2)"))
	if s.TP != 1 || s.FP != 1 || s.FN != 1 {
		t.Fatalf("SetScore = %+v", s)
	}
	if math.Abs(s.F1()-0.5) > 1e-12 {
		t.Errorf("F1 = %v, want 0.5", s.F1())
	}
}

func TestSetScoreNoDoubleMatching(t *testing.T) {
	var s SetScore
	// Duplicate predictions only match one truth entry.
	s.Add(combos("(a1, *)", "(a1, *)"), combos("(a1, *)"))
	if s.TP != 1 || s.FP != 1 || s.FN != 0 {
		t.Fatalf("SetScore = %+v", s)
	}
}

func TestSetScoreEmptyCases(t *testing.T) {
	var s SetScore
	s.Add(nil, nil)
	if s.F1() != 0 || s.Precision() != 0 || s.Recall() != 0 {
		t.Errorf("empty score: %+v", s)
	}
	s.Add(nil, combos("(a1, *)"))
	if s.FN != 1 {
		t.Errorf("missing prediction not counted as FN: %+v", s)
	}
}

func TestSetScoreAccumulatesAcrossCases(t *testing.T) {
	var s SetScore
	s.Add(combos("(a1, *)"), combos("(a1, *)"))
	s.Add(combos("(a2, *)"), combos("(a3, *)"))
	if s.TP != 1 || s.FP != 1 || s.FN != 1 {
		t.Fatalf("accumulated = %+v", s)
	}
}

func TestRCAtKPaperSemantics(t *testing.T) {
	m, err := NewRCAtK(3)
	if err != nil {
		t.Fatalf("NewRCAtK: %v", err)
	}
	// Case 1: 2 truths, top-3 catches one.
	m.Add(combos("(a1, *)", "(a3, *)", "(a2, b2)"), combos("(a1, *)", "(a2, *)"))
	// Case 2: 1 truth, caught.
	m.Add(combos("(a2, *)"), combos("(a2, *)"))
	// hits = 2, total truths = 3.
	if got := m.Value(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("RC@3 = %v, want 2/3", got)
	}
}

func TestRCAtKTruncatesPredictions(t *testing.T) {
	m, _ := NewRCAtK(1)
	m.Add(combos("(a3, *)", "(a1, *)"), combos("(a1, *)"))
	if got := m.Value(); got != 0 {
		t.Errorf("RC@1 = %v, want 0 (truth at rank 2)", got)
	}
}

func TestRCAtKValidation(t *testing.T) {
	if _, err := NewRCAtK(0); err == nil {
		t.Error("k = 0 accepted")
	}
	m, _ := NewRCAtK(5)
	if m.Value() != 0 {
		t.Error("empty metric not 0")
	}
}

func TestRCAtKMonotoneInK(t *testing.T) {
	// RC@k is non-decreasing in k for the same prediction stream.
	f := func(seed int64) bool {
		pred := combos("(a1, *)", "(a2, *)", "(a3, *)")
		truth := combos("(a2, *)", "(a3, *)")
		var prev float64
		for k := 1; k <= 3; k++ {
			m, err := NewRCAtK(k)
			if err != nil {
				return false
			}
			m.Add(pred, truth)
			if m.Value() < prev {
				return false
			}
			prev = m.Value()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestTimingStatistics(t *testing.T) {
	var tm Timing
	if tm.Mean() != 0 || tm.Median() != 0 || tm.N() != 0 {
		t.Error("empty timing not zero")
	}
	tm.Add(10 * time.Millisecond)
	tm.Add(30 * time.Millisecond)
	tm.Add(20 * time.Millisecond)
	if got := tm.Mean(); got != 20*time.Millisecond {
		t.Errorf("Mean = %v", got)
	}
	if got := tm.Median(); got != 20*time.Millisecond {
		t.Errorf("Median = %v", got)
	}
	tm.Add(40 * time.Millisecond)
	if got := tm.Median(); got != 25*time.Millisecond {
		t.Errorf("even Median = %v", got)
	}
	if tm.N() != 4 {
		t.Errorf("N = %d", tm.N())
	}
}

func TestBootstrapInterval(t *testing.T) {
	m, _ := NewRCAtK(3)
	// 60 truths, 45 hits -> RC 0.75.
	for i := 0; i < 60; i++ {
		truth := combos("(a1, *)")
		if i%4 == 0 {
			m.Add(nil, truth) // miss
		} else {
			m.Add(truth, truth) // hit
		}
	}
	ci, err := m.Bootstrap(500, 0.95, 1)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if math.Abs(ci.Point-0.75) > 1e-9 {
		t.Errorf("Point = %v, want 0.75", ci.Point)
	}
	if ci.Lo > ci.Point || ci.Hi < ci.Point {
		t.Errorf("interval [%v, %v] excludes the point %v", ci.Lo, ci.Hi, ci.Point)
	}
	// Sanity width: binomial(60, 0.75) has std ~0.056; the 95% interval
	// should be within +-3 std of the point and not degenerate.
	if ci.Hi-ci.Lo <= 0 || ci.Hi-ci.Lo > 0.4 {
		t.Errorf("interval width %v implausible", ci.Hi-ci.Lo)
	}
	if ci.NumTrue != 60 || ci.Level != 0.95 {
		t.Errorf("metadata wrong: %+v", ci)
	}
	// Deterministic per seed.
	ci2, _ := m.Bootstrap(500, 0.95, 1)
	if ci != ci2 {
		t.Error("bootstrap not deterministic for a fixed seed")
	}
}

func TestBootstrapValidation(t *testing.T) {
	m, _ := NewRCAtK(3)
	if _, err := m.Bootstrap(500, 0.95, 1); err == nil {
		t.Error("empty metric accepted")
	}
	m.Add(combos("(a1, *)"), combos("(a1, *)"))
	if _, err := m.Bootstrap(5, 0.95, 1); err == nil {
		t.Error("too few resamples accepted")
	}
	if _, err := m.Bootstrap(100, 1.5, 1); err == nil {
		t.Error("bad level accepted")
	}
}
