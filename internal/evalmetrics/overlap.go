package evalmetrics

import (
	"repro/internal/kpi"
)

// ScopeOverlap measures partial credit between a predicted pattern and a
// true RAP as the Jaccard index of their leaf scopes in the snapshot:
// |pred ∩ truth| / |pred ∪ truth|. The exact-match metrics of the paper
// treat (L1, Wireless, *, Site1) as a complete miss of (L1, *, *, Site1);
// scope overlap quantifies how close such near-misses are.
func ScopeOverlap(s *kpi.Snapshot, pred, truth kpi.Combination) float64 {
	predScope := s.LeafScope(pred)
	truthScope := s.LeafScope(truth)
	if len(predScope) == 0 && len(truthScope) == 0 {
		return 0
	}
	inter := 0
	for k := range predScope {
		if _, ok := truthScope[k]; ok {
			inter++
		}
	}
	union := len(predScope) + len(truthScope) - inter
	return float64(inter) / float64(union)
}

// BestOverlaps greedily assigns each true RAP the highest-overlap unused
// prediction and returns the per-truth overlaps (0 when no prediction is
// left). The mean of the result is a partial-credit recall counterpart to
// RC@k.
func BestOverlaps(s *kpi.Snapshot, preds, truths []kpi.Combination) []float64 {
	out := make([]float64, len(truths))
	used := make([]bool, len(preds))
	// Greedy: repeatedly take the globally best (truth, pred) pair.
	assigned := make([]bool, len(truths))
	for round := 0; round < len(truths); round++ {
		bestT, bestP, bestV := -1, -1, 0.0
		for ti := range truths {
			if assigned[ti] {
				continue
			}
			for pi := range preds {
				if used[pi] {
					continue
				}
				v := ScopeOverlap(s, preds[pi], truths[ti])
				if v > bestV {
					bestT, bestP, bestV = ti, pi, v
				}
			}
		}
		if bestT < 0 {
			break // nothing overlaps anything anymore
		}
		assigned[bestT] = true
		used[bestP] = true
		out[bestT] = bestV
	}
	return out
}

// MeanOverlap accumulates BestOverlaps across cases.
type MeanOverlap struct {
	sum float64
	n   int
}

// Add scores one case.
func (m *MeanOverlap) Add(s *kpi.Snapshot, preds, truths []kpi.Combination) {
	for _, v := range BestOverlaps(s, preds, truths) {
		m.sum += v
		m.n++
	}
}

// Value returns the mean per-truth scope overlap, or 0 with no samples.
func (m *MeanOverlap) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}
