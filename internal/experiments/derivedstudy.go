package experiments

import (
	"fmt"

	"repro/internal/evalmetrics"
	"repro/internal/gendata"
)

// DerivedStudyRow compares a method's RC@3 on the fundamental-KPI RAPMD
// corpus against the derived-KPI (cache hit ratio) corpus. The paper's
// genericity claim (Section IV-B) predicts that label-only methods —
// RAPMiner, FP-growth — hold their effectiveness on the non-additive KPI,
// while methods that model the KPI values themselves degrade.
type DerivedStudyRow struct {
	Method      string
	Fundamental float64
	Derived     float64
}

// RunDerivedStudy evaluates every method on both corpora.
func RunDerivedStudy(opt Options) ([]DerivedStudyRow, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	methods, err := opt.methods()
	if err != nil {
		return nil, err
	}
	fundamental, err := gendata.RAPMD(opt.Seed, opt.RAPMDCases)
	if err != nil {
		return nil, fmt.Errorf("experiments: rapmd corpus: %w", err)
	}
	derived, err := gendata.RAPMDDerived(opt.Seed, opt.RAPMDCases)
	if err != nil {
		return nil, fmt.Errorf("experiments: derived corpus: %w", err)
	}

	score := func(m string, corpus *gendata.Corpus) (float64, error) {
		for _, method := range methods {
			if method.Name() != m {
				continue
			}
			rc, err := evalmetrics.NewRCAtK(3)
			if err != nil {
				return 0, err
			}
			for ci, c := range corpus.Cases {
				res, err := method.Localize(c.Snapshot, 3)
				if err != nil {
					return 0, fmt.Errorf("experiments: %s on %s case %d: %w", m, corpus.Name, ci, err)
				}
				rc.Add(res.TopK(3), c.RAPs)
			}
			return rc.Value(), nil
		}
		return 0, fmt.Errorf("experiments: method %q missing", m)
	}

	var rows []DerivedStudyRow
	for _, m := range methods {
		f, err := score(m.Name(), fundamental)
		if err != nil {
			return nil, err
		}
		d, err := score(m.Name(), derived)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DerivedStudyRow{Method: m.Name(), Fundamental: f, Derived: d})
	}
	return rows, nil
}

// FormatDerivedStudy renders the fundamental-vs-derived comparison.
func FormatDerivedStudy(rows []DerivedStudyRow) string {
	header := []string{"method", "RC@3 fundamental (out-flow)", "RC@3 derived (hit ratio)"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Method,
			fmt.Sprintf("%.1f%%", 100*r.Fundamental),
			fmt.Sprintf("%.1f%%", 100*r.Derived),
		})
	}
	return "Extension — fundamental vs. derived KPI on RAPMD-style corpora\n" +
		textTable(header, out)
}
