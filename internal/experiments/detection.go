package experiments

import (
	"fmt"

	"repro/internal/anomaly"
	"repro/internal/evalmetrics"
	"repro/internal/gendata"
	"repro/internal/rapminer"
)

// DetectionGrid holds the leaf-detector thresholds swept by the detection
// study. The injection draws anomalous deviations from [0.1, 0.9] and
// normal deviations from [-0.02, 0.09], so 0.095 separates them exactly;
// thresholds below flood the labels with false positives, thresholds above
// starve the small RAPs.
var DetectionGrid = []float64{0.05, 0.07, 0.095, 0.12, 0.15, 0.20}

// DetectionPoint is one point of the detection-quality study.
type DetectionPoint struct {
	Threshold float64
	// LabeledAnomalous is the mean fraction of leaves the detector labels
	// anomalous at this threshold.
	LabeledAnomalous float64
	// RC3 is RAPMiner's RC@3 on the relabeled corpus.
	RC3 float64
}

// RunDetectionStudy quantifies the paper's observation that "the more
// accurate the anomaly detection results are, the more effective the
// anomaly localization is" (Section V-E1): the RAPMD cases are relabeled
// by the relative-deviation detector at each threshold and RAPMiner is
// evaluated on the resulting labels.
func RunDetectionStudy(opt Options) ([]DetectionPoint, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	corpus, err := gendata.RAPMD(opt.Seed, opt.RAPMDCases)
	if err != nil {
		return nil, fmt.Errorf("experiments: rapmd corpus: %w", err)
	}
	miner, err := rapminer.New(rapminer.DefaultConfig())
	if err != nil {
		return nil, err
	}

	points := make([]DetectionPoint, 0, len(DetectionGrid))
	for _, threshold := range DetectionGrid {
		detector := anomaly.RelativeDeviation{Threshold: threshold, Eps: 1e-9}
		rc, err := evalmetrics.NewRCAtK(3)
		if err != nil {
			return nil, err
		}
		var labeledFrac float64
		for ci, c := range corpus.Cases {
			snap := c.Snapshot.Clone()
			n := anomaly.Label(snap, detector)
			labeledFrac += float64(n) / float64(snap.Len())
			res, err := miner.Localize(snap, 3)
			if err != nil {
				return nil, fmt.Errorf("experiments: detection case %d: %w", ci, err)
			}
			rc.Add(res.TopK(3), c.RAPs)
		}
		points = append(points, DetectionPoint{
			Threshold:        threshold,
			LabeledAnomalous: labeledFrac / float64(len(corpus.Cases)),
			RC3:              rc.Value(),
		})
	}
	return points, nil
}

// FormatDetectionStudy renders the detection-quality study.
func FormatDetectionStudy(points []DetectionPoint) string {
	header := []string{"detector threshold", "leaves labeled", "RC@3"}
	var out [][]string
	for _, p := range points {
		out = append(out, []string{
			fmt.Sprintf("%.3f", p.Threshold),
			fmt.Sprintf("%.1f%%", 100*p.LabeledAnomalous),
			fmt.Sprintf("%.1f%%", 100*p.RC3),
		})
	}
	return "Extension — RAPMiner effectiveness vs. leaf detection quality on RAPMD\n" +
		textTable(header, out)
}
