package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Report bundles one full evaluation run for rendering.
type Report struct {
	Options   Options
	Squeeze   []SqueezeEvalRow
	RAPMD     []RAPMDEvalRow
	Fig10a    []SensitivityPoint
	Fig10b    []SensitivityPoint
	Table4    []Table4Row
	Table4Emp Table4Empirical
	Table6    Table6Result
	Noise     []NoiseStudyRow
	Robust    []RobustnessRow
	Detection []DetectionPoint
	Overlap   []OverlapStudyRow
	Derived   []DerivedStudyRow
}

// RunReport executes every driver and collects the results.
func RunReport(opt Options) (*Report, error) {
	rep := &Report{Options: opt}
	var err error
	if rep.Squeeze, err = RunSqueezeEval(opt); err != nil {
		return nil, err
	}
	if rep.RAPMD, err = RunRAPMDEval(opt); err != nil {
		return nil, err
	}
	if rep.Fig10a, err = RunFig10a(opt); err != nil {
		return nil, err
	}
	if rep.Fig10b, err = RunFig10b(opt); err != nil {
		return nil, err
	}
	if rep.Table4, rep.Table4Emp, err = RunTable4(opt); err != nil {
		return nil, err
	}
	if rep.Table6, err = RunTable6(opt); err != nil {
		return nil, err
	}
	if rep.Noise, err = RunNoiseStudy(opt); err != nil {
		return nil, err
	}
	if rep.Robust, err = RunRobustnessMatrix(opt, nil); err != nil {
		return nil, err
	}
	if rep.Detection, err = RunDetectionStudy(opt); err != nil {
		return nil, err
	}
	if rep.Overlap, err = RunOverlapStudy(opt); err != nil {
		return nil, err
	}
	if rep.Derived, err = RunDerivedStudy(opt); err != nil {
		return nil, err
	}
	return rep, nil
}

// WriteMarkdown renders the report as a self-contained Markdown document.
// now stamps the header (passed in so rendering stays deterministic in
// tests).
func (r *Report) WriteMarkdown(w io.Writer, now time.Time) error {
	b := &strings.Builder{}
	fmt.Fprintf(b, "# RAPMiner reproduction report\n\n")
	fmt.Fprintf(b, "Generated %s — seed %d, %d Squeeze cases per group, %d RAPMD cases.\n\n",
		now.Format(time.RFC3339), r.Options.Seed, r.Options.SqueezeCases, r.Options.RAPMDCases)

	mdMethodTable := func(title string, cols []string, row func(m string) []string) {
		fmt.Fprintf(b, "## %s\n\n", title)
		fmt.Fprintf(b, "| method | %s |\n", strings.Join(cols, " | "))
		fmt.Fprintf(b, "|%s\n", strings.Repeat("---|", len(cols)+1))
		for _, m := range methodColumns(asSet(r.RAPMD)) {
			fmt.Fprintf(b, "| %s | %s |\n", m, strings.Join(row(m), " | "))
		}
		fmt.Fprintln(b)
	}

	// Fig. 8(a) / 9(a).
	if len(r.Squeeze) > 0 {
		fmt.Fprintf(b, "## Fig. 8(a) — F1 on Squeeze-B0\n\n| group | %s |\n",
			strings.Join(methodColumns(r.Squeeze[0].F1), " | "))
		fmt.Fprintf(b, "|%s\n", strings.Repeat("---|", len(methodColumns(r.Squeeze[0].F1))+1))
		for _, row := range r.Squeeze {
			cells := []string{row.Group.String()}
			for _, m := range methodColumns(row.F1) {
				cells = append(cells, fmt.Sprintf("%.3f", row.F1[m]))
			}
			fmt.Fprintf(b, "| %s |\n", strings.Join(cells, " | "))
		}
		fmt.Fprintln(b)
	}

	// Fig. 8(b) / 9(b).
	byMethod := make(map[string]RAPMDEvalRow, len(r.RAPMD))
	for _, row := range r.RAPMD {
		byMethod[row.Method] = row
	}
	mdMethodTable("Fig. 8(b) — RC@k on RAPMD", []string{"RC@3", "RC@4", "RC@5", "mean time (s)"},
		func(m string) []string {
			row := byMethod[m]
			return []string{
				fmt.Sprintf("%.1f%%", 100*row.RC[3]),
				fmt.Sprintf("%.1f%%", 100*row.RC[4]),
				fmt.Sprintf("%.1f%%", 100*row.RC[5]),
				fmt.Sprintf("%.4g", row.MeanSeconds),
			}
		})

	// Fig. 10.
	fmt.Fprintf(b, "## Fig. 10 — parameter sensitivity\n\n| t_CP | RC@3 | | t_conf | RC@3 |\n|---|---|---|---|---|\n")
	n := len(r.Fig10a)
	if len(r.Fig10b) > n {
		n = len(r.Fig10b)
	}
	for i := 0; i < n; i++ {
		left, right := []string{"", ""}, []string{"", ""}
		if i < len(r.Fig10a) {
			left = []string{fmt.Sprintf("%.4g", r.Fig10a[i].Threshold), fmt.Sprintf("%.1f%%", 100*r.Fig10a[i].RC3)}
		}
		if i < len(r.Fig10b) {
			right = []string{fmt.Sprintf("%.4g", r.Fig10b[i].Threshold), fmt.Sprintf("%.1f%%", 100*r.Fig10b[i].RC3)}
		}
		fmt.Fprintf(b, "| %s | %s | | %s | %s |\n", left[0], left[1], right[0], right[1])
	}
	fmt.Fprintln(b)

	// Tables IV and VI.
	fmt.Fprintf(b, "## Table IV — DecreaseRatio@k\n\n| k | bound | exact (n=4) |\n|---|---|---|\n")
	for _, row := range r.Table4 {
		exact := "-"
		if row.K <= 4 {
			exact = fmt.Sprintf("%.4f", row.ExactAtN4)
		}
		fmt.Fprintf(b, "| %d | %.5f | %s |\n", row.K, row.LowerBound, exact)
	}
	fmt.Fprintf(b, "\nMeasured deletion histogram %v, mean reduction %.3f.\n\n",
		r.Table4Emp.DeletedHistogram, r.Table4Emp.MeanDecreaseRatio)

	fmt.Fprintf(b, "## Table VI — deletion ablation\n\n")
	fmt.Fprintf(b, "| arm | RC@3 | mean time (s) |\n|---|---|---|\n")
	fmt.Fprintf(b, "| with deletion | %.1f%% | %.4g |\n", 100*r.Table6.With.RC3, r.Table6.With.MeanSeconds)
	fmt.Fprintf(b, "| without deletion | %.1f%% | %.4g |\n", 100*r.Table6.Without.RC3, r.Table6.Without.MeanSeconds)
	fmt.Fprintf(b, "\nEfficiency improvement %.2f%%, effectiveness decreased %.2f%%.\n\n",
		100*r.Table6.EfficiencyImprovement, 100*r.Table6.EffectivenessDecrease)

	// Extensions, reusing the plain-text tables inside fenced blocks.
	fmt.Fprintf(b, "## Extension studies\n\n```\n%s```\n\n```\n%s```\n\n```\n%s```\n\n```\n%s```\n\n```\n%s```\n",
		FormatNoiseStudy(r.Noise), FormatRobustnessMatrix(r.Robust),
		FormatDetectionStudy(r.Detection),
		FormatOverlapStudy(r.Overlap), FormatDerivedStudy(r.Derived))

	_, err := io.WriteString(w, b.String())
	return err
}

// asSet adapts the RAPMD rows into the map shape methodColumns expects.
func asSet(rows []RAPMDEvalRow) map[string]float64 {
	out := make(map[string]float64, len(rows))
	for _, r := range rows {
		out[r.Method] = 1
	}
	return out
}
