package experiments

import (
	"fmt"

	"repro/internal/evalmetrics"
	"repro/internal/gendata"
	"repro/internal/inject"
	"repro/internal/localize"
)

// RobustnessScenario is one degradation setting of the PSqueeze-style
// robustness matrix: a named inject.NoiseConfig applied on top of the
// clean (2,2)-group Squeeze injection.
type RobustnessScenario struct {
	Name  string
	Noise inject.NoiseConfig
}

// relabel is the corpus detector threshold: scenarios that change values
// re-run the detector so labels reflect what a detector would now see.
const relabel = 0.095

// DefaultRobustnessScenarios returns the committed matrix: a clean
// baseline, two forecast-noise grades, magnitude imbalance, missing-leaf
// dropout, and everything combined.
func DefaultRobustnessScenarios() []RobustnessScenario {
	return []RobustnessScenario{
		{Name: "clean"},
		{Name: "fnoise-0.01", Noise: inject.NoiseConfig{ForecastStd: 0.01, RelabelThreshold: relabel}},
		{Name: "fnoise-0.05", Noise: inject.NoiseConfig{ForecastStd: 0.05, RelabelThreshold: relabel}},
		{Name: "imbalance-0.6", Noise: inject.NoiseConfig{Imbalance: 0.6, RelabelThreshold: relabel}},
		{Name: "dropout-0.25", Noise: inject.NoiseConfig{Dropout: 0.25}},
		{Name: "combined", Noise: inject.NoiseConfig{
			ForecastStd: 0.025, Imbalance: 0.4, Dropout: 0.1, RelabelThreshold: relabel,
		}},
	}
}

// RobustnessRow holds one scenario's per-method F1 on the (2,2) group.
type RobustnessRow struct {
	Scenario string
	F1       map[string]float64
}

// RunRobustnessMatrix evaluates the full method matrix — the paper's five
// methods plus HotSpot, RiskLoc and the rank-fusion ensemble, regardless
// of the Include* options — across the robustness scenarios. Every
// scenario degrades the same clean corpus (same seed, same ground truth),
// so column deltas isolate the perturbation's effect.
func RunRobustnessMatrix(opt Options, scenarios []RobustnessScenario) ([]RobustnessRow, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if len(scenarios) == 0 {
		scenarios = DefaultRobustnessScenarios()
	}
	methods, err := AllMethods()
	if err != nil {
		return nil, err
	}
	ens, err := NewEnsemble()
	if err != nil {
		return nil, err
	}
	methods = append(methods, ens)

	group := gendata.SqueezeGroup{Dim: 2, NumRAPs: 2}
	var rows []RobustnessRow
	for _, sc := range scenarios {
		corpus, err := gendata.SqueezeRobust(opt.Seed, group, opt.SqueezeCases, sc.Noise)
		if err != nil {
			return nil, fmt.Errorf("experiments: robustness corpus %q: %w", sc.Name, err)
		}
		row := RobustnessRow{Scenario: sc.Name, F1: make(map[string]float64, len(methods))}
		for _, m := range methods {
			f1, err := robustnessF1(m, corpus)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s under %q: %w", m.Name(), sc.Name, err)
			}
			row.F1[m.Name()] = f1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func robustnessF1(m localize.Localizer, corpus *gendata.Corpus) (float64, error) {
	var score evalmetrics.SetScore
	for _, c := range corpus.Cases {
		res, err := m.Localize(c.Snapshot, len(c.RAPs))
		if err != nil {
			return 0, err
		}
		score.Add(res.TopK(len(c.RAPs)), c.RAPs)
	}
	return score.F1(), nil
}

// FormatRobustnessMatrix renders the robustness study.
func FormatRobustnessMatrix(rows []RobustnessRow) string {
	if len(rows) == 0 {
		return "Extension — robustness matrix\n(no rows)\n"
	}
	cols := methodColumns(rows[0].F1)
	header := append([]string{"scenario"}, cols...)
	var out [][]string
	for _, r := range rows {
		cells := []string{r.Scenario}
		for _, m := range cols {
			cells = append(cells, fmt.Sprintf("%.3f", r.F1[m]))
		}
		out = append(out, cells)
	}
	return "Extension — F1 on the (2,2) group under PSqueeze-style degradations\n" +
		textTable(header, out)
}
