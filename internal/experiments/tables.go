package experiments

import (
	"fmt"
	"time"

	"repro/internal/evalmetrics"
	"repro/internal/gendata"
	"repro/internal/kpi"
	"repro/internal/rapminer"
)

// Table4Row is one column of Table IV: the guaranteed lower bound and the
// exact ratio of cuboids no longer searched after deleting k of n
// attributes.
type Table4Row struct {
	K int
	// LowerBound is (2^k - 1) / 2^k, the value Table IV reports.
	LowerBound float64
	// ExactAtN4 is the exact ratio for the paper's 4-attribute CDN.
	ExactAtN4 float64
}

// Table4Empirical summarizes measured attribute deletion over the RAPMD
// corpus at the default t_CP.
type Table4Empirical struct {
	// DeletedHistogram[k] counts cases where k attributes were deleted.
	DeletedHistogram map[int]int
	// MeanDecreaseRatio is the mean measured search-space reduction.
	MeanDecreaseRatio float64
}

// RunTable4 computes the analytic Table IV rows and measures how many
// attributes the CP criterion actually deletes on RAPMD cases.
func RunTable4(opt Options) ([]Table4Row, Table4Empirical, error) {
	if err := opt.validate(); err != nil {
		return nil, Table4Empirical{}, err
	}
	rows := make([]Table4Row, 0, 5)
	for k := 1; k <= 5; k++ {
		lb := float64(int64(1)<<uint(k)-1) / float64(int64(1)<<uint(k))
		rows = append(rows, Table4Row{
			K:          k,
			LowerBound: lb,
			ExactAtN4:  kpi.DecreaseRatio(4, k),
		})
	}

	corpus, err := gendata.RAPMD(opt.Seed, opt.RAPMDCases)
	if err != nil {
		return nil, Table4Empirical{}, fmt.Errorf("experiments: rapmd corpus: %w", err)
	}
	emp := Table4Empirical{DeletedHistogram: make(map[int]int)}
	tCP := rapminer.DefaultConfig().TCP
	var sumRatio float64
	for _, c := range corpus.Cases {
		n := c.Snapshot.Schema.NumAttributes()
		cps := rapminer.ClassificationPowers(c.Snapshot)
		kept := rapminer.SelectAttributes(cps, tCP)
		deleted := n - len(kept)
		emp.DeletedHistogram[deleted]++
		sumRatio += kpi.DecreaseRatio(n, deleted)
	}
	emp.MeanDecreaseRatio = sumRatio / float64(len(corpus.Cases))
	return rows, emp, nil
}

// Table6Arm is one row of Table VI: RAPMiner with or without redundant
// attribute deletion.
type Table6Arm struct {
	Name        string
	RC3         float64
	MeanSeconds float64
}

// Table6Result reproduces Table VI: the efficiency improvement bought by
// CP-based redundant attribute deletion and the effectiveness it costs.
type Table6Result struct {
	With    Table6Arm
	Without Table6Arm
	// EfficiencyImprovement is (t_without - t_with) / t_without.
	EfficiencyImprovement float64
	// EffectivenessDecrease is (RC_without - RC_with) / RC_without.
	EffectivenessDecrease float64
}

// RunTable6 runs the deletion ablation on the RAPMD corpus.
func RunTable6(opt Options) (Table6Result, error) {
	if err := opt.validate(); err != nil {
		return Table6Result{}, err
	}
	corpus, err := gendata.RAPMD(opt.Seed, opt.RAPMDCases)
	if err != nil {
		return Table6Result{}, fmt.Errorf("experiments: rapmd corpus: %w", err)
	}

	run := func(name string, disable bool) (Table6Arm, error) {
		cfg := rapminer.DefaultConfig()
		cfg.DisableAttributeDeletion = disable
		miner, err := rapminer.New(cfg)
		if err != nil {
			return Table6Arm{}, err
		}
		rc, err := evalmetrics.NewRCAtK(3)
		if err != nil {
			return Table6Arm{}, err
		}
		var timing evalmetrics.Timing
		for ci, c := range corpus.Cases {
			start := time.Now()
			res, err := miner.Localize(c.Snapshot, 3)
			if err != nil {
				return Table6Arm{}, fmt.Errorf("experiments: table6 case %d: %w", ci, err)
			}
			timing.Add(time.Since(start))
			rc.Add(res.TopK(3), c.RAPs)
		}
		return Table6Arm{Name: name, RC3: rc.Value(), MeanSeconds: timing.Mean().Seconds()}, nil
	}

	with, err := run("RAPMiner with Redundant Attribute Deletion", false)
	if err != nil {
		return Table6Result{}, err
	}
	without, err := run("RAPMiner without Redundant Attribute Deletion", true)
	if err != nil {
		return Table6Result{}, err
	}
	out := Table6Result{With: with, Without: without}
	if without.MeanSeconds > 0 {
		out.EfficiencyImprovement = (without.MeanSeconds - with.MeanSeconds) / without.MeanSeconds
	}
	if without.RC3 > 0 {
		out.EffectivenessDecrease = (without.RC3 - with.RC3) / without.RC3
	}
	return out, nil
}
