package experiments

import (
	"fmt"
	"time"

	"repro/internal/evalmetrics"
	"repro/internal/gendata"
)

// RCKs are the recommendation depths of Fig. 8(b).
var RCKs = []int{3, 4, 5}

// RAPMDEvalRow holds one method's RC@k values (Fig. 8b) and mean runtime
// (Fig. 9b) on the RAPMD corpus, plus a bootstrap confidence interval for
// RC@3.
type RAPMDEvalRow struct {
	Method      string
	RC          map[int]float64
	RC3CI       evalmetrics.RCInterval
	MeanSeconds float64
}

// RunRAPMDEval evaluates every method on the RAPMD corpus with RC@3/4/5.
// Each method is asked for max(RCKs) results once per case; the RC@k
// metrics truncate, which also reproduces the paper's note that Squeeze
// yields the same value for all three k (it returns its own result count).
// With Options.Repeats > 1 the evaluation spans several independently
// seeded corpora.
func RunRAPMDEval(opt Options) ([]RAPMDEvalRow, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	methods, err := opt.methods()
	if err != nil {
		return nil, err
	}
	corpora := make([]*gendata.Corpus, opt.repeats())
	for i := range corpora {
		c, err := gendata.RAPMD(opt.Seed+int64(1000*i), opt.RAPMDCases)
		if err != nil {
			return nil, fmt.Errorf("experiments: rapmd corpus %d: %w", i, err)
		}
		corpora[i] = c
	}

	maxK := RCKs[len(RCKs)-1]
	var rows []RAPMDEvalRow
	for _, m := range methods {
		metrics := make(map[int]*evalmetrics.RCAtK, len(RCKs))
		for _, k := range RCKs {
			rc, err := evalmetrics.NewRCAtK(k)
			if err != nil {
				return nil, err
			}
			metrics[k] = rc
		}
		var timing evalmetrics.Timing
		for _, corpus := range corpora {
			for ci, c := range corpus.Cases {
				start := time.Now()
				res, err := m.Localize(c.Snapshot, maxK)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s on rapmd case %d: %w", m.Name(), ci, err)
				}
				timing.Add(time.Since(start))
				pred := res.TopK(maxK)
				for _, k := range RCKs {
					metrics[k].Add(pred, c.RAPs)
				}
			}
		}
		row := RAPMDEvalRow{
			Method:      m.Name(),
			RC:          make(map[int]float64, len(RCKs)),
			MeanSeconds: timing.Mean().Seconds(),
		}
		for _, k := range RCKs {
			row.RC[k] = metrics[k].Value()
		}
		ci, err := metrics[3].Bootstrap(1000, 0.95, opt.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: bootstrap %s: %w", m.Name(), err)
		}
		row.RC3CI = ci
		rows = append(rows, row)
	}
	return rows, nil
}
