package experiments

import (
	"fmt"
	"time"

	"repro/internal/anomaly"
	"repro/internal/evalmetrics"
	"repro/internal/gendata"
)

// ExternalEvalRow holds one method's scores on an externally supplied
// corpus (the published Squeeze dataset layout; see gendata.LoadExternal).
type ExternalEvalRow struct {
	Method string
	// F1 uses the Fig. 8(a) protocol: returned-k equals the true count.
	F1 float64
	// RC3 uses the Fig. 8(b) protocol with k = 3.
	RC3         float64
	MeanSeconds float64
}

// RunExternalEval loads a corpus from dir, labels its leaves with the
// default detector and evaluates every method on it.
func RunExternalEval(dir string, opt Options) ([]ExternalEvalRow, string, error) {
	methods, err := opt.methods()
	if err != nil {
		return nil, "", err
	}
	corpus, err := gendata.LoadExternal(dir, anomaly.DefaultRelativeDeviation())
	if err != nil {
		return nil, "", err
	}

	var rows []ExternalEvalRow
	for _, m := range methods {
		var (
			score  evalmetrics.SetScore
			timing evalmetrics.Timing
		)
		rc, err := evalmetrics.NewRCAtK(3)
		if err != nil {
			return nil, "", err
		}
		for ci, c := range corpus.Cases {
			start := time.Now()
			res, err := m.Localize(c.Snapshot, 3)
			if err != nil {
				return nil, "", fmt.Errorf("experiments: %s on external case %d: %w", m.Name(), ci, err)
			}
			timing.Add(time.Since(start))
			rc.Add(res.TopK(3), c.RAPs)
			score.Add(res.TopK(len(c.RAPs)), c.RAPs)
		}
		rows = append(rows, ExternalEvalRow{
			Method:      m.Name(),
			F1:          score.F1(),
			RC3:         rc.Value(),
			MeanSeconds: timing.Mean().Seconds(),
		})
	}
	return rows, corpus.Name, nil
}

// FormatExternalEval renders the external-corpus evaluation.
func FormatExternalEval(rows []ExternalEvalRow, name string) string {
	header := []string{"method", "F1", "RC@3", "mean time"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Method,
			fmt.Sprintf("%.3f", r.F1),
			fmt.Sprintf("%.1f%%", 100*r.RC3),
			fmt.Sprintf("%.4gs", r.MeanSeconds),
		})
	}
	return fmt.Sprintf("Evaluation on %s (%d methods)\n", name, len(rows)) + textTable(header, out)
}
